//! Microbenchmarks for the core data structures and the full-frame
//! simulation path, on a small self-contained timing harness (the
//! build is offline, so no criterion).
//!
//! ```text
//! cargo bench -p rbcd-bench
//! ```
//!
//! Each benchmark warms up briefly, then reports the median of several
//! timed batches as ns/iter.

use rbcd_core::software::OracleUnit;
use rbcd_core::{scan_list, FfStack, RbcdConfig, RbcdStats, RbcdUnit, Zeb, ZebElement};
use rbcd_cpu_cd::{gjk, CdBody, Cost, CpuCollisionDetector, Phase};
use rbcd_geometry::{hull, intersect, shapes};
use rbcd_gpu::{
    rasterize_triangle_in_tile, CollisionUnit, Facing, GpuConfig, NullCollisionUnit, ObjectId,
    PipelineMode, ScreenTriangle, Simulator, TileCoord,
};
use rbcd_math::{Mat4, Vec3, Viewport};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` and prints ns/iter: a short calibration pass sizes the
/// batch to ~10 ms, then the median of 7 batches is reported.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Calibrate the batch size.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t.elapsed();
        if dt.as_millis() >= 10 || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    let mut samples: Vec<f64> = (0..7)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("{name:<40} {:>14.1} ns/iter", samples[3]);
}

/// ZEB sorted insertion (Figure 4): one tile's worth of fragments.
fn bench_zeb_insertion() {
    let elements: Vec<(usize, ZebElement)> = (0..512)
        .map(|i| {
            let z = ((i * 37) % 97) as f32 / 97.0;
            let id = ObjectId::new((i % 5) as u16 + 1);
            let facing = if i % 2 == 0 { Facing::Front } else { Facing::Back };
            ((i * 13) % 256, ZebElement::new(z, id, facing))
        })
        .collect();
    bench("zeb_insert_512_fragments", || {
        let mut zeb = Zeb::new(256, 8).unwrap();
        let mut stats = RbcdStats::default();
        for &(list, e) in &elements {
            zeb.insert(list, e, &mut stats);
        }
        zeb.occupied().len()
    });
}

/// Z-overlap scan (Figures 5–6) over a fully-populated list.
fn bench_z_overlap_scan() {
    let list: Vec<ZebElement> = (0..8)
        .map(|i| {
            let id = ObjectId::new((i / 2) as u16 + 1);
            let facing = if i % 2 == 0 { Facing::Front } else { Facing::Back };
            ZebElement::new(i as f32 / 8.0, id, facing)
        })
        .collect();
    let mut stack = FfStack::new(8).unwrap();
    let mut stats = RbcdStats::default();
    bench("z_overlap_scan_8_element_list", || {
        scan_list(black_box(&list), &mut stack, &mut stats)
    });
}

/// GJK boolean and distance queries on realistic hulls.
fn bench_gjk() {
    let mesh = shapes::icosphere(1.0, 3);
    let h = hull::mesh_hull(&mesh).unwrap();
    let a: Vec<Vec3> = h.vertices().to_vec();
    let b: Vec<Vec3> = h
        .vertices()
        .iter()
        .map(|&p| p + Vec3::new(1.4, 0.2, 0.0))
        .collect();
    bench("gjk_intersect_642v_hulls", || {
        let mut cost = Cost::default();
        gjk::gjk_intersect(black_box(&a), black_box(&b), &mut cost)
    });
    bench("gjk_distance_642v_hulls", || {
        let mut cost = Cost::default();
        gjk::gjk_distance(black_box(&a), black_box(&b), &mut cost)
    });
    bench("penetration_depth_642v_hulls", || {
        let mut cost = Cost::default();
        gjk::penetration_depth(black_box(&a), black_box(&b), &mut cost)
    });
}

/// CPU broad phase over a field of bodies (BVH refits + pair tests).
fn bench_broad_phase() {
    let mesh = shapes::icosphere(0.5, 2);
    let bodies: Vec<CdBody> = (0..24)
        .map(|i| CdBody::from_mesh(i, &mesh).unwrap())
        .collect();
    let transforms: Vec<Mat4> = (0..24)
        .map(|i| Mat4::translation(Vec3::new((i % 6) as f32 * 1.3, 0.0, (i / 6) as f32 * 1.3)))
        .collect();
    let mut det = CpuCollisionDetector::new(bodies);
    bench("broad_phase_24_bodies", || {
        det.detect(black_box(&transforms), Phase::Broad).pairs.len()
    });
}

/// Rasterizing one large triangle into a tile.
fn bench_rasterizer() {
    let tri = ScreenTriangle::new(
        Vec3::new(-4.0, -4.0, 0.3),
        Vec3::new(20.0, 0.0, 0.5),
        Vec3::new(0.0, 20.0, 0.7),
    );
    let mut out = Vec::with_capacity(256);
    bench("rasterize_triangle_16x16_tile", || {
        out.clear();
        rasterize_triangle_in_tile(black_box(&tri), 0, 0, 16, 64, 64, &mut out);
        out.len()
    });
}

/// Exact triangle–triangle intersection (the validation oracle).
fn bench_tri_tri() {
    let t1 = rbcd_geometry::Triangle::new(
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(2.0, 0.0, 0.0),
        Vec3::new(0.0, 2.0, 0.0),
    );
    let t2 = rbcd_geometry::Triangle::new(
        Vec3::new(0.5, 0.5, -1.0),
        Vec3::new(0.5, 0.5, 1.0),
        Vec3::new(1.5, 0.5, 1.0),
    );
    bench("tri_tri_intersect", || {
        intersect::tri_tri_intersect(black_box(&t1), black_box(&t2))
    });
}

/// Full frame through the simulator: baseline, RBCD with hardware unit,
/// and RBCD with the software oracle.
fn bench_full_frame() {
    let scene = rbcd_workloads::cap();
    let gpu = GpuConfig { viewport: Viewport::new(320, 200), ..GpuConfig::default() };
    let trace = scene.frame_trace(0);

    {
        let mut sim = Simulator::new(gpu.clone());
        bench("frame_baseline_320x200_cap", || {
            sim.render_frame(black_box(&trace), PipelineMode::Baseline, &mut NullCollisionUnit)
        });
    }
    {
        let mut sim = Simulator::new(gpu.clone());
        let mut unit = RbcdUnit::new(RbcdConfig::default(), gpu.tile_size).unwrap();
        bench("frame_rbcd_320x200_cap", || {
            unit.new_frame();
            let stats = sim.render_frame(black_box(&trace), PipelineMode::Rbcd, &mut unit);
            unit.take_contacts();
            stats
        });
    }
    {
        let mut sim = Simulator::new(gpu.clone());
        bench("frame_oracle_320x200_cap", || {
            let mut oracle = OracleUnit::new();
            sim.render_frame(black_box(&trace), PipelineMode::Rbcd, &mut oracle);
            oracle.pairs().len()
        });
    }
}

/// The RBCD unit in isolation: insert + scan a dense tile.
fn bench_rbcd_unit_tile() {
    let frags: Vec<_> = (0..1024)
        .map(|i| rbcd_gpu::CollisionFragment {
            x: (i % 16) as u32,
            y: ((i / 16) % 16) as u32,
            z: ((i * 29) % 101) as f32 / 101.0,
            object: ObjectId::new((i % 6) as u16 + 1),
            facing: if i % 2 == 0 { Facing::Front } else { Facing::Back },
        })
        .collect();
    let mut unit = RbcdUnit::new(RbcdConfig::default(), 16).unwrap();
    bench("rbcd_unit_tile_1024_fragments", || {
        unit.new_frame();
        unit.begin_tile(TileCoord { x: 0, y: 0 }, 0);
        for f in &frags {
            unit.insert(*f);
        }
        unit.finish_tile(1024);
        unit.take_contacts().len()
    });
}

fn main() {
    bench_zeb_insertion();
    bench_z_overlap_scan();
    bench_gjk();
    bench_broad_phase();
    bench_rasterizer();
    bench_tri_tri();
    bench_full_frame();
    bench_rbcd_unit_tile();
}
