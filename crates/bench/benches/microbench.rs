//! Criterion microbenchmarks for the core data structures and the
//! full-frame simulation path.
//!
//! ```text
//! cargo bench -p rbcd-bench
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rbcd_core::software::OracleUnit;
use rbcd_core::{scan_list, FfStack, RbcdConfig, RbcdStats, RbcdUnit, Zeb, ZebElement};
use rbcd_cpu_cd::{gjk, CdBody, Cost, CpuCollisionDetector, Phase};
use rbcd_geometry::{hull, intersect, shapes};
use rbcd_gpu::{
    rasterize_triangle_in_tile, CollisionUnit, Facing, GpuConfig, NullCollisionUnit, ObjectId,
    PipelineMode, ScreenTriangle, Simulator, TileCoord,
};
use rbcd_math::{Mat4, Vec3, Viewport};

/// ZEB sorted insertion (Figure 4): one tile's worth of fragments.
fn bench_zeb_insertion(c: &mut Criterion) {
    let elements: Vec<(usize, ZebElement)> = (0..512)
        .map(|i| {
            let z = ((i * 37) % 97) as f32 / 97.0;
            let id = ObjectId::new((i % 5) as u16 + 1);
            let facing = if i % 2 == 0 { Facing::Front } else { Facing::Back };
            ((i * 13) % 256, ZebElement::new(z, id, facing))
        })
        .collect();
    c.bench_function("zeb_insert_512_fragments", |b| {
        b.iter_batched(
            || Zeb::new(256, 8),
            |mut zeb| {
                let mut stats = RbcdStats::default();
                for &(list, e) in &elements {
                    zeb.insert(list, e, &mut stats);
                }
                zeb
            },
            BatchSize::SmallInput,
        )
    });
}

/// Z-overlap scan (Figures 5–6) over a fully-populated list.
fn bench_z_overlap_scan(c: &mut Criterion) {
    let list: Vec<ZebElement> = (0..8)
        .map(|i| {
            let id = ObjectId::new((i / 2) as u16 + 1);
            let facing = if i % 2 == 0 { Facing::Front } else { Facing::Back };
            ZebElement::new(i as f32 / 8.0, id, facing)
        })
        .collect();
    c.bench_function("z_overlap_scan_8_element_list", |b| {
        let mut stack = FfStack::new(8);
        let mut stats = RbcdStats::default();
        b.iter(|| scan_list(std::hint::black_box(&list), &mut stack, &mut stats))
    });
}

/// GJK boolean and distance queries on realistic hulls.
fn bench_gjk(c: &mut Criterion) {
    let mesh = shapes::icosphere(1.0, 3);
    let h = hull::mesh_hull(&mesh).unwrap();
    let a: Vec<Vec3> = h.vertices().to_vec();
    let b: Vec<Vec3> = h
        .vertices()
        .iter()
        .map(|&p| p + Vec3::new(1.4, 0.2, 0.0))
        .collect();
    c.bench_function("gjk_intersect_642v_hulls", |bch| {
        bch.iter(|| {
            let mut cost = Cost::default();
            gjk::gjk_intersect(std::hint::black_box(&a), std::hint::black_box(&b), &mut cost)
        })
    });
    c.bench_function("gjk_distance_642v_hulls", |bch| {
        bch.iter(|| {
            let mut cost = Cost::default();
            gjk::gjk_distance(std::hint::black_box(&a), std::hint::black_box(&b), &mut cost)
        })
    });
    c.bench_function("penetration_depth_642v_hulls", |bch| {
        bch.iter(|| {
            let mut cost = Cost::default();
            gjk::penetration_depth(std::hint::black_box(&a), std::hint::black_box(&b), &mut cost)
        })
    });
}

/// CPU broad phase over a field of bodies (BVH refits + pair tests).
fn bench_broad_phase(c: &mut Criterion) {
    let mesh = shapes::icosphere(0.5, 2);
    let bodies: Vec<CdBody> = (0..24)
        .map(|i| CdBody::from_mesh(i, &mesh).unwrap())
        .collect();
    let transforms: Vec<Mat4> = (0..24)
        .map(|i| Mat4::translation(Vec3::new((i % 6) as f32 * 1.3, 0.0, (i / 6) as f32 * 1.3)))
        .collect();
    c.bench_function("broad_phase_24_bodies", |b| {
        let mut det = CpuCollisionDetector::new(bodies.clone());
        b.iter(|| det.detect(std::hint::black_box(&transforms), Phase::Broad))
    });
}

/// Rasterizing one large triangle into a tile.
fn bench_rasterizer(c: &mut Criterion) {
    let tri = ScreenTriangle::new(
        Vec3::new(-4.0, -4.0, 0.3),
        Vec3::new(20.0, 0.0, 0.5),
        Vec3::new(0.0, 20.0, 0.7),
    );
    c.bench_function("rasterize_triangle_16x16_tile", |b| {
        let mut out = Vec::with_capacity(256);
        b.iter(|| {
            out.clear();
            rasterize_triangle_in_tile(std::hint::black_box(&tri), 0, 0, 16, 64, 64, &mut out)
        })
    });
}

/// Exact triangle–triangle intersection (the validation oracle).
fn bench_tri_tri(c: &mut Criterion) {
    let t1 = rbcd_geometry::Triangle::new(
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(2.0, 0.0, 0.0),
        Vec3::new(0.0, 2.0, 0.0),
    );
    let t2 = rbcd_geometry::Triangle::new(
        Vec3::new(0.5, 0.5, -1.0),
        Vec3::new(0.5, 0.5, 1.0),
        Vec3::new(1.5, 0.5, 1.0),
    );
    c.bench_function("tri_tri_intersect", |b| {
        b.iter(|| intersect::tri_tri_intersect(std::hint::black_box(&t1), std::hint::black_box(&t2)))
    });
}

/// Full frame through the simulator: baseline, RBCD with hardware unit,
/// and RBCD with the software oracle.
fn bench_full_frame(c: &mut Criterion) {
    let scene = rbcd_workloads::cap();
    let gpu = GpuConfig { viewport: Viewport::new(320, 200), ..GpuConfig::default() };
    let trace = scene.frame_trace(0);

    c.bench_function("frame_baseline_320x200_cap", |b| {
        let mut sim = Simulator::new(gpu.clone());
        b.iter(|| sim.render_frame(std::hint::black_box(&trace), PipelineMode::Baseline, &mut NullCollisionUnit))
    });
    c.bench_function("frame_rbcd_320x200_cap", |b| {
        let mut sim = Simulator::new(gpu.clone());
        let mut unit = RbcdUnit::new(RbcdConfig::default(), gpu.tile_size);
        b.iter(|| {
            unit.new_frame();
            let stats = sim.render_frame(std::hint::black_box(&trace), PipelineMode::Rbcd, &mut unit);
            unit.take_contacts();
            stats
        })
    });
    c.bench_function("frame_oracle_320x200_cap", |b| {
        let mut sim = Simulator::new(gpu.clone());
        b.iter(|| {
            let mut oracle = OracleUnit::new();
            sim.render_frame(std::hint::black_box(&trace), PipelineMode::Rbcd, &mut oracle);
            oracle.pairs().len()
        })
    });
}

/// The RBCD unit in isolation: insert + scan a dense tile.
fn bench_rbcd_unit_tile(c: &mut Criterion) {
    let frags: Vec<_> = (0..1024)
        .map(|i| rbcd_gpu::CollisionFragment {
            x: (i % 16) as u32,
            y: ((i / 16) % 16) as u32,
            z: ((i * 29) % 101) as f32 / 101.0,
            object: ObjectId::new((i % 6) as u16 + 1),
            facing: if i % 2 == 0 { Facing::Front } else { Facing::Back },
        })
        .collect();
    c.bench_function("rbcd_unit_tile_1024_fragments", |b| {
        let mut unit = RbcdUnit::new(RbcdConfig::default(), 16);
        b.iter(|| {
            unit.new_frame();
            unit.begin_tile(TileCoord { x: 0, y: 0 }, 0);
            for f in &frags {
                unit.insert(*f);
            }
            unit.finish_tile(1024);
            unit.take_contacts().len()
        })
    });
}

criterion_group!(
    benches,
    bench_zeb_insertion,
    bench_z_overlap_scan,
    bench_gjk,
    bench_broad_phase,
    bench_rasterizer,
    bench_tri_tri,
    bench_full_frame,
    bench_rbcd_unit_tile,
);
criterion_main!(benches);
