//! Figure 2: accuracy of AABB vs GJK-on-hull vs RBCD on concave shapes.
//!
//! The paper's motivating example places objects near a concave body A:
//! AABBs report false collisions for pairs that merely share A's
//! bounding box, GJK still reports a false collision for an object
//! inside A's *convex hull*, and RBCD — operating on the discretized
//! true surface — reports neither. Exact mesh–mesh intersection is the
//! ground truth.

use rbcd_core::{detect_frame_collisions, RbcdConfig};
use rbcd_cpu_cd::{Cost, gjk::gjk_intersect};
use rbcd_geometry::{hull, intersect, shapes, Mesh};
use rbcd_gpu::{Camera, DrawCommand, FrameTrace, GpuConfig, ObjectId};
use rbcd_math::{Mat4, Vec3};

/// Verdicts of the four detectors for one object pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairVerdicts {
    /// Pair label (`A` is object 1).
    pub pair: (u16, u16),
    /// AABB broad phase.
    pub aabb: bool,
    /// GJK on convex hulls.
    pub gjk: bool,
    /// RBCD at the given resolution.
    pub rbcd: bool,
    /// Exact surface intersection (ground truth).
    pub exact: bool,
}

/// The Figure 2 scenario: a concave L-prism `A` (id 1), a small cube `B`
/// (id 2) inside A's AABB but outside its hull, and a small sphere `C`
/// (id 3) inside A's hull but not touching its surface.
pub fn figure2_verdicts(gpu: &GpuConfig) -> Vec<PairVerdicts> {
    let a = shapes::l_prism(2.4, 1.2);
    // B sits in the outer corner of the notch: inside A's AABB only.
    let b = shapes::cube(0.12);
    let b_model = Mat4::translation(Vec3::new(1.02, 1.02, 0.0));
    // C sits just inside the hull's diagonal face, off A's surface.
    let c = shapes::icosphere(0.12, 1);
    let c_model = Mat4::translation(Vec3::new(0.30, 0.30, 0.0));

    let meshes: Vec<(u16, &Mesh, Mat4)> =
        vec![(1, &a, Mat4::IDENTITY), (2, &b, b_model), (3, &c, c_model)];

    // RBCD: render the trio once.
    let camera = Camera::perspective(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.1, 0.1, 50.0);
    let draws = meshes
        .iter()
        .map(|(id, mesh, model)| {
            DrawCommand::collidable((*mesh).clone(), ObjectId::new(*id)).with_model(*model)
        })
        .collect();
    let rbcd = detect_frame_collisions(&FrameTrace::new(camera, draws), gpu, &RbcdConfig::default());
    let rbcd_pairs = rbcd.pairs();

    let mut out = Vec::new();
    for i in 0..meshes.len() {
        for j in (i + 1)..meshes.len() {
            let (id_i, mesh_i, m_i) = (meshes[i].0, meshes[i].1, meshes[i].2);
            let (id_j, mesh_j, m_j) = (meshes[j].0, meshes[j].1, meshes[j].2);
            let world_i = mesh_i.transformed(&m_i);
            let world_j = mesh_j.transformed(&m_j);
            let aabb = world_i.aabb().intersects(&world_j.aabb());
            let hull_i: Vec<Vec3> = hull::mesh_hull(&world_i).expect("hullable").vertices().to_vec();
            let hull_j: Vec<Vec3> = hull::mesh_hull(&world_j).expect("hullable").vertices().to_vec();
            let gjk = gjk_intersect(&hull_i, &hull_j, &mut Cost::default());
            let exact = intersect::meshes_intersect(&world_i, &world_j);
            let rbcd_hit = rbcd_pairs.contains(&(ObjectId::new(id_i), ObjectId::new(id_j)));
            out.push(PairVerdicts { pair: (id_i, id_j), aabb, gjk, rbcd: rbcd_hit, exact });
        }
    }
    out
}

/// Counts false positives of each detector against the exact verdict:
/// `(aabb, gjk, rbcd)`.
pub fn false_positive_counts(verdicts: &[PairVerdicts]) -> (usize, usize, usize) {
    let count = |f: fn(&PairVerdicts) -> bool| {
        verdicts.iter().filter(|v| f(v) && !v.exact).count()
    };
    (count(|v| v.aabb), count(|v| v.gjk), count(|v| v.rbcd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_math::Viewport;

    #[test]
    fn figure2_ordering_holds() {
        let gpu = GpuConfig { viewport: Viewport::new(256, 256), ..GpuConfig::default() };
        let verdicts = figure2_verdicts(&gpu);
        assert_eq!(verdicts.len(), 3);
        // Ground truth: nothing actually touches.
        assert!(verdicts.iter().all(|v| !v.exact));
        let (aabb_fp, gjk_fp, rbcd_fp) = false_positive_counts(&verdicts);
        // The paper's ordering: AABB ≥ GJK > RBCD, RBCD clean.
        assert!(aabb_fp >= 2, "AABB should flag both (A,B) and (A,C): {verdicts:?}");
        assert!(gjk_fp >= 1, "GJK should still flag (A,C): {verdicts:?}");
        assert!(gjk_fp < aabb_fp || aabb_fp == gjk_fp, "hull tighter than AABB");
        assert_eq!(rbcd_fp, 0, "RBCD adds no false collision: {verdicts:?}");
    }

    #[test]
    fn gjk_prunes_the_notch_corner_pair() {
        let gpu = GpuConfig { viewport: Viewport::new(128, 128), ..GpuConfig::default() };
        let verdicts = figure2_verdicts(&gpu);
        let ab = verdicts.iter().find(|v| v.pair == (1, 2)).unwrap();
        assert!(ab.aabb, "B is inside A's AABB");
        assert!(!ab.gjk, "B is outside A's hull");
        let ac = verdicts.iter().find(|v| v.pair == (1, 3)).unwrap();
        assert!(ac.aabb && ac.gjk, "C is inside A's hull");
        assert!(!ac.rbcd, "RBCD sees disjoint z-ranges for (A,C)");
    }
}
