//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p rbcd-bench --release --bin repro            # everything
//! cargo run -p rbcd-bench --release --bin repro -- fig8a   # one experiment
//! cargo run -p rbcd-bench --release --bin repro -- --frames 12 all
//! ```
//!
//! Experiment ids: table1 table2 fig2 fig8a fig8b fig8c fig8d fig9a
//! fig9b fig10 fig11 table3 sec52 sec53 ablation-zebs all — plus the
//! extension experiments imr, spares, timesteps, tbdr, resolution, and
//! temporal (run by `all` too), and `bench`, a host-throughput smoke
//! for the parallel tile pipeline that writes `BENCH_tile_pipeline.json`,
//! and `hotpath`, a host-wall-clock A/B of the span-mask vs reference
//! intra-tile hot path that writes `BENCH_raster_hotpath.json` and
//! exits non-zero if the two modes ever diverge, and `frontend`, a
//! host-wall-clock A/B of the incremental geometry front-end (per-draw
//! transform/clip/bin caching with delta binning) against a full
//! per-frame rebuild that writes `BENCH_geometry_frontend.json` and
//! exits non-zero if the two front-ends ever diverge — across thread
//! counts, reuse on/off, fault storms, a governed budget, and the
//! batch service, and `broadphase`, a host-wall-clock A/B of the
//! screen-space broad phase (pair-infeasible draw pruning and
//! single-occupant tile elision) against a broad-phase-off run that
//! writes `BENCH_broadphase.json` and exits non-zero if pairs or any
//! non-image-side counter ever diverge — across the same thread /
//! reuse / fault / governor / batch legs, timed on the sparse-swarm
//! clips of `rbcd_workloads::sparse_family()`. Every `BENCH_*.json`
//! artifact opens with the shared `rbcd_bench::schema` header
//! (`schema_version`, bench id, host, geomean) and is re-validated with
//! the workspace's own JSON parser before it is written.
//! `temporal` measures the signature-based tile-reuse layer on the
//! static/resting clips of `rbcd_workloads::temporal_suite()` against a
//! reuse-off run of the same frames, reports per-scene reuse rate and
//! the simulated-cycle speedup, writes `BENCH_temporal_coherence.json`,
//! and exits non-zero if reuse ever changes a pair set or an `rbcd.*`
//! counter.
//!
//! Flags: `--frames N` overrides frames per benchmark, `--threads N`
//! sets the worker-thread count (simulated numbers are bit-identical
//! for any value), `--no-reuse` disables cross-frame tile reuse (on by
//! default; reuse never changes pairs or event counters, only the
//! simulated-cycle timeline), `--hot-path mask|reference` selects the
//! intra-tile hot path for every experiment (mask is the default; the
//! two are bit-identical in every result, differing only in host
//! wall-clock), `--frontend incremental|rebuild` selects the geometry
//! front-end the same way (incremental is the CLI default; the library
//! default stays rebuild so golden counters are cache-free),
//! `--broadphase on|off` selects the screen-space broad phase the same
//! way (on is the CLI default; the library default stays off so golden
//! counters are pruning-free — pairs and `rbcd.*` counters are
//! bit-identical either way, only image-side timing moves), `--smoke`
//! shrinks every experiment to a quick
//! configuration and defaults the experiment list to `bench temporal`,
//! and `--scene <alias>` restricts multi-scene experiments to one
//! workload. All flags parse through the shared option table in
//! `rbcd_bench::cli`; an unknown flag or missing value exits with
//! status 2.
//!
//! `--trace <out.json>` runs the trace experiment: render the `cap`
//! workload with the deterministic instrumentation layer enabled and
//! write the simulated-cycle timeline as Chrome trace-event JSON plus
//! per-tile heatmap CSVs (`<stem>.<metric>.csv` for occupancy,
//! overflows, scan_cycles, pairs, and rung). Exits non-zero if the
//! emitted JSON does not re-parse or the heatmap totals disagree with
//! the RBCD unit's counters.
//!
//! `--faults <plan>` runs the fault-injection experiment instead (also
//! opt-in, not part of `all`): corrupt every workload trace with the
//! named plan (`all`, `overflow`, `spare`, `nan`, `degenerate`,
//! `badid`, `dup`, `storm`), sweep the forced list capacity over
//! M ∈ {1,2,4,8} with the degradation ladder enabled, and report
//! recovery against the software oracle plus the ladder-rung histogram.
//! Writes `BENCH_fault_tolerance.json`; exits non-zero on any silent
//! pair loss.
//!
//! `overload` runs the frame-deadline governor experiment (opt-in, not
//! part of `all` — every frame is rendered several times): render
//! `storm`-faulted frames under per-frame cycle budgets of
//! 100/75/50/25 % of an ungoverned baseline, with the policy ladder
//! (forced reuse → scan coarsening → tile shedding), the escalation
//! circuit breaker, and full degraded-result accounting (exact /
//! cpu-verified / stale partitions) engaged. Writes
//! `BENCH_overload.json`; exits non-zero on any budget violation or
//! silent oracle miss.
//!
//! `serve` runs the multi-session scheduler experiment (opt-in): admit
//! eight staggered sessions — every workload scene with a mix of
//! reuse, storm-fault, and governed-budget policies — to one
//! `rbcd_core::sched::Scheduler` and serve them over a shared worker
//! pool at 1/2/4 workers, plus deliberate over-capacity and empty-clip
//! submissions to exercise typed rejection. Byte-compares every
//! session's artifact against its solo run, checks the admission
//! ledger, and reports latency percentiles, throughput, per-session
//! counters, and scheduler overhead. Writes `BENCH_multi_session.json`;
//! exits non-zero on any cross-session interference or ledger leak.

use rbcd_bench::cli::{self, UsageError};
use rbcd_bench::report::{fmt_norm, fmt_pct, fmt_x, Table, TableError};
use rbcd_bench::{
    accuracy, geomean, run_frames_parallel, run_gpu_traced, run_suite, RunOptions, SuiteResult,
};
use rbcd_core::{FaultPlan, RbcdConfig};
use rbcd_gpu::GpuConfig;
use std::time::Instant;

struct PaperRef {
    /// Paper-reported geomean (or headline) value, for side-by-side
    /// printing. Values transcribed from §5 of the paper.
    note: &'static str,
}

fn main() {
    if let Err(e) = run() {
        eprintln!("repro: {e}");
        std::process::exit(if e.is::<UsageError>() { 2 } else { 1 });
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    // All flags go through the shared option table (`rbcd_bench::cli`),
    // so `--threads`, `--scene`, `--hot-path`, `--no-reuse`, … parse
    // identically for every experiment.
    let parsed = cli::parse_args(std::env::args().skip(1).collect())?;
    let smoke = parsed.smoke;
    let threads = parsed.threads;
    let wanted: Vec<String> = if parsed.rest.is_empty() {
        if parsed.faults.is_some() || parsed.trace.is_some() {
            Vec::new() // --faults / --trace alone run just that experiment
        } else if smoke {
            vec!["bench".into(), "temporal".into()]
        } else {
            vec!["all".into()]
        }
    } else {
        parsed.rest.clone()
    };
    let want = |id: &str| wanted.iter().any(|w| w == id || w == "all");

    let opts = parsed.run_options();

    // `--trace` is opt-in (not part of `all`): it re-renders one
    // workload with the instrumentation layer on and exports the
    // simulated-cycle timeline instead of reproducing a figure.
    if let Some(path) = &parsed.trace {
        run_trace_experiment(path, &opts)?;
    }

    // `--faults` is opt-in (not part of `all`): it renders every frame
    // twice (ladder + oracle) and measures robustness, not the paper's
    // figures.
    if let Some(plan) = &parsed.faults {
        run_fault_experiment(plan, &opts, smoke)?;
    }

    // `bench` is opt-in (not part of `all`): it measures *host* time,
    // which is meaningless in CI artifact regeneration.
    if wanted.iter().any(|w| w == "bench") {
        run_tile_pipeline_bench(&opts, threads.max(2), smoke)?;
    }

    // `hotpath` is opt-in for the same reason: it A/B-times the
    // intra-tile hot path (span-mask vs reference rasterizer) on the
    // host clock and enforces their bit-identical results.
    if wanted.iter().any(|w| w == "hotpath") {
        run_hotpath_bench(&opts, smoke)?;
    }

    // `frontend` is opt-in for the same reason: it A/B-times the
    // incremental geometry front-end against a full per-frame rebuild
    // on the host clock, after enforcing their bit-identical results
    // across threads, reuse, faults, governor, and batch service.
    if wanted.iter().any(|w| w == "frontend") {
        run_frontend_bench(&opts, smoke)?;
    }

    // `broadphase` is opt-in for the same reason: it A/B-times the
    // screen-space broad phase against a broad-phase-off run on the
    // host clock, after enforcing the exactness contract (pairs and
    // every non-image-side counter bit-identical) across threads,
    // reuse, faults, governor, and batch service.
    if wanted.iter().any(|w| w == "broadphase") {
        run_broadphase_bench(&opts, smoke)?;
    }

    // `overload` is opt-in for the same reason as `--faults`: every
    // frame is rendered once per budget point plus an ungoverned
    // baseline pass and a lossless oracle pass.
    if wanted.iter().any(|w| w == "overload") {
        run_overload_experiment(&opts, smoke)?;
    }

    // `serve` is opt-in for the same reason as `bench`: it measures
    // multi-session service throughput/latency and scheduler overhead
    // on the host clock, enforcing the per-session determinism contract.
    if wanted.iter().any(|w| w == "serve") {
        rbcd_bench::serve::run_serve_experiment(&parsed)?;
    }

    if want("temporal") {
        run_temporal_experiment(&opts)?;
    }

    if want("table1") {
        print_table1(&opts)?;
    }
    if want("table2") {
        print_table2()?;
    }
    if want("fig2") {
        print_fig2(&opts)?;
    }
    if want("sec53") {
        print_sec53(&opts)?;
    }
    if want("imr") {
        print_imr(&opts)?;
    }
    if want("spares") {
        print_spares(&opts)?;
    }
    if want("timesteps") {
        print_timesteps(&opts)?;
    }
    if want("tbdr") {
        print_tbdr(&opts)?;
    }
    if want("resolution") {
        print_resolution(&opts)?;
    }

    let need_suite = ["fig8a", "fig8b", "fig8c", "fig8d", "fig9a", "fig9b", "fig10", "fig11", "table3", "sec52", "ablation-zebs", "debug"]
        .iter()
        .any(|id| want(id));
    if !need_suite {
        return Ok(());
    }

    eprintln!("running the benchmark suite (this simulates every frame three+ times)...");
    let t0 = Instant::now();
    let scenes = cli::filter_scenes(rbcd_workloads::suite(), parsed.scene.as_deref())?;
    let suite = run_suite(&scenes, &opts);
    eprintln!("suite simulated in {:.1?} of host time", t0.elapsed());
    let (checked, reused) = suite.benchmarks.iter().fold((0u64, 0u64), |acc, b| {
        let c = &b.rbcd2.stats.coherence;
        (acc.0 + c.tiles_checked, acc.1 + c.tiles_reused)
    });
    if checked > 0 {
        println!(
            "tile reuse on the suite (2-ZEB RBCD leg): {reused} of {checked} tiles replayed \
             ({}); pass --no-reuse to disable",
            fmt_pct(reused as f64 / checked as f64)
        );
    }

    if want("fig8a") {
        print_fig8_speedup(&suite, false, PaperRef { note: "paper geomean ~250x (1 ZEB), ~600x (2 ZEB)" })?;
    }
    if want("fig8b") {
        print_fig8_energy(&suite, false, PaperRef { note: "paper geomean ~273x (1 ZEB), ~448x (2 ZEB)" })?;
    }
    if want("fig8c") {
        print_fig8_speedup(&suite, true, PaperRef { note: "paper geomean ~1400x (1 ZEB), ~3400x (2 ZEB)" })?;
    }
    if want("fig8d") {
        print_fig8_energy(&suite, true, PaperRef { note: "paper geomean ~1750x (1 ZEB), ~2875x (2 ZEB)" })?;
    }
    if want("fig9a") {
        print_fig9(&suite, true)?;
    }
    if want("fig9b") {
        print_fig9(&suite, false)?;
    }
    if want("fig10") {
        print_fig10(&suite)?;
    }
    if want("fig11") {
        print_fig11(&suite)?;
    }
    if want("table3") {
        print_table3(&suite)?;
    }
    if want("sec52") {
        print_sec52(&suite)?;
    }
    if want("ablation-zebs") {
        print_ablation(&suite)?;
    }
    if wanted.iter().any(|w| w == "debug") {
        print_debug(&suite)?;
    }
    Ok(())
}

fn print_table1(opts: &RunOptions) -> Result<(), TableError> {
    let g: &GpuConfig = &opts.gpu;
    let mut t = Table::new("Table 1 — CPU/GPU simulation parameters", &["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("GPU frequency", format!("{} MHz", g.frequency_hz / 1_000_000)),
        ("Screen resolution", format!("{}x{}", g.viewport.width, g.viewport.height)),
        ("Tile size", format!("{0}x{0}", g.tile_size)),
        ("Vertex processors", g.vertex_processors.to_string()),
        ("Fragment processors", g.fragment_processors.to_string()),
        ("Rasterizer", format!("{} fragments/cycle", g.raster_frags_per_cycle)),
        ("Primitive assembly", format!("{} triangle/cycle", g.triangles_per_cycle)),
        ("Vertex cache", format!("{} KB, {}-way", g.vertex_cache.size_bytes / 1024, g.vertex_cache.ways)),
        ("L2 cache", format!("{} KB, {}-way", g.l2_cache.size_bytes / 1024, g.l2_cache.ways)),
        ("Main memory latency", format!("{}-{} cycles", g.mem_latency_min, g.mem_latency_max)),
        ("ZEB buffers", "2x 8 KB (256 lists x 8 x 32 bit)".to_string()),
        ("CPU frequency", format!("{} MHz", opts.cpu.frequency_hz / 1_000_000)),
        ("CPU cores", opts.cpu.cores.to_string()),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v])?;
    }
    print!("{}", t.render());
    Ok(())
}

fn print_table2() -> Result<(), TableError> {
    let mut t = Table::new("Table 2 — benchmarks", &["benchmark", "alias", "description"]);
    for s in rbcd_workloads::suite() {
        t.row(vec![s.name.to_string(), s.alias.to_string(), s.description.to_string()])?;
    }
    print!("{}", t.render());
    Ok(())
}

fn print_fig2(opts: &RunOptions) -> Result<(), TableError> {
    let verdicts = accuracy::figure2_verdicts(&opts.gpu);
    let mut t = Table::new(
        "Figure 2 — accuracy on a concave body (A=L-prism, B=notch corner, C=inside hull)",
        &["pair", "AABB", "GJK-hull", "RBCD", "exact"],
    );
    let yn = |b: bool| if b { "collide" } else { "-" }.to_string();
    for v in &verdicts {
        t.row(vec![
            format!("({}, {})", v.pair.0, v.pair.1),
            yn(v.aabb),
            yn(v.gjk),
            yn(v.rbcd),
            yn(v.exact),
        ])?;
    }
    print!("{}", t.render());
    let (a, g, r) = accuracy::false_positive_counts(&verdicts);
    println!("false positives — AABB: {a}, GJK: {g}, RBCD: {r} (paper: AABB 2, GJK 1, RBCD 0)");
    Ok(())
}

fn print_sec53(opts: &RunOptions) -> Result<(), TableError> {
    let mut t = Table::new(
        "§5.3 — RBCD static power as a fraction of GPU static power (2 ZEBs)",
        &["list length M", "fraction", "paper bound"],
    );
    for (m, bound) in [(4usize, ""), (8, "<1%"), (16, ""), (32, ""), (64, "<5%")] {
        t.row(vec![
            m.to_string(),
            fmt_pct(opts.energy.rbcd_static_fraction(2, m)),
            bound.to_string(),
        ])?;
    }
    print!("{}", t.render());
    Ok(())
}

fn print_fig8_speedup(suite: &SuiteResult, gjk: bool, paper: PaperRef) -> Result<(), TableError> {
    let which = if gjk { "GJK-CD" } else { "Broad-CD" };
    let id = if gjk { "Figure 8c" } else { "Figure 8a" };
    let mut t = Table::new(
        &format!("{id} — RBCD speedup vs {which} (eq. 1)"),
        &["benchmark", "1 ZEB", "2 ZEB"],
    );
    let mut s1 = Vec::new();
    let mut s2 = Vec::new();
    for b in &suite.benchmarks {
        let cpu = if gjk { &b.cpu_gjk } else { &b.cpu_broad };
        let c1 = b.comparison(&b.rbcd1, cpu).speedup;
        let c2 = b.comparison(&b.rbcd2, cpu).speedup;
        s1.push(c1);
        s2.push(c2);
        t.row(vec![b.alias.clone(), fmt_x(c1), fmt_x(c2)])?;
    }
    t.row(vec!["geo.mean".into(), fmt_x(geomean(s1)), fmt_x(geomean(s2))])?;
    print!("{}", t.render());
    println!("({})", paper.note);
    Ok(())
}

fn print_fig8_energy(suite: &SuiteResult, gjk: bool, paper: PaperRef) -> Result<(), TableError> {
    let which = if gjk { "GJK-CD" } else { "Broad-CD" };
    let id = if gjk { "Figure 8d" } else { "Figure 8b" };
    let mut t = Table::new(
        &format!("{id} — RBCD energy reduction vs {which} (eq. 2)"),
        &["benchmark", "1 ZEB", "2 ZEB"],
    );
    let mut s1 = Vec::new();
    let mut s2 = Vec::new();
    for b in &suite.benchmarks {
        let cpu = if gjk { &b.cpu_gjk } else { &b.cpu_broad };
        let c1 = b.comparison(&b.rbcd1, cpu).energy_reduction;
        let c2 = b.comparison(&b.rbcd2, cpu).energy_reduction;
        s1.push(c1);
        s2.push(c2);
        t.row(vec![b.alias.clone(), fmt_x(c1), fmt_x(c2)])?;
    }
    t.row(vec!["geo.mean".into(), fmt_x(geomean(s1)), fmt_x(geomean(s2))])?;
    print!("{}", t.render());
    println!("({})", paper.note);
    Ok(())
}

fn print_fig9(suite: &SuiteResult, time: bool) -> Result<(), TableError> {
    let (id, what) = if time {
        ("Figure 9a", "GPU time with RBCD / baseline (eq. 3)")
    } else {
        ("Figure 9b", "GPU energy with RBCD / baseline (eq. 4)")
    };
    let mut t = Table::new(&format!("{id} — {what}"), &["benchmark", "1 ZEB", "2 ZEB"]);
    let mut n1 = Vec::new();
    let mut n2 = Vec::new();
    for b in &suite.benchmarks {
        let (a, c) = if time {
            (b.normalized_time(&b.rbcd1), b.normalized_time(&b.rbcd2))
        } else {
            (b.normalized_energy(&b.rbcd1), b.normalized_energy(&b.rbcd2))
        };
        n1.push(a);
        n2.push(c);
        t.row(vec![b.alias.clone(), fmt_norm(a), fmt_norm(c)])?;
    }
    t.row(vec!["geo.mean".into(), fmt_norm(geomean(n1)), fmt_norm(geomean(n2))])?;
    print!("{}", t.render());
    if time {
        println!("(paper: overhead ~5.4% with 1 ZEB, ~3% with 2 ZEBs; crazy worst 1-ZEB ~7%, best 2-ZEB <1%)");
    } else {
        println!("(paper: overhead ~5.1% with 1 ZEB, ~3.5% with 2 ZEBs)");
    }
    Ok(())
}

fn print_fig10(suite: &SuiteResult) -> Result<(), TableError> {
    let mut t = Table::new(
        "Figure 10 — GPU time breakdown (RBCD, 2 ZEBs)",
        &["benchmark", "raster", "geometry"],
    );
    let mut fr = Vec::new();
    for b in &suite.benchmarks {
        let r = b.raster_fraction();
        fr.push(r);
        t.row(vec![b.alias.clone(), fmt_pct(r), fmt_pct(1.0 - r)])?;
    }
    t.row(vec![
        "geo.mean".into(),
        fmt_pct(geomean(fr.clone())),
        fmt_pct(1.0 - geomean(fr)),
    ])?;
    print!("{}", t.render());
    println!("(paper: the raster pipeline dominates GPU time)");
    Ok(())
}

fn print_fig11(suite: &SuiteResult) -> Result<(), TableError> {
    let mut t = Table::new(
        "Figure 11 — activity normalized to baseline (RBCD, 2 ZEBs)",
        &["benchmark", "TC loads", "primitives", "fragments", "raster cycles"],
    );
    let mut acc = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for b in &suite.benchmarks {
        let (l, p, f, c) = b.activity_factors();
        for (v, a) in [l, p, f, c].iter().zip(acc.iter_mut()) {
            a.push(*v);
        }
        t.row(vec![b.alias.clone(), fmt_norm(l), fmt_norm(p), fmt_norm(f), fmt_norm(c)])?;
    }
    t.row(vec![
        "geo.mean".into(),
        fmt_norm(geomean(acc[0].clone())),
        fmt_norm(geomean(acc[1].clone())),
        fmt_norm(geomean(acc[2].clone())),
        fmt_norm(geomean(acc[3].clone())),
    ])?;
    print!("{}", t.render());
    println!("(paper geomeans: TC loads ~1.193, primitives ~1.184, fragments ~1.063, raster cycles ~1.037)");
    Ok(())
}

fn print_table3(suite: &SuiteResult) -> Result<(), TableError> {
    let ms: Vec<usize> = suite.benchmarks[0].overflow.iter().map(|&(m, _)| m).collect();
    let headers: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(ms.iter().map(|m| format!("M={m}")))
        .chain(["all pairs @8".to_string()])
        .collect();
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Table 3 — ZEB list overflow rate", &hdr_refs);
    let mut means: Vec<Vec<f64>> = vec![Vec::new(); ms.len()];
    for b in &suite.benchmarks {
        let mut row = vec![b.alias.clone()];
        for (k, &(_, rate)) in b.overflow.iter().enumerate() {
            means[k].push(rate);
            row.push(fmt_pct(rate));
        }
        row.push(if b.all_pairs_detected_at_m8 { "yes" } else { "NO" }.to_string());
        t.row(row)?;
    }
    let mut avg_row = vec!["average".to_string()];
    for m in &means {
        avg_row.push(fmt_pct(m.iter().sum::<f64>() / m.len() as f64));
    }
    avg_row.push(String::new());
    t.row(avg_row)?;
    print!("{}", t.render());
    println!("(paper @M=4: cap 1.57, crazy 1.20, sleepy 5.87, temple 16.61; @8 ≤0.96 avg 0.08; @16 all 0;");
    println!(" and despite @8 overflows, all collisions were still detected)");
    Ok(())
}

fn print_sec52(suite: &SuiteResult) -> Result<(), TableError> {
    let mut t = Table::new(
        "§5.2 — deferred-culling overheads (RBCD 2 ZEBs vs baseline)",
        &[
            "benchmark",
            "prims already rasterized",
            "frags already produced",
            "TC stores",
            "TC write misses",
            "geometry time",
        ],
    );
    for b in &suite.benchmarks {
        let (stores, misses) = b.store_ratios();
        t.row(vec![
            b.alias.clone(),
            fmt_pct(b.prims_already_rasterized()),
            fmt_pct(b.fragments_already_produced()),
            fmt_norm(stores),
            fmt_norm(misses),
            fmt_norm(b.geometry_time_ratio()),
        ])?;
    }
    print!("{}", t.render());
    println!("(paper: 84.4% prims already rasterized produce 94% of RBCD fragments;");
    println!(" +32% TC stores, +8.8% write misses, geometry time +<1%)");
    Ok(())
}

fn print_ablation(suite: &SuiteResult) -> Result<(), TableError> {
    let mut t = Table::new(
        "Ablation — ZEB count vs time and energy (normalized to 2 ZEBs)",
        &["benchmark", "zebs", "time", "energy"],
    );
    for b in &suite.benchmarks {
        let (base_t, base_e) = b
            .zeb_ablation
            .iter()
            .find(|&&(z, _, _)| z == 2)
            .map(|&(_, t, e)| (t, e))
            .expect("2-ZEB point in the ablation");
        for &(z, secs, energy) in &b.zeb_ablation {
            t.row(vec![
                b.alias.clone(),
                z.to_string(),
                fmt_norm(secs / base_t),
                fmt_norm(energy / base_e),
            ])?;
        }
    }
    print!("{}", t.render());
    println!("(paper: >2 ZEBs does not improve time and slightly increases energy)");
    Ok(())
}

fn print_debug(suite: &SuiteResult) -> Result<(), TableError> {
    let mut t = Table::new(
        "DEBUG — raw magnitudes per benchmark",
        &[
            "benchmark",
            "base Mcyc/f",
            "delta2 kcyc/f",
            "coll frag %",
            "ins/frame k",
            "scan/raster %",
            "cpu-broad Mcyc/f",
            "cpu-gjk Mcyc/f",
            "t_cpu/t_frame",
            "geomΔ k/f",
            "rasterΔ k/f",
            "stall2 k/f",
            "prims r/b",
            "dramMB/f b",
            "dramMB/f r",
        ],
    );
    for b in &suite.benchmarks {
        let f = b.frames as f64;
        let base_c = b.baseline.stats.total_cycles() as f64;
        let delta = (b.rbcd2.stats.total_cycles() as f64 - base_c) / f / 1e3;
        let r = b.rbcd2.rbcd.as_ref().unwrap();
        let coll_share = b.rbcd2.stats.raster.fragments_collisionable as f64
            / b.rbcd2.stats.raster.fragments_rasterized as f64;
        let cpu_b = b.cpu_broad.report.cycles as f64 / f / 1e6;
        let cpu_g = b.cpu_gjk.report.cycles as f64 / f / 1e6;
        let tcpu_tframe = b.cpu_broad.report.seconds / (b.baseline.seconds);
        let geom_d = (b.rbcd2.stats.geometry.cycles as f64
            - b.baseline.stats.geometry.cycles as f64) / f / 1e3;
        let rast_d = (b.rbcd2.stats.raster.cycles as f64
            - b.baseline.stats.raster.cycles as f64) / f / 1e3;
        let stall2 = b.rbcd2.stats.raster.zeb_stall_cycles as f64 / f / 1e3;
        let prim_ratio = b.rbcd2.stats.raster.primitives_fetched as f64
            / b.baseline.stats.raster.primitives_fetched as f64;
        t.row(vec![
            b.alias.clone(),
            format!("{:.2}", base_c / f / 1e6),
            format!("{delta:.1}"),
            fmt_pct(coll_share),
            format!("{:.1}", r.insertions as f64 / f / 1e3),
            fmt_pct(r.scan_cycles as f64 / b.rbcd2.stats.raster.cycles as f64),
            format!("{cpu_b:.2}"),
            format!("{cpu_g:.2}"),
            format!("{tcpu_tframe:.2}"),
            format!("{geom_d:.1}"),
            format!("{rast_d:.1}"),
            format!("{stall2:.1}"),
            format!("{prim_ratio:.3}"),
            {
                let st = &b.baseline.stats;
                let bytes = (st.raster.tile_cache_loads.misses()
                    + st.geometry.tile_cache_stores.misses()
                    + st.geometry.vertex_cache.misses()) * 64
                    + st.raster.tiles_processed * 256 * 4;
                format!("{:.2}", bytes as f64 / f / 1e6)
            },
            {
                let st = &b.rbcd2.stats;
                let bytes = (st.raster.tile_cache_loads.misses()
                    + st.geometry.tile_cache_stores.misses()
                    + st.geometry.vertex_cache.misses()) * 64
                    + st.raster.tiles_processed * 256 * 4;
                format!("{:.2}", bytes as f64 / f / 1e6)
            },
        ])?;
    }
    print!("{}", t.render());
    Ok(())
}

/// Extension (§3.1): TBR vs IMR framebuffer traffic on the suite, plus
/// the memory a screen-sized RBCD buffer would need in IMR.
fn print_imr(opts: &RunOptions) -> Result<(), TableError> {
    use rbcd_gpu::{ImrSimulator, NullCollisionUnit, PipelineMode, Simulator};
    let mut t = Table::new(
        "Extension §3.1 — TBR vs IMR framebuffer DRAM traffic (MB/frame)",
        &["benchmark", "TBR", "IMR", "IMR/TBR", "IMR overdraw %"],
    );
    for scene in rbcd_workloads::suite() {
        let frames = opts.frames.unwrap_or(4).min(4);
        let mut tbr = Simulator::new(opts.gpu.clone());
        let mut imr = ImrSimulator::new(opts.gpu.clone());
        let mut tbr_bytes = 0u64;
        let mut imr_bytes = 0u64;
        let mut overdraw = 0u64;
        let mut shaded = 0u64;
        for f in 0..frames {
            let trace = scene.frame_trace(f);
            let ts = tbr.render_frame(&trace, PipelineMode::Baseline, &mut NullCollisionUnit);
            tbr_bytes += ts.raster.tiles_processed
                * (opts.gpu.tile_size as u64 * opts.gpu.tile_size as u64)
                * 4;
            let is = imr.render_frame(&trace);
            imr_bytes += is.framebuffer_dram_bytes;
            overdraw += is.overdraw_writes;
            shaded += is.fragments_shaded;
        }
        let f = frames as f64;
        t.row(vec![
            scene.alias.to_string(),
            format!("{:.2}", tbr_bytes as f64 / f / 1e6),
            format!("{:.2}", imr_bytes as f64 / f / 1e6),
            format!("{:.1}x", imr_bytes as f64 / tbr_bytes.max(1) as f64),
            fmt_pct(overdraw as f64 / shaded.max(1) as f64),
        ])?;
    }
    print!("{}", t.render());
    let imr = rbcd_gpu::ImrSimulator::new(opts.gpu.clone());
    let (imr_mem, tbr_mem) = imr.rbcd_memory_requirements(8);
    println!(
        "RBCD buffer requirement: IMR needs {:.1} MB of screen-sized lists vs {} KB of on-chip ZEBs in TBR ({}x)",
        imr_mem as f64 / 1e6,
        tbr_mem / 1024,
        imr_mem / tbr_mem
    );
    println!("(the paper evaluates on TBR for exactly this reason, §3.1)");
    Ok(())
}

/// Extension (§5.3): spare-entry pool vs overflow rate at M = 4.
fn print_spares(opts: &RunOptions) -> Result<(), TableError> {
    use rbcd_bench::runner::run_gpu;
    use rbcd_core::RbcdConfig;
    let mut t = Table::new(
        "Extension §5.3 — spare-entry pool vs overflow at M = 4 (2 ZEBs)",
        &["benchmark", "0 spares", "64 spares", "256 spares"],
    );
    for scene in rbcd_workloads::suite() {
        let frames = opts.frames.unwrap_or(6).min(6);
        let rate = |spares: usize| {
            let run = run_gpu(
                &scene,
                frames,
                opts,
                Some(RbcdConfig {
                    list_capacity: 4,
                    spare_entries: spares,
                    ..RbcdConfig::default()
                }),
            );
            run.rbcd.expect("rbcd run").overflow_rate()
        };
        t.row(vec![
            scene.alias.to_string(),
            fmt_pct(rate(0)),
            fmt_pct(rate(64)),
            fmt_pct(rate(256)),
        ])?;
    }
    print!("{}", t.render());
    println!("(the paper proposes dynamically allocated spare entries as an overflow mitigation)");
    Ok(())
}

/// Extension (§3.6): cost of a collision-only pass (extra physics time
/// steps) relative to a full rendered frame.
fn print_timesteps(opts: &RunOptions) -> Result<(), TableError> {
    use rbcd_core::{detect_collision_pass, detect_frame_collisions, RbcdConfig};
    let mut t = Table::new(
        "Extension §3.6 — collision-only pass vs full frame (cycles/frame)",
        &["benchmark", "full frame", "collision pass", "pass/frame", "same pairs"],
    );
    for scene in rbcd_workloads::suite() {
        let trace = scene.frame_trace(2);
        let full = detect_frame_collisions(&trace, &opts.gpu, &RbcdConfig::default());
        let pass = detect_collision_pass(&trace, &opts.gpu, &RbcdConfig::default());
        t.row(vec![
            scene.alias.to_string(),
            full.gpu_stats.total_cycles().to_string(),
            pass.gpu_stats.total_cycles().to_string(),
            fmt_pct(pass.gpu_stats.total_cycles() as f64 / full.gpu_stats.total_cycles() as f64),
            if pass.pairs() == full.pairs() { "yes" } else { "differs" }.to_string(),
        ])?;
    }
    print!("{}", t.render());
    println!("(rasterizing just the collisionable objects — no fragment processing — enables");
    println!(" multiple physics time steps per rendered frame, §3.6)");
    Ok(())
}

/// Extension (§3.1): shading work an ideal deferred renderer (PowerVR
/// TBDR) would save relative to the early-Z TBR baseline — overdraw
/// that passes the depth test and gets shaded anyway.
fn print_tbdr(opts: &RunOptions) -> Result<(), TableError> {
    use rbcd_gpu::{NullCollisionUnit, PipelineMode, Simulator};
    let mut t = Table::new(
        "Extension §3.1 — early-Z shading vs ideal deferred shading (TBDR)",
        &["benchmark", "shaded frags/f", "covered pixels/f", "overdraw shaded"],
    );
    for scene in rbcd_workloads::suite() {
        let frames = opts.frames.unwrap_or(4).min(4);
        let mut sim = Simulator::new(opts.gpu.clone());
        let mut shaded = 0u64;
        let mut covered = 0u64;
        for f in 0..frames {
            let s = sim.render_frame(&scene.frame_trace(f), PipelineMode::Baseline, &mut NullCollisionUnit);
            shaded += s.raster.fragments_shaded;
            covered += s.raster.pixels_covered;
        }
        let f = frames as f64;
        t.row(vec![
            scene.alias.to_string(),
            format!("{:.0}k", shaded as f64 / f / 1e3),
            format!("{:.0}k", covered as f64 / f / 1e3),
            fmt_pct((shaded - covered) as f64 / shaded.max(1) as f64),
        ])?;
    }
    print!("{}", t.render());
    println!("(PowerVR's deferred rendering 'guarantees the Fragment Processor is used only");
    println!(" for those fragments that will be part of the final image', §3.1 — this is the");
    println!(" shading work it would remove from our early-Z baseline)");
    Ok(())
}

/// Extension (§2.2): detection accuracy vs rendering resolution. The
/// paper ties RBCD's granularity to pixel resolution; because fragments
/// sample at pixel centres, discretization *erodes* silhouettes, so the
/// resolution limit manifests as missed sub-pixel overlap slivers —
/// which shrink as resolution grows.
fn print_resolution(_opts: &RunOptions) -> Result<(), TableError> {
    use rbcd_core::{detect_frame_collisions, RbcdConfig};
    use rbcd_gpu::{Camera, DrawCommand, FrameTrace, ObjectId};
    use rbcd_math::{Mat4, Vec3, Viewport};

    let camera = Camera::perspective(Vec3::new(0.0, 0.0, 7.0), Vec3::ZERO, 1.0, 0.1, 100.0);
    let sphere = rbcd_geometry::shapes::icosphere(1.0, 3);
    let make_trace = |dx: f32| {
        FrameTrace::new(
            camera,
            vec![
                DrawCommand::collidable(sphere.clone(), ObjectId::new(1)),
                DrawCommand::collidable(sphere.clone(), ObjectId::new(2))
                    .with_model(Mat4::translation(Vec3::new(dx, 0.0, 0.0))),
            ],
        )
    };
    // A true sliver overlap (0.01 deep) and a true near-miss (0.05 gap).
    let overlap = make_trace(1.99);
    let miss = make_trace(2.05);

    let mut t = Table::new(
        "Extension §2.2 — sliver overlap (0.01) and near-miss (0.05) vs resolution",
        &["resolution", "pixels/unit", "overlap 0.01", "gap 0.05"],
    );
    for (w, h) in [(100u32, 60u32), (200, 120), (400, 240), (800, 480), (1600, 960)] {
        let gpu = rbcd_gpu::GpuConfig {
            viewport: Viewport::new(w, h),
            ..rbcd_gpu::GpuConfig::default()
        };
        let pair = (ObjectId::new(1), ObjectId::new(2));
        let hit_overlap = detect_frame_collisions(&overlap, &gpu, &RbcdConfig::default())
            .pairs()
            .contains(&pair);
        let hit_miss = detect_frame_collisions(&miss, &gpu, &RbcdConfig::default())
            .pairs()
            .contains(&pair);
        // Pixels per world unit at the spheres' depth (7 units out).
        let px_per_unit = h as f32 / (2.0 * 7.0 * (0.5f32).tan());
        t.row(vec![
            format!("{w}x{h}"),
            format!("{px_per_unit:.1}"),
            if hit_overlap { "detected" } else { "MISSED" }.to_string(),
            if hit_miss { "FALSE HIT" } else { "clear" }.to_string(),
        ])?;
    }
    print!("{}", t.render());
    println!("(centre-sampled rasterization erodes silhouettes, so near-misses stay clear at");
    println!(" every resolution while sub-pixel overlap slivers need enough pixels per unit to");
    println!(" be seen — 'the higher the rendering resolution, the smaller the false");
    println!(" collisionable area', §2.2)");
    Ok(())
}

/// Temporal-coherence experiment (`temporal`, run by `all` and by
/// `--smoke`): render the static/resting clips of
/// [`rbcd_workloads::temporal_suite`] twice — reuse off, then reuse on
/// — and report per-scene reuse rate plus the simulated-cycle speedup
/// the signature-based tile replay buys. The exactness contract is
/// enforced, not assumed: if reuse changes a pair set or any `rbcd.*`
/// counter the run exits non-zero. Writes
/// `BENCH_temporal_coherence.json`.
fn run_temporal_experiment(opts: &RunOptions) -> Result<(), TableError> {
    use rbcd_bench::runner::run_gpu;

    let scenes = rbcd_workloads::temporal_suite();
    eprintln!(
        "temporal coherence: {} clips, reuse off vs on, {} thread(s)...",
        scenes.len(),
        opts.threads.max(1)
    );
    let mut t = Table::new(
        "Temporal coherence — signature-based tile reuse (simulated cycles)",
        &["benchmark", "frames", "reuse rate", "cycles off", "cycles on", "speedup", "identical"],
    );
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let (mut checked, mut reused) = (0u64, 0u64);
    for scene in &scenes {
        let frames = opts.frames.unwrap_or(scene.frames).min(scene.frames).max(2);
        let off = run_gpu(
            scene,
            frames,
            &RunOptions { reuse: false, ..opts.clone() },
            Some(RbcdConfig::default()),
        );
        let on = run_gpu(
            scene,
            frames,
            &RunOptions { reuse: true, ..opts.clone() },
            Some(RbcdConfig::default()),
        );

        // Replay must be invisible in the results: same pairs, same
        // RBCD-unit books. Only the timeline may shrink.
        let identical = on.pairs == off.pairs && on.rbcd == off.rbcd;
        if !identical {
            eprintln!(
                "REUSE DIVERGENCE on {}: reuse-on results differ from reuse-off",
                scene.alias
            );
            std::process::exit(1);
        }

        let tiles_checked = on.counters.get("coherence.tiles_checked");
        let tiles_reused = on.counters.get("coherence.tiles_reused");
        checked += tiles_checked;
        reused += tiles_reused;
        let rate = tiles_reused as f64 / tiles_checked.max(1) as f64;
        let cycles_off = off.stats.total_cycles();
        let cycles_on = on.stats.total_cycles();
        let speedup = cycles_off as f64 / cycles_on.max(1) as f64;
        speedups.push(speedup);
        t.row(vec![
            scene.alias.to_string(),
            frames.to_string(),
            fmt_pct(rate),
            cycles_off.to_string(),
            cycles_on.to_string(),
            fmt_x(speedup),
            "yes".to_string(),
        ])?;
        rows.push((scene.alias.to_string(), frames, tiles_checked, tiles_reused, rate, cycles_off, cycles_on, speedup));
    }
    print!("{}", t.render());
    let geo = geomean(speedups);
    println!(
        "geomean simulated-cycle speedup {} | reuse rate {} ({reused} of {checked} tiles \
         replayed; pairs and event counters bit-identical to reuse-off)",
        fmt_x(geo),
        fmt_pct(reused as f64 / checked.max(1) as f64)
    );

    // Hand-rolled JSON — the workspace deliberately has no serde. The
    // shared header (schema_version, bench id, host, geomean) comes
    // from `rbcd_bench::schema`, which also re-validates the document
    // before it is written.
    let mut json = rbcd_bench::schema::header("temporal_coherence", geo);
    json.push_str(&format!("  \"threads\": {},\n", opts.threads.max(1)));
    json.push_str(&format!(
        "  \"viewport\": \"{}x{}\",\n",
        opts.gpu.viewport.width, opts.gpu.viewport.height
    ));
    json.push_str("  \"identical_results\": true,\n");
    json.push_str(&format!("  \"speedup_geomean\": {geo:.4},\n"));
    json.push_str(&format!(
        "  \"reuse_rate\": {:.6},\n",
        reused as f64 / checked.max(1) as f64
    ));
    json.push_str("  \"scenes\": [\n");
    for (i, (alias, frames, tiles_checked, tiles_reused, rate, cycles_off, cycles_on, speedup)) in
        rows.iter().enumerate()
    {
        json.push_str(&format!(
            "    {{\"name\": \"{alias}\", \"frames\": {frames}, \
             \"tiles_checked\": {tiles_checked}, \"tiles_reused\": {tiles_reused}, \
             \"reuse_rate\": {rate:.6}, \"cycles_off\": {cycles_off}, \
             \"cycles_on\": {cycles_on}, \"speedup\": {speedup:.4}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_temporal_coherence.json";
    match rbcd_bench::schema::write(path, &json) {
        Ok(_) => println!("wrote {path}"),
        Err(e) => eprintln!("{path}: {e}"),
    }
    Ok(())
}

/// Trace experiment (`--trace <out.json>`): render the `cap` workload
/// with the instrumentation layer on and export the simulated-cycle
/// timeline as Chrome trace-event JSON plus one per-tile heatmap CSV
/// per metric (`<stem>.<metric>.csv`). The JSON is re-parsed with the
/// crate's own parser before it is trusted, and the heatmap totals are
/// cross-checked against the RBCD unit's counters; any disagreement is
/// an error (non-zero exit).
fn run_trace_experiment(path: &str, opts: &RunOptions) -> Result<(), Box<dyn std::error::Error>> {
    use rbcd_trace::HEATMAP_METRICS;

    let scene = rbcd_workloads::cap();
    let frames = opts.frames.unwrap_or(4).min(scene.frames);
    eprintln!(
        "tracing {frames} frames of '{}' at {} thread(s)...",
        scene.alias,
        opts.threads.max(1)
    );
    let (run, trace) = run_gpu_traced(&scene, frames, opts, RbcdConfig::default());

    let json = trace.to_chrome_json();
    rbcd_trace::json::parse(&json)
        .map_err(|e| format!("emitted trace JSON failed to re-parse: {e}"))?;
    if trace.events().is_empty() {
        return Err("trace captured no events".into());
    }
    std::fs::write(path, &json)?;
    println!(
        "wrote {path} ({} events over {} frames; load in chrome://tracing or Perfetto)",
        trace.events().len(),
        trace.frames()
    );

    let stem = path.strip_suffix(".json").unwrap_or(path);
    for metric in HEATMAP_METRICS {
        let csv = trace.heatmap_csv(metric).expect("metric names come from HEATMAP_METRICS");
        let out = format!("{stem}.{metric}.csv");
        std::fs::write(&out, &csv)?;
        println!("wrote {out}");
    }

    // The exports must agree with the unit's own books, read through
    // the unified counter registry.
    let heat = trace.heat();
    for (metric, key) in [("overflows", "rbcd.overflows"), ("pairs", "rbcd.pairs_emitted")] {
        if heat.total(metric) != run.counters.get(key) {
            return Err(format!(
                "heatmap {metric} total {} disagrees with counter {key} = {}",
                heat.total(metric),
                run.counters.get(key)
            )
            .into());
        }
    }
    println!(
        "trace cross-check: {} insertions, {} overflows, {} pairs — heatmaps match the counters",
        run.counters.get("rbcd.insertions"),
        run.counters.get("rbcd.overflows"),
        run.counters.get("rbcd.pairs_emitted")
    );
    Ok(())
}

/// Fault-injection experiment (`--faults <plan>`): corrupt the workload
/// traces with the named plan, sweep the forced list capacity over
/// M ∈ {1,2,4,8} with the degradation ladder enabled, and report how
/// much of the software oracle's pair set survives — per fault class
/// and per ladder rung. Writes `BENCH_fault_tolerance.json` and exits
/// non-zero if any pair was lost without a counted overflow.
fn run_fault_experiment(plan_name: &str, opts: &RunOptions, smoke: bool) -> Result<(), TableError> {
    use rbcd_bench::faults::run_fault_tolerance;

    const SEED: u64 = 0xFA01_7B5E;
    let plan = FaultPlan::preset(plan_name, SEED).expect("plan validated at parse time");
    let m_values = [1usize, 2, 4, 8];
    let scenes = if smoke {
        vec![rbcd_workloads::shells(), rbcd_workloads::temple()]
    } else {
        let mut s = rbcd_workloads::suite();
        s.push(rbcd_workloads::shells());
        s
    };
    let mut opts = opts.clone();
    opts.frames = Some(opts.frames.unwrap_or(4).min(if smoke { 2 } else { 8 }));

    eprintln!(
        "injecting faults (plan '{plan_name}', seed {SEED:#x}) over {} scenes x M {m_values:?}...",
        scenes.len()
    );
    let t0 = Instant::now();
    let result = run_fault_tolerance(&scenes, plan_name, plan, &m_values, &opts);
    eprintln!("fault sweep simulated in {:.1?} of host time", t0.elapsed());

    // Per-class summary: what was injected and which defense caught it.
    let mut log = rbcd_core::FaultLog::default();
    let mut quarantined = 0u64;
    for s in &result.scenes {
        for c in &s.cells {
            log.accumulate(&c.faults);
            quarantined += c.quarantined;
        }
    }
    let mut t = Table::new(
        &format!("Fault classes — plan '{plan_name}' (summed over the whole sweep)"),
        &["class", "injected", "defense"],
    );
    let classes: [(&str, u64, &str); 7] = [
        ("NaN mesh vertices", log.nan_meshes, "quarantined at draw ingest"),
        ("zero-scale models", log.degenerate_models, "degenerate triangles dropped pre-binning"),
        ("NaN model matrices", log.malformed_models, "quarantined at draw ingest"),
        ("forged object ids", log.bad_ids, "quarantined at draw ingest"),
        ("duplicated draws", log.duplicated_draws, "idempotent pair set (same-id surfaces)"),
        ("forced tiny M", if plan.forced_m.is_some() { 1 } else { 0 }, "degradation ladder"),
        ("spare-pool exhaustion", u64::from(plan.exhaust_spares), "degradation ladder"),
    ];
    for (class, injected, defense) in classes {
        t.row(vec![class.to_string(), injected.to_string(), defense.to_string()])?;
    }
    t.row(vec!["draws quarantined".into(), quarantined.to_string(), String::new()])?;
    print!("{}", t.render());

    // Per-(scene, M) recovery and rung histogram.
    let mut t = Table::new(
        "Degradation ladder — recovery vs software oracle under injection",
        &[
            "benchmark", "M", "overflows", "ff drops", "clean", "spare", "rescan", "cpu",
            "escalated", "oracle pairs", "recovered", "silent",
        ],
    );
    for s in &result.scenes {
        for c in &s.cells {
            t.row(vec![
                s.alias.clone(),
                c.m.to_string(),
                c.overflows.to_string(),
                c.ff_drops.to_string(),
                c.rung_clean.to_string(),
                c.rung_spare.to_string(),
                c.rung_rescan.to_string(),
                c.rung_cpu.to_string(),
                c.escalated_objects.to_string(),
                c.oracle_pairs.to_string(),
                fmt_pct(c.recovered_fraction()),
                c.silent_losses.to_string(),
            ])?;
        }
    }
    print!("{}", t.render());
    let worst = result.worst_recovery();
    let silent = result.silent_losses();
    println!(
        "worst recovery {} | silent losses {silent} (every missing pair must trace to a counted overflow)",
        fmt_pct(worst)
    );

    // Hand-rolled JSON with the shared `rbcd_bench::schema` header; the
    // headline geomean for the fault sweep is the geomean of per-cell
    // recovered fractions.
    let geo = geomean(
        result
            .scenes
            .iter()
            .flat_map(|s| s.cells.iter().map(|c| c.recovered_fraction()))
            .collect::<Vec<f64>>(),
    );
    let mut json = rbcd_bench::schema::header("fault_tolerance", geo);
    json.push_str(&format!("  \"plan\": \"{}\",\n", result.plan));
    json.push_str(&format!("  \"seed\": {},\n", result.seed));
    json.push_str(&format!(
        "  \"m_sweep\": [{}],\n",
        m_values.map(|m| m.to_string()).join(", ")
    ));
    json.push_str(&format!("  \"worst_recovery\": {worst:.6},\n"));
    json.push_str(&format!("  \"silent_losses\": {silent},\n"));
    json.push_str("  \"scenes\": [\n");
    for (i, s) in result.scenes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"frames\": {}, \"cells\": [\n",
            s.alias, s.frames
        ));
        for (k, c) in s.cells.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"m\": {}, \"overflows\": {}, \"ff_drops\": {}, \
                 \"rung_clean\": {}, \"rung_spare\": {}, \"rung_rescan\": {}, \"rung_cpu\": {}, \
                 \"rescan_passes\": {}, \"escalated_objects\": {}, \"quarantined\": {}, \
                 \"faults_injected\": {}, \"oracle_pairs\": {}, \"gpu_recovered\": {}, \
                 \"cpu_recovered\": {}, \"missing_pairs\": {}, \"silent_losses\": {}, \
                 \"recovered_fraction\": {:.6}}}{}\n",
                c.m, c.overflows, c.ff_drops,
                c.rung_clean, c.rung_spare, c.rung_rescan, c.rung_cpu,
                c.rescan_passes, c.escalated_objects, c.quarantined,
                c.faults.total(), c.oracle_pairs, c.gpu_recovered,
                c.cpu_recovered, c.missing_pairs, c.silent_losses,
                c.recovered_fraction(),
                if k + 1 < s.cells.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < result.scenes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_fault_tolerance.json";
    match rbcd_bench::schema::write(path, &json) {
        Ok(_) => println!("wrote {path}"),
        Err(e) => eprintln!("{path}: {e}"),
    }

    if silent > 0 {
        eprintln!("SILENT PAIR LOSS: {silent} pairs vanished without a counted overflow");
        std::process::exit(1);
    }
    Ok(())
}

/// The frame-deadline governor sweep: storm-faulted frames at 100 / 75
/// / 50 / 25 % of each scene's ungoverned cycle baseline, with full
/// degraded-result accounting and an oracle soundness check per frame.
fn run_overload_experiment(opts: &RunOptions, smoke: bool) -> Result<(), TableError> {
    use rbcd_bench::overload::run_overload;

    const SEED: u64 = 0x0E_2108;
    let plan = FaultPlan::preset("storm", SEED).expect("storm is a named preset");
    let budget_pcts = [100u32, 75, 50, 25];
    let scenes = if smoke {
        vec![rbcd_workloads::shells()]
    } else {
        let mut s = rbcd_workloads::suite();
        s.push(rbcd_workloads::shells());
        s
    };
    let mut opts = opts.clone();
    opts.frames = Some(opts.frames.unwrap_or(4).min(if smoke { 3 } else { 6 }));

    eprintln!(
        "overload governor (storm plan, seed {SEED:#x}): budgets {budget_pcts:?}% over {} scenes...",
        scenes.len()
    );
    let t0 = Instant::now();
    let result = run_overload(&scenes, "storm", plan, &budget_pcts, &opts);
    eprintln!("overload sweep simulated in {:.1?} of host time", t0.elapsed());

    let mut t = Table::new(
        "Frame-deadline governor — degraded-result accounting under storm overload",
        &[
            "benchmark", "budget", "used/budget cyc", "shed", "coarse", "trips", "exact",
            "cpu", "stale", "oracle", "delegated", "recovered",
        ],
    );
    for s in &result.scenes {
        for c in &s.cells {
            t.row(vec![
                s.alias.clone(),
                format!("{}%", c.budget_pct),
                format!("{}/{}", c.used_cycles, c.budget_cycles),
                c.tiles_shed.to_string(),
                c.tiles_coarsened.to_string(),
                c.breaker_trips.to_string(),
                c.exact_pairs.to_string(),
                c.cpu_verified_pairs.to_string(),
                c.stale_pairs.to_string(),
                c.oracle_pairs.to_string(),
                c.delegated_misses.to_string(),
                fmt_pct(c.recovered_fraction()),
            ])?;
        }
    }
    print!("{}", t.render());
    let violations = result.budget_violations();
    let misses = result.oracle_misses();
    println!(
        "worst recovery {} | budget violations {violations} | silent oracle misses {misses} \
         (unrouted non-shed pairs must always be exact)",
        fmt_pct(result.worst_recovery())
    );

    // Hand-rolled JSON with the shared schema header; this is the one
    // writer whose header carries a non-default governor block.
    let mut json = rbcd_bench::schema::header_with_governor(
        "overload",
        result.geomean_recovery(),
        result.governor_summary(),
    );
    json.push_str(&format!("  \"plan\": \"{}\",\n", result.plan));
    json.push_str(&format!("  \"seed\": {},\n", result.seed));
    json.push_str(&format!(
        "  \"budget_pcts\": [{}],\n",
        budget_pcts.map(|p| p.to_string()).join(", ")
    ));
    json.push_str(&format!("  \"worst_recovery\": {:.6},\n", result.worst_recovery()));
    json.push_str(&format!("  \"budget_violations\": {violations},\n"));
    json.push_str(&format!("  \"oracle_misses\": {misses},\n"));
    json.push_str("  \"scenes\": [\n");
    for (i, s) in result.scenes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"frames\": {}, \"baseline_cycles\": {}, \"cells\": [\n",
            s.alias, s.frames, s.baseline_cycles
        ));
        for (k, c) in s.cells.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"budget_pct\": {}, \"budget_cycles\": {}, \"used_cycles\": {}, \
                 \"budget_violations\": {}, \"degraded_frames\": {}, \"tiles_shed\": {}, \
                 \"tiles_coarsened\": {}, \"breaker_trips\": {}, \"exact_pairs\": {}, \
                 \"cpu_verified_pairs\": {}, \"stale_pairs\": {}, \"oracle_pairs\": {}, \
                 \"oracle_misses\": {}, \"delegated_misses\": {}, \
                 \"recovered_fraction\": {:.6}}}{}\n",
                c.budget_pct, c.budget_cycles, c.used_cycles,
                c.budget_violations, c.degraded_frames, c.tiles_shed,
                c.tiles_coarsened, c.breaker_trips, c.exact_pairs,
                c.cpu_verified_pairs, c.stale_pairs, c.oracle_pairs,
                c.oracle_misses, c.delegated_misses,
                c.recovered_fraction(),
                if k + 1 < s.cells.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < result.scenes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_overload.json";
    match rbcd_bench::schema::write(path, &json) {
        Ok(_) => println!("wrote {path}"),
        Err(e) => eprintln!("{path}: {e}"),
    }

    if violations > 0 || misses > 0 {
        eprintln!(
            "GOVERNOR CONTRACT BROKEN: {violations} budget violations, {misses} silent oracle misses"
        );
        std::process::exit(1);
    }
    Ok(())
}

/// Host-throughput smoke for the parallel tile pipeline. Runs each
/// suite workload through the RBCD configuration at 1 thread and at
/// `threads` threads (frame-level parallelism, fresh simulator per
/// frame so frames are independent), cross-checks that the simulated
/// results are bit-identical, and writes `BENCH_tile_pipeline.json`.
///
/// This replaces a `cargo bench` dependency: it needs nothing beyond
/// `std::time::Instant`.
fn run_tile_pipeline_bench(opts: &RunOptions, threads: usize, smoke: bool) -> Result<(), TableError> {
    let frames = opts.frames.unwrap_or(if smoke { 2 } else { 8 }).max(2);
    let cfg = RbcdConfig::default();
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut t = Table::new(
        &format!("Tile-pipeline throughput — 1 vs {threads} threads ({frames} frames/workload)"),
        &["benchmark", "seq frames/s", "par frames/s", "speedup", "identical"],
    );
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for scene in rbcd_workloads::suite() {
        // Warm-up pass so lazy allocations and page faults don't bill
        // the sequential leg.
        let _ = run_frames_parallel(&scene, frames.min(2), opts, cfg, 1);

        let t0 = Instant::now();
        let seq = run_frames_parallel(&scene, frames, opts, cfg, 1);
        let seq_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let par = run_frames_parallel(&scene, frames, opts, cfg, threads);
        let par_s = t1.elapsed().as_secs_f64();

        let identical =
            seq.stats == par.stats && seq.pairs == par.pairs && seq.rbcd == par.rbcd;
        if !identical {
            eprintln!("DETERMINISM VIOLATION on {}: parallel != sequential", scene.alias);
            std::process::exit(1);
        }
        let seq_fps = frames as f64 / seq_s;
        let par_fps = frames as f64 / par_s;
        let speedup = seq_s / par_s;
        speedups.push(speedup);
        t.row(vec![
            scene.alias.to_string(),
            format!("{seq_fps:.2}"),
            format!("{par_fps:.2}"),
            format!("{speedup:.2}x"),
            "yes".to_string(),
        ])?;
        rows.push((scene.alias.to_string(), seq_fps, par_fps, speedup));
    }
    print!("{}", t.render());
    let geo = geomean(speedups);
    println!(
        "geomean speedup {geo:.2}x at {threads} threads on a {host_cores}-core host \
         (expect ~1x when host cores < threads; simulated results are bit-identical either way)"
    );

    // Hand-rolled JSON with the shared `rbcd_bench::schema` header.
    let mut json = rbcd_bench::schema::header("tile_pipeline", geo);
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"frames_per_workload\": {frames},\n"));
    json.push_str(&format!(
        "  \"viewport\": \"{}x{}\",\n",
        opts.gpu.viewport.width, opts.gpu.viewport.height
    ));
    json.push_str("  \"deterministic\": true,\n");
    json.push_str(&format!("  \"speedup_geomean\": {geo:.4},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, (alias, seq_fps, par_fps, speedup)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{alias}\", \"seq_frames_per_s\": {seq_fps:.4}, \
             \"par_frames_per_s\": {par_fps:.4}, \"speedup\": {speedup:.4}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_tile_pipeline.json";
    match rbcd_bench::schema::write(path, &json) {
        Ok(_) => println!("wrote {path}"),
        Err(e) => eprintln!("{path}: {e}"),
    }
    Ok(())
}

/// Host-wall-clock A/B of the intra-tile hot path (`hotpath`, opt-in
/// like `bench`): for every suite workload, first run the full pipeline
/// once per [`rbcd_gpu::HotPathMode`] and require bit-identical pairs,
/// energy, and counters — minus exactly the three mask-only diagnostics
/// (`raster.rows_empty`, `raster.rows_full`, `tile.scan_skipped`),
/// which read 0 under `Reference` — then bin one frame and time
/// repeated raster passes per mode, isolating the rasterize + insert +
/// scan hot path from per-frame geometry work. Writes
/// `BENCH_raster_hotpath.json`; exits non-zero on any divergence.
fn run_hotpath_bench(opts: &RunOptions, smoke: bool) -> Result<(), TableError> {
    use rbcd_bench::runner::run_gpu;
    use rbcd_core::RbcdUnit;
    use rbcd_gpu::{HotPathMode, PipelineMode, SimulatorBuilder};

    const MASK_ONLY: [&str; 3] = ["raster.rows_empty", "raster.rows_full", "tile.scan_skipped"];

    let reps = if smoke { 5 } else { 40 };
    let frames = opts.frames.unwrap_or(2).clamp(1, 4);
    eprintln!("hotpath A/B: span-mask vs reference rasterizer, {reps} raster passes/scene...");

    let mut t = Table::new(
        "Intra-tile hot path — span-mask vs reference (host ns per raster pass)",
        &["benchmark", "reference ns", "mask ns", "speedup", "identical"],
    );
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for scene in rbcd_workloads::suite() {
        // Exactness leg: a full multi-frame run per mode. The contract
        // is bitwise — same pairs, same energy, and every counter equal
        // except the three host-side diagnostics only Mask produces.
        let run_mode = |mode: HotPathMode| {
            let o = RunOptions { gpu: GpuConfig { hot_path: mode, ..opts.gpu.clone() }, ..opts.clone() };
            run_gpu(&scene, frames, &o, Some(RbcdConfig { hot_path: mode, ..RbcdConfig::default() }))
        };
        let mask = run_mode(HotPathMode::Mask);
        let reference = run_mode(HotPathMode::Reference);
        let strip = |run: &rbcd_bench::metrics::GpuRun| -> Vec<(&'static str, u64)> {
            run.counters.iter().filter(|(k, _)| !MASK_ONLY.contains(k)).collect()
        };
        let identical = strip(&mask) == strip(&reference)
            && mask.pairs == reference.pairs
            && mask.energy_j == reference.energy_j;
        if !identical {
            eprintln!("HOT-PATH DIVERGENCE on {}: mask results differ from reference", scene.alias);
            std::process::exit(1);
        }

        // Wall-clock leg: geometry binned once per mode, then the two
        // raster passes are timed back-to-back in interleaved pairs.
        // Each pair shares the same instantaneous machine state, so the
        // per-pair ratio cancels common-mode noise (frequency phases,
        // hypervisor steal); the reported speedup is the median of the
        // per-pair ratios and the per-pass times are the per-mode
        // minima.
        let make = |mode: HotPathMode| {
            let sim = SimulatorBuilder::from_config(GpuConfig {
                hot_path: mode,
                ..opts.gpu.clone()
            })
            .build()
            .expect("benchmark GPU configurations are validated at construction");
            let unit = RbcdUnit::new(
                RbcdConfig { hot_path: mode, ..RbcdConfig::default() },
                opts.gpu.tile_size,
            )
            .expect("benchmark RBCD configurations are validated at construction");
            (sim, unit)
        };
        let trace = scene.frame_trace(0);
        let (mut ref_sim, mut ref_unit) = make(HotPathMode::Reference);
        let (mut mask_sim, mut mask_unit) = make(HotPathMode::Mask);
        ref_sim.bench_bin_frame(&trace, PipelineMode::Rbcd);
        mask_sim.bench_bin_frame(&trace, PipelineMode::Rbcd);
        let pass = |sim: &mut rbcd_gpu::Simulator, unit: &mut RbcdUnit| -> f64 {
            unit.new_frame();
            let t0 = Instant::now();
            let _ = sim.bench_raster_pass(&trace, PipelineMode::Rbcd, unit);
            let dt = t0.elapsed().as_secs_f64();
            let _ = unit.take_contacts();
            dt
        };
        // Warm-up pair so lazy allocations bill neither mode.
        let _ = pass(&mut ref_sim, &mut ref_unit);
        let _ = pass(&mut mask_sim, &mut mask_unit);
        let (mut ref_ns, mut mask_ns) = (f64::INFINITY, f64::INFINITY);
        let mut ratios = Vec::with_capacity(reps);
        for _ in 0..reps {
            let tr = pass(&mut ref_sim, &mut ref_unit);
            let tm = pass(&mut mask_sim, &mut mask_unit);
            ref_ns = ref_ns.min(tr * 1e9);
            mask_ns = mask_ns.min(tm * 1e9);
            ratios.push(tr / tm.max(1e-12));
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("pass ratios are finite"));
        let speedup = if ratios.len() % 2 == 1 {
            ratios[ratios.len() / 2]
        } else {
            (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
        };
        speedups.push(speedup);
        t.row(vec![
            scene.alias.to_string(),
            format!("{ref_ns:.0}"),
            format!("{mask_ns:.0}"),
            fmt_x(speedup),
            "yes".to_string(),
        ])?;
        rows.push((scene.alias.to_string(), ref_ns, mask_ns, speedup));
    }
    print!("{}", t.render());
    let geo = geomean(speedups);
    println!(
        "geomean hot-path speedup {} (span-mask vs reference; pairs, energy, and counters \
         bit-identical)",
        fmt_x(geo)
    );

    // Hand-rolled JSON with the shared `rbcd_bench::schema` header.
    let mut json = rbcd_bench::schema::header("raster_hotpath", geo);
    json.push_str(&format!("  \"raster_passes\": {reps},\n"));
    json.push_str(&format!("  \"frames_checked\": {frames},\n"));
    json.push_str(&format!(
        "  \"viewport\": \"{}x{}\",\n",
        opts.gpu.viewport.width, opts.gpu.viewport.height
    ));
    json.push_str("  \"identical_results\": true,\n");
    json.push_str(&format!("  \"speedup_geomean\": {geo:.4},\n"));
    json.push_str("  \"scenes\": [\n");
    for (i, (alias, ref_ns, mask_ns, speedup)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{alias}\", \"reference_ns_per_pass\": {ref_ns:.1}, \
             \"mask_ns_per_pass\": {mask_ns:.1}, \"speedup\": {speedup:.4}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_raster_hotpath.json";
    match rbcd_bench::schema::write(path, &json) {
        Ok(_) => println!("wrote {path}"),
        Err(e) => eprintln!("{path}: {e}"),
    }
    Ok(())
}

/// `frontend` experiment: the incremental geometry front-end (per-draw
/// transform/clip/bin caching with delta binning) against a full
/// per-frame rebuild.
///
/// Exactness legs first — the contract is bitwise: pairs, energy, and
/// every counter except the accounting-only `geom.*` plane must match
/// the rebuild run across thread counts, reuse on/off, storm/overflow
/// fault plans, a governed budget deep in overload, and the multi-
/// session batch service (per-session caches). Any divergence exits
/// non-zero. Then the wall-clock leg times repeated geometry passes
/// over the temporal clips per front-end in interleaved pairs
/// (median-of-ratios, like `hotpath`) and writes
/// `BENCH_geometry_frontend.json`.
fn run_frontend_bench(opts: &RunOptions, smoke: bool) -> Result<(), TableError> {
    use rbcd_bench::faults::run_fault_tolerance;
    use rbcd_bench::runner::run_gpu;
    use rbcd_core::RbcdUnit;
    use rbcd_gpu::{
        render_batch, BatchJob, FramePolicy, FrontendMode, PipelineMode, SimulatorBuilder,
    };

    let reps = if smoke { 5 } else { 30 };
    let scenes = rbcd_workloads::temporal_suite();
    eprintln!(
        "frontend A/B: incremental vs rebuild geometry, {reps} geometry passes/scene..."
    );

    // Exactness leg 1: whole runs across threads / reuse / governor.
    // `geom.*` is the only counter plane allowed to move.
    let strip = |run: &rbcd_bench::metrics::GpuRun| -> Vec<(&'static str, u64)> {
        run.counters.iter().filter(|(k, _)| !k.starts_with("geom.")).collect()
    };
    let mut diverged = false;
    for scene in &scenes {
        let frames = opts.frames.unwrap_or(scene.frames).min(scene.frames);
        let gov = rbcd_gpu::GovernorConfig {
            frame_budget_cycles: 25_000,
            ..rbcd_gpu::GovernorConfig::default()
        };
        let legs: [(usize, bool, Option<rbcd_gpu::GovernorConfig>); 4] =
            [(1, false, None), (2, true, None), (4, true, None), (2, false, Some(gov))];
        for (threads, reuse, governor) in legs {
            let run_mode = |frontend: FrontendMode| {
                let o = RunOptions { threads, reuse, frontend, governor, ..opts.clone() };
                run_gpu(scene, frames, &o, Some(RbcdConfig::default()))
            };
            let rebuild = run_mode(FrontendMode::Rebuild);
            let inc = run_mode(FrontendMode::Incremental);
            if strip(&rebuild) != strip(&inc)
                || rebuild.pairs != inc.pairs
                || rebuild.energy_j != inc.energy_j
                || rebuild.seconds != inc.seconds
            {
                eprintln!(
                    "FRONT-END DIVERGENCE on {} ({threads} threads, reuse {reuse}, governed \
                     {}): incremental differs from rebuild",
                    scene.alias,
                    governor.is_some()
                );
                diverged = true;
            }
        }
    }

    // Exactness leg 2: fault storms corrupt draws per frame (fresh mesh
    // allocations every frame — the memo's hard case); every recovery
    // statistic must match the rebuild front-end cell for cell.
    for preset in ["storm", "overflow"] {
        let plan = FaultPlan::preset(preset, 0xF207_7E4D).expect("preset exists");
        let fault_scenes = [rbcd_workloads::resting()];
        let run_mode = |frontend: FrontendMode| {
            let o = RunOptions {
                threads: 2,
                frontend,
                frames: Some(opts.frames.unwrap_or(4).min(4)),
                ..opts.clone()
            };
            run_fault_tolerance(&fault_scenes, preset, plan, &[2], &o)
        };
        let rebuild = run_mode(FrontendMode::Rebuild);
        let inc = run_mode(FrontendMode::Incremental);
        for (sa, sb) in rebuild.scenes.iter().zip(&inc.scenes) {
            for (ca, cb) in sa.cells.iter().zip(&sb.cells) {
                if ca != cb {
                    eprintln!(
                        "FRONT-END DIVERGENCE under '{preset}' faults on {} M={}",
                        sa.alias, ca.m
                    );
                    diverged = true;
                }
            }
        }
    }

    // Exactness leg 3: the batch service. Per-session geometry caches
    // must behave exactly like each session running solo.
    {
        let frames = opts.frames.unwrap_or(2).min(2);
        let policy = FramePolicy::new().with_reuse(true).with_frontend(FrontendMode::Incremental);
        let build = || {
            SimulatorBuilder::from_config(opts.gpu.clone())
                .policy(policy)
                .build()
                .expect("benchmark GPU configurations are validated at construction")
        };
        let unit = || {
            RbcdUnit::new(RbcdConfig::default(), opts.gpu.tile_size)
                .expect("benchmark RBCD configurations are validated at construction")
        };
        let mut solo_stats = Vec::new();
        for scene in &scenes {
            let (mut sim, mut u) = (build(), unit());
            let mut per_scene = Vec::new();
            for f in 0..frames {
                u.new_frame();
                let trace = scene.frame_trace(f);
                per_scene
                    .push(sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut u, 1));
                let _ = u.take_contacts();
            }
            solo_stats.push(per_scene);
        }
        let mut sims: Vec<_> = scenes.iter().map(|_| build()).collect();
        let mut units: Vec<_> = scenes.iter().map(|_| unit()).collect();
        // `f` drives the frame-trace generation and the solo-stats
        // lookup together, not a single indexed slice.
        #[allow(clippy::needless_range_loop)]
        for f in 0..frames {
            let traces: Vec<_> = scenes.iter().map(|s| s.frame_trace(f)).collect();
            let mut jobs: Vec<BatchJob<'_, RbcdUnit>> = sims
                .iter_mut()
                .zip(units.iter_mut())
                .zip(&traces)
                .map(|((sim, backend), trace)| BatchJob {
                    sim,
                    backend,
                    trace,
                    mode: PipelineMode::Rbcd,
                })
                .collect();
            let batched = render_batch(&mut jobs, 2).expect("batch jobs are well-formed");
            for u in units.iter_mut() {
                let _ = u.take_contacts();
                u.new_frame();
            }
            for (ji, stats) in batched.iter().enumerate() {
                if *stats != solo_stats[ji][f] {
                    eprintln!(
                        "FRONT-END DIVERGENCE in batch service: session {} frame {f} differs \
                         from its solo run",
                        scenes[ji].alias
                    );
                    diverged = true;
                }
            }
        }
    }
    if diverged {
        std::process::exit(1);
    }

    // Wall-clock leg: per scene, two simulators (one per front-end)
    // run the geometry stage over the clip's frames in interleaved
    // pairs. Each pair shares the same instantaneous machine state, so
    // the per-pair ratio cancels common-mode noise; the reported
    // speedup is the median of per-pair ratios and the per-pass times
    // are per-mode minima. The raster stage is deliberately excluded —
    // this knob only touches the geometry front-end.
    let mut t = Table::new(
        "Geometry front-end — incremental vs rebuild (host ns per geometry pass)",
        &["benchmark", "rebuild ns", "incremental ns", "speedup", "reused draws", "identical"],
    );
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for scene in &scenes {
        let frames = opts.frames.unwrap_or(scene.frames).min(scene.frames);
        let traces: Vec<_> = (0..frames).map(|f| scene.frame_trace(f)).collect();
        let make = |frontend: FrontendMode| {
            SimulatorBuilder::from_config(opts.gpu.clone())
                .policy(FramePolicy::new().with_frontend(frontend))
                .build()
                .expect("benchmark GPU configurations are validated at construction")
        };
        let mut rebuild_sim = make(FrontendMode::Rebuild);
        let mut inc_sim = make(FrontendMode::Incremental);
        let pass = |sim: &mut rbcd_gpu::Simulator| -> f64 {
            let t0 = Instant::now();
            for trace in &traces {
                let _ = sim.bench_bin_frame(trace, PipelineMode::Rbcd);
            }
            t0.elapsed().as_secs_f64()
        };
        // Warm-up pass per mode: lazy allocations bill neither mode,
        // and the incremental cache starts warm (the steady state a
        // long-running session lives in).
        let _ = pass(&mut rebuild_sim);
        let _ = pass(&mut inc_sim);
        let (mut rebuild_ns, mut inc_ns) = (f64::INFINITY, f64::INFINITY);
        let mut ratios = Vec::with_capacity(reps);
        for _ in 0..reps {
            let tr = pass(&mut rebuild_sim);
            let ti = pass(&mut inc_sim);
            rebuild_ns = rebuild_ns.min(tr * 1e9 / frames as f64);
            inc_ns = inc_ns.min(ti * 1e9 / frames as f64);
            ratios.push(tr / ti.max(1e-12));
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("pass ratios are finite"));
        let speedup = if ratios.len() % 2 == 1 {
            ratios[ratios.len() / 2]
        } else {
            (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
        };
        speedups.push(speedup);
        // Reuse accounting from a fresh incremental run (frames beyond
        // the first replay unchanged draws from the cache).
        let acct = run_gpu(
            scene,
            frames,
            &RunOptions { frontend: FrontendMode::Incremental, ..opts.clone() },
            Some(RbcdConfig::default()),
        );
        let reused = acct.counters.get("geom.reuse_draws");
        let shaded = acct.counters.get("geom.shaded_draws");
        t.row(vec![
            scene.alias.to_string(),
            format!("{rebuild_ns:.0}"),
            format!("{inc_ns:.0}"),
            fmt_x(speedup),
            format!("{reused}/{}", reused + shaded),
            "yes".to_string(),
        ])?;
        rows.push((scene.alias.to_string(), rebuild_ns, inc_ns, speedup, reused, shaded));
    }
    print!("{}", t.render());
    let geo = geomean(speedups);
    println!(
        "geomean geometry front-end speedup {} (incremental vs rebuild; pairs, energy, and \
         counters bit-identical across threads, reuse, faults, governor, and batch)",
        fmt_x(geo)
    );

    let mut json = rbcd_bench::schema::header("geometry_frontend", geo);
    json.push_str(&format!("  \"geometry_passes\": {reps},\n"));
    json.push_str(&format!(
        "  \"viewport\": \"{}x{}\",\n",
        opts.gpu.viewport.width, opts.gpu.viewport.height
    ));
    json.push_str("  \"identical_results\": true,\n");
    json.push_str(&format!("  \"speedup_geomean\": {geo:.4},\n"));
    json.push_str("  \"scenes\": [\n");
    for (i, (alias, rebuild_ns, inc_ns, speedup, reused, shaded)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{alias}\", \"rebuild_ns_per_frame\": {rebuild_ns:.1}, \
             \"incremental_ns_per_frame\": {inc_ns:.1}, \"speedup\": {speedup:.4}, \
             \"reuse_draws\": {reused}, \"shaded_draws\": {shaded}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_geometry_frontend.json";
    match rbcd_bench::schema::write(path, &json) {
        Ok(_) => println!("wrote {path}"),
        Err(e) => eprintln!("{path}: {e}"),
    }
    Ok(())
}

/// `broadphase` experiment: the screen-space broad phase (pair-
/// infeasible draw pruning + single-occupant tile elision) against a
/// broad-phase-off run.
///
/// Exactness legs first — the contract is bitwise: pairs and every
/// counter outside the image-side planes the broad phase is allowed to
/// move (`raster.*` timing and fragment throughput, `coherence.*`,
/// `broadphase.*`) must match the broad-phase-off run across thread
/// counts, reuse on/off, storm/overflow fault plans, a governed budget
/// (where the broad phase goes inert and even the image side must
/// match), and the multi-session batch service. Any divergence exits
/// non-zero. Then the wall-clock leg times full rendered frames of the
/// sparse-swarm clips per mode in interleaved pairs (median-of-ratios,
/// like `hotpath` and `frontend`) and writes `BENCH_broadphase.json`.
fn run_broadphase_bench(opts: &RunOptions, smoke: bool) -> Result<(), TableError> {
    use rbcd_bench::faults::run_fault_tolerance;
    use rbcd_bench::runner::run_gpu;
    use rbcd_core::RbcdUnit;
    use rbcd_gpu::{
        render_batch, BatchJob, BroadPhase, FramePolicy, PipelineMode, SimulatorBuilder,
    };

    let reps = if smoke { 5 } else { 30 };
    let scenes = rbcd_workloads::sparse_family();
    eprintln!("broadphase A/B: pair-feasibility pruning vs off, {reps} rendered passes/scene...");

    // Exactness leg 1: whole runs across threads / reuse / governor,
    // on the sparse clips plus a dense control (`cap`, where pruning
    // rarely fires and the contract is cheap to violate silently).
    // Only the image-side planes may move; under a governor the broad
    // phase is inert, so there even those must match.
    let kept = |run: &rbcd_bench::metrics::GpuRun| -> Vec<(&'static str, u64)> {
        run.counters
            .iter()
            .filter(|(k, _)| {
                let image_side = k.starts_with("broadphase.")
                    || k.starts_with("coherence.")
                    || (k.starts_with("raster.")
                        && !matches!(
                            *k,
                            "raster.tiles_processed"
                                | "raster.primitives_fetched"
                                | "raster.fragments_collisionable"
                        ));
                !image_side
            })
            .collect()
    };
    let mut diverged = false;
    let mut exact_scenes = scenes.clone();
    exact_scenes.push(rbcd_workloads::cap());
    for scene in &exact_scenes {
        let frames = opts.frames.unwrap_or(scene.frames).min(scene.frames);
        let gov = rbcd_gpu::GovernorConfig {
            frame_budget_cycles: 25_000,
            ..rbcd_gpu::GovernorConfig::default()
        };
        let legs: [(usize, bool, Option<rbcd_gpu::GovernorConfig>); 4] =
            [(1, false, None), (2, true, None), (4, true, None), (2, false, Some(gov))];
        for (threads, reuse, governor) in legs {
            let run_mode = |broadphase: BroadPhase| {
                let o = RunOptions { threads, reuse, broadphase, governor, ..opts.clone() };
                run_gpu(scene, frames, &o, Some(RbcdConfig::default()))
            };
            let off = run_mode(BroadPhase::Off);
            let on = run_mode(BroadPhase::On);
            let governed = governor.is_some();
            if kept(&off) != kept(&on)
                || off.pairs != on.pairs
                || (governed && (off.counters != on.counters || off.seconds != on.seconds))
            {
                eprintln!(
                    "BROAD-PHASE DIVERGENCE on {} ({threads} threads, reuse {reuse}, governed \
                     {governed}): pruning changed a protected result",
                    scene.alias,
                );
                diverged = true;
            }
        }
    }

    // Exactness leg 2: fault storms. Corrupted draws carry no trusted
    // bounds, so the broad phase must fall through to rendering them;
    // every recovery statistic must match the off cell for cell.
    for preset in ["storm", "overflow"] {
        let plan = FaultPlan::preset(preset, 0xF207_7E4D).expect("preset exists");
        let fault_scenes = [rbcd_workloads::sparse()];
        let run_mode = |broadphase: BroadPhase| {
            let o = RunOptions {
                threads: 2,
                broadphase,
                frames: Some(opts.frames.unwrap_or(4).min(4)),
                ..opts.clone()
            };
            run_fault_tolerance(&fault_scenes, preset, plan, &[2], &o)
        };
        let off = run_mode(BroadPhase::Off);
        let on = run_mode(BroadPhase::On);
        for (sa, sb) in off.scenes.iter().zip(&on.scenes) {
            for (ca, cb) in sa.cells.iter().zip(&sb.cells) {
                if ca != cb {
                    eprintln!(
                        "BROAD-PHASE DIVERGENCE under '{preset}' faults on {} M={}",
                        sa.alias, ca.m
                    );
                    diverged = true;
                }
            }
        }
    }

    // Exactness leg 3: the batch service. Per-session broad-phase state
    // must behave exactly like each session running solo.
    {
        let frames = opts.frames.unwrap_or(2).min(2);
        let policy = FramePolicy::new().with_reuse(true).with_broadphase(BroadPhase::On);
        let build = || {
            SimulatorBuilder::from_config(opts.gpu.clone())
                .policy(policy)
                .build()
                .expect("benchmark GPU configurations are validated at construction")
        };
        let unit = || {
            RbcdUnit::new(RbcdConfig::default(), opts.gpu.tile_size)
                .expect("benchmark RBCD configurations are validated at construction")
        };
        let mut solo_stats = Vec::new();
        for scene in &scenes {
            let (mut sim, mut u) = (build(), unit());
            let mut per_scene = Vec::new();
            for f in 0..frames {
                u.new_frame();
                let trace = scene.frame_trace(f);
                per_scene.push(sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut u, 1));
                let _ = u.take_contacts();
            }
            solo_stats.push(per_scene);
        }
        let mut sims: Vec<_> = scenes.iter().map(|_| build()).collect();
        let mut units: Vec<_> = scenes.iter().map(|_| unit()).collect();
        // `f` drives the frame-trace generation and the solo-stats
        // lookup together, not a single indexed slice.
        #[allow(clippy::needless_range_loop)]
        for f in 0..frames {
            let traces: Vec<_> = scenes.iter().map(|s| s.frame_trace(f)).collect();
            let mut jobs: Vec<BatchJob<'_, RbcdUnit>> = sims
                .iter_mut()
                .zip(units.iter_mut())
                .zip(&traces)
                .map(|((sim, backend), trace)| BatchJob {
                    sim,
                    backend,
                    trace,
                    mode: PipelineMode::Rbcd,
                })
                .collect();
            let batched = render_batch(&mut jobs, 2).expect("batch jobs are well-formed");
            for u in units.iter_mut() {
                let _ = u.take_contacts();
                u.new_frame();
            }
            for (ji, stats) in batched.iter().enumerate() {
                if *stats != solo_stats[ji][f] {
                    eprintln!(
                        "BROAD-PHASE DIVERGENCE in batch service: session {} frame {f} differs \
                         from its solo run",
                        scenes[ji].alias
                    );
                    diverged = true;
                }
            }
        }
    }
    if diverged {
        std::process::exit(1);
    }

    // Wall-clock leg: per scene, two simulator+unit stacks (one per
    // mode) render the clip's frames in interleaved pairs. Each pair
    // shares the same instantaneous machine state, so the per-pair
    // ratio cancels common-mode noise; the reported speedup is the
    // median of per-pair ratios and the per-pass times are per-mode
    // minima. Reuse stays off so the measurement is pure pruning, not
    // cache effects.
    let mut t = Table::new(
        "Screen-space broad phase — on vs off (host ns per rendered frame)",
        &["benchmark", "off ns", "on ns", "speedup", "tiles skipped", "identical"],
    );
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for scene in &scenes {
        let frames = opts.frames.unwrap_or(scene.frames).min(scene.frames);
        let traces: Vec<_> = (0..frames).map(|f| scene.frame_trace(f)).collect();
        let make = |broadphase: BroadPhase| {
            let sim = SimulatorBuilder::from_config(opts.gpu.clone())
                .policy(FramePolicy::new().with_broadphase(broadphase))
                .build()
                .expect("benchmark GPU configurations are validated at construction");
            let unit = RbcdUnit::new(RbcdConfig::default(), opts.gpu.tile_size)
                .expect("benchmark RBCD configurations are validated at construction");
            (sim, unit)
        };
        let (mut off_sim, mut off_unit) = make(BroadPhase::Off);
        let (mut on_sim, mut on_unit) = make(BroadPhase::On);
        let pass = |sim: &mut rbcd_gpu::Simulator, unit: &mut RbcdUnit| -> f64 {
            let t0 = Instant::now();
            for trace in &traces {
                unit.new_frame();
                let _ = sim.render_frame_parallel(trace, PipelineMode::Rbcd, unit, 1);
                let _ = unit.take_contacts();
            }
            t0.elapsed().as_secs_f64()
        };
        // Warm-up pass per mode so lazy allocations bill neither side.
        let _ = pass(&mut off_sim, &mut off_unit);
        let _ = pass(&mut on_sim, &mut on_unit);
        let (mut off_ns, mut on_ns) = (f64::INFINITY, f64::INFINITY);
        let mut ratios = Vec::with_capacity(reps);
        for _ in 0..reps {
            let toff = pass(&mut off_sim, &mut off_unit);
            let ton = pass(&mut on_sim, &mut on_unit);
            off_ns = off_ns.min(toff * 1e9 / frames as f64);
            on_ns = on_ns.min(ton * 1e9 / frames as f64);
            ratios.push(toff / ton.max(1e-12));
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("pass ratios are finite"));
        let speedup = if ratios.len() % 2 == 1 {
            ratios[ratios.len() / 2]
        } else {
            (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
        };
        speedups.push(speedup);
        // Pruning accounting from a fresh broad-phase-on run.
        let acct = run_gpu(
            scene,
            frames,
            &RunOptions { broadphase: BroadPhase::On, ..opts.clone() },
            Some(RbcdConfig::default()),
        );
        let skipped = acct.counters.get("broadphase.tiles_skipped");
        let tiles = acct.counters.get("raster.tiles_processed");
        t.row(vec![
            scene.alias.to_string(),
            format!("{off_ns:.0}"),
            format!("{on_ns:.0}"),
            fmt_x(speedup),
            format!("{skipped}/{tiles}"),
            "yes".to_string(),
        ])?;
        rows.push((scene.alias.to_string(), off_ns, on_ns, speedup, skipped, tiles));
    }
    print!("{}", t.render());
    let geo = geomean(speedups);
    println!(
        "geomean broad-phase speedup {} (on vs off; pairs, rbcd.* counters, and fault \
         behaviour bit-identical across threads, reuse, faults, governor, and batch)",
        fmt_x(geo)
    );

    let mut json = rbcd_bench::schema::header("broadphase", geo);
    json.push_str(&format!("  \"rendered_passes\": {reps},\n"));
    json.push_str(&format!(
        "  \"viewport\": \"{}x{}\",\n",
        opts.gpu.viewport.width, opts.gpu.viewport.height
    ));
    json.push_str("  \"identical_results\": true,\n");
    json.push_str(&format!("  \"speedup_geomean\": {geo:.4},\n"));
    json.push_str("  \"scenes\": [\n");
    for (i, (alias, off_ns, on_ns, speedup, skipped, tiles)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{alias}\", \"off_ns_per_frame\": {off_ns:.1}, \
             \"on_ns_per_frame\": {on_ns:.1}, \"speedup\": {speedup:.4}, \
             \"tiles_skipped\": {skipped}, \"tiles_processed\": {tiles}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_broadphase.json";
    match rbcd_bench::schema::write(path, &json) {
        Ok(_) => println!("wrote {path}"),
        Err(e) => eprintln!("{path}: {e}"),
    }
    Ok(())
}
