//! One shared option table for every `repro` experiment.
//!
//! Each experiment arm used to re-implement flag handling; this module
//! centralises it so `--threads`, `--scene`, `--hot-path`, `--no-reuse`
//! (and the rest) parse identically everywhere. The contract `repro`
//! has always had is kept: a malformed command line is a [`UsageError`]
//! and exits with the conventional usage code 2, never the generic
//! failure code 1.

use crate::runner::RunOptions;
use rbcd_core::faults::PRESETS;
use rbcd_core::FaultPlan;
use rbcd_gpu::{BroadPhase, FramePolicy, FrontendMode, GpuConfig, HotPathMode};
use rbcd_math::Viewport;
use rbcd_workloads::Scene;
use std::fmt;

/// A malformed command line: which flag failed and what it needed.
/// Distinguished from experiment failures so `main` can exit with the
/// conventional usage code (2) instead of the generic failure code (1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError {
    /// The offending flag (or unknown argument).
    pub flag: String,
    /// The accepted shape, for the error message.
    pub expected: String,
}

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} needs {}", self.flag, self.expected)
    }
}

impl std::error::Error for UsageError {}

/// One row of the shared option table: flag name plus the shape of its
/// value (`None` for boolean switches). The table is the single source
/// of truth for which flags exist; parsing dispatches on it, and an
/// argument starting with `--` that matches no row is rejected instead
/// of being silently treated as an experiment id.
struct FlagSpec {
    name: &'static str,
    value: Option<&'static str>,
}

const FLAGS: &[FlagSpec] = &[
    FlagSpec { name: "--frames", value: Some("a frame count") },
    FlagSpec { name: "--threads", value: Some("a thread count") },
    FlagSpec { name: "--smoke", value: None },
    FlagSpec { name: "--no-reuse", value: None },
    FlagSpec { name: "--hot-path", value: Some("a mode (mask|reference)") },
    FlagSpec { name: "--frontend", value: Some("a mode (incremental|rebuild)") },
    FlagSpec { name: "--broadphase", value: Some("a mode (on|off)") },
    FlagSpec { name: "--trace", value: Some("an output path (e.g. trace.json)") },
    FlagSpec { name: "--faults", value: Some("a plan name") },
    FlagSpec { name: "--scene", value: Some("a workload name or alias") },
];

/// Every flag the `repro` experiments share, parsed once.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "parsed options drive the experiments; dropping them discards the command line"]
pub struct CliOptions {
    /// `--frames N`: frames per benchmark (`None` = scene default).
    pub frames: Option<usize>,
    /// `--threads N`: worker threads (simulated numbers are
    /// bit-identical for any value).
    pub threads: usize,
    /// `--smoke`: shrink every experiment to a quick configuration.
    pub smoke: bool,
    /// Cross-frame tile reuse; `--no-reuse` clears it.
    pub reuse: bool,
    /// `--hot-path mask|reference`: intra-tile hot path everywhere.
    pub hot_path: HotPathMode,
    /// `--frontend incremental|rebuild`: geometry front-end everywhere.
    /// Incremental by default — both modes are bit-identical in
    /// simulated results, and the incremental one is the faster host
    /// path on coherent workloads.
    pub frontend: FrontendMode,
    /// `--broadphase on|off`: screen-space broad phase everywhere. On
    /// by default — pairs, `rbcd.*` counters, and fault behaviour are
    /// bit-identical either way, and pruning is the faster path on
    /// sparse workloads. (The *library* default stays `Off` so golden
    /// counters and embedders are untouched; only the CLI flips it.)
    pub broadphase: BroadPhase,
    /// `--trace <path>`: run the trace experiment, writing there.
    pub trace: Option<String>,
    /// `--faults <plan>`: run the fault-injection experiment.
    pub faults: Option<String>,
    /// `--scene <name>`: restrict scene-sweeping experiments to one
    /// workload (matched against scene name or alias).
    pub scene: Option<String>,
    /// Remaining positional arguments (experiment ids).
    pub rest: Vec<String>,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            frames: None,
            threads: 1,
            smoke: false,
            reuse: true,
            hot_path: HotPathMode::Mask,
            frontend: FrontendMode::Incremental,
            broadphase: BroadPhase::On,
            trace: None,
            faults: None,
            scene: None,
            rest: Vec::new(),
        }
    }
}

impl CliOptions {
    /// The experiment [`RunOptions`] these flags select: frames /
    /// threads / reuse / hot path applied, and `--smoke` shrinking the
    /// viewport, frame count, and sweep lists exactly as every
    /// experiment expects.
    pub fn run_options(&self) -> RunOptions {
        let mut opts = RunOptions {
            frames: self.frames,
            threads: self.threads,
            reuse: self.reuse,
            frontend: self.frontend,
            broadphase: self.broadphase,
            ..RunOptions::default()
        };
        if self.smoke {
            opts.frames = Some(opts.frames.unwrap_or(2).min(2));
            opts.gpu = GpuConfig { viewport: Viewport::new(320, 200), ..GpuConfig::default() };
            opts.m_sweep = vec![4, 8];
            opts.zeb_counts = vec![1, 2];
        }
        opts.gpu.hot_path = self.hot_path;
        opts
    }

    /// The same flags as a [`FramePolicy`] (for session-based
    /// experiments): workers from `--threads`, reuse, hot path.
    pub fn frame_policy(&self) -> FramePolicy {
        FramePolicy::new()
            .with_workers(self.threads)
            .with_reuse(self.reuse)
            .with_hot_path(self.hot_path)
            .with_frontend(self.frontend)
            .with_broadphase(self.broadphase)
    }
}

/// Parses `args` (the command line minus the program name) against the
/// shared option table.
///
/// # Errors
///
/// [`UsageError`] when a flag is missing its value, a value has the
/// wrong shape, or an argument starting with `--` matches no known
/// flag.
pub fn parse_args(args: Vec<String>) -> Result<CliOptions, UsageError> {
    let mut out = CliOptions::default();
    let mut it = args.into_iter().peekable();
    while let Some(arg) = it.next() {
        if !arg.starts_with("--") {
            out.rest.push(arg);
            continue;
        }
        let spec = FLAGS.iter().find(|s| s.name == arg).ok_or_else(|| UsageError {
            flag: arg.clone(),
            expected: format!(
                "to be a known flag (one of: {})",
                FLAGS.iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
            ),
        })?;
        let value = |it: &mut std::iter::Peekable<std::vec::IntoIter<String>>| {
            let shape = spec.value.unwrap_or("a value");
            it.next().ok_or_else(|| UsageError {
                flag: spec.name.to_string(),
                expected: shape.to_string(),
            })
        };
        match spec.name {
            "--frames" => {
                let v = value(&mut it)?;
                out.frames = Some(v.parse().map_err(|_| UsageError {
                    flag: "--frames".into(),
                    expected: "a frame count".into(),
                })?);
            }
            "--threads" => {
                let v = value(&mut it)?;
                out.threads = v.parse().map_err(|_| UsageError {
                    flag: "--threads".into(),
                    expected: "a thread count".into(),
                })?;
            }
            "--smoke" => out.smoke = true,
            "--no-reuse" => out.reuse = false,
            "--hot-path" => {
                out.hot_path = match value(&mut it)?.as_str() {
                    "mask" => HotPathMode::Mask,
                    "reference" => HotPathMode::Reference,
                    _ => {
                        return Err(UsageError {
                            flag: "--hot-path".into(),
                            expected: "a mode (mask|reference)".into(),
                        })
                    }
                };
            }
            "--frontend" => {
                out.frontend = match value(&mut it)?.as_str() {
                    "incremental" => FrontendMode::Incremental,
                    "rebuild" => FrontendMode::Rebuild,
                    _ => {
                        return Err(UsageError {
                            flag: "--frontend".into(),
                            expected: "a mode (incremental|rebuild)".into(),
                        })
                    }
                };
            }
            "--broadphase" => {
                out.broadphase = match value(&mut it)?.as_str() {
                    "on" => BroadPhase::On,
                    "off" => BroadPhase::Off,
                    _ => {
                        return Err(UsageError {
                            flag: "--broadphase".into(),
                            expected: "a mode (on|off)".into(),
                        })
                    }
                };
            }
            "--trace" => out.trace = Some(value(&mut it)?),
            "--faults" => {
                let v = value(&mut it)?;
                if FaultPlan::preset(&v, 0).is_none() {
                    return Err(UsageError {
                        flag: "--faults".into(),
                        expected: format!("a plan name (one of: {})", PRESETS.join(", ")),
                    });
                }
                out.faults = Some(v);
            }
            "--scene" => out.scene = Some(value(&mut it)?),
            _ => unreachable!("every FLAGS row is matched above"),
        }
    }
    Ok(out)
}

/// Applies `--scene` to a scene list: keeps workloads whose name or
/// alias matches (case-insensitively). With no `--scene`, the list is
/// returned unchanged.
///
/// # Errors
///
/// [`UsageError`] when the filter matches nothing, naming the scenes
/// that do exist.
pub fn filter_scenes(scenes: Vec<Scene>, wanted: Option<&str>) -> Result<Vec<Scene>, UsageError> {
    let Some(wanted) = wanted else { return Ok(scenes) };
    let lower = wanted.to_lowercase();
    let names: Vec<String> = scenes.iter().map(|s| s.alias.to_string()).collect();
    let kept: Vec<Scene> = scenes
        .into_iter()
        .filter(|s| s.alias.to_lowercase() == lower || s.name.to_lowercase() == lower)
        .collect();
    if kept.is_empty() {
        return Err(UsageError {
            flag: "--scene".into(),
            expected: format!("a workload name or alias (one of: {})", names.join(", ")),
        });
    }
    Ok(kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, UsageError> {
        parse_args(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn defaults_match_the_historical_flags() {
        let o = parse(&[]).expect("empty command line is valid");
        assert_eq!(o.frames, None);
        assert_eq!(o.threads, 1);
        assert!(!o.smoke);
        assert!(o.reuse);
        assert_eq!(o.hot_path, HotPathMode::Mask);
        assert_eq!(o.frontend, FrontendMode::Incremental);
        assert_eq!(o.broadphase, BroadPhase::On, "CLI default is on; library default is off");
        assert!(o.rest.is_empty());
    }

    #[test]
    fn broadphase_flag_parses_both_modes_and_rejects_others() {
        let o = parse(&["--broadphase", "off"]).expect("valid");
        assert_eq!(o.broadphase, BroadPhase::Off);
        assert_eq!(o.run_options().broadphase, BroadPhase::Off);
        let o = parse(&["--broadphase", "on"]).expect("valid");
        assert_eq!(o.broadphase, BroadPhase::On);
        let e = parse(&["--broadphase", "sweep"]).expect_err("rejected");
        assert_eq!(e.flag, "--broadphase");
        assert!(e.to_string().contains("on|off"));
    }

    #[test]
    fn frontend_flag_parses_both_modes_and_rejects_others() {
        let o = parse(&["--frontend", "rebuild"]).expect("valid");
        assert_eq!(o.frontend, FrontendMode::Rebuild);
        assert_eq!(o.run_options().frontend, FrontendMode::Rebuild);
        let o = parse(&["--frontend", "incremental"]).expect("valid");
        assert_eq!(o.frontend, FrontendMode::Incremental);
        let e = parse(&["--frontend", "turbo"]).expect_err("rejected");
        assert_eq!(e.flag, "--frontend");
        assert!(e.to_string().contains("incremental|rebuild"));
    }

    #[test]
    fn flags_parse_in_any_position() {
        let o = parse(&["bench", "--threads", "4", "temporal", "--no-reuse", "--smoke"])
            .expect("valid flags");
        assert_eq!(o.threads, 4);
        assert!(!o.reuse);
        assert!(o.smoke);
        assert_eq!(o.rest, ["bench", "temporal"]);
    }

    #[test]
    fn malformed_values_are_usage_errors() {
        assert!(parse(&["--frames"]).is_err());
        assert!(parse(&["--frames", "many"]).is_err());
        assert!(parse(&["--hot-path", "fast"]).is_err());
        assert!(parse(&["--faults", "gremlins"]).is_err());
        let e = parse(&["--hot-path", "fast"]).expect_err("rejected");
        assert_eq!(e.flag, "--hot-path");
        assert!(e.to_string().contains("mask|reference"));
    }

    #[test]
    fn unknown_flags_are_rejected_not_swallowed() {
        let e = parse(&["--fames", "3"]).expect_err("typo must be caught");
        assert_eq!(e.flag, "--fames");
        assert!(e.expected.contains("--frames"), "{e}");
    }

    #[test]
    fn smoke_shrinks_run_options_exactly_as_before() {
        let o = parse(&["--smoke", "--frames", "9"]).expect("valid");
        let r = o.run_options();
        assert_eq!(r.frames, Some(2), "smoke caps frames at 2");
        assert_eq!(r.gpu.viewport.width, 320);
        assert_eq!(r.m_sweep, vec![4, 8]);
        let full = parse(&["--frames", "9"]).expect("valid").run_options();
        assert_eq!(full.frames, Some(9));
    }

    #[test]
    fn frame_policy_mirrors_the_flags() {
        let o = parse(&["--threads", "3", "--no-reuse", "--hot-path", "reference"])
            .expect("valid");
        let p = o.frame_policy();
        assert_eq!(p.workers, 3);
        assert!(!p.reuse);
        assert_eq!(p.hot_path, Some(HotPathMode::Reference));
        assert_eq!(p.frontend, FrontendMode::Incremental, "CLI default is incremental");
        assert_eq!(p.broadphase, BroadPhase::On, "CLI default is broad phase on");
        let p = parse(&["--frontend", "rebuild"]).expect("valid").frame_policy();
        assert_eq!(p.frontend, FrontendMode::Rebuild);
        let p = parse(&["--broadphase", "off"]).expect("valid").frame_policy();
        assert_eq!(p.broadphase, BroadPhase::Off);
    }

    #[test]
    fn scene_filter_selects_by_alias_and_rejects_unknowns() {
        let kept = filter_scenes(rbcd_workloads::suite(), Some("cap")).expect("cap exists");
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].alias, "cap");
        let all = filter_scenes(rbcd_workloads::suite(), None).expect("no filter");
        assert_eq!(all.len(), rbcd_workloads::suite().len());
        let e = filter_scenes(rbcd_workloads::suite(), Some("nope")).expect_err("unknown");
        assert_eq!(e.flag, "--scene");
        assert!(e.expected.contains("cap"), "{e}");
    }
}
