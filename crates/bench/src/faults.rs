//! Fault-tolerance experiment: inject deterministic faults, squeeze the
//! ZEB down to tiny `M`, and measure how much of the software oracle's
//! pair set the degradation ladder still recovers — and that every pair
//! it loses is attributed to a counted overflow (no silent losses).
//!
//! Per `(scene, M)` sweep point, each frame runs three detectors over
//! the *same* faulted trace:
//!
//! 1. the hardware model with the ladder enabled (spares → re-scan →
//!    CPU escalation);
//! 2. the CPU detector over the objects the ladder escalated (the
//!    hybrid-path recovery, [`crate::hybrid`] style);
//! 3. the unbounded software oracle — ground truth for that trace.
//!
//! Quarantined draws (forged ids, NaN geometry) are skipped identically
//! by all three, so the oracle measures what a lossless ZEB would find,
//! not what the corrupted commands pretend to contain.

use crate::runner::RunOptions;
use rbcd_core::software::OracleUnit;
use rbcd_core::{FaultLog, FaultPlan, RbcdConfig, RbcdUnit};
use rbcd_cpu_cd::{CdBody, CpuCollisionDetector, Phase};
use rbcd_gpu::{ObjectId, PipelineMode, Simulator};
use rbcd_workloads::Scene;
use std::collections::BTreeSet;

/// The ladder configuration the experiment runs: generous re-scan
/// budget and CPU escalation on, so only attribution failures — not
/// configuration choices — can lose pairs.
pub fn ladder_config(plan: &FaultPlan) -> RbcdConfig {
    RbcdConfig {
        ladder_rescans: 4,
        ladder_cpu_fallback: true,
        ..plan.apply_rbcd(RbcdConfig::default())
    }
}

/// One `(scene, M)` sweep point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultCell {
    /// Forced ZEB list capacity.
    pub m: usize,
    /// Faults injected across the clip.
    pub faults: FaultLog,
    /// Draw commands the ingest validation quarantined.
    pub quarantined: u64,
    /// ZEB element overflows (base-capacity pass).
    pub overflows: u64,
    /// FF-Stack drops during scans.
    pub ff_drops: u64,
    /// Tiles that needed no ladder rung.
    pub rung_clean: u64,
    /// Tiles absorbed by the spare pool (rung 1).
    pub rung_spare: u64,
    /// Tiles recovered by re-scanning at doubled capacity (rung 2).
    pub rung_rescan: u64,
    /// Tiles escalated to the CPU detector (rung 3).
    pub rung_cpu: u64,
    /// Total re-insertion passes charged by rung 2.
    pub rescan_passes: u64,
    /// Distinct object escalations (summed over frames).
    pub escalated_objects: u64,
    /// Oracle pair observations (summed per frame).
    pub oracle_pairs: u64,
    /// Oracle pairs the ladder found on the GPU path.
    pub gpu_recovered: u64,
    /// Oracle pairs only the CPU escalation found.
    pub cpu_recovered: u64,
    /// Oracle pairs nobody found.
    pub missing_pairs: u64,
    /// Missing pairs in frames where *no* overflow or FF-Stack drop was
    /// counted — the acceptance criterion demands this stays zero.
    pub silent_losses: u64,
}

impl FaultCell {
    /// Fraction of the oracle's per-frame pairs the ladder recovered
    /// (GPU + CPU escalation). `1.0` for an empty oracle.
    pub fn recovered_fraction(&self) -> f64 {
        if self.oracle_pairs == 0 {
            return 1.0;
        }
        (self.gpu_recovered + self.cpu_recovered) as f64 / self.oracle_pairs as f64
    }
}

/// All sweep points of one scene.
#[derive(Debug, Clone)]
pub struct FaultSceneResult {
    /// Scene alias.
    pub alias: String,
    /// Frames rendered per sweep point.
    pub frames: usize,
    /// One cell per `M` value.
    pub cells: Vec<FaultCell>,
}

/// The whole experiment.
#[derive(Debug, Clone)]
pub struct FaultToleranceResult {
    /// Fault-plan preset name.
    pub plan: String,
    /// Base injection seed.
    pub seed: u64,
    /// Per-scene sweeps.
    pub scenes: Vec<FaultSceneResult>,
}

impl FaultToleranceResult {
    /// The worst recovered fraction across every cell.
    pub fn worst_recovery(&self) -> f64 {
        self.scenes
            .iter()
            .flat_map(|s| s.cells.iter().map(FaultCell::recovered_fraction))
            .fold(1.0, f64::min)
    }

    /// Total silent losses across every cell (must be zero).
    pub fn silent_losses(&self) -> u64 {
        self.scenes.iter().flat_map(|s| s.cells.iter().map(|c| c.silent_losses)).sum()
    }
}

/// Runs the fault-tolerance sweep: for every scene and every `M` in
/// `m_values`, render `frames` faulted frames and account recovery
/// against the software oracle. Deterministic for any `opts.threads`.
pub fn run_fault_tolerance(
    scenes: &[Scene],
    plan_name: &str,
    base_plan: FaultPlan,
    m_values: &[usize],
    opts: &RunOptions,
) -> FaultToleranceResult {
    let scenes = scenes
        .iter()
        .map(|scene| {
            let frames = opts.frames.unwrap_or(scene.frames);
            let cells = m_values
                .iter()
                .map(|&m| {
                    let plan = FaultPlan { forced_m: Some(m), ..base_plan };
                    run_cell(scene, frames, &plan, opts)
                })
                .collect();
            FaultSceneResult { alias: scene.alias.to_string(), frames, cells }
        })
        .collect();
    FaultToleranceResult { plan: plan_name.to_string(), seed: base_plan.seed, scenes }
}

fn run_cell(scene: &Scene, frames: usize, plan: &FaultPlan, opts: &RunOptions) -> FaultCell {
    // The unit's hot path follows the simulator's (one knob switches
    // the whole pipeline, as in `runner::run_gpu`).
    let cfg = RbcdConfig { hot_path: opts.gpu.hot_path, ..ladder_config(plan) };
    let mut cell = FaultCell { m: cfg.list_capacity, ..FaultCell::default() };

    let meshes = scene.collidable_meshes();
    let mut sim = Simulator::new(opts.gpu.clone());
    sim.set_reuse(opts.reuse);
    sim.set_frontend(opts.frontend);
    sim.set_broadphase(opts.broadphase);
    let mut unit = RbcdUnit::new(cfg, opts.gpu.tile_size)
        .expect("the ladder configuration is valid by construction");
    let mut prev = *unit.stats();

    for f in 0..frames {
        let (trace, log) = plan.apply(&scene.frame_trace(f), f as u64);
        cell.faults.accumulate(&log);

        unit.new_frame();
        let gpu_stats =
            sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut unit, opts.threads);
        cell.quarantined += gpu_stats.geometry.draws_quarantined;
        let gpu_pairs: BTreeSet<(ObjectId, ObjectId)> =
            unit.take_contacts().iter().map(|c| c.pair()).collect();
        let escalated = unit.take_escalated();
        cell.escalated_objects += escalated.len() as u64;

        // Hybrid-path recovery: the host re-tests the escalated objects
        // with the exact CPU detector, using the game's authoritative
        // (clean) geometry and this frame's transforms.
        let cpu_pairs = cpu_recover(&escalated, &meshes, &scene.collidable_transforms(f));

        // Ground truth for the same faulted trace: a lossless ZEB.
        let mut oracle = OracleUnit::new();
        let mut oracle_sim = Simulator::new(opts.gpu.clone());
        oracle_sim.render_frame(&trace, PipelineMode::Rbcd, &mut oracle);
        let oracle_pairs = oracle.pairs();

        let stats = *unit.stats();
        let pressured = stats.overflows > prev.overflows || stats.ff_drops > prev.ff_drops;
        prev = stats;

        cell.oracle_pairs += oracle_pairs.len() as u64;
        for pair in &oracle_pairs {
            if gpu_pairs.contains(pair) {
                cell.gpu_recovered += 1;
            } else if cpu_pairs.contains(pair) {
                cell.cpu_recovered += 1;
            } else {
                cell.missing_pairs += 1;
                if !pressured {
                    cell.silent_losses += 1;
                }
            }
        }
    }

    let s = unit.stats();
    cell.overflows = s.overflows;
    cell.ff_drops = s.ff_drops;
    cell.rung_clean = s.rung_clean();
    cell.rung_spare = s.rung_spare;
    cell.rung_rescan = s.rung_rescan;
    cell.rung_cpu = s.rung_cpu;
    cell.rescan_passes = s.rescan_passes;
    cell
}

/// Exact CPU detection over the escalated objects. Ids that don't map
/// to a scene collidable (possible only if a forged id survived the
/// quarantine, which it must not) are ignored; unhullable meshes are
/// skipped like the hybrid path skips them.
fn cpu_recover(
    escalated: &BTreeSet<ObjectId>,
    meshes: &[(ObjectId, std::sync::Arc<rbcd_geometry::Mesh>)],
    transforms: &[rbcd_math::Mat4],
) -> BTreeSet<(ObjectId, ObjectId)> {
    if escalated.len() < 2 {
        return BTreeSet::new();
    }
    let mut bodies = Vec::new();
    let mut models = Vec::new();
    for &id in escalated {
        let index = id.get() as usize;
        if index == 0 || index > meshes.len() {
            continue;
        }
        let (scene_id, mesh) = &meshes[index - 1];
        debug_assert_eq!(*scene_id, id);
        if let Ok(body) = CdBody::from_mesh(id.get() as u32, mesh) {
            bodies.push(body);
            models.push(transforms[index - 1]);
        }
    }
    if bodies.len() < 2 {
        return BTreeSet::new();
    }
    CpuCollisionDetector::new(bodies)
        .detect(&models, Phase::BroadAndNarrow)
        .pairs
        .into_iter()
        .map(|(a, b)| (ObjectId::new(a as u16), ObjectId::new(b as u16)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_gpu::GpuConfig;
    use rbcd_math::Viewport;

    fn opts(threads: usize) -> RunOptions {
        RunOptions {
            frames: Some(3),
            gpu: GpuConfig { viewport: Viewport::new(160, 96), ..GpuConfig::default() },
            threads,
            ..RunOptions::default()
        }
    }

    #[test]
    fn ladder_recovers_under_full_fault_injection() {
        let plan = FaultPlan::preset("all", 0xFA07).unwrap();
        let scenes = [rbcd_workloads::shells(), rbcd_workloads::temple()];
        let result = run_fault_tolerance(&scenes, "all", plan, &[2], &opts(1));
        let cell = &result.scenes[0].cells[0];
        assert_eq!(cell.m, 2);
        assert!(cell.faults.total() > 0, "faults must fire: {:?}", cell.faults);
        assert!(cell.quarantined > 0, "bad draws must be quarantined");
        assert!(cell.overflows > 0, "M = 2 must overflow on shells");
        assert!(cell.oracle_pairs > 0);
        assert!(
            result.worst_recovery() >= 0.99,
            "ladder must recover >= 99% of oracle pairs, got {}",
            result.worst_recovery()
        );
        assert_eq!(result.silent_losses(), 0, "every miss must trace to a counted overflow");
    }

    #[test]
    fn fault_experiment_is_thread_invariant() {
        let plan = FaultPlan::preset("overflow", 7).unwrap();
        let scenes = [rbcd_workloads::shells()];
        let a = run_fault_tolerance(&scenes, "overflow", plan, &[1, 4], &opts(1));
        let b = run_fault_tolerance(&scenes, "overflow", plan, &[1, 4], &opts(4));
        for (ca, cb) in a.scenes[0].cells.iter().zip(&b.scenes[0].cells) {
            assert_eq!(ca.faults, cb.faults);
            assert_eq!(ca.overflows, cb.overflows);
            assert_eq!(ca.ff_drops, cb.ff_drops);
            assert_eq!(
                (ca.rung_clean, ca.rung_spare, ca.rung_rescan, ca.rung_cpu),
                (cb.rung_clean, cb.rung_spare, cb.rung_rescan, cb.rung_cpu),
            );
            assert_eq!(ca.gpu_recovered, cb.gpu_recovered);
            assert_eq!(ca.cpu_recovered, cb.cpu_recovered);
            assert_eq!(ca.missing_pairs, cb.missing_pairs);
        }
    }
}
