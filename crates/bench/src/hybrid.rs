//! Hybrid detection for out-of-frustum geometry (§3.6).
//!
//! RBCD detects collisions among the objects the GPU rasterizes; bodies
//! entirely outside the view frustum never produce fragments. The paper
//! proposes handling those "by rasterizing extra commands just
//! containing the collisionable objects to be tested, or by calling
//! conventional software-based CD". This module implements the second
//! option: a frustum split that sends off-screen bodies (and their
//! AABB neighbours) to the CPU detector while everything visible rides
//! the render.

use rbcd_core::{detect_frame_collisions, RbcdConfig};
use rbcd_cpu_cd::{CdBody, Cost, CpuCollisionDetector, Phase};
use rbcd_geometry::Mesh;
use rbcd_gpu::{Camera, DrawCommand, FrameTrace, GpuConfig, ObjectId};
use rbcd_math::{Frustum, Mat4};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One collisionable body given to the hybrid detector.
#[derive(Debug, Clone)]
pub struct HybridBody {
    /// Object id (also reported in pairs).
    pub id: ObjectId,
    /// Geometry.
    pub mesh: Arc<Mesh>,
    /// World transform for this frame.
    pub model: Mat4,
}

/// Result of one hybrid detection frame.
#[derive(Debug, Clone)]
pub struct HybridReport {
    /// Pairs found by the RBCD unit (visible geometry).
    pub rbcd_pairs: BTreeSet<(ObjectId, ObjectId)>,
    /// Pairs found by the CPU fallback (off-screen geometry and its
    /// neighbours).
    pub cpu_pairs: BTreeSet<(ObjectId, ObjectId)>,
    /// Union of both.
    pub pairs: BTreeSet<(ObjectId, ObjectId)>,
    /// Bodies handled by the CPU fallback.
    pub cpu_bodies: usize,
    /// CPU operation counts of the fallback.
    pub cpu_cost: Cost,
}

/// Detects collisions among `bodies` under `camera`: RBCD for everything
/// the frustum can see, conventional CPU broad+narrow CD for off-screen
/// bodies and the on-screen bodies whose AABBs touch them.
pub fn detect_hybrid(
    camera: &Camera,
    bodies: &[HybridBody],
    gpu: &GpuConfig,
    rbcd: &RbcdConfig,
) -> HybridReport {
    let frustum = Frustum::from_view_proj(&camera.view_proj());

    // Classify bodies by world AABB vs the frustum.
    let aabbs: Vec<_> = bodies
        .iter()
        .map(|b| b.mesh.aabb().transformed(&b.model))
        .collect();
    let outside: Vec<usize> = (0..bodies.len())
        .filter(|&i| !frustum.intersects_aabb(&aabbs[i]))
        .collect();

    // The CPU set: off-screen bodies plus any body overlapping one of
    // them (a pair spanning the frustum boundary must be tested on the
    // CPU because its partner produces no fragments).
    let mut in_cpu_set = vec![false; bodies.len()];
    for &o in &outside {
        in_cpu_set[o] = true;
        for i in 0..bodies.len() {
            if i != o && aabbs[i].intersects(&aabbs[o]) {
                in_cpu_set[i] = true;
            }
        }
    }

    // RBCD pass over the whole command list (off-screen draws clip away
    // for free, exactly as in a real frame).
    let draws: Vec<DrawCommand> = bodies
        .iter()
        .map(|b| DrawCommand::collidable(b.mesh.clone(), b.id).with_model(b.model))
        .collect();
    let rbcd_result = detect_frame_collisions(&FrameTrace::new(*camera, draws), gpu, rbcd);
    let rbcd_pairs = rbcd_result.pairs();

    // CPU fallback over the boundary set.
    let cpu_indices: Vec<usize> = (0..bodies.len()).filter(|&i| in_cpu_set[i]).collect();
    let mut cpu_pairs = BTreeSet::new();
    let mut cpu_cost = Cost::default();
    if cpu_indices.len() >= 2 {
        let mut detector = CpuCollisionDetector::new(
            cpu_indices
                .iter()
                .map(|&i| {
                    CdBody::from_mesh(bodies[i].id.get() as u32, &bodies[i].mesh)
                        .expect("hybrid bodies are hullable")
                })
                .collect(),
        );
        let transforms: Vec<Mat4> = cpu_indices.iter().map(|&i| bodies[i].model).collect();
        let result = detector.detect(&transforms, Phase::BroadAndNarrow);
        cpu_cost = result.cost;
        cpu_pairs = result
            .pairs
            .into_iter()
            .map(|(a, b)| (ObjectId::new(a as u16), ObjectId::new(b as u16)))
            .collect();
    }

    let pairs: BTreeSet<_> = rbcd_pairs.union(&cpu_pairs).copied().collect();
    HybridReport {
        rbcd_pairs,
        cpu_pairs,
        pairs,
        cpu_bodies: cpu_indices.len(),
        cpu_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_geometry::shapes;
    use rbcd_math::{Vec3, Viewport};

    fn gpu() -> GpuConfig {
        GpuConfig { viewport: Viewport::new(160, 100), ..GpuConfig::default() }
    }

    fn body(id: u16, p: Vec3) -> HybridBody {
        HybridBody {
            id: ObjectId::new(id),
            mesh: Arc::new(shapes::icosphere(0.8, 2)),
            model: Mat4::translation(p),
        }
    }

    #[test]
    fn hybrid_finds_pairs_behind_the_camera() {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 8.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let bodies = vec![
            // Visible pair in front of the camera.
            body(1, Vec3::new(-0.5, 0.0, 0.0)),
            body(2, Vec3::new(0.5, 0.2, 0.0)),
            // Overlapping pair behind the camera — invisible to RBCD.
            body(3, Vec3::new(0.0, 0.0, 20.0)),
            body(4, Vec3::new(0.9, 0.0, 20.0)),
        ];
        let report = detect_hybrid(&camera, &bodies, &gpu(), &RbcdConfig::default());
        assert!(report.rbcd_pairs.contains(&(ObjectId::new(1), ObjectId::new(2))));
        assert!(
            !report.rbcd_pairs.contains(&(ObjectId::new(3), ObjectId::new(4))),
            "RBCD cannot see behind the camera"
        );
        assert!(report.cpu_pairs.contains(&(ObjectId::new(3), ObjectId::new(4))));
        assert_eq!(report.pairs.len(), 2);
        assert_eq!(report.cpu_bodies, 2);
        assert!(report.cpu_cost.cycles() > 0);
    }

    #[test]
    fn all_visible_means_no_cpu_work() {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 8.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let bodies = vec![body(1, Vec3::new(-0.5, 0.0, 0.0)), body(2, Vec3::new(0.5, 0.0, 0.0))];
        let report = detect_hybrid(&camera, &bodies, &gpu(), &RbcdConfig::default());
        assert_eq!(report.cpu_bodies, 0);
        assert_eq!(report.cpu_cost, Cost::default());
        assert_eq!(report.pairs, report.rbcd_pairs);
    }

    #[test]
    fn boundary_straddling_pair_goes_to_cpu() {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 8.0), Vec3::ZERO, 1.0, 0.1, 20.0);
        // One body just beyond the far plane, its partner inside and
        // overlapping it: the pair must come from the CPU set.
        let bodies = vec![
            body(1, Vec3::new(0.0, 0.0, -12.4)),
            body(2, Vec3::new(0.0, 0.0, -13.5)), // outside far plane (z+8 > 20)
        ];
        let report = detect_hybrid(&camera, &bodies, &gpu(), &RbcdConfig::default());
        assert_eq!(report.cpu_bodies, 2, "partner joins the CPU set");
        assert!(report.pairs.contains(&(ObjectId::new(1), ObjectId::new(2))));
    }
}
