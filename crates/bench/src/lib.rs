//! Experiment harness: runs the four workloads through every
//! configuration of the paper's evaluation (§5) and computes the numbers
//! behind each figure and table.
//!
//! The `repro` binary drives this library; `cargo run -p rbcd-bench
//! --release --bin repro` regenerates everything, `repro <id>` one
//! experiment (ids listed in DESIGN.md §5).

#![warn(missing_docs)]

pub mod accuracy;
pub mod cli;
pub mod faults;
pub mod hybrid;
pub mod metrics;
pub mod overload;
pub mod report;
pub mod runner;
pub mod schema;
pub mod serve;

pub use metrics::{geomean, BenchmarkResult, CdComparison, SuiteResult};
pub use runner::{
    run_benchmark, run_frames_parallel, run_gpu, run_gpu_traced, run_suite, RunOptions,
};
