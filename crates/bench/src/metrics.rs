//! Result structures and the paper's metrics (equations (1)–(4)).

use rbcd_core::{ObjectPair, RbcdStats};
use rbcd_cpu_cd::CostReport;
use rbcd_gpu::FrameStats;
use rbcd_trace::CounterSet;
use std::collections::BTreeSet;

/// One GPU configuration run over a whole clip.
#[derive(Debug, Clone)]
pub struct GpuRun {
    /// Accumulated pipeline counters.
    pub stats: FrameStats,
    /// Wall-clock seconds at the GPU clock.
    pub seconds: f64,
    /// Total energy in joules (GPU + RBCD unit when attached).
    pub energy_j: f64,
    /// RBCD-unit counters, when a unit was attached.
    pub rbcd: Option<RbcdStats>,
    /// Union of colliding pairs over all frames (RBCD runs only).
    pub pairs: BTreeSet<ObjectPair>,
    /// The unified counter registry: every `geometry.*`/`raster.*` key
    /// from [`FrameStats::counter_set`], plus the `rbcd.*` keys when a
    /// unit was attached.
    pub counters: CounterSet,
}

/// One CPU detector run over a whole clip.
#[derive(Debug, Clone)]
pub struct CpuRun {
    /// Time/energy report for the clip.
    pub report: CostReport,
    /// Union of colliding pairs over all frames.
    pub pairs: BTreeSet<ObjectPair>,
    /// Mean broad-phase candidates per frame.
    pub avg_candidates: f64,
}

/// RBCD compared against one CPU baseline (equations (1) and (2)).
#[derive(Debug, Clone, Copy)]
pub struct CdComparison {
    /// Speedup: `t_cpu / (t_rbcd − t_baseline)`.
    pub speedup: f64,
    /// Energy reduction: `E_cpu / (E_rbcd − E_baseline)`.
    pub energy_reduction: f64,
}

/// Everything measured for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkResult {
    /// Benchmark alias (`cap`, `crazy`, `sleepy`, `temple`).
    pub alias: String,
    /// Frames rendered.
    pub frames: usize,
    /// Baseline GPU (no RBCD).
    pub baseline: GpuRun,
    /// GPU + RBCD unit with one ZEB.
    pub rbcd1: GpuRun,
    /// GPU + RBCD unit with two ZEBs (the paper's design point).
    pub rbcd2: GpuRun,
    /// CPU broad phase (AABB) over the same frames.
    pub cpu_broad: CpuRun,
    /// CPU broad + narrow (GJK) over the same frames.
    pub cpu_gjk: CpuRun,
    /// Table 3: `(M, overflow rate)` with two ZEBs.
    pub overflow: Vec<(usize, f64)>,
    /// Paper §5.3 check: the pair set at M = 8 equals the no-overflow
    /// reference pair set.
    pub all_pairs_detected_at_m8: bool,
    /// ZEB-count ablation: `(zeb_count, seconds, energy_j)`.
    pub zeb_ablation: Vec<(u32, f64, f64)>,
}

impl BenchmarkResult {
    fn delta(&self, run: &GpuRun) -> (f64, f64) {
        (
            (run.seconds - self.baseline.seconds).max(1e-12),
            (run.energy_j - self.baseline.energy_j).max(1e-15),
        )
    }

    /// Equations (1)/(2) against a CPU baseline for the given RBCD run.
    pub fn comparison(&self, run: &GpuRun, cpu: &CpuRun) -> CdComparison {
        let (dt, de) = self.delta(run);
        CdComparison {
            speedup: cpu.report.seconds / dt,
            energy_reduction: cpu.report.total_j() / de,
        }
    }

    /// Equation (3): `t_rbcd / t_baseline`.
    pub fn normalized_time(&self, run: &GpuRun) -> f64 {
        run.seconds / self.baseline.seconds
    }

    /// Equation (4): `E_rbcd / E_baseline`.
    pub fn normalized_energy(&self, run: &GpuRun) -> f64 {
        run.energy_j / self.baseline.energy_j
    }

    /// Figure 10: fraction of GPU time spent in the raster pipeline
    /// (RBCD 2-ZEB configuration).
    pub fn raster_fraction(&self) -> f64 {
        let s = &self.rbcd2.stats;
        s.raster.cycles as f64 / s.total_cycles() as f64
    }

    /// Figure 11 activity factors, RBCD (2 ZEBs) normalized to baseline:
    /// `(tile-cache loads, primitives, fragments, raster cycles)`.
    pub fn activity_factors(&self) -> (f64, f64, f64, f64) {
        let b = &self.baseline.stats;
        let r = &self.rbcd2.stats;
        let ratio = |x: u64, y: u64| x as f64 / y.max(1) as f64;
        (
            ratio(r.raster.tile_cache_loads.accesses(), b.raster.tile_cache_loads.accesses()),
            ratio(r.raster.primitives_fetched, b.raster.primitives_fetched),
            ratio(r.raster.fragments_rasterized, b.raster.fragments_rasterized),
            ratio(r.raster.cycles, b.raster.cycles),
        )
    }

    /// §5.2: share of RBCD-mode primitives already rasterized in the
    /// baseline (paper: 84.4 %).
    pub fn prims_already_rasterized(&self) -> f64 {
        self.baseline.stats.raster.primitives_fetched as f64
            / self.rbcd2.stats.raster.primitives_fetched.max(1) as f64
    }

    /// §5.2: share of the RBCD unit's fragments already produced by the
    /// baseline (paper: 94 %).
    pub fn fragments_already_produced(&self) -> f64 {
        let extra = self
            .rbcd2
            .stats
            .raster
            .fragments_rasterized
            .saturating_sub(self.baseline.stats.raster.fragments_rasterized);
        let needed = self.rbcd2.stats.raster.fragments_collisionable.max(1);
        1.0 - extra as f64 / needed as f64
    }

    /// §5.2: tile-cache store ratio (RBCD / baseline) and write-miss
    /// ratio (paper: +32 % stores, +8.8 % write misses).
    pub fn store_ratios(&self) -> (f64, f64) {
        let b = &self.baseline.stats.geometry.tile_cache_stores;
        let r = &self.rbcd2.stats.geometry.tile_cache_stores;
        (
            r.write_accesses as f64 / b.write_accesses.max(1) as f64,
            r.write_misses as f64 / b.write_misses.max(1) as f64,
        )
    }

    /// §5.2: geometry-pipeline time ratio (paper: < 1 % increase).
    pub fn geometry_time_ratio(&self) -> f64 {
        self.rbcd2.stats.geometry.cycles as f64 / self.baseline.stats.geometry.cycles.max(1) as f64
    }
}

/// Results for the whole suite.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Per-benchmark results, in suite order.
    pub benchmarks: Vec<BenchmarkResult>,
}

/// Geometric mean of a sequence (the paper aggregates per-benchmark
/// ratios this way).
///
/// # Panics
///
/// Panics on an empty iterator or non-positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean needs positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    assert!(n > 0, "geomean of an empty sequence");
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert!((geomean([5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean([1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_rejects_empty() {
        let _ = geomean([]);
    }
}
