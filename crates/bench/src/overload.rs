//! Overload experiment: storm-faulted frames under a shrinking
//! frame-cycle budget, with full degraded-result accounting.
//!
//! Per scene, an ungoverned **baseline pass** first measures each
//! frame's governable merge-timeline cycles (a governor with a zero
//! budget reports the timeline without degrading anything). The sweep
//! then re-renders the same faulted frames at budgets of 100 / 75 / 50
//! / 25 % of that baseline, with the whole governance stack engaged:
//!
//! * the simulator's policy ladder (forced reuse → scan coarsening →
//!   tile shedding) keeps every frame inside its budget, overshooting
//!   by at most one tile's own work;
//! * the [`Governor`] drives the escalation circuit breaker and the
//!   stale carry-forward store frame-sequentially on the host;
//! * the exact CPU detector recovers pairs for every *routed* object
//!   (ladder-escalated, shed, or breaker-blocked);
//! * the software oracle re-renders each frame losslessly and checks
//!   the soundness contract: every pair it finds outside the shed
//!   tiles whose endpoints were *not* routed to the CPU must appear in
//!   the exact partition. Routed pairs the CPU also misses are counted
//!   separately (`delegated_misses`) — they are attributed, visible
//!   degradations, not silent losses.
//!
//! Everything is a pure function of `(scene, plan, seed, budgets)`;
//! the whole experiment is bit-identical at any `opts.threads`.

use crate::faults::ladder_config;
use crate::runner::RunOptions;
use rbcd_core::governor::{BreakerConfig, Governor, Pair};
use rbcd_core::software::OracleUnit;
use rbcd_core::{FaultPlan, RbcdConfig, RbcdUnit};
use rbcd_cpu_cd::{CdBody, CpuCollisionDetector, Phase};
use rbcd_gpu::{GovernorConfig, ObjectId, PipelineMode, Simulator, SimulatorBuilder};
use rbcd_workloads::Scene;
use std::collections::BTreeSet;

/// One `(scene, budget%)` sweep point, accounting every degradation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OverloadCell {
    /// Budget as a percentage of the scene's baseline cycles.
    pub budget_pct: u32,
    /// Summed per-frame budgets (cycles).
    pub budget_cycles: u64,
    /// Summed governed merge-timeline cycles actually used.
    pub used_cycles: u64,
    /// Frames that blew their budget by more than one tile's slack
    /// (the acceptance criterion demands this stays zero).
    pub budget_violations: u64,
    /// Frames with any degradation (shed tiles, stale or CPU pairs).
    pub degraded_frames: u64,
    /// Tiles shed across the run (policy rung 3).
    pub tiles_shed: u64,
    /// Tiles scan-coarsened across the run (policy rung 2).
    pub tiles_coarsened: u64,
    /// Circuit-breaker trips across the run.
    pub breaker_trips: u64,
    /// Pairs found exactly by the hardware model (summed per frame).
    pub exact_pairs: u64,
    /// Pairs recovered by the exact CPU detector (summed per frame).
    pub cpu_verified_pairs: u64,
    /// Pairs carried forward stale for shed tiles (summed per frame).
    pub stale_pairs: u64,
    /// Oracle pairs outside the frame's shed tiles (summed per frame).
    pub oracle_pairs: u64,
    /// Oracle pairs outside shed tiles, endpoints unrouted, missing
    /// from the exact partition — silent losses; must be zero.
    pub oracle_misses: u64,
    /// Oracle pairs outside shed tiles with a routed endpoint that the
    /// CPU recovery did not confirm (attributed approximation gap).
    pub delegated_misses: u64,
}

impl OverloadCell {
    /// Fraction of the (non-shed) oracle pairs the degraded result
    /// still reports, across all partitions. `1.0` for an empty oracle.
    pub fn recovered_fraction(&self) -> f64 {
        if self.oracle_pairs == 0 {
            return 1.0;
        }
        let found = self.oracle_pairs - self.oracle_misses - self.delegated_misses;
        found as f64 / self.oracle_pairs as f64
    }
}

/// All sweep points of one scene.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadSceneResult {
    /// Scene alias.
    pub alias: String,
    /// Frames rendered per sweep point.
    pub frames: usize,
    /// Summed ungoverned merge-timeline cycles (the 100% reference).
    pub baseline_cycles: u64,
    /// One cell per budget percentage, in sweep order.
    pub cells: Vec<OverloadCell>,
}

/// The whole overload experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadResult {
    /// Fault-plan preset name.
    pub plan: String,
    /// Base injection seed.
    pub seed: u64,
    /// Per-scene sweeps.
    pub scenes: Vec<OverloadSceneResult>,
}

impl OverloadResult {
    /// Total silent oracle misses across every cell (must be zero).
    pub fn oracle_misses(&self) -> u64 {
        self.scenes.iter().flat_map(|s| s.cells.iter().map(|c| c.oracle_misses)).sum()
    }

    /// Total budget violations across every cell (must be zero).
    pub fn budget_violations(&self) -> u64 {
        self.scenes.iter().flat_map(|s| s.cells.iter().map(|c| c.budget_violations)).sum()
    }

    /// The worst recovered fraction across every cell.
    pub fn worst_recovery(&self) -> f64 {
        self.scenes
            .iter()
            .flat_map(|s| s.cells.iter().map(OverloadCell::recovered_fraction))
            .fold(1.0, f64::min)
    }

    /// Geometric mean of the recovered fraction over every cell — the
    /// artifact's headline number.
    pub fn geomean_recovery(&self) -> f64 {
        crate::metrics::geomean(
            self.scenes
                .iter()
                .flat_map(|s| s.cells.iter().map(OverloadCell::recovered_fraction))
                // A cell that lost everything would zero the geomean's
                // log-domain sum; floor it at a visible-but-tiny value.
                .map(|v| v.max(1e-6)),
        )
    }

    /// Totals for the shared `BENCH_*.json` governor header block.
    pub fn governor_summary(&self) -> crate::schema::GovernorSummary {
        let mut out = crate::schema::GovernorSummary::default();
        for c in self.scenes.iter().flat_map(|s| &s.cells) {
            out.degraded_frames += c.degraded_frames;
            out.tiles_shed += c.tiles_shed;
            out.stale_pairs += c.stale_pairs;
        }
        out
    }
}

/// Runs the overload sweep: for every scene and every percentage in
/// `budget_pcts`, render `frames` storm-faulted frames under that
/// fraction of the scene's baseline cycle budget. Deterministic for any
/// `opts.threads`.
pub fn run_overload(
    scenes: &[Scene],
    plan_name: &str,
    base_plan: FaultPlan,
    budget_pcts: &[u32],
    opts: &RunOptions,
) -> OverloadResult {
    let scenes = scenes
        .iter()
        .map(|scene| {
            let frames = opts.frames.unwrap_or(scene.frames);
            let baseline = measure_baseline(scene, frames, &base_plan, opts);
            let baseline_cycles = baseline.iter().sum();
            let cells = budget_pcts
                .iter()
                .map(|&pct| run_cell(scene, frames, &base_plan, &baseline, pct, opts))
                .collect();
            OverloadSceneResult {
                alias: scene.alias.to_string(),
                frames,
                baseline_cycles,
                cells,
            }
        })
        .collect();
    OverloadResult { plan: plan_name.to_string(), seed: base_plan.seed, scenes }
}

/// A governed simulator for the sweep: the ladder-enabled unit config
/// plus a governor with the given per-frame budget.
fn governed_sim(opts: &RunOptions, budget: u64) -> Simulator {
    SimulatorBuilder::from_config(opts.gpu.clone())
        .policy(opts.frame_policy().with_governor(Some(GovernorConfig {
            frame_budget_cycles: budget,
            ..GovernorConfig::default()
        })))
        .build()
        .expect("benchmark GPU configurations are validated at construction")
}

fn ladder_unit(plan: &FaultPlan, opts: &RunOptions) -> RbcdUnit {
    let cfg = RbcdConfig { hot_path: opts.gpu.hot_path, ..ladder_config(plan) };
    RbcdUnit::new(cfg, opts.gpu.tile_size)
        .expect("the ladder configuration is valid by construction")
}

/// Ungoverned reference pass: a zero budget engages no policy rung but
/// still reports each frame's governable merge-timeline cycles.
fn measure_baseline(
    scene: &Scene,
    frames: usize,
    plan: &FaultPlan,
    opts: &RunOptions,
) -> Vec<u64> {
    let mut sim = governed_sim(opts, 0);
    let mut unit = ladder_unit(plan, opts);
    (0..frames)
        .map(|f| {
            let (trace, _log) = plan.apply(&scene.frame_trace(f), f as u64);
            unit.new_frame();
            sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut unit, opts.threads);
            unit.take_contacts();
            unit.take_escalated();
            sim.take_governor_report().expect("a governed frame reports its timeline").used_cycles
        })
        .collect()
}

fn run_cell(
    scene: &Scene,
    frames: usize,
    plan: &FaultPlan,
    baseline: &[u64],
    pct: u32,
    opts: &RunOptions,
) -> OverloadCell {
    let mut cell = OverloadCell { budget_pct: pct, ..OverloadCell::default() };
    let meshes = scene.collidable_meshes();

    let mut sim = governed_sim(opts, 0);
    let mut unit = ladder_unit(plan, opts);
    let mut governor = Governor::new(BreakerConfig::default());

    for (f, &frame_baseline) in baseline.iter().enumerate().take(frames) {
        let budget = (frame_baseline * pct as u64) / 100;
        sim.set_governor(Some(GovernorConfig {
            frame_budget_cycles: budget,
            ..GovernorConfig::default()
        }));
        let blocked = governor.blocked().clone();
        sim.set_governor_blocked(blocked.clone());

        let (trace, _log) = plan.apply(&scene.frame_trace(f), f as u64);
        unit.new_frame();
        sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut unit, opts.threads);
        let report = sim.take_governor_report().expect("a governed frame reports its timeline");
        let contacts = unit.take_contacts();
        let escalated = unit.take_escalated();

        // Every routed object — ladder-escalated, shed with its tile,
        // or breaker-blocked — goes to the exact CPU detector.
        let mut routed: BTreeSet<ObjectId> = escalated.clone();
        routed.extend(report.shed_objects.iter().copied());
        routed.extend(blocked.iter().copied());
        let cpu_pairs = cpu_recover_routed(&routed, &meshes, &scene.collidable_transforms(f));

        let result = governor.finish_frame(
            opts.gpu.tile_size,
            &contacts,
            &escalated,
            &report.shed_tiles,
            report.used_cycles,
            report.budget_cycles,
            &cpu_pairs,
        );

        cell.budget_cycles += budget;
        cell.used_cycles += report.used_cycles;
        if !result.within_budget(report.max_tile_cycles) {
            cell.budget_violations += 1;
        }
        if result.degraded() {
            cell.degraded_frames += 1;
        }
        cell.tiles_shed += report.shed_tiles.len() as u64;
        cell.tiles_coarsened += report.tiles_coarsened;
        cell.exact_pairs += result.exact.len() as u64;
        cell.cpu_verified_pairs += result.cpu_verified.len() as u64;
        cell.stale_pairs += result.stale.len() as u64;

        // Soundness contract, against a lossless re-render of the same
        // faulted trace: outside the shed tiles, unrouted pairs must be
        // exact; routed pairs may only miss through the CPU detector's
        // attributed approximation gap.
        let mut oracle = OracleUnit::new();
        let mut oracle_sim = Simulator::new(opts.gpu.clone());
        oracle_sim.render_frame(&trace, PipelineMode::Rbcd, &mut oracle);
        let shed: BTreeSet<(u32, u32)> = report.shed_tiles.iter().copied().collect();
        for pair in oracle.pairs_outside_tiles(opts.gpu.tile_size, &shed) {
            cell.oracle_pairs += 1;
            if result.exact.contains(&pair) || result.cpu_verified.contains(&pair) {
                continue;
            }
            if routed.contains(&pair.0) || routed.contains(&pair.1) {
                cell.delegated_misses += 1;
            } else {
                cell.oracle_misses += 1;
            }
        }
    }

    cell.breaker_trips = governor.breaker().trips();
    cell
}

/// Exact CPU detection over the whole scene, filtered to pairs with at
/// least one routed endpoint. Running all bodies (not just the routed
/// ones) is what makes mixed pairs — one routed object against one
/// healthy one — recoverable.
fn cpu_recover_routed(
    routed: &BTreeSet<ObjectId>,
    meshes: &[(ObjectId, std::sync::Arc<rbcd_geometry::Mesh>)],
    transforms: &[rbcd_math::Mat4],
) -> BTreeSet<Pair> {
    if routed.is_empty() || meshes.len() < 2 {
        return BTreeSet::new();
    }
    let mut bodies = Vec::new();
    let mut models = Vec::new();
    for (i, (id, mesh)) in meshes.iter().enumerate() {
        if let Ok(body) = CdBody::from_mesh(id.get() as u32, mesh) {
            bodies.push(body);
            models.push(transforms[i]);
        }
    }
    if bodies.len() < 2 {
        return BTreeSet::new();
    }
    CpuCollisionDetector::new(bodies)
        .detect(&models, Phase::BroadAndNarrow)
        .pairs
        .into_iter()
        .map(|(a, b)| (ObjectId::new(a as u16), ObjectId::new(b as u16)))
        .filter(|(a, b)| routed.contains(a) || routed.contains(b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_gpu::GpuConfig;
    use rbcd_math::Viewport;

    fn opts(threads: usize) -> RunOptions {
        RunOptions {
            frames: Some(3),
            gpu: GpuConfig { viewport: Viewport::new(160, 96), ..GpuConfig::default() },
            threads,
            ..RunOptions::default()
        }
    }

    #[test]
    fn storm_at_half_budget_sheds_within_budget_and_stays_sound() {
        let plan = FaultPlan::preset("storm", 0x0E_2108).unwrap();
        let scenes = [rbcd_workloads::shells()];
        let r = run_overload(&scenes, "storm", plan, &[100, 50, 25], &opts(1));
        let s = &r.scenes[0];
        assert!(s.baseline_cycles > 0);
        assert_eq!(s.cells.len(), 3);
        // The 25% cell must actually degrade; shedding gets monotonically
        // worse as the budget shrinks.
        let shed: Vec<u64> = s.cells.iter().map(|c| c.tiles_shed).collect();
        assert!(shed[2] > 0, "25% budget must shed tiles, got {shed:?}");
        assert!(shed[0] <= shed[2], "tighter budgets shed at least as much: {shed:?}");
        assert_eq!(r.budget_violations(), 0, "every frame must land within one tile of budget");
        assert_eq!(r.oracle_misses(), 0, "unrouted non-shed pairs must be exact");
        for c in &s.cells {
            assert!(c.oracle_pairs > 0);
            assert!(c.recovered_fraction() > 0.5, "cell {}%: {c:?}", c.budget_pct);
        }
    }

    #[test]
    fn coarsening_rung_engages_under_a_tight_budget() {
        let o = opts(1);
        let scene = rbcd_workloads::shells();
        let trace = scene.frame_trace(0);
        let unit = || {
            RbcdUnit::new(
                RbcdConfig { hot_path: o.gpu.hot_path, ..RbcdConfig::default() },
                o.gpu.tile_size,
            )
            .unwrap()
        };

        // Governable baseline for the frame (a zero budget engages no rung).
        let mut sim = governed_sim(&o, 0);
        let mut u = unit();
        u.new_frame();
        sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut u, 1);
        let baseline = sim.take_governor_report().unwrap().used_cycles;
        assert!(baseline > 0);

        // The plan-phase projection (primitives + tile overhead) is a
        // deliberate lower bound on the merge timeline, so rung 2 only
        // fires when the budget undercuts even that. A 1% budget plus
        // an aggressive coarsen threshold guarantees it.
        let gov = GovernorConfig {
            frame_budget_cycles: (baseline / 100).max(1),
            coarsen_prims: 1,
            coarsen_shift: 2,
            shed_overhead_cycles: 0,
        };
        let run = |threads: usize| {
            let mut sim = SimulatorBuilder::from_config(o.gpu.clone())
                .policy(rbcd_gpu::FramePolicy::new().with_governor(Some(gov)))
                .build()
                .unwrap();
            let mut u = unit();
            u.new_frame();
            sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut u, threads);
            let rep = sim.take_governor_report().unwrap();
            (
                rep.tiles_coarsened,
                rep.shed_tiles.clone(),
                rep.used_cycles,
                u.take_contacts(),
                u.take_escalated(),
            )
        };
        let a = run(1);
        assert!(a.0 > 0, "the coarsen rung must engage under a 1% budget");
        assert_eq!(a, run(2), "coarsening must be thread-invariant");
        assert_eq!(a, run(4), "coarsening must be thread-invariant");
    }

    #[test]
    fn governed_sweep_is_thread_and_reuse_flag_invariant() {
        let plan = FaultPlan::preset("storm", 0x0E_2108).unwrap();
        let scenes = [rbcd_workloads::shells()];
        let a = run_overload(&scenes, "storm", plan, &[50], &opts(1));
        let b = run_overload(&scenes, "storm", plan, &[50], &opts(2));
        let c = run_overload(&scenes, "storm", plan, &[50], &opts(4));
        assert_eq!(a, b, "1 vs 2 threads");
        assert_eq!(a, c, "1 vs 4 threads");
        // The governor forces the reuse machinery on, so the host-side
        // reuse flag must not change a governed run either.
        let d = run_overload(
            &scenes,
            "storm",
            plan,
            &[50],
            &RunOptions { reuse: true, ..opts(2) },
        );
        assert_eq!(a, d, "reuse flag must be absorbed by the governor");
    }
}
