//! Plain-text table rendering for the `repro` binary.

use std::fmt;
use std::fmt::Write as _;

/// A malformed table row: its width did not match the header row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableError {
    /// Title of the table the row was destined for.
    pub table: String,
    /// Header (column) count.
    pub expected: usize,
    /// Cells the offending row actually carried.
    pub got: usize,
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "table '{}': row width mismatch (expected {} cells, got {})",
            self.table, self.expected, self.got
        )
    }
}

impl std::error::Error for TableError {}

/// A simple fixed-width table printer.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns [`TableError`] (and leaves the table unchanged) if the
    /// row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> Result<&mut Self, TableError> {
        if cells.len() != self.headers.len() {
            return Err(TableError {
                table: self.title.clone(),
                expected: self.headers.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells);
        Ok(self)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Formats a ratio as `123.4x`.
pub fn fmt_x(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else {
        format!("{v:.1}x")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats a normalized value (e.g. 1.032).
pub fn fmt_norm(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]).unwrap();
        t.row(vec!["longer".into(), "22".into()]).unwrap();
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("longer"));
        // Both value cells right-aligned to the same column width.
        // Leading blank line + title + header + rule + two rows.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn mismatched_row_is_a_typed_error() {
        let mut t = Table::new("Demo", &["a", "b"]);
        let err = t.row(vec!["only-one".into()]).unwrap_err();
        assert_eq!(err, TableError { table: "Demo".into(), expected: 2, got: 1 });
        assert!(err.to_string().contains("expected 2 cells, got 1"));
        // The bad row was not recorded.
        assert_eq!(t.render().lines().count(), 4);
        // Chaining still works on the Ok side.
        t.row(vec!["x".into(), "y".into()])
            .unwrap()
            .row(vec!["z".into(), "w".into()])
            .unwrap();
        assert_eq!(t.render().lines().count(), 6);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_x(448.4), "448x");
        assert_eq!(fmt_x(5.43), "5.4x");
        assert_eq!(fmt_pct(0.0157), "1.57%");
        assert_eq!(fmt_norm(1.03), "1.0300");
    }
}
