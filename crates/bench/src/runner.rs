//! Drives workloads through the GPU simulator and the CPU baselines.

use crate::metrics::{BenchmarkResult, SuiteResult};
use crate::metrics::{CpuRun, GpuRun};
use rbcd_core::{ObjectPair, RbcdConfig, RbcdUnit};
use rbcd_cpu_cd::{CdBody, Cost, CpuCollisionDetector, CpuConfig, Phase};
use rbcd_gpu::energy::EnergyModel;
use rbcd_gpu::{
    BroadPhase, FramePolicy, FrameStats, FrontendMode, GpuConfig, NullCollisionUnit, PipelineMode,
    SimulatorBuilder,
};
use rbcd_trace::TraceBuffer;
use rbcd_workloads::Scene;
use std::collections::BTreeSet;

/// Options for an experiment run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Frames per benchmark (`None` = the scene's default).
    pub frames: Option<usize>,
    /// GPU configuration (Table 1).
    pub gpu: GpuConfig,
    /// CPU configuration (Table 1).
    pub cpu: CpuConfig,
    /// Energy table.
    pub energy: EnergyModel,
    /// List capacities for the Table 3 sweep.
    pub m_sweep: Vec<usize>,
    /// ZEB counts for the ablation.
    pub zeb_counts: Vec<u32>,
    /// Worker threads for simulation. Every simulated number is
    /// bit-identical for any value (the parallel tile pipeline merges
    /// deterministically); this only changes host wall-clock time.
    pub threads: usize,
    /// Temporal tile coherence: when enabled, tiles whose binned draw
    /// list is unchanged from the previous frame replay their cached
    /// result instead of re-rasterizing. Pairs, heatmaps, and every
    /// event counter stay bit-identical to a reuse-off run; only the
    /// simulated-cycle timeline (and cycle-derived metrics) shrinks.
    /// Off by default so golden counters and the paper-facing tables
    /// are unaffected unless asked for.
    pub reuse: bool,
    /// Geometry front-end arrangement. Both modes are bit-identical in
    /// every simulated number (only the accounting-only `geom.*`
    /// counters and host wall-clock differ); full rebuild by default so
    /// golden counters stay byte-stable. The `repro` CLI flips this to
    /// incremental, the faster host path on coherent workloads.
    pub frontend: FrontendMode,
    /// Screen-space broad phase. Pairs, `rbcd.*` counters, and fault
    /// behaviour are bit-identical either way; `On` additionally skips
    /// raster and ZEB-scan work on tiles that provably cannot produce a
    /// pair, so the image-side timing/energy counters shrink. Off by
    /// default so golden counters and the paper-facing tables are
    /// unaffected unless asked for; the `repro` CLI flips it on.
    pub broadphase: BroadPhase,
    /// Overload governor for the simulator (`None` = ungoverned, the
    /// default — all outputs bit-identical to pre-governor builds).
    /// Experiments that sweep per-frame budgets (`repro overload`) set
    /// budgets on the simulator directly instead.
    pub governor: Option<rbcd_gpu::GovernorConfig>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            frames: None,
            gpu: GpuConfig::default(),
            cpu: CpuConfig::default(),
            energy: EnergyModel::default(),
            m_sweep: vec![4, 8, 16],
            zeb_counts: vec![1, 2, 3, 4],
            threads: 1,
            reuse: false,
            frontend: FrontendMode::Rebuild,
            broadphase: BroadPhase::Off,
            governor: None,
        }
    }
}

impl RunOptions {
    /// These options' execution knobs as one [`FramePolicy`] — the form
    /// `SimulatorBuilder::policy` and the session API consume. The hot
    /// path is left to the [`GpuConfig`] (`self.gpu.hot_path`), which
    /// the builder already honours.
    pub fn frame_policy(&self) -> FramePolicy {
        FramePolicy::new()
            .with_workers(self.threads)
            .with_reuse(self.reuse)
            .with_frontend(self.frontend)
            .with_broadphase(self.broadphase)
            .with_governor(self.governor)
    }
}

/// Renders `frames` of `scene` on a fresh simulator in the given mode;
/// `rbcd` attaches a unit with that configuration.
pub fn run_gpu(
    scene: &Scene,
    frames: usize,
    opts: &RunOptions,
    rbcd: Option<RbcdConfig>,
) -> GpuRun {
    run_gpu_inner(scene, frames, opts, rbcd, false).0
}

/// Like [`run_gpu`] with an attached unit, but with the instrumentation
/// layer enabled: the simulator records frame/draw/tile spans and the
/// unit logs per-tile ZEB activity, all merged onto one simulated-cycle
/// timeline. Tracing is observation-only — the returned [`GpuRun`] is
/// bit-identical to the untraced [`run_gpu`] result.
pub fn run_gpu_traced(
    scene: &Scene,
    frames: usize,
    opts: &RunOptions,
    rbcd: RbcdConfig,
) -> (GpuRun, TraceBuffer) {
    let (run, trace) = run_gpu_inner(scene, frames, opts, Some(rbcd), true);
    (run, trace.expect("tracing was enabled"))
}

fn run_gpu_inner(
    scene: &Scene,
    frames: usize,
    opts: &RunOptions,
    rbcd: Option<RbcdConfig>,
    traced: bool,
) -> (GpuRun, Option<TraceBuffer>) {
    let mut sim = SimulatorBuilder::from_config(opts.gpu.clone())
        .policy(opts.frame_policy().with_tracing(traced))
        .build()
        .expect("benchmark GPU configurations are validated at construction");
    let mut total = FrameStats::default();
    let mut pairs: BTreeSet<ObjectPair> = BTreeSet::new();

    let run = match rbcd {
        None => {
            let mut unit = NullCollisionUnit;
            for f in 0..frames {
                total.accumulate(&sim.render_frame_parallel(
                    &scene.frame_trace(f),
                    PipelineMode::Baseline,
                    &mut unit,
                    opts.threads,
                ));
            }
            GpuRun {
                seconds: opts.gpu.cycles_to_seconds(total.total_cycles()),
                energy_j: opts.energy.gpu_energy(&total).total_j(),
                counters: total.counter_set(),
                stats: total,
                rbcd: None,
                pairs,
            }
        }
        Some(cfg) => {
            // The unit's hot path follows the simulator's, so one knob
            // (e.g. repro's `--hot-path`) switches the whole pipeline.
            let cfg = RbcdConfig { hot_path: opts.gpu.hot_path, ..cfg };
            let mut unit = RbcdUnit::new(cfg, opts.gpu.tile_size)
                .expect("benchmark RBCD configurations are validated at construction");
            unit.set_tile_logging(traced);
            for f in 0..frames {
                unit.new_frame();
                total.accumulate(&sim.render_frame_parallel(
                    &scene.frame_trace(f),
                    PipelineMode::Rbcd,
                    &mut unit,
                    opts.threads,
                ));
                if traced {
                    // The tracer's raster timeline still points at the
                    // frame that just ended, so draining here lands the
                    // per-tile ZEB records in the right frame.
                    sim.record_collision_tiles(&unit.take_tile_records());
                }
                for c in unit.take_contacts() {
                    pairs.insert(c.object_pair());
                }
            }
            let stats = *unit.stats();
            let cycles = total.total_cycles();
            let energy_j = opts.energy.gpu_energy(&total).total_j()
                + stats.dynamic_energy_j(&opts.energy)
                + opts.energy.rbcd_static_j(cfg.zeb_count, cfg.list_capacity, cycles);
            let mut counters = total.counter_set();
            counters.accumulate(&stats.counter_set());
            GpuRun {
                seconds: opts.gpu.cycles_to_seconds(cycles),
                energy_j,
                counters,
                stats: total,
                rbcd: Some(stats),
                pairs,
            }
        }
    };
    let trace = sim.take_trace();
    (run, trace)
}

/// Runs the CPU detector over the same frames.
pub fn run_cpu(scene: &Scene, frames: usize, opts: &RunOptions, phase: Phase) -> CpuRun {
    let bodies: Vec<CdBody> = scene
        .collidable_meshes()
        .iter()
        .map(|(id, mesh)| CdBody::from_mesh(id.get() as u32, mesh).expect("workload meshes are non-degenerate"))
        .collect();
    let mut detector = CpuCollisionDetector::new(bodies);
    let mut cost = Cost::default();
    let mut pairs: BTreeSet<ObjectPair> = BTreeSet::new();
    let mut candidates = 0usize;
    for f in 0..frames {
        let result = detector.detect(&scene.collidable_transforms(f), phase);
        cost.accumulate(&result.cost);
        candidates += result.candidates;
        pairs.extend(result.pairs.into_iter().map(ObjectPair::from));
    }
    CpuRun {
        report: cost.report(&opts.cpu),
        pairs,
        avg_candidates: candidates as f64 / frames.max(1) as f64,
    }
}

/// Runs every configuration of the evaluation for one benchmark.
pub fn run_benchmark(scene: &Scene, opts: &RunOptions) -> BenchmarkResult {
    let frames = opts.frames.unwrap_or(scene.frames);
    let m8 = RbcdConfig::default();

    let baseline = run_gpu(scene, frames, opts, None);
    let rbcd1 = run_gpu(scene, frames, opts, Some(RbcdConfig { zeb_count: 1, ..m8 }));
    let rbcd2 = run_gpu(scene, frames, opts, Some(m8));

    let cpu_broad = run_cpu(scene, frames, opts, Phase::Broad);
    let cpu_gjk = run_cpu(scene, frames, opts, Phase::BroadAndNarrow);

    // Table 3: overflow sweep (FF-Stack scaled with M so the stack never
    // limits the sweep).
    let overflow: Vec<(usize, f64)> = opts
        .m_sweep
        .iter()
        .map(|&m| {
            let run = run_gpu(
                scene,
                frames,
                opts,
                Some(RbcdConfig { list_capacity: m, ff_stack_capacity: m.max(8), ..m8 }),
            );
            (m, run.rbcd.expect("rbcd run").overflow_rate())
        })
        .collect();

    // §5.3: despite M = 8 overflows, are all pairs still found? Compare
    // against a no-overflow reference (M = 64).
    let reference = run_gpu(
        scene,
        frames,
        opts,
        Some(RbcdConfig { list_capacity: 64, ff_stack_capacity: 64, ..m8 }),
    );
    let all_pairs_detected_at_m8 = rbcd2.pairs == reference.pairs;

    // ZEB-count ablation.
    let zeb_ablation: Vec<(u32, f64, f64)> = opts
        .zeb_counts
        .iter()
        .map(|&z| {
            let run = run_gpu(scene, frames, opts, Some(RbcdConfig { zeb_count: z, ..m8 }));
            (z, run.seconds, run.energy_j)
        })
        .collect();

    BenchmarkResult {
        alias: scene.alias.to_string(),
        frames,
        baseline,
        rbcd1,
        rbcd2,
        cpu_broad,
        cpu_gjk,
        overflow,
        all_pairs_detected_at_m8,
        zeb_ablation,
    }
}

/// Renders `frames` of `scene` with **frame-level** parallelism: each
/// frame runs on a fresh simulator + unit (cold caches, independent
/// timelines) so frames are embarrassingly parallel, and per-frame
/// results are merged in frame order.
///
/// Results are bit-identical for any `threads` value, but are *not*
/// comparable to [`run_gpu`] (which keeps caches and ZEB timing warm
/// across frames) — this entry point exists for host-throughput
/// measurement, where identical-work-per-frame is exactly what we want.
pub fn run_frames_parallel(
    scene: &Scene,
    frames: usize,
    opts: &RunOptions,
    cfg: RbcdConfig,
    threads: usize,
) -> GpuRun {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let run_one = |f: usize| {
        let mut sim = SimulatorBuilder::from_config(opts.gpu.clone())
            .build()
            .expect("benchmark GPU configurations are validated at construction");
        let mut unit = RbcdUnit::new(cfg, opts.gpu.tile_size)
            .expect("benchmark RBCD configurations are validated at construction");
        let stats =
            sim.render_frame_parallel(&scene.frame_trace(f), PipelineMode::Rbcd, &mut unit, 1);
        let contacts = unit.take_contacts();
        (stats, *unit.stats(), contacts)
    };

    let mut slots: Vec<Option<(FrameStats, rbcd_core::RbcdStats, Vec<rbcd_core::ContactPoint>)>> =
        (0..frames).map(|_| None).collect();
    let workers = threads.max(1).min(frames.max(1));
    if workers <= 1 {
        for (f, slot) in slots.iter_mut().enumerate() {
            *slot = Some(run_one(f));
        }
    } else {
        let next = AtomicUsize::new(0);
        let done: Vec<(usize, _)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let f = next.fetch_add(1, Ordering::Relaxed);
                            if f >= frames {
                                return mine;
                            }
                            mine.push((f, run_one(f)));
                        }
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("frame worker panicked")).collect()
        });
        for (f, out) in done {
            slots[f] = Some(out);
        }
    }

    // Deterministic merge in frame order.
    let mut total = FrameStats::default();
    let mut rbcd_total = rbcd_core::RbcdStats::default();
    let mut pairs: BTreeSet<ObjectPair> = BTreeSet::new();
    for slot in slots {
        let (stats, rbcd, contacts) = slot.expect("every frame produced");
        total.accumulate(&stats);
        rbcd_total.accumulate(&rbcd);
        for c in contacts {
            pairs.insert(c.object_pair());
        }
    }
    let cycles = total.total_cycles();
    let energy_j = opts.energy.gpu_energy(&total).total_j()
        + rbcd_total.dynamic_energy_j(&opts.energy)
        + opts.energy.rbcd_static_j(cfg.zeb_count, cfg.list_capacity, cycles);
    let mut counters = total.counter_set();
    counters.accumulate(&rbcd_total.counter_set());
    GpuRun {
        seconds: opts.gpu.cycles_to_seconds(cycles),
        energy_j,
        counters,
        stats: total,
        rbcd: Some(rbcd_total),
        pairs,
    }
}

/// Runs the whole suite. With `opts.threads > 1` the benchmarks run on
/// a pool of scoped worker threads (each benchmark internally at one
/// thread to avoid oversubscription); results are assembled in scene
/// order and are bit-identical to the sequential run.
pub fn run_suite(scenes: &[Scene], opts: &RunOptions) -> SuiteResult {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let workers = opts.threads.max(1).min(scenes.len().max(1));
    if workers <= 1 {
        return SuiteResult {
            benchmarks: scenes.iter().map(|s| run_benchmark(s, opts)).collect(),
        };
    }
    let inner = RunOptions { threads: 1, ..opts.clone() };
    let mut slots: Vec<Option<BenchmarkResult>> = (0..scenes.len()).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let done: Vec<(usize, BenchmarkResult)> = std::thread::scope(|scope| {
        let (inner, next) = (&inner, &next);
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= scenes.len() {
                            return mine;
                        }
                        mine.push((i, run_benchmark(&scenes[i], inner)));
                    }
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("suite worker panicked")).collect()
    });
    for (i, b) in done {
        slots[i] = Some(b);
    }
    SuiteResult {
        benchmarks: slots.into_iter().map(|s| s.expect("every scene produced")).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_math::Viewport;

    fn small_opts() -> RunOptions {
        RunOptions {
            frames: Some(2),
            gpu: GpuConfig { viewport: Viewport::new(160, 96), ..GpuConfig::default() },
            m_sweep: vec![4, 8],
            zeb_counts: vec![1, 2],
            ..RunOptions::default()
        }
    }

    #[test]
    fn gpu_runs_produce_consistent_metrics() {
        let scene = rbcd_workloads::cap();
        let opts = small_opts();
        let base = run_gpu(&scene, 2, &opts, None);
        let rbcd = run_gpu(&scene, 2, &opts, Some(RbcdConfig::default()));
        assert!(base.seconds > 0.0);
        assert!(rbcd.seconds >= base.seconds * 0.99);
        assert!(rbcd.energy_j > base.energy_j);
        assert!(rbcd.rbcd.is_some());
        assert!(rbcd.stats.raster.fragments_collisionable > 0);
    }

    #[test]
    fn cpu_runs_cost_something_and_gjk_costs_more() {
        let scene = rbcd_workloads::cap();
        let opts = small_opts();
        let broad = run_cpu(&scene, 2, &opts, Phase::Broad);
        let gjk = run_cpu(&scene, 2, &opts, Phase::BroadAndNarrow);
        assert!(broad.report.cycles > 0);
        assert!(gjk.report.cycles > broad.report.cycles);
        // Narrow phase can only remove pairs.
        assert!(gjk.pairs.is_subset(&broad.pairs));
    }

    #[test]
    fn benchmark_result_is_coherent() {
        let scene = rbcd_workloads::crazy();
        let opts = small_opts();
        let r = run_benchmark(&scene, &opts);
        assert_eq!(r.frames, 2);
        // Overflow decreases with M.
        assert!(r.overflow[0].1 >= r.overflow[1].1);
        // Speedup and energy reduction are positive and large.
        let c = r.comparison(&r.rbcd2, &r.cpu_broad);
        assert!(c.speedup > 1.0, "speedup {}", c.speedup);
        assert!(c.energy_reduction > 1.0);
        // GJK comparison dominates the broad one.
        let g = r.comparison(&r.rbcd2, &r.cpu_gjk);
        assert!(g.speedup >= c.speedup);
        // Normalized overheads are close to 1.
        assert!(r.normalized_time(&r.rbcd2) >= 1.0);
        assert!(r.normalized_time(&r.rbcd2) < 2.0);
    }
}
