//! Drives workloads through the GPU simulator and the CPU baselines.

use crate::metrics::{BenchmarkResult, SuiteResult};
use crate::metrics::{CpuRun, GpuRun};
use rbcd_core::{RbcdConfig, RbcdUnit};
use rbcd_cpu_cd::{CdBody, Cost, CpuCollisionDetector, CpuConfig, Phase};
use rbcd_gpu::energy::EnergyModel;
use rbcd_gpu::{FrameStats, GpuConfig, NullCollisionUnit, PipelineMode, Simulator};
use rbcd_workloads::Scene;
use std::collections::BTreeSet;

/// Options for an experiment run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Frames per benchmark (`None` = the scene's default).
    pub frames: Option<usize>,
    /// GPU configuration (Table 1).
    pub gpu: GpuConfig,
    /// CPU configuration (Table 1).
    pub cpu: CpuConfig,
    /// Energy table.
    pub energy: EnergyModel,
    /// List capacities for the Table 3 sweep.
    pub m_sweep: Vec<usize>,
    /// ZEB counts for the ablation.
    pub zeb_counts: Vec<u32>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            frames: None,
            gpu: GpuConfig::default(),
            cpu: CpuConfig::default(),
            energy: EnergyModel::default(),
            m_sweep: vec![4, 8, 16],
            zeb_counts: vec![1, 2, 3, 4],
        }
    }
}

/// Renders `frames` of `scene` on a fresh simulator in the given mode;
/// `rbcd` attaches a unit with that configuration.
pub fn run_gpu(
    scene: &Scene,
    frames: usize,
    opts: &RunOptions,
    rbcd: Option<RbcdConfig>,
) -> GpuRun {
    let mut sim = Simulator::new(opts.gpu.clone());
    let mut total = FrameStats::default();
    let mut pairs: BTreeSet<(u16, u16)> = BTreeSet::new();

    match rbcd {
        None => {
            let mut unit = NullCollisionUnit;
            for f in 0..frames {
                total.accumulate(&sim.render_frame(
                    &scene.frame_trace(f),
                    PipelineMode::Baseline,
                    &mut unit,
                ));
            }
            GpuRun {
                seconds: opts.gpu.cycles_to_seconds(total.total_cycles()),
                energy_j: opts.energy.gpu_energy(&total).total_j(),
                stats: total,
                rbcd: None,
                pairs,
            }
        }
        Some(cfg) => {
            let mut unit = RbcdUnit::new(cfg, opts.gpu.tile_size);
            for f in 0..frames {
                unit.new_frame();
                total.accumulate(&sim.render_frame(
                    &scene.frame_trace(f),
                    PipelineMode::Rbcd,
                    &mut unit,
                ));
                for c in unit.take_contacts() {
                    let p = c.pair();
                    pairs.insert((p.0.get(), p.1.get()));
                }
            }
            let stats = *unit.stats();
            let cycles = total.total_cycles();
            let energy_j = opts.energy.gpu_energy(&total).total_j()
                + stats.dynamic_energy_j(&opts.energy)
                + opts.energy.rbcd_static_j(cfg.zeb_count, cfg.list_capacity, cycles);
            GpuRun {
                seconds: opts.gpu.cycles_to_seconds(cycles),
                energy_j,
                stats: total,
                rbcd: Some(stats),
                pairs,
            }
        }
    }
}

/// Runs the CPU detector over the same frames.
pub fn run_cpu(scene: &Scene, frames: usize, opts: &RunOptions, phase: Phase) -> CpuRun {
    let bodies: Vec<CdBody> = scene
        .collidable_meshes()
        .iter()
        .map(|(id, mesh)| CdBody::from_mesh(id.get() as u32, mesh).expect("workload meshes are non-degenerate"))
        .collect();
    let mut detector = CpuCollisionDetector::new(bodies);
    let mut cost = Cost::default();
    let mut pairs: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut candidates = 0usize;
    for f in 0..frames {
        let result = detector.detect(&scene.collidable_transforms(f), phase);
        cost.accumulate(&result.cost);
        candidates += result.candidates;
        pairs.extend(result.pairs);
    }
    CpuRun {
        report: cost.report(&opts.cpu),
        pairs,
        avg_candidates: candidates as f64 / frames.max(1) as f64,
    }
}

/// Runs every configuration of the evaluation for one benchmark.
pub fn run_benchmark(scene: &Scene, opts: &RunOptions) -> BenchmarkResult {
    let frames = opts.frames.unwrap_or(scene.frames);
    let m8 = RbcdConfig::default();

    let baseline = run_gpu(scene, frames, opts, None);
    let rbcd1 = run_gpu(scene, frames, opts, Some(RbcdConfig { zeb_count: 1, ..m8 }));
    let rbcd2 = run_gpu(scene, frames, opts, Some(m8));

    let cpu_broad = run_cpu(scene, frames, opts, Phase::Broad);
    let cpu_gjk = run_cpu(scene, frames, opts, Phase::BroadAndNarrow);

    // Table 3: overflow sweep (FF-Stack scaled with M so the stack never
    // limits the sweep).
    let overflow: Vec<(usize, f64)> = opts
        .m_sweep
        .iter()
        .map(|&m| {
            let run = run_gpu(
                scene,
                frames,
                opts,
                Some(RbcdConfig { list_capacity: m, ff_stack_capacity: m.max(8), ..m8 }),
            );
            (m, run.rbcd.expect("rbcd run").overflow_rate())
        })
        .collect();

    // §5.3: despite M = 8 overflows, are all pairs still found? Compare
    // against a no-overflow reference (M = 64).
    let reference = run_gpu(
        scene,
        frames,
        opts,
        Some(RbcdConfig { list_capacity: 64, ff_stack_capacity: 64, ..m8 }),
    );
    let all_pairs_detected_at_m8 = rbcd2.pairs == reference.pairs;

    // ZEB-count ablation.
    let zeb_ablation: Vec<(u32, f64, f64)> = opts
        .zeb_counts
        .iter()
        .map(|&z| {
            let run = run_gpu(scene, frames, opts, Some(RbcdConfig { zeb_count: z, ..m8 }));
            (z, run.seconds, run.energy_j)
        })
        .collect();

    BenchmarkResult {
        alias: scene.alias.to_string(),
        frames,
        baseline,
        rbcd1,
        rbcd2,
        cpu_broad,
        cpu_gjk,
        overflow,
        all_pairs_detected_at_m8,
        zeb_ablation,
    }
}

/// Runs the whole suite.
pub fn run_suite(scenes: &[Scene], opts: &RunOptions) -> SuiteResult {
    SuiteResult {
        benchmarks: scenes.iter().map(|s| run_benchmark(s, opts)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_math::Viewport;

    fn small_opts() -> RunOptions {
        RunOptions {
            frames: Some(2),
            gpu: GpuConfig { viewport: Viewport::new(160, 96), ..GpuConfig::default() },
            m_sweep: vec![4, 8],
            zeb_counts: vec![1, 2],
            ..RunOptions::default()
        }
    }

    #[test]
    fn gpu_runs_produce_consistent_metrics() {
        let scene = rbcd_workloads::cap();
        let opts = small_opts();
        let base = run_gpu(&scene, 2, &opts, None);
        let rbcd = run_gpu(&scene, 2, &opts, Some(RbcdConfig::default()));
        assert!(base.seconds > 0.0);
        assert!(rbcd.seconds >= base.seconds * 0.99);
        assert!(rbcd.energy_j > base.energy_j);
        assert!(rbcd.rbcd.is_some());
        assert!(rbcd.stats.raster.fragments_collisionable > 0);
    }

    #[test]
    fn cpu_runs_cost_something_and_gjk_costs_more() {
        let scene = rbcd_workloads::cap();
        let opts = small_opts();
        let broad = run_cpu(&scene, 2, &opts, Phase::Broad);
        let gjk = run_cpu(&scene, 2, &opts, Phase::BroadAndNarrow);
        assert!(broad.report.cycles > 0);
        assert!(gjk.report.cycles > broad.report.cycles);
        // Narrow phase can only remove pairs.
        assert!(gjk.pairs.is_subset(&broad.pairs));
    }

    #[test]
    fn benchmark_result_is_coherent() {
        let scene = rbcd_workloads::crazy();
        let opts = small_opts();
        let r = run_benchmark(&scene, &opts);
        assert_eq!(r.frames, 2);
        // Overflow decreases with M.
        assert!(r.overflow[0].1 >= r.overflow[1].1);
        // Speedup and energy reduction are positive and large.
        let c = r.comparison(&r.rbcd2, &r.cpu_broad);
        assert!(c.speedup > 1.0, "speedup {}", c.speedup);
        assert!(c.energy_reduction > 1.0);
        // GJK comparison dominates the broad one.
        let g = r.comparison(&r.rbcd2, &r.cpu_gjk);
        assert!(g.speedup >= c.speedup);
        // Normalized overheads are close to 1.
        assert!(r.normalized_time(&r.rbcd2) >= 1.0);
        assert!(r.normalized_time(&r.rbcd2) < 2.0);
    }
}
