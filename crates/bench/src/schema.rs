//! Shared top-level schema for the `BENCH_*.json` artifacts.
//!
//! Every benchmark artifact the `repro` binary writes opens with the
//! same header block — `schema_version`, the experiment id, a `host`
//! triple, the headline `geomean`, and a `governor` degraded-result
//! summary — so downstream tooling can dispatch on one stable shape.
//! Callers render the header with [`header`] (or
//! [`header_with_governor`] when the run actually degraded), append
//! their experiment-specific fields, and land the document through
//! [`write()`], which re-parses it with the crate's own JSON parser and
//! checks the shared fields before anything reaches disk.

use rbcd_trace::json::{self, Value};
use std::fmt;

/// Version of the shared header layout. Bump when a shared field is
/// renamed, removed, or changes meaning.
///
/// History: v1 had no `governor` block; v2 adds it (degraded-result
/// accounting for the overload governor) to every artifact.
pub const SCHEMA_VERSION: u64 = 2;

/// A document rejected by [`validate`] or a landing failed in
/// [`write()`], naming exactly what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// The document does not re-parse with the crate's own JSON parser.
    Parse(
        /// The parser's diagnostic.
        String,
    ),
    /// A required shared field is missing or of the wrong type.
    MissingField(
        /// Dotted path of the absent field (e.g. `"host.cores"`).
        &'static str,
    ),
    /// The document carries a `schema_version` this crate does not
    /// support.
    VersionMismatch {
        /// The version found in the document.
        found: u64,
    },
    /// The validated document could not be written to disk.
    Io {
        /// Destination path.
        path: String,
        /// The underlying I/O diagnostic.
        message: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "document does not re-parse: {e}"),
            Self::MissingField(field) => write!(f, "missing or mistyped field: {field}"),
            Self::VersionMismatch { found } => {
                write!(f, "schema_version {found} != supported {SCHEMA_VERSION}")
            }
            Self::Io { path, message } => write!(f, "could not write {path}: {message}"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// The shared degraded-result summary every `BENCH_*.json` header
/// carries under the `governor` key. Experiments that never engage the
/// overload governor report all-zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorSummary {
    /// Frames whose result set was degraded (shed, stale, or
    /// CPU-recovered pairs present).
    pub degraded_frames: u64,
    /// Total tiles shed to the CPU path across the run.
    pub tiles_shed: u64,
    /// Total pairs carried forward stale from a previous frame.
    pub stale_pairs: u64,
}

/// Renders the shared opening of a `BENCH_*.json` document: `{`,
/// `schema_version`, the experiment id, a `host` block
/// (OS / architecture / logical cores), the headline `geomean`, and an
/// all-zero `governor` block. Each line is `,`-terminated; the caller
/// appends its own fields and closes the object.
pub fn header(bench: &str, geomean: f64) -> String {
    header_with_governor(bench, geomean, GovernorSummary::default())
}

/// [`header`] with an explicit degraded-result summary, for experiments
/// that run under an overload governor.
pub fn header_with_governor(bench: &str, geomean: f64, gov: GovernorSummary) -> String {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"bench\": \"{bench}\",\n  \
         \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cores\": {cores}}},\n  \
         \"geomean\": {geomean:.4},\n  \
         \"governor\": {{\"degraded_frames\": {}, \"tiles_shed\": {}, \"stale_pairs\": {}}},\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        gov.degraded_frames,
        gov.tiles_shed,
        gov.stale_pairs,
    )
}

/// The shared header fields of a validated document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchHeader {
    /// Layout version the document was written under.
    pub schema_version: u64,
    /// Experiment id (`bench` field).
    pub bench: String,
    /// The experiment's headline geometric mean.
    pub geomean: f64,
    /// The run's degraded-result summary.
    pub governor: GovernorSummary,
}

/// Checks `text` against the shared schema: it must re-parse with the
/// crate's own JSON parser and carry every shared field at the current
/// [`SCHEMA_VERSION`].
///
/// # Errors
///
/// Returns the first [`SchemaError`] found, in field order.
pub fn validate(text: &str) -> Result<BenchHeader, SchemaError> {
    let doc = json::parse(text).map_err(|e| SchemaError::Parse(e.to_string()))?;
    let schema_version = doc
        .get("schema_version")
        .and_then(Value::as_u64)
        .ok_or(SchemaError::MissingField("schema_version"))?;
    if schema_version != SCHEMA_VERSION {
        return Err(SchemaError::VersionMismatch { found: schema_version });
    }
    let bench = doc
        .get("bench")
        .and_then(Value::as_str)
        .ok_or(SchemaError::MissingField("bench"))?
        .to_string();
    let host = doc.get("host").ok_or(SchemaError::MissingField("host"))?;
    host.get("os").and_then(Value::as_str).ok_or(SchemaError::MissingField("host.os"))?;
    host.get("arch").and_then(Value::as_str).ok_or(SchemaError::MissingField("host.arch"))?;
    host.get("cores").and_then(Value::as_u64).ok_or(SchemaError::MissingField("host.cores"))?;
    let geomean =
        doc.get("geomean").and_then(Value::as_f64).ok_or(SchemaError::MissingField("geomean"))?;
    let gov = doc.get("governor").ok_or(SchemaError::MissingField("governor"))?;
    let gov_field = |key: &'static str, err: &'static str| {
        gov.get(key).and_then(Value::as_u64).ok_or(SchemaError::MissingField(err))
    };
    let governor = GovernorSummary {
        degraded_frames: gov_field("degraded_frames", "governor.degraded_frames")?,
        tiles_shed: gov_field("tiles_shed", "governor.tiles_shed")?,
        stale_pairs: gov_field("stale_pairs", "governor.stale_pairs")?,
    };
    Ok(BenchHeader { schema_version, bench, geomean, governor })
}

/// Validates `text` against the shared schema, then writes it to
/// `path`. Nothing lands on disk if validation fails.
///
/// # Errors
///
/// Any [`validate`] error, or [`SchemaError::Io`] if the write fails.
pub fn write(path: &str, text: &str) -> Result<BenchHeader, SchemaError> {
    let header = validate(text)?;
    std::fs::write(path, text)
        .map_err(|e| SchemaError::Io { path: path.to_string(), message: e.to_string() })?;
    Ok(header)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> String {
        let mut d = header("unit_test", 1.5);
        d.push_str("  \"payload\": [1, 2, 3]\n}\n");
        d
    }

    #[test]
    fn header_round_trips_through_validate() {
        let h = validate(&doc()).expect("header must satisfy its own schema");
        assert_eq!(h.schema_version, SCHEMA_VERSION);
        assert_eq!(h.bench, "unit_test");
        assert!((h.geomean - 1.5).abs() < 1e-9);
        assert_eq!(h.governor, GovernorSummary::default());
    }

    #[test]
    fn governor_summary_round_trips() {
        let gov = GovernorSummary { degraded_frames: 7, tiles_shed: 42, stale_pairs: 5 };
        let mut d = header_with_governor("overload", 0.5, gov);
        d.push_str("  \"payload\": []\n}\n");
        let h = validate(&d).expect("governed header must validate");
        assert_eq!(h.governor, gov);
    }

    #[test]
    fn validate_rejects_missing_or_stale_fields() {
        assert_eq!(validate("{}").unwrap_err(), SchemaError::MissingField("schema_version"));
        let stale = doc().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            &format!("\"schema_version\": {}", SCHEMA_VERSION + 1),
        );
        assert_eq!(
            validate(&stale).unwrap_err(),
            SchemaError::VersionMismatch { found: SCHEMA_VERSION + 1 }
        );
        let no_geo = doc().replace("\"geomean\"", "\"geo_mean\"");
        assert_eq!(validate(&no_geo).unwrap_err(), SchemaError::MissingField("geomean"));
        let no_host = doc().replace("\"host\"", "\"machine\"");
        assert_eq!(validate(&no_host).unwrap_err(), SchemaError::MissingField("host"));
        let no_gov = doc().replace("\"governor\"", "\"regulator\"");
        assert_eq!(validate(&no_gov).unwrap_err(), SchemaError::MissingField("governor"));
        let no_shed = doc().replace("\"tiles_shed\"", "\"tiles_dropped\"");
        assert_eq!(
            validate(&no_shed).unwrap_err(),
            SchemaError::MissingField("governor.tiles_shed")
        );
        assert!(matches!(validate("not json").unwrap_err(), SchemaError::Parse(_)));
    }

    #[test]
    fn write_refuses_invalid_documents() {
        let err = write("/nonexistent-dir/should-not-land.json", "{}").unwrap_err();
        assert_eq!(err, SchemaError::MissingField("schema_version"));
        // A valid document against an unwritable path surfaces as Io.
        let err = write("/nonexistent-dir/should-not-land.json", &doc()).unwrap_err();
        assert!(matches!(err, SchemaError::Io { .. }), "{err}");
        assert!(err.to_string().contains("should-not-land"), "{err}");
    }

    #[test]
    fn errors_render_readable_messages() {
        assert!(SchemaError::MissingField("host.cores").to_string().contains("host.cores"));
        assert!(SchemaError::VersionMismatch { found: 9 }.to_string().contains('9'));
    }
}
