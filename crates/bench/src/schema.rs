//! Shared top-level schema for the `BENCH_*.json` artifacts.
//!
//! Every benchmark artifact the `repro` binary writes opens with the
//! same header block — `schema_version`, the experiment id, a `host`
//! triple, and the headline `geomean` — so downstream tooling can
//! dispatch on one stable shape. Callers render the header with
//! [`header`], append their experiment-specific fields, and land the
//! document through [`write`], which re-parses it with the crate's own
//! JSON parser and checks the shared fields before anything reaches
//! disk.

use rbcd_trace::json::{self, Value};

/// Version of the shared header layout. Bump when a shared field is
/// renamed, removed, or changes meaning.
pub const SCHEMA_VERSION: u64 = 1;

/// Renders the shared opening of a `BENCH_*.json` document: `{`,
/// `schema_version`, the experiment id, a `host` block
/// (OS / architecture / logical cores), and the headline `geomean`.
/// Each line is `,`-terminated; the caller appends its own fields and
/// closes the object.
pub fn header(bench: &str, geomean: f64) -> String {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"bench\": \"{bench}\",\n  \
         \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cores\": {cores}}},\n  \
         \"geomean\": {geomean:.4},\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
    )
}

/// The shared header fields of a validated document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchHeader {
    /// Layout version the document was written under.
    pub schema_version: u64,
    /// Experiment id (`bench` field).
    pub bench: String,
    /// The experiment's headline geometric mean.
    pub geomean: f64,
}

/// Checks `text` against the shared schema: it must re-parse with the
/// crate's own JSON parser and carry every shared field at the current
/// [`SCHEMA_VERSION`].
pub fn validate(text: &str) -> Result<BenchHeader, String> {
    let doc = json::parse(text).map_err(|e| format!("document does not re-parse: {e}"))?;
    let schema_version = doc
        .get("schema_version")
        .and_then(Value::as_u64)
        .ok_or_else(|| "missing schema_version".to_string())?;
    if schema_version != SCHEMA_VERSION {
        return Err(format!("schema_version {schema_version} != supported {SCHEMA_VERSION}"));
    }
    let bench = doc
        .get("bench")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing bench id".to_string())?
        .to_string();
    let host = doc.get("host").ok_or_else(|| "missing host block".to_string())?;
    for key in ["os", "arch"] {
        host.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("missing host.{key}"))?;
    }
    host.get("cores")
        .and_then(Value::as_u64)
        .ok_or_else(|| "missing host.cores".to_string())?;
    let geomean = doc
        .get("geomean")
        .and_then(Value::as_f64)
        .ok_or_else(|| "missing geomean".to_string())?;
    Ok(BenchHeader { schema_version, bench, geomean })
}

/// Validates `text` against the shared schema, then writes it to
/// `path`. Nothing lands on disk if validation fails.
pub fn write(path: &str, text: &str) -> Result<BenchHeader, String> {
    let header = validate(text).map_err(|e| format!("{path}: {e}"))?;
    std::fs::write(path, text).map_err(|e| format!("could not write {path}: {e}"))?;
    Ok(header)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> String {
        let mut d = header("unit_test", 1.5);
        d.push_str("  \"payload\": [1, 2, 3]\n}\n");
        d
    }

    #[test]
    fn header_round_trips_through_validate() {
        let h = validate(&doc()).expect("header must satisfy its own schema");
        assert_eq!(h.schema_version, SCHEMA_VERSION);
        assert_eq!(h.bench, "unit_test");
        assert!((h.geomean - 1.5).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_missing_or_stale_fields() {
        assert!(validate("{}").unwrap_err().contains("schema_version"));
        let stale = doc().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            &format!("\"schema_version\": {}", SCHEMA_VERSION + 1),
        );
        assert!(validate(&stale).unwrap_err().contains("schema_version"));
        let no_geo = doc().replace("\"geomean\"", "\"geo_mean\"");
        assert!(validate(&no_geo).unwrap_err().contains("geomean"));
        let no_host = doc().replace("\"host\"", "\"machine\"");
        assert!(validate(&no_host).unwrap_err().contains("host"));
        assert!(validate("not json").unwrap_err().contains("re-parse"));
    }

    #[test]
    fn write_refuses_invalid_documents() {
        let err = write("/nonexistent-dir/should-not-land.json", "{}").unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }
}
