//! The `repro serve` experiment: a storm of staggered sessions through
//! the multi-session batch scheduler.
//!
//! Eight (or more) sessions — every workload in the repertoire, with a
//! mix of policies (reuse on/off, storm fault plans, governed budgets)
//! and staggered arrival rounds — are admitted to one
//! [`Scheduler`] and served over a shared
//! pool at 1, 2, and 4 workers. The experiment enforces the service
//! contract and writes `BENCH_multi_session.json`:
//!
//! * **zero cross-session interference** — every session's
//!   [`artifact`](rbcd_core::sched::SessionReport::artifact) is
//!   byte-identical to its solo run at every worker count;
//! * **zero admission-accounting leaks** — the ledger satisfies
//!   `submitted == admitted + rejected` and `admitted == completed +
//!   shed`, with deliberate over-submission exercising typed rejection;
//! * **scheduler overhead** — batch wall-clock at 1 worker vs. a
//!   sequential solo loop, reported honestly against the ≤ 5 % target
//!   (host timing lands under `host_`-prefixed keys so the simulated
//!   portion of the artifact stays byte-comparable across runs).

use crate::cli::CliOptions;
use crate::{geomean, schema};
use rbcd_core::sched::{Scheduler, SessionReport, SessionSpec};
use rbcd_core::FaultPlan;
use rbcd_gpu::{FramePolicy, GovernorConfig};
use rbcd_trace::CounterScopes;
use std::time::Instant;

/// Seed for the storm fault plans, fixed so every run injects the same
/// faults.
const SEED: u64 = 0x5E11_2026;

/// Worker counts the isolation sweep renders at.
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];

/// Scheduler-overhead target (percent of sequential wall-clock).
const OVERHEAD_TARGET_PCT: f64 = 5.0;

/// FNV-1a over the artifact bytes — a compact fingerprint for the JSON
/// report (full byte-equality is asserted in-process).
fn digest(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x0100_0000_01b3))
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs `spec` alone on a single-session scheduler, returning its
/// report and the host wall-clock seconds it took.
fn solo_run(spec: &SessionSpec) -> Result<(SessionReport, f64), Box<dyn std::error::Error>> {
    let mut sched = Scheduler::new(1, 1);
    let id = sched.submit(spec.clone()).map_err(|e| format!("solo admission failed: {e}"))?;
    let t0 = Instant::now();
    let mut reports = sched.run().map_err(|e| format!("solo run failed: {e}"))?;
    let wall = t0.elapsed().as_secs_f64();
    Ok((reports.swap_remove(id.index()), wall))
}

/// Builds the session storm: every workload, staggered arrivals, and a
/// policy mix covering reuse, fault injection, and governed budgets.
fn build_specs(cli: &CliOptions) -> Result<Vec<SessionSpec>, Box<dyn std::error::Error>> {
    let opts = cli.run_options();
    let frames = if cli.smoke { 2 } else { 4 };
    let mut pool = rbcd_workloads::suite();
    pool.push(rbcd_workloads::shells());
    pool.extend(rbcd_workloads::temporal_suite());

    let mut specs = Vec::new();
    for (i, scene) in pool.iter().enumerate() {
        let clip: Vec<_> = (0..frames).map(|f| scene.frame_trace(f)).collect();
        let policy = FramePolicy::new()
            .with_reuse(i % 2 == 0)
            .with_hot_path(opts.gpu.hot_path);
        let mut spec = SessionSpec::new(format!("{}-{i}", scene.alias), clip)
            .with_gpu(opts.gpu.clone())
            .with_policy(policy)
            .with_start_round(i % 3);
        if i % 4 == 1 {
            spec = spec.with_faults(FaultPlan::preset("storm", SEED ^ i as u64));
        }
        if i % 4 == 2 {
            // Governed at half this session's own ungoverned per-frame
            // cost — measured in simulated cycles, so the budget (and
            // everything downstream) is deterministic.
            let (baseline, _) = solo_run(&spec)?;
            let avg = baseline.total_cycles() / frames as u64;
            let gov = GovernorConfig {
                frame_budget_cycles: (avg / 2).max(1),
                ..GovernorConfig::default()
            };
            spec.policy = spec.policy.with_governor(Some(gov));
        }
        specs.push(spec);
    }
    Ok(specs)
}

/// Runs the multi-session service experiment and writes
/// `BENCH_multi_session.json`.
///
/// # Errors
///
/// Fails (non-zero `repro` exit) on any cross-session interference,
/// any admission-accounting leak, or an artifact that does not satisfy
/// the shared schema. A missed overhead target is *reported*, not
/// fatal: wall-clock on a loaded host is not a correctness signal.
pub fn run_serve_experiment(cli: &CliOptions) -> Result<(), Box<dyn std::error::Error>> {
    let specs = build_specs(cli)?;
    let sessions = specs.len();
    eprintln!("serving {sessions} staggered sessions at {WORKER_SWEEP:?} workers...");

    // Solo reference pass: per-session artifacts plus the sequential
    // wall-clock the overhead bar is measured against.
    let mut solo_artifacts = Vec::with_capacity(sessions);
    let mut seq_wall = 0.0f64;
    for spec in &specs {
        let (report, wall) = solo_run(spec)?;
        solo_artifacts.push(report.artifact());
        seq_wall += wall;
    }

    // Batch sweep: all sessions on one scheduler per worker count, with
    // deliberate over-submission to exercise typed rejection.
    let mut interference_free = true;
    let mut leak_free = true;
    let mut batch_walls = Vec::with_capacity(WORKER_SWEEP.len());
    let mut first_reports: Option<Vec<SessionReport>> = None;
    let mut ledger = rbcd_core::sched::Ledger::default();
    for &workers in &WORKER_SWEEP {
        let mut sched = Scheduler::new(workers, sessions);
        for spec in &specs {
            let _ = sched
                .submit(spec.clone())
                .map_err(|e| format!("admission failed at {workers} workers: {e}"))?;
        }
        // Over-capacity and empty-clip submissions must bounce with
        // typed errors and land in the ledger as rejections.
        if sched.submit(specs[0].clone().with_start_round(0)).is_ok() {
            return Err("over-capacity submission was admitted".into());
        }
        if sched.submit(SessionSpec::new("empty", Vec::new())).is_ok() {
            return Err("empty-clip submission was admitted".into());
        }
        let t0 = Instant::now();
        let reports = sched.run().map_err(|e| format!("batch run failed: {e}"))?;
        batch_walls.push((workers, t0.elapsed().as_secs_f64()));
        for (j, report) in reports.iter().enumerate() {
            if report.artifact() != solo_artifacts[j] {
                eprintln!(
                    "INTERFERENCE: session {} diverged from solo at {workers} workers",
                    report.name
                );
                interference_free = false;
            }
        }
        let l = sched.ledger();
        if !l.leak_free() || l.admitted != sessions as u64 || l.rejected != 2 {
            eprintln!("LEAK: ledger {l:?} at {workers} workers");
            leak_free = false;
        }
        ledger = l;
        if first_reports.is_none() {
            first_reports = Some(reports);
        }
    }
    let reports = first_reports.ok_or("worker sweep produced no reports")?;

    // Deterministic service metrics: per-session latency in simulated
    // cycles, throughput in frames per megacycle, namespaced counters.
    let mut latencies: Vec<u64> = reports.iter().map(SessionReport::total_cycles).collect();
    latencies.sort_unstable();
    let throughputs: Vec<f64> = reports
        .iter()
        .map(|r| r.frames.len() as f64 / (r.total_cycles().max(1) as f64 / 1.0e6))
        .collect();
    let mut scopes = CounterScopes::new();
    for report in &reports {
        let scope = scopes.scope(&report.name);
        for frame in &report.frames {
            scope.accumulate(&frame.counter_set());
        }
        scope.accumulate(&report.rbcd.counter_set());
    }

    let batch1_wall = batch_walls
        .iter()
        .find(|(w, _)| *w == 1)
        .map(|(_, s)| *s)
        .ok_or("the sweep must include 1 worker")?;
    let overhead_pct = if seq_wall > 0.0 {
        (batch1_wall - seq_wall) / seq_wall * 100.0
    } else {
        0.0
    };
    let overhead_ok = overhead_pct <= OVERHEAD_TARGET_PCT;

    let gov = schema::GovernorSummary {
        degraded_frames: reports
            .iter()
            .flat_map(|r| r.governor.iter())
            .filter(|g| g.as_ref().is_some_and(|g| !g.shed_tiles.is_empty()))
            .count() as u64,
        tiles_shed: reports
            .iter()
            .flat_map(|r| r.governor.iter())
            .filter_map(|g| g.as_ref().map(|g| g.shed_tiles.len() as u64))
            .sum(),
        stale_pairs: 0,
    };

    let mut doc =
        schema::header_with_governor("multi_session", geomean(throughputs.iter().copied()), gov);
    doc.push_str(&format!("  \"sessions\": {sessions},\n"));
    doc.push_str(&format!("  \"worker_sweep\": {WORKER_SWEEP:?},\n"));
    doc.push_str(&format!("  \"interference_free\": {interference_free},\n"));
    doc.push_str(&format!("  \"leak_free\": {leak_free},\n"));
    doc.push_str(&format!(
        "  \"ledger\": {{\"submitted\": {}, \"admitted\": {}, \"rejected\": {}, \
         \"completed\": {}, \"shed\": {}}},\n",
        ledger.submitted, ledger.admitted, ledger.rejected, ledger.completed, ledger.shed
    ));
    doc.push_str(&format!(
        "  \"latency_cycles\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}},\n",
        percentile(&latencies, 50.0),
        percentile(&latencies, 90.0),
        percentile(&latencies, 99.0),
    ));
    doc.push_str("  \"per_session\": [\n");
    for (j, report) in reports.iter().enumerate() {
        let shed: u64 = report
            .governor
            .iter()
            .filter_map(|g| g.as_ref().map(|g| g.shed_tiles.len() as u64))
            .sum();
        doc.push_str(&format!(
            "    {{\"name\": \"{}\", \"frames\": {}, \"cycles\": {}, \"pairs\": {}, \
             \"escalated\": {}, \"tiles_shed\": {}, \"faults_injected\": {}, \
             \"start_round\": {}, \"completed_round\": {}, \"artifact_fnv\": \"{:016x}\"}}{}\n",
            report.name,
            report.frames.len(),
            report.total_cycles(),
            report.pairs().len(),
            report.escalated.len(),
            shed,
            report.faults.total(),
            report.start_round,
            report.completed_round.map_or(-1, |r| r as i64),
            digest(&report.artifact()),
            if j + 1 < reports.len() { "," } else { "" },
        ));
    }
    doc.push_str("  ],\n");
    doc.push_str(&format!("  \"counters\": {},\n", scopes.to_json()));
    // Host wall-clock lands last, one key per line, every key prefixed
    // `host_`: consumers byte-comparing artifacts across runs filter
    // these lines out (`grep -v '\"host_'`).
    doc.push_str(&format!("  \"host_seq_wall_ms\": {:.3},\n", seq_wall * 1e3));
    for (workers, wall) in &batch_walls {
        doc.push_str(&format!("  \"host_batch_wall_ms_w{workers}\": {:.3},\n", wall * 1e3));
    }
    doc.push_str(&format!("  \"host_overhead_pct\": {overhead_pct:.2},\n"));
    doc.push_str(&format!("  \"host_overhead_within_bound\": {overhead_ok}\n"));
    doc.push('}');
    doc.push('\n');

    schema::write("BENCH_multi_session.json", &doc)?;
    println!(
        "serve: {sessions} sessions, interference_free={interference_free}, \
         leak_free={leak_free}, p50 latency {} cycles, overhead {overhead_pct:.2}% \
         (target ≤ {OVERHEAD_TARGET_PCT}%{}) -> BENCH_multi_session.json",
        percentile(&latencies, 50.0),
        if overhead_ok { "" } else { " — MISSED, reported honestly" },
    );
    if !interference_free {
        return Err("cross-session interference detected (artifact mismatch vs solo)".into());
    }
    if !leak_free {
        return Err("admission-accounting leak detected".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_sorted_ranks() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 51);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        assert_eq!(digest("abc"), digest("abc"));
        assert_ne!(digest("abc"), digest("abd"));
    }
}
