//! Satellite check: the screen-space broad phase is exact — pruning
//! pair-infeasible draws and eliding single-occupant tiles never
//! changes what the pipeline reports, only what it spends.
//!
//! Random motion scripts (seeded, so failures replay) scatter small
//! collidable bodies across mostly-empty tiles — the pruning path —
//! while keeping one pair in contact — the must-not-prune path. The
//! matrix sweeps worker threads, fault-storm and overflow presets, a
//! governed budget (where the broad phase must go fully inert), and
//! the multi-session batch service. Pairs and `rbcd.*` counters must
//! match the broad-phase-off run bit for bit; only the image-side
//! planes (`raster.*` timing and fragment throughput, `coherence.*`,
//! `broadphase.*`) may move. A final arm replays the trace instants as
//! an oracle: a tile the sweep skipped must never contain a contact.

use rbcd_core::{ContactPoint, FaultPlan, ObjectPair, RbcdConfig, RbcdUnit};
use rbcd_geometry::shapes;
use rbcd_gpu::{
    render_batch, BatchJob, BroadPhase, Camera, DrawCommand, FramePolicy, FrameStats, FrameTrace,
    GovernorConfig, GpuConfig, ObjectId, PipelineMode, SimulatorBuilder,
};
use rbcd_math::{Mat4, Rng, Vec3, Viewport};
use std::collections::BTreeSet;

fn cfg() -> GpuConfig {
    GpuConfig { viewport: Viewport::new(192, 128), ..GpuConfig::default() }
}

/// A seeded random motion script shaped for the broad phase: a wide
/// scenery floor, small collidable bodies scattered so most occupied
/// tiles hold exactly one, and one deliberately overlapping pair so
/// the pair set the exactness legs compare is never empty.
fn random_script(seed: u64, frames: usize) -> Vec<FrameTrace> {
    let mut rng = Rng::seed_from_u64(seed);
    let camera = Camera::perspective(Vec3::new(0.0, 1.5, 9.0), Vec3::ZERO, 1.0, 0.1, 100.0);
    let mut base: Vec<DrawCommand> = vec![
        DrawCommand::scenery(shapes::ground_quad(16.0, 16.0)),
        // The permanent grazing pair: centres 0.5 apart, 0.5 cubes.
        DrawCommand::collidable(shapes::cube(0.5), ObjectId::new(1)),
        DrawCommand::collidable(shapes::cube(0.5), ObjectId::new(2)),
    ];
    let mut pos = vec![
        Vec3::new(0.0, -1.5, 0.0),
        Vec3::new(-0.25, 0.4, 0.0),
        Vec3::new(0.25, 0.4, 0.0),
    ];
    for i in 0..8u32 {
        base.push(DrawCommand::collidable(shapes::cube(0.4), ObjectId::new(10 + i as u16)));
        pos.push(Vec3::new(
            rng.gen_range(-4.5f32..4.5),
            rng.gen_range(-0.5f32..2.0),
            rng.gen_range(-2.0f32..2.0),
        ));
    }
    (0..frames)
        .map(|_| {
            // The floor and the grazing pair hold still (the pair must
            // stay in contact every frame — it is the oracle's probe);
            // the scattered bodies take random steps.
            for (i, p) in pos.iter_mut().enumerate() {
                if i > 2 && rng.gen_bool(0.5) {
                    *p = Vec3::new(
                        p.x + rng.gen_range(-0.2f32..0.2),
                        p.y + rng.gen_range(-0.2f32..0.2),
                        p.z + rng.gen_range(-0.2f32..0.2),
                    );
                }
            }
            FrameTrace::new(
                camera,
                base.iter()
                    .zip(&pos)
                    .map(|(d, &p)| d.clone().with_model(Mat4::translation(p)))
                    .collect(),
            )
        })
        .collect()
}

/// Renders a script end to end, returning per-frame stats, the
/// accumulated pair set, and the RBCD unit's counters. Faults corrupt
/// each frame's trace on the way in (same plan, same frame index →
/// same corruption with the broad phase on or off).
fn run_script(
    script: &[FrameTrace],
    broadphase: BroadPhase,
    threads: usize,
    reuse: bool,
    faults: Option<&FaultPlan>,
    governor: Option<GovernorConfig>,
) -> (Vec<FrameStats>, BTreeSet<ObjectPair>, rbcd_trace::CounterSet) {
    let mut sim = SimulatorBuilder::from_config(cfg())
        .policy(
            FramePolicy::new()
                .with_workers(threads)
                .with_reuse(reuse)
                .with_broadphase(broadphase)
                .with_governor(governor),
        )
        .build()
        .expect("test configuration is valid");
    let mut unit = RbcdUnit::new(RbcdConfig::default(), cfg().tile_size)
        .expect("default RBCD configuration is valid");
    let mut frames = Vec::with_capacity(script.len());
    let mut pairs = BTreeSet::new();
    for (f, trace) in script.iter().enumerate() {
        unit.new_frame();
        let stats = match faults {
            Some(plan) => {
                let (corrupted, _log) = plan.apply(trace, f as u64);
                sim.render_frame_parallel(&corrupted, PipelineMode::Rbcd, &mut unit, threads)
            }
            None => sim.render_frame_parallel(trace, PipelineMode::Rbcd, &mut unit, threads),
        };
        frames.push(stats);
        for c in unit.take_contacts() {
            pairs.insert(c.object_pair());
        }
    }
    (frames, pairs, unit.stats().counter_set())
}

/// Zeroes the image-side planes — the only fields the exactness
/// contract lets the broad phase move. Everything else (pairs, the
/// `rbcd.*` counters, geometry, governor accounting, and the
/// identical-by-construction raster counts like `tiles_processed`,
/// `primitives_fetched`, and `fragments_collisionable`) must match the
/// broad-phase-off run bit for bit.
fn no_image_side(mut s: FrameStats) -> FrameStats {
    s.raster.cycles = 0;
    s.raster.fp_busy_cycles = 0;
    s.raster.fp_idle_cycles = 0;
    s.raster.zeb_stall_cycles = 0;
    s.raster.fragments_rasterized = 0;
    s.raster.fragments_to_early_z = 0;
    s.raster.fragments_shaded = 0;
    s.raster.pixels_covered = 0;
    s.raster.rows_empty = 0;
    s.raster.rows_full = 0;
    s.coherence = Default::default();
    s.broadphase = Default::default();
    s
}

#[test]
fn broadphase_matches_off_on_random_motion_scripts() {
    let frames = 4;
    let faults: Vec<(&str, Option<FaultPlan>)> = vec![
        ("none", None),
        ("storm", Some(FaultPlan::preset("storm", 0xB9_5EED).unwrap())),
        ("overflow", Some(FaultPlan::preset("overflow", 0xB9_5EED).unwrap())),
    ];
    for seed in [11u64, 42] {
        let script = random_script(seed, frames);
        for (fname, plan) in &faults {
            for reuse in [false, true] {
                let (off, off_pairs, off_rbcd) =
                    run_script(&script, BroadPhase::Off, 1, reuse, plan.as_ref(), None);
                for threads in [1, 2, 4] {
                    let (on, on_pairs, on_rbcd) =
                        run_script(&script, BroadPhase::On, threads, reuse, plan.as_ref(), None);
                    let tag =
                        format!("seed {seed}, faults {fname}, reuse {reuse}, {threads} threads");
                    assert_eq!(off_pairs, on_pairs, "{tag}: pair set diverged");
                    assert_eq!(off_rbcd, on_rbcd, "{tag}: rbcd.* counters diverged");
                    assert_eq!(off.len(), on.len());
                    for (f, (a, b)) in off.iter().zip(&on).enumerate() {
                        assert_eq!(
                            no_image_side(a.clone()),
                            no_image_side(b.clone()),
                            "{tag}: frame {f} FrameStats diverged outside the image side"
                        );
                    }
                    let skipped: u64 = on.iter().map(|s| s.broadphase.tiles_skipped).sum();
                    assert!(
                        skipped > 0,
                        "{tag}: a scattered swarm must give the sweep something to skip"
                    );
                }
            }
        }
    }
}

#[test]
fn broadphase_is_inert_under_a_governed_budget() {
    let script = random_script(7, 4);
    // Probe the ungoverned timeline, then budget half of it per frame:
    // deep enough into overload that tiles are shed. Shedding owns the
    // tile cursor, so the broad phase must stand down completely —
    // with a governor engaged even the image-side planes must match.
    let (probe, _, _) = run_script(&script, BroadPhase::Off, 1, false, None, None);
    let per_frame: u64 =
        probe.iter().map(|s| s.raster.cycles).sum::<u64>() / probe.len() as u64 / 2;
    let gov = GovernorConfig { frame_budget_cycles: per_frame.max(1), ..GovernorConfig::default() };
    let (off, off_pairs, off_rbcd) =
        run_script(&script, BroadPhase::Off, 1, false, None, Some(gov));
    assert!(
        off.iter().map(|s| s.governor.tiles_shed).sum::<u64>() > 0,
        "a half budget must shed tiles, or this arm only covers the idle path"
    );
    for threads in [1, 2, 4] {
        let (on, on_pairs, on_rbcd) =
            run_script(&script, BroadPhase::On, threads, false, None, Some(gov));
        assert_eq!(off_pairs, on_pairs, "governed pairs at {threads} threads");
        assert_eq!(off_rbcd, on_rbcd, "governed rbcd.* counters at {threads} threads");
        for (f, (a, b)) in off.iter().zip(&on).enumerate() {
            assert_eq!(a, b, "governed frame {f} diverged at {threads} threads");
            assert_eq!(
                b.broadphase.tiles_skipped + b.broadphase.sweep_cycles,
                0,
                "governed frame {f}: the sweep must not even run"
            );
        }
    }
}

#[test]
fn batch_service_matches_solo_with_broadphase_on() {
    let frames = 3;
    let scripts = [random_script(5, frames), random_script(17, frames)];
    let policy = FramePolicy::new().with_reuse(true).with_broadphase(BroadPhase::On);
    let build = || {
        SimulatorBuilder::from_config(cfg()).policy(policy).build().expect("valid configuration")
    };
    let unit = || RbcdUnit::new(RbcdConfig::default(), cfg().tile_size).expect("valid RBCD config");

    let mut solo_stats = Vec::new();
    for script in &scripts {
        let (mut sim, mut u) = (build(), unit());
        let mut per_session = Vec::new();
        for trace in script {
            u.new_frame();
            per_session.push(sim.render_frame_parallel(trace, PipelineMode::Rbcd, &mut u, 1));
            let _ = u.take_contacts();
        }
        solo_stats.push(per_session);
    }
    let mut sims: Vec<_> = scripts.iter().map(|_| build()).collect();
    let mut units: Vec<_> = scripts.iter().map(|_| unit()).collect();
    for f in 0..frames {
        let mut jobs: Vec<BatchJob<'_, RbcdUnit>> = sims
            .iter_mut()
            .zip(units.iter_mut())
            .zip(&scripts)
            .map(|((sim, backend), script)| BatchJob {
                sim,
                backend,
                trace: &script[f],
                mode: PipelineMode::Rbcd,
            })
            .collect();
        let batched = render_batch(&mut jobs, 2).expect("batch jobs are well-formed");
        for u in units.iter_mut() {
            let _ = u.take_contacts();
            u.new_frame();
        }
        for (session, stats) in batched.iter().enumerate() {
            assert_eq!(
                *stats, solo_stats[session][f],
                "batched session {session} frame {f} diverged from its solo run"
            );
        }
    }
}

/// The oracle arm: re-render with the instrumentation layer on and
/// check, frame by frame, that no contact the ZEB reported falls in a
/// tile the broad phase skipped. A violation here means the sweep
/// pruned a tile that *did* hold a feasible pair — exactly the bug
/// class the conservative bounds are supposed to make impossible.
#[test]
fn pruned_tiles_never_contain_contacts() {
    let script = random_script(29, 6);
    let mut sim = SimulatorBuilder::from_config(cfg())
        .policy(FramePolicy::new().with_broadphase(BroadPhase::On).with_tracing(true))
        .build()
        .expect("test configuration is valid");
    let mut unit = RbcdUnit::new(RbcdConfig::default(), cfg().tile_size)
        .expect("default RBCD configuration is valid");
    let tile = cfg().tile_size;
    let mut seen_events = 0usize;
    let mut total_skipped = 0usize;
    for (f, trace) in script.iter().enumerate() {
        unit.new_frame();
        let _ = sim.render_frame_parallel(trace, PipelineMode::Rbcd, &mut unit, 1);
        let events = sim.trace().expect("tracing is on").events();
        let skipped: BTreeSet<(u64, u64)> = events[seen_events..]
            .iter()
            .filter(|e| e.name == "tile.bp_skipped")
            .map(|e| {
                let arg = |k: &str| {
                    e.args
                        .iter()
                        .find(|(n, _)| *n == k)
                        .map(|(_, v)| *v)
                        .expect("bp_skipped instants carry tile coordinates")
                };
                (arg("x"), arg("y"))
            })
            .collect();
        seen_events = events.len();
        total_skipped += skipped.len();
        let contacts: Vec<ContactPoint> = unit.take_contacts();
        for c in &contacts {
            let at = (u64::from(c.x / tile), u64::from(c.y / tile));
            assert!(
                !skipped.contains(&at),
                "frame {f}: contact {:?} at pixel ({}, {}) lies in skipped tile {at:?}",
                c.pair(),
                c.x,
                c.y
            );
        }
        assert!(!contacts.is_empty(), "frame {f}: the grazing pair must keep colliding");
    }
    assert!(total_skipped > 0, "the scattered swarm must give the sweep something to skip");
}
