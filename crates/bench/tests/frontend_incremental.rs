//! Satellite check: the incremental geometry front-end is bit-identical
//! to the full-rebuild front-end under adversarial conditions.
//!
//! Random motion scripts (seeded, so failures replay) hold some objects
//! still — the cache-hit path — and move others — the invalidation
//! path — while the matrix sweeps worker threads, fault-storm and
//! overflow presets, and an active governor budget. Per-frame
//! [`FrameStats`], collision pairs, and derived counters must match the
//! rebuild run bit for bit; only the accounting-only `geom.*` counters
//! may differ. A second arm pins the bounded cache: evicting down to a
//! tiny capacity must change reuse rates, never results.

use rbcd_core::{FaultPlan, ObjectPair, RbcdConfig, RbcdUnit};
use rbcd_geometry::shapes;
use rbcd_gpu::{
    Camera, DrawCommand, FramePolicy, FrameStats, FrameTrace, FrontendMode, GovernorConfig,
    GpuConfig, ObjectId, PipelineMode, SimulatorBuilder,
};
use rbcd_math::{Mat4, Rng, Vec3, Viewport};
use std::collections::BTreeSet;

fn cfg() -> GpuConfig {
    GpuConfig { viewport: Viewport::new(192, 128), ..GpuConfig::default() }
}

/// A seeded random motion script: a fixed cast of draws (meshes shared
/// across frames, as a real engine would submit them) whose positions
/// either hold — exercising the cache-hit path — or take a random step
/// — exercising invalidation. Returns one `FrameTrace` per frame.
fn random_script(seed: u64, frames: usize) -> Vec<FrameTrace> {
    let mut rng = Rng::seed_from_u64(seed);
    let camera = Camera::perspective(Vec3::new(0.0, 1.0, 7.0), Vec3::ZERO, 1.0, 0.1, 100.0);
    let base: Vec<DrawCommand> = vec![
        DrawCommand::scenery(shapes::ground_quad(16.0, 16.0)),
        DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1)),
        DrawCommand::collidable(shapes::cube(0.8), ObjectId::new(2)),
        DrawCommand::collidable(shapes::icosphere(0.8, 2), ObjectId::new(3)),
        DrawCommand::collidable(shapes::uv_sphere(0.7, 10, 8), ObjectId::new(4)),
        DrawCommand::scenery(shapes::uv_sphere(1.2, 10, 8)),
    ];
    let mut pos: Vec<Vec3> = (0..base.len())
        .map(|_| {
            Vec3::new(
                rng.gen_range(-2.0f32..2.0),
                rng.gen_range(-1.0f32..1.0),
                rng.gen_range(-1.0f32..1.0),
            )
        })
        .collect();
    pos[0] = Vec3::new(0.0, -1.5, 0.0); // the ground stays the ground
    (0..frames)
        .map(|_| {
            for (i, p) in pos.iter_mut().enumerate() {
                if i > 0 && rng.gen_bool(0.5) {
                    *p = Vec3::new(
                        p.x + rng.gen_range(-0.3f32..0.3),
                        p.y + rng.gen_range(-0.3f32..0.3),
                        p.z + rng.gen_range(-0.3f32..0.3),
                    );
                }
            }
            FrameTrace::new(
                camera,
                base.iter()
                    .zip(&pos)
                    .map(|(d, &p)| d.clone().with_model(Mat4::translation(p)))
                    .collect(),
            )
        })
        .collect()
}

/// Renders a script end to end, returning per-frame stats and the
/// accumulated pair set. Faults corrupt each frame's trace on the way
/// in (same plan, same frame index → same corruption for both
/// front-ends).
fn run_script(
    script: &[FrameTrace],
    frontend: FrontendMode,
    threads: usize,
    reuse: bool,
    faults: Option<&FaultPlan>,
    governor: Option<GovernorConfig>,
) -> (Vec<FrameStats>, BTreeSet<ObjectPair>) {
    let mut sim = SimulatorBuilder::from_config(cfg())
        .policy(
            FramePolicy::new()
                .with_workers(threads)
                .with_reuse(reuse)
                .with_frontend(frontend)
                .with_governor(governor),
        )
        .build()
        .expect("test configuration is valid");
    let mut unit = RbcdUnit::new(RbcdConfig::default(), cfg().tile_size)
        .expect("default RBCD configuration is valid");
    let mut frames = Vec::with_capacity(script.len());
    let mut pairs = BTreeSet::new();
    for (f, trace) in script.iter().enumerate() {
        unit.new_frame();
        let stats = match faults {
            Some(plan) => {
                let (corrupted, _log) = plan.apply(trace, f as u64);
                sim.render_frame_parallel(&corrupted, PipelineMode::Rbcd, &mut unit, threads)
            }
            None => sim.render_frame_parallel(trace, PipelineMode::Rbcd, &mut unit, threads),
        };
        frames.push(stats);
        for c in unit.take_contacts() {
            pairs.insert(c.object_pair());
        }
    }
    (frames, pairs)
}

/// Zeroes the accounting-only `geom.*` counters — the only fields the
/// exactness contract lets the incremental front-end move.
fn no_geom_accounting(mut s: FrameStats) -> FrameStats {
    s.geometry.reuse_draws = 0;
    s.geometry.shaded_draws = 0;
    s.geometry.bin_splices = 0;
    s
}

#[test]
fn incremental_matches_rebuild_on_random_motion_scripts() {
    let frames = 4;
    let faults: Vec<(&str, Option<FaultPlan>)> = vec![
        ("none", None),
        ("storm", Some(FaultPlan::preset("storm", 0xF0_5EED).unwrap())),
        ("overflow", Some(FaultPlan::preset("overflow", 0xF0_5EED).unwrap())),
    ];
    for seed in [11u64, 42] {
        let script = random_script(seed, frames);
        for (fname, plan) in &faults {
            for reuse in [false, true] {
                let (base, base_pairs) =
                    run_script(&script, FrontendMode::Rebuild, 1, reuse, plan.as_ref(), None);
                for threads in [1, 2, 4] {
                    let (inc, inc_pairs) = run_script(
                        &script,
                        FrontendMode::Incremental,
                        threads,
                        reuse,
                        plan.as_ref(),
                        None,
                    );
                    let tag =
                        format!("seed {seed}, faults {fname}, reuse {reuse}, {threads} threads");
                    assert_eq!(base_pairs, inc_pairs, "{tag}: pair set diverged");
                    assert_eq!(base.len(), inc.len());
                    for (f, (a, b)) in base.iter().zip(&inc).enumerate() {
                        assert_eq!(
                            *a,
                            no_geom_accounting(b.clone()),
                            "{tag}: frame {f} FrameStats diverged"
                        );
                    }
                    let reused: u64 = inc.iter().map(|s| s.geometry.reuse_draws).sum();
                    assert!(
                        reused > 0,
                        "{tag}: motion scripts hold objects, so some draw must hit the cache"
                    );
                }
            }
        }
    }
}

#[test]
fn incremental_matches_rebuild_under_a_governed_budget() {
    let script = random_script(7, 4);
    // Probe the ungoverned timeline, then budget half of it per frame:
    // deep enough into overload that tiles are shed and the policy
    // ladder (forced reuse included) actually engages.
    let (probe, _) = run_script(&script, FrontendMode::Rebuild, 1, false, None, None);
    let per_frame: u64 =
        probe.iter().map(|s| s.raster.cycles).sum::<u64>() / probe.len() as u64 / 2;
    let gov = GovernorConfig { frame_budget_cycles: per_frame.max(1), ..GovernorConfig::default() };
    let (base, base_pairs) = run_script(&script, FrontendMode::Rebuild, 1, false, None, Some(gov));
    assert!(
        base.iter().map(|s| s.governor.tiles_shed).sum::<u64>() > 0,
        "a half budget must shed tiles, or this arm only covers the idle path"
    );
    for threads in [1, 2, 4] {
        let (inc, inc_pairs) =
            run_script(&script, FrontendMode::Incremental, threads, false, None, Some(gov));
        assert_eq!(base_pairs, inc_pairs, "governed pairs at {threads} threads");
        for (f, (a, b)) in base.iter().zip(&inc).enumerate() {
            assert_eq!(
                *a,
                no_geom_accounting(b.clone()),
                "governed frame {f} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn bounded_cache_evicts_without_changing_results() {
    let script = random_script(23, 4);
    let (base, base_pairs) = run_script(&script, FrontendMode::Rebuild, 1, false, None, None);
    let run_capped = |capacity: usize| {
        let mut sim = SimulatorBuilder::from_config(cfg())
            .policy(FramePolicy::new().with_frontend(FrontendMode::Incremental))
            .build()
            .unwrap();
        sim.set_geom_cache_capacity(capacity);
        let mut unit = RbcdUnit::new(RbcdConfig::default(), cfg().tile_size).unwrap();
        let mut frames = Vec::new();
        let mut pairs = BTreeSet::new();
        for trace in &script {
            unit.new_frame();
            frames.push(sim.render_frame_parallel(trace, PipelineMode::Rbcd, &mut unit, 1));
            for c in unit.take_contacts() {
                pairs.insert(c.object_pair());
            }
            assert!(sim.geom_cache_len() <= capacity, "cache exceeded its bound");
        }
        (frames, pairs)
    };
    let (roomy, roomy_pairs) = run_capped(64);
    let (tiny, tiny_pairs) = run_capped(2);
    for (f, (a, b)) in base.iter().zip(&roomy).enumerate() {
        assert_eq!(*a, no_geom_accounting(b.clone()), "roomy cache diverged at frame {f}");
    }
    for (f, (a, b)) in base.iter().zip(&tiny).enumerate() {
        assert_eq!(*a, no_geom_accounting(b.clone()), "tiny cache diverged at frame {f}");
    }
    assert_eq!(base_pairs, roomy_pairs);
    assert_eq!(base_pairs, tiny_pairs);
    // Two entries cannot hold a six-draw cast: eviction must cost
    // reuse — that it costs nothing else is the point of this test.
    let reused = |frames: &[FrameStats]| frames.iter().map(|s| s.geometry.reuse_draws).sum::<u64>();
    assert!(reused(&roomy) > reused(&tiny), "eviction must reduce the reuse rate");
    assert!(
        tiny.iter().map(|s| s.geometry.shaded_draws).sum::<u64>()
            > roomy.iter().map(|s| s.geometry.shaded_draws).sum::<u64>(),
        "evicted draws must be re-shaded"
    );
}
