//! Satellite check: the unified counter registry is stable.
//!
//! Pins (a) the exact key set `GpuRun::counters` exposes — renaming or
//! dropping a key is a breaking change for downstream dashboards and
//! must show up in review — and (b) the exact values on a fixed scene,
//! which guards the whole simulated pipeline against silent behavioural
//! drift the same way the determinism suite guards thread-invariance.
//! Also round-trips the Chrome trace-event export through the crate's
//! own JSON parser and checks the schema fields the viewers rely on.

use rbcd_bench::runner::{run_gpu, run_gpu_traced};
use rbcd_bench::RunOptions;
use rbcd_core::RbcdConfig;
use rbcd_gpu::GpuConfig;
use rbcd_math::Viewport;
use rbcd_trace::json::{self, Value};

fn opts() -> RunOptions {
    RunOptions {
        frames: Some(2),
        gpu: GpuConfig { viewport: Viewport::new(192, 128), ..GpuConfig::default() },
        ..RunOptions::default()
    }
}

/// Every key the registry must expose, in `CounterSet`'s sorted order.
const GOLDEN_KEYS: &[&str] = &[
    "broadphase.objects_infeasible",
    "broadphase.objects_swept",
    "broadphase.sweep_cycles",
    "broadphase.tiles_skipped",
    "coherence.draw_hashes",
    "coherence.signature_cycles",
    "coherence.tiles_checked",
    "coherence.tiles_reused",
    "frames",
    "geom.bin_splices",
    "geom.reuse_draws",
    "geom.shaded_draws",
    "geometry.bin_entries",
    "geometry.cycles",
    "geometry.draws_quarantined",
    "geometry.prim_records",
    "geometry.tile_cache_store_accesses",
    "geometry.tile_cache_store_misses",
    "geometry.triangles_after_clip",
    "geometry.triangles_assembled",
    "geometry.triangles_clipped_out",
    "geometry.triangles_culled",
    "geometry.triangles_degenerate",
    "geometry.triangles_tagged",
    "geometry.vertex_cache_accesses",
    "geometry.vertex_cache_misses",
    "geometry.vertices_shaded",
    "geometry.vp_busy_cycles",
    "governor.breaker_trips",
    "governor.budget_cycles",
    "governor.stale_pairs",
    "governor.tiles_coarsened",
    "governor.tiles_shed",
    "raster.cycles",
    "raster.fp_busy_cycles",
    "raster.fp_idle_cycles",
    "raster.fragments_collisionable",
    "raster.fragments_rasterized",
    "raster.fragments_shaded",
    "raster.fragments_to_early_z",
    "raster.pixels_covered",
    "raster.primitives_fetched",
    "raster.rows_empty",
    "raster.rows_full",
    "raster.tile_cache_load_accesses",
    "raster.tile_cache_load_misses",
    "raster.tiles_processed",
    "raster.zeb_stall_cycles",
    "rbcd.elements_scanned",
    "rbcd.eq_comparisons",
    "rbcd.ff_drops",
    "rbcd.insert_cycles",
    "rbcd.insertions",
    "rbcd.lists_scanned",
    "rbcd.lt_comparisons",
    "rbcd.mux_shifts",
    "rbcd.overflows",
    "rbcd.pairs_emitted",
    "rbcd.priority_encodes",
    "rbcd.register_ops",
    "rbcd.rescan_passes",
    "rbcd.rung_cpu",
    "rbcd.rung_rescan",
    "rbcd.rung_spare",
    "rbcd.scan_cycles",
    "rbcd.spare_allocations",
    "rbcd.tiles",
    "rbcd.unmatched_backs",
    "rbcd.zeb_list_reads",
    "rbcd.zeb_list_writes",
    "tile.scan_skipped",
];

#[test]
fn counter_registry_keys_are_pinned() {
    let run = run_gpu(&rbcd_workloads::cap(), 2, &opts(), Some(RbcdConfig::default()));
    let keys: Vec<&'static str> = run.counters.keys().collect();
    assert_eq!(keys, GOLDEN_KEYS, "CounterSet key set or order changed");

    // Baseline runs expose the GPU half only.
    let base = run_gpu(&rbcd_workloads::cap(), 2, &opts(), None);
    let base_keys: Vec<&'static str> = base.counters.keys().collect();
    let expected: Vec<&&str> = GOLDEN_KEYS
        .iter()
        .filter(|k| !k.starts_with("rbcd.") && !k.starts_with("tile."))
        .collect();
    assert_eq!(base_keys.len(), expected.len());
    assert!(base_keys.iter().zip(expected).all(|(a, b)| a == b));
}

#[test]
fn golden_counter_values_on_cap() {
    // GOLDEN values captured from the seed implementation on `cap`,
    // 192x128 viewport, 2 frames, default RBCD config, 1 thread. A
    // diff here means the simulated pipeline changed behaviour.
    let run = run_gpu(&rbcd_workloads::cap(), 2, &opts(), Some(RbcdConfig::default()));
    let expected: &[(&str, u64)] = GOLDEN_VALUES;
    let got: Vec<(&'static str, u64)> = run.counters.iter().collect();
    let got_ref: Vec<(&str, u64)> = got.iter().map(|&(k, v)| (k, v)).collect();
    assert_eq!(got_ref, expected, "counter values drifted on the golden scene");
}

const GOLDEN_VALUES: &[(&str, u64)] = &[
    // Screen-space broad phase is off by default, so its plane is all
    // zeros here (same mask-only convention as `geom.*`/`governor.*`:
    // accounting only, never read by the energy model). The broadphase
    // exactness suite covers the On counters.
    ("broadphase.objects_infeasible", 0),
    ("broadphase.objects_swept", 0),
    ("broadphase.sweep_cycles", 0),
    ("broadphase.tiles_skipped", 0),
    // Reuse is off by default, so the coherence plane is all zeros here;
    // the determinism suite covers the reuse-on counters.
    ("coherence.draw_hashes", 0),
    ("coherence.signature_cycles", 0),
    ("coherence.tiles_checked", 0),
    ("coherence.tiles_reused", 0),
    ("frames", 2),
    // Incremental-front-end accounting: zero under the library-default
    // full-rebuild front-end (same mask-only convention as
    // `tile.scan_skipped` — never read by the energy model, so the
    // incremental front-end changes `geom.*` without perturbing any
    // energy-bearing counter).
    ("geom.bin_splices", 0),
    ("geom.reuse_draws", 0),
    ("geom.shaded_draws", 0),
    ("geometry.bin_entries", 22798),
    ("geometry.cycles", 592046),
    ("geometry.draws_quarantined", 0),
    ("geometry.prim_records", 20666),
    ("geometry.tile_cache_store_accesses", 43464),
    ("geometry.tile_cache_store_misses", 14240),
    ("geometry.triangles_after_clip", 89830),
    ("geometry.triangles_assembled", 89828),
    ("geometry.triangles_clipped_out", 0),
    ("geometry.triangles_culled", 12408),
    ("geometry.triangles_degenerate", 56756),
    ("geometry.triangles_tagged", 29683),
    ("geometry.vertex_cache_accesses", 45272),
    ("geometry.vertex_cache_misses", 11358),
    ("geometry.vertices_shaded", 45272),
    ("geometry.vp_busy_cycles", 338128),
    // Governor accounting counters: all zero because the governor is
    // off by default (no frame budget, no shedding). Like the mask-only
    // raster diagnostics above, these follow the PR 5 convention —
    // host-side accounting only, never read by the energy model — so a
    // governed run changes `governor.*` without perturbing any
    // energy-bearing counter.
    ("governor.breaker_trips", 0),
    ("governor.budget_cycles", 0),
    ("governor.stale_pairs", 0),
    ("governor.tiles_coarsened", 0),
    ("governor.tiles_shed", 0),
    ("raster.cycles", 244723),
    ("raster.fp_busy_cycles", 788598),
    ("raster.fp_idle_cycles", 17608),
    ("raster.fragments_collisionable", 13974),
    ("raster.fragments_rasterized", 108328),
    ("raster.fragments_shaded", 64803),
    ("raster.fragments_to_early_z", 104320),
    ("raster.pixels_covered", 49152),
    ("raster.primitives_fetched", 22798),
    // Mask-hot-path diagnostics: host-side only, excluded from energy;
    // the A/B smoke in scripts/check.sh proves Reference reports 0 here
    // while every other counter stays identical.
    ("raster.rows_empty", 26085),
    ("raster.rows_full", 16272),
    ("raster.tile_cache_load_accesses", 45596),
    ("raster.tile_cache_load_misses", 15648),
    ("raster.tiles_processed", 192),
    ("raster.zeb_stall_cycles", 0),
    ("rbcd.elements_scanned", 13972),
    ("rbcd.eq_comparisons", 8805),
    ("rbcd.ff_drops", 0),
    ("rbcd.insert_cycles", 13974),
    ("rbcd.insertions", 13974),
    ("rbcd.lists_scanned", 5550),
    ("rbcd.lt_comparisons", 111792),
    ("rbcd.mux_shifts", 13974),
    ("rbcd.overflows", 2),
    ("rbcd.pairs_emitted", 49),
    ("rbcd.priority_encodes", 6986),
    ("rbcd.register_ops", 13972),
    ("rbcd.rescan_passes", 0),
    ("rbcd.rung_cpu", 0),
    ("rbcd.rung_rescan", 0),
    ("rbcd.rung_spare", 0),
    ("rbcd.scan_cycles", 19522),
    ("rbcd.spare_allocations", 0),
    ("rbcd.tiles", 192),
    ("rbcd.unmatched_backs", 0),
    ("rbcd.zeb_list_reads", 19524),
    ("rbcd.zeb_list_writes", 13974),
    ("tile.scan_skipped", 4586),
];

#[test]
fn trace_json_schema_round_trips() {
    let (_, trace) = run_gpu_traced(&rbcd_workloads::cap(), 2, &opts(), RbcdConfig::default());
    let text = trace.to_chrome_json();
    let doc = json::parse(&text).expect("emitted trace JSON must re-parse");

    // JSON-object format: displayTimeUnit, otherData, traceEvents.
    assert!(doc.get("displayTimeUnit").and_then(Value::as_str).is_some());
    let frames = doc
        .get("otherData")
        .and_then(|o| o.get("frames"))
        .and_then(Value::as_u64)
        .expect("otherData.frames");
    assert_eq!(frames, trace.frames());
    let events = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
    assert_eq!(events.len(), trace.events().len());
    assert!(!events.is_empty());

    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph");
        assert!(matches!(ph, "X" | "i" | "C"), "unknown phase {ph}");
        assert!(e.get("name").and_then(Value::as_str).is_some());
        assert!(e.get("cat").and_then(Value::as_str).is_some());
        assert!(e.get("ts").and_then(Value::as_u64).is_some());
        assert!(e.get("pid").and_then(Value::as_u64).is_some());
        assert!(e.get("tid").and_then(Value::as_u64).is_some());
        match ph {
            "X" => assert!(e.get("dur").and_then(Value::as_u64).is_some(), "span needs dur"),
            "i" => assert_eq!(e.get("s").and_then(Value::as_str), Some("t"), "instant scope"),
            _ => {}
        }
    }

    // The frame lanes must cover every rendered frame.
    let frame_spans = events
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("frame"))
        .count();
    assert_eq!(frame_spans as u64, trace.frames());
}
