//! Satellite check: the parallel tile pipeline is bit-identical to the
//! sequential one across the whole workload suite — collision pairs,
//! frame statistics, and derived energy/time all match exactly at any
//! thread count.

use rbcd_bench::runner::{run_frames_parallel, run_gpu};
use rbcd_bench::RunOptions;
use rbcd_core::RbcdConfig;
use rbcd_gpu::GpuConfig;
use rbcd_math::Viewport;

fn opts(threads: usize) -> RunOptions {
    RunOptions {
        frames: Some(2),
        gpu: GpuConfig { viewport: Viewport::new(192, 128), ..GpuConfig::default() },
        threads,
        ..RunOptions::default()
    }
}

#[test]
fn suite_runs_are_identical_at_any_thread_count() {
    for scene in rbcd_workloads::suite() {
        let seq = run_gpu(&scene, 2, &opts(1), Some(RbcdConfig::default()));
        for threads in [2, 8] {
            let par = run_gpu(&scene, 2, &opts(threads), Some(RbcdConfig::default()));
            assert_eq!(seq.pairs, par.pairs, "{} pairs at {threads} threads", scene.alias);
            assert_eq!(seq.stats, par.stats, "{} FrameStats at {threads} threads", scene.alias);
            assert_eq!(seq.rbcd, par.rbcd, "{} RbcdStats at {threads} threads", scene.alias);
            // Derived scalars come from the stats, but assert the exact
            // f64 bits anyway: this is the user-visible contract.
            assert_eq!(seq.seconds, par.seconds, "{} seconds at {threads} threads", scene.alias);
            assert_eq!(seq.energy_j, par.energy_j, "{} energy at {threads} threads", scene.alias);
        }
    }
}

#[test]
fn baseline_runs_are_identical_at_any_thread_count() {
    for scene in rbcd_workloads::suite() {
        let seq = run_gpu(&scene, 2, &opts(1), None);
        let par = run_gpu(&scene, 2, &opts(8), None);
        assert_eq!(seq.stats, par.stats, "{} baseline FrameStats", scene.alias);
        assert_eq!(seq.seconds, par.seconds);
        assert_eq!(seq.energy_j, par.energy_j);
    }
}

#[test]
fn frame_parallel_runs_are_identical_at_any_thread_count() {
    for scene in rbcd_workloads::suite() {
        let o = opts(1);
        let seq = run_frames_parallel(&scene, 3, &o, RbcdConfig::default(), 1);
        for threads in [2, 8] {
            let par = run_frames_parallel(&scene, 3, &o, RbcdConfig::default(), threads);
            assert_eq!(seq.pairs, par.pairs, "{} pairs at {threads} threads", scene.alias);
            assert_eq!(seq.stats, par.stats, "{} FrameStats at {threads} threads", scene.alias);
            assert_eq!(seq.rbcd, par.rbcd, "{} RbcdStats at {threads} threads", scene.alias);
            assert_eq!(seq.seconds, par.seconds);
            assert_eq!(seq.energy_j, par.energy_j);
        }
    }
}
