//! Satellite check: the parallel tile pipeline is bit-identical to the
//! sequential one across the whole workload suite — collision pairs,
//! frame statistics, and derived energy/time all match exactly at any
//! thread count — including under fault injection with the degradation
//! ladder firing.

use rbcd_bench::faults::run_fault_tolerance;
use rbcd_bench::metrics::GpuRun;
use rbcd_bench::runner::{run_frames_parallel, run_gpu, run_gpu_traced};
use rbcd_bench::RunOptions;
use rbcd_core::{FaultPlan, RbcdConfig};
use rbcd_gpu::GpuConfig;
use rbcd_math::Viewport;

fn opts(threads: usize) -> RunOptions {
    RunOptions {
        frames: Some(2),
        gpu: GpuConfig { viewport: Viewport::new(192, 128), ..GpuConfig::default() },
        threads,
        ..RunOptions::default()
    }
}

#[test]
fn suite_runs_are_identical_at_any_thread_count() {
    for scene in rbcd_workloads::suite() {
        let seq = run_gpu(&scene, 2, &opts(1), Some(RbcdConfig::default()));
        for threads in [2, 8] {
            let par = run_gpu(&scene, 2, &opts(threads), Some(RbcdConfig::default()));
            assert_eq!(seq.pairs, par.pairs, "{} pairs at {threads} threads", scene.alias);
            assert_eq!(seq.stats, par.stats, "{} FrameStats at {threads} threads", scene.alias);
            assert_eq!(seq.rbcd, par.rbcd, "{} RbcdStats at {threads} threads", scene.alias);
            // Derived scalars come from the stats, but assert the exact
            // f64 bits anyway: this is the user-visible contract.
            assert_eq!(seq.seconds, par.seconds, "{} seconds at {threads} threads", scene.alias);
            assert_eq!(seq.energy_j, par.energy_j, "{} energy at {threads} threads", scene.alias);
        }
    }
}

#[test]
fn baseline_runs_are_identical_at_any_thread_count() {
    for scene in rbcd_workloads::suite() {
        let seq = run_gpu(&scene, 2, &opts(1), None);
        let par = run_gpu(&scene, 2, &opts(8), None);
        assert_eq!(seq.stats, par.stats, "{} baseline FrameStats", scene.alias);
        assert_eq!(seq.seconds, par.seconds);
        assert_eq!(seq.energy_j, par.energy_j);
    }
}

#[test]
fn fault_injected_runs_are_identical_at_any_thread_count() {
    // Fault injection happens on the main thread before rendering, and
    // the degradation ladder resolves per tile in deterministic order,
    // so a corrupted trace with every rung firing must still produce
    // identical overflow counts, rung histograms, and pair recovery at
    // 1, 2, and 4 worker threads.
    let plan = FaultPlan::preset("all", 0xDE7E_2417).unwrap();
    let scenes = [rbcd_workloads::shells(), rbcd_workloads::temple()];
    let m_values = [1, 4];
    let runs: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&t| run_fault_tolerance(&scenes, "all", plan, &m_values, &opts(t)))
        .collect();
    let base = &runs[0];
    assert!(base.scenes.iter().any(|s| s.cells.iter().any(|c| c.rung_rescan > 0)));
    for (run, threads) in runs[1..].iter().zip([2usize, 4]) {
        for (sa, sb) in base.scenes.iter().zip(&run.scenes) {
            for (ca, cb) in sa.cells.iter().zip(&sb.cells) {
                let tag = format!("{} M={} at {threads} threads", sa.alias, ca.m);
                assert_eq!(ca.faults, cb.faults, "{tag}: injected faults");
                assert_eq!(ca.quarantined, cb.quarantined, "{tag}: quarantined");
                assert_eq!(ca.overflows, cb.overflows, "{tag}: overflow count");
                assert_eq!(ca.ff_drops, cb.ff_drops, "{tag}: ff drops");
                assert_eq!(
                    (ca.rung_clean, ca.rung_spare, ca.rung_rescan, ca.rung_cpu, ca.rescan_passes),
                    (cb.rung_clean, cb.rung_spare, cb.rung_rescan, cb.rung_cpu, cb.rescan_passes),
                    "{tag}: rung histogram"
                );
                assert_eq!(ca.escalated_objects, cb.escalated_objects, "{tag}: escalations");
                assert_eq!(
                    (ca.oracle_pairs, ca.gpu_recovered, ca.cpu_recovered, ca.missing_pairs),
                    (cb.oracle_pairs, cb.gpu_recovered, cb.cpu_recovered, cb.missing_pairs),
                    "{tag}: pair accounting"
                );
            }
        }
    }
}

#[test]
fn tracing_is_invisible_and_thread_invariant() {
    // The instrumentation layer is observation-only: every simulated
    // number a traced run reports is bit-identical to the untraced run,
    // and the trace itself (events, heatmaps, frame count) is
    // bit-identical at any thread count because all emission happens on
    // the deterministic main-thread timeline.
    let scene = rbcd_workloads::cap();
    let plain = run_gpu(&scene, 2, &opts(1), Some(RbcdConfig::default()));
    let (traced_seq, trace_seq) = run_gpu_traced(&scene, 2, &opts(1), RbcdConfig::default());

    assert_eq!(plain.pairs, traced_seq.pairs, "tracing changed the pair set");
    assert_eq!(plain.stats, traced_seq.stats, "tracing changed FrameStats");
    assert_eq!(plain.rbcd, traced_seq.rbcd, "tracing changed RbcdStats");
    assert_eq!(plain.seconds, traced_seq.seconds);
    assert_eq!(plain.energy_j, traced_seq.energy_j);
    assert_eq!(plain.counters, traced_seq.counters, "tracing changed the counter registry");

    for threads in [2, 4] {
        let (traced_par, trace_par) = run_gpu_traced(&scene, 2, &opts(threads), RbcdConfig::default());
        assert_eq!(plain.stats, traced_par.stats, "traced FrameStats at {threads} threads");
        assert_eq!(
            trace_seq.events(),
            trace_par.events(),
            "trace events differ at {threads} threads"
        );
        assert_eq!(trace_seq.heat(), trace_par.heat(), "heatmaps differ at {threads} threads");
        assert_eq!(trace_seq.frames(), trace_par.frames());
    }

    // The per-tile heatmap books must agree with the unit's own.
    let rbcd = traced_seq.rbcd.expect("traced run attaches a unit");
    assert_eq!(trace_seq.heat().total("overflows"), rbcd.overflows);
    assert_eq!(trace_seq.heat().total("pairs"), rbcd.pairs_emitted);
}

/// The exactness contract of the temporal-coherence layer: a reuse-on
/// run may differ from reuse-off only in the simulated timeline
/// (`raster.cycles`, `raster.fp_idle_cycles`, `raster.zeb_stall_cycles`)
/// and its own `coherence.*` bookkeeping. Every event counter — work
/// actually performed, pairs found, RBCD-unit books — must match bit
/// for bit.
fn assert_events_match(off: &GpuRun, on: &GpuRun, tag: &str) {
    const TIMING_KEYS: &[&str] =
        &["raster.cycles", "raster.fp_idle_cycles", "raster.zeb_stall_cycles"];
    assert_eq!(off.pairs, on.pairs, "{tag}: pair set changed under reuse");
    assert_eq!(off.rbcd, on.rbcd, "{tag}: RbcdStats changed under reuse");
    for ((ka, va), (kb, vb)) in off.counters.iter().zip(on.counters.iter()) {
        assert_eq!(ka, kb, "{tag}: counter registries disagree on keys");
        if ka.starts_with("coherence.") || TIMING_KEYS.contains(&ka) {
            continue;
        }
        assert_eq!(va, vb, "{tag}: event counter {ka} changed under reuse");
    }
}

#[test]
fn reuse_is_event_identical_across_suite_and_temporal_scenes() {
    // Suite scenes animate every frame (moving cameras and objects), so
    // they exercise the invalidation path; the temporal clips are
    // static/resting, so they exercise heavy replay. Both must keep
    // every event counter bit-identical to reuse-off at 1, 2, and 4
    // threads — and the reuse-on results themselves must be
    // thread-count invariant in full (timeline included).
    let scenes: Vec<_> =
        rbcd_workloads::suite().into_iter().chain(rbcd_workloads::temporal_suite()).collect();
    for scene in &scenes {
        let off = run_gpu(scene, 2, &opts(1), Some(RbcdConfig::default()));
        let base = run_gpu(
            scene,
            2,
            &RunOptions { reuse: true, ..opts(1) },
            Some(RbcdConfig::default()),
        );
        assert_events_match(&off, &base, scene.alias);
        for threads in [2, 4] {
            let on = run_gpu(
                scene,
                2,
                &RunOptions { reuse: true, ..opts(threads) },
                Some(RbcdConfig::default()),
            );
            assert_eq!(
                base.stats, on.stats,
                "{} reuse-on FrameStats at {threads} threads",
                scene.alias
            );
            assert_eq!(base.pairs, on.pairs, "{} reuse-on pairs", scene.alias);
            assert_eq!(base.rbcd, on.rbcd, "{} reuse-on RbcdStats", scene.alias);
            assert_eq!(base.seconds, on.seconds);
            assert_eq!(base.energy_j, on.energy_j);
        }
    }
    // The temporal clips must actually replay tiles, or this test is
    // only checking the trivially-cold path.
    let vault = run_gpu(
        &rbcd_workloads::vault(),
        2,
        &RunOptions { reuse: true, ..opts(2) },
        Some(RbcdConfig::default()),
    );
    assert!(vault.counters.get("coherence.tiles_reused") > 0, "vault must reuse tiles");
}

#[test]
fn reuse_is_event_identical_under_every_fault_preset() {
    // Fault injection corrupts draws before binning, so a fault-touched
    // draw changes its content hash and invalidates its tiles; replayed
    // tiles re-emit their recorded ladder outcomes. Every recovery and
    // rung statistic must therefore match reuse-off exactly, for every
    // preset. (`FaultCell` carries event counts only — no timeline —
    // so whole-cell equality is the right check.)
    let scenes = [rbcd_workloads::shells()];
    for preset in rbcd_core::faults::PRESETS {
        let plan = FaultPlan::preset(preset, 0xC0_4E5E).unwrap();
        let off = run_fault_tolerance(&scenes, preset, plan, &[2], &opts(2));
        let on = run_fault_tolerance(
            &scenes,
            preset,
            plan,
            &[2],
            &RunOptions { reuse: true, ..opts(2) },
        );
        for (sa, sb) in off.scenes.iter().zip(&on.scenes) {
            for (ca, cb) in sa.cells.iter().zip(&sb.cells) {
                assert_eq!(ca, cb, "preset '{preset}' M={}: cell changed under reuse", ca.m);
            }
        }
    }
}

#[test]
fn governor_off_keeps_outputs_bit_identical_and_counters_zero() {
    // `RunOptions::default()` installs no governor, and every earlier
    // arm in this file plus the golden-counter values run that way —
    // together they pin "governor off → outputs bit-identical to the
    // pre-governor pipeline". This arm adds the two contracts that are
    // new: (a) an ungoverned run reports all-zero `governor.*`
    // accounting, and (b) installing a governor with *no deadline*
    // (budget 0) engages no policy rung — it only forces the reuse
    // machinery on, which carries the reuse layer's exactness contract
    // (timing and `coherence.*` may move, no event counter or pair may).
    use rbcd_gpu::GovernorConfig;
    let scene = rbcd_workloads::shells();
    let off = run_gpu(&scene, 2, &opts(1), Some(RbcdConfig::default()));
    for (k, v) in off.counters.iter() {
        if k.starts_with("governor.") {
            assert_eq!(v, 0, "{k} must stay zero without a governor");
        }
    }
    for threads in [1, 2, 4] {
        let idle = run_gpu(
            &scene,
            2,
            &RunOptions { governor: Some(GovernorConfig::default()), ..opts(threads) },
            Some(RbcdConfig::default()),
        );
        assert_events_match(&off, &idle, "zero-budget governor");
        for (k, v) in idle.counters.iter() {
            if k.starts_with("governor.") {
                assert_eq!(v, 0, "{k} must stay zero under a zero budget");
            }
        }
    }
}

#[test]
fn governed_runs_are_identical_at_any_thread_count() {
    // An active budget engages the whole policy ladder on the merge
    // timeline — forced reuse, coarsening, shedding. Every decision is
    // taken on the main thread (plan phase and merge phase), so a
    // degrading governed run must stay bit-identical in full — pairs,
    // FrameStats (shed/coarsen accounting included), unit books,
    // derived time and energy — at 1, 2, and 4 worker threads.
    use rbcd_gpu::GovernorConfig;
    let scene = rbcd_workloads::shells();
    let off = run_gpu(&scene, 2, &opts(1), Some(RbcdConfig::default()));
    // Half of the ungoverned raster timeline per frame: deep enough into
    // overload that tiles are actually shed.
    let budget = off.counters.get("raster.cycles") / off.counters.get("frames") / 2;
    let gov = GovernorConfig { frame_budget_cycles: budget.max(1), ..GovernorConfig::default() };
    let base = run_gpu(
        &scene,
        2,
        &RunOptions { governor: Some(gov), ..opts(1) },
        Some(RbcdConfig::default()),
    );
    assert!(
        base.counters.get("governor.tiles_shed") > 0,
        "a half budget must shed tiles, or this arm only covers the idle path"
    );
    for threads in [2, 4] {
        let par = run_gpu(
            &scene,
            2,
            &RunOptions { governor: Some(gov), ..opts(threads) },
            Some(RbcdConfig::default()),
        );
        assert_eq!(base.pairs, par.pairs, "governed pairs at {threads} threads");
        assert_eq!(base.stats, par.stats, "governed FrameStats at {threads} threads");
        assert_eq!(base.rbcd, par.rbcd, "governed RbcdStats at {threads} threads");
        assert_eq!(base.counters, par.counters, "governed counters at {threads} threads");
        assert_eq!(base.seconds, par.seconds);
        assert_eq!(base.energy_j, par.energy_j);
    }
}

#[test]
fn frame_parallel_runs_are_identical_at_any_thread_count() {
    for scene in rbcd_workloads::suite() {
        let o = opts(1);
        let seq = run_frames_parallel(&scene, 3, &o, RbcdConfig::default(), 1);
        for threads in [2, 8] {
            let par = run_frames_parallel(&scene, 3, &o, RbcdConfig::default(), threads);
            assert_eq!(seq.pairs, par.pairs, "{} pairs at {threads} threads", scene.alias);
            assert_eq!(seq.stats, par.stats, "{} FrameStats at {threads} threads", scene.alias);
            assert_eq!(seq.rbcd, par.rbcd, "{} RbcdStats at {threads} threads", scene.alias);
            assert_eq!(seq.seconds, par.seconds);
            assert_eq!(seq.energy_j, par.energy_j);
        }
    }
}

#[test]
fn hot_path_mask_matches_reference_across_arms() {
    // The coverage-mask hot path (the default) must be bit-identical
    // to the retained scalar reference in everything user-visible —
    // pairs, shared counters, derived time and energy — at any thread
    // count and with tile reuse on or off. The three host-side
    // diagnostics only the mask path produces are the sole permitted
    // difference, and they are excluded from energy.
    use rbcd_gpu::HotPathMode;
    const MASK_ONLY: [&str; 3] = ["raster.rows_empty", "raster.rows_full", "tile.scan_skipped"];
    let strip = |run: &GpuRun| -> Vec<(&'static str, u64)> {
        run.counters.iter().filter(|(k, _)| !MASK_ONLY.contains(k)).collect()
    };
    let run_mode = |scene: &rbcd_workloads::Scene, mode: HotPathMode, threads: usize, reuse| {
        let mut o = opts(threads);
        o.gpu.hot_path = mode;
        o.reuse = reuse;
        run_gpu(scene, 2, &o, Some(RbcdConfig { hot_path: mode, ..RbcdConfig::default() }))
    };
    for scene in rbcd_workloads::suite() {
        for reuse in [true, false] {
            let reference = run_mode(&scene, HotPathMode::Reference, 1, reuse);
            for threads in [1, 2, 4] {
                let mask = run_mode(&scene, HotPathMode::Mask, threads, reuse);
                let tag = format!("{} at {threads} threads, reuse {reuse}", scene.alias);
                assert_eq!(mask.pairs, reference.pairs, "{tag}: pairs");
                assert_eq!(strip(&mask), strip(&reference), "{tag}: shared counters");
                assert_eq!(mask.seconds, reference.seconds, "{tag}: seconds");
                assert_eq!(mask.energy_j, reference.energy_j, "{tag}: energy");
            }
        }
    }
}

#[test]
fn hot_path_mask_matches_reference_under_fault_presets() {
    // Same contract with the degradation ladder firing: every fault
    // preset's overflow counts, rung histograms, and pair accounting
    // must not depend on which hot path executed them.
    for preset in ["overflow", "nan", "degenerate", "badid"] {
        let plan = FaultPlan::preset(preset, 0xAB5E_11E5).unwrap();
        let scenes = [rbcd_workloads::shells()];
        let m_values = [1, 4];
        let run_mode = |mode: rbcd_gpu::HotPathMode| {
            let mut o = opts(2);
            o.gpu.hot_path = mode;
            run_fault_tolerance(&scenes, preset, plan, &m_values, &o)
        };
        let reference = run_mode(rbcd_gpu::HotPathMode::Reference);
        let mask = run_mode(rbcd_gpu::HotPathMode::Mask);
        for (sa, sb) in reference.scenes.iter().zip(&mask.scenes) {
            for (ca, cb) in sa.cells.iter().zip(&sb.cells) {
                let tag = format!("{preset}: {} M={}", sa.alias, ca.m);
                assert_eq!(ca.faults, cb.faults, "{tag}: injected faults");
                assert_eq!(ca.overflows, cb.overflows, "{tag}: overflow count");
                assert_eq!(
                    (ca.rung_clean, ca.rung_spare, ca.rung_rescan, ca.rung_cpu, ca.rescan_passes),
                    (cb.rung_clean, cb.rung_spare, cb.rung_rescan, cb.rung_cpu, cb.rescan_passes),
                    "{tag}: rung histogram"
                );
                assert_eq!(
                    (ca.oracle_pairs, ca.gpu_recovered, ca.cpu_recovered, ca.missing_pairs),
                    (cb.oracle_pairs, cb.gpu_recovered, cb.cpu_recovered, cb.missing_pairs),
                    "{tag}: pair accounting"
                );
            }
        }
    }
}
