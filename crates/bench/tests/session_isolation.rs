//! Property test for the multi-session scheduler's isolation contract:
//! any interleaving of K sessions over a shared worker pool yields
//! per-session artifacts byte-identical to running each session solo —
//! at 1, 2, and 4 workers, under fault injection, governed budgets,
//! tracing, and arbitrary admission staggers — with a leak-free
//! admission ledger throughout.

use rbcd_core::sched::{AdmissionError, Scheduler, SessionSpec};
use rbcd_core::FaultPlan;
use rbcd_gpu::{FramePolicy, GovernorConfig, GpuConfig};

const WORKER_SWEEP: [usize; 3] = [1, 2, 4];
const FRAMES: usize = 2;

/// Deterministic xorshift64* stream so the "random" staggers and policy
/// mixes are reproducible run to run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The session mix under test: every scene drawn from the workload
/// pools, with policies cycling through reuse, tracing, storm faults,
/// and a governed budget — the full space of per-session state that
/// could leak across the shared pool.
fn session_mix() -> Vec<SessionSpec> {
    let mut pool = rbcd_workloads::suite();
    pool.push(rbcd_workloads::shells());
    pool.extend(rbcd_workloads::temporal_suite());

    pool.iter()
        .enumerate()
        .map(|(i, scene)| {
            let clip: Vec<_> = (0..FRAMES).map(|f| scene.frame_trace(f)).collect();
            let mut policy = FramePolicy::new().with_reuse(i % 2 == 0);
            if i % 3 == 0 {
                policy = policy.with_tracing(true);
            }
            if i % 4 == 2 {
                policy = policy.with_governor(Some(GovernorConfig {
                    frame_budget_cycles: 25_000,
                    ..GovernorConfig::default()
                }));
            }
            let faults = match i % 4 {
                1 => FaultPlan::preset("storm", 0x0BAD_5EED ^ i as u64),
                3 => FaultPlan::preset("overflow", 0x0BAD_5EED ^ i as u64),
                _ => None,
            };
            SessionSpec::new(format!("{}-{i}", scene.alias), clip)
                .with_policy(policy)
                .with_faults(faults)
        })
        .collect()
}

fn solo_artifact(spec: &SessionSpec) -> String {
    let mut sched = Scheduler::new(1, 1);
    let id = sched.submit(spec.clone()).expect("solo admission");
    let reports = sched.run().expect("solo run");
    reports[id.index()].artifact()
}

#[test]
fn any_interleaving_matches_solo_artifacts() {
    let specs = session_mix();
    let solo: Vec<String> = specs.iter().map(solo_artifact).collect();

    let mut rng = Rng(0x1505_1EAF_5E55_1015);
    // Three independently drawn stagger assignments per worker count:
    // sessions arrive in different rounds, so batch composition (which
    // co-tenants share the pool in a given round) varies widely.
    for workers in WORKER_SWEEP {
        for trial in 0..3 {
            let staggered: Vec<SessionSpec> = specs
                .iter()
                .map(|s| s.clone().with_start_round(rng.below(4)))
                .collect();
            let mut sched = Scheduler::new(workers, staggered.len());
            let ids: Vec<_> = staggered
                .into_iter()
                .map(|s| sched.submit(s).expect("admission"))
                .collect();
            let reports = sched.run().expect("batch run");
            for (spec_idx, id) in ids.iter().enumerate() {
                assert_eq!(
                    reports[id.index()].artifact(),
                    solo[spec_idx],
                    "session {} diverged from solo at {workers} workers (trial {trial})",
                    specs[spec_idx].name,
                );
            }
            assert!(sched.ledger().leak_free(), "ledger leak at {workers} workers");
            assert_eq!(sched.ledger().completed, specs.len() as u64);
        }
    }
}

#[test]
fn admission_queue_rejects_overflow_and_keeps_ledger_tight() {
    let specs = session_mix();
    let capacity = 3;
    let mut sched = Scheduler::new(2, capacity);
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    for spec in &specs {
        match sched.submit(spec.clone()) {
            Ok(_) => admitted += 1,
            Err(AdmissionError::QueueFull { capacity: c }) => {
                assert_eq!(c, capacity);
                rejected += 1;
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert_eq!(admitted, capacity as u64);
    assert_eq!(rejected, specs.len() as u64 - capacity as u64);

    // A structurally invalid spec is rejected with a typed error, not a
    // queue-full one, and never counts as admitted.
    let bad_gpu = GpuConfig { frequency_hz: 0, ..GpuConfig::default() };
    let clip = vec![rbcd_workloads::cap().frame_trace(0)];
    // The queue is full here, so drain first to prove the Config error
    // takes priority over capacity bookkeeping on a fresh scheduler.
    let mut fresh = Scheduler::new(1, 8);
    match fresh.submit(SessionSpec::new("bad", clip).with_gpu(bad_gpu)) {
        Err(AdmissionError::Config(_)) => {}
        other => panic!("expected Config rejection, got {other:?}"),
    }
    match fresh.submit(SessionSpec::new("empty", Vec::new())) {
        Err(AdmissionError::EmptyClip) => {}
        other => panic!("expected EmptyClip rejection, got {other:?}"),
    }
    assert_eq!(fresh.ledger().submitted, 2);
    assert_eq!(fresh.ledger().rejected, 2);
    assert!(fresh.ledger().leak_free());

    // The full scheduler still serves what it admitted, leak-free.
    let reports = sched.run().expect("run");
    assert_eq!(reports.len(), capacity);
    assert!(sched.ledger().leak_free());
    assert_eq!(sched.ledger().completed, capacity as u64);
    assert_eq!(sched.ledger().shed, 0);

    // Admitted sessions are still bit-identical to solo despite the
    // rejected co-submissions.
    for (i, report) in reports.iter().enumerate() {
        assert_eq!(report.artifact(), solo_artifact(&specs[i]));
    }
}
