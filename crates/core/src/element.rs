//! The 32-bit ZEB element.

use rbcd_gpu::{Facing, ObjectId};

/// One entry of a ZEB list: the depth of a point on a collisionable
/// surface, the owning object, and the face orientation.
///
/// The paper sizes each element at 32 bits (Table 1: "32 bit/element").
/// [`ZebElement::encode`]/[`ZebElement::decode`] realise that packing —
/// 16-bit quantized depth, 13-bit object id, 1 face bit — and the unit
/// operates on the quantized depth exactly as the hardware would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZebElement {
    /// Quantized window depth (`0` = near plane, `u16::MAX` = far).
    pub z: u16,
    /// Owning collisionable object.
    pub object: ObjectId,
    /// Front (entry) or back (exit) face.
    pub facing: Facing,
}

impl ZebElement {
    /// Quantizes a `[0, 1]` window depth to the 16-bit hardware format.
    /// Values outside the range are clamped.
    pub fn quantize_depth(z: f32) -> u16 {
        (z.clamp(0.0, 1.0) * u16::MAX as f32).round() as u16
    }

    /// Creates an element from a floating-point window depth.
    pub fn new(z: f32, object: ObjectId, facing: Facing) -> Self {
        Self { z: Self::quantize_depth(z), object, facing }
    }

    /// Packs into the 32-bit hardware layout:
    /// `[31:16] z | [15] facing | [14:2] object id | [1:0] reserved`.
    pub fn encode(self) -> u32 {
        let face_bit = match self.facing {
            Facing::Front => 1u32,
            Facing::Back => 0u32,
        };
        (self.z as u32) << 16 | face_bit << 15 | (self.object.get() as u32) << 2
    }

    /// Unpacks a 32-bit element.
    pub fn decode(bits: u32) -> Self {
        let facing = if bits & (1 << 15) != 0 { Facing::Front } else { Facing::Back };
        Self {
            z: (bits >> 16) as u16,
            object: ObjectId::new(((bits >> 2) & 0x1FFF) as u16),
            facing,
        }
    }

    /// `true` for a front (entry) face.
    pub fn is_front(&self) -> bool {
        self.facing == Facing::Front
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_endpoints() {
        assert_eq!(ZebElement::quantize_depth(0.0), 0);
        assert_eq!(ZebElement::quantize_depth(1.0), u16::MAX);
        assert_eq!(ZebElement::quantize_depth(-0.5), 0);
        assert_eq!(ZebElement::quantize_depth(2.0), u16::MAX);
    }

    #[test]
    fn quantization_monotonic() {
        let mut last = 0;
        for i in 0..=100 {
            let q = ZebElement::quantize_depth(i as f32 / 100.0);
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for (z, id, facing) in [
            (0.0f32, 0u16, Facing::Front),
            (0.5, 42, Facing::Back),
            (1.0, ObjectId::MAX, Facing::Front),
            (0.25, 8000, Facing::Back),
        ] {
            let e = ZebElement::new(z, ObjectId::new(id), facing);
            assert_eq!(ZebElement::decode(e.encode()), e);
        }
    }

    #[test]
    fn element_fits_32_bits() {
        let e = ZebElement::new(1.0, ObjectId::new(ObjectId::MAX), Facing::Front);
        // encode() returns u32 by construction; check the top layout bits
        // are where we expect them.
        assert_eq!(e.encode() >> 16, u16::MAX as u32);
        assert!(e.is_front());
    }
}
