//! Structured construction errors for the RBCD unit.
//!
//! Scene-facing constructors ([`crate::Zeb::new`], [`crate::FfStack::new`],
//! [`crate::RbcdUnit::new`]) return these instead of panicking, so a host
//! application feeding untrusted configuration degrades gracefully.
//! Internal invariants (e.g. "insert without an active tile") remain
//! asserts: they indicate driver bugs, not bad input.

use std::error::Error;
use std::fmt;

/// A rejected RBCD-unit configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RbcdError {
    /// ZEB list capacity `M` was zero; the hardware needs at least one
    /// element slot per pixel list.
    ZeroListCapacity,
    /// The ZEB was configured with zero pixel lists (a zero-sized tile).
    ZeroLists,
    /// The unit was configured with zero ZEB buffers.
    ZeroZebCount,
    /// FF-Stack capacity `T` was zero; the Z-overlap scan needs at least
    /// one front-face slot.
    ZeroStackCapacity,
}

impl fmt::Display for RbcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroListCapacity => write!(f, "ZEB list capacity must be positive"),
            Self::ZeroLists => write!(f, "ZEB must have at least one list"),
            Self::ZeroZebCount => write!(f, "RBCD unit needs at least one ZEB"),
            Self::ZeroStackCapacity => write!(f, "FF-Stack capacity must be positive"),
        }
    }
}

impl Error for RbcdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_component() {
        assert!(RbcdError::ZeroListCapacity.to_string().contains("ZEB"));
        assert!(RbcdError::ZeroStackCapacity.to_string().contains("FF-Stack"));
    }
}
