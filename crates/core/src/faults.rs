//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] corrupts a clean [`FrameTrace`] in reproducible ways —
//! forged object ids, NaN vertices and transforms, degenerate geometry,
//! duplicated draw commands — and tightens the RBCD configuration (tiny
//! `M`, exhausted spare pool) to force ZEB overflows. Everything is
//! seeded through [`rbcd_math::Rng`] and applied on the main thread
//! *before* the frame is rendered, so a given `(plan, seed, frame)`
//! produces the same faulted trace at any thread count.
//!
//! The injected garbage exercises the degradation ladder
//! ([`crate::RbcdConfig::ladder_rescans`] /
//! [`crate::RbcdConfig::ladder_cpu_fallback`]) and the ingest
//! quarantine ([`rbcd_gpu::DrawCommand::validate`]): faulted runs must
//! degrade measurably, never panic.

use crate::unit::RbcdConfig;
use rbcd_geometry::Mesh;
use rbcd_gpu::{FrameTrace, ObjectId};
use rbcd_math::{Mat4, Rng, Vec3};
use std::sync::Arc;

/// Per-class injection counts for one faulted trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Draws whose mesh was poisoned with NaN vertex positions.
    pub nan_meshes: u64,
    /// Draws whose model was collapsed to zero scale (every triangle
    /// degenerate).
    pub degenerate_models: u64,
    /// Draws whose model matrix was filled with NaN (malformed command).
    pub malformed_models: u64,
    /// Collidable draws whose object id was forged out of the 13-bit
    /// range.
    pub bad_ids: u64,
    /// Draws submitted twice.
    pub duplicated_draws: u64,
}

impl FaultLog {
    /// Adds another log's counts.
    pub fn accumulate(&mut self, o: &FaultLog) {
        self.nan_meshes += o.nan_meshes;
        self.degenerate_models += o.degenerate_models;
        self.malformed_models += o.malformed_models;
        self.bad_ids += o.bad_ids;
        self.duplicated_draws += o.duplicated_draws;
    }

    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.nan_meshes
            + self.degenerate_models
            + self.malformed_models
            + self.bad_ids
            + self.duplicated_draws
    }
}

/// A reproducible fault-injection plan.
///
/// Rates are per-draw probabilities in `[0, 1]`; a rate of zero disables
/// that fault class (and does not consume random numbers, so plans with
/// different classes enabled draw independent streams).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Base seed; mixed with the frame index per [`FaultPlan::apply`].
    pub seed: u64,
    /// Forces the ZEB list capacity `M` down to this value (overflow
    /// pressure). `None` keeps the configured capacity.
    pub forced_m: Option<usize>,
    /// Zeroes the spare-entry pool (spare-pool exhaustion).
    pub exhaust_spares: bool,
    /// Probability of replacing a draw's mesh with a NaN-poisoned copy.
    pub nan_vertex_rate: f64,
    /// Probability of collapsing a draw's model to zero scale, making
    /// every triangle degenerate.
    pub degenerate_rate: f64,
    /// Probability of filling a draw's model matrix with NaN.
    pub malformed_model_rate: f64,
    /// Probability of forging a collidable draw's id out of range.
    pub bad_object_id_rate: f64,
    /// Probability of submitting a draw twice.
    pub duplicate_draw_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0xB0C5_D00D,
            forced_m: None,
            exhaust_spares: false,
            nan_vertex_rate: 0.0,
            degenerate_rate: 0.0,
            malformed_model_rate: 0.0,
            bad_object_id_rate: 0.0,
            duplicate_draw_rate: 0.0,
        }
    }
}

/// Names accepted by [`FaultPlan::preset`], in presentation order.
pub const PRESETS: &[&str] =
    &["all", "overflow", "spare", "nan", "degenerate", "badid", "dup", "storm"];

impl FaultPlan {
    /// A named preset plan:
    ///
    /// * `"all"` — every fault class at once (the acceptance gauntlet);
    /// * `"overflow"` — forced `M = 1`, maximum ZEB pressure;
    /// * `"spare"` — forced `M = 2` with the spare pool zeroed;
    /// * `"nan"` — NaN vertices and malformed model matrices;
    /// * `"degenerate"` — zero-scale models;
    /// * `"badid"` — forged out-of-range object ids;
    /// * `"dup"` — duplicated draw commands;
    /// * `"storm"` — overload storm: a heavy duplicate-draw flood on top
    ///   of forced `M = 1`, producing fragment floods, sustained ZEB
    ///   overflow, and escalation bursts (the overload-governor
    ///   stressor).
    ///
    /// Returns `None` for an unknown name.
    pub fn preset(name: &str, seed: u64) -> Option<Self> {
        let base = Self { seed, ..Self::default() };
        Some(match name {
            "all" => Self {
                forced_m: Some(2),
                exhaust_spares: true,
                nan_vertex_rate: 0.05,
                degenerate_rate: 0.05,
                malformed_model_rate: 0.05,
                bad_object_id_rate: 0.05,
                duplicate_draw_rate: 0.05,
                ..base
            },
            "overflow" => Self { forced_m: Some(1), ..base },
            "spare" => Self { forced_m: Some(2), exhaust_spares: true, ..base },
            "nan" => Self { nan_vertex_rate: 0.2, malformed_model_rate: 0.1, ..base },
            "degenerate" => Self { degenerate_rate: 0.25, ..base },
            "badid" => Self { bad_object_id_rate: 0.25, ..base },
            "dup" => Self { duplicate_draw_rate: 0.25, ..base },
            "storm" => Self {
                forced_m: Some(1),
                exhaust_spares: true,
                duplicate_draw_rate: 0.75,
                ..base
            },
            _ => return None,
        })
    }

    /// Applies the trace-level fault classes to `trace`, returning the
    /// corrupted copy and the per-class injection counts. Deterministic:
    /// the RNG is seeded from `(self.seed, frame)` only.
    pub fn apply(&self, trace: &FrameTrace, frame: u64) -> (FrameTrace, FaultLog) {
        let mut rng = Rng::seed_from_u64(
            self.seed ^ frame.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17),
        );
        let mut log = FaultLog::default();
        let mut draws = Vec::with_capacity(trace.draws.len());
        for draw in &trace.draws {
            let mut d = draw.clone();
            // At most one geometry/transform fault per draw, so each
            // class's effect stays attributable.
            if self.nan_vertex_rate > 0.0 && rng.gen_bool(self.nan_vertex_rate) {
                d.mesh = Arc::new(poison_mesh(&d.mesh, &mut rng));
                log.nan_meshes += 1;
            } else if self.degenerate_rate > 0.0 && rng.gen_bool(self.degenerate_rate) {
                d.model = d.model * Mat4::uniform_scale(0.0);
                log.degenerate_models += 1;
            } else if self.malformed_model_rate > 0.0 && rng.gen_bool(self.malformed_model_rate) {
                d.model = Mat4::uniform_scale(f32::NAN);
                log.malformed_models += 1;
            }
            if d.collidable.is_some()
                && self.bad_object_id_rate > 0.0
                && rng.gen_bool(self.bad_object_id_rate)
            {
                let bump = (rng.next_u32() % 64 + 1) as u16;
                d.collidable = Some(ObjectId::from_raw_unchecked(ObjectId::MAX + bump));
                log.bad_ids += 1;
            }
            let duplicate = self.duplicate_draw_rate > 0.0 && rng.gen_bool(self.duplicate_draw_rate);
            if duplicate {
                log.duplicated_draws += 1;
                draws.push(d.clone());
            }
            draws.push(d);
        }
        (FrameTrace::new(trace.camera, draws), log)
    }

    /// Applies the configuration-level fault classes (forced tiny `M`,
    /// spare-pool exhaustion) to an RBCD configuration.
    pub fn apply_rbcd(&self, mut config: RbcdConfig) -> RbcdConfig {
        if let Some(m) = self.forced_m {
            config.list_capacity = m.max(1);
        }
        if self.exhaust_spares {
            config.spare_entries = 0;
        }
        config
    }
}

/// Copies `mesh` with one random vertex position replaced by NaN, via
/// the unchecked constructor ([`Mesh::new`] would reject it).
fn poison_mesh(mesh: &Mesh, rng: &mut Rng) -> Mesh {
    let mut positions = mesh.positions().to_vec();
    if !positions.is_empty() {
        let v = rng.next_u32() as usize % positions.len();
        positions[v] = Vec3::new(f32::NAN, f32::NAN, f32::NAN);
    }
    Mesh::new_unchecked(positions, mesh.indices().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_geometry::shapes;
    use rbcd_gpu::{Camera, DrawCommand};

    fn trace() -> FrameTrace {
        let camera =
            Camera::perspective(Vec3::new(0.0, 0.0, 6.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let draws = (0..32u16)
            .map(|i| DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(i + 1)))
            .collect();
        FrameTrace::new(camera, draws)
    }

    #[test]
    fn apply_is_deterministic() {
        let plan = FaultPlan::preset("all", 7).unwrap();
        let t = trace();
        let (a, la) = plan.apply(&t, 3);
        let (b, lb) = plan.apply(&t, 3);
        assert_eq!(la, lb);
        assert_eq!(a.draws.len(), b.draws.len());
        for (x, y) in a.draws.iter().zip(&b.draws) {
            assert_eq!(x.collidable, y.collidable);
            assert_eq!(x.model, y.model);
            assert_eq!(x.mesh.positions_finite(), y.mesh.positions_finite());
        }
        // A different frame draws a different corruption pattern.
        let (_, lc) = plan.apply(&t, 4);
        assert!(lc != la || plan.apply(&t, 5).1 != la);
    }

    #[test]
    fn all_preset_injects_every_class() {
        let plan = FaultPlan::preset("all", 11).unwrap();
        let t = trace();
        let mut log = FaultLog::default();
        for frame in 0..64 {
            log.accumulate(&plan.apply(&t, frame).1);
        }
        assert!(log.nan_meshes > 0, "nan: {log:?}");
        assert!(log.degenerate_models > 0, "degenerate: {log:?}");
        assert!(log.malformed_models > 0, "malformed: {log:?}");
        assert!(log.bad_ids > 0, "badid: {log:?}");
        assert!(log.duplicated_draws > 0, "dup: {log:?}");
        assert_eq!(log.total(), log.nan_meshes + log.degenerate_models
            + log.malformed_models + log.bad_ids + log.duplicated_draws);
    }

    #[test]
    fn faulted_draws_fail_ingest_validation() {
        let plan = FaultPlan { nan_vertex_rate: 1.0, ..FaultPlan::default() };
        let (faulted, log) = plan.apply(&trace(), 0);
        assert_eq!(log.nan_meshes, faulted.draws.len() as u64);
        assert_eq!(faulted.validate().len(), faulted.draws.len());
    }

    #[test]
    fn config_faults_tighten_the_unit() {
        let plan = FaultPlan::preset("spare", 0).unwrap();
        let cfg = RbcdConfig { spare_entries: 128, ..RbcdConfig::default() };
        let tight = plan.apply_rbcd(cfg);
        assert_eq!(tight.list_capacity, 2);
        assert_eq!(tight.spare_entries, 0);
        // No faults configured: the config passes through untouched.
        assert_eq!(FaultPlan::default().apply_rbcd(cfg), cfg);
    }

    #[test]
    fn unknown_preset_is_none() {
        assert!(FaultPlan::preset("meteor", 0).is_none());
        for name in PRESETS {
            assert!(FaultPlan::preset(name, 0).is_some(), "{name}");
        }
    }
}
