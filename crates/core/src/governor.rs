//! Frame-overload governance: deadline budgeting, escalation circuit
//! breaking, and degraded-result accounting.
//!
//! The RBCD unit's degradation ladder (spares → re-scan → CPU
//! escalation) protects single tiles; nothing in the base pipeline
//! protects a *frame* — a fragment storm or an escalation burst can blow
//! any latency budget. This module is the frame-level counterpart:
//!
//! * the GPU simulator enforces a per-frame **simulated-cycle budget**
//!   ([`rbcd_gpu::GovernorConfig`]) on its deterministic tile-merge
//!   timeline, coarsening the heaviest tiles (pre-elevated ZEB capacity
//!   so doomed base passes and their re-scans are skipped) and
//!   **shedding** the trailing tiles once the budget is exhausted;
//! * a [`CircuitBreaker`] watches rung-3 escalation storms over a
//!   sliding window of frames: trip → route the offending objects
//!   straight to the CPU detector for a cooldown → half-open probe →
//!   close. Every transition is a pure function of the per-frame
//!   escalation counts, so it is bit-identical at any thread count;
//! * every degradation is accounted in a [`DegradedResult`]: the frame's
//!   pairs partitioned into *exact* (found by the hardware model on
//!   scanned tiles), *cpu-verified* (recovered by the exact CPU detector
//!   over escalated / shed / breaker-blocked objects), and *stale*
//!   (carried forward from the last frame for shed tiles, explicitly
//!   marked).
//!
//! The soundness contract — enforced by the `repro overload` experiment
//! against the software oracle — is that the exact ∪ cpu-verified
//! partitions never miss a pair the oracle finds in non-shed tiles;
//! staleness is only ever attributed to shed tiles.
//!
//! Everything here is wall-clock-free. Budgets are simulated cycles,
//! breaker state advances once per frame on the main thread, and the
//! carry-forward store is rebuilt from the deterministic contact stream,
//! so a governed run is bit-identical at 1, 2, or 4 worker threads.

use crate::unit::ContactPoint;
use rbcd_gpu::ObjectId;
use std::collections::{BTreeMap, BTreeSet};

/// A distinct colliding pair, smaller id first.
pub type Pair = (ObjectId, ObjectId);

/// Sliding-window circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Frames in the sliding escalation window.
    pub window: usize,
    /// Windowed escalation count at which the breaker trips.
    pub trip_threshold: u64,
    /// Frames the breaker stays open (offenders routed straight to the
    /// CPU detector) before the half-open probe.
    pub cooldown_frames: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { window: 4, trip_threshold: 24, cooldown_frames: 3 }
    }
}

/// The breaker's state machine position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; escalations are being counted.
    Closed,
    /// Tripped: offenders are routed straight to the CPU detector.
    Open,
    /// Cooldown elapsed: one probe frame runs ungoverned-by-the-breaker
    /// to test whether the storm has passed.
    HalfOpen,
}

/// A deterministic sliding-window circuit breaker over per-frame rung-3
/// escalation counts.
///
/// Transitions (all pure functions of the escalation sequence):
/// `Closed` trips to `Open` when the windowed escalation sum reaches
/// [`BreakerConfig::trip_threshold`]; `Open` counts down
/// [`BreakerConfig::cooldown_frames`] to `HalfOpen`; a `HalfOpen` probe
/// frame closes the breaker if its escalations stay under the per-frame
/// share of the trip threshold, and re-trips it otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    history: Vec<u64>,
    cooldown_left: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker. A zero `window` is clamped to 1.
    pub fn new(mut config: BreakerConfig) -> Self {
        config.window = config.window.max(1);
        Self {
            config,
            state: BreakerState::Closed,
            history: Vec::new(),
            cooldown_left: 0,
            trips: 0,
        }
    }

    /// Current state (as of the last recorded frame).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped (including half-open re-trips).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// The escalation count above which a half-open probe frame fails:
    /// the trip threshold amortized over the window.
    fn probe_limit(&self) -> u64 {
        (self.config.trip_threshold / self.config.window as u64).max(1)
    }

    /// Records one frame's rung-3 escalation count and advances the
    /// state machine. Returns the state *after* the frame.
    pub fn record(&mut self, escalations: u64) -> BreakerState {
        match self.state {
            BreakerState::Closed => {
                self.history.push(escalations);
                if self.history.len() > self.config.window {
                    self.history.remove(0);
                }
                if self.history.iter().sum::<u64>() >= self.config.trip_threshold {
                    self.state = BreakerState::Open;
                    self.cooldown_left = self.config.cooldown_frames;
                    self.trips += 1;
                    self.history.clear();
                }
            }
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                }
            }
            BreakerState::HalfOpen => {
                if escalations >= self.probe_limit() {
                    self.state = BreakerState::Open;
                    self.cooldown_left = self.config.cooldown_frames;
                    self.trips += 1;
                } else {
                    self.state = BreakerState::Closed;
                }
            }
        }
        self.state
    }
}

/// One frame's degraded-result accounting: the pair set partitioned by
/// how much trust each pair deserves, plus the budget verdict.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradedResult {
    /// Pairs the hardware model found on tiles it actually scanned this
    /// frame — exact under the oracle contract.
    pub exact: BTreeSet<Pair>,
    /// Pairs recovered by the exact CPU detector over escalated, shed,
    /// and breaker-blocked objects (minus those already in `exact`).
    pub cpu_verified: BTreeSet<Pair>,
    /// Pairs carried forward from the previous frame for shed tiles —
    /// conservative, explicitly stale, in neither partition above.
    pub stale: BTreeSet<Pair>,
    /// Tiles shed this frame (tile coordinates).
    pub shed_tiles: Vec<(u32, u32)>,
    /// Simulated cycles the governed tile timeline actually used.
    pub used_cycles: u64,
    /// The frame's cycle budget (0 when ungoverned).
    pub budget_cycles: u64,
    /// Breaker state after this frame.
    pub breaker_open: bool,
    /// Breaker trips so far (cumulative).
    pub breaker_trips: u64,
}

impl DegradedResult {
    /// Every pair the frame reports, across all three partitions.
    pub fn all_pairs(&self) -> BTreeSet<Pair> {
        let mut out = self.exact.clone();
        out.extend(self.cpu_verified.iter().copied());
        out.extend(self.stale.iter().copied());
        out
    }

    /// True if any degradation happened (anything beyond `exact`).
    pub fn degraded(&self) -> bool {
        !self.cpu_verified.is_empty() || !self.stale.is_empty() || !self.shed_tiles.is_empty()
    }

    /// True if the frame landed within its budget, allowing `slack`
    /// cycles of overshoot (one tile's worth, per the merge-time
    /// enforcement). Always true when ungoverned.
    pub fn within_budget(&self, slack: u64) -> bool {
        self.budget_cycles == 0 || self.used_cycles <= self.budget_cycles.saturating_add(slack)
    }
}

/// The frame-sequential governor driver: owns the circuit breaker, the
/// breaker's offender block-list, and the per-tile carry-forward store
/// that backs stale results for shed tiles.
///
/// The caller (the bench harness) runs one governed frame, then feeds
/// the frame's outputs to [`finish_frame`](Self::finish_frame); between
/// frames it reads [`blocked`](Self::blocked) to route offenders
/// straight to the CPU while the breaker is open.
#[derive(Debug, Clone)]
pub struct Governor {
    breaker: CircuitBreaker,
    /// Last known per-tile pair sets; entries for shed tiles persist,
    /// entries for scanned tiles are rebuilt (and dropped when empty).
    carry: BTreeMap<(u32, u32), BTreeSet<Pair>>,
    /// Escalation sets of the breaker window's recent frames.
    recent_escalated: Vec<BTreeSet<ObjectId>>,
    /// Objects routed straight to the CPU while the breaker is open.
    blocked: BTreeSet<ObjectId>,
    /// Cumulative stale pairs reported (for the counter registry).
    stale_pairs: u64,
}

impl Governor {
    /// Creates a governor with the given breaker tuning.
    pub fn new(breaker: BreakerConfig) -> Self {
        Self {
            breaker: CircuitBreaker::new(breaker),
            carry: BTreeMap::new(),
            recent_escalated: Vec::new(),
            blocked: BTreeSet::new(),
            stale_pairs: 0,
        }
    }

    /// The breaker, for state inspection.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Objects currently routed straight to the CPU (empty unless the
    /// breaker is open). The simulator drops their fragments before ZEB
    /// insertion; the caller must include them in the CPU recovery set.
    pub fn blocked(&self) -> &BTreeSet<ObjectId> {
        &self.blocked
    }

    /// Cumulative stale pairs reported across frames.
    pub fn stale_pairs(&self) -> u64 {
        self.stale_pairs
    }

    /// Closes one governed frame: partitions its pairs, advances the
    /// breaker from the frame's escalation set, updates the offender
    /// block-list and the carry-forward store, and returns the
    /// accounting report.
    ///
    /// * `tile_size` — the pipeline's tile edge, to attribute contacts
    ///   to tiles;
    /// * `contacts` — the hardware model's contact stream this frame;
    /// * `escalated` — the objects the ladder escalated (rung 3);
    /// * `shed_tiles` — tiles the simulator shed to stay in budget;
    /// * `used_cycles` / `budget_cycles` — the governed timeline verdict;
    /// * `cpu_pairs` — exact CPU detection over escalated ∪ shed ∪
    ///   blocked objects (see [`blocked`](Self::blocked)).
    #[allow(clippy::too_many_arguments)]
    pub fn finish_frame(
        &mut self,
        tile_size: u32,
        contacts: &[ContactPoint],
        escalated: &BTreeSet<ObjectId>,
        shed_tiles: &[(u32, u32)],
        used_cycles: u64,
        budget_cycles: u64,
        cpu_pairs: &BTreeSet<Pair>,
    ) -> DegradedResult {
        let ts = tile_size.max(1);

        // Exact partition and the next carry store, from this frame's
        // contact stream. Scanned tiles with no contacts drop out of the
        // carry (their stale pairs are no longer backed by anything).
        let mut exact: BTreeSet<Pair> = BTreeSet::new();
        let mut next_carry: BTreeMap<(u32, u32), BTreeSet<Pair>> = BTreeMap::new();
        for c in contacts {
            let pair = c.pair();
            exact.insert(pair);
            next_carry.entry((c.x / ts, c.y / ts)).or_default().insert(pair);
        }

        // Stale partition: last frame's pairs for the shed tiles, which
        // also persist into the next carry (a tile shed twice in a row
        // keeps carrying its last scanned result).
        let mut stale: BTreeSet<Pair> = BTreeSet::new();
        for &tile in shed_tiles {
            if let Some(pairs) = self.carry.get(&tile) {
                stale.extend(pairs.iter().copied());
                next_carry.entry(tile).or_default().extend(pairs.iter().copied());
            }
        }
        self.carry = next_carry;

        let cpu_verified: BTreeSet<Pair> =
            cpu_pairs.iter().copied().filter(|p| !exact.contains(p)).collect();
        let stale: BTreeSet<Pair> = stale
            .into_iter()
            .filter(|p| !exact.contains(p) && !cpu_verified.contains(p))
            .collect();
        self.stale_pairs += stale.len() as u64;

        // Advance the breaker and the offender block-list.
        self.recent_escalated.push(escalated.clone());
        if self.recent_escalated.len() > self.breaker.config.window {
            self.recent_escalated.remove(0);
        }
        let state = self.breaker.record(escalated.len() as u64);
        self.blocked = match state {
            BreakerState::Open => {
                self.recent_escalated.iter().flat_map(|s| s.iter().copied()).collect()
            }
            // A half-open probe (and a closed breaker) runs unblocked.
            BreakerState::HalfOpen | BreakerState::Closed => BTreeSet::new(),
        };

        DegradedResult {
            exact,
            cpu_verified,
            stale,
            shed_tiles: shed_tiles.to_vec(),
            used_cycles,
            budget_cycles,
            breaker_open: state == BreakerState::Open,
            breaker_trips: self.breaker.trips(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_math::Rng;

    fn pt(x: u32, y: u32, a: u16, b: u16) -> ContactPoint {
        ContactPoint { a: ObjectId::new(a), b: ObjectId::new(b), x, y, depth: 100 }
    }

    #[test]
    fn breaker_trips_cools_probes_and_closes() {
        let cfg = BreakerConfig { window: 2, trip_threshold: 10, cooldown_frames: 2 };
        let mut b = CircuitBreaker::new(cfg);
        assert_eq!(b.record(4), BreakerState::Closed);
        assert_eq!(b.record(6), BreakerState::Open, "windowed sum 10 must trip");
        assert_eq!(b.trips(), 1);
        assert_eq!(b.record(100), BreakerState::Open, "cooldown 1 of 2");
        assert_eq!(b.record(100), BreakerState::HalfOpen, "cooldown elapsed");
        // A stormy probe re-trips; a clean probe closes.
        assert_eq!(b.record(100), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        b.record(0);
        b.record(0); // back to HalfOpen
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.record(0), BreakerState::Closed);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn breaker_is_a_pure_function_of_the_escalation_sequence() {
        // Property: identical seeded storm sequences produce identical
        // transition logs — the determinism the 1/2/4-thread pipeline
        // test relies on, checked here over many random sequences.
        for seed in 0..32u64 {
            let cfg = BreakerConfig::default();
            let mut rng_a = Rng::seed_from_u64(0x60BE_4402 ^ seed);
            let mut rng_b = Rng::seed_from_u64(0x60BE_4402 ^ seed);
            let mut a = CircuitBreaker::new(cfg);
            let mut b = CircuitBreaker::new(cfg);
            let mut log_a = Vec::new();
            let mut log_b = Vec::new();
            for _ in 0..64 {
                log_a.push(a.record(u64::from(rng_a.next_u32() % 16)));
                log_b.push(b.record(u64::from(rng_b.next_u32() % 16)));
            }
            assert_eq!(log_a, log_b, "seed {seed}");
            assert_eq!(a.trips(), b.trips(), "seed {seed}");
            assert!(log_a.contains(&BreakerState::Open), "storm at seed {seed} must trip");
        }
    }

    #[test]
    fn finish_frame_partitions_and_carries_forward() {
        let mut g = Governor::new(BreakerConfig::default());
        let escalated = BTreeSet::new();

        // Frame 0: tile (0,0) scans pair (1,2); nothing shed.
        let r0 = g.finish_frame(16, &[pt(3, 3, 1, 2)], &escalated, &[], 100, 1000, &BTreeSet::new());
        assert_eq!(r0.exact.len(), 1);
        assert!(!r0.degraded());
        assert!(r0.within_budget(0));

        // Frame 1: tile (0,0) shed — its pair comes back stale.
        let r1 = g.finish_frame(16, &[], &escalated, &[(0, 0)], 100, 1000, &BTreeSet::new());
        assert!(r1.exact.is_empty());
        assert_eq!(r1.stale.len(), 1);
        assert!(r1.stale.contains(&(ObjectId::new(1), ObjectId::new(2))));
        assert!(r1.degraded());
        assert_eq!(g.stale_pairs(), 1);

        // Frame 2: shed again — the carry persists across shed frames.
        let r2 = g.finish_frame(16, &[], &escalated, &[(0, 0)], 100, 1000, &BTreeSet::new());
        assert_eq!(r2.stale.len(), 1);

        // Frame 3: tile scanned clean — the stale entry is retired.
        let r3 = g.finish_frame(16, &[], &escalated, &[], 100, 1000, &BTreeSet::new());
        assert!(r3.stale.is_empty());
        let r4 = g.finish_frame(16, &[], &escalated, &[(0, 0)], 100, 1000, &BTreeSet::new());
        assert!(r4.stale.is_empty(), "a clean scan must clear the carry");
    }

    #[test]
    fn cpu_pairs_never_double_count_and_blocklist_follows_state() {
        let cfg = BreakerConfig { window: 1, trip_threshold: 2, cooldown_frames: 1 };
        let mut g = Governor::new(cfg);
        let escalated: BTreeSet<ObjectId> = [ObjectId::new(7), ObjectId::new(9)].into();
        let cpu: BTreeSet<Pair> =
            [(ObjectId::new(1), ObjectId::new(2)), (ObjectId::new(7), ObjectId::new(9))].into();
        let r = g.finish_frame(16, &[pt(0, 0, 1, 2)], &escalated, &[], 10, 0, &cpu);
        // (1,2) is exact; only (7,9) lands in cpu_verified.
        assert_eq!(r.cpu_verified.len(), 1);
        assert!(r.breaker_open, "2 escalations with threshold 2 must trip");
        assert_eq!(g.blocked().len(), 2, "offenders blocked while open");
        // Cooldown elapses into a half-open probe: block-list lifts.
        g.finish_frame(16, &[], &BTreeSet::new(), &[], 10, 0, &BTreeSet::new());
        assert!(g.blocked().is_empty());
    }
}
