//! The RBCD unit — the paper's contribution.
//!
//! This crate models the hardware block of §3 of *Ultra-Low Power
//! Render-Based Collision Detection for CPU/GPU Systems* (MICRO-48,
//! 2015):
//!
//! * [`Zeb`] — the **Z-depth Extended Buffer**: one fixed-capacity,
//!   depth-sorted list of `(z, object-id, facing)` elements per pixel of
//!   a 16×16 tile, filled by the sorted-insertion network of Figure 4;
//! * [`scan_list`] — the **Z-overlap test** of Figures 5–6: a
//!   front-to-back traversal against the FF-Stack (front-face stack with
//!   matched bits) that reports colliding object pairs;
//! * [`RbcdUnit`] — the complete unit: one insertion unit, one Z-overlap
//!   unit and one or more ZEBs, double-buffered so scanning the previous
//!   tile overlaps rasterizing the next (§3.5). It plugs into the GPU
//!   simulator through [`rbcd_gpu::CollisionUnit`] and accounts its own
//!   cycles, energy events, and overflows (Table 3);
//! * [`software`] — a plain-software image-based collision detector
//!   (Shinya–Forgue) used as the validation oracle;
//! * [`detect_frame_collisions`] — a one-call convenience API that runs
//!   a frame through the GPU simulator with an attached unit.
//!
//! # Example
//!
//! ```
//! use rbcd_core::{detect_frame_collisions, RbcdConfig};
//! use rbcd_gpu::{Camera, DrawCommand, FrameTrace, GpuConfig, ObjectId};
//! use rbcd_geometry::shapes;
//! use rbcd_math::{Mat4, Vec3, Viewport};
//!
//! let camera = Camera::perspective(Vec3::new(0.0, 0.0, 6.0), Vec3::ZERO, 1.0, 0.1, 100.0);
//! let a = DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1));
//! let b = DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(2))
//!     .with_model(Mat4::translation(Vec3::new(0.8, 0.0, 0.0)));
//! let trace = FrameTrace::new(camera, vec![a, b]);
//! let gpu = GpuConfig { viewport: Viewport::new(128, 128), ..GpuConfig::default() };
//! let result = detect_frame_collisions(&trace, &gpu, &RbcdConfig::default());
//! assert!(result.pairs().contains(&(ObjectId::new(1), ObjectId::new(2))));
//! ```

#![warn(missing_docs)]

mod element;
mod error;
pub mod faults;
pub mod governor;
mod pair;
mod parallel;
mod scan;
pub mod sched;
pub mod software;
mod stats;
mod unit;
mod zeb;

pub use element::ZebElement;
pub use error::RbcdError;
pub use faults::{FaultLog, FaultPlan};
pub use governor::{BreakerConfig, BreakerState, CircuitBreaker, DegradedResult, Governor};
pub use pair::ObjectPair;
pub use parallel::{TileCollisions, ZebTileWorker};
pub use scan::{scan_list, scan_list_with, FfStack, ScanOutcome};
pub use stats::RbcdStats;
pub use unit::{
    detect_collision_pass, detect_frame_collisions, ContactPoint, FrameCollisions, RbcdConfig,
    RbcdUnit,
};
pub use zeb::{InsertOutcome, Zeb};
