//! The canonical colliding-pair type.

use rbcd_gpu::ObjectId;
use std::fmt;

/// An unordered pair of colliding objects in canonical form: stored
/// `u32`-backed with the smaller id first, so pairs from any detector —
/// the 13-bit-id hardware unit, the software oracle, or a CPU detector
/// with wider ids — compare directly without hand-conversion.
///
/// `Ord` follows `(lo, hi)`, so a `BTreeSet<ObjectPair>` iterates in a
/// deterministic, human-readable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectPair {
    lo: u32,
    hi: u32,
}

impl ObjectPair {
    /// Creates the canonical pair from two raw ids, in either order.
    pub fn new(a: u32, b: u32) -> Self {
        if a <= b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }

    /// Creates the canonical pair from two hardware object ids.
    pub fn from_ids(a: ObjectId, b: ObjectId) -> Self {
        Self::new(a.get() as u32, b.get() as u32)
    }

    /// The smaller id.
    pub fn lo(&self) -> u32 {
        self.lo
    }

    /// The larger id.
    pub fn hi(&self) -> u32 {
        self.hi
    }

    /// Whether `id` is one of the two members.
    pub fn contains(&self, id: u32) -> bool {
        self.lo == id || self.hi == id
    }
}

impl From<(ObjectId, ObjectId)> for ObjectPair {
    fn from((a, b): (ObjectId, ObjectId)) -> Self {
        Self::from_ids(a, b)
    }
}

impl From<(u32, u32)> for ObjectPair {
    fn from((a, b): (u32, u32)) -> Self {
        Self::new(a, b)
    }
}

impl fmt::Display for ObjectPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_either_way() {
        assert_eq!(ObjectPair::new(7, 3), ObjectPair::new(3, 7));
        let p = ObjectPair::new(9, 2);
        assert_eq!((p.lo(), p.hi()), (2, 9));
        assert!(p.contains(9));
        assert!(!p.contains(5));
    }

    #[test]
    fn from_ids_widens() {
        let p = ObjectPair::from_ids(ObjectId::new(40), ObjectId::new(12));
        assert_eq!((p.lo(), p.hi()), (12, 40));
        assert_eq!(p, ObjectPair::new(40, 12));
        assert_eq!(ObjectPair::from((ObjectId::new(1), ObjectId::new(2))), ObjectPair::new(1, 2));
        assert_eq!(ObjectPair::from((5u32, 4u32)), ObjectPair::new(4, 5));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut pairs = vec![ObjectPair::new(2, 9), ObjectPair::new(1, 3), ObjectPair::new(2, 4)];
        pairs.sort();
        assert_eq!(
            pairs,
            vec![ObjectPair::new(1, 3), ObjectPair::new(2, 4), ObjectPair::new(2, 9)]
        );
    }

    #[test]
    fn displays_as_tuple() {
        assert_eq!(ObjectPair::new(8, 3).to_string(), "(3, 8)");
    }
}
