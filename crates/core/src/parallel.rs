//! Per-thread RBCD collision workers for parallel tile execution.
//!
//! [`rbcd_gpu::ParallelCollision`] splits collision detection into an
//! order-free compute half and an order-dependent merge half.
//! [`ZebTileWorker`] is the compute half for the hardware model: each
//! worker thread owns a private software ZEB + FF-Stack and produces an
//! owned [`TileCollisions`] per tile. [`RbcdUnit::merge_scanned_tile`]
//! is the merge half: called in tile-index order, it replays the ZEB
//! double-buffer claim and the Z-overlap unit's serialization, so the
//! unit ends in exactly the state sequential execution produces.
//!
//! This equivalence rests on the per-tile hardware protocol itself:
//! every tile starts from a cleared ZEB (`begin_tile` asserts it) and
//! the FF-Stack is cleared at each list scan, so per-tile insert + scan
//! results are independent of which ZEB — or here, which thread —
//! hosted them. Only the *timing* couples tiles, and that is replayed
//! sequentially at merge.

use crate::scan::FfStack;
use crate::software::OracleUnit;
use crate::stats::RbcdStats;
use crate::unit::{ladder_zeb_tile, ContactPoint, RbcdConfig, RbcdUnit};
use crate::zeb::Zeb;
use crate::ZebElement;
use rbcd_gpu::{CollisionFragment, CollisionUnit, ObjectId, ParallelCollision, TileCoord};

/// One worker thread's private collision state: a software ZEB and
/// FF-Stack, reused across the tiles the thread claims.
#[derive(Debug)]
pub struct ZebTileWorker {
    config: RbcdConfig,
    tile_size: u32,
    zeb: Zeb,
    stack: FfStack,
    pending: Vec<(u32, ZebElement)>,
}

/// Owned per-tile collision results, merged in tile order by
/// `RbcdUnit::merge_scanned_tile`.
#[derive(Debug, Clone, Default)]
pub struct TileCollisions {
    /// Contacts in occupancy (insertion-touch) order — the order the
    /// sequential unit emits them.
    pub contacts: Vec<ContactPoint>,
    /// The tile's isolated stats, including its `scan_cycles` (used to
    /// replay the scan-unit timing) and `tiles = 1`.
    pub stats: RbcdStats,
    /// Objects escalated to the CPU detector by ladder rung 3, in
    /// ascending id order.
    pub escalated: Vec<ObjectId>,
}

impl ZebTileWorker {
    /// Creates a worker mirroring `RbcdUnit::new`'s per-ZEB geometry.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized capacity; workers are only built from the
    /// already-validated config of an existing [`RbcdUnit`].
    pub fn new(config: RbcdConfig, tile_size: u32) -> Self {
        let lists = (tile_size * tile_size) as usize;
        Self {
            zeb: Zeb::with_spares(lists, config.list_capacity, config.spare_entries)
                .expect("worker mirrors a validated unit config"),
            stack: FfStack::new(config.ff_stack_capacity)
                .expect("worker mirrors a validated unit config"),
            pending: Vec::new(),
            config,
            tile_size,
        }
    }

    /// Inserts `frags` (in pipeline order) and scans the tile, exactly
    /// as the sequential `insert` × n + `finish_tile` sequence would —
    /// including the degradation ladder, which both paths run from the
    /// same buffered fragment stream.
    pub fn process_tile(&mut self, tile: TileCoord, frags: &[CollisionFragment]) -> TileCollisions {
        let mut out = TileCollisions::default();
        out.stats.tiles = 1;
        self.pending.clear();
        for frag in frags {
            let lx = frag.x - tile.x * self.tile_size;
            let ly = frag.y - tile.y * self.tile_size;
            let index = ly * self.tile_size + lx;
            self.pending.push((index, ZebElement::new(frag.z, frag.object, frag.facing)));
        }
        out.stats.scan_cycles = ladder_zeb_tile(
            &mut self.zeb,
            &mut self.stack,
            &self.config,
            tile,
            self.tile_size,
            &self.pending,
            &mut out.stats,
            &mut out.contacts,
            &mut out.escalated,
        );
        out
    }

    /// Like [`ZebTileWorker::process_tile`], but with the effective list
    /// capacity `M` boosted by `boost` doublings — the overload
    /// governor's scan-coarsening rung. A boosted tile skips the
    /// base-capacity passes an overflow storm would doom, trading the
    /// larger one-shot scan for the ladder's repeated rescans. `boost ==
    /// 0` is exactly `process_tile`.
    pub fn process_tile_boosted(
        &mut self,
        tile: TileCoord,
        frags: &[CollisionFragment],
        boost: u8,
    ) -> TileCollisions {
        if boost == 0 {
            return self.process_tile(tile, frags);
        }
        let m = self.config.list_capacity.saturating_mul(1usize << (boost.min(24) as usize));
        let config = RbcdConfig { list_capacity: m, ..self.config };
        let mut out = TileCollisions::default();
        out.stats.tiles = 1;
        self.pending.clear();
        for frag in frags {
            let lx = frag.x - tile.x * self.tile_size;
            let ly = frag.y - tile.y * self.tile_size;
            let index = ly * self.tile_size + lx;
            self.pending.push((index, ZebElement::new(frag.z, frag.object, frag.facing)));
        }
        let lists = (self.tile_size * self.tile_size) as usize;
        // The boosted geometry mirrors the ladder's own rescan rung: the
        // scan stack widens alongside the lists, preserving the
        // "stack capacity >= list capacity" soundness structure.
        let mut zeb = Zeb::with_spares(lists, m, self.config.spare_entries)
            .expect("boosted capacity is positive");
        let mut stack = FfStack::new(m.max(self.config.ff_stack_capacity))
            .expect("widened FF-Stack capacity is positive");
        out.stats.scan_cycles = ladder_zeb_tile(
            &mut zeb,
            &mut stack,
            &config,
            tile,
            self.tile_size,
            &self.pending,
            &mut out.stats,
            &mut out.contacts,
            &mut out.escalated,
        );
        out
    }
}

impl ParallelCollision for RbcdUnit {
    type Worker = ZebTileWorker;
    type TileOut = TileCollisions;

    fn make_worker(&self) -> Self::Worker {
        ZebTileWorker::new(*self.config(), self.tile_size())
    }

    fn process_tile(
        worker: &mut Self::Worker,
        tile: TileCoord,
        frags: &[CollisionFragment],
    ) -> Self::TileOut {
        worker.process_tile(tile, frags)
    }

    fn process_boosted_tile(
        worker: &mut Self::Worker,
        tile: TileCoord,
        frags: &[CollisionFragment],
        boost: u8,
    ) -> Self::TileOut {
        worker.process_tile_boosted(tile, frags, boost)
    }

    fn next_free(&self) -> u64 {
        CollisionUnit::next_free(self)
    }

    fn merge_tile(&mut self, tile: TileCoord, out: Self::TileOut, start: u64, end: u64) {
        self.merge_scanned_tile(tile, &out.stats, &out.contacts, &out.escalated, start, end);
    }

    fn replay_tile(&mut self, tile: TileCoord, out: Self::TileOut, start: u64, end: u64) {
        self.replay_scanned_tile(tile, &out.stats, &out.contacts, &out.escalated, start, end);
    }

    fn coherence_key(&self) -> u64 {
        // Every RbcdConfig field feeds the key: a cached tile result is
        // only valid under the exact unit configuration that produced
        // it (capacities change overflow behaviour, ladder knobs change
        // recovery, scan costs change the logged timing).
        let c = self.config();
        let mut h = 0x52_BC_D0_01u64;
        for v in [
            c.zeb_count as u64,
            c.list_capacity as u64,
            c.ff_stack_capacity as u64,
            c.scan_cycles_per_element,
            c.scan_cycles_per_list,
            c.spare_entries as u64,
            c.ladder_rescans as u64,
            c.ladder_cpu_fallback as u64,
            c.hot_path as u64,
        ] {
            h = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
        }
        h
    }

    fn idle_at(&self) -> u64 {
        CollisionUnit::idle_at(self)
    }
}

/// The software oracle has no per-tile state or timing: workers copy
/// the fragments out and the merge replays them into the shared
/// pixel map in tile order (its results are order-insensitive anyway).
impl ParallelCollision for OracleUnit {
    type Worker = ();
    type TileOut = Vec<CollisionFragment>;

    fn make_worker(&self) -> Self::Worker {}

    fn process_tile(
        _worker: &mut Self::Worker,
        _tile: TileCoord,
        frags: &[CollisionFragment],
    ) -> Self::TileOut {
        frags.to_vec()
    }

    fn next_free(&self) -> u64 {
        0
    }

    fn merge_tile(&mut self, _tile: TileCoord, out: Self::TileOut, _start: u64, _end: u64) {
        for frag in out {
            self.add_fragment(frag);
        }
    }

    fn idle_at(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_gpu::{Facing, ObjectId};

    fn frag(x: u32, y: u32, z: f32, id: u16, facing: Facing) -> CollisionFragment {
        CollisionFragment { x, y, z, object: ObjectId::new(id), facing }
    }

    fn tile_frags(tile: TileCoord, tile_size: u32) -> Vec<CollisionFragment> {
        let (bx, by) = (tile.x * tile_size, tile.y * tile_size);
        vec![
            frag(bx + 3, by + 4, 0.10, 1, Facing::Front),
            frag(bx + 3, by + 4, 0.20, 2, Facing::Front),
            frag(bx + 3, by + 4, 0.30, 1, Facing::Back),
            frag(bx + 3, by + 4, 0.40, 2, Facing::Back),
            frag(bx + 9, by + 1, 0.50, 1, Facing::Front),
            frag(bx + 9, by + 1, 0.60, 1, Facing::Back),
        ]
    }

    /// Worker + ordered merge == sequential begin/insert/finish, to the
    /// bit: contacts (and order), stats, and timing state.
    #[test]
    fn worker_merge_matches_sequential_unit() {
        let config = RbcdConfig::default();
        let tiles = [
            TileCoord { x: 0, y: 0 },
            TileCoord { x: 1, y: 0 },
            TileCoord { x: 3, y: 2 },
        ];
        // Sequential reference, with a cursor mimicking the simulator's.
        let mut seq = RbcdUnit::new(config, 16).unwrap();
        let mut cursor = 0u64;
        let mut seq_bounds = Vec::new();
        for tile in tiles {
            let start = cursor.max(CollisionUnit::next_free(&seq));
            seq.begin_tile(tile, start);
            for f in tile_frags(tile, 16) {
                seq.insert(f);
            }
            let end = start + 40;
            seq.finish_tile(end);
            seq_bounds.push((start, end));
            cursor = end;
        }

        // Parallel path: one worker computes, the unit merges in order.
        let mut par = RbcdUnit::new(config, 16).unwrap();
        let mut worker = <RbcdUnit as ParallelCollision>::make_worker(&par);
        let outs: Vec<TileCollisions> = tiles
            .iter()
            .map(|&tile| worker.process_tile(tile, &tile_frags(tile, 16)))
            .collect();
        let mut cursor = 0u64;
        for (&tile, out) in tiles.iter().zip(outs) {
            let start = cursor.max(ParallelCollision::next_free(&par));
            let end = start + 40;
            ParallelCollision::merge_tile(&mut par, tile, out, start, end);
            cursor = end;
        }

        assert_eq!(seq.contacts(), par.contacts());
        assert_eq!(seq.stats(), par.stats());
        assert_eq!(
            CollisionUnit::next_free(&seq),
            ParallelCollision::next_free(&par)
        );
        assert_eq!(CollisionUnit::idle_at(&seq), ParallelCollision::idle_at(&par));
        // And the dispatch bounds that drove both timelines agree.
        assert_eq!(seq_bounds.len(), tiles.len());
    }

    /// With tile logging enabled, the sequential and merge paths log
    /// identical per-tile records (same deltas, same timing brackets),
    /// and logging changes no result.
    #[test]
    fn tile_logs_match_between_sequential_and_merge() {
        let config = RbcdConfig::default();
        let tiles = [TileCoord { x: 0, y: 0 }, TileCoord { x: 2, y: 1 }];

        let mut seq = RbcdUnit::new(config, 16).unwrap();
        seq.set_tile_logging(true);
        let mut cursor = 0u64;
        for tile in tiles {
            let start = cursor.max(CollisionUnit::next_free(&seq));
            seq.begin_tile(tile, start);
            for f in tile_frags(tile, 16) {
                seq.insert(f);
            }
            let end = start + 40;
            seq.finish_tile(end);
            cursor = end;
        }

        let mut par = RbcdUnit::new(config, 16).unwrap();
        par.set_tile_logging(true);
        let mut worker = <RbcdUnit as ParallelCollision>::make_worker(&par);
        let mut cursor = 0u64;
        for &tile in &tiles {
            let out = worker.process_tile(tile, &tile_frags(tile, 16));
            let start = cursor.max(ParallelCollision::next_free(&par));
            let end = start + 40;
            ParallelCollision::merge_tile(&mut par, tile, out, start, end);
            cursor = end;
        }

        let seq_log = seq.take_tile_records();
        let par_log = par.take_tile_records();
        assert_eq!(seq_log.len(), tiles.len());
        assert_eq!(seq_log, par_log);
        assert!(seq_log.iter().all(|r| r.insertions > 0 && r.scan_end > r.scan_start));
        // Drained: a second take is empty, stats untouched by logging.
        assert!(seq.take_tile_records().is_empty());
        assert_eq!(seq.stats(), par.stats());
    }

    /// Replaying a cached tile accumulates the same contacts and event
    /// counters a merge would, but claims no ZEB and advances no timing
    /// state — the hardware never ran.
    #[test]
    fn replay_accumulates_results_without_touching_timing() {
        let config = RbcdConfig::default();
        let tile = TileCoord { x: 0, y: 0 };
        let mut worker = ZebTileWorker::new(config, 16);
        let out = worker.process_tile(tile, &tile_frags(tile, 16));

        let mut merged = RbcdUnit::new(config, 16).unwrap();
        ParallelCollision::merge_tile(&mut merged, tile, out.clone(), 0, 40);

        let mut replayed = RbcdUnit::new(config, 16).unwrap();
        replayed.set_tile_logging(true);
        ParallelCollision::replay_tile(&mut replayed, tile, out, 0, 40);

        assert_eq!(merged.contacts(), replayed.contacts());
        assert_eq!(merged.stats(), replayed.stats());
        assert!(ParallelCollision::idle_at(&merged) > 0, "merge occupies the scan unit");
        assert_eq!(ParallelCollision::idle_at(&replayed), 0, "replay must not");
        assert_eq!(ParallelCollision::next_free(&replayed), 0);
        let log = replayed.take_tile_records();
        assert_eq!(log.len(), 1, "replayed tiles still log for observability");
        assert!(log[0].scan_end > log[0].scan_start);
    }

    /// Two units with different configurations must never share cached
    /// tile results.
    #[test]
    fn coherence_key_tracks_the_whole_config() {
        let base = RbcdUnit::new(RbcdConfig::default(), 16).unwrap();
        let key = ParallelCollision::coherence_key(&base);
        assert_eq!(key, ParallelCollision::coherence_key(&base));
        for other in [
            RbcdConfig { zeb_count: 1, ..RbcdConfig::default() },
            RbcdConfig { list_capacity: 4, ..RbcdConfig::default() },
            RbcdConfig { spare_entries: 64, ..RbcdConfig::default() },
            RbcdConfig { ladder_rescans: 2, ..RbcdConfig::default() },
            RbcdConfig { ladder_cpu_fallback: true, ..RbcdConfig::default() },
            RbcdConfig { hot_path: rbcd_gpu::HotPathMode::Reference, ..RbcdConfig::default() },
        ] {
            let unit = RbcdUnit::new(other, 16).unwrap();
            assert_ne!(key, ParallelCollision::coherence_key(&unit), "{other:?}");
        }
    }

    /// A worker's ZEB is clean after every tile, so reuse across many
    /// tiles cannot leak state.
    #[test]
    fn worker_is_reusable_across_tiles() {
        let mut worker = ZebTileWorker::new(RbcdConfig::default(), 16);
        let tile = TileCoord { x: 0, y: 0 };
        let first = worker.process_tile(tile, &tile_frags(tile, 16));
        let second = worker.process_tile(tile, &tile_frags(tile, 16));
        assert_eq!(first.contacts, second.contacts);
        assert_eq!(first.stats, second.stats);
    }

    /// Workers must be shippable to threads.
    #[test]
    fn worker_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ZebTileWorker>();
        assert_send::<TileCollisions>();
    }
}
