//! The Z-overlap test (Figures 5 and 6).
//!
//! Once a tile's fragments are stored, the unit reads each ZEB list into
//! the List-Register and traverses it front-to-back against the
//! **FF-Stack** — a small table of `(object-id, matched)` entries:
//!
//! * a **front face** pushes its id with `matched = 0`;
//! * a **back face** searches the stack for the *bottommost* unmatched
//!   entry with its own id (`Idm`); every entry **above** `Idm` —
//!   regardless of its matched bit — lies inside the `(Idm, Idcur)`
//!   depth interval, so a collision `<Idi, Idcur>` is reported for each;
//!   `Idm`'s matched bit is then set (elements are tagged rather than
//!   popped, which both simplifies the hardware and lets later back
//!   faces still detect overlaps against them).
//!
//! Collisions surface in exactly the paper's cases 2–5 and never in the
//! disjoint cases 1/6 — see the table-driven tests below.

use crate::element::ZebElement;
use crate::error::RbcdError;
use crate::stats::RbcdStats;
use rbcd_gpu::ObjectId;

/// One FF-Stack entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FfEntry {
    id: ObjectId,
    matched: bool,
}

/// The front-face stack of the Z-overlap hardware (Figure 6).
#[derive(Debug, Clone)]
pub struct FfStack {
    entries: Vec<FfEntry>,
    capacity: usize,
    /// Pushes dropped because the stack was full.
    pub dropped: u64,
}

impl FfStack {
    /// Creates a stack with room for `capacity` front faces (the paper's
    /// `T`).
    ///
    /// # Errors
    ///
    /// Returns [`RbcdError::ZeroStackCapacity`] if `capacity == 0`.
    pub fn new(capacity: usize) -> Result<Self, RbcdError> {
        if capacity == 0 {
            return Err(RbcdError::ZeroStackCapacity);
        }
        Ok(Self { entries: Vec::with_capacity(capacity), capacity, dropped: 0 })
    }

    /// The stack's capacity (the paper's `T`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears the stack for the next list.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    fn push(&mut self, id: ObjectId) {
        if self.entries.len() < self.capacity {
            self.entries.push(FfEntry { id, matched: false });
        } else {
            self.dropped += 1;
        }
    }

    /// Handles a back face: finds the bottommost unmatched `id`, reports
    /// every entry above it through `hit`, and marks it matched.
    /// Returns `true` when a matching front face existed.
    fn match_back(&mut self, id: ObjectId, mut hit: impl FnMut(ObjectId)) -> bool {
        let Some(m) = self
            .entries
            .iter()
            .position(|e| e.id == id && !e.matched)
        else {
            return false;
        };
        for e in &self.entries[m + 1..] {
            hit(e.id);
        }
        self.entries[m].matched = true;
        true
    }
}

/// Result of scanning one pixel list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Colliding pairs `(other, current-back-face)` in detection order,
    /// with the quantized depth of the detecting back face.
    pub hits: Vec<(ObjectId, ObjectId, u16)>,
    /// Back faces with no unmatched front face on the stack (clipped or
    /// overflow-truncated geometry).
    pub unmatched_backs: u64,
}

/// Scans one front-to-back sorted list with the FF-Stack algorithm,
/// charging hardware events to `stats` and reporting each colliding
/// pair `(other, current-back-face, depth)` through `hit`.
///
/// Self-pairs (an object overlapping its own depth layers) are filtered
/// at the Pair-Generation stage, as only inter-object collisions are
/// reported to the CPU. Returns the number of unmatched back faces.
///
/// Per-element event counts are accumulated in locals and added to
/// `stats` once per list; the u64 sums are identical either way.
pub fn scan_list_with(
    list: &[ZebElement],
    stack: &mut FfStack,
    stats: &mut RbcdStats,
    mut hit: impl FnMut(ObjectId, ObjectId, u16),
) -> u64 {
    stack.clear();
    stats.lists_scanned += 1;
    stats.zeb_list_reads += 1;
    stats.elements_scanned += list.len() as u64;
    stats.register_ops += list.len() as u64;
    let mut eq_comparisons = 0u64;
    let mut priority_encodes = 0u64;
    let mut pairs_emitted = 0u64;
    let mut unmatched_backs = 0u64;

    for e in list {
        if e.is_front() {
            stack.push(e.object);
        } else {
            // The EQ comparators examine every stack entry in parallel;
            // the priority encoder picks the bottommost match.
            eq_comparisons += stack.entries.len() as u64;
            priority_encodes += 1;
            let matched = stack.match_back(e.object, |other| {
                if other != e.object {
                    pairs_emitted += 1;
                    hit(other, e.object, e.z);
                }
            });
            if !matched {
                unmatched_backs += 1;
            }
        }
    }
    stats.eq_comparisons += eq_comparisons;
    stats.priority_encodes += priority_encodes;
    stats.pairs_emitted += pairs_emitted;
    stats.unmatched_backs += unmatched_backs;
    unmatched_backs
}

/// [`scan_list_with`] collecting the hits into an owned [`ScanOutcome`].
pub fn scan_list(list: &[ZebElement], stack: &mut FfStack, stats: &mut RbcdStats) -> ScanOutcome {
    let mut out = ScanOutcome::default();
    out.unmatched_backs =
        scan_list_with(list, stack, stats, |a, b, z| out.hits.push((a, b, z)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_gpu::Facing;

    const A: u16 = 1;
    const B: u16 = 2;

    /// Builds a list from a compact notation: `(id, '[')` = front face,
    /// `(id, ']')` = back face; depth increases left to right.
    fn list(spec: &[(u16, char)]) -> Vec<ZebElement> {
        spec.iter()
            .enumerate()
            .map(|(i, &(id, c))| {
                let facing = if c == '[' { Facing::Front } else { Facing::Back };
                ZebElement::new(i as f32 / 16.0, ObjectId::new(id), facing)
            })
            .collect()
    }

    fn pairs(spec: &[(u16, char)]) -> Vec<(u16, u16)> {
        let mut stack = FfStack::new(8).unwrap();
        let mut stats = RbcdStats::default();
        scan_list(&list(spec), &mut stack, &mut stats)
            .hits
            .iter()
            .map(|&(a, b, _)| (a.get(), b.get()))
            .collect()
    }

    #[test]
    fn figure5_case1_disjoint() {
        // [A ]A [B ]B — no collision.
        assert!(pairs(&[(A, '['), (A, ']'), (B, '['), (B, ']')]).is_empty());
    }

    #[test]
    fn figure5_case2_straddling() {
        // [A [B ]A ]B — collision reported at ]A.
        assert_eq!(pairs(&[(A, '['), (B, '['), (A, ']'), (B, ']')]), vec![(B, A)]);
    }

    #[test]
    fn figure5_case3_contained() {
        // [A [B ]B ]A — collision reported at ]A (B is above A's match,
        // matched bit notwithstanding).
        assert_eq!(pairs(&[(A, '['), (B, '['), (B, ']'), (A, ']')]), vec![(B, A)]);
    }

    #[test]
    fn figure5_case4_contained_swapped() {
        // [B [A ]A ]B — same as case 3 with A and B interchanged.
        assert_eq!(pairs(&[(B, '['), (A, '['), (A, ']'), (B, ']')]), vec![(A, B)]);
    }

    #[test]
    fn figure5_case5_straddling_swapped() {
        // [B [A ]B ]A — same as case 2 swapped.
        assert_eq!(pairs(&[(B, '['), (A, '['), (B, ']'), (A, ']')]), vec![(A, B)]);
    }

    #[test]
    fn figure5_case6_disjoint_swapped() {
        // [B ]B [A ]A — no collision.
        assert!(pairs(&[(B, '['), (B, ']'), (A, '['), (A, ']')]).is_empty());
    }

    #[test]
    fn three_way_overlap_reports_all_pairs() {
        const C: u16 = 3;
        // [A [B [C ]A ]B ]C: at ]A → (B,A), (C,A); at ]B → (C,B).
        let got = pairs(&[(A, '['), (B, '['), (C, '['), (A, ']'), (B, ']'), (C, ']')]);
        assert_eq!(got, vec![(B, A), (C, A), (C, B)]);
    }

    #[test]
    fn multiple_layers_of_same_object_no_self_pair() {
        // Two nested shells of A: no pair is emitted for A with itself.
        assert!(pairs(&[(A, '['), (A, '['), (A, ']'), (A, ']')]).is_empty());
    }

    #[test]
    fn repeated_contact_through_matched_entries() {
        // [A [B ]A ]B followed by another B shell inside A's residue is
        // impossible in a sorted list, but a second object C exiting
        // later must still see A's matched entry:
        // [A [C ]A ]C — C's exit pairs with nothing above A... use the
        // canonical example instead: [A [B ]B ]A [?]. Matched entries
        // must still produce hits for later back faces above their match.
        const C: u16 = 3;
        // [A [B ]B [C ]C ]A → at ]C nothing above C; at ]A: B and C are
        // above A (both matched) → (B,A), (C,A).
        let got = pairs(&[(A, '['), (B, '['), (B, ']'), (C, '['), (C, ']'), (A, ']')]);
        assert_eq!(got, vec![(B, A), (C, A)]);
    }

    #[test]
    fn unmatched_back_face_is_counted() {
        let mut stack = FfStack::new(8).unwrap();
        let mut stats = RbcdStats::default();
        let out = scan_list(&list(&[(A, ']')]), &mut stack, &mut stats);
        assert!(out.hits.is_empty());
        assert_eq!(out.unmatched_backs, 1);
    }

    #[test]
    fn stack_overflow_drops_pushes() {
        let mut stack = FfStack::new(2).unwrap();
        let mut stats = RbcdStats::default();
        let spec: Vec<(u16, char)> = (1..=4).map(|i| (i as u16, '[')).collect();
        scan_list(&list(&spec), &mut stack, &mut stats);
        assert_eq!(stack.dropped, 2);
    }

    #[test]
    fn empty_list_scans_cleanly() {
        let mut stack = FfStack::new(8).unwrap();
        let mut stats = RbcdStats::default();
        let out = scan_list(&[], &mut stack, &mut stats);
        assert!(out.hits.is_empty());
        assert_eq!(stats.elements_scanned, 0);
        assert_eq!(stats.lists_scanned, 1);
    }

    #[test]
    fn hit_depth_is_back_face_depth() {
        let l = list(&[(A, '['), (B, '['), (A, ']'), (B, ']')]);
        let mut stack = FfStack::new(8).unwrap();
        let mut stats = RbcdStats::default();
        let out = scan_list(&l, &mut stack, &mut stats);
        assert_eq!(out.hits.len(), 1);
        // The detecting back face ]A is the third element (depth 2/16).
        assert_eq!(out.hits[0].2, l[2].z);
    }
}
