//! The multi-session batch scheduler: many scenes, one worker pool.
//!
//! The paper's RBCD unit is a *shared* accelerator: the host submits
//! render-based collision queries for whole scenes, and the unit serves
//! them. This module grows that framing from "a simulator you
//! construct" to "a service you submit to":
//!
//! * [`SessionSpec`] — one query stream: a named motion clip (frame
//!   traces), its GPU/RBCD configuration, a
//!   [`FramePolicy`], an optional
//!   [`FaultPlan`], and a start round for
//!   staggered arrival.
//! * [`Scheduler`] — bounded admission ([`Scheduler::submit`], typed
//!   [`AdmissionError`] rejection) plus the round-based run loop
//!   ([`Scheduler::run`]): each round renders the next frame of every
//!   live session as one batch over a single shared scoped-thread pool
//!   (`rbcd_gpu::render_batch`), interleaving all sessions' tiles on
//!   one work list.
//! * [`SessionReport`] — per-session results: frame statistics,
//!   contacts, escalations, governor reports, fault accounting, and an
//!   optional structured trace.
//!
//! # Determinism contract
//!
//! Every session's simulator, collision unit, coherence cache, governor
//! timeline, and tracer are session-private; the only shared resource
//! is host CPU time. The batch service's compute phase is order-free
//! and its plan/merge phases run per session in submission order, so a
//! session's [`SessionReport::artifact`] is **bit-identical to running
//! that session alone** — at any worker count, under any co-tenant mix,
//! any admission stagger, any fault plan. Scheduling metadata (rounds)
//! is reported *outside* the artifact: when a session starts is the
//! scheduler's business, what it computes is not.
//!
//! # Accounting
//!
//! The scheduler keeps a strict admission [`Ledger`]:
//! `submitted == admitted + rejected` and, once [`Scheduler::run`]
//! returns, `admitted == completed + shed`. Any violation
//! ([`Ledger::leak_free`] returning `false`) means a session was lost
//! without being accounted for — the one unforgivable service bug.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use rbcd_gpu::{
    BatchJob, FramePolicy, FrameTrace, GovernorFrameReport, GpuConfig, GpuConfigError, ObjectId,
    PipelineMode, ServiceError, Simulator, SimulatorBuilder,
};

use crate::faults::{FaultLog, FaultPlan};
use crate::stats::RbcdStats;
use crate::unit::{ContactPoint, RbcdConfig, RbcdUnit};
use crate::RbcdError;

/// Opaque handle naming an admitted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[must_use = "a session id is the only handle to the admitted session's report"]
pub struct SessionId(u32);

impl SessionId {
    /// Position of this session's report in [`Scheduler::run`]'s output.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// A rejected submission, naming why admission control refused it.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "an admission error reports a rejected session and must be handled"]
#[non_exhaustive]
pub enum AdmissionError {
    /// The bounded admission queue is full; retry after a drain.
    QueueFull {
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The session's motion clip has no frames — nothing to serve.
    EmptyClip,
    /// The session's GPU configuration failed validation.
    Config(GpuConfigError),
    /// The session's RBCD configuration failed validation.
    Unit(RbcdError),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            AdmissionError::EmptyClip => write!(f, "session has an empty motion clip"),
            AdmissionError::Config(e) => write!(f, "rejected GPU configuration: {e}"),
            AdmissionError::Unit(e) => write!(f, "rejected RBCD configuration: {e}"),
        }
    }
}

impl Error for AdmissionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AdmissionError::Config(e) => Some(e),
            AdmissionError::Unit(e) => Some(e),
            _ => None,
        }
    }
}

/// One session submission: a named motion clip plus everything needed
/// to serve it — configurations, execution policy, optional fault
/// injection, and an arrival stagger.
#[derive(Debug, Clone)]
#[must_use = "a SessionSpec does nothing until submitted to a Scheduler"]
pub struct SessionSpec {
    /// Session name (reporting / counter-namespacing key).
    pub name: String,
    /// The motion clip: one [`FrameTrace`] per frame, served in order.
    pub frames: Vec<FrameTrace>,
    /// GPU configuration for this session's private simulator.
    pub gpu: GpuConfig,
    /// RBCD-unit configuration. The unit's hot path follows the
    /// effective GPU hot path (policy override or `gpu.hot_path`), so
    /// one knob switches the whole session's pipeline.
    pub rbcd: RbcdConfig,
    /// Execution policy (reuse, tracing, governor, hot path). The
    /// policy's `workers` field is ignored here: the scheduler's shared
    /// pool is sized once for all sessions.
    pub policy: FramePolicy,
    /// Optional fault-injection plan, applied to each frame's trace
    /// (and once to the RBCD configuration) before rendering.
    pub faults: Option<FaultPlan>,
    /// First scheduler round in which this session renders — staggered
    /// arrival. Scheduling metadata only: it never changes the
    /// session's artifact.
    pub start_round: usize,
    /// Pipeline arrangement for every frame of the session.
    pub mode: PipelineMode,
}

impl SessionSpec {
    /// A session serving `frames` under default configurations: RBCD
    /// pipeline mode, default GPU/RBCD configs, default policy, no
    /// faults, arrival at round 0.
    pub fn new(name: impl Into<String>, frames: Vec<FrameTrace>) -> Self {
        Self {
            name: name.into(),
            frames,
            gpu: GpuConfig::default(),
            rbcd: RbcdConfig::default(),
            policy: FramePolicy::default(),
            faults: None,
            start_round: 0,
            mode: PipelineMode::Rbcd,
        }
    }

    /// Sets the GPU configuration.
    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = gpu;
        self
    }

    /// Sets the RBCD-unit configuration.
    pub fn with_rbcd(mut self, rbcd: RbcdConfig) -> Self {
        self.rbcd = rbcd;
        self
    }

    /// Sets the execution policy.
    pub fn with_policy(mut self, policy: FramePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a fault-injection plan.
    pub fn with_faults(mut self, faults: Option<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the arrival round (staggered admission).
    pub fn with_start_round(mut self, round: usize) -> Self {
        self.start_round = round;
        self
    }

    /// Sets the pipeline arrangement.
    pub fn with_mode(mut self, mode: PipelineMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Strict admission accounting. Leak-free service requires
/// `submitted == admitted + rejected` at all times and
/// `admitted == completed + shed` once the run loop drains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Sessions ever offered to [`Scheduler::submit`].
    pub submitted: u64,
    /// Sessions admitted to the queue.
    pub admitted: u64,
    /// Sessions refused with a typed [`AdmissionError`].
    pub rejected: u64,
    /// Admitted sessions that served every frame of their clip.
    pub completed: u64,
    /// Admitted sessions evicted before completion. The current
    /// scheduler never evicts, so any non-zero value is a leak.
    pub shed: u64,
}

impl Ledger {
    /// The leak-free identity: every submission is accounted for
    /// exactly once.
    pub fn leak_free(&self) -> bool {
        self.submitted == self.admitted + self.rejected
            && self.admitted == self.completed + self.shed
    }
}

/// One admitted session's private state across rounds.
struct Slot {
    name: String,
    frames: Vec<FrameTrace>,
    sim: Simulator,
    unit: RbcdUnit,
    faults: Option<FaultPlan>,
    traced: bool,
    start_round: usize,
    mode: PipelineMode,
    /// Next frame to serve.
    cursor: usize,
    frame_stats: Vec<rbcd_gpu::FrameStats>,
    contacts: Vec<Vec<ContactPoint>>,
    escalated: BTreeSet<ObjectId>,
    governor: Vec<Option<GovernorFrameReport>>,
    fault_log: FaultLog,
    completed_round: Option<usize>,
}

/// Everything one session produced, merged on its own sequential
/// timeline.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a session report carries the session's only copy of its results"]
pub struct SessionReport {
    /// The admitted session's handle.
    pub id: SessionId,
    /// The session's name, as submitted.
    pub name: String,
    /// Per-frame pipeline statistics, in frame order.
    pub frames: Vec<rbcd_gpu::FrameStats>,
    /// Per-frame contact points, in frame order (emission order within
    /// a frame).
    pub contacts: Vec<Vec<ContactPoint>>,
    /// Objects the degradation ladder escalated to the CPU path, over
    /// the whole clip.
    pub escalated: BTreeSet<ObjectId>,
    /// Per-frame governor reports (`None` for ungoverned frames).
    pub governor: Vec<Option<GovernorFrameReport>>,
    /// The session's final RBCD-unit counters.
    pub rbcd: RbcdStats,
    /// Injected-fault accounting over the whole clip.
    pub faults: FaultLog,
    /// Chrome-trace JSON when the session's policy enabled tracing.
    pub trace_json: Option<String>,
    /// Round in which the session's first frame rendered (scheduling
    /// metadata: excluded from [`SessionReport::artifact`]).
    pub start_round: usize,
    /// Round in which the session's last frame rendered (scheduling
    /// metadata: excluded from [`SessionReport::artifact`]).
    pub completed_round: Option<usize>,
}

impl SessionReport {
    /// The session's deterministic result artifact: a rendering of
    /// everything the session *computed* — per-frame statistics,
    /// contacts, escalations, governor reports, RBCD counters, fault
    /// accounting, and the structured trace — excluding scheduling
    /// metadata (rounds). Two runs of the same [`SessionSpec`] must
    /// produce byte-identical artifacts regardless of worker count,
    /// co-tenants, or arrival stagger; the `session_isolation` property
    /// test and `repro serve` both enforce equality on this string.
    pub fn artifact(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name: {}\n", self.name));
        for (f, stats) in self.frames.iter().enumerate() {
            out.push_str(&format!("frame {f}: {stats:?}\n"));
            if let Some(contacts) = self.contacts.get(f) {
                out.push_str(&format!("contacts {f}: {contacts:?}\n"));
            }
            if let Some(gov) = self.governor.get(f) {
                out.push_str(&format!("governor {f}: {gov:?}\n"));
            }
        }
        out.push_str(&format!("escalated: {:?}\n", self.escalated));
        out.push_str(&format!("rbcd: {:?}\n", self.rbcd));
        out.push_str(&format!("faults: {:?}\n", self.faults));
        if let Some(trace) = &self.trace_json {
            out.push_str("trace:\n");
            out.push_str(trace);
            out.push('\n');
        }
        out
    }

    /// Total simulated cycles across the session's frames.
    pub fn total_cycles(&self) -> u64 {
        self.frames.iter().map(|f| f.total_cycles()).sum()
    }

    /// All distinct colliding pairs reported over the clip.
    pub fn pairs(&self) -> BTreeSet<(ObjectId, ObjectId)> {
        self.contacts.iter().flatten().map(|c| c.pair()).collect()
    }
}

/// The multi-session batch scheduler: a bounded admission queue in
/// front of one shared worker pool.
///
/// ```
/// use rbcd_core::sched::{Scheduler, SessionSpec};
/// use rbcd_gpu::{Camera, DrawCommand, FramePolicy, FrameTrace, GpuConfig, ObjectId};
/// use rbcd_geometry::shapes;
/// use rbcd_math::{Mat4, Vec3, Viewport};
///
/// let camera = Camera::perspective(Vec3::new(0.0, 0.0, 6.0), Vec3::ZERO, 1.0, 0.1, 100.0);
/// let a = DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1));
/// let b = DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(2))
///     .with_model(Mat4::translation(Vec3::new(0.8, 0.0, 0.0)));
/// let clip = vec![FrameTrace::new(camera, vec![a, b]); 2];
///
/// let mut sched = Scheduler::new(2, 4);
/// let gpu = GpuConfig { viewport: Viewport::new(96, 96), ..GpuConfig::default() };
/// let id = sched
///     .submit(
///         SessionSpec::new("touching-cubes", clip)
///             .with_gpu(gpu)
///             .with_policy(FramePolicy::new().with_reuse(true)),
///     )
///     .expect("the queue has room");
/// let reports = sched.run().expect("no worker panics");
/// assert!(reports[id.index()].pairs().contains(&(ObjectId::new(1), ObjectId::new(2))));
/// ```
#[must_use = "a Scheduler does nothing until sessions are submitted and run"]
pub struct Scheduler {
    workers: usize,
    capacity: usize,
    slots: Vec<Slot>,
    ledger: Ledger,
}

impl Scheduler {
    /// A scheduler whose pool has `workers` threads and whose admission
    /// queue holds at most `capacity` sessions. Both clamp to ≥ 1.
    pub fn new(workers: usize, capacity: usize) -> Self {
        Self {
            workers: workers.max(1),
            capacity: capacity.max(1),
            slots: Vec::new(),
            ledger: Ledger::default(),
        }
    }

    /// The admission ledger so far.
    pub fn ledger(&self) -> Ledger {
        self.ledger
    }

    /// Sessions currently admitted and waiting to run.
    pub fn queued(&self) -> usize {
        self.slots.len()
    }

    /// Admission control: validates the spec, constructs the session's
    /// private simulator and RBCD unit, and enqueues it.
    ///
    /// # Errors
    ///
    /// Returns a typed [`AdmissionError`] — and counts the rejection in
    /// the ledger — when the queue is full, the clip is empty, or
    /// either configuration fails validation. A rejected spec leaves
    /// the scheduler unchanged.
    pub fn submit(&mut self, spec: SessionSpec) -> Result<SessionId, AdmissionError> {
        self.ledger.submitted += 1;
        match self.admit(spec) {
            Ok(slot) => {
                self.ledger.admitted += 1;
                self.slots.push(slot);
                Ok(SessionId(self.slots.len() as u32 - 1))
            }
            Err(e) => {
                self.ledger.rejected += 1;
                Err(e)
            }
        }
    }

    fn admit(&self, spec: SessionSpec) -> Result<Slot, AdmissionError> {
        if self.slots.len() >= self.capacity {
            return Err(AdmissionError::QueueFull { capacity: self.capacity });
        }
        if spec.frames.is_empty() {
            return Err(AdmissionError::EmptyClip);
        }
        let sim = SimulatorBuilder::from_config(spec.gpu.clone())
            .policy(spec.policy)
            .build()
            .map_err(AdmissionError::Config)?;
        // The unit's hot path follows the simulator's effective one, so
        // one policy knob switches the whole session's pipeline.
        let mut rbcd = RbcdConfig {
            hot_path: spec.policy.hot_path.unwrap_or(spec.gpu.hot_path),
            ..spec.rbcd
        };
        if let Some(plan) = &spec.faults {
            rbcd = plan.apply_rbcd(rbcd);
        }
        let mut unit =
            RbcdUnit::new(rbcd, spec.gpu.tile_size).map_err(AdmissionError::Unit)?;
        unit.set_tile_logging(spec.policy.tracing);
        Ok(Slot {
            name: spec.name,
            frames: spec.frames,
            sim,
            unit,
            faults: spec.faults,
            traced: spec.policy.tracing,
            start_round: spec.start_round,
            mode: spec.mode,
            cursor: 0,
            frame_stats: Vec::new(),
            contacts: Vec::new(),
            escalated: BTreeSet::new(),
            governor: Vec::new(),
            fault_log: FaultLog::default(),
            completed_round: None,
        })
    }

    /// Serves every admitted session to completion and drains the
    /// queue, returning per-session reports indexed by [`SessionId`].
    ///
    /// Each round batches the next frame of every live session (one
    /// whose clip is unfinished and whose `start_round` has arrived)
    /// through `rbcd_gpu::render_batch` on the shared pool; a session
    /// joining at round R simply sits out rounds 0..R.
    ///
    /// # Errors
    ///
    /// Propagates [`ServiceError`] from the batch service (a panicked
    /// pool worker). The queue is left drained; the sessions' partial
    /// results are discarded and counted as shed.
    pub fn run(&mut self) -> Result<Vec<SessionReport>, ServiceError> {
        let mut round = 0usize;
        while self.slots.iter().any(|s| s.cursor < s.frames.len()) {
            if let Err(e) = self.run_round(round) {
                // Account every unfinished session as shed before
                // surfacing the failure: the ledger must stay leak-free
                // even on the error path.
                for slot in self.slots.drain(..) {
                    if slot.completed_round.is_some() {
                        self.ledger.completed += 1;
                    } else {
                        self.ledger.shed += 1;
                    }
                }
                return Err(e);
            }
            round += 1;
        }
        self.ledger.completed += self.slots.len() as u64;
        let reports = self
            .slots
            .drain(..)
            .enumerate()
            .map(|(i, mut slot)| SessionReport {
                id: SessionId(i as u32),
                name: slot.name,
                frames: slot.frame_stats,
                contacts: slot.contacts,
                escalated: slot.escalated,
                governor: slot.governor,
                rbcd: *slot.unit.stats(),
                faults: slot.fault_log,
                trace_json: slot.sim.take_trace().map(|t| t.to_chrome_json()),
                start_round: slot.start_round,
                completed_round: slot.completed_round,
            })
            .collect();
        Ok(reports)
    }

    /// One scheduler round: batch the next frame of every live session.
    fn run_round(&mut self, round: usize) -> Result<(), ServiceError> {
        let live = |slot: &Slot| slot.cursor < slot.frames.len() && round >= slot.start_round;

        // Fault injection first (immutable pass): corrupted traces are
        // owned here so the batch jobs can borrow them alongside the
        // sessions' mutable state.
        let faulted: Vec<Option<(FrameTrace, FaultLog)>> = self
            .slots
            .iter()
            .map(|slot| {
                if !live(slot) {
                    return None;
                }
                slot.faults
                    .as_ref()
                    .map(|plan| plan.apply(&slot.frames[slot.cursor], slot.cursor as u64))
            })
            .collect();

        // Build one batch job per live session; disjoint-field borrows
        // let each job hold `&mut sim`, `&mut unit`, and `&frames[..]`
        // from the same slot.
        let mut jobs: Vec<BatchJob<'_, RbcdUnit>> = Vec::new();
        let mut live_idx: Vec<usize> = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if !live(slot) {
                continue;
            }
            let Slot { frames, sim, unit, cursor, mode, .. } = slot;
            unit.new_frame();
            let trace = match &faulted[i] {
                Some((t, _)) => t,
                None => &frames[*cursor],
            };
            jobs.push(BatchJob { sim, backend: unit, trace, mode: *mode });
            live_idx.push(i);
        }
        let stats = rbcd_gpu::render_batch(&mut jobs, self.workers)?;
        drop(jobs);

        // Merge each live session's frame results on its own timeline.
        for (j, &i) in live_idx.iter().enumerate() {
            let slot = &mut self.slots[i];
            if let Some((_, log)) = &faulted[i] {
                slot.fault_log.accumulate(log);
            }
            if slot.traced {
                let records = slot.unit.take_tile_records();
                slot.sim.record_collision_tiles(&records);
            }
            slot.frame_stats.push(stats[j]);
            slot.contacts.push(slot.unit.take_contacts());
            slot.escalated.append(&mut slot.unit.take_escalated());
            slot.governor.push(slot.sim.take_governor_report());
            slot.cursor += 1;
            if slot.cursor == slot.frames.len() {
                slot.completed_round = Some(round);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_geometry::shapes;
    use rbcd_gpu::{Camera, DrawCommand};
    use rbcd_math::{Mat4, Vec3, Viewport};

    fn clip(shift: f32, frames: usize) -> Vec<FrameTrace> {
        let camera = Camera::perspective(Vec3::new(0.0, 1.0, 7.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        (0..frames)
            .map(|f| {
                let x = shift + 0.05 * f as f32;
                FrameTrace::new(
                    camera,
                    vec![
                        DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1))
                            .with_model(Mat4::translation(Vec3::new(x, 0.0, 0.0))),
                        DrawCommand::collidable(shapes::icosphere(0.8, 2), ObjectId::new(2))
                            .with_model(Mat4::translation(Vec3::new(-x, 0.1, 0.2))),
                    ],
                )
            })
            .collect()
    }

    fn gpu(w: u32) -> GpuConfig {
        GpuConfig { viewport: Viewport::new(w, 96), ..GpuConfig::default() }
    }

    fn spec(name: &str, shift: f32, w: u32, frames: usize) -> SessionSpec {
        SessionSpec::new(name, clip(shift, frames)).with_gpu(gpu(w))
    }

    fn solo_artifact(spec: SessionSpec, workers: usize) -> String {
        let mut sched = Scheduler::new(workers, 1);
        let spec = SessionSpec { start_round: 0, ..spec };
        let id = sched.submit(spec).expect("solo queue has room");
        let reports = sched.run().expect("solo run cannot panic");
        reports[id.index()].artifact()
    }

    #[test]
    fn batched_sessions_match_solo_at_any_worker_count() {
        let specs = [
            spec("a", 0.3, 128, 3),
            spec("b", 0.9, 96, 2).with_start_round(1),
            spec("c", 0.0, 160, 3).with_policy(FramePolicy::new().with_reuse(true)),
        ];
        let solo: Vec<String> =
            specs.iter().map(|s| solo_artifact(s.clone(), 1)).collect();
        for workers in [1, 2, 4] {
            let mut sched = Scheduler::new(workers, specs.len());
            let ids: Vec<SessionId> = specs
                .iter()
                .map(|s| sched.submit(s.clone()).expect("queue sized for all"))
                .collect();
            let reports = sched.run().expect("run succeeds");
            for (j, id) in ids.iter().enumerate() {
                assert_eq!(
                    reports[id.index()].artifact(),
                    solo[j],
                    "session {j} diverged from solo at {workers} workers"
                );
            }
            assert!(sched.ledger().leak_free());
            assert_eq!(sched.ledger().completed, specs.len() as u64);
        }
    }

    #[test]
    fn admission_rejects_full_queue_and_bad_specs() {
        let mut sched = Scheduler::new(1, 1);
        assert!(matches!(
            sched.submit(SessionSpec::new("empty", Vec::new())),
            Err(AdmissionError::EmptyClip)
        ));
        assert!(sched.submit(spec("ok", 0.2, 96, 1)).is_ok());
        assert!(matches!(
            sched.submit(spec("overflow", 0.2, 96, 1)),
            Err(AdmissionError::QueueFull { capacity: 1 })
        ));
        let bad_gpu = spec("bad", 0.2, 96, 1)
            .with_gpu(GpuConfig { frequency_hz: 0, ..GpuConfig::default() });
        assert!(matches!(sched.submit(bad_gpu), Err(AdmissionError::QueueFull { .. })));
        let mut roomy = Scheduler::new(1, 8);
        let bad_gpu = spec("bad", 0.2, 96, 1)
            .with_gpu(GpuConfig { frequency_hz: 0, ..GpuConfig::default() });
        assert!(matches!(roomy.submit(bad_gpu), Err(AdmissionError::Config(_))));
        let bad_unit = spec("bad-unit", 0.2, 96, 1)
            .with_rbcd(RbcdConfig { zeb_count: 0, ..RbcdConfig::default() });
        assert!(matches!(roomy.submit(bad_unit), Err(AdmissionError::Unit(_))));
        let ledger = roomy.ledger();
        assert_eq!(ledger.submitted, 2);
        assert_eq!(ledger.rejected, 2);
        assert!(ledger.leak_free());
    }

    #[test]
    fn stagger_changes_rounds_but_not_artifacts() {
        let base = spec("s", 0.4, 128, 2);
        let immediate = solo_artifact(base.clone(), 2);
        let mut sched = Scheduler::new(2, 2);
        let id = sched
            .submit(base.with_start_round(3))
            .expect("queue has room");
        let reports = sched.run().expect("run succeeds");
        let report = &reports[id.index()];
        assert_eq!(report.artifact(), immediate);
        assert_eq!(report.completed_round, Some(4), "3 idle rounds + 2 frames");
    }

    #[test]
    fn faulted_and_governed_sessions_stay_isolated() {
        let storm = FaultPlan::preset("storm", 7).expect("storm is a known preset");
        let gov = rbcd_gpu::GovernorConfig {
            frame_budget_cycles: 20_000,
            ..rbcd_gpu::GovernorConfig::default()
        };
        let specs = [
            spec("clean", 0.3, 128, 2),
            spec("stormy", 0.5, 128, 2).with_faults(Some(storm)),
            spec("governed", 0.4, 128, 2)
                .with_policy(FramePolicy::new().with_governor(Some(gov))),
        ];
        let solo: Vec<String> =
            specs.iter().map(|s| solo_artifact(s.clone(), 2)).collect();
        let mut sched = Scheduler::new(2, specs.len());
        for s in &specs {
            let _ = sched.submit(s.clone()).expect("queue sized for all");
        }
        let reports = sched.run().expect("run succeeds");
        for (j, report) in reports.iter().enumerate() {
            assert_eq!(report.artifact(), solo[j], "session {j} not isolated");
        }
        assert!(reports[1].faults.total() > 0, "storm must inject something");
        assert!(
            reports[2].governor.iter().any(|g| g.is_some()),
            "governed session must report budgets"
        );
    }

    #[test]
    fn traced_session_artifact_is_worker_invariant() {
        let traced = spec("traced", 0.3, 96, 2)
            .with_policy(FramePolicy::new().with_tracing(true));
        let one = solo_artifact(traced.clone(), 1);
        let four = solo_artifact(traced, 4);
        assert!(one.contains("traceEvents"), "trace json must be embedded");
        assert_eq!(one, four);
    }
}
