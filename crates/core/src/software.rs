//! Software image-based collision detection (Shinya–Forgue), the
//! validation oracle for the hardware model.
//!
//! The reference follows the four-step scheme of §2.1 — project,
//! rasterize, depth-sort per pixel, detect z-range overlaps — but with
//! unbounded per-pixel lists and an interval-sweep overlap test, so it
//! has no ZEB overflow, no FF-Stack limit, and no hardware quantization
//! other than the shared depth format. When the hardware model suffers
//! no overflow, its *pair set* must equal the oracle's.

use rbcd_gpu::{CollisionFragment, CollisionUnit, Facing, ObjectId, TileCoord};
use std::collections::{BTreeSet, HashMap};

/// Per-pixel fragment record: quantized depth, owner, and orientation.
type PixelFragments = Vec<(u16, ObjectId, Facing)>;

/// A software IBCD detector that plugs into the GPU simulator in place
/// of the hardware unit. It contributes no cycles (infinitely fast) —
/// use it for correctness oracles, not timing.
#[derive(Debug, Default)]
pub struct OracleUnit {
    pixels: HashMap<(u32, u32), PixelFragments>,
}

impl OracleUnit {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fragment directly (for use without the GPU simulator).
    pub fn add_fragment(&mut self, frag: CollisionFragment) {
        let z = crate::ZebElement::quantize_depth(frag.z);
        self.pixels
            .entry((frag.x, frag.y))
            .or_default()
            .push((z, frag.object, frag.facing));
    }

    /// Runs the per-pixel interval sweep and returns the distinct
    /// colliding pairs (smaller id first).
    ///
    /// Per pixel: sort by depth; a front face opens an interval for its
    /// object and collides with every object currently open; a back face
    /// closes one. Front faces at equal depth are processed before back
    /// faces so touching ranges count as colliding — matching the
    /// FF-Stack semantics, where the back face arriving after an equal-
    /// depth front face still sees it on the stack.
    pub fn pairs(&self) -> BTreeSet<(ObjectId, ObjectId)> {
        let mut out = BTreeSet::new();
        let mut open: HashMap<ObjectId, i32> = HashMap::new();
        for list in self.pixels.values() {
            let mut sorted = list.clone();
            sorted.sort_by_key(|&(z, id, facing)| (z, facing == Facing::Back, id.get()));
            open.clear();
            for &(_, id, facing) in &sorted {
                match facing {
                    Facing::Front => {
                        for (&other, &count) in open.iter() {
                            if count > 0 && other != id {
                                let pair = if other < id { (other, id) } else { (id, other) };
                                out.insert(pair);
                            }
                        }
                        *open.entry(id).or_insert(0) += 1;
                    }
                    Facing::Back => {
                        let c = open.entry(id).or_insert(0);
                        *c = (*c - 1).max(0);
                    }
                }
            }
        }
        out
    }

    /// Like [`pairs`](Self::pairs), but sweeping only pixels whose tile
    /// (at `tile_size`) is *not* in `excluded` — the ground truth for
    /// "what a lossless detector finds outside the shed tiles". A pair
    /// visible in both a shed and a non-shed tile still counts, since at
    /// least one of its overlap pixels survives the exclusion.
    pub fn pairs_outside_tiles(
        &self,
        tile_size: u32,
        excluded: &BTreeSet<(u32, u32)>,
    ) -> BTreeSet<(ObjectId, ObjectId)> {
        let ts = tile_size.max(1);
        let mut out = BTreeSet::new();
        let mut open: HashMap<ObjectId, i32> = HashMap::new();
        for (&(x, y), list) in &self.pixels {
            if excluded.contains(&(x / ts, y / ts)) {
                continue;
            }
            let mut sorted = list.clone();
            sorted.sort_by_key(|&(z, id, facing)| (z, facing == Facing::Back, id.get()));
            open.clear();
            for &(_, id, facing) in &sorted {
                match facing {
                    Facing::Front => {
                        for (&other, &count) in open.iter() {
                            if count > 0 && other != id {
                                let pair = if other < id { (other, id) } else { (id, other) };
                                out.insert(pair);
                            }
                        }
                        *open.entry(id).or_insert(0) += 1;
                    }
                    Facing::Back => {
                        let c = open.entry(id).or_insert(0);
                        *c = (*c - 1).max(0);
                    }
                }
            }
        }
        out
    }

    /// Number of pixels holding at least one fragment.
    pub fn covered_pixels(&self) -> usize {
        self.pixels.len()
    }

    /// Clears all stored fragments.
    pub fn clear(&mut self) {
        self.pixels.clear();
    }
}

impl CollisionUnit for OracleUnit {
    fn next_free(&self) -> u64 {
        0
    }

    fn begin_tile(&mut self, _tile: TileCoord, _cycle: u64) {}

    fn insert(&mut self, frag: CollisionFragment) {
        self.add_fragment(frag);
    }

    fn finish_tile(&mut self, _cycle: u64) {}

    fn idle_at(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(x: u32, y: u32, z: f32, id: u16, facing: Facing) -> CollisionFragment {
        CollisionFragment { x, y, z, object: ObjectId::new(id), facing }
    }

    #[test]
    fn sweep_detects_straddling_ranges() {
        let mut o = OracleUnit::new();
        for f in [
            frag(0, 0, 0.1, 1, Facing::Front),
            frag(0, 0, 0.2, 2, Facing::Front),
            frag(0, 0, 0.3, 1, Facing::Back),
            frag(0, 0, 0.4, 2, Facing::Back),
        ] {
            o.add_fragment(f);
        }
        let pairs = o.pairs();
        assert_eq!(pairs.len(), 1);
        assert!(pairs.contains(&(ObjectId::new(1), ObjectId::new(2))));
    }

    #[test]
    fn sweep_ignores_disjoint_ranges() {
        let mut o = OracleUnit::new();
        for f in [
            frag(0, 0, 0.1, 1, Facing::Front),
            frag(0, 0, 0.2, 1, Facing::Back),
            frag(0, 0, 0.3, 2, Facing::Front),
            frag(0, 0, 0.4, 2, Facing::Back),
        ] {
            o.add_fragment(f);
        }
        assert!(o.pairs().is_empty());
    }

    #[test]
    fn contained_range_detected() {
        let mut o = OracleUnit::new();
        for f in [
            frag(5, 5, 0.1, 1, Facing::Front),
            frag(5, 5, 0.2, 2, Facing::Front),
            frag(5, 5, 0.3, 2, Facing::Back),
            frag(5, 5, 0.4, 1, Facing::Back),
        ] {
            o.add_fragment(f);
        }
        assert_eq!(o.pairs().len(), 1);
    }

    #[test]
    fn pairs_across_pixels_deduplicated() {
        let mut o = OracleUnit::new();
        for px in 0..4 {
            o.add_fragment(frag(px, 0, 0.1, 1, Facing::Front));
            o.add_fragment(frag(px, 0, 0.2, 2, Facing::Front));
            o.add_fragment(frag(px, 0, 0.3, 1, Facing::Back));
            o.add_fragment(frag(px, 0, 0.4, 2, Facing::Back));
        }
        assert_eq!(o.pairs().len(), 1);
        assert_eq!(o.covered_pixels(), 4);
    }

    #[test]
    fn clear_empties_state() {
        let mut o = OracleUnit::new();
        o.add_fragment(frag(0, 0, 0.5, 1, Facing::Front));
        o.clear();
        assert_eq!(o.covered_pixels(), 0);
        assert!(o.pairs().is_empty());
    }
}
