//! RBCD-unit activity counters and energy accounting.

use rbcd_gpu::energy::EnergyModel;
use rbcd_trace::CounterSet;

/// Hardware event counters of the RBCD unit, itemised with the same
/// McPAT component mapping the paper uses (§4.1): ZEB = SRAM,
/// LT-comparators = ALU, EQ-comparators = XOR, List-Register/FF-Stack =
/// registers, hit logic = priority encoder, shift network = MUX.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RbcdStats {
    /// Fragments inserted into ZEB lists.
    pub insertions: u64,
    /// Insertions that found their list full (Table 3 numerator).
    pub overflows: u64,
    /// Full-list insertions absorbed by dynamically allocated spare
    /// entries (§5.3 mitigation; zero in the baseline design).
    pub spare_allocations: u64,
    /// Full-list reads from ZEB SRAM (one per insertion, one per scan).
    pub zeb_list_reads: u64,
    /// Full-list writes to ZEB SRAM.
    pub zeb_list_writes: u64,
    /// Less-than comparator evaluations (insertion network).
    pub lt_comparisons: u64,
    /// MUX shift-network activations.
    pub mux_shifts: u64,
    /// Pixel lists scanned by the Z-overlap unit.
    pub lists_scanned: u64,
    /// Elements traversed by the Z-overlap unit.
    pub elements_scanned: u64,
    /// Equality comparator evaluations (FF-Stack search).
    pub eq_comparisons: u64,
    /// Priority-encoder activations (one per back face).
    pub priority_encodes: u64,
    /// List-Register / FF-Stack register file touches.
    pub register_ops: u64,
    /// Colliding pairs written to the output buffer.
    pub pairs_emitted: u64,
    /// Back faces with no unmatched front face.
    pub unmatched_backs: u64,
    /// Tiles processed by the unit.
    pub tiles: u64,
    /// Cycles spent inserting (1 element / cycle).
    pub insert_cycles: u64,
    /// Cycles spent in Z-overlap scans.
    pub scan_cycles: u64,
    /// Front-face pushes dropped by a full FF-Stack during scans.
    pub ff_drops: u64,
    /// Tiles whose overflow pressure was fully absorbed by the spare
    /// pool (degradation-ladder rung 1).
    pub rung_spare: u64,
    /// Tiles recovered by re-inserting at doubled `M` (ladder rung 2).
    pub rung_rescan: u64,
    /// Tiles still overflowing after all re-scans, whose objects were
    /// escalated to the CPU detector (ladder rung 3).
    pub rung_cpu: u64,
    /// Total re-insertion passes performed by ladder rung 2.
    pub rescan_passes: u64,
    /// Occupied lists resolved analytically instead of through the
    /// FF-Stack because their `scan_worthy` bit was clear (mask hot
    /// path only; 0 under `HotPathMode::Reference`). A host-side
    /// diagnostic: every other counter, and energy, is identical either
    /// way.
    pub scan_skipped: u64,
}

impl RbcdStats {
    /// Overflow rate: overflowing insertions over all insertions
    /// (Table 3's "percentage of times a list of the ZEB overflows").
    pub fn overflow_rate(&self) -> f64 {
        if self.insertions == 0 {
            0.0
        } else {
            self.overflows as f64 / self.insertions as f64
        }
    }

    /// Accumulates another stats block.
    pub fn accumulate(&mut self, o: &RbcdStats) {
        self.insertions += o.insertions;
        self.overflows += o.overflows;
        self.spare_allocations += o.spare_allocations;
        self.zeb_list_reads += o.zeb_list_reads;
        self.zeb_list_writes += o.zeb_list_writes;
        self.lt_comparisons += o.lt_comparisons;
        self.mux_shifts += o.mux_shifts;
        self.lists_scanned += o.lists_scanned;
        self.elements_scanned += o.elements_scanned;
        self.eq_comparisons += o.eq_comparisons;
        self.priority_encodes += o.priority_encodes;
        self.register_ops += o.register_ops;
        self.pairs_emitted += o.pairs_emitted;
        self.unmatched_backs += o.unmatched_backs;
        self.tiles += o.tiles;
        self.insert_cycles += o.insert_cycles;
        self.scan_cycles += o.scan_cycles;
        self.ff_drops += o.ff_drops;
        self.rung_spare += o.rung_spare;
        self.rung_rescan += o.rung_rescan;
        self.rung_cpu += o.rung_cpu;
        self.rescan_passes += o.rescan_passes;
        self.scan_skipped += o.scan_skipped;
    }

    /// Tiles that completed on the base rung — no spare allocation,
    /// re-scan, or CPU escalation was needed.
    pub fn rung_clean(&self) -> u64 {
        self.tiles.saturating_sub(self.rung_spare + self.rung_rescan + self.rung_cpu)
    }

    /// Exports every counter into the typed registry under stable
    /// `rbcd.*` keys — the RBCD half of the unified counter surface
    /// (see [`rbcd_gpu::FrameStats::counter_set`] for the GPU half).
    /// The key set is pinned by the golden-counter test in `rbcd-bench`.
    pub fn counter_set(&self) -> CounterSet {
        [
            ("rbcd.insertions", self.insertions),
            ("rbcd.overflows", self.overflows),
            ("rbcd.spare_allocations", self.spare_allocations),
            ("rbcd.zeb_list_reads", self.zeb_list_reads),
            ("rbcd.zeb_list_writes", self.zeb_list_writes),
            ("rbcd.lt_comparisons", self.lt_comparisons),
            ("rbcd.mux_shifts", self.mux_shifts),
            ("rbcd.lists_scanned", self.lists_scanned),
            ("rbcd.elements_scanned", self.elements_scanned),
            ("rbcd.eq_comparisons", self.eq_comparisons),
            ("rbcd.priority_encodes", self.priority_encodes),
            ("rbcd.register_ops", self.register_ops),
            ("rbcd.pairs_emitted", self.pairs_emitted),
            ("rbcd.unmatched_backs", self.unmatched_backs),
            ("rbcd.tiles", self.tiles),
            ("rbcd.insert_cycles", self.insert_cycles),
            ("rbcd.scan_cycles", self.scan_cycles),
            ("rbcd.ff_drops", self.ff_drops),
            ("rbcd.rung_spare", self.rung_spare),
            ("rbcd.rung_rescan", self.rung_rescan),
            ("rbcd.rung_cpu", self.rung_cpu),
            ("rbcd.rescan_passes", self.rescan_passes),
            ("tile.scan_skipped", self.scan_skipped),
        ]
        .into_iter()
        .collect()
    }

    /// Dynamic energy of the unit in joules under `model`.
    pub fn dynamic_energy_j(&self, model: &EnergyModel) -> f64 {
        let pj = self.zeb_list_reads as f64 * model.zeb_list_access_pj
            + self.zeb_list_writes as f64 * model.zeb_list_access_pj
            + self.lt_comparisons as f64 * model.lt_comparator_pj
            + self.mux_shifts as f64 * model.mux_shift_pj
            + self.eq_comparisons as f64 * model.eq_comparator_pj
            + self.priority_encodes as f64 * model.priority_encoder_pj
            + self.register_ops as f64 * model.register_pj
            + self.pairs_emitted as f64 * model.pair_emit_pj;
        pj * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_rate_handles_zero() {
        assert_eq!(RbcdStats::default().overflow_rate(), 0.0);
        let s = RbcdStats { insertions: 200, overflows: 3, ..RbcdStats::default() };
        assert!((s.overflow_rate() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn accumulate_sums() {
        let a = RbcdStats { insertions: 5, pairs_emitted: 2, scan_cycles: 7, ..RbcdStats::default() };
        let mut t = RbcdStats::default();
        t.accumulate(&a);
        t.accumulate(&a);
        assert_eq!(t.insertions, 10);
        assert_eq!(t.pairs_emitted, 4);
        assert_eq!(t.scan_cycles, 14);
    }

    #[test]
    fn dynamic_energy_positive_and_scales() {
        let m = EnergyModel::default();
        let s = RbcdStats {
            zeb_list_reads: 100,
            zeb_list_writes: 100,
            lt_comparisons: 800,
            mux_shifts: 100,
            ..RbcdStats::default()
        };
        let e1 = s.dynamic_energy_j(&m);
        assert!(e1 > 0.0);
        let mut s2 = s;
        s2.zeb_list_reads *= 2;
        s2.zeb_list_writes *= 2;
        s2.lt_comparisons *= 2;
        s2.mux_shifts *= 2;
        assert!((s2.dynamic_energy_j(&m) / e1 - 2.0).abs() < 1e-9);
    }
}
