//! The complete RBCD unit and the frame-level convenience API.

use crate::error::RbcdError;
use crate::pair::ObjectPair;
use crate::scan::{scan_list_with, FfStack};
use crate::stats::RbcdStats;
use crate::zeb::Zeb;
use crate::ZebElement;
use rbcd_gpu::{
    CollisionFragment, CollisionUnit, FrameStats, FrameTrace, GpuConfig, HotPathMode, ObjectId,
    PipelineMode, Simulator, TileCoord,
};
use rbcd_trace::TileZebRecord;
use std::collections::BTreeSet;

/// Configuration of the RBCD unit.
///
/// Defaults follow the paper's chosen design point (§5.3): two ZEBs of
/// 256 lists × `M = 8` 32-bit elements (8 KB each) and one insertion and
/// one Z-overlap unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RbcdConfig {
    /// Number of ZEB buffers (1 disables double buffering; the paper
    /// evaluates 1 and 2 and finds 2 sufficient).
    pub zeb_count: u32,
    /// Elements per pixel list (`M`; Table 3 sweeps 4/8/16).
    pub list_capacity: usize,
    /// FF-Stack entries (`T`).
    pub ff_stack_capacity: usize,
    /// Z-overlap scan cost per traversed element, in cycles.
    pub scan_cycles_per_element: u64,
    /// Z-overlap scan cost per non-empty list (List-Register load).
    pub scan_cycles_per_list: u64,
    /// Dynamically allocatable spare entries per ZEB (§5.3's proposed
    /// overflow mitigation; the paper's baseline design uses none).
    pub spare_entries: usize,
    /// Degradation-ladder rung 2: maximum number of re-insertion passes
    /// at doubled list capacity when a tile overflows. `0` (the paper's
    /// design) disables re-scanning: overflow drops elements silently
    /// apart from the `overflows` counter.
    pub ladder_rescans: u32,
    /// Degradation-ladder rung 3: when a tile still overflows after all
    /// re-scans, record the tile's distinct object ids so the host can
    /// route them to an exact CPU detector (the hybrid path).
    pub ladder_cpu_fallback: bool,
    /// Host-side implementation of the Z-overlap scan loop. Never
    /// changes simulated results; see [`rbcd_gpu::HotPathMode`]. Under
    /// `Mask` (the default), occupied lists whose `scan_worthy` bit is
    /// clear are resolved analytically instead of through the FF-Stack,
    /// with bit-identical counters, contacts, and timing.
    pub hot_path: HotPathMode,
}

impl Default for RbcdConfig {
    fn default() -> Self {
        Self {
            zeb_count: 2,
            list_capacity: 8,
            ff_stack_capacity: 8,
            scan_cycles_per_element: 1,
            scan_cycles_per_list: 1,
            spare_entries: 0,
            ladder_rescans: 0,
            ladder_cpu_fallback: false,
            hot_path: HotPathMode::Mask,
        }
    }
}

impl RbcdConfig {
    /// Checks that every capacity is positive.
    ///
    /// # Errors
    ///
    /// Returns the [`RbcdError`] naming the first zero-sized component.
    pub fn validate(&self) -> Result<(), RbcdError> {
        if self.zeb_count == 0 {
            return Err(RbcdError::ZeroZebCount);
        }
        if self.list_capacity == 0 {
            return Err(RbcdError::ZeroListCapacity);
        }
        if self.ff_stack_capacity == 0 {
            return Err(RbcdError::ZeroStackCapacity);
        }
        Ok(())
    }
}

/// A detected collision between two objects at one pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContactPoint {
    /// The object whose front face delimits the overlap (`Idi`).
    pub a: ObjectId,
    /// The object whose back face detected the overlap (`Idcur`).
    pub b: ObjectId,
    /// Window pixel x.
    pub x: u32,
    /// Window pixel y.
    pub y: u32,
    /// Quantized depth of the detecting back face.
    pub depth: u16,
}

impl ContactPoint {
    /// The pair with the smaller id first — the canonical form used to
    /// compare against other detectors.
    pub fn pair(&self) -> (ObjectId, ObjectId) {
        if self.a <= self.b {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        }
    }

    /// The canonical [`ObjectPair`] — the type every detector's output
    /// is compared through.
    pub fn object_pair(&self) -> ObjectPair {
        ObjectPair::from_ids(self.a, self.b)
    }
}

/// The RBCD unit: ZEBs + sorted insertion + Z-overlap test, with the
/// paper's tile double-buffering timing protocol.
#[derive(Debug)]
pub struct RbcdUnit {
    config: RbcdConfig,
    tile_size: u32,
    zebs: Vec<Zeb>,
    zeb_free_at: Vec<u64>,
    scan_unit_free_at: u64,
    active: Option<ActiveTile>,
    stack: FfStack,
    stats: RbcdStats,
    contacts: Vec<ContactPoint>,
    /// Fragments of the active tile, buffered so the degradation ladder
    /// can re-insert them at a larger capacity if the tile overflows.
    pending: Vec<(u32, ZebElement)>,
    /// Objects escalated to the CPU detector by ladder rung 3.
    escalated: BTreeSet<ObjectId>,
    /// Per-tile observability records, kept only while tile logging is
    /// enabled; drained by the tracing host after each frame. Pure side
    /// data: never read back into stats or timing.
    tile_log: Option<Vec<TileZebRecord>>,
}

#[derive(Debug, Clone, Copy)]
struct ActiveTile {
    zeb: usize,
    tile: TileCoord,
    /// Cycle the tile was dispatched (`begin_tile`'s `cycle`), kept for
    /// the tile log.
    begin: u64,
}

impl RbcdUnit {
    /// Creates a unit for tiles of `tile_size` × `tile_size` pixels.
    ///
    /// # Errors
    ///
    /// Returns an [`RbcdError`] if `config.zeb_count`, any capacity, or
    /// `tile_size` is zero, instead of panicking on hostile input.
    pub fn new(config: RbcdConfig, tile_size: u32) -> Result<Self, RbcdError> {
        config.validate()?;
        if tile_size == 0 {
            return Err(RbcdError::ZeroLists);
        }
        let lists = (tile_size * tile_size) as usize;
        Ok(Self {
            zebs: (0..config.zeb_count)
                .map(|_| Zeb::with_spares(lists, config.list_capacity, config.spare_entries))
                .collect::<Result<_, _>>()?,
            zeb_free_at: vec![0; config.zeb_count as usize],
            scan_unit_free_at: 0,
            active: None,
            stack: FfStack::new(config.ff_stack_capacity)?,
            stats: RbcdStats::default(),
            contacts: Vec::new(),
            pending: Vec::new(),
            escalated: BTreeSet::new(),
            tile_log: None,
            config,
            tile_size,
        })
    }

    /// The unit's configuration.
    pub fn config(&self) -> &RbcdConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &RbcdStats {
        &self.stats
    }

    /// Contact points detected so far.
    pub fn contacts(&self) -> &[ContactPoint] {
        &self.contacts
    }

    /// Drains the output buffer (the CPU reading the reported pairs).
    pub fn take_contacts(&mut self) -> Vec<ContactPoint> {
        std::mem::take(&mut self.contacts)
    }

    /// Distinct colliding pairs, smaller id first.
    pub fn pairs(&self) -> BTreeSet<(ObjectId, ObjectId)> {
        self.contacts.iter().map(ContactPoint::pair).collect()
    }

    /// Objects escalated to the CPU detector by ladder rung 3 — tiles
    /// that still overflowed after every re-scan attempt. Empty unless
    /// [`RbcdConfig::ladder_cpu_fallback`] is enabled.
    pub fn escalated(&self) -> &BTreeSet<ObjectId> {
        &self.escalated
    }

    /// Drains the escalation set (the CPU taking over those objects).
    pub fn take_escalated(&mut self) -> BTreeSet<ObjectId> {
        std::mem::take(&mut self.escalated)
    }

    /// Enables or disables per-tile observability logging. While
    /// enabled, every finished tile appends a [`TileZebRecord`] (tile
    /// coordinates, insert/scan timing bracket, occupancy, overflows,
    /// ladder rung) to a side log drained with
    /// [`RbcdUnit::take_tile_records`]. Logging never feeds back into
    /// stats, timing, or contacts — results are bit-identical either
    /// way.
    pub fn set_tile_logging(&mut self, enabled: bool) {
        if enabled {
            if self.tile_log.is_none() {
                self.tile_log = Some(Vec::new());
            }
        } else {
            self.tile_log = None;
        }
    }

    /// Whether per-tile logging is enabled.
    pub fn tile_logging(&self) -> bool {
        self.tile_log.is_some()
    }

    /// Drains the per-tile records logged since the last drain (empty
    /// when logging is disabled). Typically called once per frame and
    /// handed to [`Simulator::record_collision_tiles`].
    pub fn take_tile_records(&mut self) -> Vec<TileZebRecord> {
        self.tile_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Resets timing state between frames (statistics are kept).
    pub fn new_frame(&mut self) {
        self.zeb_free_at.fill(0);
        self.scan_unit_free_at = 0;
        debug_assert!(self.active.is_none(), "new_frame during an active tile");
    }

    /// The tile edge length (pixels) this unit was built for.
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// Merges one tile's pre-computed collision results (from a
    /// [`crate::ZebTileWorker`]) exactly as the sequential
    /// `begin_tile(start)` … `finish_tile(end)` bracket would:
    /// claim the earliest-free ZEB, serialize the scan behind the single
    /// Z-overlap unit, and accumulate the tile's stats and contacts.
    ///
    /// Called in tile-index order by the parallel merge, this reproduces
    /// the sequential unit's state bit-for-bit — `zeb_free_at` and
    /// `scan_unit_free_at` only ever change inside `finish_tile`, so the
    /// earliest-free claim made here equals the claim `begin_tile` would
    /// have made at dispatch time.
    pub(crate) fn merge_scanned_tile(
        &mut self,
        tile: TileCoord,
        tile_stats: &RbcdStats,
        contacts: &[ContactPoint],
        escalated: &[ObjectId],
        start: u64,
        end: u64,
    ) {
        debug_assert!(self.active.is_none(), "merge during an active tile");
        let (zeb, &free) = self
            .zeb_free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one ZEB");
        debug_assert!(
            start >= free,
            "Tile Scheduler dispatched at {start} before ZEB {zeb} frees at {free}"
        );
        let scan_start = end.max(self.scan_unit_free_at);
        let scan_end = scan_start + tile_stats.scan_cycles;
        self.scan_unit_free_at = scan_end;
        self.zeb_free_at[zeb] = scan_end;
        self.stats.accumulate(tile_stats);
        self.contacts.extend_from_slice(contacts);
        self.escalated.extend(escalated.iter().copied());
        if let Some(log) = &mut self.tile_log {
            log.push(tile_record(tile, tile_stats, start, end, scan_start, scan_end));
        }
    }

    /// Replays one tile's cached collision results (temporal coherence):
    /// the tile's event counters, contacts, and escalations accumulate
    /// exactly as [`RbcdUnit::merge_scanned_tile`] would have, but no
    /// ZEB is claimed and neither `zeb_free_at` nor `scan_unit_free_at`
    /// advances — the hardware never ran, so it holds no resource. The
    /// tile-log record keeps its cached scan duration for observability,
    /// anchored at the (signature-check-only) timing bracket.
    pub(crate) fn replay_scanned_tile(
        &mut self,
        tile: TileCoord,
        tile_stats: &RbcdStats,
        contacts: &[ContactPoint],
        escalated: &[ObjectId],
        start: u64,
        end: u64,
    ) {
        debug_assert!(self.active.is_none(), "replay during an active tile");
        self.stats.accumulate(tile_stats);
        self.contacts.extend_from_slice(contacts);
        self.escalated.extend(escalated.iter().copied());
        if let Some(log) = &mut self.tile_log {
            let scan_end = end + tile_stats.scan_cycles;
            log.push(tile_record(tile, tile_stats, start, end, end, scan_end));
        }
    }
}

/// Builds one tile's observability record from its isolated stats and
/// timing bracket. Shared by the sequential (`finish_tile` delta) and
/// parallel (`merge_scanned_tile` per-tile stats) paths, which
/// therefore log identical records.
fn tile_record(
    tile: TileCoord,
    d: &RbcdStats,
    start: u64,
    end: u64,
    scan_start: u64,
    scan_end: u64,
) -> TileZebRecord {
    let rung = if d.rung_cpu > 0 {
        3
    } else if d.rung_rescan > 0 {
        2
    } else if d.rung_spare > 0 {
        1
    } else {
        0
    };
    TileZebRecord {
        tile_x: tile.x,
        tile_y: tile.y,
        start,
        end,
        scan_start,
        scan_end,
        insertions: d.insertions,
        overflows: d.overflows,
        spare_allocations: d.spare_allocations,
        occupancy: d.elements_scanned,
        pairs_emitted: d.pairs_emitted,
        ff_drops: d.ff_drops,
        scan_skipped: d.scan_skipped,
        rung,
    }
}

/// Analytic replay of [`scan_list`] for a list whose `scan_worthy` bit
/// is clear — i.e. every element is guaranteed to share one object id.
///
/// Such a list can never emit a pair: the FF-Stack only ever holds that
/// one id, and the pair filter drops same-object hits. What remains of
/// the scan is pure event accounting, reproduced here exactly by
/// tracking the stack's live and unmatched entry counts instead of
/// walking `FfEntry` records:
///
/// * front face — pushed while the stack has room (`live += 1`),
///   dropped otherwise (`stack.dropped += 1`, folded into `ff_drops`
///   by the caller's bracket exactly like a real drop);
/// * back face — the EQ comparators examine `live` entries and the
///   priority encoder fires; a match exists iff any entry is still
///   unmatched, otherwise the back face counts as unmatched.
///
/// Every counter ends bit-identical to the full scan; only the
/// mode-gated `scan_skipped` diagnostic records that the shortcut ran.
fn skip_single_object_scan(list: &[ZebElement], stack: &mut FfStack, stats: &mut RbcdStats) {
    stats.scan_skipped += 1;
    stats.lists_scanned += 1;
    stats.zeb_list_reads += 1;
    stats.elements_scanned += list.len() as u64;
    stats.register_ops += list.len() as u64;
    let cap = stack.capacity() as u64;
    let mut live = 0u64;
    let mut unmatched = 0u64;
    for e in list {
        if e.is_front() {
            if live < cap {
                live += 1;
                unmatched += 1;
            } else {
                stack.dropped += 1;
            }
        } else {
            stats.eq_comparisons += live;
            stats.priority_encodes += 1;
            if unmatched > 0 {
                unmatched -= 1;
            } else {
                stats.unmatched_backs += 1;
            }
        }
    }
}

/// Scans every occupied list of `zeb`, pushing contacts (in occupancy
/// order, with window-absolute coordinates) and charging scan stats;
/// clears the ZEB and returns the scan's cycle count. Shared by the
/// sequential [`CollisionUnit::finish_tile`] and the per-thread
/// [`crate::ZebTileWorker`], which therefore produce identical results.
pub(crate) fn scan_zeb_tile(
    zeb: &mut Zeb,
    stack: &mut FfStack,
    config: &RbcdConfig,
    tile: TileCoord,
    tile_size: u32,
    stats: &mut RbcdStats,
    contacts: &mut Vec<ContactPoint>,
) -> u64 {
    let mut scan_cycles = 0u64;
    let tile_px = tile_size;
    let base_x = tile.x * tile_px;
    let base_y = tile.y * tile_px;
    let dropped_before = stack.dropped;
    // Occupancy-ordered scan: empty lists are skipped via the dirty
    // bitmap maintained by the insertion unit.
    for i in 0..zeb.occupied().len() {
        let li = zeb.occupied()[i];
        let list = zeb.list(li as usize);
        // The hardware scans every occupied list either way — the skip
        // below is a host-side shortcut, so the cycle model charges the
        // full cost regardless of mode.
        scan_cycles +=
            config.scan_cycles_per_list + list.len() as u64 * config.scan_cycles_per_element;
        if config.hot_path == HotPathMode::Mask && !zeb.scan_worthy(li as usize) {
            skip_single_object_scan(list, stack, stats);
            continue;
        }
        let x = base_x + li % tile_px;
        let y = base_y + li / tile_px;
        scan_list_with(list, stack, stats, |a, b, depth| {
            contacts.push(ContactPoint { a, b, x, y, depth });
        });
    }
    stats.ff_drops += stack.dropped - dropped_before;
    zeb.clear();
    scan_cycles
}

/// Runs one tile's buffered fragments through the degradation ladder and
/// scans the result, returning the scan's cycle count. Shared by the
/// sequential [`CollisionUnit::finish_tile`] and the per-thread
/// [`crate::ZebTileWorker`], so both paths stay bit-identical.
///
/// Rungs, in escalation order (§5.3 overflow handling, extended):
///
/// 0. **clean** — the tile fits in the base `M`; plain insert + scan.
/// 1. **spare** — full lists were absorbed entirely by the spare pool.
/// 2. **re-scan** — the tile overflowed; its fragments are re-inserted
///    from the buffered stream into a scratch ZEB at `M·2^attempt`, up
///    to [`RbcdConfig::ladder_rescans`] passes (each pass charges its
///    insertion events honestly). The FF-Stack is widened alongside so
///    the deeper lists scan without drops.
/// 3. **CPU fallback** — still overflowing after every pass; the tile's
///    distinct object ids are reported through `escalated` for an exact
///    software detector, and the best (largest-`M`) attempt is still
///    scanned so partial pairs are not thrown away.
// Takes the unit's fields as split borrows so the sequential path and
// the per-thread `ZebTileWorker` can share it without a wrapper struct.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ladder_zeb_tile(
    zeb: &mut Zeb,
    stack: &mut FfStack,
    config: &RbcdConfig,
    tile: TileCoord,
    tile_size: u32,
    pending: &[(u32, ZebElement)],
    stats: &mut RbcdStats,
    contacts: &mut Vec<ContactPoint>,
    escalated: &mut Vec<ObjectId>,
) -> u64 {
    // Rungs 0/1: base capacity, with the spare pool absorbing pressure.
    let overflows_before = stats.overflows;
    let spares_before = stats.spare_allocations;
    zeb.insert_many(pending, stats);
    stats.insert_cycles += pending.len() as u64;
    if stats.overflows == overflows_before {
        if stats.spare_allocations > spares_before {
            stats.rung_spare += 1;
        }
        return scan_zeb_tile(zeb, stack, config, tile, tile_size, stats, contacts);
    }

    // Rung 2: re-insert the buffered fragment stream at doubled capacity.
    let mut best: Option<(Zeb, usize)> = None;
    let mut recovered = false;
    for attempt in 1..=config.ladder_rescans {
        let m = config.list_capacity.saturating_mul(1usize << attempt.min(24));
        let mut scratch =
            Zeb::new(zeb.list_count(), m).expect("rescan capacity is positive");
        stats.rescan_passes += 1;
        let retry_before = stats.overflows;
        scratch.insert_many(pending, stats);
        stats.insert_cycles += pending.len() as u64;
        let clean = stats.overflows == retry_before;
        best = Some((scratch, m));
        if clean {
            recovered = true;
            break;
        }
    }

    if let Some((mut scratch, m)) = best {
        if recovered {
            stats.rung_rescan += 1;
        } else if config.ladder_cpu_fallback {
            stats.rung_cpu += 1;
            escalate_pending(pending, escalated);
        }
        // The base ZEB's partial content is superseded by the re-scan.
        zeb.clear();
        let mut wide_stack = FfStack::new(m.max(config.ff_stack_capacity))
            .expect("widened FF-Stack capacity is positive");
        return scan_zeb_tile(&mut scratch, &mut wide_stack, config, tile, tile_size, stats, contacts);
    }

    // No re-scans configured: scan what survived at the base capacity.
    if config.ladder_cpu_fallback {
        stats.rung_cpu += 1;
        escalate_pending(pending, escalated);
    }
    scan_zeb_tile(zeb, stack, config, tile, tile_size, stats, contacts)
}

/// Records the distinct objects of an overflowing tile, in ascending id
/// order (deterministic regardless of fragment order).
fn escalate_pending(pending: &[(u32, ZebElement)], escalated: &mut Vec<ObjectId>) {
    let ids: BTreeSet<ObjectId> = pending.iter().map(|&(_, e)| e.object).collect();
    escalated.extend(ids);
}

impl CollisionUnit for RbcdUnit {
    fn next_free(&self) -> u64 {
        self.zeb_free_at.iter().copied().min().expect("at least one ZEB")
    }

    fn begin_tile(&mut self, tile: TileCoord, cycle: u64) {
        assert!(self.active.is_none(), "begin_tile while a tile is active");
        let (zeb, &free) = self
            .zeb_free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one ZEB");
        debug_assert!(
            cycle >= free,
            "Tile Scheduler dispatched at {cycle} before ZEB {zeb} frees at {free}"
        );
        debug_assert!(self.zebs[zeb].is_empty(), "claimed ZEB was not cleared");
        self.active = Some(ActiveTile { zeb, tile, begin: cycle });
    }

    fn insert(&mut self, frag: CollisionFragment) {
        let Some(active) = self.active else {
            panic!("insert without an active tile");
        };
        // Buffered, not inserted directly: the degradation ladder may
        // need to replay the tile's whole fragment stream at a larger
        // capacity. The ZEB insertions (and their stats) happen in
        // `finish_tile`, in this exact arrival order.
        let lx = frag.x - active.tile.x * self.tile_size;
        let ly = frag.y - active.tile.y * self.tile_size;
        let index = ly * self.tile_size + lx;
        self.pending.push((index, ZebElement::new(frag.z, frag.object, frag.facing)));
    }

    fn insert_batch(&mut self, frags: &[CollisionFragment]) {
        let Some(active) = self.active else {
            panic!("insert without an active tile");
        };
        // Same buffering as `insert`, one dynamic dispatch per tile
        // instead of one per fragment.
        let bx = active.tile.x * self.tile_size;
        let by = active.tile.y * self.tile_size;
        self.pending.reserve(frags.len());
        for f in frags {
            let index = (f.y - by) * self.tile_size + (f.x - bx);
            self.pending.push((index, ZebElement::new(f.z, f.object, f.facing)));
        }
    }

    fn finish_tile(&mut self, cycle: u64) {
        let Some(active) = self.active.take() else {
            panic!("finish_tile without an active tile");
        };
        self.stats.tiles += 1;

        // The single Z-overlap unit serializes scans across ZEBs.
        let scan_start = cycle.max(self.scan_unit_free_at);
        let pending = std::mem::take(&mut self.pending);
        let mut escalated = Vec::new();
        // Stats snapshot for the tile log: the per-tile delta is the
        // tile's isolated activity. `RbcdStats` is `Copy`; this costs
        // nothing when logging is off.
        let before = self.tile_log.is_some().then_some(self.stats);
        let scan_cycles = ladder_zeb_tile(
            &mut self.zebs[active.zeb],
            &mut self.stack,
            &self.config,
            active.tile,
            self.tile_size,
            &pending,
            &mut self.stats,
            &mut self.contacts,
            &mut escalated,
        );
        self.pending = pending;
        self.pending.clear();
        self.escalated.extend(escalated);
        let scan_end = scan_start + scan_cycles;
        self.stats.scan_cycles += scan_cycles;
        self.scan_unit_free_at = scan_end;
        self.zeb_free_at[active.zeb] = scan_end;
        if let Some(log) = &mut self.tile_log {
            let b = before.expect("snapshot taken while logging");
            let s = &self.stats;
            let delta = RbcdStats {
                insertions: s.insertions - b.insertions,
                overflows: s.overflows - b.overflows,
                spare_allocations: s.spare_allocations - b.spare_allocations,
                elements_scanned: s.elements_scanned - b.elements_scanned,
                pairs_emitted: s.pairs_emitted - b.pairs_emitted,
                ff_drops: s.ff_drops - b.ff_drops,
                scan_skipped: s.scan_skipped - b.scan_skipped,
                rung_spare: s.rung_spare - b.rung_spare,
                rung_rescan: s.rung_rescan - b.rung_rescan,
                rung_cpu: s.rung_cpu - b.rung_cpu,
                ..RbcdStats::default()
            };
            log.push(tile_record(active.tile, &delta, active.begin, cycle, scan_start, scan_end));
        }
    }

    fn idle_at(&self) -> u64 {
        self.zeb_free_at
            .iter()
            .copied()
            .max()
            .expect("at least one ZEB")
            .max(self.scan_unit_free_at)
    }
}

/// Result of running one frame through the GPU with an attached RBCD
/// unit.
#[derive(Debug, Clone)]
pub struct FrameCollisions {
    /// Detected contact points.
    pub contacts: Vec<ContactPoint>,
    /// RBCD-unit activity.
    pub rbcd_stats: RbcdStats,
    /// GPU pipeline activity for the RBCD-mode render.
    pub gpu_stats: FrameStats,
}

impl FrameCollisions {
    /// Distinct colliding pairs, smaller id first.
    pub fn pairs(&self) -> BTreeSet<(ObjectId, ObjectId)> {
        self.contacts.iter().map(ContactPoint::pair).collect()
    }
}

/// Renders `trace` once in RBCD mode with a fresh simulator and unit and
/// returns the detected collisions — the crate's quickstart entry point.
pub fn detect_frame_collisions(
    trace: &FrameTrace,
    gpu: &GpuConfig,
    rbcd: &RbcdConfig,
) -> FrameCollisions {
    detect_with_mode(trace, gpu, rbcd, PipelineMode::Rbcd)
}

/// Runs a *collision-only* pass (§3.6): just the collisionable objects
/// are rasterized into the RBCD unit, with no Early-Z or fragment
/// processing. This is how an application runs additional physics time
/// steps per rendered frame, or tests geometry that the colour pass
/// does not draw.
pub fn detect_collision_pass(
    trace: &FrameTrace,
    gpu: &GpuConfig,
    rbcd: &RbcdConfig,
) -> FrameCollisions {
    detect_with_mode(trace, gpu, rbcd, PipelineMode::CollisionOnly)
}

fn detect_with_mode(
    trace: &FrameTrace,
    gpu: &GpuConfig,
    rbcd: &RbcdConfig,
    mode: PipelineMode,
) -> FrameCollisions {
    let mut sim = Simulator::new(gpu.clone());
    let mut unit = RbcdUnit::new(*rbcd, gpu.tile_size)
        .expect("invalid RBCD configuration; check with RbcdConfig::validate first");
    let gpu_stats = sim.render_frame(trace, mode, &mut unit);
    FrameCollisions {
        contacts: unit.take_contacts(),
        rbcd_stats: *unit.stats(),
        gpu_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_gpu::{Camera, DrawCommand, Facing};
    use rbcd_geometry::shapes;
    use rbcd_math::{Mat4, Vec3, Viewport};

    fn frag(x: u32, y: u32, z: f32, id: u16, facing: Facing) -> CollisionFragment {
        CollisionFragment { x, y, z, object: ObjectId::new(id), facing }
    }

    fn drive_tile(unit: &mut RbcdUnit, frags: &[CollisionFragment], start: u64, end: u64) {
        unit.begin_tile(TileCoord { x: 0, y: 0 }, start);
        for f in frags {
            unit.insert(*f);
        }
        unit.finish_tile(end);
    }

    #[test]
    fn detects_overlap_in_one_pixel() {
        let mut unit = RbcdUnit::new(RbcdConfig::default(), 16).unwrap();
        // Case 2 at pixel (3, 4): [1 [2 ]1 ]2.
        let frags = [
            frag(3, 4, 0.1, 1, Facing::Front),
            frag(3, 4, 0.2, 2, Facing::Front),
            frag(3, 4, 0.3, 1, Facing::Back),
            frag(3, 4, 0.4, 2, Facing::Back),
        ];
        drive_tile(&mut unit, &frags, 0, 100);
        assert_eq!(unit.contacts().len(), 1);
        let c = unit.contacts()[0];
        assert_eq!((c.x, c.y), (3, 4));
        assert_eq!(c.pair(), (ObjectId::new(1), ObjectId::new(2)));
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let frags = [
            frag(0, 0, 0.3, 1, Facing::Back),
            frag(0, 0, 0.2, 2, Facing::Front),
            frag(0, 0, 0.4, 2, Facing::Back),
            frag(0, 0, 0.1, 1, Facing::Front),
        ];
        let mut unit = RbcdUnit::new(RbcdConfig::default(), 16).unwrap();
        drive_tile(&mut unit, &frags, 0, 100);
        assert_eq!(unit.pairs().len(), 1);
    }

    #[test]
    fn disjoint_ranges_no_contact() {
        let frags = [
            frag(0, 0, 0.1, 1, Facing::Front),
            frag(0, 0, 0.2, 1, Facing::Back),
            frag(0, 0, 0.3, 2, Facing::Front),
            frag(0, 0, 0.4, 2, Facing::Back),
        ];
        let mut unit = RbcdUnit::new(RbcdConfig::default(), 16).unwrap();
        drive_tile(&mut unit, &frags, 0, 100);
        assert!(unit.contacts().is_empty());
    }

    #[test]
    fn timing_single_zeb_blocks_next_tile() {
        let mut unit = RbcdUnit::new(RbcdConfig { zeb_count: 1, ..RbcdConfig::default() }, 16).unwrap();
        let frags: Vec<_> = (0..8).map(|i| frag(i, 0, 0.5, 1, Facing::Front)).collect();
        drive_tile(&mut unit, &frags, 0, 100);
        // Scan: 8 lists × (1 + 1 element) = 16 cycles after cycle 100.
        assert_eq!(unit.next_free(), 116);
        assert_eq!(unit.idle_at(), 116);
    }

    #[test]
    fn timing_two_zebs_overlap() {
        let mut unit = RbcdUnit::new(RbcdConfig::default(), 16).unwrap();
        let frags: Vec<_> = (0..8).map(|i| frag(i, 0, 0.5, 1, Facing::Front)).collect();
        drive_tile(&mut unit, &frags, 0, 100);
        // Second ZEB is free immediately.
        assert_eq!(unit.next_free(), 0);
        // But the single scan unit serializes: a second tile finishing at
        // cycle 101 scans only after the first scan ends (116).
        unit.begin_tile(TileCoord { x: 1, y: 0 }, 50);
        for f in &frags {
            unit.insert(CollisionFragment { x: f.x + 16, ..*f });
        }
        unit.finish_tile(101);
        assert_eq!(unit.idle_at(), 116 + 16);
    }

    #[test]
    fn new_frame_resets_timing_keeps_stats() {
        let mut unit = RbcdUnit::new(RbcdConfig::default(), 16).unwrap();
        drive_tile(&mut unit, &[frag(0, 0, 0.5, 1, Facing::Front)], 0, 10);
        let ins = unit.stats().insertions;
        unit.new_frame();
        assert_eq!(unit.next_free(), 0);
        assert_eq!(unit.stats().insertions, ins);
    }

    #[test]
    fn full_frame_cube_overlap() {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 6.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let a = DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1));
        let b = DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(2))
            .with_model(Mat4::translation(Vec3::new(0.8, 0.3, 0.2)));
        let c = DrawCommand::collidable(shapes::cube(0.5), ObjectId::new(3))
            .with_model(Mat4::translation(Vec3::new(-3.0, 0.0, 0.0)));
        let trace = FrameTrace::new(camera, vec![a, b, c]);
        let gpu = GpuConfig { viewport: Viewport::new(128, 128), ..GpuConfig::default() };
        let result = detect_frame_collisions(&trace, &gpu, &RbcdConfig::default());
        let pairs = result.pairs();
        assert!(pairs.contains(&(ObjectId::new(1), ObjectId::new(2))));
        assert!(!pairs.iter().any(|p| p.0 == ObjectId::new(3) || p.1 == ObjectId::new(3)));
        assert!(result.rbcd_stats.insertions > 0);
        assert!(result.gpu_stats.raster.fragments_collisionable >= result.rbcd_stats.insertions);
    }

    #[test]
    fn separated_cubes_no_collision() {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 8.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let a = DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1))
            .with_model(Mat4::translation(Vec3::new(-2.0, 0.0, 0.0)));
        let b = DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(2))
            .with_model(Mat4::translation(Vec3::new(2.0, 0.0, 0.0)));
        let trace = FrameTrace::new(camera, vec![a, b]);
        let gpu = GpuConfig { viewport: Viewport::new(128, 128), ..GpuConfig::default() };
        let result = detect_frame_collisions(&trace, &gpu, &RbcdConfig::default());
        assert!(result.pairs().is_empty());
    }

    #[test]
    fn depth_separated_cubes_no_collision() {
        // Overlapping in screen space but separated in depth: image-based
        // detection must still see disjoint z-ranges.
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let near = DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1))
            .with_model(Mat4::translation(Vec3::new(0.0, 0.0, 3.0)));
        let far = DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(2))
            .with_model(Mat4::translation(Vec3::new(0.0, 0.0, -3.0)));
        let trace = FrameTrace::new(camera, vec![near, far]);
        let gpu = GpuConfig { viewport: Viewport::new(128, 128), ..GpuConfig::default() };
        let result = detect_frame_collisions(&trace, &gpu, &RbcdConfig::default());
        assert!(result.pairs().is_empty());
    }

    #[test]
    fn collision_pass_finds_same_pairs_cheaper() {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 6.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let trace = FrameTrace::new(
            camera,
            vec![
                DrawCommand::scenery(shapes::ground_quad(30.0, 30.0))
                    .with_model(Mat4::translation(Vec3::new(0.0, -2.0, 0.0))),
                DrawCommand::collidable(shapes::icosphere(1.0, 2), ObjectId::new(1)),
                DrawCommand::collidable(shapes::icosphere(1.0, 2), ObjectId::new(2))
                    .with_model(Mat4::translation(Vec3::new(1.1, 0.2, 0.0))),
            ],
        );
        let gpu = GpuConfig { viewport: Viewport::new(128, 128), ..GpuConfig::default() };
        let full = detect_frame_collisions(&trace, &gpu, &RbcdConfig::default());
        let pass = detect_collision_pass(&trace, &gpu, &RbcdConfig::default());
        assert_eq!(full.pairs(), pass.pairs());
        assert!(pass.gpu_stats.total_cycles() < full.gpu_stats.total_cycles());
        assert_eq!(pass.gpu_stats.raster.fragments_shaded, 0);
    }

    #[test]
    fn spare_entries_reduce_overflow_on_deep_stacks() {
        // Nested shells: deep per-pixel stacks overflow M = 4 badly;
        // a spare pool absorbs much of it (§5.3).
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 8.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let draws = (0..6u16)
            .map(|i| {
                DrawCommand::collidable(shapes::icosphere(0.4 + i as f32 * 0.3, 1), ObjectId::new(i + 1))
            })
            .collect();
        let trace = FrameTrace::new(camera, draws);
        let gpu = GpuConfig { viewport: Viewport::new(96, 96), ..GpuConfig::default() };
        let base = detect_frame_collisions(
            &trace,
            &gpu,
            &RbcdConfig { list_capacity: 4, ..RbcdConfig::default() },
        );
        let spared = detect_frame_collisions(
            &trace,
            &gpu,
            &RbcdConfig { list_capacity: 4, spare_entries: 512, ..RbcdConfig::default() },
        );
        assert!(base.rbcd_stats.overflows > 0, "stress case must overflow at M=4");
        assert!(
            spared.rbcd_stats.overflows < base.rbcd_stats.overflows,
            "spares must absorb overflow ({} -> {})",
            base.rbcd_stats.overflows,
            spared.rbcd_stats.overflows
        );
        assert!(spared.rbcd_stats.spare_allocations > 0);
        // More stored elements can only help detection.
        assert!(spared.pairs().is_superset(&base.pairs()));
    }

    #[test]
    #[should_panic(expected = "active")]
    fn insert_without_tile_panics() {
        let mut unit = RbcdUnit::new(RbcdConfig::default(), 16).unwrap();
        unit.insert(frag(0, 0, 0.5, 1, Facing::Front));
    }

    /// A deep interleaved stack at one pixel: every pair of the `n`
    /// objects overlaps in depth.
    fn deep_stack(n: u16) -> Vec<CollisionFragment> {
        let mut frags = Vec::new();
        for i in 0..n {
            frags.push(frag(0, 0, 0.10 + 0.01 * i as f32, i + 1, Facing::Front));
            frags.push(frag(0, 0, 0.60 + 0.01 * i as f32, i + 1, Facing::Back));
        }
        frags
    }

    #[test]
    fn ladder_rescan_recovers_overflowed_pairs() {
        let frags = deep_stack(8); // 16 fragments in one list
        let reference = {
            let mut unit = RbcdUnit::new(
                RbcdConfig { list_capacity: 64, ff_stack_capacity: 64, ..RbcdConfig::default() },
                16,
            )
            .unwrap();
            drive_tile(&mut unit, &frags, 0, 100);
            assert_eq!(unit.stats().overflows, 0);
            unit.pairs()
        };
        assert_eq!(reference.len(), 8 * 7 / 2, "all pairs overlap by construction");

        // M = 4 drops fragments without the ladder…
        let base_cfg = RbcdConfig { list_capacity: 4, ..RbcdConfig::default() };
        let mut base = RbcdUnit::new(base_cfg, 16).unwrap();
        drive_tile(&mut base, &frags, 0, 100);
        assert!(base.stats().overflows > 0);
        assert!(base.pairs().len() < reference.len());
        assert_eq!(base.stats().rung_rescan, 0);

        // …and recovers them with two doubling passes (4 → 8 → 16).
        let mut ladder =
            RbcdUnit::new(RbcdConfig { ladder_rescans: 2, ..base_cfg }, 16).unwrap();
        drive_tile(&mut ladder, &frags, 0, 100);
        assert_eq!(ladder.pairs(), reference);
        assert_eq!(ladder.stats().rung_rescan, 1);
        assert_eq!(ladder.stats().rescan_passes, 2);
        assert!(ladder.stats().overflows > 0, "the pressure stays visible in the stats");
        assert!(ladder.escalated().is_empty(), "recovered tiles never escalate");
    }

    #[test]
    fn ladder_cpu_fallback_escalates_overflowing_tiles() {
        let frags = deep_stack(8);
        // One rescan pass (M = 1 → 2) cannot hold 16 fragments, so the
        // tile climbs to rung 3.
        let cfg = RbcdConfig {
            list_capacity: 1,
            ladder_rescans: 1,
            ladder_cpu_fallback: true,
            ..RbcdConfig::default()
        };
        let mut unit = RbcdUnit::new(cfg, 16).unwrap();
        drive_tile(&mut unit, &frags, 0, 100);
        assert_eq!(unit.stats().rung_cpu, 1);
        assert_eq!(unit.stats().rung_rescan, 0);
        let ids: Vec<u16> = unit.escalated().iter().map(|id| id.get()).collect();
        assert_eq!(ids, (1..=8).collect::<Vec<_>>(), "all tile objects escalate, in order");
        let drained = unit.take_escalated();
        assert_eq!(drained.len(), 8);
        assert!(unit.escalated().is_empty());
    }

    #[test]
    fn ladder_rung_accounting_is_consistent() {
        let frags = deep_stack(6);
        let cfg = RbcdConfig {
            list_capacity: 2,
            spare_entries: 2,
            ladder_rescans: 3,
            ladder_cpu_fallback: true,
            ..RbcdConfig::default()
        };
        let mut unit = RbcdUnit::new(cfg, 16).unwrap();
        drive_tile(&mut unit, &frags, 0, 100);
        // A clean second tile for contrast.
        unit.begin_tile(TileCoord { x: 1, y: 0 }, 1000);
        unit.insert(frag(16, 0, 0.1, 1, Facing::Front));
        unit.insert(frag(16, 0, 0.2, 1, Facing::Back));
        unit.finish_tile(1100);
        let s = unit.stats();
        assert_eq!(s.tiles, 2);
        assert_eq!(
            s.rung_clean() + s.rung_spare + s.rung_rescan + s.rung_cpu,
            s.tiles,
            "every tile lands on exactly one rung: {s:?}"
        );
        assert_eq!(s.rung_clean(), 1);
    }

    #[test]
    fn default_config_keeps_ladder_dormant() {
        // Overflow with the paper's plain configuration: no rescans, no
        // escalation — drops stay silent apart from the counters, exactly
        // the pre-ladder behavior.
        let mut unit =
            RbcdUnit::new(RbcdConfig { list_capacity: 1, ..RbcdConfig::default() }, 16).unwrap();
        drive_tile(&mut unit, &deep_stack(4), 0, 100);
        let s = unit.stats();
        assert!(s.overflows > 0);
        assert_eq!(s.rung_rescan + s.rung_cpu + s.rescan_passes, 0);
        assert!(unit.escalated().is_empty());
    }
}
