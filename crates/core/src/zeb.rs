//! The Z-depth Extended Buffer and its sorted-insertion unit (Fig. 4).

use crate::element::ZebElement;
use crate::error::RbcdError;
use crate::stats::RbcdStats;

/// Result of inserting one element into a ZEB list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Stored without displacing anything.
    Stored,
    /// The list was full but a spare entry was dynamically allocated to
    /// extend it (the paper's §5.3 proposed mitigation).
    StoredInSpare,
    /// The list was full: the farthest element (possibly the new one)
    /// was dropped. Some object overlap may be lost (paper §5.3).
    Overflow,
}

/// A Z-depth Extended Buffer: `lists` fixed-capacity, front-to-back
/// sorted element lists — one per pixel of a tile (the paper's
/// configuration: 256 lists of `M = 8` 32-bit elements = 8 KB).
///
/// Insertion models the hardware of Figure 4: the list is read into the
/// List-Register, `M` less-than comparators locate the insertion point in
/// parallel, the MUX network shifts, and the list is written back — one
/// element per cycle.
#[derive(Debug, Clone)]
pub struct Zeb {
    m: usize,
    lists: Vec<Vec<ZebElement>>,
    /// Lists touched since the last clear, in insertion-touch order —
    /// the deterministic scan order.
    dirty: Vec<u32>,
    /// Per-list dirty bitmask: bit `i % 64` of word `i / 64` set ⇔
    /// list `i` holds ≥ 1 element. Drives tile teardown.
    touched: Vec<u64>,
    /// Per-list skip bitmask, maintained incrementally at insert time:
    /// bit clear ⇒ every element of the list shares the object id of
    /// its first element, so a Z-overlap scan cannot emit a pair. The
    /// bit is conservative in the other direction (an overflow may
    /// displace the differing element and leave the bit set), which
    /// only costs a redundant — never an incorrect — scan.
    scan_worthy: Vec<u64>,
    /// Pool of spare entries that full lists may claim (§5.3: "a ZEB
    /// with several spare entries that could be dynamically allocated
    /// as extra space to create longer lists"). Zero in the paper's
    /// baseline design.
    spare_capacity: usize,
    spare_used: usize,
}

impl Zeb {
    /// Creates a ZEB with `lists` pixel lists of capacity `m`.
    ///
    /// # Errors
    ///
    /// Returns [`RbcdError::ZeroListCapacity`] if `m == 0` and
    /// [`RbcdError::ZeroLists`] if `lists == 0`.
    pub fn new(lists: usize, m: usize) -> Result<Self, RbcdError> {
        if m == 0 {
            return Err(RbcdError::ZeroListCapacity);
        }
        if lists == 0 {
            return Err(RbcdError::ZeroLists);
        }
        let words = lists.div_ceil(64);
        Ok(Self {
            m,
            lists: vec![Vec::with_capacity(m); lists],
            dirty: Vec::new(),
            touched: vec![0; words],
            scan_worthy: vec![0; words],
            spare_capacity: 0,
            spare_used: 0,
        })
    }

    /// Creates a ZEB with a dynamically allocatable pool of `spares`
    /// extra entries shared across lists (§5.3's overflow mitigation).
    ///
    /// # Errors
    ///
    /// Returns [`RbcdError::ZeroListCapacity`] if `m == 0` and
    /// [`RbcdError::ZeroLists`] if `lists == 0`.
    pub fn with_spares(lists: usize, m: usize, spares: usize) -> Result<Self, RbcdError> {
        Ok(Self { spare_capacity: spares, ..Self::new(lists, m)? })
    }

    /// Spare entries currently claimed by overlong lists.
    pub fn spares_used(&self) -> usize {
        self.spare_used
    }

    /// List capacity `M`.
    pub fn capacity(&self) -> usize {
        self.m
    }

    /// Number of pixel lists.
    pub fn list_count(&self) -> usize {
        self.lists.len()
    }

    /// Total storage in bytes (32-bit elements, as in Table 1),
    /// including the spare pool.
    pub fn size_bytes(&self) -> usize {
        (self.lists.len() * self.m + self.spare_capacity) * 4
    }

    /// The list for pixel `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn list(&self, index: usize) -> &[ZebElement] {
        &self.lists[index]
    }

    /// Indices of non-empty lists, in insertion-touch order.
    pub fn occupied(&self) -> &[u32] {
        &self.dirty
    }

    /// Whether list `index` holds at least one element.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn touched(&self, index: usize) -> bool {
        self.touched[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Whether list `index` may hold elements of two or more distinct
    /// objects. A `false` return guarantees every stored element shares
    /// the list's first object id — the invariant the mask hot path's
    /// scan skipping relies on.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn scan_worthy(&self, index: usize) -> bool {
        self.scan_worthy[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// The `touched` bitmask words (bit `i % 64` of word `i / 64` maps
    /// to list `i`).
    pub fn touched_words(&self) -> &[u64] {
        &self.touched
    }

    /// The `scan_worthy` bitmask words, in the same layout as
    /// [`Zeb::touched_words`].
    pub fn scan_worthy_words(&self) -> &[u64] {
        &self.scan_worthy
    }

    /// Inserts `element` into list `index`, keeping it sorted
    /// front-to-back; on a full list the farthest element is dropped and
    /// [`InsertOutcome::Overflow`] is reported. Energy events are charged
    /// to `stats`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn insert(&mut self, index: usize, element: ZebElement, stats: &mut RbcdStats) -> InsertOutcome {
        // Hardware events per Fig. 4: list read, M comparators, mux
        // shift, list write-back.
        stats.insertions += 1;
        stats.zeb_list_reads += 1;
        stats.zeb_list_writes += 1;
        stats.lt_comparisons += self.m as u64;
        stats.mux_shifts += 1;
        self.insert_uncharged(index, element, stats)
    }

    /// Inserts a whole fragment stream, charging the per-insertion
    /// hardware events in bulk: each [`Zeb::insert`] charges the same
    /// five unconditional events, so `n` insertions charge exactly
    /// `n ×` those constants — summed up front instead of per element.
    /// Conditional events (spares, overflows) stay per-element inside
    /// the core. Bit-identical totals, one pass over the stream.
    pub fn insert_many(&mut self, pending: &[(u32, ZebElement)], stats: &mut RbcdStats) {
        let n = pending.len() as u64;
        stats.insertions += n;
        stats.zeb_list_reads += n;
        stats.zeb_list_writes += n;
        stats.lt_comparisons += n * self.m as u64;
        stats.mux_shifts += n;
        for &(index, element) in pending {
            self.insert_uncharged(index as usize, element, stats);
        }
    }

    /// [`Zeb::insert`] minus the five unconditional event charges —
    /// the shared core of the single and bulk entry points.
    fn insert_uncharged(
        &mut self,
        index: usize,
        element: ZebElement,
        stats: &mut RbcdStats,
    ) -> InsertOutcome {
        let list = &mut self.lists[index];
        // First-element object id, read before any mutation: if the new
        // element is stored and differs, the list can now hold two
        // distinct objects and must be scanned in full.
        let first_obj = list.first().map(|e| e.object);
        if list.is_empty() {
            self.dirty.push(index as u32);
            self.touched[index / 64] |= 1u64 << (index % 64);
        }

        // Position: sorted by (z, facing) with front faces ordered
        // before back faces at equal quantized depth. The facing bit
        // extends the comparator by one gate and makes the list order —
        // and therefore the Z-overlap result — independent of fragment
        // arrival order even under 16-bit depth ties (grazing surfaces).
        let key = |e: &ZebElement| (e.z, !e.is_front());
        let new_key = key(&element);
        let pos = list.partition_point(|e| key(e) <= new_key);
        let limit = self.m + if list.len() >= self.m { list.len() - self.m } else { 0 };
        let len = list.len();
        // Single-pass store, mirroring the hardware: decide the outcome,
        // then one tail shift (the MUX network) opens the slot and one
        // write fills it — no per-branch memmove variants.
        let (outcome, ins) = if len < self.m {
            list.push(element); // grows the list; the copy is shifted over below
            (InsertOutcome::Stored, pos)
        } else if self.spare_used < self.spare_capacity {
            // Claim a spare entry: the list grows past M.
            self.spare_used += 1;
            stats.spare_allocations += 1;
            list.push(element);
            (InsertOutcome::StoredInSpare, pos.min(limit))
        } else {
            stats.overflows += 1;
            if pos >= len {
                // The new element is itself the farthest: dropped outright.
                return InsertOutcome::Overflow;
            }
            // Nearer than the current farthest: the shift network pushes
            // the last element out (it is overwritten by the tail shift).
            (InsertOutcome::Overflow, pos)
        };
        let tail = list.len() - 1;
        list.copy_within(ins..tail, ins + 1);
        list[ins] = element;
        // Only reached when the element was actually stored (the
        // dropped-outright overflow returned above and left the list —
        // and therefore the mask — untouched).
        if first_obj.is_some_and(|first| first != element.object) {
            self.scan_worthy[index / 64] |= 1u64 << (index % 64);
        }
        outcome
    }

    /// Clears every touched list for the next tile and releases the
    /// spare pool. Teardown is driven by the `touched` bitmask: only
    /// words with set bits walk their lists, and both masks are zeroed
    /// word-at-a-time.
    pub fn clear(&mut self) {
        for (w, word) in self.touched.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                self.lists[i].clear();
                bits &= bits - 1;
            }
            *word = 0;
        }
        self.scan_worthy.fill(0);
        self.dirty.clear();
        self.spare_used = 0;
    }

    /// Total elements currently stored.
    pub fn len(&self) -> usize {
        self.dirty.iter().map(|&i| self.lists[i as usize].len()).sum()
    }

    /// `true` when no list holds an element.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_gpu::{Facing, ObjectId};

    fn el(z: f32, id: u16, facing: Facing) -> ZebElement {
        ZebElement::new(z, ObjectId::new(id), facing)
    }

    fn sorted(zeb: &Zeb, i: usize) -> bool {
        zeb.list(i).windows(2).all(|w| w[0].z <= w[1].z)
    }

    #[test]
    fn paper_configuration_size() {
        let zeb = Zeb::new(256, 8).unwrap();
        assert_eq!(zeb.size_bytes(), 8 * 1024); // "for M=8 the size would be 8 KB"
    }

    #[test]
    fn insertion_keeps_sorted_order() {
        let mut zeb = Zeb::new(4, 8).unwrap();
        let mut stats = RbcdStats::default();
        for &z in &[0.5f32, 0.1, 0.9, 0.3, 0.7] {
            assert_eq!(zeb.insert(0, el(z, 1, Facing::Front), &mut stats), InsertOutcome::Stored);
        }
        assert!(sorted(&zeb, 0));
        assert_eq!(zeb.list(0).len(), 5);
        assert_eq!(stats.insertions, 5);
        assert_eq!(stats.lt_comparisons, 40);
        assert_eq!(stats.overflows, 0);
    }

    #[test]
    fn overflow_drops_farthest() {
        let mut zeb = Zeb::new(1, 2).unwrap();
        let mut stats = RbcdStats::default();
        zeb.insert(0, el(0.5, 1, Facing::Front), &mut stats);
        zeb.insert(0, el(0.8, 2, Facing::Front), &mut stats);
        // Nearer element displaces the farthest.
        assert_eq!(zeb.insert(0, el(0.2, 3, Facing::Front), &mut stats), InsertOutcome::Overflow);
        let zs: Vec<u16> = zeb.list(0).iter().map(|e| e.z).collect();
        assert_eq!(zs, vec![ZebElement::quantize_depth(0.2), ZebElement::quantize_depth(0.5)]);
        // Farther element is itself dropped.
        assert_eq!(zeb.insert(0, el(0.9, 4, Facing::Front), &mut stats), InsertOutcome::Overflow);
        assert_eq!(zeb.list(0).len(), 2);
        assert_eq!(stats.overflows, 2);
    }

    #[test]
    fn equal_depths_order_front_before_back() {
        let mut zeb = Zeb::new(1, 4).unwrap();
        let mut stats = RbcdStats::default();
        // Regardless of arrival order, the front face sorts first at a
        // depth tie, so entry points open before exit points close.
        zeb.insert(0, el(0.5, 2, Facing::Back), &mut stats);
        zeb.insert(0, el(0.5, 1, Facing::Front), &mut stats);
        assert_eq!(zeb.list(0)[0].object, ObjectId::new(1));
        assert!(zeb.list(0)[0].is_front());
        assert_eq!(zeb.list(0)[1].object, ObjectId::new(2));
        // Same-kind ties stay stable in arrival order.
        zeb.insert(0, el(0.5, 3, Facing::Front), &mut stats);
        assert_eq!(zeb.list(0)[1].object, ObjectId::new(3));
    }

    #[test]
    fn clear_resets_only_touched_lists() {
        let mut zeb = Zeb::new(16, 4).unwrap();
        let mut stats = RbcdStats::default();
        zeb.insert(3, el(0.5, 1, Facing::Front), &mut stats);
        zeb.insert(9, el(0.6, 2, Facing::Back), &mut stats);
        assert_eq!(zeb.occupied(), &[3, 9]);
        assert_eq!(zeb.len(), 2);
        zeb.clear();
        assert!(zeb.is_empty());
        assert!(zeb.list(3).is_empty());
        assert!(zeb.list(9).is_empty());
    }

    #[test]
    fn zero_capacity_rejected() {
        assert_eq!(Zeb::new(4, 0).unwrap_err(), RbcdError::ZeroListCapacity);
        assert_eq!(Zeb::new(0, 4).unwrap_err(), RbcdError::ZeroLists);
        assert_eq!(Zeb::with_spares(4, 0, 16).unwrap_err(), RbcdError::ZeroListCapacity);
    }

    #[test]
    fn spare_entries_absorb_overflow() {
        let mut zeb = Zeb::with_spares(2, 2, 3).unwrap();
        let mut stats = RbcdStats::default();
        for i in 0..5 {
            zeb.insert(0, el(0.1 * (i + 1) as f32, 1, Facing::Front), &mut stats);
        }
        // 2 regular + 3 spares hold all five; no overflow yet.
        assert_eq!(stats.overflows, 0);
        assert_eq!(stats.spare_allocations, 3);
        assert_eq!(zeb.list(0).len(), 5);
        assert_eq!(zeb.spares_used(), 3);
        // Pool exhausted: the sixth insertion overflows.
        assert_eq!(
            zeb.insert(0, el(0.9, 1, Facing::Back), &mut stats),
            InsertOutcome::Overflow
        );
        assert_eq!(stats.overflows, 1);
        assert!(sorted(&zeb, 0));
    }

    #[test]
    fn spares_are_shared_across_lists_and_released_on_clear() {
        let mut zeb = Zeb::with_spares(2, 1, 1).unwrap();
        let mut stats = RbcdStats::default();
        zeb.insert(0, el(0.5, 1, Facing::Front), &mut stats);
        assert_eq!(
            zeb.insert(0, el(0.6, 2, Facing::Front), &mut stats),
            InsertOutcome::StoredInSpare
        );
        // The single spare is gone: list 1 overflows on its second element.
        zeb.insert(1, el(0.5, 1, Facing::Front), &mut stats);
        assert_eq!(
            zeb.insert(1, el(0.6, 2, Facing::Front), &mut stats),
            InsertOutcome::Overflow
        );
        zeb.clear();
        assert_eq!(zeb.spares_used(), 0);
        // Pool restored for the next tile.
        zeb.insert(1, el(0.5, 1, Facing::Front), &mut stats);
        assert_eq!(
            zeb.insert(1, el(0.6, 2, Facing::Front), &mut stats),
            InsertOutcome::StoredInSpare
        );
    }

    /// Micro-assert for the single-pass insert: against a naive
    /// `Vec::insert` reference using the same `(z, facing)` key, every
    /// stored list must match element-for-element — same sorted order,
    /// same front-before-back tie-breaking, same stable arrival order
    /// within equal keys, same element dropped on overflow.
    #[test]
    fn shift_based_insert_matches_naive_reference() {
        // Deterministic pseudo-random stream (no external RNG).
        let mut state = 0x1234_5678u32;
        let mut next = || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            state
        };
        for (m, spares) in [(1, 0), (2, 0), (4, 0), (4, 3), (8, 0), (8, 5)] {
            let mut zeb = Zeb::with_spares(2, m, spares).unwrap();
            let mut stats = RbcdStats::default();
            let mut reference: Vec<Vec<ZebElement>> = vec![Vec::new(); 2];
            let mut ref_spares = 0usize;
            for _ in 0..64 {
                let r = next();
                // Coarse depths force plenty of quantized ties.
                let z = (r % 5) as f32 * 0.2;
                let id = 1 + (r >> 8) as u16 % 7;
                let facing = if r & 0x40 == 0 { Facing::Front } else { Facing::Back };
                let index = (r >> 16) as usize % 2;
                let e = el(z, id, facing);
                zeb.insert(index, e, &mut stats);

                let list = &mut reference[index];
                let key = |e: &ZebElement| (e.z, !e.is_front());
                let pos = list.partition_point(|x| key(x) <= key(&e));
                if list.len() < m {
                    list.insert(pos, e);
                } else if ref_spares < spares {
                    ref_spares += 1;
                    list.insert(pos, e);
                } else if pos < list.len() {
                    list.pop();
                    list.insert(pos, e);
                }
            }
            for (i, expected) in reference.iter().enumerate() {
                assert_eq!(zeb.list(i), &expected[..], "M={m} spares={spares} list {i}");
                assert!(sorted(&zeb, i));
            }
        }
    }

    #[test]
    fn spare_pool_counts_in_size() {
        assert_eq!(Zeb::with_spares(256, 8, 64).unwrap().size_bytes(), (256 * 8 + 64) * 4);
    }
}
