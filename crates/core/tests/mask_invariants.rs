//! Invariants behind the mask hot path's scan skipping: `scan_worthy`
//! is a subset of `touched`, and a touched-but-not-scan-worthy list can
//! never produce a collision pair — the guarantee that makes skipping
//! its full scan safe.

use rbcd_core::{scan_list, FfStack, RbcdStats, Zeb, ZebElement};
use rbcd_gpu::{Facing, ObjectId};
use rbcd_math::Rng;

#[test]
fn scan_worthy_subset_of_touched_and_skips_emit_no_pairs() {
    let mut rng = Rng::seed_from_u64(0x5EB0);
    let lists = 256usize;
    for round in 0..64 {
        let mut zeb = Zeb::with_spares(lists, 8, 16).expect("valid ZEB shape");
        let mut stats = RbcdStats::default();
        // Mixed load: some rounds hammer few lists (overflow + spare
        // pressure), some spread out; object counts from 1 to 5 so both
        // single-object and multi-object lists occur.
        let inserts = rng.gen_range(1usize..512);
        let spread = rng.gen_range(4usize..lists + 1);
        let objects = rng.gen_range(1u32..6);
        for _ in 0..inserts {
            let li = rng.gen_range(0usize..spread);
            let obj = ObjectId::new(rng.gen_range(1u32..objects + 1) as u16);
            let facing = if rng.gen_bool(0.5) { Facing::Front } else { Facing::Back };
            let z = rng.gen_range(0.0f32..1.0);
            zeb.insert(li, ZebElement::new(z, obj, facing), &mut stats);
        }

        // `scan_worthy ⊆ touched`, word by word.
        for (w, (sw, t)) in
            zeb.scan_worthy_words().iter().zip(zeb.touched_words()).enumerate()
        {
            assert_eq!(sw & !t, 0, "round {round}: scan_worthy ⊄ touched in word {w}");
        }
        // The occupancy list and the touched mask must agree exactly.
        let mut from_mask: Vec<u32> = (0..lists as u32).filter(|&i| zeb.touched(i as usize)).collect();
        let mut occupied: Vec<u32> = zeb.occupied().to_vec();
        from_mask.sort_unstable();
        occupied.sort_unstable();
        assert_eq!(occupied, from_mask, "round {round}: occupied ≠ touched");

        // A skipped list (touched but not scan-worthy) holds one object
        // only, and a full scan of it yields zero pairs.
        let mut stack = FfStack::new(64).expect("valid stack capacity");
        for li in 0..lists {
            if !zeb.touched(li) {
                assert!(zeb.list(li).is_empty(), "round {round}: untouched list {li} non-empty");
                continue;
            }
            if zeb.scan_worthy(li) {
                continue;
            }
            let first = zeb.list(li).first().map(|e| e.object);
            for e in zeb.list(li) {
                assert_eq!(Some(e.object), first, "round {round}: skipped list {li} mixes objects");
            }
            let out = scan_list(zeb.list(li), &mut stack, &mut stats);
            assert!(
                out.hits.is_empty(),
                "round {round}: skipped list {li} produced {} pairs",
                out.hits.len()
            );
        }
    }
}
