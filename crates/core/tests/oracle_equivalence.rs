//! The central correctness property of the reproduction: when no ZEB
//! overflow and no FF-Stack drop occurs, the hardware model's colliding
//! pair set equals the software Shinya–Forgue oracle's.

use proptest::prelude::*;
use rbcd_core::software::OracleUnit;
use rbcd_core::{RbcdConfig, RbcdUnit};
use rbcd_gpu::{CollisionFragment, CollisionUnit, Facing, ObjectId, TileCoord};

/// Generates balanced per-pixel face lists: for each (pixel, object)
/// pair, a set of [front, back] depth intervals.
fn interval_set() -> impl Strategy<Value = Vec<CollisionFragment>> {
    // Up to 4 pixels, up to 3 objects, up to 2 intervals each.
    let interval = (0u16..4, 1u16..4, 0.0f32..1.0, 0.01f32..0.5);
    prop::collection::vec(interval, 1..12).prop_map(|items| {
        let mut frags = Vec::new();
        for (pix, id, z0, dz) in items {
            let (x, y) = (pix as u32 % 2, pix as u32 / 2);
            let z1 = (z0 + dz).min(1.0);
            frags.push(CollisionFragment {
                x,
                y,
                z: z0,
                object: ObjectId::new(id),
                facing: Facing::Front,
            });
            frags.push(CollisionFragment {
                x,
                y,
                z: z1,
                object: ObjectId::new(id),
                facing: Facing::Back,
            });
        }
        frags
    })
}

fn run_hardware(frags: &[CollisionFragment], config: RbcdConfig) -> RbcdUnit {
    let mut unit = RbcdUnit::new(config, 16);
    unit.begin_tile(TileCoord { x: 0, y: 0 }, 0);
    for f in frags {
        unit.insert(*f);
    }
    unit.finish_tile(1000);
    unit
}

fn run_oracle(frags: &[CollisionFragment]) -> OracleUnit {
    let mut oracle = OracleUnit::new();
    for f in frags {
        oracle.add_fragment(*f);
    }
    oracle
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// With generous capacities (no overflow possible), the hardware
    /// pair set equals the oracle pair set for balanced interval inputs.
    #[test]
    fn hardware_matches_oracle_without_overflow(frags in interval_set()) {
        let config = RbcdConfig {
            list_capacity: 64,
            ff_stack_capacity: 64,
            ..RbcdConfig::default()
        };
        let unit = run_hardware(&frags, config);
        prop_assert_eq!(unit.stats().overflows, 0);
        let oracle = run_oracle(&frags);
        prop_assert_eq!(unit.pairs(), oracle.pairs());
    }

    /// With the paper's M = 8 configuration, overflow may drop overlaps
    /// but must never invent them: the hardware pair set is a subset of
    /// the oracle's.
    #[test]
    fn overflow_never_invents_pairs(frags in interval_set()) {
        let unit = run_hardware(&frags, RbcdConfig::default());
        let oracle = run_oracle(&frags);
        let hw = unit.pairs();
        let sw = oracle.pairs();
        prop_assert!(hw.is_subset(&sw), "hw {hw:?} not a subset of sw {sw:?}");
    }

    /// Insertion order is irrelevant: the ZEB sorts by depth.
    #[test]
    fn insertion_order_invariance(frags in interval_set(), seed in 0u64..1000) {
        let config = RbcdConfig {
            list_capacity: 64,
            ff_stack_capacity: 64,
            ..RbcdConfig::default()
        };
        let a = run_hardware(&frags, config);
        // Deterministic shuffle.
        let mut shuffled = frags.clone();
        let mut state = seed.wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let b = run_hardware(&shuffled, config);
        prop_assert_eq!(a.pairs(), b.pairs());
    }

    /// Shrinking M can only lose pairs, never add them.
    #[test]
    fn smaller_lists_are_monotonic(frags in interval_set()) {
        let big = run_hardware(&frags, RbcdConfig { list_capacity: 64, ff_stack_capacity: 64, ..RbcdConfig::default() });
        let small = run_hardware(&frags, RbcdConfig { list_capacity: 2, ff_stack_capacity: 64, ..RbcdConfig::default() });
        prop_assert!(small.pairs().is_subset(&big.pairs()));
    }
}
