//! The central correctness property of the reproduction: when no ZEB
//! overflow and no FF-Stack drop occurs, the hardware model's colliding
//! pair set equals the software Shinya–Forgue oracle's.
//!
//! Randomized inputs come from the workspace's seeded [`Rng`] (the
//! build is offline, so no external property-testing framework).

use rbcd_core::software::OracleUnit;
use rbcd_core::{RbcdConfig, RbcdUnit};
use rbcd_gpu::{CollisionFragment, CollisionUnit, Facing, ObjectId, TileCoord};
use rbcd_math::Rng;

const CASES: usize = 256;

/// Generates balanced per-pixel face lists: for each (pixel, object)
/// pair, a set of [front, back] depth intervals.
fn interval_set(rng: &mut Rng) -> Vec<CollisionFragment> {
    // Up to 4 pixels, up to 3 objects, up to 2 intervals each.
    let n = rng.gen_range(1usize..12);
    let mut frags = Vec::new();
    for _ in 0..n {
        let pix = rng.gen_range(0u16..4);
        let id = rng.gen_range(1u16..4);
        let z0 = rng.gen_range(0.0f32..1.0);
        let dz = rng.gen_range(0.01f32..0.5);
        let (x, y) = (pix as u32 % 2, pix as u32 / 2);
        let z1 = (z0 + dz).min(1.0);
        frags.push(CollisionFragment {
            x,
            y,
            z: z0,
            object: ObjectId::new(id),
            facing: Facing::Front,
        });
        frags.push(CollisionFragment {
            x,
            y,
            z: z1,
            object: ObjectId::new(id),
            facing: Facing::Back,
        });
    }
    frags
}

fn run_hardware(frags: &[CollisionFragment], config: RbcdConfig) -> RbcdUnit {
    let mut unit = RbcdUnit::new(config, 16).unwrap();
    unit.begin_tile(TileCoord { x: 0, y: 0 }, 0);
    for f in frags {
        unit.insert(*f);
    }
    unit.finish_tile(1000);
    unit
}

fn run_oracle(frags: &[CollisionFragment]) -> OracleUnit {
    let mut oracle = OracleUnit::new();
    for f in frags {
        oracle.add_fragment(*f);
    }
    oracle
}

/// With generous capacities (no overflow possible), the hardware pair
/// set equals the oracle pair set for balanced interval inputs.
#[test]
fn hardware_matches_oracle_without_overflow() {
    let mut rng = Rng::seed_from_u64(0x41);
    for _ in 0..CASES {
        let frags = interval_set(&mut rng);
        let config = RbcdConfig {
            list_capacity: 64,
            ff_stack_capacity: 64,
            ..RbcdConfig::default()
        };
        let unit = run_hardware(&frags, config);
        assert_eq!(unit.stats().overflows, 0);
        let oracle = run_oracle(&frags);
        assert_eq!(unit.pairs(), oracle.pairs());
    }
}

/// With the paper's M = 8 configuration, overflow may drop overlaps but
/// must never invent them: the hardware pair set is a subset of the
/// oracle's.
#[test]
fn overflow_never_invents_pairs() {
    let mut rng = Rng::seed_from_u64(0x42);
    for _ in 0..CASES {
        let frags = interval_set(&mut rng);
        let unit = run_hardware(&frags, RbcdConfig::default());
        let oracle = run_oracle(&frags);
        let hw = unit.pairs();
        let sw = oracle.pairs();
        assert!(hw.is_subset(&sw), "hw {hw:?} not a subset of sw {sw:?}");
    }
}

/// Insertion order is irrelevant: the ZEB sorts by depth.
#[test]
fn insertion_order_invariance() {
    let mut rng = Rng::seed_from_u64(0x43);
    for _ in 0..CASES {
        let frags = interval_set(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let config = RbcdConfig {
            list_capacity: 64,
            ff_stack_capacity: 64,
            ..RbcdConfig::default()
        };
        let a = run_hardware(&frags, config);
        // Deterministic shuffle.
        let mut shuffled = frags.clone();
        let mut state = seed.wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let b = run_hardware(&shuffled, config);
        assert_eq!(a.pairs(), b.pairs());
    }
}

/// Shrinking M can only lose pairs, never add them.
#[test]
fn smaller_lists_are_monotonic() {
    let mut rng = Rng::seed_from_u64(0x44);
    for _ in 0..CASES {
        let frags = interval_set(&mut rng);
        let big = run_hardware(
            &frags,
            RbcdConfig { list_capacity: 64, ff_stack_capacity: 64, ..RbcdConfig::default() },
        );
        let small = run_hardware(
            &frags,
            RbcdConfig { list_capacity: 2, ff_stack_capacity: 64, ..RbcdConfig::default() },
        );
        assert!(small.pairs().is_subset(&big.pairs()));
    }
}
