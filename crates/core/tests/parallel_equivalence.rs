//! Bit-identical equivalence of sequential and parallel frame execution
//! with the real RBCD hardware model attached.
//!
//! `render_frame_parallel` must produce exactly the same collision
//! pairs, contact list (including order), RBCD stats, and GPU frame
//! stats as `render_frame`, for any thread count.

use rbcd_core::{RbcdConfig, RbcdUnit};
use rbcd_geometry::shapes;
use rbcd_gpu::{
    Camera, DrawCommand, FrameTrace, GpuConfig, ObjectId, PipelineMode, Simulator,
};
use rbcd_math::{Mat4, Vec3, Viewport};

fn colliding_trace() -> FrameTrace {
    let camera = Camera::perspective(Vec3::new(0.0, 0.5, 7.0), Vec3::ZERO, 1.0, 0.1, 100.0);
    let mut draws = vec![DrawCommand::scenery(shapes::ground_quad(12.0, 12.0))
        .with_model(Mat4::translation(Vec3::new(0.0, -1.2, 0.0)))];
    // A cluster of interpenetrating objects plus separated bystanders.
    let positions = [
        (Vec3::new(0.0, 0.0, 0.0), 1u16),
        (Vec3::new(0.7, 0.1, 0.2), 2),
        (Vec3::new(-0.6, -0.1, -0.3), 3),
        (Vec3::new(3.0, 0.0, 0.0), 4),
        (Vec3::new(-3.0, 0.5, 1.0), 5),
    ];
    for (pos, id) in positions {
        let shape =
            if id % 2 == 0 { shapes::uv_sphere(0.8, 10, 10) } else { shapes::cube(1.2) };
        draws.push(
            DrawCommand::collidable(shape, ObjectId::new(id)).with_model(Mat4::translation(pos)),
        );
    }
    FrameTrace::new(camera, draws)
}

fn gpu_config() -> GpuConfig {
    GpuConfig { viewport: Viewport::new(160, 120), ..GpuConfig::default() }
}

#[test]
fn parallel_rbcd_frame_is_bit_identical() {
    let trace = colliding_trace();
    for mode in [PipelineMode::Rbcd, PipelineMode::CollisionOnly] {
        let mut seq_sim = Simulator::new(gpu_config());
        let mut seq_unit = RbcdUnit::new(RbcdConfig::default(), gpu_config().tile_size).unwrap();
        let seq_stats = seq_sim.render_frame(&trace, mode, &mut seq_unit);
        assert!(
            !seq_unit.pairs().is_empty(),
            "scene must actually collide for the test to be meaningful"
        );

        for threads in [1, 2, 4, 8] {
            let mut par_sim = Simulator::new(gpu_config());
            let mut par_unit = RbcdUnit::new(RbcdConfig::default(), gpu_config().tile_size).unwrap();
            let par_stats =
                par_sim.render_frame_parallel(&trace, mode, &mut par_unit, threads);
            assert_eq!(seq_stats, par_stats, "FrameStats diverged at {threads} threads");
            assert_eq!(seq_unit.pairs(), par_unit.pairs(), "pairs at {threads} threads");
            assert_eq!(
                seq_unit.contacts(),
                par_unit.contacts(),
                "contact order at {threads} threads"
            );
            assert_eq!(
                seq_unit.stats(),
                par_unit.stats(),
                "RbcdStats at {threads} threads"
            );
        }
    }
}

#[test]
fn parallel_rbcd_multi_frame_warm_state_matches() {
    // Timing state (zeb_free_at / scan_unit_free_at) carries across
    // frames; replaying three frames must stay identical throughout.
    let trace = colliding_trace();
    let mut seq_sim = Simulator::new(gpu_config());
    let mut seq_unit = RbcdUnit::new(RbcdConfig::default(), gpu_config().tile_size).unwrap();
    let mut par_sim = Simulator::new(gpu_config());
    let mut par_unit = RbcdUnit::new(RbcdConfig::default(), gpu_config().tile_size).unwrap();
    for frame in 0..3 {
        let seq_stats = seq_sim.render_frame(&trace, PipelineMode::Rbcd, &mut seq_unit);
        let par_stats =
            par_sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut par_unit, 4);
        assert_eq!(seq_stats, par_stats, "frame {frame}");
        assert_eq!(seq_unit.stats(), par_unit.stats(), "frame {frame}");
        assert_eq!(seq_unit.contacts(), par_unit.contacts(), "frame {frame}");
        seq_unit.new_frame();
        par_unit.new_frame();
    }
}

#[test]
fn parallel_oracle_matches_sequential_oracle() {
    use rbcd_core::software::OracleUnit;
    let trace = colliding_trace();
    let mut seq_sim = Simulator::new(gpu_config());
    let mut seq_unit = OracleUnit::new();
    seq_sim.render_frame(&trace, PipelineMode::Rbcd, &mut seq_unit);
    let mut par_sim = Simulator::new(gpu_config());
    let mut par_unit = OracleUnit::new();
    par_sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut par_unit, 4);
    assert_eq!(seq_unit.pairs(), par_unit.pairs());
    assert_eq!(seq_unit.covered_pixels(), par_unit.covered_pixels());
}
