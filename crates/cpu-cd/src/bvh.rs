//! A refittable per-mesh AABB tree.
//!
//! Bullet keeps a bounding-volume hierarchy inside every triangle-mesh
//! collision shape. For static geometry it is built once; for moving or
//! deforming geometry (the skinned, animated meshes of the paper's four
//! Unity games) the tree must be *refitted* every frame: transform each
//! vertex, recompute each leaf AABB, and merge upwards. That refit walk
//! is the dominant per-frame cost of the CPU broad phase and is computed
//! for real here — the refitted root box is exactly the world AABB the
//! broad phase tests.

use crate::cost::Cost;
use rbcd_geometry::Mesh;
use rbcd_math::{Aabb, Mat4, Vec3};

/// Binary AABB tree over a mesh's triangles, median-split built once and
/// refitted per frame.
#[derive(Debug, Clone)]
pub struct MeshBvh {
    /// Triangle index triples (leaf payload).
    triangles: Vec<[u32; 3]>,
    /// Local-space vertex positions.
    local_positions: Vec<Vec3>,
    /// Scratch world-space positions, rewritten by each refit.
    world_positions: Vec<Vec3>,
    nodes: Vec<Node>,
    /// Leaf order: triangle indices sorted by the build.
    order: Vec<u32>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    aabb: Aabb,
    /// Leaf: `(first, count)` into `order`; internal: child index (left =
    /// `child`, right = `child + 1`).
    child_or_first: u32,
    count: u32, // 0 for internal nodes
}

/// Triangles per leaf (Bullet uses small leaves as well).
const LEAF_SIZE: usize = 4;

impl MeshBvh {
    /// Builds the tree from a mesh (done once, off the per-frame path).
    pub fn build(mesh: &Mesh) -> Self {
        let triangles: Vec<[u32; 3]> = mesh.indices().to_vec();
        let local_positions: Vec<Vec3> = mesh.positions().to_vec();
        let centroids: Vec<Vec3> = triangles
            .iter()
            .map(|&[a, b, c]| {
                (local_positions[a as usize]
                    + local_positions[b as usize]
                    + local_positions[c as usize])
                    / 3.0
            })
            .collect();
        let mut order: Vec<u32> = (0..triangles.len() as u32).collect();
        let mut nodes = Vec::with_capacity(2 * triangles.len() / LEAF_SIZE + 2);
        nodes.push(Node {
            aabb: Aabb::from_point(Vec3::ZERO),
            child_or_first: 0,
            count: 0,
        });
        Self::build_node(0, 0, triangles.len(), &mut order, &centroids, &mut nodes);
        let world_positions = local_positions.clone();
        let mut bvh = Self { triangles, local_positions, world_positions, nodes, order };
        // Initialize boxes with the identity transform.
        bvh.refit(&Mat4::IDENTITY, &mut Cost::default());
        bvh
    }

    fn build_node(
        node: usize,
        first: usize,
        count: usize,
        order: &mut [u32],
        centroids: &[Vec3],
        nodes: &mut Vec<Node>,
    ) {
        if count <= LEAF_SIZE {
            nodes[node].child_or_first = first as u32;
            nodes[node].count = count as u32;
            return;
        }
        // Split on the widest centroid axis at the median.
        let slice = &mut order[first..first + count];
        let bb = Aabb::from_points(slice.iter().map(|&t| centroids[t as usize]))
            .expect("non-empty node");
        let ext = bb.max - bb.min;
        let axis = if ext.x >= ext.y && ext.x >= ext.z {
            0
        } else if ext.y >= ext.z {
            1
        } else {
            2
        };
        let mid = count / 2;
        slice.select_nth_unstable_by(mid, |&a, &b| {
            centroids[a as usize][axis]
                .partial_cmp(&centroids[b as usize][axis])
                .expect("finite centroids")
        });
        let left = nodes.len();
        nodes.push(Node { aabb: bb, child_or_first: 0, count: 0 });
        nodes.push(Node { aabb: bb, child_or_first: 0, count: 0 });
        nodes[node].child_or_first = left as u32;
        nodes[node].count = 0;
        Self::build_node(left, first, mid, order, centroids, nodes);
        Self::build_node(left + 1, first + mid, count - mid, order, centroids, nodes);
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Refits the tree under a new model transform and returns the world
    /// AABB (root box). Charges the vertex transform and the leaf/node
    /// merge walk to `cost` — this is the Bullet per-frame shape update.
    pub fn refit(&mut self, model: &Mat4, cost: &mut Cost) -> Aabb {
        // 1. Transform every vertex (skinned-mesh update).
        for (w, &l) in self.world_positions.iter_mut().zip(&self.local_positions) {
            *w = model.transform_point(l);
        }
        let nv = self.local_positions.len() as u64;
        cost.flops += nv * 18; // 3×4 matrix-point product
        cost.stream_bytes += nv * 24; // read local (12 B) + write world (12 B)

        // 2. Refit bottom-up (post-order recursion).
        let root = self.refit_node(0, cost);
        self.nodes[0].aabb = root;
        root
    }

    fn refit_node(&mut self, node: usize, cost: &mut Cost) -> Aabb {
        let n = self.nodes[node];
        let bb = if n.count > 0 {
            let first = n.child_or_first as usize;
            let mut bb: Option<Aabb> = None;
            for &t in &self.order[first..first + n.count as usize] {
                let [a, b, c] = self.triangles[t as usize];
                for idx in [a, b, c] {
                    let p = self.world_positions[idx as usize];
                    bb = Some(match bb {
                        None => Aabb::from_point(p),
                        Some(mut bb) => {
                            bb.expand_point(p);
                            bb
                        }
                    });
                }
                cost.flops += 18; // 9 min + 9 max component ops
                // Leaf-order vertex gathers are scattered with respect
                // to the sequential transform pass, so they stream: the
                // triangle index record plus three 16-byte vertex reads.
                cost.stream_bytes += 12 + 48;
                cost.cache_ops += 3;
            }
            bb.expect("leaf has triangles")
        } else {
            let left = n.child_or_first as usize;
            let lb = self.refit_node(left, cost);
            let rb = self.refit_node(left + 1, cost);
            cost.flops += 6; // box union
            cost.cache_ops += 4; // child node records
            lb.union(&rb)
        };
        self.nodes[node].aabb = bb;
        cost.stream_bytes += 24; // node AABB write-back
        bb
    }

    /// The current root (world) AABB.
    pub fn world_aabb(&self) -> Aabb {
        self.nodes[0].aabb
    }

    /// World-space vertex positions from the last refit (reused by GJK
    /// support scans).
    pub fn world_positions(&self) -> &[Vec3] {
        &self.world_positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_geometry::shapes;

    #[test]
    fn root_box_bounds_all_vertices() {
        let mesh = shapes::uv_sphere(1.0, 16, 8);
        let mut bvh = MeshBvh::build(&mesh);
        let mut cost = Cost::default();
        let m = Mat4::translation(Vec3::new(3.0, -1.0, 2.0)) * Mat4::rotation_y(0.7);
        let bb = bvh.refit(&m, &mut cost);
        for &p in mesh.positions() {
            assert!(bb.inflate(1e-4).contains_point(m.transform_point(p)));
        }
        assert!(cost.flops > 0);
        assert!(cost.stream_bytes > 0);
    }

    #[test]
    fn refit_tracks_motion() {
        let mesh = shapes::cube(1.0);
        let mut bvh = MeshBvh::build(&mesh);
        let mut cost = Cost::default();
        let b0 = bvh.refit(&Mat4::IDENTITY, &mut cost);
        let b1 = bvh.refit(&Mat4::translation(Vec3::new(10.0, 0.0, 0.0)), &mut cost);
        assert!((b1.center().x - b0.center().x - 10.0).abs() < 1e-4);
        assert!(!b0.intersects(&b1));
    }

    #[test]
    fn all_internal_boxes_contain_children() {
        let mesh = shapes::torus(2.0, 0.5, 16, 8);
        let mut bvh = MeshBvh::build(&mesh);
        bvh.refit(&Mat4::rotation_x(0.3), &mut Cost::default());
        for node in &bvh.nodes {
            if node.count == 0 && bvh.nodes.len() > 1 {
                let l = &bvh.nodes[node.child_or_first as usize];
                let r = &bvh.nodes[node.child_or_first as usize + 1];
                assert!(node.aabb.inflate(1e-4).contains(&l.aabb));
                assert!(node.aabb.inflate(1e-4).contains(&r.aabb));
            }
        }
    }

    #[test]
    fn leaf_partition_covers_all_triangles() {
        let mesh = shapes::icosphere(1.0, 2);
        let bvh = MeshBvh::build(&mesh);
        let mut seen = vec![false; bvh.triangle_count()];
        for node in &bvh.nodes {
            if node.count > 0 {
                for &t in &bvh.order[node.child_or_first as usize..][..node.count as usize] {
                    assert!(!seen[t as usize], "triangle {t} in two leaves");
                    seen[t as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn refit_cost_scales_with_mesh_size() {
        let small = shapes::uv_sphere(1.0, 8, 4);
        let big = shapes::uv_sphere(1.0, 32, 16);
        let mut cs = Cost::default();
        let mut cb = Cost::default();
        MeshBvh::build(&small).refit(&Mat4::IDENTITY, &mut cs);
        MeshBvh::build(&big).refit(&Mat4::IDENTITY, &mut cb);
        assert!(cb.flops > 5 * cs.flops);
    }
}
