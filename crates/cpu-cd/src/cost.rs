//! The CPU cost model: operation counting → cycles, time, energy.
//!
//! Every baseline algorithm in this crate is written against a [`Cost`]
//! sink. The sink distinguishes arithmetic, compares/branches,
//! cache-resident memory operations, and *streamed* bytes (data too
//! large or too cold for the cache hierarchy — per-frame walks over mesh
//! vertices and BVH nodes). Conversion to cycles and joules uses
//! [`CpuConfig`], whose defaults follow the paper's Table 1 CPU half:
//! a dual-core ARM Cortex-A9-class device at 1.5 GHz, 32 KB L1 caches,
//! 1 MB L2, 32 nm, 1 V — simulated by the authors with Marss + McPAT.
//!
//! The `framework_overhead` factor accounts for the difference between
//! these hand-counted kernel operations and the instruction stream an
//! actual Bullet + game-engine binary executes on the simulated core
//! (virtual dispatch, shape abstraction layers, manifold bookkeeping,
//! broadphase proxy maintenance). It scales time and energy together,
//! so RBCD-vs-CPU *ratios* are affected but CPU-vs-CPU comparisons
//! (broad vs GJK) are not.

/// CPU configuration (the paper's Table 1, CPU half).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Core clock in Hz (Table 1: 1500 MHz).
    pub frequency_hz: u64,
    /// Number of cores (Table 1: 2). The CD kernel itself is
    /// single-threaded, as in Bullet's default dispatcher.
    pub cores: u32,
    /// Average DRAM access latency in CPU cycles.
    pub mem_latency_cycles: u64,
    /// Overlapped outstanding misses (hardware prefetch + MLP).
    pub memory_parallelism: u64,
    /// Dynamic energy per executed operation, picojoules (core +
    /// L1, Cortex-A9-class at 32 nm).
    pub op_energy_pj: f64,
    /// DRAM energy per 64-byte line, picojoules.
    pub dram_line_pj: f64,
    /// Core + L2 leakage in watts.
    pub leakage_w: f64,
    /// Multiplier from hand-counted kernel ops to the real instruction
    /// stream of Bullet inside a game engine (see module docs).
    pub framework_overhead: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            frequency_hz: 1_500_000_000,
            cores: 2,
            mem_latency_cycles: 150,
            memory_parallelism: 4,
            op_energy_pj: 250.0,
            dram_line_pj: 3_000.0,
            leakage_w: 0.100,
            framework_overhead: 10.0,
        }
    }
}

/// Operation counters accumulated by the baseline algorithms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Floating-point arithmetic operations.
    pub flops: u64,
    /// Compares and branches.
    pub cmps: u64,
    /// Loads/stores expected to hit in L1 (scratch, simplex state,
    /// hull vertices within a pair test).
    pub cache_ops: u64,
    /// Bytes streamed from memory (per-frame mesh/BVH walks whose
    /// footprint exceeds the cache hierarchy frame-to-frame).
    pub stream_bytes: u64,
}

impl Cost {
    /// Adds another counter block.
    pub fn accumulate(&mut self, o: &Cost) {
        self.flops += o.flops;
        self.cmps += o.cmps;
        self.cache_ops += o.cache_ops;
        self.stream_bytes += o.stream_bytes;
    }

    /// Kernel operations (excluding the streaming load instructions).
    pub fn ops(&self) -> u64 {
        self.flops + self.cmps + self.cache_ops
    }

    /// Kernel cycles on the configured core, before framework overhead:
    /// one op per cycle (in-order, dual-issue offset by dependency
    /// stalls) plus the streaming loads and their miss latency.
    pub fn kernel_cycles(&self, cfg: &CpuConfig) -> u64 {
        let stream_load_instrs = self.stream_bytes / 8; // 64-bit loads
        let lines = self.stream_bytes / 64;
        let miss_cycles = lines * cfg.mem_latency_cycles / cfg.memory_parallelism;
        self.ops() + stream_load_instrs + miss_cycles
    }

    /// Cycles including the framework overhead factor.
    pub fn cycles_with(&self, cfg: &CpuConfig) -> u64 {
        (self.kernel_cycles(cfg) as f64 * cfg.framework_overhead) as u64
    }

    /// Cycles under the default configuration.
    pub fn cycles(&self) -> u64 {
        self.cycles_with(&CpuConfig::default())
    }

    /// Full report under `cfg`.
    pub fn report(&self, cfg: &CpuConfig) -> CostReport {
        let cycles = self.cycles_with(cfg);
        let seconds = cycles as f64 / cfg.frequency_hz as f64;
        let dynamic_j = cycles as f64 * cfg.op_energy_pj * 1e-12
            + (self.stream_bytes / 64) as f64 * cfg.dram_line_pj * 1e-12;
        let static_j = seconds * cfg.leakage_w;
        CostReport { cycles, seconds, dynamic_j, static_j }
    }
}

/// Time and energy of a CPU collision-detection run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostReport {
    /// Executed cycles (framework overhead included).
    pub cycles: u64,
    /// Wall-clock seconds at the configured frequency.
    pub seconds: f64,
    /// Switching energy in joules.
    pub dynamic_j: f64,
    /// Leakage energy in joules.
    pub static_j: f64,
}

impl CostReport {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CpuConfig::default();
        assert_eq!(c.frequency_hz, 1_500_000_000);
        assert_eq!(c.cores, 2);
    }

    #[test]
    fn cycles_scale_with_work() {
        let a = Cost { flops: 1000, cmps: 500, cache_ops: 200, stream_bytes: 0 };
        let mut b = a;
        b.flops *= 2;
        b.cmps *= 2;
        b.cache_ops *= 2;
        assert_eq!(b.cycles(), 2 * a.cycles());
    }

    #[test]
    fn streaming_dominates_cold_walks() {
        let cfg = CpuConfig::default();
        let hot = Cost { flops: 1000, ..Cost::default() };
        let cold = Cost { flops: 1000, stream_bytes: 64_000, ..Cost::default() };
        // 1000 lines × 150/4 cycles ≈ 37.5k extra kernel cycles.
        assert!(cold.kernel_cycles(&cfg) > 30 * hot.kernel_cycles(&cfg));
    }

    #[test]
    fn report_consistency() {
        let cfg = CpuConfig::default();
        let cost = Cost { flops: 1_000_000, stream_bytes: 1 << 20, ..Cost::default() };
        let r = cost.report(&cfg);
        assert!(r.seconds > 0.0);
        assert!((r.seconds - r.cycles as f64 / 1.5e9).abs() < 1e-12);
        assert!(r.dynamic_j > 0.0);
        assert!(r.static_j > 0.0);
        assert!(r.total_j() > r.dynamic_j);
    }

    #[test]
    fn framework_overhead_scales_linearly() {
        let cost = Cost { flops: 10_000, ..Cost::default() };
        let lean = CpuConfig { framework_overhead: 1.0, ..CpuConfig::default() };
        let fat = CpuConfig { framework_overhead: 5.0, ..CpuConfig::default() };
        assert_eq!(cost.cycles_with(&fat), 5 * cost.cycles_with(&lean));
    }

    #[test]
    fn accumulate_sums() {
        let mut t = Cost::default();
        t.accumulate(&Cost { flops: 1, cmps: 2, cache_ops: 3, stream_bytes: 4 });
        t.accumulate(&Cost { flops: 10, cmps: 20, cache_ops: 30, stream_bytes: 40 });
        assert_eq!(t, Cost { flops: 11, cmps: 22, cache_ops: 33, stream_bytes: 44 });
    }
}
