//! The per-frame CPU collision-detection driver.

use crate::bvh::MeshBvh;
use crate::cost::Cost;
use crate::gjk::{gjk_distance, penetration_depth, GjkResult};
use rbcd_geometry::{hull, HullError, Mesh};
use rbcd_math::{Aabb, Mat4, Vec3};

/// Which parts of the pipeline to run — the paper's two CPU baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// AABB broad phase only (Figure 8a/8b baseline).
    Broad,
    /// Broad phase + GJK narrow phase on convex hulls (Figure 8c/8d
    /// baseline).
    BroadAndNarrow,
}

/// A collisionable body registered with the detector.
#[derive(Debug, Clone)]
pub struct CdBody {
    /// Caller-chosen identifier reported in collision pairs.
    pub id: u32,
    bvh: MeshBvh,
    hull_local: Vec<Vec3>,
    hull_world: Vec<Vec3>,
}

impl CdBody {
    /// Builds the per-body acceleration structures (BVH + convex hull).
    /// This is setup cost, excluded from per-frame reports — the paper
    /// likewise subtracts mesh-loading time (§4.3).
    ///
    /// # Errors
    ///
    /// Returns [`HullError`] when the mesh is degenerate (hulls need
    /// four non-coplanar vertices).
    pub fn from_mesh(id: u32, mesh: &Mesh) -> Result<Self, HullError> {
        // Validate that the mesh admits a hull (degenerate input check),
        // but keep the *full* vertex set for the support function:
        // Bullet's `btConvexHullShape` stores every point it is given
        // and scans all of them per support call — games construct it
        // straight from render meshes without simplification.
        hull::mesh_hull(mesh)?;
        let hull_local = mesh.positions().to_vec();
        let hull_world = hull_local.clone();
        Ok(Self { id, bvh: MeshBvh::build(mesh), hull_local, hull_world })
    }

    /// Vertices scanned by the support function (the full mesh vertex
    /// set, as in Bullet's `btConvexHullShape`).
    pub fn hull_vertex_count(&self) -> usize {
        self.hull_local.len()
    }

    /// Triangles in the body's mesh.
    pub fn triangle_count(&self) -> usize {
        self.bvh.triangle_count()
    }
}

/// Result of one detection frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DetectResult {
    /// Colliding id pairs, smaller id first, sorted.
    pub pairs: Vec<(u32, u32)>,
    /// Broad-phase candidate pairs (before any narrow phase).
    pub candidates: usize,
    /// Operation counts for the frame.
    pub cost: Cost,
}

/// The CPU collision detector: Bullet-style broad (+ optional narrow)
/// phase over a fixed set of bodies with per-frame transforms.
#[derive(Debug, Clone)]
pub struct CpuCollisionDetector {
    bodies: Vec<CdBody>,
}

impl CpuCollisionDetector {
    /// Creates a detector over `bodies`.
    pub fn new(bodies: Vec<CdBody>) -> Self {
        Self { bodies }
    }

    /// The registered bodies.
    pub fn bodies(&self) -> &[CdBody] {
        &self.bodies
    }

    /// Total triangles across all bodies.
    pub fn triangle_count(&self) -> usize {
        self.bodies.iter().map(CdBody::triangle_count).sum()
    }

    /// Runs one frame of collision detection with the given per-body
    /// transforms (parallel to the body list).
    ///
    /// # Panics
    ///
    /// Panics if `transforms.len() != bodies.len()`.
    pub fn detect(&mut self, transforms: &[Mat4], phase: Phase) -> DetectResult {
        assert_eq!(
            transforms.len(),
            self.bodies.len(),
            "one transform per body required"
        );
        let mut cost = Cost::default();

        // Broad phase step 1: per-frame shape update — refit every
        // body's BVH under its new transform (Bullet's updateAabbs for
        // moving mesh shapes).
        let aabbs: Vec<Aabb> = self
            .bodies
            .iter_mut()
            .zip(transforms)
            .map(|(body, m)| body.bvh.refit(m, &mut cost))
            .collect();

        // Broad phase step 2: all-pairs AABB overlap (the paper's
        // "most simple broad phase").
        let n = self.bodies.len();
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                cost.cmps += 6;
                cost.cache_ops += 4;
                if aabbs[i].intersects(&aabbs[j]) {
                    candidates.push((i, j));
                }
            }
        }

        let mut pairs: Vec<(u32, u32)> = match phase {
            Phase::Broad => candidates
                .iter()
                .map(|&(i, j)| id_pair(&self.bodies, i, j))
                .collect(),
            Phase::BroadAndNarrow => {
                // Transform hull vertices once per body involved in any
                // candidate pair.
                let mut involved: Vec<bool> = vec![false; n];
                for &(i, j) in &candidates {
                    involved[i] = true;
                    involved[j] = true;
                }
                for (i, body) in self.bodies.iter_mut().enumerate() {
                    if involved[i] {
                        let m = &transforms[i];
                        for (w, &l) in body.hull_world.iter_mut().zip(&body.hull_local) {
                            *w = m.transform_point(l);
                        }
                        let nv = body.hull_local.len() as u64;
                        cost.flops += nv * 18;
                        cost.cache_ops += nv * 2;
                    }
                }
                // Per candidate pair, Bullet computes closest points
                // with GJK; penetrating pairs additionally run the
                // Minkowski penetration-depth solver to produce the
                // contact. A pair collides when it penetrates or comes
                // within the contact margin (Bullet: 0.04 per shape).
                const MARGIN: f32 = 0.08;
                candidates
                    .iter()
                    .filter(|&&(i, j)| {
                        match gjk_distance(
                            &self.bodies[i].hull_world,
                            &self.bodies[j].hull_world,
                            &mut cost,
                        ) {
                            GjkResult::Intersecting => {
                                let (_depth, _dir) = penetration_depth(
                                    &self.bodies[i].hull_world,
                                    &self.bodies[j].hull_world,
                                    &mut cost,
                                );
                                true
                            }
                            GjkResult::Separated { distance } => distance <= MARGIN,
                        }
                    })
                    .map(|&(i, j)| id_pair(&self.bodies, i, j))
                    .collect()
            }
        };
        pairs.sort_unstable();

        DetectResult { pairs, candidates: candidates.len(), cost }
    }
}

fn id_pair(bodies: &[CdBody], i: usize, j: usize) -> (u32, u32) {
    let (a, b) = (bodies[i].id, bodies[j].id);
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_geometry::shapes;

    fn detector_of(meshes: &[&Mesh]) -> CpuCollisionDetector {
        CpuCollisionDetector::new(
            meshes
                .iter()
                .enumerate()
                .map(|(i, m)| CdBody::from_mesh(i as u32, m).unwrap())
                .collect(),
        )
    }

    #[test]
    fn broad_phase_reports_overlapping_aabbs() {
        let cube = shapes::cube(1.0);
        let mut det = detector_of(&[&cube, &cube, &cube]);
        let transforms = vec![
            Mat4::IDENTITY,
            Mat4::translation(Vec3::new(1.5, 0.0, 0.0)),
            Mat4::translation(Vec3::new(10.0, 0.0, 0.0)),
        ];
        let r = det.detect(&transforms, Phase::Broad);
        assert_eq!(r.pairs, vec![(0, 1)]);
        assert_eq!(r.candidates, 1);
        assert!(r.cost.cycles() > 0);
    }

    #[test]
    fn narrow_phase_prunes_aabb_false_positives() {
        // Two spheres whose AABBs overlap at the corner but whose hulls
        // do not touch.
        let sphere = shapes::icosphere(1.0, 2);
        let mut det = detector_of(&[&sphere, &sphere]);
        let d = 1.6; // AABB corners overlap (within 2 on each axis) but distance 2.77 > 2
        let transforms = vec![Mat4::IDENTITY, Mat4::translation(Vec3::new(d, d, d))];
        let broad = det.detect(&transforms, Phase::Broad);
        assert_eq!(broad.pairs.len(), 1, "AABBs should overlap");
        let narrow = det.detect(&transforms, Phase::BroadAndNarrow);
        assert!(narrow.pairs.is_empty(), "GJK should prune the corner case");
    }

    #[test]
    fn narrow_phase_confirms_true_collisions() {
        let sphere = shapes::icosphere(1.0, 2);
        let mut det = detector_of(&[&sphere, &sphere]);
        let transforms = vec![Mat4::IDENTITY, Mat4::translation(Vec3::new(1.2, 0.0, 0.0))];
        let r = det.detect(&transforms, Phase::BroadAndNarrow);
        assert_eq!(r.pairs, vec![(0, 1)]);
    }

    #[test]
    fn narrow_costs_more_than_broad_on_candidates() {
        let sphere = shapes::icosphere(1.0, 3);
        let mut det = detector_of(&[&sphere, &sphere]);
        let transforms = vec![Mat4::IDENTITY, Mat4::translation(Vec3::new(1.0, 0.0, 0.0))];
        let broad = det.detect(&transforms, Phase::Broad);
        let narrow = det.detect(&transforms, Phase::BroadAndNarrow);
        assert!(narrow.cost.cycles() > broad.cost.cycles());
    }

    #[test]
    fn hull_convexification_causes_false_positive_on_concave_shape() {
        // A small cube sitting inside the L's notch: GJK on hulls reports
        // a collision that the exact surfaces do not have (Figure 2).
        let l = shapes::l_prism(2.0, 1.0);
        let cube = shapes::cube(0.15);
        let mut det = detector_of(&[&l, &cube]);
        let pos = Mat4::translation(Vec3::new(0.6, 0.6, 0.0));
        let r = det.detect(&[Mat4::IDENTITY, pos], Phase::BroadAndNarrow);
        assert_eq!(r.pairs, vec![(0, 1)], "hull fills the notch → false positive");
        let exact = rbcd_geometry::intersect::meshes_intersect(&l, &cube.transformed(&pos));
        assert!(!exact, "surfaces do not actually touch");
    }

    #[test]
    #[should_panic(expected = "one transform per body")]
    fn transform_count_mismatch_panics() {
        let cube = shapes::cube(1.0);
        let mut det = detector_of(&[&cube]);
        let _ = det.detect(&[], Phase::Broad);
    }

    #[test]
    fn cost_grows_quadratically_with_bodies_in_pair_tests() {
        let cube = shapes::cube(1.0);
        let spread = |n: usize| -> Vec<Mat4> {
            (0..n)
                .map(|i| Mat4::translation(Vec3::new(i as f32 * 10.0, 0.0, 0.0)))
                .collect()
        };
        let mut small = detector_of(&[&cube; 8]);
        let mut big = detector_of(&[&cube; 32]);
        let cs = small.detect(&spread(8), Phase::Broad).cost;
        let cb = big.detect(&spread(32), Phase::Broad).cost;
        // Pair-test compares: C(8,2)=28 vs C(32,2)=496 → ~17.7×; the
        // refit part scales 4×. Total compare growth must exceed 4×.
        assert!(cb.cmps > 4 * cs.cmps);
    }
}
