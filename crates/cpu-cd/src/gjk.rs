#![allow(clippy::items_after_test_module)]
//! Boolean GJK (Gilbert–Johnson–Keerthi) intersection over convex point
//! clouds, with operation counting.
//!
//! This is the narrow phase of the paper's strongest CPU baseline
//! (§5.1): Bullet's GJK applied to convex hulls — for concave shapes,
//! the hull of the shape, which is precisely what introduces the false
//! positives of Figure 2. Supports are linear scans over the vertex
//! array, matching `btConvexHullShape`.

use crate::cost::Cost;
use rbcd_math::Vec3;

/// Maximum simplex-refinement iterations before declaring intersection
/// (deep or exactly touching configurations converge slowly; Bullet
/// bails out similarly in its degeneracy paths).
pub const MAX_ITERATIONS: usize = 64;

/// Support point of a cloud: the vertex extremal along `dir`.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn support(points: &[Vec3], dir: Vec3, cost: &mut Cost) -> Vec3 {
    assert!(!points.is_empty(), "support of an empty point set");
    cost.flops += points.len() as u64 * 5; // dot = 3 mul + 2 add
    cost.cmps += points.len() as u64;
    cost.cache_ops += points.len() as u64; // vertex loads (L1-resident per pair test)
    let mut best = points[0];
    let mut best_d = best.dot(dir);
    for &p in &points[1..] {
        let d = p.dot(dir);
        if d > best_d {
            best_d = d;
            best = p;
        }
    }
    best
}

/// Minkowski-difference support.
fn minkowski_support(a: &[Vec3], b: &[Vec3], dir: Vec3, cost: &mut Cost) -> Vec3 {
    cost.flops += 3;
    support(a, dir, cost) - support(b, -dir, cost)
}

/// `true` when the convex hulls of the two world-space point clouds
/// intersect (touching counts as intersecting, up to float tolerance).
///
/// # Panics
///
/// Panics if either cloud is empty.
pub fn gjk_intersect(a: &[Vec3], b: &[Vec3], cost: &mut Cost) -> bool {
    let centroid = |pts: &[Vec3]| pts.iter().fold(Vec3::ZERO, |s, &p| s + p) / pts.len() as f32;
    let mut dir = centroid(b) - centroid(a);
    cost.flops += (a.len() + b.len()) as u64 * 3;
    if dir.length_squared() < 1e-12 {
        dir = Vec3::X;
    }

    let mut simplex: Vec<Vec3> = Vec::with_capacity(4);
    simplex.push(minkowski_support(a, b, dir, cost));
    dir = -simplex[0];

    for _ in 0..MAX_ITERATIONS {
        if dir.length_squared() < 1e-12 {
            // Origin on the simplex boundary: touching.
            return true;
        }
        let p = minkowski_support(a, b, dir, cost);
        cost.flops += 5;
        cost.cmps += 1;
        if p.dot(dir) < -1e-7 {
            return false; // Separating direction found.
        }
        simplex.push(p);
        cost.flops += 60; // simplex case analysis (bounded constant)
        cost.cmps += 8;
        cost.cache_ops += 8;
        if do_simplex(&mut simplex, &mut dir) {
            return true;
        }
    }
    // No separating axis in the iteration budget: treat as intersecting.
    true
}

/// Refines the simplex towards the origin. Returns `true` when the
/// simplex encloses the origin. The most recently added point is last.
fn do_simplex(simplex: &mut Vec<Vec3>, dir: &mut Vec3) -> bool {
    match simplex.len() {
        2 => {
            let (b, a) = (simplex[0], simplex[1]);
            let ab = b - a;
            let ao = -a;
            if ab.dot(ao) > 0.0 {
                *dir = ab.cross(ao).cross(ab);
            } else {
                *simplex = vec![a];
                *dir = ao;
            }
            false
        }
        3 => {
            let (c, b, a) = (simplex[0], simplex[1], simplex[2]);
            let ab = b - a;
            let ac = c - a;
            let ao = -a;
            let abc = ab.cross(ac);
            if abc.cross(ac).dot(ao) > 0.0 {
                if ac.dot(ao) > 0.0 {
                    *simplex = vec![c, a];
                    *dir = ac.cross(ao).cross(ac);
                } else {
                    *simplex = vec![b, a];
                    return do_simplex(simplex, dir);
                }
            } else if ab.cross(abc).dot(ao) > 0.0 {
                *simplex = vec![b, a];
                return do_simplex(simplex, dir);
            } else if abc.dot(ao) > 0.0 {
                *dir = abc;
            } else {
                *simplex = vec![b, c, a];
                *dir = -abc;
            }
            false
        }
        4 => {
            let (d, c, b, a) = (simplex[0], simplex[1], simplex[2], simplex[3]);
            let ao = -a;
            let abc = (b - a).cross(c - a);
            let acd = (c - a).cross(d - a);
            let adb = (d - a).cross(b - a);
            if abc.dot(ao) > 0.0 {
                *simplex = vec![c, b, a];
                *dir = abc;
                return do_simplex(simplex, dir);
            }
            if acd.dot(ao) > 0.0 {
                *simplex = vec![d, c, a];
                *dir = acd;
                return do_simplex(simplex, dir);
            }
            if adb.dot(ao) > 0.0 {
                *simplex = vec![b, d, a];
                *dir = adb;
                return do_simplex(simplex, dir);
            }
            true // Origin inside all four faces.
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_geometry::{hull, shapes};
    use rbcd_math::Mat4;

    fn world(mesh: &rbcd_geometry::Mesh, m: &Mat4) -> Vec<Vec3> {
        let h = hull::mesh_hull(mesh).unwrap();
        h.vertices().iter().map(|&p| m.transform_point(p)).collect()
    }

    fn cost() -> Cost {
        Cost::default()
    }

    #[test]
    fn overlapping_cubes_intersect() {
        let cube = shapes::cube(1.0);
        let a = world(&cube, &Mat4::IDENTITY);
        let b = world(&cube, &Mat4::translation(Vec3::new(1.5, 0.0, 0.0)));
        assert!(gjk_intersect(&a, &b, &mut cost()));
    }

    #[test]
    fn separated_cubes_do_not_intersect() {
        let cube = shapes::cube(1.0);
        let a = world(&cube, &Mat4::IDENTITY);
        let b = world(&cube, &Mat4::translation(Vec3::new(2.5, 0.0, 0.0)));
        assert!(!gjk_intersect(&a, &b, &mut cost()));
    }

    #[test]
    fn spheres_match_analytic_distance() {
        let sphere = shapes::icosphere(1.0, 2);
        for dx in [0.5f32, 1.0, 1.5, 1.9, 2.5, 3.0, 5.0] {
            let a = world(&sphere, &Mat4::IDENTITY);
            let b = world(&sphere, &Mat4::translation(Vec3::new(dx, 0.0, 0.0)));
            let expect = dx <= 2.0; // radius 1 each (hull slightly inside)
            let got = gjk_intersect(&a, &b, &mut cost());
            if (dx - 2.0).abs() > 0.15 {
                assert_eq!(got, expect, "dx = {dx}");
            }
        }
    }

    #[test]
    fn rotated_boxes() {
        let cube = shapes::cube(1.0);
        // Rotated 45° about Z: half-diagonal reaches sqrt(2) ≈ 1.414.
        let rot = Mat4::rotation_z(std::f32::consts::FRAC_PI_4);
        let a = world(&cube, &rot);
        let near = world(&cube, &Mat4::translation(Vec3::new(2.3, 0.0, 0.0)));
        assert!(gjk_intersect(&a, &near, &mut cost())); // 1.414 + 1 > 2.3
        let far = world(&cube, &Mat4::translation(Vec3::new(2.6, 0.0, 0.0)));
        assert!(!gjk_intersect(&a, &far, &mut cost()));
    }

    #[test]
    fn containment_intersects() {
        let big = world(&shapes::cube(2.0), &Mat4::IDENTITY);
        let small = world(&shapes::cube(0.3), &Mat4::translation(Vec3::new(0.2, 0.1, 0.0)));
        assert!(gjk_intersect(&big, &small, &mut cost()));
        assert!(gjk_intersect(&small, &big, &mut cost()));
    }

    #[test]
    fn gjk_agrees_with_mesh_ground_truth_for_convex_shapes() {
                let mut rng = rbcd_math::Rng::seed_from_u64(7);
        let shape = shapes::icosphere(1.0, 1);
        let mut agreements = 0;
        let mut total = 0;
        for _ in 0..60 {
            let m = Mat4::translation(Vec3::new(
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
            )) * Mat4::rotation_y(rng.gen_range(0.0..std::f32::consts::TAU));
            let a_pts = world(&shape, &Mat4::IDENTITY);
            let b_pts = world(&shape, &m);
            let gjk = gjk_intersect(&a_pts, &b_pts, &mut cost());
            // Solid ground truth: surfaces intersect OR one centroid
            // inside the other (containment) — for these sizes,
            // containment cannot happen, so surface test suffices.
            let exact = rbcd_geometry::intersect::meshes_intersect(&shape, &shape.transformed(&m));
            total += 1;
            // GJK on the hull may differ only within a hair of touching;
            // count agreement and require it to be overwhelming.
            if gjk == exact {
                agreements += 1;
            }
        }
        assert!(agreements * 100 >= total * 95, "{agreements}/{total}");
    }

    #[test]
    fn support_is_extremal() {
        let pts = vec![
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(-1.0, 2.0, 0.0),
            Vec3::new(0.0, -3.0, 1.0),
        ];
        let mut c = cost();
        assert_eq!(support(&pts, Vec3::Y, &mut c), Vec3::new(-1.0, 2.0, 0.0));
        assert_eq!(support(&pts, -Vec3::Y, &mut c), Vec3::new(0.0, -3.0, 1.0));
        assert!(c.flops > 0);
    }

    #[test]
    fn cost_scales_with_hull_size() {
        let small = world(&shapes::icosphere(1.0, 0), &Mat4::IDENTITY);
        let big = world(&shapes::icosphere(1.0, 3), &Mat4::IDENTITY);
        let off = Mat4::translation(Vec3::new(1.0, 0.0, 0.0));
        let small_b = world(&shapes::icosphere(1.0, 0), &off);
        let big_b = world(&shapes::icosphere(1.0, 3), &off);
        let mut cs = cost();
        let mut cb = cost();
        gjk_intersect(&small, &small_b, &mut cs);
        gjk_intersect(&big, &big_b, &mut cb);
        assert!(cb.flops > cs.flops);
    }
}

/// Outcome of a GJK distance query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GjkResult {
    /// The hulls overlap (origin inside the Minkowski difference).
    Intersecting,
    /// The hulls are separated by `distance`.
    Separated {
        /// Minimum distance between the hulls.
        distance: f32,
    },
}

/// Closest point to the origin on a simplex of 1–4 points, together with
/// the reduced simplex that supports it.
fn closest_on_simplex(simplex: &mut Vec<Vec3>) -> Vec3 {
    match simplex.len() {
        1 => simplex[0],
        2 => {
            let (b, a) = (simplex[0], simplex[1]);
            let ab = b - a;
            let t = if ab.length_squared() < 1e-12 {
                0.0
            } else {
                (-a.dot(ab) / ab.length_squared()).clamp(0.0, 1.0)
            };
            if t <= 0.0 {
                *simplex = vec![a];
                a
            } else if t >= 1.0 {
                *simplex = vec![b];
                b
            } else {
                a + ab * t
            }
        }
        3 => closest_on_triangle(simplex),
        4 => closest_on_tetrahedron(simplex),
        _ => unreachable!("simplex size bounded by 4"),
    }
}

fn closest_on_triangle(simplex: &mut Vec<Vec3>) -> Vec3 {
    let (c, b, a) = (simplex[0], simplex[1], simplex[2]);
    // Voronoi-region walk (Ericson, Real-Time Collision Detection §5.1.5)
    // against the query point `origin`.
    let ab = b - a;
    let ac = c - a;
    let ap = -a;
    let d1 = ab.dot(ap);
    let d2 = ac.dot(ap);
    if d1 <= 0.0 && d2 <= 0.0 {
        *simplex = vec![a];
        return a;
    }
    let bp = -b;
    let d3 = ab.dot(bp);
    let d4 = ac.dot(bp);
    if d3 >= 0.0 && d4 <= d3 {
        *simplex = vec![b];
        return b;
    }
    let vc = d1 * d4 - d3 * d2;
    if vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0 {
        let t = d1 / (d1 - d3);
        *simplex = vec![b, a];
        return a + ab * t;
    }
    let cp = -c;
    let d5 = ab.dot(cp);
    let d6 = ac.dot(cp);
    if d6 >= 0.0 && d5 <= d6 {
        *simplex = vec![c];
        return c;
    }
    let vb = d5 * d2 - d1 * d6;
    if vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0 {
        let t = d2 / (d2 - d6);
        *simplex = vec![c, a];
        return a + ac * t;
    }
    let va = d3 * d6 - d5 * d4;
    if va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0 {
        let t = (d4 - d3) / ((d4 - d3) + (d5 - d6));
        *simplex = vec![c, b];
        return b + (c - b) * t;
    }
    let denom = 1.0 / (va + vb + vc);
    a + ab * (vb * denom) + ac * (vc * denom)
}

fn closest_on_tetrahedron(simplex: &mut Vec<Vec3>) -> Vec3 {
    let (d, c, b, a) = (simplex[0], simplex[1], simplex[2], simplex[3]);
    // Inside test against each face; otherwise recurse on the face the
    // origin is in front of, keeping the best.
    let faces = [[c, b, a], [d, c, a], [b, d, a], [d, b, c]];
    let mut best: Option<(f32, Vec3, Vec<Vec3>)> = None;
    let mut inside = true;
    for f in faces {
        let n = (f[1] - f[0]).cross(f[2] - f[0]);
        let to_origin = -f[0];
        let d_origin = n.dot(to_origin);
        // The fourth point lies behind the face plane for an outward face.
        let fourth = (a + b + c + d) * 0.25;
        let d_fourth = n.dot(fourth - f[0]);
        if d_origin * d_fourth < 0.0 {
            inside = false;
            let mut sub = f.to_vec();
            let p = closest_on_triangle(&mut sub);
            let dist = p.length_squared();
            if best.as_ref().is_none_or(|(bd, _, _)| dist < *bd) {
                best = Some((dist, p, sub));
            }
        }
    }
    if inside {
        return Vec3::ZERO;
    }
    let (_, p, sub) = best.expect("origin outside at least one face");
    *simplex = sub;
    p
}

/// GJK distance query between two convex point clouds, as Bullet's
/// `btGjkPairDetector` performs for every broad-phase pair.
///
/// # Panics
///
/// Panics if either cloud is empty.
pub fn gjk_distance(a: &[Vec3], b: &[Vec3], cost: &mut Cost) -> GjkResult {
    let mut dir = Vec3::X;
    let mut simplex: Vec<Vec3> = vec![minkowski_support(a, b, dir, cost)];
    for _ in 0..MAX_ITERATIONS {
        let closest = closest_on_simplex(&mut simplex);
        cost.flops += 70;
        cost.cmps += 12;
        cost.cache_ops += 10;
        let dist2 = closest.length_squared();
        if dist2 < 1e-10 {
            return GjkResult::Intersecting;
        }
        dir = -closest;
        let p = minkowski_support(a, b, dir, cost);
        cost.flops += 8;
        cost.cmps += 2;
        // Convergence: no point is meaningfully closer in this direction.
        let progress = dist2 - p.dot(-dir);
        if progress <= 1e-5 * dist2.max(1.0) || simplex.len() == 4 {
            return GjkResult::Separated { distance: dist2.sqrt() };
        }
        simplex.push(p);
    }
    GjkResult::Separated {
        distance: closest_on_simplex(&mut simplex).length(),
    }
}

/// The 42-direction sample set Bullet's Minkowski penetration-depth
/// solver uses (icosahedron vertices plus edge midpoints), normalized.
fn penetration_directions() -> Vec<Vec3> {
    let t = (1.0 + 5.0f32.sqrt()) / 2.0;
    let verts: Vec<Vec3> = [
        (-1.0, t, 0.0),
        (1.0, t, 0.0),
        (-1.0, -t, 0.0),
        (1.0, -t, 0.0),
        (0.0, -1.0, t),
        (0.0, 1.0, t),
        (0.0, -1.0, -t),
        (0.0, 1.0, -t),
        (t, 0.0, -1.0),
        (t, 0.0, 1.0),
        (-t, 0.0, -1.0),
        (-t, 0.0, 1.0),
    ]
    .iter()
    .map(|&(x, y, z)| Vec3::new(x, y, z).normalize())
    .collect();
    let mut dirs = verts.clone();
    for i in 0..verts.len() {
        for j in (i + 1)..verts.len() {
            let m = verts[i] + verts[j];
            if m.length() > 0.5 {
                // Edge midpoints of the icosahedron only (neighbours).
                if verts[i].dot(verts[j]) > 0.3 {
                    dirs.push(m.normalize());
                }
            }
        }
    }
    dirs.truncate(42);
    dirs
}

/// Penetration depth of two overlapping hulls, in the style of Bullet's
/// `btMinkowskiPenetrationDepthSolver`: sample the 42 canonical
/// directions, take the shallowest, and refine around it.
///
/// Returns `(depth, direction)`: translating `b` by `direction * depth`
/// separates the hulls (approximately).
///
/// # Panics
///
/// Panics if either cloud is empty.
pub fn penetration_depth(a: &[Vec3], b: &[Vec3], cost: &mut Cost) -> (f32, Vec3) {
    let dirs = penetration_directions();
    let mut best = (f32::INFINITY, Vec3::X);
    for &d in &dirs {
        // Overlap extent along d: how far B's support in -d is inside
        // A's support in +d.
        let sa = support(a, d, cost).dot(d);
        let sb = support(b, -d, cost).dot(d);
        cost.flops += 12;
        cost.cmps += 1;
        let depth = sa - sb;
        if depth < best.0 {
            best = (depth, d);
        }
    }
    // Local refinement around the best direction.
    let (mut depth, mut dir) = best;
    let tangent1 = dir.any_orthonormal();
    let tangent2 = dir.cross(tangent1);
    for step in [0.25f32, 0.1, 0.04] {
        for (du, dv) in [(step, 0.0), (-step, 0.0), (0.0, step), (0.0, -step)] {
            let d = (dir + tangent1 * du + tangent2 * dv).normalize();
            let sa = support(a, d, cost).dot(d);
            let sb = support(b, -d, cost).dot(d);
            cost.flops += 20;
            cost.cmps += 1;
            let cand = sa - sb;
            if cand < depth {
                depth = cand;
                dir = d;
            }
        }
    }
    (depth.max(0.0), dir)
}

#[cfg(test)]
mod distance_tests {
    use super::*;
    use rbcd_geometry::{hull, shapes};
    use rbcd_math::Mat4;

    fn world(mesh: &rbcd_geometry::Mesh, m: &Mat4) -> Vec<Vec3> {
        let h = hull::mesh_hull(mesh).unwrap();
        h.vertices().iter().map(|&p| m.transform_point(p)).collect()
    }

    #[test]
    fn distance_between_cubes_matches_gap() {
        let cube = shapes::cube(1.0);
        let a = world(&cube, &Mat4::IDENTITY);
        for gap in [0.5f32, 1.0, 3.0] {
            let b = world(&cube, &Mat4::translation(Vec3::new(2.0 + gap, 0.0, 0.0)));
            match gjk_distance(&a, &b, &mut Cost::default()) {
                GjkResult::Separated { distance } => {
                    assert!((distance - gap).abs() < 0.02, "gap {gap} got {distance}");
                }
                GjkResult::Intersecting => panic!("separated cubes reported intersecting"),
            }
        }
    }

    #[test]
    fn distance_detects_intersection() {
        let cube = shapes::cube(1.0);
        let a = world(&cube, &Mat4::IDENTITY);
        let b = world(&cube, &Mat4::translation(Vec3::new(1.2, 0.3, -0.4)));
        assert_eq!(gjk_distance(&a, &b, &mut Cost::default()), GjkResult::Intersecting);
    }

    #[test]
    fn distance_agrees_with_boolean_gjk() {
                let mut rng = rbcd_math::Rng::seed_from_u64(11);
        let shape = shapes::icosphere(1.0, 1);
        for _ in 0..40 {
            let m = Mat4::translation(Vec3::new(
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
            ));
            let a = world(&shape, &Mat4::IDENTITY);
            let b = world(&shape, &m);
            let boolean = gjk_intersect(&a, &b, &mut Cost::default());
            let dist = gjk_distance(&a, &b, &mut Cost::default());
            match dist {
                GjkResult::Intersecting => assert!(boolean, "distance says hit, boolean says miss"),
                GjkResult::Separated { distance } => {
                    // Near-touching configurations may disagree within
                    // tolerance; clear separations must agree.
                    if distance > 0.05 {
                        assert!(!boolean, "boolean says hit at distance {distance}");
                    }
                }
            }
        }
    }

    #[test]
    fn sphere_distance_analytic() {
        let s = shapes::icosphere(1.0, 3);
        let a = world(&s, &Mat4::IDENTITY);
        let b = world(&s, &Mat4::translation(Vec3::new(3.0, 0.0, 0.0)));
        match gjk_distance(&a, &b, &mut Cost::default()) {
            GjkResult::Separated { distance } => {
                assert!((distance - 1.0).abs() < 0.03, "got {distance}");
            }
            _ => panic!("expected separation"),
        }
    }

    #[test]
    fn penetration_depth_of_overlapping_cubes() {
        let cube = shapes::cube(1.0);
        let a = world(&cube, &Mat4::IDENTITY);
        for overlap in [0.2f32, 0.6, 1.0] {
            let b = world(&cube, &Mat4::translation(Vec3::new(2.0 - overlap, 0.0, 0.0)));
            let (depth, dir) = penetration_depth(&a, &b, &mut Cost::default());
            assert!(
                (depth - overlap).abs() < 0.12,
                "overlap {overlap}: depth {depth}"
            );
            // Separation direction points roughly along +X.
            assert!(dir.x.abs() > 0.8, "direction {dir}");
        }
    }

    #[test]
    fn penetration_depth_costs_more_than_boolean() {
        let s = shapes::icosphere(1.0, 3);
        let a = world(&s, &Mat4::IDENTITY);
        let b = world(&s, &Mat4::translation(Vec3::new(0.5, 0.0, 0.0)));
        let mut cb = Cost::default();
        gjk_intersect(&a, &b, &mut cb);
        let mut cp = Cost::default();
        penetration_depth(&a, &b, &mut cp);
        assert!(cp.flops > 3 * cb.flops, "penetration {} vs boolean {}", cp.flops, cb.flops);
    }

    #[test]
    fn direction_set_has_42_unit_vectors() {
        let dirs = penetration_directions();
        assert_eq!(dirs.len(), 42);
        for d in dirs {
            assert!((d.length() - 1.0).abs() < 1e-5);
        }
    }
}
