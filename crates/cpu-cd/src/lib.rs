//! CPU collision-detection baselines with a Cortex-A9-class cost model.
//!
//! The paper compares RBCD against two software configurations built on
//! the Bullet physics library and simulated with Marss/McPAT (§4.3):
//!
//! 1. **Broad phase only** — per-frame world-AABB maintenance for every
//!    collisionable object plus an all-pairs AABB overlap test
//!    ("the most simple broad phase", §5.1);
//! 2. **Broad + narrow phase** — the broad phase followed by GJK
//!    (Gilbert–Johnson–Keerthi) on the convex hulls of the surviving
//!    pairs, as Bullet's `btGjkPairDetector` does.
//!
//! This crate reimplements both from scratch:
//!
//! * [`bvh`] — a refittable AABB tree per concave mesh. Bullet keeps a
//!   BVH per triangle-mesh collision shape and refits it whenever the
//!   mesh moves or deforms (the games are Unity titles with skinned,
//!   animated geometry); the refit walk is the dominant per-frame broad
//!   cost and is computed for real here.
//! * [`gjk`] — a boolean GJK with full simplex handling; supports are
//!   linear scans over hull vertices, matching Bullet's
//!   `btConvexHullShape::localGetSupportingVertexWithoutMargin`.
//! * [`CpuCollisionDetector`] — the per-frame driver, charging every
//!   operation to a [`Cost`] sink that converts to cycles, seconds, and
//!   joules under the paper's Table 1 CPU (dual Cortex-A9, 1.5 GHz,
//!   32 KB L1, 1 MB L2, 32 nm).
//!
//! # Example
//!
//! ```
//! use rbcd_cpu_cd::{CdBody, CpuCollisionDetector, Phase};
//! use rbcd_geometry::shapes;
//! use rbcd_math::{Mat4, Vec3};
//!
//! let sphere = shapes::icosphere(1.0, 2);
//! let mut detector = CpuCollisionDetector::new(vec![
//!     CdBody::from_mesh(0, &sphere)?,
//!     CdBody::from_mesh(1, &sphere)?,
//! ]);
//! let transforms = vec![Mat4::IDENTITY, Mat4::translation(Vec3::new(1.0, 0.0, 0.0))];
//! let result = detector.detect(&transforms, Phase::BroadAndNarrow);
//! assert_eq!(result.pairs, vec![(0, 1)]);
//! assert!(result.cost.cycles() > 0);
//! # Ok::<(), rbcd_geometry::HullError>(())
//! ```

#![warn(missing_docs)]

pub mod bvh;
mod cost;
mod detector;
pub mod gjk;

pub use cost::{Cost, CostReport, CpuConfig};
pub use detector::{CdBody, CpuCollisionDetector, DetectResult, Phase};
