//! 3-D convex hulls via quickhull.
//!
//! The GJK narrow-phase baseline operates on convex shapes only; like the
//! paper's Bullet-based reference (§2.2, §4.3), concave meshes are
//! replaced by their convex hull — which is exactly what introduces the
//! false-collisionable area RBCD avoids.

use crate::{Mesh, MeshError};
use rbcd_math::Vec3;
use std::error::Error;
use std::fmt;

/// Error computing a convex hull.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HullError {
    /// Fewer than four input points.
    TooFewPoints,
    /// All points are (nearly) coplanar, collinear, or coincident.
    Degenerate,
}

impl fmt::Display for HullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooFewPoints => write!(f, "convex hull needs at least 4 points"),
            Self::Degenerate => write!(f, "input points are degenerate (coplanar or collinear)"),
        }
    }
}

impl Error for HullError {}

/// A closed convex polytope: hull vertices plus outward-wound faces.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexHull {
    vertices: Vec<Vec3>,
    faces: Vec<[u32; 3]>,
}

impl ConvexHull {
    /// Hull vertex positions (a subset of the input points).
    pub fn vertices(&self) -> &[Vec3] {
        &self.vertices
    }

    /// Outward-wound triangular faces.
    pub fn faces(&self) -> &[[u32; 3]] {
        &self.faces
    }

    /// Support point: the hull vertex with maximal dot product against
    /// `dir`. This is the primitive GJK consumes.
    ///
    /// # Panics
    ///
    /// Never panics: a hull always has at least four vertices.
    pub fn support(&self, dir: Vec3) -> Vec3 {
        let mut best = self.vertices[0];
        let mut best_dot = best.dot(dir);
        for &v in &self.vertices[1..] {
            let d = v.dot(dir);
            if d > best_dot {
                best_dot = d;
                best = v;
            }
        }
        best
    }

    /// Converts the hull into a renderable [`Mesh`].
    ///
    /// # Errors
    ///
    /// Propagates [`MeshError`]; cannot occur for a valid hull.
    pub fn to_mesh(&self) -> Result<Mesh, MeshError> {
        Mesh::new(self.vertices.clone(), self.faces.clone())
    }

    /// `true` when `p` is inside (or within `tolerance` of) the hull.
    pub fn contains_point(&self, p: Vec3, tolerance: f32) -> bool {
        self.faces.iter().all(|&[a, b, c]| {
            let (a, b, c) = (
                self.vertices[a as usize],
                self.vertices[b as usize],
                self.vertices[c as usize],
            );
            let n = (b - a).cross(c - a);
            n.dot(p - a) <= tolerance * n.length().max(1e-12)
        })
    }

    /// Enclosed volume.
    pub fn volume(&self) -> f32 {
        self.faces
            .iter()
            .map(|&[a, b, c]| {
                let (a, b, c) = (
                    self.vertices[a as usize],
                    self.vertices[b as usize],
                    self.vertices[c as usize],
                );
                a.dot(b.cross(c)) / 6.0
            })
            .sum()
    }
}

#[derive(Debug, Clone, Copy)]
struct DVec3 {
    x: f64,
    y: f64,
    z: f64,
}

impl DVec3 {
    fn from_f32(v: Vec3) -> Self {
        Self { x: v.x as f64, y: v.y as f64, z: v.z as f64 }
    }

    fn sub(self, o: Self) -> Self {
        Self { x: self.x - o.x, y: self.y - o.y, z: self.z - o.z }
    }

    fn dot(self, o: Self) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    fn cross(self, o: Self) -> Self {
        Self {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    fn length(self) -> f64 {
        self.dot(self).sqrt()
    }
}

#[derive(Debug, Clone)]
struct Face {
    verts: [u32; 3],
    normal: DVec3,
    offset: f64, // plane: normal·x = offset
    outside: Vec<u32>,
    alive: bool,
}

impl Face {
    fn new(a: u32, b: u32, c: u32, pts: &[DVec3]) -> Self {
        let (pa, pb, pc) = (pts[a as usize], pts[b as usize], pts[c as usize]);
        let normal = pb.sub(pa).cross(pc.sub(pa));
        let offset = normal.dot(pa);
        Self { verts: [a, b, c], normal, offset, outside: Vec::new(), alive: true }
    }

    fn signed_distance(&self, p: DVec3) -> f64 {
        self.normal.dot(p) - self.offset
    }
}

/// Computes the convex hull of a point set.
///
/// Internally runs in `f64` for robustness and returns the hull with the
/// original `f32` coordinates. Duplicate points are tolerated.
///
/// # Errors
///
/// [`HullError::TooFewPoints`] for fewer than 4 points,
/// [`HullError::Degenerate`] when all points are (nearly) coplanar.
pub fn convex_hull(points: &[Vec3]) -> Result<ConvexHull, HullError> {
    if points.len() < 4 {
        return Err(HullError::TooFewPoints);
    }
    let pts: Vec<DVec3> = points.iter().map(|&p| DVec3::from_f32(p)).collect();

    // Scale-aware epsilon.
    let span = {
        let mut lo = pts[0];
        let mut hi = pts[0];
        for p in &pts {
            lo = DVec3 { x: lo.x.min(p.x), y: lo.y.min(p.y), z: lo.z.min(p.z) };
            hi = DVec3 { x: hi.x.max(p.x), y: hi.y.max(p.y), z: hi.z.max(p.z) };
        }
        hi.sub(lo).length().max(1e-12)
    };
    let eps = 1e-9 * span;

    // Initial extreme pair.
    let mut i0 = 0;
    let mut i1 = 0;
    let mut best = -1.0;
    for axis in 0..3 {
        let get = |p: DVec3| match axis {
            0 => p.x,
            1 => p.y,
            _ => p.z,
        };
        let lo = (0..pts.len()).min_by(|&a, &b| get(pts[a]).total_cmp(&get(pts[b]))).unwrap();
        let hi = (0..pts.len()).max_by(|&a, &b| get(pts[a]).total_cmp(&get(pts[b]))).unwrap();
        let d = pts[hi].sub(pts[lo]).length();
        if d > best {
            best = d;
            i0 = lo;
            i1 = hi;
        }
    }
    if best <= eps {
        return Err(HullError::Degenerate);
    }

    // Furthest from the line (i0, i1).
    let dir = pts[i1].sub(pts[i0]);
    let i2 = (0..pts.len())
        .max_by(|&a, &b| {
            let da = dir.cross(pts[a].sub(pts[i0])).length();
            let db = dir.cross(pts[b].sub(pts[i0])).length();
            da.total_cmp(&db)
        })
        .unwrap();
    if dir.cross(pts[i2].sub(pts[i0])).length() <= eps * dir.length() {
        return Err(HullError::Degenerate);
    }

    // Furthest from the plane (i0, i1, i2).
    let n = pts[i1].sub(pts[i0]).cross(pts[i2].sub(pts[i0]));
    let i3 = (0..pts.len())
        .max_by(|&a, &b| {
            let da = n.dot(pts[a].sub(pts[i0])).abs();
            let db = n.dot(pts[b].sub(pts[i0])).abs();
            da.total_cmp(&db)
        })
        .unwrap();
    let d3 = n.dot(pts[i3].sub(pts[i0]));
    if d3.abs() <= eps * n.length().max(1e-300) {
        return Err(HullError::Degenerate);
    }

    // Orient the initial tetrahedron so faces wind outward.
    let (a, b, c, d) = if d3 < 0.0 {
        (i0 as u32, i1 as u32, i2 as u32, i3 as u32)
    } else {
        (i0 as u32, i2 as u32, i1 as u32, i3 as u32)
    };
    let mut faces = vec![
        Face::new(a, b, c, &pts),
        Face::new(a, d, b, &pts),
        Face::new(b, d, c, &pts),
        Face::new(c, d, a, &pts),
    ];

    // Assign every point to the first face it lies outside of.
    let corners = [a, b, c, d];
    for (i, &p) in pts.iter().enumerate() {
        if corners.contains(&(i as u32)) {
            continue;
        }
        for f in faces.iter_mut() {
            if f.signed_distance(p) > eps {
                f.outside.push(i as u32);
                break;
            }
        }
    }

    // Iterate: expand towards the furthest outside point.
    while let Some(fi) = faces.iter().position(|f| f.alive && !f.outside.is_empty()) {
        let &far = faces[fi]
            .outside
            .iter()
            .max_by(|&&p, &&q| {
                faces[fi]
                    .signed_distance(pts[p as usize])
                    .total_cmp(&faces[fi].signed_distance(pts[q as usize]))
            })
            .expect("outside set is non-empty");
        let fp = pts[far as usize];

        // Visible faces and orphaned points.
        let mut orphans: Vec<u32> = Vec::new();
        let mut visible: Vec<usize> = Vec::new();
        for (i, f) in faces.iter_mut().enumerate() {
            if f.alive && f.signed_distance(fp) > eps {
                visible.push(i);
                f.alive = false;
                orphans.append(&mut f.outside);
            }
        }
        debug_assert!(!visible.is_empty(), "far point must see its own face");

        // Horizon: directed edges of visible faces whose reverse is not
        // also an edge of a visible face.
        use std::collections::HashSet;
        let mut edge_set: HashSet<(u32, u32)> = HashSet::new();
        for &vi in &visible {
            let [va, vb, vc] = faces[vi].verts;
            for (u, v) in [(va, vb), (vb, vc), (vc, va)] {
                edge_set.insert((u, v));
            }
        }
        let mut new_faces = Vec::new();
        for &vi in &visible {
            let [va, vb, vc] = faces[vi].verts;
            for (u, v) in [(va, vb), (vb, vc), (vc, va)] {
                if !edge_set.contains(&(v, u)) {
                    // (u, v) is a horizon edge; cap it with the far point.
                    new_faces.push(Face::new(u, v, far, &pts));
                }
            }
        }

        // Reassign orphans to the new faces.
        for p in orphans {
            if p == far {
                continue;
            }
            for f in new_faces.iter_mut() {
                if f.signed_distance(pts[p as usize]) > eps {
                    f.outside.push(p);
                    break;
                }
            }
        }
        faces.extend(new_faces);
        faces.retain(|f| f.alive);
    }

    // Compact vertex set.
    let mut remap = vec![u32::MAX; points.len()];
    let mut vertices = Vec::new();
    let mut out_faces = Vec::with_capacity(faces.len());
    for f in &faces {
        let mut tri = [0u32; 3];
        for (k, &vi) in f.verts.iter().enumerate() {
            if remap[vi as usize] == u32::MAX {
                remap[vi as usize] = vertices.len() as u32;
                vertices.push(points[vi as usize]);
            }
            tri[k] = remap[vi as usize];
        }
        out_faces.push(tri);
    }
    Ok(ConvexHull { vertices, faces: out_faces })
}

/// Convenience: convex hull of a mesh's vertices.
///
/// # Errors
///
/// Same as [`convex_hull`].
pub fn mesh_hull(mesh: &Mesh) -> Result<ConvexHull, HullError> {
    convex_hull(mesh.positions())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    fn assert_valid_hull(hull: &ConvexHull, input: &[Vec3]) {
        // Every input point is inside or on the hull.
        let diag = {
            let bb = rbcd_math::Aabb::from_points(input.iter().copied()).unwrap();
            (bb.max - bb.min).length().max(1e-6)
        };
        for &p in input {
            assert!(hull.contains_point(p, 1e-5 * diag), "input point {p} escapes hull");
        }
        // Hull is a closed 2-manifold with consistent winding.
        use std::collections::HashMap;
        let mut edges: HashMap<(u32, u32), i32> = HashMap::new();
        for &[a, b, c] in hull.faces() {
            for (u, v) in [(a, b), (b, c), (c, a)] {
                *edges.entry((u, v)).or_default() += 1;
                *edges.entry((v, u)).or_default() -= 1;
            }
        }
        for (e, n) in edges {
            assert_eq!(n, 0, "unmatched directed edge {e:?}");
        }
        // Outward winding: positive volume.
        assert!(hull.volume() > 0.0);
    }

    #[test]
    fn hull_of_cube_corners() {
        let cube = shapes::cube(1.0);
        let hull = convex_hull(cube.positions()).unwrap();
        assert_eq!(hull.vertices().len(), 8);
        assert_eq!(hull.faces().len(), 12); // Euler: 2V - 4 triangles
        assert!((hull.volume() - 8.0).abs() < 1e-4);
        assert_valid_hull(&hull, cube.positions());
    }

    #[test]
    fn hull_ignores_interior_points() {
        let mut pts: Vec<Vec3> = shapes::cube(1.0).positions().to_vec();
        pts.push(Vec3::ZERO);
        pts.push(Vec3::new(0.1, 0.2, -0.3));
        let hull = convex_hull(&pts).unwrap();
        assert_eq!(hull.vertices().len(), 8);
        assert_valid_hull(&hull, &pts);
    }

    #[test]
    fn hull_of_sphere_keeps_all_vertices() {
        let s = shapes::icosphere(1.0, 2);
        let hull = mesh_hull(&s).unwrap();
        assert_eq!(hull.vertices().len(), s.vertex_count());
        assert_valid_hull(&hull, s.positions());
        // Volume within 2% of the mesh's.
        assert!((hull.volume() - s.signed_volume()).abs() / s.signed_volume() < 0.02);
    }

    #[test]
    fn hull_of_l_prism_fills_the_notch() {
        let l = shapes::l_prism(2.0, 1.0);
        let hull = mesh_hull(&l).unwrap();
        assert_valid_hull(&hull, l.positions());
        // Convex hull volume strictly exceeds the concave solid's volume:
        // this is the false-collisionable area of Figure 2. For the L the
        // exact ratio is 3.5 / 3 ≈ 1.167.
        assert!(hull.volume() > 1.15 * l.signed_volume());
    }

    #[test]
    fn support_function_extremes() {
        let hull = mesh_hull(&shapes::cube(1.0)).unwrap();
        assert_eq!(hull.support(Vec3::X).x, 1.0);
        assert_eq!(hull.support(-Vec3::X).x, -1.0);
        let s = hull.support(Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(s, Vec3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert_eq!(convex_hull(&[Vec3::ZERO; 3]).unwrap_err(), HullError::TooFewPoints);
        // Coincident.
        assert_eq!(convex_hull(&[Vec3::ZERO; 10]).unwrap_err(), HullError::Degenerate);
        // Collinear.
        let line: Vec<Vec3> = (0..10).map(|i| Vec3::new(i as f32, 0.0, 0.0)).collect();
        assert_eq!(convex_hull(&line).unwrap_err(), HullError::Degenerate);
        // Coplanar.
        let plane: Vec<Vec3> = (0..4)
            .flat_map(|i| (0..4).map(move |j| Vec3::new(i as f32, j as f32, 0.0)))
            .collect();
        assert_eq!(convex_hull(&plane).unwrap_err(), HullError::Degenerate);
    }

    #[test]
    fn hull_to_mesh_roundtrip() {
        let hull = mesh_hull(&shapes::cube(1.0)).unwrap();
        let mesh = hull.to_mesh().unwrap();
        assert!((mesh.signed_volume() - 8.0).abs() < 1e-4);
    }

    #[test]
    fn random_point_cloud_hull_is_valid() {
                let mut rng = rbcd_math::Rng::seed_from_u64(42);
        for _ in 0..10 {
            let pts: Vec<Vec3> = (0..60)
                .map(|_| {
                    Vec3::new(
                        rng.gen_range(-3.0..3.0),
                        rng.gen_range(-3.0..3.0),
                        rng.gen_range(-3.0..3.0),
                    )
                })
                .collect();
            let hull = convex_hull(&pts).unwrap();
            assert_valid_hull(&hull, &pts);
        }
    }
}
