//! Exact intersection predicates.
//!
//! These are the *ground truth* against which the collision detectors
//! (CPU broad/narrow phase, RBCD) are validated: a triangle–triangle
//! overlap test and a mesh–mesh test built on it.

use crate::{Mesh, Triangle};
use rbcd_math::{Vec2, Vec3};

const EPS: f32 = 1e-7;

/// `true` when the two triangles share at least one point.
///
/// Handles the general (non-coplanar) case via edge–triangle piercing
/// tests — complete because a non-empty intersection segment must have an
/// endpoint where an edge of one triangle crosses the plane of the other
/// *inside* that other triangle — and the coplanar case by a 2-D overlap
/// test in the dominant plane.
pub fn tri_tri_intersect(t1: &Triangle, t2: &Triangle) -> bool {
    let n2 = t2.scaled_normal();
    let d2 = -n2.dot(t2.a);
    let dist1 = [
        n2.dot(t1.a) + d2,
        n2.dot(t1.b) + d2,
        n2.dot(t1.c) + d2,
    ];
    let scale2 = n2.length().max(EPS);
    let coplanar1 = dist1.iter().all(|d| d.abs() <= EPS * scale2);
    if !coplanar1 && dist1.iter().all(|&d| d > EPS * scale2) {
        return false;
    }
    if !coplanar1 && dist1.iter().all(|&d| d < -EPS * scale2) {
        return false;
    }

    let n1 = t1.scaled_normal();
    let d1 = -n1.dot(t1.a);
    let dist2 = [
        n1.dot(t2.a) + d1,
        n1.dot(t2.b) + d1,
        n1.dot(t2.c) + d1,
    ];
    let scale1 = n1.length().max(EPS);
    let coplanar2 = dist2.iter().all(|d| d.abs() <= EPS * scale1);
    if !coplanar2 && dist2.iter().all(|&d| d > EPS * scale1) {
        return false;
    }
    if !coplanar2 && dist2.iter().all(|&d| d < -EPS * scale1) {
        return false;
    }

    if coplanar1 || coplanar2 {
        return coplanar_tri_tri(t1, t2);
    }

    edges_pierce(t1, t2) || edges_pierce(t2, t1)
}

/// `true` when any edge of `t1` crosses the interior (or boundary) of
/// `t2`.
fn edges_pierce(t1: &Triangle, t2: &Triangle) -> bool {
    let edges = [(t1.a, t1.b), (t1.b, t1.c), (t1.c, t1.a)];
    edges.iter().any(|&(p, q)| segment_triangle_intersect(p, q, t2))
}

/// `true` when segment `pq` intersects triangle `t` (including touching).
pub fn segment_triangle_intersect(p: Vec3, q: Vec3, t: &Triangle) -> bool {
    let n = t.scaled_normal();
    if n.length_squared() < EPS * EPS {
        return false; // degenerate triangle
    }
    let dp = n.dot(p - t.a);
    let dq = n.dot(q - t.a);
    if dp * dq > 0.0 {
        return false; // both endpoints strictly on the same side
    }
    if dp == 0.0 && dq == 0.0 {
        // Segment lies in the triangle's plane; treat via 2-D test.
        let tri2 = project_triangle(t, n);
        let (p2, q2) = (project_point(p, n), project_point(q, n));
        return segment_intersects_tri_2d(p2, q2, &tri2);
    }
    let s = dp / (dp - dq);
    let x = p + (q - p) * s;
    point_in_triangle(x, t)
}

/// `true` when `x`, assumed on the triangle's plane, lies inside it.
pub fn point_in_triangle(x: Vec3, t: &Triangle) -> bool {
    let n = t.scaled_normal();
    let c0 = (t.b - t.a).cross(x - t.a).dot(n);
    let c1 = (t.c - t.b).cross(x - t.b).dot(n);
    let c2 = (t.a - t.c).cross(x - t.c).dot(n);
    let tol = -EPS * n.length_squared().max(EPS);
    c0 >= tol && c1 >= tol && c2 >= tol
}

fn dominant_axis(n: Vec3) -> usize {
    let a = n.abs();
    if a.x >= a.y && a.x >= a.z {
        0
    } else if a.y >= a.z {
        1
    } else {
        2
    }
}

fn project_point(p: Vec3, n: Vec3) -> Vec2 {
    match dominant_axis(n) {
        0 => Vec2::new(p.y, p.z),
        1 => Vec2::new(p.z, p.x),
        _ => Vec2::new(p.x, p.y),
    }
}

fn project_triangle(t: &Triangle, n: Vec3) -> [Vec2; 3] {
    [project_point(t.a, n), project_point(t.b, n), project_point(t.c, n)]
}

fn coplanar_tri_tri(t1: &Triangle, t2: &Triangle) -> bool {
    let n = t1.scaled_normal();
    let n = if n.length_squared() > EPS * EPS { n } else { t2.scaled_normal() };
    let a = project_triangle(t1, n);
    let b = project_triangle(t2, n);
    // Overlap iff an edge crosses or one contains a vertex of the other.
    for i in 0..3 {
        let (p, q) = (a[i], a[(i + 1) % 3]);
        if segment_intersects_tri_2d(p, q, &b) {
            return true;
        }
    }
    point_in_tri_2d(b[0], &a) || point_in_tri_2d(a[0], &b)
}

fn tri_signed_area(t: &[Vec2; 3]) -> f32 {
    (t[1] - t[0]).perp_dot(t[2] - t[0])
}

fn point_in_tri_2d(p: Vec2, t: &[Vec2; 3]) -> bool {
    // Orientation-independent: require consistent signs.
    let s = tri_signed_area(t);
    if s.abs() < EPS {
        return false;
    }
    let sgn = s.signum();
    let d0 = (t[1] - t[0]).perp_dot(p - t[0]) * sgn;
    let d1 = (t[2] - t[1]).perp_dot(p - t[1]) * sgn;
    let d2 = (t[0] - t[2]).perp_dot(p - t[2]) * sgn;
    d0 >= -EPS && d1 >= -EPS && d2 >= -EPS
}

fn segments_intersect_2d(p1: Vec2, q1: Vec2, p2: Vec2, q2: Vec2) -> bool {
    let d1 = (q1 - p1).perp_dot(p2 - p1);
    let d2 = (q1 - p1).perp_dot(q2 - p1);
    let d3 = (q2 - p2).perp_dot(p1 - p2);
    let d4 = (q2 - p2).perp_dot(q1 - p2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    let on = |a: Vec2, b: Vec2, c: Vec2, d: f32| {
        d.abs() <= EPS
            && c.x >= a.x.min(b.x) - EPS
            && c.x <= a.x.max(b.x) + EPS
            && c.y >= a.y.min(b.y) - EPS
            && c.y <= a.y.max(b.y) + EPS
    };
    on(p1, q1, p2, d1) || on(p1, q1, q2, d2) || on(p2, q2, p1, d3) || on(p2, q2, q1, d4)
}

fn segment_intersects_tri_2d(p: Vec2, q: Vec2, t: &[Vec2; 3]) -> bool {
    if point_in_tri_2d(p, t) || point_in_tri_2d(q, t) {
        return true;
    }
    (0..3).any(|i| segments_intersect_2d(p, q, t[i], t[(i + 1) % 3]))
}

/// `true` when the surfaces of `a` and `b` intersect.
///
/// Exact surface test: two nested-but-not-touching bodies report `false`
/// (surfaces disjoint), matching what an image-based detector sees when
/// z-ranges overlap only strictly. Runs in `O(|a|·|b|)` with per-triangle
/// AABB rejection; intended as a validation oracle, not a fast path.
pub fn meshes_intersect(a: &Mesh, b: &Mesh) -> bool {
    if !a.aabb().intersects(&b.aabb()) {
        return false;
    }
    let b_tris: Vec<(Triangle, rbcd_math::Aabb)> =
        b.triangles().map(|t| (t, t.aabb())).collect();
    for ta in a.triangles() {
        let bb_a = ta.aabb();
        for (tb, bb_b) in &b_tris {
            if bb_a.intersects(bb_b) && tri_tri_intersect(&ta, tb) {
                return true;
            }
        }
    }
    false
}

/// All intersecting triangle index pairs `(i in a, j in b)`.
///
/// Exhaustive variant of [`meshes_intersect`] for diagnostics and tests.
pub fn mesh_intersection_pairs(a: &Mesh, b: &Mesh) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if !a.aabb().intersects(&b.aabb()) {
        return out;
    }
    let b_tris: Vec<(Triangle, rbcd_math::Aabb)> =
        b.triangles().map(|t| (t, t.aabb())).collect();
    for (i, ta) in a.triangles().enumerate() {
        let bb_a = ta.aabb();
        for (j, (tb, bb_b)) in b_tris.iter().enumerate() {
            if bb_a.intersects(bb_b) && tri_tri_intersect(&ta, tb) {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;
    use rbcd_math::Mat4;

    fn tri(a: [f32; 3], b: [f32; 3], c: [f32; 3]) -> Triangle {
        Triangle::new(a.into(), b.into(), c.into())
    }

    #[test]
    fn crossing_triangles_intersect() {
        // t1 in z=0 plane, t2 vertical, piercing through it.
        let t1 = tri([0.0, 0.0, 0.0], [2.0, 0.0, 0.0], [0.0, 2.0, 0.0]);
        let t2 = tri([0.5, 0.5, -1.0], [0.5, 0.5, 1.0], [1.5, 0.5, 1.0]);
        assert!(tri_tri_intersect(&t1, &t2));
        assert!(tri_tri_intersect(&t2, &t1));
    }

    #[test]
    fn parallel_triangles_do_not_intersect() {
        let t1 = tri([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let t2 = tri([0.0, 0.0, 1.0], [1.0, 0.0, 1.0], [0.0, 1.0, 1.0]);
        assert!(!tri_tri_intersect(&t1, &t2));
    }

    #[test]
    fn coplanar_overlapping_triangles() {
        let t1 = tri([0.0, 0.0, 0.0], [2.0, 0.0, 0.0], [0.0, 2.0, 0.0]);
        let t2 = tri([0.5, 0.5, 0.0], [2.5, 0.5, 0.0], [0.5, 2.5, 0.0]);
        assert!(tri_tri_intersect(&t1, &t2));
        // Identical triangles.
        assert!(tri_tri_intersect(&t1, &t1.clone()));
    }

    #[test]
    fn coplanar_disjoint_triangles() {
        let t1 = tri([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let t2 = tri([5.0, 5.0, 0.0], [6.0, 5.0, 0.0], [5.0, 6.0, 0.0]);
        assert!(!tri_tri_intersect(&t1, &t2));
    }

    #[test]
    fn coplanar_containment() {
        let big = tri([-5.0, -5.0, 0.0], [5.0, -5.0, 0.0], [0.0, 5.0, 0.0]);
        let small = tri([-0.5, -0.5, 0.0], [0.5, -0.5, 0.0], [0.0, 0.5, 0.0]);
        assert!(tri_tri_intersect(&big, &small));
        assert!(tri_tri_intersect(&small, &big));
    }

    #[test]
    fn touching_at_a_vertex_counts() {
        let t1 = tri([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let t2 = tri([0.0, 0.0, 0.0], [-1.0, 0.0, 1.0], [0.0, -1.0, 1.0]);
        assert!(tri_tri_intersect(&t1, &t2));
    }

    #[test]
    fn near_miss_does_not_intersect() {
        let t1 = tri([0.0, 0.0, 0.0], [2.0, 0.0, 0.0], [0.0, 2.0, 0.0]);
        let t2 = tri([0.5, 0.5, 0.01], [0.5, 0.5, 1.0], [1.5, 0.5, 1.0]);
        assert!(!tri_tri_intersect(&t1, &t2));
    }

    #[test]
    fn segment_triangle_basics() {
        let t = tri([0.0, 0.0, 0.0], [2.0, 0.0, 0.0], [0.0, 2.0, 0.0]);
        assert!(segment_triangle_intersect(
            Vec3::new(0.5, 0.5, -1.0),
            Vec3::new(0.5, 0.5, 1.0),
            &t
        ));
        assert!(!segment_triangle_intersect(
            Vec3::new(5.0, 5.0, -1.0),
            Vec3::new(5.0, 5.0, 1.0),
            &t
        ));
        // Parallel above the plane.
        assert!(!segment_triangle_intersect(
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
            &t
        ));
    }

    #[test]
    fn overlapping_spheres_intersect() {
        let a = shapes::uv_sphere(1.0, 16, 8);
        let b = a.transformed(&Mat4::translation(Vec3::new(1.5, 0.0, 0.0)));
        assert!(meshes_intersect(&a, &b));
        assert!(!mesh_intersection_pairs(&a, &b).is_empty());
    }

    #[test]
    fn distant_spheres_do_not_intersect() {
        let a = shapes::uv_sphere(1.0, 16, 8);
        let b = a.transformed(&Mat4::translation(Vec3::new(10.0, 0.0, 0.0)));
        assert!(!meshes_intersect(&a, &b));
        assert!(mesh_intersection_pairs(&a, &b).is_empty());
    }

    #[test]
    fn nested_surfaces_do_not_intersect() {
        // A small sphere strictly inside a big one: surfaces disjoint.
        let inner = shapes::uv_sphere(0.5, 12, 6);
        let outer = shapes::uv_sphere(2.0, 12, 6);
        assert!(!meshes_intersect(&inner, &outer));
    }

    #[test]
    fn box_resting_on_ground_touches() {
        let ground = shapes::ground_quad(10.0, 10.0);
        let cube = shapes::cube(1.0).transformed(&Mat4::translation(Vec3::new(0.0, 0.9, 0.0)));
        assert!(meshes_intersect(&cube, &ground)); // sunk 0.1 into the ground
        let hovering = shapes::cube(1.0).transformed(&Mat4::translation(Vec3::new(0.0, 1.5, 0.0)));
        assert!(!meshes_intersect(&hovering, &ground));
    }

    #[test]
    fn l_prism_concavity_no_false_positive() {
        // A small cube in the concave notch of the L: AABBs overlap but
        // surfaces do not intersect (the RBCD accuracy argument, Fig. 2).
        let l = shapes::l_prism(2.0, 1.0);
        let cube = shapes::cube(0.2).transformed(&Mat4::translation(Vec3::new(0.7, 0.7, 0.0)));
        assert!(l.aabb().intersects(&cube.aabb()));
        assert!(!meshes_intersect(&l, &cube));
    }
}
