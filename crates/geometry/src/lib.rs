//! Triangle meshes, shape generators, convex hulls, and exact
//! intersection tests for the RBCD reproduction.
//!
//! The paper's pipeline consumes *renderable surfaces*: indexed triangle
//! meshes with consistent counter-clockwise (outward-facing) winding. This
//! crate provides:
//!
//! * [`Mesh`] — an indexed triangle mesh with validated indices;
//! * [`shapes`] — deterministic generators for the convex and concave
//!   test bodies used by the synthetic workloads (boxes, spheres, tori,
//!   capsules, and deliberately concave shapes such as the L-prism and
//!   bowl used to reproduce the accuracy comparison of the paper's
//!   Figure 2);
//! * [`hull`] — 3-D convex hulls via quickhull, required by the GJK
//!   narrow-phase baseline (GJK only works on convex shapes; the paper
//!   applies it to the convex hull of concave objects, §2.2);
//! * [`intersect`] — exact triangle–triangle and mesh–mesh intersection
//!   tests, the geometric ground truth the collision detectors are
//!   validated against.
//!
//! # Example
//!
//! ```
//! use rbcd_geometry::{shapes, intersect};
//! use rbcd_math::{Mat4, Vec3};
//!
//! let a = shapes::uv_sphere(1.0, 12, 8);
//! let b = a.transformed(&Mat4::translation(Vec3::new(1.5, 0.0, 0.0)));
//! assert!(intersect::meshes_intersect(&a, &b)); // overlapping spheres
//! let c = a.transformed(&Mat4::translation(Vec3::new(5.0, 0.0, 0.0)));
//! assert!(!intersect::meshes_intersect(&a, &c));
//! ```

#![warn(missing_docs)]

pub mod hull;
pub mod intersect;
mod mesh;
pub mod shapes;

pub use hull::{ConvexHull, HullError};
pub use mesh::{Mesh, MeshError, Triangle};
