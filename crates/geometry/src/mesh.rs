//! Indexed triangle meshes.

use rbcd_math::{Aabb, Mat4, Vec3};
use std::error::Error;
use std::fmt;

/// Error building a [`Mesh`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// A triangle references a vertex index `>= vertex_count`.
    IndexOutOfRange {
        /// Offending triangle position.
        triangle: usize,
        /// Offending index value.
        index: u32,
        /// Number of vertices in the mesh.
        vertex_count: usize,
    },
    /// The mesh has no triangles.
    Empty,
    /// A vertex position contains NaN or infinity.
    NonFinitePosition {
        /// Offending vertex index.
        vertex: usize,
    },
    /// Every triangle of the mesh has (nearly) zero area: the surface
    /// cannot produce any rasterizable geometry.
    AllDegenerate,
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IndexOutOfRange { triangle, index, vertex_count } => write!(
                f,
                "triangle {triangle} references vertex {index} but the mesh has {vertex_count} vertices"
            ),
            Self::Empty => write!(f, "mesh has no triangles"),
            Self::NonFinitePosition { vertex } => {
                write!(f, "vertex {vertex} has a non-finite (NaN/inf) position")
            }
            Self::AllDegenerate => write!(f, "every triangle of the mesh is degenerate"),
        }
    }
}

impl Error for MeshError {}

/// One triangle, as three points in counter-clockwise (outward) order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub a: Vec3,
    /// Second vertex.
    pub b: Vec3,
    /// Third vertex.
    pub c: Vec3,
}

impl Triangle {
    /// Creates a triangle from three points.
    pub const fn new(a: Vec3, b: Vec3, c: Vec3) -> Self {
        Self { a, b, c }
    }

    /// The (unnormalized) normal `(b-a) × (c-a)`; its length is twice the
    /// triangle area.
    pub fn scaled_normal(&self) -> Vec3 {
        (self.b - self.a).cross(self.c - self.a)
    }

    /// Unit normal, or `None` for a degenerate triangle.
    pub fn normal(&self) -> Option<Vec3> {
        self.scaled_normal().try_normalize()
    }

    /// Triangle area.
    pub fn area(&self) -> f32 {
        self.scaled_normal().length() * 0.5
    }

    /// Centroid of the three vertices.
    pub fn centroid(&self) -> Vec3 {
        (self.a + self.b + self.c) / 3.0
    }

    /// Axis-aligned bounding box.
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points([self.a, self.b, self.c]).expect("three points")
    }

    /// `true` when the triangle has (nearly) zero area.
    pub fn is_degenerate(&self) -> bool {
        self.area() < 1e-12
    }
}

/// An indexed triangle mesh with validated indices.
///
/// Winding convention is OpenGL's: triangles are counter-clockwise when
/// seen from outside the surface, so [`Triangle::scaled_normal`] points
/// outward for a closed body.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    positions: Vec<Vec3>,
    triangles: Vec<[u32; 3]>,
    /// Cached "all positions are finite" flag, so per-frame draw
    /// validation is O(1) instead of O(vertices).
    finite: bool,
}

impl Mesh {
    /// Builds a mesh, validating indices, position finiteness, and that
    /// at least one triangle has area.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::IndexOutOfRange`] when a triangle references a
    /// missing vertex, [`MeshError::Empty`] when `triangles` is empty,
    /// [`MeshError::NonFinitePosition`] on a NaN/infinite vertex, and
    /// [`MeshError::AllDegenerate`] when every triangle has zero area.
    pub fn new(positions: Vec<Vec3>, triangles: Vec<[u32; 3]>) -> Result<Self, MeshError> {
        if triangles.is_empty() {
            return Err(MeshError::Empty);
        }
        for (t, tri) in triangles.iter().enumerate() {
            for &i in tri {
                if i as usize >= positions.len() {
                    return Err(MeshError::IndexOutOfRange {
                        triangle: t,
                        index: i,
                        vertex_count: positions.len(),
                    });
                }
            }
        }
        if let Some(vertex) = positions.iter().position(|p| !p.is_finite()) {
            return Err(MeshError::NonFinitePosition { vertex });
        }
        let mesh = Self { positions, triangles, finite: true };
        if mesh.triangles().all(|t| t.is_degenerate()) {
            return Err(MeshError::AllDegenerate);
        }
        Ok(mesh)
    }

    /// Builds a mesh without the finiteness/degeneracy validation of
    /// [`Mesh::new`] — the escape hatch fault-injection harnesses use to
    /// construct hostile geometry. The finiteness flag is still computed
    /// honestly, so [`Mesh::positions_finite`] reports the truth.
    ///
    /// # Panics
    ///
    /// Panics if a triangle references a missing vertex: out-of-range
    /// indices would make every accessor unsound, so they stay hard
    /// errors even here.
    pub fn new_unchecked(positions: Vec<Vec3>, triangles: Vec<[u32; 3]>) -> Self {
        for tri in &triangles {
            for &i in tri {
                assert!(
                    (i as usize) < positions.len(),
                    "triangle index {i} out of range for {} vertices",
                    positions.len()
                );
            }
        }
        let finite = positions.iter().all(|p| p.is_finite());
        Self { positions, triangles, finite }
    }

    /// `true` when every vertex position is finite (no NaN/inf). Cached
    /// at construction; meshes from [`Mesh::new`] are always finite.
    pub fn positions_finite(&self) -> bool {
        self.finite
    }

    /// Vertex positions.
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Triangle index triples.
    pub fn indices(&self) -> &[[u32; 3]] {
        &self.triangles
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Dereferences triangle `t` into points.
    ///
    /// # Panics
    ///
    /// Panics if `t >= triangle_count()`.
    pub fn triangle(&self, t: usize) -> Triangle {
        let [i, j, k] = self.triangles[t];
        Triangle::new(
            self.positions[i as usize],
            self.positions[j as usize],
            self.positions[k as usize],
        )
    }

    /// Iterator over all triangles as point triples.
    pub fn triangles(&self) -> impl Iterator<Item = Triangle> + '_ {
        (0..self.triangle_count()).map(|t| self.triangle(t))
    }

    /// Axis-aligned bounding box of all vertices.
    ///
    /// # Panics
    ///
    /// Never panics: a valid mesh has at least one triangle, hence at
    /// least one referenced vertex.
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points(self.positions.iter().copied()).expect("mesh is non-empty")
    }

    /// Returns a copy with every vertex transformed by `m`.
    pub fn transformed(&self, m: &Mat4) -> Self {
        let positions: Vec<Vec3> =
            self.positions.iter().map(|&p| m.transform_point(p)).collect();
        // A non-finite matrix poisons the vertices, so recompute.
        let finite = positions.iter().all(|p| p.is_finite());
        Self { positions, triangles: self.triangles.clone(), finite }
    }

    /// Returns a copy with reversed winding (inside-out surface).
    pub fn flipped(&self) -> Self {
        Self {
            positions: self.positions.clone(),
            triangles: self.triangles.iter().map(|&[a, b, c]| [a, c, b]).collect(),
            finite: self.finite,
        }
    }

    /// Appends another mesh, remapping its indices.
    pub fn merge(&mut self, other: &Mesh) {
        let base = self.positions.len() as u32;
        self.positions.extend_from_slice(&other.positions);
        self.triangles
            .extend(other.triangles.iter().map(|&[a, b, c]| [a + base, b + base, c + base]));
        self.finite = self.finite && other.finite;
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f32 {
        self.triangles().map(|t| t.area()).sum()
    }

    /// Area-weighted centroid of the surface.
    pub fn surface_centroid(&self) -> Vec3 {
        let mut num = Vec3::ZERO;
        let mut den = 0.0;
        for t in self.triangles() {
            let a = t.area();
            num += t.centroid() * a;
            den += a;
        }
        if den > 0.0 {
            num / den
        } else {
            self.aabb().center()
        }
    }

    /// Signed volume enclosed by the surface (positive for outward
    /// winding of a closed mesh), via the divergence theorem.
    pub fn signed_volume(&self) -> f32 {
        self.triangles()
            .map(|t| t.a.dot(t.b.cross(t.c)) / 6.0)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;
    use rbcd_math::approx_eq;

    fn tri_mesh() -> Mesh {
        Mesh::new(
            vec![Vec3::ZERO, Vec3::X, Vec3::Y],
            vec![[0, 1, 2]],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_indices() {
        let err = Mesh::new(vec![Vec3::ZERO], vec![[0, 0, 7]]).unwrap_err();
        assert!(matches!(err, MeshError::IndexOutOfRange { index: 7, .. }));
        assert!(format!("{err}").contains("vertex 7"));
        assert_eq!(Mesh::new(vec![Vec3::ZERO], vec![]).unwrap_err(), MeshError::Empty);
    }

    #[test]
    fn triangle_quantities() {
        let t = tri_mesh().triangle(0);
        assert_eq!(t.area(), 0.5);
        assert_eq!(t.normal().unwrap(), Vec3::Z);
        assert_eq!(t.centroid(), Vec3::new(1.0 / 3.0, 1.0 / 3.0, 0.0));
        assert!(!t.is_degenerate());
        assert!(Triangle::new(Vec3::ZERO, Vec3::X, Vec3::X * 2.0).is_degenerate());
    }

    #[test]
    fn flipped_reverses_normal() {
        let m = tri_mesh();
        let f = m.flipped();
        assert_eq!(f.triangle(0).normal().unwrap(), -Vec3::Z);
    }

    #[test]
    fn merge_remaps_indices() {
        let mut m = tri_mesh();
        let other = tri_mesh().transformed(&Mat4::translation(Vec3::Z));
        m.merge(&other);
        assert_eq!(m.triangle_count(), 2);
        assert_eq!(m.vertex_count(), 6);
        assert!(approx_eq(m.triangle(1).a.z, 1.0, 0.0));
    }

    #[test]
    fn cube_volume_and_area() {
        let cube = shapes::cuboid(Vec3::splat(1.0)); // half-extents 1 → 2×2×2
        assert!(approx_eq(cube.signed_volume(), 8.0, 1e-4));
        assert!(approx_eq(cube.surface_area(), 24.0, 1e-3));
    }

    #[test]
    fn sphere_volume_approaches_analytic() {
        let s = shapes::uv_sphere(1.0, 48, 24);
        let analytic = 4.0 / 3.0 * std::f32::consts::PI;
        assert!((s.signed_volume() - analytic).abs() / analytic < 0.02);
    }

    #[test]
    fn transformed_moves_aabb() {
        let m = tri_mesh().transformed(&Mat4::translation(Vec3::new(10.0, 0.0, 0.0)));
        assert!(m.aabb().min.x >= 10.0);
    }

    #[test]
    fn surface_centroid_of_cube_is_center() {
        let cube = shapes::cuboid(Vec3::ONE);
        let c = cube.surface_centroid();
        assert!(c.length() < 1e-4);
    }

    #[test]
    fn new_rejects_non_finite_positions() {
        let err = Mesh::new(
            vec![Vec3::ZERO, Vec3::X, Vec3::new(f32::NAN, 0.0, 0.0)],
            vec![[0, 1, 2]],
        )
        .unwrap_err();
        assert_eq!(err, MeshError::NonFinitePosition { vertex: 2 });
        let err = Mesh::new(
            vec![Vec3::ZERO, Vec3::new(f32::INFINITY, 0.0, 0.0), Vec3::Y],
            vec![[0, 1, 2]],
        )
        .unwrap_err();
        assert_eq!(err, MeshError::NonFinitePosition { vertex: 1 });
    }

    #[test]
    fn new_rejects_all_degenerate_triangle_sets() {
        // Two zero-area triangles (collinear points).
        let err = Mesh::new(
            vec![Vec3::ZERO, Vec3::X, Vec3::X * 2.0],
            vec![[0, 1, 2], [2, 1, 0]],
        )
        .unwrap_err();
        assert_eq!(err, MeshError::AllDegenerate);
        // One degenerate triangle among real ones is fine.
        let m = Mesh::new(
            vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::X * 2.0],
            vec![[0, 1, 2], [0, 1, 3]],
        )
        .unwrap();
        assert_eq!(m.triangle_count(), 2);
    }

    #[test]
    fn unchecked_constructor_admits_hostile_geometry() {
        let m = Mesh::new_unchecked(
            vec![Vec3::ZERO, Vec3::X, Vec3::new(f32::NAN, 0.0, 0.0)],
            vec![[0, 1, 2]],
        );
        assert!(!m.positions_finite());
        let clean = tri_mesh();
        assert!(clean.positions_finite());
        // Transforming by a NaN matrix poisons the flag.
        let nan_mat = Mat4::uniform_scale(f32::NAN);
        assert!(!clean.transformed(&nan_mat).positions_finite());
    }
}
