#![allow(clippy::items_after_test_module)]
//! Deterministic shape generators.
//!
//! Every generator returns a closed [`Mesh`] with counter-clockwise
//! (outward) winding, verified by the `signed_volume > 0` tests below.
//! The concave generators ([`l_prism`], [`star_prism`], [`bowl`]) exist to
//! reproduce the accuracy discussion of the paper's Figure 2, where AABBs
//! and convex hulls add large false-collisionable area around concave
//! bodies while RBCD's discretized shape does not.

use crate::Mesh;
use rbcd_math::{Vec2, Vec3};
use std::f32::consts::{PI, TAU};

/// Axis-aligned box with the given half-extents, centred at the origin.
///
/// # Panics
///
/// Panics if any half-extent is non-positive.
pub fn cuboid(half_extents: Vec3) -> Mesh {
    let h = half_extents;
    assert!(h.x > 0.0 && h.y > 0.0 && h.z > 0.0, "cuboid: non-positive half-extent {h:?}");
    let positions = vec![
        Vec3::new(-h.x, -h.y, -h.z), // 0
        Vec3::new(h.x, -h.y, -h.z),  // 1
        Vec3::new(h.x, h.y, -h.z),   // 2
        Vec3::new(-h.x, h.y, -h.z),  // 3
        Vec3::new(-h.x, -h.y, h.z),  // 4
        Vec3::new(h.x, -h.y, h.z),   // 5
        Vec3::new(h.x, h.y, h.z),    // 6
        Vec3::new(-h.x, h.y, h.z),   // 7
    ];
    let triangles = vec![
        // -Z face (outward normal -Z): CCW seen from -Z.
        [0, 3, 2],
        [0, 2, 1],
        // +Z face.
        [4, 5, 6],
        [4, 6, 7],
        // -Y face.
        [0, 1, 5],
        [0, 5, 4],
        // +Y face.
        [3, 7, 6],
        [3, 6, 2],
        // -X face.
        [0, 4, 7],
        [0, 7, 3],
        // +X face.
        [1, 2, 6],
        [1, 6, 5],
    ];
    Mesh::new(positions, triangles).expect("cuboid is well-formed")
}

/// Unit-construction convenience: cube with half-extent `h`.
pub fn cube(h: f32) -> Mesh {
    cuboid(Vec3::splat(h))
}

/// Latitude/longitude sphere.
///
/// `segments` is the longitude count (≥3), `rings` the latitude band
/// count (≥2).
///
/// # Panics
///
/// Panics on a non-positive radius or too-coarse tessellation.
pub fn uv_sphere(radius: f32, segments: u32, rings: u32) -> Mesh {
    assert!(radius > 0.0, "uv_sphere: non-positive radius");
    assert!(segments >= 3 && rings >= 2, "uv_sphere: tessellation too coarse");
    let mut positions = Vec::new();
    // Poles + interior rings.
    positions.push(Vec3::new(0.0, radius, 0.0));
    for r in 1..rings {
        let phi = PI * r as f32 / rings as f32;
        let (sp, cp) = phi.sin_cos();
        for s in 0..segments {
            let theta = TAU * s as f32 / segments as f32;
            let (st, ct) = theta.sin_cos();
            positions.push(Vec3::new(radius * sp * ct, radius * cp, radius * sp * st));
        }
    }
    positions.push(Vec3::new(0.0, -radius, 0.0));
    let bottom = (positions.len() - 1) as u32;
    let ring_start = |r: u32| 1 + (r - 1) * segments;

    let mut triangles = Vec::new();
    // Top cap.
    for s in 0..segments {
        let a = ring_start(1) + s;
        let b = ring_start(1) + (s + 1) % segments;
        triangles.push([0, b, a]);
    }
    // Bands.
    for r in 1..rings - 1 {
        for s in 0..segments {
            let a = ring_start(r) + s;
            let b = ring_start(r) + (s + 1) % segments;
            let c = ring_start(r + 1) + s;
            let d = ring_start(r + 1) + (s + 1) % segments;
            triangles.push([a, b, d]);
            triangles.push([a, d, c]);
        }
    }
    // Bottom cap.
    let last = rings - 1;
    for s in 0..segments {
        let a = ring_start(last) + s;
        let b = ring_start(last) + (s + 1) % segments;
        triangles.push([bottom, a, b]);
    }
    Mesh::new(positions, triangles).expect("uv_sphere is well-formed")
}

/// Icosphere: subdivided icosahedron, more uniform than [`uv_sphere`].
///
/// # Panics
///
/// Panics on a non-positive radius or `subdivisions > 5` (vertex blowup).
pub fn icosphere(radius: f32, subdivisions: u32) -> Mesh {
    assert!(radius > 0.0, "icosphere: non-positive radius");
    assert!(subdivisions <= 5, "icosphere: too many subdivisions");
    let t = (1.0 + 5.0f32.sqrt()) / 2.0;
    let mut positions: Vec<Vec3> = [
        (-1.0, t, 0.0),
        (1.0, t, 0.0),
        (-1.0, -t, 0.0),
        (1.0, -t, 0.0),
        (0.0, -1.0, t),
        (0.0, 1.0, t),
        (0.0, -1.0, -t),
        (0.0, 1.0, -t),
        (t, 0.0, -1.0),
        (t, 0.0, 1.0),
        (-t, 0.0, -1.0),
        (-t, 0.0, 1.0),
    ]
    .iter()
    .map(|&(x, y, z)| Vec3::new(x, y, z).normalize() * radius)
    .collect();
    let mut triangles: Vec<[u32; 3]> = vec![
        [0, 11, 5],
        [0, 5, 1],
        [0, 1, 7],
        [0, 7, 10],
        [0, 10, 11],
        [1, 5, 9],
        [5, 11, 4],
        [11, 10, 2],
        [10, 7, 6],
        [7, 1, 8],
        [3, 9, 4],
        [3, 4, 2],
        [3, 2, 6],
        [3, 6, 8],
        [3, 8, 9],
        [4, 9, 5],
        [2, 4, 11],
        [6, 2, 10],
        [8, 6, 7],
        [9, 8, 1],
    ];
    use std::collections::HashMap;
    for _ in 0..subdivisions {
        let mut midpoint: HashMap<(u32, u32), u32> = HashMap::new();
        let mut mid = |a: u32, b: u32, positions: &mut Vec<Vec3>| -> u32 {
            let key = (a.min(b), a.max(b));
            *midpoint.entry(key).or_insert_with(|| {
                let p = ((positions[a as usize] + positions[b as usize]) * 0.5)
                    .normalize()
                    * radius;
                positions.push(p);
                (positions.len() - 1) as u32
            })
        };
        let mut next = Vec::with_capacity(triangles.len() * 4);
        for [a, b, c] in triangles {
            let ab = mid(a, b, &mut positions);
            let bc = mid(b, c, &mut positions);
            let ca = mid(c, a, &mut positions);
            next.push([a, ab, ca]);
            next.push([b, bc, ab]);
            next.push([c, ca, bc]);
            next.push([ab, bc, ca]);
        }
        triangles = next;
    }
    Mesh::new(positions, triangles).expect("icosphere is well-formed")
}

/// Torus in the XZ plane: `major_radius` to the tube centre,
/// `minor_radius` of the tube.
///
/// # Panics
///
/// Panics unless `major_radius > minor_radius > 0` and both segment
/// counts are ≥3.
pub fn torus(major_radius: f32, minor_radius: f32, major_segments: u32, minor_segments: u32) -> Mesh {
    assert!(
        major_radius > minor_radius && minor_radius > 0.0,
        "torus: require major > minor > 0"
    );
    assert!(major_segments >= 3 && minor_segments >= 3, "torus: tessellation too coarse");
    let mut positions = Vec::new();
    for u in 0..major_segments {
        let theta = TAU * u as f32 / major_segments as f32;
        let (st, ct) = theta.sin_cos();
        for v in 0..minor_segments {
            let phi = TAU * v as f32 / minor_segments as f32;
            let (sp, cp) = phi.sin_cos();
            let r = major_radius + minor_radius * cp;
            positions.push(Vec3::new(r * ct, minor_radius * sp, r * st));
        }
    }
    let idx = |u: u32, v: u32| (u % major_segments) * minor_segments + (v % minor_segments);
    let mut triangles = Vec::new();
    for u in 0..major_segments {
        for v in 0..minor_segments {
            let a = idx(u, v);
            let b = idx(u + 1, v);
            let c = idx(u + 1, v + 1);
            let d = idx(u, v + 1);
            triangles.push([a, c, b]);
            triangles.push([a, d, c]);
        }
    }
    Mesh::new(positions, triangles).expect("torus is well-formed")
}

/// Capsule: cylinder of `half_height` along Y with hemispherical caps of
/// `radius`.
///
/// # Panics
///
/// Panics on non-positive dimensions or too-coarse tessellation.
pub fn capsule(radius: f32, half_height: f32, segments: u32, cap_rings: u32) -> Mesh {
    assert!(radius > 0.0 && half_height > 0.0, "capsule: non-positive dimension");
    assert!(segments >= 3 && cap_rings >= 1, "capsule: tessellation too coarse");
    let mut positions = Vec::new();
    positions.push(Vec3::new(0.0, half_height + radius, 0.0));
    // Top hemisphere rings (from pole down), then bottom hemisphere rings.
    for r in 1..=cap_rings {
        let phi = (PI / 2.0) * r as f32 / cap_rings as f32;
        let (sp, cp) = phi.sin_cos();
        for s in 0..segments {
            let theta = TAU * s as f32 / segments as f32;
            let (st, ct) = theta.sin_cos();
            positions.push(Vec3::new(radius * sp * ct, half_height + radius * cp, radius * sp * st));
        }
    }
    for r in 0..cap_rings {
        let phi = (PI / 2.0) * (1.0 - r as f32 / cap_rings as f32);
        let (sp, cp) = phi.sin_cos();
        for s in 0..segments {
            let theta = TAU * s as f32 / segments as f32;
            let (st, ct) = theta.sin_cos();
            positions.push(Vec3::new(
                radius * sp * ct,
                -half_height - radius * cp,
                radius * sp * st,
            ));
        }
    }
    positions.push(Vec3::new(0.0, -half_height - radius, 0.0));
    let bottom = (positions.len() - 1) as u32;
    let total_rings = 2 * cap_rings; // ring index 1..=total_rings
    let ring_start = |r: u32| 1 + (r - 1) * segments;

    let mut triangles = Vec::new();
    for s in 0..segments {
        let a = ring_start(1) + s;
        let b = ring_start(1) + (s + 1) % segments;
        triangles.push([0, b, a]);
    }
    for r in 1..total_rings {
        for s in 0..segments {
            let a = ring_start(r) + s;
            let b = ring_start(r) + (s + 1) % segments;
            let c = ring_start(r + 1) + s;
            let d = ring_start(r + 1) + (s + 1) % segments;
            triangles.push([a, b, d]);
            triangles.push([a, d, c]);
        }
    }
    for s in 0..segments {
        let a = ring_start(total_rings) + s;
        let b = ring_start(total_rings) + (s + 1) % segments;
        triangles.push([bottom, a, b]);
    }
    Mesh::new(positions, triangles).expect("capsule is well-formed")
}

/// Ear-clipping triangulation of a simple polygon given in
/// counter-clockwise order.
///
/// Returns index triples into `points`. Used by the prism generators for
/// concave cross-sections.
///
/// # Panics
///
/// Panics if `points.len() < 3` or the polygon cannot be triangulated
/// (self-intersecting input).
pub fn triangulate_polygon(points: &[Vec2]) -> Vec<[u32; 3]> {
    assert!(points.len() >= 3, "triangulate_polygon: need at least 3 points");
    let mut remaining: Vec<u32> = (0..points.len() as u32).collect();
    let mut triangles = Vec::with_capacity(points.len() - 2);

    let is_convex = |prev: Vec2, cur: Vec2, next: Vec2| (cur - prev).perp_dot(next - cur) > 0.0;
    let point_in_tri = |p: Vec2, a: Vec2, b: Vec2, c: Vec2| {
        let d1 = (b - a).perp_dot(p - a);
        let d2 = (c - b).perp_dot(p - b);
        let d3 = (a - c).perp_dot(p - c);
        d1 >= 0.0 && d2 >= 0.0 && d3 >= 0.0
    };

    while remaining.len() > 3 {
        let n = remaining.len();
        let mut clipped = false;
        for i in 0..n {
            let ip = remaining[(i + n - 1) % n];
            let ic = remaining[i];
            let inx = remaining[(i + 1) % n];
            let (p, c, nx) = (points[ip as usize], points[ic as usize], points[inx as usize]);
            if !is_convex(p, c, nx) {
                continue;
            }
            // No other remaining vertex inside the candidate ear.
            let blocked = remaining.iter().any(|&j| {
                j != ip && j != ic && j != inx && point_in_tri(points[j as usize], p, c, nx)
            });
            if blocked {
                continue;
            }
            triangles.push([ip, ic, inx]);
            remaining.remove(i);
            clipped = true;
            break;
        }
        assert!(clipped, "triangulate_polygon: no ear found (self-intersecting polygon?)");
    }
    triangles.push([remaining[0], remaining[1], remaining[2]]);
    triangles
}

/// Extrudes a simple counter-clockwise polygon along +Z into a closed
/// prism of the given `depth`, centred on Z.
///
/// # Panics
///
/// Panics if `depth <= 0` or the polygon is invalid (see
/// [`triangulate_polygon`]).
pub fn prism(cross_section: &[Vec2], depth: f32) -> Mesh {
    assert!(depth > 0.0, "prism: non-positive depth");
    let n = cross_section.len() as u32;
    let caps = triangulate_polygon(cross_section);
    let hz = depth * 0.5;
    let mut positions = Vec::with_capacity(cross_section.len() * 2);
    for &p in cross_section {
        positions.push(Vec3::new(p.x, p.y, -hz));
    }
    for &p in cross_section {
        positions.push(Vec3::new(p.x, p.y, hz));
    }
    let mut triangles = Vec::new();
    // Back cap (normal -Z): reverse the CCW cap triangulation.
    for &[a, b, c] in &caps {
        triangles.push([a, c, b]);
    }
    // Front cap (normal +Z).
    for &[a, b, c] in &caps {
        triangles.push([a + n, b + n, c + n]);
    }
    // Sides. For a CCW cross-section, outward side normals need
    // (i, i+1) on the back face then up to the front.
    for i in 0..n {
        let j = (i + 1) % n;
        triangles.push([i, j, j + n]);
        triangles.push([i, j + n, i + n]);
    }
    Mesh::new(positions, triangles).expect("prism is well-formed")
}

/// Concave L-shaped prism (the paper's Figure 2 "object A" archetype):
/// an L cross-section of outer size `size`, arm thickness `size/2`,
/// extruded to `depth`; centred at the origin.
///
/// # Panics
///
/// Panics on non-positive dimensions.
pub fn l_prism(size: f32, depth: f32) -> Mesh {
    assert!(size > 0.0, "l_prism: non-positive size");
    let s = size;
    let t = size * 0.5;
    let o = s * 0.5; // recentre
    let pts = [
        Vec2::new(0.0 - o, 0.0 - o),
        Vec2::new(s - o, 0.0 - o),
        Vec2::new(s - o, t - o),
        Vec2::new(t - o, t - o),
        Vec2::new(t - o, s - o),
        Vec2::new(0.0 - o, s - o),
    ];
    prism(&pts, depth)
}

/// Concave star-shaped prism with `spikes` points, outer radius
/// `outer`, inner radius `inner`, extruded to `depth`.
///
/// # Panics
///
/// Panics unless `outer > inner > 0` and `spikes >= 3`.
pub fn star_prism(spikes: u32, outer: f32, inner: f32, depth: f32) -> Mesh {
    assert!(outer > inner && inner > 0.0, "star_prism: require outer > inner > 0");
    assert!(spikes >= 3, "star_prism: need at least 3 spikes");
    let mut pts = Vec::with_capacity(spikes as usize * 2);
    for i in 0..spikes * 2 {
        let r = if i % 2 == 0 { outer } else { inner };
        let a = TAU * i as f32 / (spikes * 2) as f32;
        pts.push(Vec2::new(r * a.cos(), r * a.sin()));
    }
    prism(&pts, depth)
}

/// Concave open bowl: a hemispherical shell of outer radius `outer` and
/// thickness `outer - inner`, opening towards +Y.
///
/// # Panics
///
/// Panics unless `outer > inner > 0` and tessellation is ≥3 segments /
/// ≥2 rings.
pub fn bowl(outer: f32, inner: f32, segments: u32, rings: u32) -> Mesh {
    assert!(outer > inner && inner > 0.0, "bowl: require outer > inner > 0");
    assert!(segments >= 3 && rings >= 2, "bowl: tessellation too coarse");
    let mut positions = Vec::new();
    // Rings run from the rim (phi = π/2) down to just above the pole;
    // each surface gets a single shared pole vertex to stay manifold.
    for surface in 0..2 {
        let radius = if surface == 0 { outer } else { inner };
        for r in 0..rings {
            let phi = PI / 2.0 + (PI / 2.0) * r as f32 / rings as f32;
            let (sp, cp) = phi.sin_cos();
            for s in 0..segments {
                let theta = TAU * s as f32 / segments as f32;
                let (st, ct) = theta.sin_cos();
                positions.push(Vec3::new(radius * sp * ct, radius * cp, radius * sp * st));
            }
        }
        positions.push(Vec3::new(0.0, -radius, 0.0)); // pole
    }
    let out = |r: u32, s: u32| r * segments + s % segments;
    let out_pole = rings * segments;
    let inner_base = rings * segments + 1;
    let inn = |r: u32, s: u32| inner_base + r * segments + s % segments;
    let inn_pole = inner_base + rings * segments;

    let mut triangles = Vec::new();
    // Outer surface (normals outward/downward): as theta increases the
    // point sweeps +X → +Z, and phi increases downward.
    for r in 0..rings - 1 {
        for s in 0..segments {
            let a = out(r, s);
            let b = out(r, s + 1);
            let c = out(r + 1, s);
            let d = out(r + 1, s + 1);
            triangles.push([a, b, d]);
            triangles.push([a, d, c]);
        }
    }
    for s in 0..segments {
        triangles.push([out(rings - 1, s), out(rings - 1, s + 1), out_pole]);
    }
    // Inner surface: flipped winding.
    for r in 0..rings - 1 {
        for s in 0..segments {
            let a = inn(r, s);
            let b = inn(r, s + 1);
            let c = inn(r + 1, s);
            let d = inn(r + 1, s + 1);
            triangles.push([a, d, b]);
            triangles.push([a, c, d]);
        }
    }
    for s in 0..segments {
        triangles.push([inn(rings - 1, s + 1), inn(rings - 1, s), inn_pole]);
    }
    // Rim annulus joining outer ring 0 to inner ring 0 (facing +Y).
    for s in 0..segments {
        let a = out(0, s);
        let b = out(0, s + 1);
        let c = inn(0, s);
        let d = inn(0, s + 1);
        triangles.push([a, d, b]);
        triangles.push([a, c, d]);
    }
    Mesh::new(positions, triangles).expect("bowl is well-formed")
}

/// Flat rectangular ground patch in the XZ plane (two triangles facing
/// +Y), centred at the origin.
///
/// # Panics
///
/// Panics on non-positive extents.
pub fn ground_quad(half_x: f32, half_z: f32) -> Mesh {
    assert!(half_x > 0.0 && half_z > 0.0, "ground_quad: non-positive extent");
    let positions = vec![
        Vec3::new(-half_x, 0.0, -half_z),
        Vec3::new(half_x, 0.0, -half_z),
        Vec3::new(half_x, 0.0, half_z),
        Vec3::new(-half_x, 0.0, half_z),
    ];
    // +Y normal: CCW seen from above.
    let triangles = vec![[0, 2, 1], [0, 3, 2]];
    Mesh::new(positions, triangles).expect("ground_quad is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed_and_outward(m: &Mesh) {
        assert!(m.signed_volume() > 0.0, "winding must be outward (volume {})", m.signed_volume());
        // Closed 2-manifold: every directed edge appears exactly once.
        use std::collections::HashMap;
        let mut edges: HashMap<(u32, u32), i32> = HashMap::new();
        for &[a, b, c] in m.indices() {
            for (u, v) in [(a, b), (b, c), (c, a)] {
                *edges.entry((u, v)).or_default() += 1;
                *edges.entry((v, u)).or_default() -= 1;
            }
        }
        for (e, count) in edges {
            assert_eq!(count, 0, "unmatched directed edge {e:?}");
        }
    }

    #[test]
    fn cuboid_is_closed_outward() {
        closed_and_outward(&cuboid(Vec3::new(1.0, 2.0, 0.5)));
    }

    #[test]
    fn uv_sphere_is_closed_outward() {
        closed_and_outward(&uv_sphere(2.0, 16, 8));
    }

    #[test]
    fn icosphere_is_closed_outward() {
        for sub in 0..3 {
            closed_and_outward(&icosphere(1.0, sub));
        }
    }

    #[test]
    fn icosphere_vertices_on_sphere() {
        let m = icosphere(2.5, 2);
        for &p in m.positions() {
            assert!((p.length() - 2.5).abs() < 1e-4);
        }
    }

    #[test]
    fn torus_is_closed_outward() {
        closed_and_outward(&torus(3.0, 1.0, 16, 8));
    }

    #[test]
    fn torus_volume_close_to_analytic() {
        let (big_r, small_r) = (3.0, 1.0);
        let m = torus(big_r, small_r, 48, 24);
        let analytic = TAU * big_r * PI * small_r * small_r;
        assert!((m.signed_volume() - analytic).abs() / analytic < 0.02);
    }

    #[test]
    fn capsule_is_closed_outward() {
        closed_and_outward(&capsule(0.5, 1.0, 12, 4));
    }

    #[test]
    fn capsule_volume_close_to_analytic() {
        let (r, hh) = (0.5f32, 1.0f32);
        let m = capsule(r, hh, 48, 24);
        let analytic = PI * r * r * (2.0 * hh) + 4.0 / 3.0 * PI * r * r * r;
        assert!((m.signed_volume() - analytic).abs() / analytic < 0.02);
    }

    #[test]
    fn l_prism_is_closed_outward_and_concave() {
        let m = l_prism(2.0, 1.0);
        closed_and_outward(&m);
        // Concavity: volume strictly below AABB volume * 0.8.
        assert!(m.signed_volume() < 0.8 * m.aabb().volume());
    }

    #[test]
    fn star_prism_is_closed_outward() {
        closed_and_outward(&star_prism(5, 2.0, 0.8, 1.0));
    }

    #[test]
    fn bowl_is_closed_outward_and_hollow() {
        let m = bowl(2.0, 1.6, 16, 6);
        closed_and_outward(&m);
        let shell = 2.0 / 3.0 * PI * (2.0f32.powi(3) - 1.6f32.powi(3));
        assert!((m.signed_volume() - shell).abs() / shell < 0.05);
    }

    #[test]
    fn triangulate_square() {
        let pts = [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
        ];
        let tris = triangulate_polygon(&pts);
        assert_eq!(tris.len(), 2);
        let area: f32 = tris
            .iter()
            .map(|&[a, b, c]| {
                let (a, b, c) = (pts[a as usize], pts[b as usize], pts[c as usize]);
                (b - a).perp_dot(c - a) * 0.5
            })
            .sum();
        assert!((area - 1.0).abs() < 1e-6);
    }

    #[test]
    fn triangulate_concave_l() {
        let pts = [
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 1.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(1.0, 2.0),
            Vec2::new(0.0, 2.0),
        ];
        let tris = triangulate_polygon(&pts);
        assert_eq!(tris.len(), 4);
        let area: f32 = tris
            .iter()
            .map(|&[a, b, c]| {
                let (a, b, c) = (pts[a as usize], pts[b as usize], pts[c as usize]);
                (b - a).perp_dot(c - a) * 0.5
            })
            .sum();
        assert!((area - 3.0).abs() < 1e-5);
        // Every triangle is positively oriented.
        for &[a, b, c] in &tris {
            let (a, b, c) = (pts[a as usize], pts[b as usize], pts[c as usize]);
            assert!((b - a).perp_dot(c - a) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn triangulate_rejects_degenerate() {
        let _ = triangulate_polygon(&[Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0)]);
    }

    #[test]
    fn tessellated_slab_is_closed_outward() {
        let m = tessellated_slab(Vec3::new(4.0, 0.25, 8.0), 6, 10);
        closed_and_outward(&m);
        assert_eq!(m.triangle_count() as u32, 6 * 10 * 4 + 2 * (6 + 10) * 2);
        let v = 8.0 * 0.5 * 16.0; // full extents 8 × 0.5 × 16
        assert!((m.signed_volume() - v).abs() / v < 1e-4);
    }

    #[test]
    fn tessellated_slab_1x1_matches_cuboid_volume() {
        let m = tessellated_slab(Vec3::new(1.0, 1.0, 1.0), 1, 1);
        closed_and_outward(&m);
        assert!((m.signed_volume() - 8.0).abs() < 1e-4);
    }

    #[test]
    fn ground_quad_faces_up() {
        let g = ground_quad(5.0, 5.0);
        for t in g.triangles() {
            assert!(t.normal().unwrap().y > 0.99);
        }
    }

    #[test]
    fn generators_reject_bad_input() {
        use std::panic::catch_unwind;
        assert!(catch_unwind(|| cuboid(Vec3::new(-1.0, 1.0, 1.0))).is_err());
        assert!(catch_unwind(|| uv_sphere(0.0, 8, 4)).is_err());
        assert!(catch_unwind(|| torus(1.0, 2.0, 8, 8)).is_err());
        assert!(catch_unwind(|| star_prism(2, 2.0, 1.0, 1.0)).is_err());
        assert!(catch_unwind(|| bowl(1.0, 2.0, 8, 4)).is_err());
    }
}

/// A closed, axis-aligned slab whose top and bottom surfaces are
/// tessellated into an `nx` × `nz` grid — the shape of a terrain /
/// floor *collision mesh* (games ship tessellated collision geometry
/// for terrain, which is what makes per-frame AABB refits expensive).
///
/// # Panics
///
/// Panics on non-positive half-extents or a grid smaller than 1×1.
pub fn tessellated_slab(half: Vec3, nx: u32, nz: u32) -> Mesh {
    assert!(half.x > 0.0 && half.y > 0.0 && half.z > 0.0, "tessellated_slab: bad extents");
    assert!(nx >= 1 && nz >= 1, "tessellated_slab: grid too coarse");
    let (w, h, d) = (half.x, half.y, half.z);
    let mut positions = Vec::new();
    let grid_at = |y: f32, positions: &mut Vec<Vec3>| -> u32 {
        let base = positions.len() as u32;
        for iz in 0..=nz {
            for ix in 0..=nx {
                positions.push(Vec3::new(
                    -w + 2.0 * w * ix as f32 / nx as f32,
                    y,
                    -d + 2.0 * d * iz as f32 / nz as f32,
                ));
            }
        }
        base
    };
    let top = grid_at(h, &mut positions);
    let bot = grid_at(-h, &mut positions);
    let at = |base: u32, ix: u32, iz: u32| base + iz * (nx + 1) + ix;

    let mut triangles = Vec::new();
    for iz in 0..nz {
        for ix in 0..nx {
            // Top face: +Y normal, CCW from above.
            let (a, b, c, d2) = (
                at(top, ix, iz),
                at(top, ix + 1, iz),
                at(top, ix + 1, iz + 1),
                at(top, ix, iz + 1),
            );
            triangles.push([a, c, b]);
            triangles.push([a, d2, c]);
            // Bottom face: -Y normal.
            let (a, b, c, d2) = (
                at(bot, ix, iz),
                at(bot, ix + 1, iz),
                at(bot, ix + 1, iz + 1),
                at(bot, ix, iz + 1),
            );
            triangles.push([a, b, c]);
            triangles.push([a, c, d2]);
        }
    }
    // Side walls: stitch the four perimeter strips.
    for ix in 0..nx {
        // -Z edge (iz = 0): outward normal -Z.
        let (t0, t1) = (at(top, ix, 0), at(top, ix + 1, 0));
        let (b0, b1) = (at(bot, ix, 0), at(bot, ix + 1, 0));
        triangles.push([t0, t1, b1]);
        triangles.push([t0, b1, b0]);
        // +Z edge: outward +Z.
        let (t0, t1) = (at(top, ix, nz), at(top, ix + 1, nz));
        let (b0, b1) = (at(bot, ix, nz), at(bot, ix + 1, nz));
        triangles.push([t1, t0, b0]);
        triangles.push([t1, b0, b1]);
    }
    for iz in 0..nz {
        // -X edge: outward -X.
        let (t0, t1) = (at(top, 0, iz), at(top, 0, iz + 1));
        let (b0, b1) = (at(bot, 0, iz), at(bot, 0, iz + 1));
        triangles.push([t1, t0, b0]);
        triangles.push([t1, b0, b1]);
        // +X edge: outward +X.
        let (t0, t1) = (at(top, nx, iz), at(top, nx, iz + 1));
        let (b0, b1) = (at(bot, nx, iz), at(bot, nx, iz + 1));
        triangles.push([t0, t1, b1]);
        triangles.push([t0, b1, b0]);
    }
    Mesh::new(positions, triangles).expect("tessellated_slab is well-formed")
}
