//! Randomized property tests for geometry: hulls and intersection
//! predicates, driven by the workspace's seeded [`Rng`].

use rbcd_geometry::{hull, intersect, shapes, Triangle};
use rbcd_math::{Mat4, Rng, Vec3};

const CASES: usize = 64;

fn point(rng: &mut Rng) -> Vec3 {
    Vec3::new(
        rng.gen_range(-5.0f32..5.0),
        rng.gen_range(-5.0f32..5.0),
        rng.gen_range(-5.0f32..5.0),
    )
}

fn points(rng: &mut Rng) -> Vec<Vec3> {
    let n = rng.gen_range(8usize..40);
    (0..n).map(|_| point(rng)).collect()
}

#[test]
fn hull_contains_all_inputs() {
    let mut rng = Rng::seed_from_u64(0x21);
    for _ in 0..CASES {
        let pts = points(&mut rng);
        if let Ok(h) = hull::convex_hull(&pts) {
            for &p in &pts {
                assert!(h.contains_point(p, 1e-3));
            }
            assert!(h.volume() >= 0.0);
        }
    }
}

#[test]
fn hull_support_is_extreme() {
    let mut rng = Rng::seed_from_u64(0x22);
    for _ in 0..CASES {
        let pts = points(&mut rng);
        let d = point(&mut rng);
        if d.length() <= 1e-3 {
            continue;
        }
        if let Ok(h) = hull::convex_hull(&pts) {
            let s = h.support(d);
            let max_input = pts.iter().map(|p| p.dot(d)).fold(f32::NEG_INFINITY, f32::max);
            // The support over hull vertices equals the max over all inputs.
            assert!((s.dot(d) - max_input).abs() <= 1e-3 * (1.0 + max_input.abs()));
        }
    }
}

#[test]
fn tri_tri_is_symmetric() {
    let mut rng = Rng::seed_from_u64(0x23);
    for _ in 0..CASES {
        let t1 = Triangle::new(point(&mut rng), point(&mut rng), point(&mut rng));
        let t2 = Triangle::new(point(&mut rng), point(&mut rng), point(&mut rng));
        if t1.is_degenerate() || t2.is_degenerate() {
            continue;
        }
        assert_eq!(
            intersect::tri_tri_intersect(&t1, &t2),
            intersect::tri_tri_intersect(&t2, &t1)
        );
    }
}

#[test]
fn shared_vertex_triangles_always_intersect() {
    let mut rng = Rng::seed_from_u64(0x24);
    for _ in 0..CASES {
        let a = point(&mut rng);
        let t1 = Triangle::new(a, point(&mut rng), point(&mut rng));
        let t2 = Triangle::new(a, point(&mut rng), point(&mut rng));
        if t1.is_degenerate() || t2.is_degenerate() {
            continue;
        }
        assert!(intersect::tri_tri_intersect(&t1, &t2));
    }
}

#[test]
fn translated_far_apart_never_intersect() {
    let mut rng = Rng::seed_from_u64(0x25);
    for _ in 0..CASES {
        let t1 = Triangle::new(point(&mut rng), point(&mut rng), point(&mut rng));
        // Move t2 beyond any possible overlap (inputs live in [-5, 5]^3).
        let off = Vec3::new(100.0, 0.0, 0.0);
        let t2 = Triangle::new(
            point(&mut rng) + off,
            point(&mut rng) + off,
            point(&mut rng) + off,
        );
        assert!(!intersect::tri_tri_intersect(&t1, &t2));
    }
}

#[test]
fn mesh_intersection_matches_pair_listing() {
    let mut rng = Rng::seed_from_u64(0x26);
    for _ in 0..CASES {
        let dx = rng.gen_range(0.0f32..4.0);
        let a = shapes::cube(1.0);
        let b = a.transformed(&Mat4::translation(Vec3::new(dx, 0.0, 0.0)));
        let hit = intersect::meshes_intersect(&a, &b);
        let pairs = intersect::mesh_intersection_pairs(&a, &b);
        assert_eq!(hit, !pairs.is_empty());
        // Cubes of half-extent 1: surfaces touch for dx in (0, 2].
        if dx > 0.05 && dx < 1.95 {
            assert!(hit);
        }
        if dx > 2.05 {
            assert!(!hit);
        }
    }
}
