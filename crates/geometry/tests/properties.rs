//! Property-based tests for geometry: hulls and intersection predicates.

use proptest::prelude::*;
use rbcd_geometry::{hull, intersect, shapes, Triangle};
use rbcd_math::{Mat4, Vec3};

fn point() -> impl Strategy<Value = Vec3> {
    (-5.0f32..5.0, -5.0f32..5.0, -5.0f32..5.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hull_contains_all_inputs(pts in prop::collection::vec(point(), 8..40)) {
        if let Ok(h) = hull::convex_hull(&pts) {
            for &p in &pts {
                prop_assert!(h.contains_point(p, 1e-3));
            }
            prop_assert!(h.volume() >= 0.0);
        }
    }

    #[test]
    fn hull_support_is_extreme(pts in prop::collection::vec(point(), 8..40), d in point()) {
        prop_assume!(d.length() > 1e-3);
        if let Ok(h) = hull::convex_hull(&pts) {
            let s = h.support(d);
            let max_input = pts.iter().map(|p| p.dot(d)).fold(f32::NEG_INFINITY, f32::max);
            // The support over hull vertices equals the max over all inputs.
            prop_assert!((s.dot(d) - max_input).abs() <= 1e-3 * (1.0 + max_input.abs()));
        }
    }

    #[test]
    fn tri_tri_is_symmetric(
        a0 in point(), a1 in point(), a2 in point(),
        b0 in point(), b1 in point(), b2 in point(),
    ) {
        let t1 = Triangle::new(a0, a1, a2);
        let t2 = Triangle::new(b0, b1, b2);
        prop_assume!(!t1.is_degenerate() && !t2.is_degenerate());
        prop_assert_eq!(
            intersect::tri_tri_intersect(&t1, &t2),
            intersect::tri_tri_intersect(&t2, &t1)
        );
    }

    #[test]
    fn shared_vertex_triangles_always_intersect(
        a in point(), b in point(), c in point(), d in point(), e in point(),
    ) {
        let t1 = Triangle::new(a, b, c);
        let t2 = Triangle::new(a, d, e);
        prop_assume!(!t1.is_degenerate() && !t2.is_degenerate());
        prop_assert!(intersect::tri_tri_intersect(&t1, &t2));
    }

    #[test]
    fn translated_far_apart_never_intersect(
        a0 in point(), a1 in point(), a2 in point(),
        b0 in point(), b1 in point(), b2 in point(),
    ) {
        let t1 = Triangle::new(a0, a1, a2);
        // Move t2 beyond any possible overlap (inputs live in [-5, 5]^3).
        let off = Vec3::new(100.0, 0.0, 0.0);
        let t2 = Triangle::new(b0 + off, b1 + off, b2 + off);
        prop_assert!(!intersect::tri_tri_intersect(&t1, &t2));
    }

    #[test]
    fn mesh_intersection_matches_pair_listing(dx in 0.0f32..4.0) {
        let a = shapes::cube(1.0);
        let b = a.transformed(&Mat4::translation(Vec3::new(dx, 0.0, 0.0)));
        let hit = intersect::meshes_intersect(&a, &b);
        let pairs = intersect::mesh_intersection_pairs(&a, &b);
        prop_assert_eq!(hit, !pairs.is_empty());
        // Cubes of half-extent 1: surfaces touch for dx in (0, 2].
        if dx > 0.05 && dx < 1.95 {
            prop_assert!(hit);
        }
        if dx > 2.05 {
            prop_assert!(!hit);
        }
    }
}
