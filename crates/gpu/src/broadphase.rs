//! Screen-space broad phase: pair-feasibility pruning of the tile
//! pipeline's image-side work.
//!
//! The pipeline rasterizes every binned draw into every overlapped tile
//! and Z-scans every occupied tile — but a tile whose binned collidable
//! objects can never form a pair (at most one distinct object, or no
//! two objects whose screen-space AABB + z-interval overlap) can never
//! contribute a collision, and its *image-side* work (scenery
//! rasterization, Early-Z, fragment shading) exists only to produce a
//! picture the collision unit never reads. This module computes, per
//! frame on the main thread:
//!
//! 1. **Per-draw screen bounds.** Each draw's binned triangles fold
//!    into an integer pixel AABB (from the binner's own
//!    `pixel_bounds`) plus a window-space z-interval, memoized through
//!    the incremental front-end's per-draw geometry cache so cached
//!    draws pay nothing ([`DrawBounds`]).
//! 2. **A deterministic interval sweep** over per-object union bounds
//!    (sorted by minimum x, then object id) marking the pair-feasible
//!    object set ([`plan_frame`]).
//! 3. **A per-tile skip mask**: a tile is skippable iff no two
//!    distinct pair-feasible objects binned into it have feasibly
//!    overlapping bounds.
//!
//! ## Exactness contract
//!
//! Reported pairs, every `rbcd.*` counter, and fault-ladder behaviour
//! are bit-identical to broad-phase-off, by construction:
//!
//! * **Every tile's collisionable fragments still reach the unit.** A
//!   skipped tile elides only image-side work: scenery primitives are
//!   not rasterized and Early-Z/shading never run, but collidable
//!   primitives rasterize exactly as before and their fragment stream
//!   (content *and* order) is unchanged — collision capture happens
//!   before, and independent of, the depth test. The ZEB insert + scan
//!   therefore runs identically, so even the escalation ladder's
//!   overflow behaviour (a single object stacking more surfaces than a
//!   list holds) is preserved bit for bit.
//! * **Pruning is conservative.** The z-interval feasibility test is
//!   inflated by two depth-quantization quanta (covering the unit's
//!   u16 depth snap and interpolation rounding), the pixel AABBs are
//!   the binner's own exact coverage bounds, and every comparison uses
//!   [`Aabb::feasibly_overlaps`] — NaN or otherwise fault-poisoned
//!   bounds can never *prove* disjointness, so faults fall through to
//!   "feasible", never "pruned". A draw whose z-interval was poisoned
//!   is widened to the full depth axis.
//! * **Only timing, energy, and mask-only `broadphase.*` counters
//!   move.** The merge timeline charges [`BroadphaseStats::sweep_cycles`]
//!   once per frame plus a small per-skipped-tile replay cost
//!   ([`skip_replay_cycles`]) instead of the tile's raster/scan span;
//!   the `broadphase.*` counters themselves follow the
//!   `tile.scan_skipped` convention (host-side accounting the energy
//!   model never reads).
//!
//! ## Interactions
//!
//! * **Default off.** [`BroadPhase::Off`] is the library default and
//!   keeps every golden counter pinned; the CLI defaults on with
//!   `--broadphase off` as the opt-out.
//! * **Temporal reuse** folds the broad-phase mode into the frame seed
//!   and the per-tile skip bit into each tile signature, so cached
//!   tiles only replay under the exact pruning that produced them.
//! * **The overload governor takes precedence**: a governed frame is
//!   never pruned. The deadline ladder's shed and coarsening decisions
//!   are merge-cursor driven, and pruning moves the cursor — allowing
//!   both at once would change which tiles shed, breaking the
//!   exactness contract. Pruned tiles therefore never count toward the
//!   governor's budget projection (a governed frame has none).
//! * **The sequential [`crate::Simulator::render_frame`] path ignores
//!   the knob** (like temporal reuse): its `dyn` collision-unit
//!   protocol has no per-tile replay hook.
//! * **Baseline mode is never pruned**: with no collision unit there
//!   are no pairs to preserve, and the baseline exists to measure the
//!   full render cost.

use crate::command::{FrameTrace, ObjectId};
use crate::raster::ScreenTriangle;
use crate::sim::BinnedTiles;
use crate::stats::BroadphaseStats;
use rbcd_math::{Aabb, Vec3};

/// Whether the screen-space broad phase prunes pair-infeasible tiles.
///
/// `Off` (the library default) renders every tile in full and keeps all
/// `broadphase.*` counters at zero — bit-identical to a simulator built
/// before this knob existed. `On` elides image-side work for tiles that
/// provably cannot contribute a collision pair; reported pairs and
/// every `rbcd.*` counter stay bit-identical either way (see the
/// module docs for the full contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BroadPhase {
    /// No pruning (the library default; golden counters are pinned
    /// under this mode).
    #[default]
    Off,
    /// Prune pair-infeasible tiles' image-side work. Only raster/scan
    /// timing, energy, and the mask-only `broadphase.*` counters move.
    On,
}

/// Two u16 depth-quantization quanta: the slack added to every
/// z-interval before the feasibility comparison. One quantum covers the
/// unit's depth snap (two floats more than a quantum apart can never
/// quantize equal), the second swallows barycentric-interpolation
/// rounding, which can nudge a fragment's z a few ULPs past its
/// triangle's vertex range.
const Z_SLACK: f32 = 2.0 / 65535.0;

/// One draw's screen-space bounds, folded over its *binned* triangles:
/// the integer pixel AABB the binner itself computed (exact fragment
/// coverage bounds, NaN-proof by construction) and the window-space
/// z-interval of the surviving vertices. Cached alongside the draw's
/// geometry by the incremental front-end, so unchanged draws pay
/// nothing per frame.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DrawBounds {
    min: Vec3,
    max: Vec3,
    /// Whether any triangle was folded (an unbinned draw has no
    /// fragments anywhere and never constrains feasibility).
    any: bool,
    /// `false` once a non-finite vertex z was seen: the z-interval is
    /// then widened to the full depth axis (never trusted for pruning).
    z_finite: bool,
}

impl Default for DrawBounds {
    fn default() -> Self {
        Self {
            min: Vec3::splat(f32::INFINITY),
            max: Vec3::splat(f32::NEG_INFINITY),
            any: false,
            z_finite: true,
        }
    }
}

impl DrawBounds {
    /// Folds one binned triangle: `px` is the binner's inclusive pixel
    /// bounds (`pixel_bounds`), the z-interval comes from the window
    /// vertices. Non-finite z poisons the interval toward "always
    /// feasible" rather than narrowing it.
    pub(crate) fn add_tri(&mut self, tri: &ScreenTriangle, px: (u32, u32, u32, u32)) {
        let (x0, y0, x1, y1) = px;
        self.any = true;
        self.min.x = self.min.x.min(x0 as f32);
        self.min.y = self.min.y.min(y0 as f32);
        self.max.x = self.max.x.max(x1 as f32);
        self.max.y = self.max.y.max(y1 as f32);
        for v in &tri.v {
            if v.z.is_finite() {
                self.min.z = self.min.z.min(v.z);
                self.max.z = self.max.z.max(v.z);
            } else {
                self.z_finite = false;
            }
        }
    }
}

/// One collidable object's union bounds in the sweep.
#[derive(Debug, Clone, Copy)]
struct ObjEntry {
    id: ObjectId,
    aabb: Aabb,
}

/// Reusable scratch for [`plan_frame`] (no steady-state allocations on
/// the per-frame path).
#[derive(Debug, Default)]
pub(crate) struct SweepScratch {
    /// Per-object union bounds, sorted by object id (binary-searched by
    /// the per-tile pass).
    objs: Vec<ObjEntry>,
    /// Pair-feasibility verdict per `objs` entry.
    feasible: Vec<bool>,
    /// Sweep order: `objs` indices sorted by minimum x, then id.
    order: Vec<u32>,
    /// The sweep's active interval set.
    active: Vec<u32>,
    /// Distinct feasible objects binned into the current tile.
    present: Vec<u32>,
}

/// Computes the frame's broad-phase plan: per-object bounds fold,
/// deterministic interval sweep, and the per-tile skip mask (one bool
/// per *active-list position*, parallel to `bins.active()`). Pure
/// main-thread work over the binned frame, so the plan — like the
/// reuse and coarsening plans — is thread-count invariant by
/// construction.
pub(crate) fn plan_frame(
    trace: &FrameTrace,
    bins: &BinnedTiles,
    draw_bounds: &[DrawBounds],
    scratch: &mut SweepScratch,
    skip: &mut Vec<bool>,
) -> BroadphaseStats {
    let mut stats = BroadphaseStats::default();

    // Per-object union bounds, keyed by id in a sorted vec. The
    // z-interval picks up the quantization slack here, once per object;
    // a poisoned interval widens to the whole depth axis.
    scratch.objs.clear();
    for (draw_idx, draw) in trace.draws.iter().enumerate() {
        let Some(id) = draw.collidable else { continue };
        let Some(db) = draw_bounds.get(draw_idx) else { continue };
        if !db.any {
            continue;
        }
        let (z0, z1) = if db.z_finite {
            (db.min.z - Z_SLACK, db.max.z + Z_SLACK)
        } else {
            (f32::NEG_INFINITY, f32::INFINITY)
        };
        let aabb = Aabb {
            min: Vec3::new(db.min.x, db.min.y, z0),
            max: Vec3::new(db.max.x, db.max.y, z1),
        };
        match scratch.objs.binary_search_by_key(&id, |e| e.id) {
            Ok(i) => {
                let e = &mut scratch.objs[i];
                e.aabb = e.aabb.union(&aabb);
            }
            Err(i) => scratch.objs.insert(i, ObjEntry { id, aabb }),
        }
    }

    // Interval sweep over x: objects in ascending min-x order, an
    // active set pruned by max-x, full feasibility test against each
    // surviving active interval. Any overlap marks *both* objects
    // pair-feasible. `total_cmp` plus the id tiebreak makes the order —
    // and therefore the modelled comparison count — fully deterministic.
    let n = scratch.objs.len();
    stats.objects_swept = n as u64;
    scratch.feasible.clear();
    scratch.feasible.resize(n, false);
    scratch.order.clear();
    scratch.order.extend(0..n as u32);
    let objs = &scratch.objs;
    scratch.order.sort_by(|&a, &b| {
        let (ea, eb) = (&objs[a as usize], &objs[b as usize]);
        ea.aabb.min.x.total_cmp(&eb.aabb.min.x).then(ea.id.cmp(&eb.id))
    });
    scratch.active.clear();
    let mut compares = 0u64;
    for &oi in &scratch.order {
        let cur = scratch.objs[oi as usize].aabb;
        // Strict drop: an interval whose end merely *touches* the new
        // start still shares a pixel column and stays active — and an
        // incomparable (NaN) end can never prove disjointness, so it
        // stays active too.
        scratch.active.retain(|&aj| {
            scratch.objs[aj as usize].aabb.max.x.partial_cmp(&cur.min.x)
                != Some(std::cmp::Ordering::Less)
        });
        for &aj in &scratch.active {
            compares += 1;
            if scratch.objs[aj as usize].aabb.feasibly_overlaps(&cur) {
                scratch.feasible[aj as usize] = true;
                scratch.feasible[oi as usize] = true;
            }
        }
        scratch.active.push(oi);
    }
    stats.objects_infeasible = scratch.feasible.iter().filter(|&&f| !f).count() as u64;
    stats.sweep_cycles = 16 + 4 * n as u64 + compares;

    // Per-tile skip mask: collect the distinct pair-feasible objects
    // binned into the tile (an object with no feasible partner anywhere
    // cannot form one here either), then test the survivors pairwise.
    skip.clear();
    for &ti in bins.active() {
        scratch.present.clear();
        let mut unknown = false;
        for prim in bins.tile(ti as usize) {
            let Some(id) = trace.draws[prim.draw as usize].collidable else { continue };
            match scratch.objs.binary_search_by_key(&id, |e| e.id) {
                Ok(oi) => {
                    let oi = oi as u32;
                    if scratch.feasible[oi as usize] && !scratch.present.contains(&oi) {
                        scratch.present.push(oi);
                    }
                }
                // A binned collidable prim without folded bounds should
                // be impossible; never prune on a gap in our own model.
                Err(_) => unknown = true,
            }
        }
        let mut pair_feasible = unknown;
        'pairs: for i in 0..scratch.present.len() {
            for j in (i + 1)..scratch.present.len() {
                let a = &scratch.objs[scratch.present[i] as usize].aabb;
                let b = &scratch.objs[scratch.present[j] as usize].aabb;
                if a.feasibly_overlaps(b) {
                    pair_feasible = true;
                    break 'pairs;
                }
            }
        }
        skip.push(!pair_feasible);
        stats.tiles_skipped += !pair_feasible as u64;
    }
    stats
}

/// Timeline cycles a broad-phase-skipped tile charges in the merge: the
/// Tile Fetcher still walks the polygon list (four primitives per
/// cycle, like the signature hash unit) plus a fixed dispatch cost.
/// This is the *only* cost a skipped tile pays on the raster timeline —
/// its raster span and ZEB claim are elided.
pub(crate) fn skip_replay_cycles(prims: u64) -> u64 {
    2 + prims.div_ceil(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Camera, DrawCommand};
    use rbcd_geometry::shapes;

    fn tri(z: f32) -> ScreenTriangle {
        ScreenTriangle::new(
            Vec3::new(1.0, 1.0, z),
            Vec3::new(9.0, 1.0, z),
            Vec3::new(1.0, 9.0, z),
        )
    }

    /// Builds a trace with `n` collidable cube draws (ids 1..=n) and
    /// one scenery draw at the end; meshes are irrelevant — the tests
    /// hand-fold bounds and hand-bin primitives.
    fn trace(n: u16) -> FrameTrace {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let mut draws: Vec<DrawCommand> = (1..=n)
            .map(|i| DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(i)))
            .collect();
        draws.push(DrawCommand::scenery(shapes::ground_quad(4.0, 4.0)));
        FrameTrace::new(camera, draws)
    }

    fn bounds(px: (u32, u32, u32, u32), z0: f32, z1: f32) -> DrawBounds {
        let mut db = DrawBounds::default();
        db.add_tri(&tri(z0), px);
        db.add_tri(&tri(z1), px);
        db
    }

    /// One tile per draw listed, binning each draw's single prim into
    /// consecutive tiles; returns laid-out bins with one active tile
    /// per entry of `tiles` (tile i gets the draw indices in
    /// `tiles[i]`).
    fn bins_for(tiles: &[&[u32]]) -> BinnedTiles {
        let mut bins = BinnedTiles::default();
        bins.begin_frame(tiles.len().max(1));
        for (ti, draws) in tiles.iter().enumerate() {
            for &d in *draws {
                bins.push(
                    ti,
                    crate::sim::BinnedPrim {
                        tri: tri(0.5),
                        facing: crate::command::Facing::Front,
                        draw: d,
                        record: 0,
                        tagged_cull: false,
                    },
                );
            }
        }
        bins.layout();
        bins
    }

    fn run(
        trace: &FrameTrace,
        bins: &BinnedTiles,
        draw_bounds: &[DrawBounds],
    ) -> (BroadphaseStats, Vec<bool>) {
        let mut scratch = SweepScratch::default();
        let mut skip = Vec::new();
        let stats = plan_frame(trace, bins, draw_bounds, &mut scratch, &mut skip);
        (stats, skip)
    }

    #[test]
    fn overlapping_objects_are_feasible_and_their_tile_renders() {
        let t = trace(2);
        // Same pixel rectangle, overlapping z: a feasible pair.
        let db = vec![
            bounds((0, 0, 15, 15), 0.4, 0.6),
            bounds((8, 8, 20, 20), 0.5, 0.7),
            DrawBounds::default(), // scenery: never swept
        ];
        let bins = bins_for(&[&[0, 1], &[0]]);
        let (stats, skip) = run(&t, &bins, &db);
        assert_eq!(stats.objects_swept, 2);
        assert_eq!(stats.objects_infeasible, 0);
        assert_eq!(skip, vec![false, true], "the pair tile renders, the solo tile skips");
        assert_eq!(stats.tiles_skipped, 1);
        assert!(stats.sweep_cycles > 0);
    }

    #[test]
    fn disjoint_intervals_prune_on_every_axis() {
        let t = trace(2);
        for (a, b) in [
            // Disjoint in x.
            (bounds((0, 0, 10, 10), 0.4, 0.6), bounds((20, 0, 30, 10), 0.4, 0.6)),
            // Disjoint in y.
            (bounds((0, 0, 10, 10), 0.4, 0.6), bounds((0, 20, 10, 30), 0.4, 0.6)),
            // Disjoint in z (beyond the quantization slack).
            (bounds((0, 0, 10, 10), 0.1, 0.2), bounds((0, 0, 10, 10), 0.8, 0.9)),
        ] {
            let db = vec![a, b, DrawBounds::default()];
            let bins = bins_for(&[&[0, 1]]);
            let (stats, skip) = run(&t, &bins, &db);
            assert_eq!(stats.objects_infeasible, 2);
            assert_eq!(skip, vec![true], "an infeasible pair's shared tile skips");
        }
    }

    #[test]
    fn z_within_quantization_slack_stays_feasible() {
        let t = trace(2);
        // Intervals separated by less than one quantum: the unit's u16
        // depth snap could still make them meet, so they must not prune.
        let db = vec![
            bounds((0, 0, 10, 10), 0.4, 0.5),
            bounds((0, 0, 10, 10), 0.5 + 0.5 / 65535.0, 0.6),
            DrawBounds::default(),
        ];
        let bins = bins_for(&[&[0, 1]]);
        let (stats, skip) = run(&t, &bins, &db);
        assert_eq!(stats.objects_infeasible, 0);
        assert_eq!(skip, vec![false]);
    }

    #[test]
    fn nan_z_widens_to_always_feasible() {
        let t = trace(2);
        let mut poisoned = bounds((0, 0, 10, 10), 0.1, 0.2);
        poisoned.add_tri(&tri(f32::NAN), (0, 0, 10, 10));
        // Clean partner far away in z but overlapping in x/y: the
        // poisoned interval must read feasible against it.
        let db = vec![poisoned, bounds((0, 0, 10, 10), 0.8, 0.9), DrawBounds::default()];
        let bins = bins_for(&[&[0, 1]]);
        let (stats, skip) = run(&t, &bins, &db);
        assert_eq!(stats.objects_infeasible, 0, "faults fall through to feasible");
        assert_eq!(skip, vec![false]);
    }

    #[test]
    fn unbinned_draws_and_scenery_never_constrain() {
        let t = trace(3);
        // Object 3's draw never binned anything: it is not swept, and a
        // scenery-only tile (zero collidable objects present) skips.
        let db = vec![
            bounds((0, 0, 10, 10), 0.4, 0.6),
            bounds((0, 0, 10, 10), 0.5, 0.7),
            DrawBounds::default(), // object 3: no binned geometry
            DrawBounds::default(), // scenery
        ];
        let bins = bins_for(&[&[3], &[0, 1]]);
        let (stats, skip) = run(&t, &bins, &db);
        assert_eq!(stats.objects_swept, 2);
        assert_eq!(skip, vec![true, false]);
    }

    #[test]
    fn binned_draw_without_bounds_is_never_pruned() {
        // A binned collidable prim whose bounds were never folded is a
        // gap in our own model (impossible in the real pipeline, where
        // binning and bounds-folding are one pass): the defensive path
        // must read it as "unknown" and render the tile, never prune.
        let t = trace(3);
        let db = vec![
            bounds((0, 0, 10, 10), 0.4, 0.6),
            bounds((0, 0, 10, 10), 0.5, 0.7),
            DrawBounds::default(), // object 3: binned below, bounds gap
            DrawBounds::default(), // scenery
        ];
        let bins = bins_for(&[&[2], &[0, 1]]);
        let (_, skip) = run(&t, &bins, &db);
        assert_eq!(skip, vec![false, false], "a model gap must fall through to render");
    }

    #[test]
    fn sweep_is_order_deterministic() {
        let t = trace(4);
        let db = vec![
            bounds((30, 0, 40, 10), 0.4, 0.6),
            bounds((0, 0, 10, 10), 0.4, 0.6),
            bounds((5, 0, 15, 10), 0.4, 0.6),
            bounds((60, 0, 70, 10), 0.4, 0.6),
            DrawBounds::default(),
        ];
        let bins = bins_for(&[&[0, 1, 2, 3]]);
        let (a, skip_a) = run(&t, &bins, &db);
        let (b, skip_b) = run(&t, &bins, &db);
        assert_eq!(a, b, "identical inputs, identical plan and modelled cost");
        assert_eq!(skip_a, skip_b);
        // Objects 2 and 3 overlap each other; 1 and 4 are loners.
        assert_eq!(a.objects_infeasible, 2);
    }

    #[test]
    fn replay_cost_scales_with_list_length() {
        assert_eq!(skip_replay_cycles(0), 2);
        assert_eq!(skip_replay_cycles(1), 3);
        assert_eq!(skip_replay_cycles(8), 4);
        assert!(skip_replay_cycles(100) < 100);
    }
}
