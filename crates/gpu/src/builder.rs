//! Validating, fluent construction of [`Simulator`]s.
//!
//! `Simulator::new(GpuConfig { .. })` accepts any bag of numbers — a
//! zero-sized tile or a zero-throughput rasterizer silently produces a
//! nonsense simulation (or a divide-by-zero panic deep in a pipeline).
//! [`SimulatorBuilder`] is the checked front door: setters for the
//! commonly varied knobs, wholesale [`SimulatorBuilder::config`] for
//! the rest, and a [`SimulatorBuilder::build`] that rejects degenerate
//! configurations with a typed [`GpuConfigError`].

use crate::cache::CacheConfig;
use crate::config::{GovernorConfig, GpuConfig};
use crate::policy::FramePolicy;
use crate::sim::Simulator;
use rbcd_math::Viewport;
use std::fmt;

/// A rejected GPU configuration, naming the offending parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuConfigError {
    /// The viewport has a zero dimension.
    ZeroViewport {
        /// Offending width.
        width: u32,
        /// Offending height.
        height: u32,
    },
    /// `tile_size` is zero.
    ZeroTileSize,
    /// `frequency_hz` is zero (cycles could not convert to seconds).
    ZeroFrequency,
    /// A processor or throughput parameter that the timing model
    /// divides by is zero.
    ZeroThroughput(
        /// The parameter's field name.
        &'static str,
    ),
    /// `mem_latency_min` exceeds `mem_latency_max`.
    LatencyInverted {
        /// Configured minimum latency.
        min: u64,
        /// Configured maximum latency.
        max: u64,
    },
    /// `dram_contention` is outside `[0, 1]` or not finite.
    ContentionOutOfRange(
        /// The rejected value.
        f64,
    ),
    /// A cache's geometry is unusable (zero line/ways/size, or a size
    /// smaller than one full set of lines).
    BadCache {
        /// Which cache (`"vertex_cache"`, `"tile_cache"`, `"l2_cache"`).
        cache: &'static str,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// A record size the address math multiplies by is zero.
    ZeroRecordBytes(
        /// The parameter's field name.
        &'static str,
    ),
}

impl fmt::Display for GpuConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroViewport { width, height } => {
                write!(f, "viewport {width}x{height} has a zero dimension")
            }
            Self::ZeroTileSize => write!(f, "tile_size must be positive"),
            Self::ZeroFrequency => write!(f, "frequency_hz must be positive"),
            Self::ZeroThroughput(field) => write!(f, "{field} must be positive"),
            Self::LatencyInverted { min, max } => {
                write!(f, "mem_latency_min ({min}) exceeds mem_latency_max ({max})")
            }
            Self::ContentionOutOfRange(v) => {
                write!(f, "dram_contention ({v}) must be a finite value in [0, 1]")
            }
            Self::BadCache { cache, reason } => write!(f, "{cache}: {reason}"),
            Self::ZeroRecordBytes(field) => write!(f, "{field} must be positive"),
        }
    }
}

impl std::error::Error for GpuConfigError {}

/// Fluent, validating constructor for [`Simulator`].
///
/// Hardware shape lives in the per-field setters (or a wholesale
/// [`GpuConfig`]); execution behaviour — reuse, tracing, governor, hot
/// path — arrives as one [`FramePolicy`]:
///
/// ```
/// use rbcd_gpu::{FramePolicy, SimulatorBuilder};
///
/// let sim = SimulatorBuilder::new()
///     .viewport(128, 96)
///     .tile_size(16)
///     .policy(FramePolicy::new().with_tracing(true))
///     .build()
///     .expect("valid configuration");
/// assert!(sim.tracing_enabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimulatorBuilder {
    config: GpuConfig,
    policy: FramePolicy,
}

impl SimulatorBuilder {
    /// Starts from the paper's Table 1 defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing configuration (all setters still apply
    /// on top).
    pub fn from_config(config: GpuConfig) -> Self {
        Self { config, policy: FramePolicy::default() }
    }

    /// Installs the execution policy wholesale, replacing any knobs set
    /// so far. This is the one place reuse, tracing, the governor, and
    /// a hot-path override are configured; the deprecated per-knob
    /// setters below delegate into the same policy.
    pub fn policy(mut self, policy: FramePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The execution policy as configured so far.
    pub fn frame_policy(&self) -> &FramePolicy {
        &self.policy
    }

    /// Replaces the whole configuration wholesale.
    pub fn config(mut self, config: GpuConfig) -> Self {
        self.config = config;
        self
    }

    /// Render-target size in pixels. A zero dimension is accepted here
    /// and rejected by [`SimulatorBuilder::validate`] with a typed
    /// error (unlike [`Viewport::new`], which panics).
    pub fn viewport(mut self, width: u32, height: u32) -> Self {
        self.config.viewport = Viewport { width, height };
        self
    }

    /// Tile edge in pixels.
    pub fn tile_size(mut self, tile_size: u32) -> Self {
        self.config.tile_size = tile_size;
        self
    }

    /// Core clock in Hz.
    pub fn frequency_hz(mut self, hz: u64) -> Self {
        self.config.frequency_hz = hz;
        self
    }

    /// Number of programmable fragment processors.
    pub fn fragment_processors(mut self, n: u32) -> Self {
        self.config.fragment_processors = n;
        self
    }

    /// Number of programmable vertex processors.
    pub fn vertex_processors(mut self, n: u32) -> Self {
        self.config.vertex_processors = n;
        self
    }

    /// Enables structured tracing on the built simulator (equivalent to
    /// [`Simulator::set_tracing`] after construction).
    #[deprecated(
        since = "0.1.0",
        note = "fold the knob into a `FramePolicy` and pass it via `SimulatorBuilder::policy`"
    )]
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.policy.tracing = enabled;
        self
    }

    /// Enables temporal tile coherence on the built simulator
    /// (equivalent to [`Simulator::set_reuse`] after construction).
    /// Only the parallel render path consults the knob; see
    /// [`Simulator::set_reuse`] for the contract.
    #[deprecated(
        since = "0.1.0",
        note = "fold the knob into a `FramePolicy` and pass it via `SimulatorBuilder::policy`"
    )]
    pub fn reuse(mut self, enabled: bool) -> Self {
        self.policy.reuse = enabled;
        self
    }

    /// Installs an overload governor on the built simulator (equivalent
    /// to [`Simulator::set_governor`] after construction). See that
    /// method for which render paths honour which policy rungs.
    #[deprecated(
        since = "0.1.0",
        note = "fold the knob into a `FramePolicy` and pass it via `SimulatorBuilder::policy`"
    )]
    pub fn governor(mut self, config: Option<GovernorConfig>) -> Self {
        self.policy.governor = config;
        self
    }

    /// Checks the configuration without building.
    ///
    /// # Errors
    ///
    /// Returns the first [`GpuConfigError`] found, in the declaration
    /// order of [`GpuConfig`]'s fields.
    pub fn validate(&self) -> Result<(), GpuConfigError> {
        let c = &self.config;
        if c.frequency_hz == 0 {
            return Err(GpuConfigError::ZeroFrequency);
        }
        if c.viewport.width == 0 || c.viewport.height == 0 {
            return Err(GpuConfigError::ZeroViewport {
                width: c.viewport.width,
                height: c.viewport.height,
            });
        }
        if c.tile_size == 0 {
            return Err(GpuConfigError::ZeroTileSize);
        }
        for (field, value) in [
            ("vertex_processors", c.vertex_processors as u64),
            ("fragment_processors", c.fragment_processors as u64),
            ("raster_frags_per_cycle", c.raster_frags_per_cycle as u64),
            ("triangles_per_cycle", c.triangles_per_cycle as u64),
            ("memory_parallelism", c.memory_parallelism),
            ("dram_bytes_per_cycle", c.dram_bytes_per_cycle),
        ] {
            if value == 0 {
                return Err(GpuConfigError::ZeroThroughput(field));
            }
        }
        if c.mem_latency_min > c.mem_latency_max {
            return Err(GpuConfigError::LatencyInverted {
                min: c.mem_latency_min,
                max: c.mem_latency_max,
            });
        }
        if !c.dram_contention.is_finite() || !(0.0..=1.0).contains(&c.dram_contention) {
            return Err(GpuConfigError::ContentionOutOfRange(c.dram_contention));
        }
        for (name, cache) in [
            ("vertex_cache", &c.vertex_cache),
            ("tile_cache", &c.tile_cache),
            ("l2_cache", &c.l2_cache),
        ] {
            check_cache(name, cache)?;
        }
        for (field, value) in [
            ("prim_record_bytes", c.prim_record_bytes),
            ("vertex_record_bytes", c.vertex_record_bytes),
        ] {
            if value == 0 {
                return Err(GpuConfigError::ZeroRecordBytes(field));
            }
        }
        Ok(())
    }

    /// Validates and builds the simulator.
    ///
    /// # Errors
    ///
    /// See [`SimulatorBuilder::validate`].
    pub fn build(self) -> Result<Simulator, GpuConfigError> {
        self.validate()?;
        let mut config = self.config;
        if let Some(mode) = self.policy.hot_path {
            config.hot_path = mode;
        }
        let mut sim = Simulator::new(config);
        sim.set_tracing(self.policy.tracing);
        sim.set_reuse(self.policy.reuse);
        sim.set_frontend(self.policy.frontend);
        sim.set_governor(self.policy.governor);
        sim.set_broadphase(self.policy.broadphase);
        Ok(sim)
    }
}

fn check_cache(name: &'static str, cache: &CacheConfig) -> Result<(), GpuConfigError> {
    let bad = |reason| Err(GpuConfigError::BadCache { cache: name, reason });
    if cache.line_bytes == 0 {
        return bad("line_bytes must be positive");
    }
    if cache.ways == 0 {
        return bad("ways must be positive");
    }
    if cache.size_bytes == 0 {
        return bad("size_bytes must be positive");
    }
    if cache.size_bytes < cache.line_bytes * cache.ways as u64 {
        return bad("size_bytes must hold at least one full set");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_is_valid() {
        let sim = SimulatorBuilder::new().build().expect("Table 1 defaults are valid");
        assert_eq!(sim.config().tile_size, 16);
        assert!(!sim.tracing_enabled());
    }

    // Deliberately exercises the deprecated per-knob setters: the
    // compatibility contract is that they keep compiling and behave
    // identically to the policy path.
    #[allow(deprecated)]
    #[test]
    fn fluent_setters_apply() {
        let sim = SimulatorBuilder::new()
            .viewport(64, 48)
            .tile_size(8)
            .frequency_hz(100_000_000)
            .fragment_processors(2)
            .tracing(true)
            .reuse(true)
            .build()
            .unwrap();
        let c = sim.config();
        assert_eq!((c.viewport.width, c.viewport.height), (64, 48));
        assert_eq!(c.tile_size, 8);
        assert_eq!(c.frequency_hz, 100_000_000);
        assert_eq!(c.fragment_processors, 2);
        assert!(sim.tracing_enabled());
        assert!(sim.reuse_enabled());
    }

    #[test]
    fn rejects_degenerate_configs_with_typed_errors() {
        assert_eq!(
            SimulatorBuilder::new().viewport(0, 480).validate(),
            Err(GpuConfigError::ZeroViewport { width: 0, height: 480 })
        );
        assert_eq!(
            SimulatorBuilder::new().tile_size(0).validate(),
            Err(GpuConfigError::ZeroTileSize)
        );
        assert_eq!(
            SimulatorBuilder::new().frequency_hz(0).validate(),
            Err(GpuConfigError::ZeroFrequency)
        );
        assert_eq!(
            SimulatorBuilder::new().fragment_processors(0).validate(),
            Err(GpuConfigError::ZeroThroughput("fragment_processors"))
        );
        let inverted = GpuConfig {
            mem_latency_min: 200,
            mem_latency_max: 100,
            ..GpuConfig::default()
        };
        assert_eq!(
            SimulatorBuilder::from_config(inverted).validate(),
            Err(GpuConfigError::LatencyInverted { min: 200, max: 100 })
        );
        let contended = GpuConfig { dram_contention: 1.5, ..GpuConfig::default() };
        assert!(matches!(
            SimulatorBuilder::from_config(contended).validate(),
            Err(GpuConfigError::ContentionOutOfRange(_))
        ));
        let tiny_cache = GpuConfig {
            vertex_cache: CacheConfig { line_bytes: 64, ways: 2, size_bytes: 64 },
            ..GpuConfig::default()
        };
        assert!(matches!(
            SimulatorBuilder::from_config(tiny_cache).validate(),
            Err(GpuConfigError::BadCache { cache: "vertex_cache", .. })
        ));
    }

    #[test]
    fn errors_render_readable_messages() {
        let e = GpuConfigError::LatencyInverted { min: 9, max: 3 };
        assert!(e.to_string().contains("mem_latency_min"));
        let e = GpuConfigError::BadCache { cache: "l2_cache", reason: "ways must be positive" };
        assert!(e.to_string().contains("l2_cache"));
    }

    #[allow(deprecated)]
    #[test]
    fn deprecated_setters_and_policy_build_identical_simulators() {
        let gov = GovernorConfig { frame_budget_cycles: 9_999, ..GovernorConfig::default() };
        let via_policy = SimulatorBuilder::new()
            .policy(
                FramePolicy::new().with_tracing(true).with_reuse(true).with_governor(Some(gov)),
            )
            .build()
            .unwrap();
        let via_setters = SimulatorBuilder::new()
            .tracing(true)
            .reuse(true)
            .governor(Some(gov))
            .build()
            .unwrap();
        assert_eq!(via_policy.tracing_enabled(), via_setters.tracing_enabled());
        assert_eq!(via_policy.reuse_enabled(), via_setters.reuse_enabled());
        assert_eq!(via_policy.governor(), via_setters.governor());
        assert_eq!(via_policy.config(), via_setters.config());
    }

    #[test]
    fn policy_hot_path_overrides_config_only_when_set() {
        use crate::config::HotPathMode;
        let cfg = GpuConfig { hot_path: HotPathMode::Reference, ..GpuConfig::default() };
        let kept = SimulatorBuilder::from_config(cfg.clone())
            .policy(FramePolicy::new())
            .build()
            .unwrap();
        assert_eq!(kept.config().hot_path, HotPathMode::Reference, "None keeps the config's mode");
        let overridden = SimulatorBuilder::from_config(cfg)
            .policy(FramePolicy::new().with_hot_path(HotPathMode::Mask))
            .build()
            .unwrap();
        assert_eq!(overridden.config().hot_path, HotPathMode::Mask);
    }

    #[test]
    fn policy_frontend_reaches_the_simulator() {
        use crate::frontend::FrontendMode;
        let default = SimulatorBuilder::new().build().unwrap();
        assert_eq!(default.frontend(), FrontendMode::Rebuild);
        let incremental = SimulatorBuilder::new()
            .policy(FramePolicy::new().with_frontend(FrontendMode::Incremental))
            .build()
            .unwrap();
        assert_eq!(incremental.frontend(), FrontendMode::Incremental);
    }

    #[test]
    fn policy_broadphase_reaches_the_simulator() {
        use crate::broadphase::BroadPhase;
        let default = SimulatorBuilder::new().build().unwrap();
        assert_eq!(default.broadphase(), BroadPhase::Off, "Off by default keeps goldens pinned");
        let pruned = SimulatorBuilder::new()
            .policy(FramePolicy::new().with_broadphase(BroadPhase::On))
            .build()
            .unwrap();
        assert_eq!(pruned.broadphase(), BroadPhase::On);
    }

    #[test]
    fn built_simulator_matches_plain_constructor() {
        // The builder is a checked front door, not a different machine:
        // same config in, same simulator out.
        let via_builder = SimulatorBuilder::new().viewport(64, 64).build().unwrap();
        let via_new = Simulator::new(GpuConfig {
            viewport: rbcd_math::Viewport::new(64, 64),
            ..GpuConfig::default()
        });
        assert_eq!(via_builder.config(), via_new.config());
    }
}
