//! A simple set-associative cache model with LRU replacement.
//!
//! Used for the vertex cache and tile cache of the geometry/raster
//! pipelines. The model tracks hits and misses per access; miss *timing*
//! is applied by the simulator (latency divided by the configured
//! memory-level parallelism), and miss *energy* is charged per line fill.

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Total capacity in bytes.
    pub size_bytes: u64,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not yield at least one set.
    pub fn sets(&self) -> u64 {
        let sets = self.size_bytes / (self.line_bytes * self.ways as u64);
        assert!(sets > 0, "cache too small for its associativity");
        sets
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses.
    pub read_accesses: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write accesses.
    pub write_accesses: u64,
    /// Write misses (write-allocate).
    pub write_misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.read_accesses + self.write_accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Accumulates another stats block.
    pub fn add(&mut self, other: &CacheStats) {
        self.read_accesses += other.read_accesses;
        self.read_misses += other.read_misses;
        self.write_accesses += other.write_accesses;
        self.write_misses += other.write_misses;
    }
}

/// A set-associative, write-allocate, LRU cache.
#[derive(Debug, Clone)]
pub struct CacheModel {
    config: CacheConfig,
    /// `sets × ways` tags; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
    /// `log2(line_bytes)`: line size is a power of two, so the address
    /// → line mapping is a shift instead of a division.
    line_shift: u32,
    /// `sets - 1` when the set count is a power of two (the usual
    /// case), letting the line → set mapping mask instead of divide;
    /// `None` falls back to the modulo.
    set_mask: Option<u64>,
}

impl CacheModel {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let entries = (sets as usize) * config.ways as usize;
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        Self {
            config,
            tags: vec![u64::MAX; entries],
            stamps: vec![0; entries],
            clock: 0,
            stats: CacheStats::default(),
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets.is_power_of_two().then(|| sets - 1),
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.stats = CacheStats::default();
    }

    /// Clears statistics but keeps cache contents (e.g. between frames).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn touch(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = match self.set_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.config.sets()) as usize,
        };
        let ways = self.config.ways as usize;
        let base = set * ways;
        // Hit?
        for w in 0..ways {
            if self.tags[base + w] == line {
                self.stamps[base + w] = self.clock;
                return true;
            }
        }
        // Miss: evict LRU.
        let victim = (0..ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways >= 1");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Performs a read of the line containing `addr`; returns `true` on
    /// hit.
    pub fn read(&mut self, addr: u64) -> bool {
        self.stats.read_accesses += 1;
        let hit = self.touch(addr);
        if !hit {
            self.stats.read_misses += 1;
        }
        hit
    }

    /// Performs a write (write-allocate) of the line containing `addr`;
    /// returns `true` on hit.
    pub fn write(&mut self, addr: u64) -> bool {
        self.stats.write_accesses += 1;
        let hit = self.touch(addr);
        if !hit {
            self.stats.write_misses += 1;
        }
        hit
    }

    /// Reads a `bytes`-long object starting at `addr`, touching every
    /// line it spans.
    pub fn read_span(&mut self, addr: u64, bytes: u64) {
        let first = addr >> self.line_shift;
        let last = (addr + bytes.max(1) - 1) >> self.line_shift;
        for line in first..=last {
            self.read(line << self.line_shift);
        }
    }

    /// Writes a `bytes`-long object starting at `addr`.
    pub fn write_span(&mut self, addr: u64, bytes: u64) {
        let first = addr >> self.line_shift;
        let last = (addr + bytes.max(1) - 1) >> self.line_shift;
        for line in first..=last {
            self.write(line << self.line_shift);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheModel {
        // 2 sets × 2 ways × 64 B lines = 256 B.
        CacheModel::new(CacheConfig { line_bytes: 64, ways: 2, size_bytes: 256 })
    }

    #[test]
    fn sets_computation() {
        assert_eq!(CacheConfig { line_bytes: 64, ways: 2, size_bytes: 4096 }.sets(), 32);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn zero_sets_rejected() {
        let _ = CacheConfig { line_bytes: 64, ways: 8, size_bytes: 256 }.sets();
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.read(0));
        assert!(c.read(0));
        assert!(c.read(63)); // same line
        assert!(!c.read(64)); // next line
        assert_eq!(c.stats().read_accesses, 4);
        assert_eq!(c.stats().read_misses, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Set index = (addr/64) % 2. Lines 0, 2, 4 all map to set 0.
        assert!(!c.read(0));
        assert!(!c.read(2 * 64));
        assert!(!c.read(4 * 64)); // evicts line 0 (LRU)
        assert!(!c.read(0)); // line 0 gone again
        assert!(c.read(4 * 64)); // still resident
    }

    #[test]
    fn lru_respects_recency() {
        let mut c = tiny();
        c.read(0);
        c.read(2 * 64);
        c.read(0); // refresh line 0 → line 2 is now LRU
        c.read(4 * 64); // evicts line 2
        assert!(c.read(0));
        assert!(!c.read(2 * 64));
    }

    #[test]
    fn write_allocate() {
        let mut c = tiny();
        assert!(!c.write(128));
        assert!(c.read(128));
        assert_eq!(c.stats().write_misses, 1);
    }

    #[test]
    fn span_touches_every_line() {
        let mut c = tiny();
        c.read_span(0, 130); // lines 0, 1, 2
        assert_eq!(c.stats().read_accesses, 3);
        c.write_span(60, 8); // straddles lines 0 and 1
        assert_eq!(c.stats().write_accesses, 2);
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = tiny();
        c.read(0);
        c.reset();
        assert!(!c.read(0));
        assert_eq!(c.stats().read_accesses, 1);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        c.read(0);
        c.reset_stats();
        assert!(c.read(0));
        assert_eq!(c.stats().read_misses, 0);
    }
}
