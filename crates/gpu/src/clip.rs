//! Near-plane clipping in clip space.
//!
//! The geometry pipeline clips assembled triangles against the near plane
//! (`z + w >= 0` in OpenGL clip space) before the perspective divide;
//! triangles entirely behind the camera vanish, straddling ones are
//! re-tessellated into one or two triangles. Side planes are left to the
//! rasterizer's tile scissoring (guard-band clipping, as real mobile
//! GPUs do).

use rbcd_math::Vec4;

const EPS: f32 = 1e-7;

/// Clips the triangle `(a, b, c)` (clip-space positions) against the
/// near plane `z + w >= 0`.
///
/// Returns 0, 1, or 2 triangles. Winding (and therefore facing) is
/// preserved.
pub fn clip_near(a: Vec4, b: Vec4, c: Vec4) -> Vec<[Vec4; 3]> {
    let dist = |v: Vec4| v.z + v.w;
    let verts = [a, b, c];
    let d = [dist(a), dist(b), dist(c)];

    let inside: Vec<usize> = (0..3).filter(|&i| d[i] >= -EPS).collect();
    match inside.len() {
        3 => vec![[a, b, c]],
        0 => Vec::new(),
        n => {
            // Sutherland–Hodgman against the single plane, preserving order.
            let mut poly: Vec<Vec4> = Vec::with_capacity(4);
            for i in 0..3 {
                let j = (i + 1) % 3;
                let (vi, vj) = (verts[i], verts[j]);
                let (di, dj) = (d[i], d[j]);
                if di >= -EPS {
                    poly.push(vi);
                }
                if (di >= -EPS) != (dj >= -EPS) {
                    let t = di / (di - dj);
                    poly.push(Vec4::new(
                        vi.x + (vj.x - vi.x) * t,
                        vi.y + (vj.y - vi.y) * t,
                        vi.z + (vj.z - vi.z) * t,
                        vi.w + (vj.w - vi.w) * t,
                    ));
                }
            }
            debug_assert_eq!(poly.len(), if n == 1 { 3 } else { 4 });
            match poly.len() {
                3 => vec![[poly[0], poly[1], poly[2]]],
                4 => vec![[poly[0], poly[1], poly[2]], [poly[0], poly[2], poly[3]]],
                _ => Vec::new(), // numerically degenerate sliver
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32, y: f32, z: f32, w: f32) -> Vec4 {
        Vec4::new(x, y, z, w)
    }

    #[test]
    fn fully_inside_passes_through() {
        let t = clip_near(v(0.0, 0.0, 0.0, 1.0), v(1.0, 0.0, 0.0, 1.0), v(0.0, 1.0, 0.0, 1.0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fully_behind_vanishes() {
        let t = clip_near(
            v(0.0, 0.0, -2.0, 1.0),
            v(1.0, 0.0, -2.0, 1.0),
            v(0.0, 1.0, -2.0, 1.0),
        );
        assert!(t.is_empty());
    }

    #[test]
    fn one_vertex_inside_yields_one_triangle() {
        let t = clip_near(
            v(0.0, 0.0, 0.0, 1.0),   // inside (d = 1)
            v(1.0, 0.0, -2.0, 1.0),  // outside (d = -1)
            v(-1.0, 0.0, -2.0, 1.0), // outside
        );
        assert_eq!(t.len(), 1);
        // All output vertices satisfy z + w >= 0.
        for tri in &t {
            for p in tri {
                assert!(p.z + p.w >= -1e-5);
            }
        }
    }

    #[test]
    fn two_vertices_inside_yield_two_triangles() {
        let t = clip_near(
            v(0.0, 0.0, 0.0, 1.0),
            v(1.0, 0.0, 0.0, 1.0),
            v(0.0, 1.0, -2.0, 1.0), // outside
        );
        assert_eq!(t.len(), 2);
        for tri in &t {
            for p in tri {
                assert!(p.z + p.w >= -1e-5);
            }
        }
    }

    #[test]
    fn clip_points_lie_on_plane() {
        let t = clip_near(
            v(0.0, 0.0, 1.0, 1.0),
            v(2.0, 0.0, -3.0, 1.0),
            v(-2.0, 0.0, -3.0, 1.0),
        );
        let mut on_plane = 0;
        for tri in &t {
            for p in tri {
                if (p.z + p.w).abs() < 1e-4 {
                    on_plane += 1;
                }
            }
        }
        assert!(on_plane >= 2, "expected intersection points on the near plane");
    }

    #[test]
    fn winding_preserved_for_two_triangle_case() {
        // Signed area in (x, y) after projection must keep its sign.
        let a = v(0.0, 0.0, 0.0, 1.0);
        let b = v(1.0, 0.0, 0.0, 1.0);
        let c = v(0.0, 1.0, -2.0, 1.0);
        let orig_sign = {
            let (pa, pb, pc) = (a.project(), b.project(), c.project());
            ((pb.x - pa.x) * (pc.y - pa.y) - (pb.y - pa.y) * (pc.x - pa.x)).signum()
        };
        for tri in clip_near(a, b, c) {
            let (pa, pb, pc) = (tri[0].project(), tri[1].project(), tri[2].project());
            let s = (pb.x - pa.x) * (pc.y - pa.y) - (pb.y - pa.y) * (pc.x - pa.x);
            if s.abs() > 1e-9 {
                assert_eq!(s.signum(), orig_sign);
            }
        }
    }
}
