//! Near-plane clipping in clip space.
//!
//! The geometry pipeline clips assembled triangles against the near plane
//! (`z + w >= 0` in OpenGL clip space) before the perspective divide;
//! triangles entirely behind the camera vanish, straddling ones are
//! re-tessellated into one or two triangles. Side planes are left to the
//! rasterizer's tile scissoring (guard-band clipping, as real mobile
//! GPUs do).

use rbcd_math::Vec4;

const EPS: f32 = 1e-7;

/// Clips the triangle `(a, b, c)` (clip-space positions) against the
/// near plane `z + w >= 0`.
///
/// Returns 0, 1, or 2 triangles. Winding (and therefore facing) is
/// preserved.
pub fn clip_near(a: Vec4, b: Vec4, c: Vec4) -> Vec<[Vec4; 3]> {
    let dist = |v: Vec4| v.z + v.w;
    let verts = [a, b, c];
    let d = [dist(a), dist(b), dist(c)];

    let inside: Vec<usize> = (0..3).filter(|&i| d[i] >= -EPS).collect();
    match inside.len() {
        3 => vec![[a, b, c]],
        0 => Vec::new(),
        n => {
            // Sutherland–Hodgman against the single plane, preserving order.
            let mut poly: Vec<Vec4> = Vec::with_capacity(4);
            for i in 0..3 {
                let j = (i + 1) % 3;
                let (vi, vj) = (verts[i], verts[j]);
                let (di, dj) = (d[i], d[j]);
                if di >= -EPS {
                    poly.push(vi);
                }
                if (di >= -EPS) != (dj >= -EPS) {
                    let t = di / (di - dj);
                    poly.push(Vec4::new(
                        vi.x + (vj.x - vi.x) * t,
                        vi.y + (vj.y - vi.y) * t,
                        vi.z + (vj.z - vi.z) * t,
                        vi.w + (vj.w - vi.w) * t,
                    ));
                }
            }
            debug_assert_eq!(poly.len(), if n == 1 { 3 } else { 4 });
            match poly.len() {
                3 => vec![[poly[0], poly[1], poly[2]]],
                4 => vec![[poly[0], poly[1], poly[2]], [poly[0], poly[2], poly[3]]],
                _ => Vec::new(), // numerically degenerate sliver
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32, y: f32, z: f32, w: f32) -> Vec4 {
        Vec4::new(x, y, z, w)
    }

    #[test]
    fn fully_inside_passes_through() {
        let t = clip_near(v(0.0, 0.0, 0.0, 1.0), v(1.0, 0.0, 0.0, 1.0), v(0.0, 1.0, 0.0, 1.0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fully_behind_vanishes() {
        let t = clip_near(
            v(0.0, 0.0, -2.0, 1.0),
            v(1.0, 0.0, -2.0, 1.0),
            v(0.0, 1.0, -2.0, 1.0),
        );
        assert!(t.is_empty());
    }

    #[test]
    fn one_vertex_inside_yields_one_triangle() {
        let t = clip_near(
            v(0.0, 0.0, 0.0, 1.0),   // inside (d = 1)
            v(1.0, 0.0, -2.0, 1.0),  // outside (d = -1)
            v(-1.0, 0.0, -2.0, 1.0), // outside
        );
        assert_eq!(t.len(), 1);
        // All output vertices satisfy z + w >= 0.
        for tri in &t {
            for p in tri {
                assert!(p.z + p.w >= -1e-5);
            }
        }
    }

    #[test]
    fn two_vertices_inside_yield_two_triangles() {
        let t = clip_near(
            v(0.0, 0.0, 0.0, 1.0),
            v(1.0, 0.0, 0.0, 1.0),
            v(0.0, 1.0, -2.0, 1.0), // outside
        );
        assert_eq!(t.len(), 2);
        for tri in &t {
            for p in tri {
                assert!(p.z + p.w >= -1e-5);
            }
        }
    }

    #[test]
    fn clip_points_lie_on_plane() {
        let t = clip_near(
            v(0.0, 0.0, 1.0, 1.0),
            v(2.0, 0.0, -3.0, 1.0),
            v(-2.0, 0.0, -3.0, 1.0),
        );
        let mut on_plane = 0;
        for tri in &t {
            for p in tri {
                if (p.z + p.w).abs() < 1e-4 {
                    on_plane += 1;
                }
            }
        }
        assert!(on_plane >= 2, "expected intersection points on the near plane");
    }

    #[test]
    fn exactly_on_plane_counts_as_inside() {
        // All three vertices with d = z + w == 0 exactly: the triangle
        // lies in the near plane and must survive unchanged, not be
        // culled or re-tessellated.
        let t = clip_near(
            v(0.0, 0.0, -1.0, 1.0),
            v(1.0, 0.0, -1.0, 1.0),
            v(0.0, 1.0, -1.0, 1.0),
        );
        assert_eq!(t.len(), 1);

        // One vertex exactly on the plane, two strictly inside: also no
        // re-tessellation, and the on-plane vertex passes through intact.
        let t = clip_near(
            v(0.5, 0.5, -1.0, 1.0),
            v(1.0, 0.0, 0.0, 1.0),
            v(0.0, 1.0, 0.0, 1.0),
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t[0][0], v(0.5, 0.5, -1.0, 1.0));
    }

    #[test]
    fn on_plane_vertex_with_rest_behind_yields_nothing_usable() {
        // One vertex on the plane, two behind: inside count is 1 but the
        // "crossing" edges intersect the plane at the on-plane vertex
        // itself, producing a zero-area sliver. Whatever comes back must
        // satisfy the plane inequality; no panic, no inside-out output.
        let t = clip_near(
            v(0.0, 0.0, -1.0, 1.0),  // d = 0
            v(1.0, 0.0, -2.0, 1.0),  // d = -1
            v(-1.0, 0.0, -2.0, 1.0), // d = -1
        );
        for tri in &t {
            for p in tri {
                assert!(p.z + p.w >= -1e-5);
            }
        }
    }

    #[test]
    fn w_near_zero_projective_degeneracy_is_clipped_finitely() {
        // w ≈ 0 puts the vertex near the projective horizon where the
        // perspective divide explodes. The clipper works in clip space
        // (pre-divide), so it must still produce finite vertices on the
        // correct side of the plane.
        let t = clip_near(
            v(0.0, 0.0, 0.5, 1.0),    // inside (d = 1.5)
            v(1.0, 0.0, -1e-8, 1e-8), // d ≈ 0: on the horizon AND the plane
            v(0.0, 1.0, -2.0, 1.0),   // outside (d = -1)
        );
        for tri in &t {
            for p in tri {
                assert!(
                    p.x.is_finite() && p.y.is_finite() && p.z.is_finite() && p.w.is_finite(),
                    "clip output must be finite, got {p:?}"
                );
                assert!(p.z + p.w >= -1e-5);
            }
        }

        // Negative w (behind the projection center) with z + w < 0 is
        // outside and must be cut away entirely.
        let t = clip_near(
            v(0.0, 0.0, 1.0, -1e-6),
            v(1.0, 0.0, 1.0, -1e-6),
            v(0.0, 1.0, 1.0, -1e-6),
        );
        // d = 1 - 1e-6 > 0 for all three: inside despite negative w. The
        // rasterizer later rejects these via its own w > 0 guard; the
        // clipper's contract is only the half-space test.
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn interpolated_vertices_never_nan_when_both_distances_tiny() {
        // di and dj both within EPS of zero on a crossing edge would make
        // t = di / (di - dj) ill-conditioned; the >= -EPS classification
        // must prevent a 0/0 NaN from ever reaching the output.
        let t = clip_near(
            v(0.0, 0.0, -1.0 + 1e-8, 1.0), // d = 1e-8, inside
            v(1.0, 0.0, -1.0 - 1e-8, 1.0), // d = -1e-8, inside by EPS slack
            v(0.0, 1.0, 1.0, 1.0),         // d = 2, inside
        );
        assert_eq!(t.len(), 1, "near-plane-grazing triangle must not be re-tessellated");
        for tri in &t {
            for p in tri {
                assert!(!p.x.is_nan() && !p.y.is_nan() && !p.z.is_nan() && !p.w.is_nan());
            }
        }
    }

    #[test]
    fn winding_preserved_for_two_triangle_case() {
        // Signed area in (x, y) after projection must keep its sign.
        let a = v(0.0, 0.0, 0.0, 1.0);
        let b = v(1.0, 0.0, 0.0, 1.0);
        let c = v(0.0, 1.0, -2.0, 1.0);
        let orig_sign = {
            let (pa, pb, pc) = (a.project(), b.project(), c.project());
            ((pb.x - pa.x) * (pc.y - pa.y) - (pb.y - pa.y) * (pc.x - pa.x)).signum()
        };
        for tri in clip_near(a, b, c) {
            let (pa, pb, pc) = (tri[0].project(), tri[1].project(), tri[2].project());
            let s = (pb.x - pa.x) * (pc.y - pa.y) - (pb.y - pa.y) * (pc.x - pa.x);
            if s.abs() > 1e-9 {
                assert_eq!(s.signum(), orig_sign);
            }
        }
    }
}
