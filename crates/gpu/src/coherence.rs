//! Temporal tile coherence: signature-based redundant-tile elimination.
//!
//! In animated scenes most 16×16 tiles receive an identical set of
//! covered triangles frame after frame (static geometry, resting
//! objects, a still camera). Following the authors' follow-up work on
//! *Rendering Elimination*, the simulator computes a cheap deterministic
//! signature per tile over that tile's binned polygon list; when it
//! matches the previous frame's signature, rasterization, ZEB build and
//! the Z-overlap scan are skipped entirely and the cached per-tile
//! result is replayed from the [`TileResultCache`], while the cycle
//! model charges only the signature-check cost.
//!
//! Correctness contract: the signature folds *everything* that feeds a
//! tile's result — the per-draw content hash (mesh vertices, indices,
//! model matrix, object id, cull mode, shader cost), the screen-space
//! triangle produced by the geometry pipeline, its facing and
//! tagged-to-be-culled bit, plus a frame seed covering the pipeline
//! mode, the config knobs the raster path reads, and the collision
//! backend's own configuration. A hash is computed over raw `f32` bit
//! patterns, so any numeric change — including one injected by the
//! fault harness — changes the signature and invalidates the tile.
//! Quarantined draws never reach binning and therefore never reach a
//! signature. Signatures are computed on the main thread before the
//! parallel compute phase, so the reuse decision is thread-count
//! invariant by construction (like the deterministic merge order).

use crate::command::{CullMode, DrawCommand, Facing, FrameTrace};
use crate::config::GpuConfig;
use crate::sim::{BinnedPrim, PipelineMode, TileRasterOut};
use std::any::Any;

/// One splitmix64 avalanche step folding `v` into `h`. Deterministic,
/// dependency-free, and good enough bit diffusion that single-bit input
/// changes flip about half the output bits.
#[inline]
pub(crate) fn mix(h: u64, v: u64) -> u64 {
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn mix_f32(h: u64, v: f32) -> u64 {
    mix(h, v.to_bits() as u64)
}

/// Content hash of one draw command, computed once per frame: mesh
/// vertex positions and indices, the model matrix, the collidable id,
/// the cull mode, and the shader cost. Everything is hashed by bit
/// pattern — a NaN injected into a vertex hashes differently from the
/// clean value, so fault-touched draws invalidate their tiles.
pub(crate) fn hash_draw(draw: &DrawCommand) -> u64 {
    let mut h = 0x005E_ED0F_C011_1DE0_u64;
    for c in 0..4 {
        let col = draw.model.col(c);
        h = mix_f32(h, col.x);
        h = mix_f32(h, col.y);
        h = mix_f32(h, col.z);
        h = mix_f32(h, col.w);
    }
    for p in draw.mesh.positions() {
        h = mix(h, (p.x.to_bits() as u64) << 32 | p.y.to_bits() as u64);
        h = mix(h, p.z.to_bits() as u64);
    }
    for &[a, b, c] in draw.mesh.indices() {
        h = mix(h, (a as u64) << 42 | (b as u64) << 21 | c as u64);
    }
    h = mix(h, match draw.collidable {
        Some(id) => 1 << 16 | id.get() as u64,
        None => 0,
    });
    h = mix(h, match draw.cull {
        CullMode::None => 0,
        CullMode::Back => 1,
        CullMode::Front => 2,
    });
    h = mix(h, (draw.shader.vertex_cycles as u64) << 32 | draw.shader.fragment_cycles as u64);
    h
}

/// Hashes every draw of `trace` into `out` (indexed by draw position).
/// Runs once per frame on the main thread; quarantined draws still get
/// a hash (harmless — they are never binned, so no tile folds it).
pub(crate) fn hash_draws(trace: &FrameTrace, out: &mut Vec<u64>) {
    out.clear();
    out.extend(trace.draws.iter().map(hash_draw));
}

/// Frame-level seed: anything outside the polygon lists that the raster
/// path or the collision backend reads. Folded into every tile
/// signature, so changing a knob (or the backend's configuration, via
/// `backend_key`) invalidates the whole cache naturally.
pub(crate) fn frame_seed(cfg: &GpuConfig, mode: PipelineMode, backend_key: u64) -> u64 {
    let mut h = 0xC0_11_1D_E5_16u64;
    h = mix(h, match mode {
        PipelineMode::Baseline => 0,
        PipelineMode::Rbcd => 1,
        PipelineMode::CollisionOnly => 2,
    });
    h = mix(h, (cfg.tile_size as u64) << 32 | cfg.raster_frags_per_cycle as u64);
    h = mix(h, (cfg.fragment_processors as u64) << 32 | cfg.raster_setup_cycles);
    h = mix(h, cfg.tile_overhead_cycles);
    h = mix(h, (cfg.viewport.width as u64) << 32 | cfg.viewport.height as u64);
    h = mix(h, match cfg.hot_path {
        crate::config::HotPathMode::Reference => 0,
        crate::config::HotPathMode::Mask => 1,
    });
    mix(h, backend_key)
}

/// Signature of one tile's binned polygon list: for each primitive in
/// emission order, the owning draw's content hash, the screen-space
/// triangle's nine coordinate bit patterns, the facing, and the
/// tagged-to-be-culled bit. The primitive's global record id is
/// deliberately *excluded*: record ids shift when earlier draws change,
/// but the tile-cache replay always runs against the current frame's
/// records, so they never feed the cached result.
pub(crate) fn tile_signature(seed: u64, prims: &[BinnedPrim], draw_hashes: &[u64]) -> u64 {
    let mut h = mix(seed, prims.len() as u64);
    for prim in prims {
        h = mix(h, draw_hashes[prim.draw as usize]);
        for v in prim.tri.v {
            h = mix(h, (v.x.to_bits() as u64) << 32 | v.y.to_bits() as u64);
            h = mix_f32(h, v.z);
        }
        let flags = match prim.facing {
            Facing::Front => 0u64,
            Facing::Back => 1,
        } | (prim.tagged_cull as u64) << 1;
        h = mix(h, flags);
    }
    h
}

/// Cycles the signature check costs for a tile with `prims` binned
/// primitives: a small fixed compare/lookup cost plus the hash unit
/// digesting the polygon list at four primitives per cycle. This is the
/// *only* cost a reused tile pays on the raster timeline.
pub(crate) fn signature_check_cycles(prims: u64) -> u64 {
    4 + prims.div_ceil(4)
}

/// One cached tile outcome: the signature it is valid for, the raster
/// counters, and the collision backend's per-tile capsule (type-erased
/// so the cache works for any [`crate::ParallelCollision`] backend).
pub(crate) struct TileCacheEntry {
    pub(crate) sig: u64,
    pub(crate) out: TileRasterOut,
    pub(crate) capsule: Box<dyn Any + Send>,
}

/// Per-tile result cache: previous-frame signatures plus the cached
/// results they vouch for. Owned by the simulator so it survives across
/// frames alongside the cache models.
#[derive(Default)]
pub(crate) struct TileResultCache {
    entries: Vec<Option<TileCacheEntry>>,
}

impl std::fmt::Debug for TileResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let live = self.entries.iter().filter(|e| e.is_some()).count();
        write!(f, "TileResultCache {{ tiles: {}, live: {live} }}", self.entries.len())
    }
}

impl TileResultCache {
    /// Ensures capacity for `n_tiles`, clearing everything on a grid
    /// change (a resized viewport invalidates every cached tile).
    pub(crate) fn ensure_tiles(&mut self, n_tiles: usize) {
        if self.entries.len() != n_tiles {
            self.entries.clear();
            self.entries.resize_with(n_tiles, || None);
        }
    }

    /// Drops every cached entry (used when reuse is switched off so a
    /// later re-enable cannot replay stale results).
    pub(crate) fn clear(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
    }

    /// Whether tile `ti` holds a result for `sig` whose capsule is of
    /// type `T` (the current backend's per-tile output). The type check
    /// guards against replaying a capsule cached by a different backend.
    pub(crate) fn matches<T: 'static>(&self, ti: usize, sig: u64) -> bool {
        matches!(
            self.entries.get(ti),
            Some(Some(e)) if e.sig == sig && e.capsule.is::<T>()
        )
    }

    /// The cached entry for tile `ti`, if any.
    pub(crate) fn get(&self, ti: usize) -> Option<&TileCacheEntry> {
        self.entries.get(ti).and_then(|e| e.as_ref())
    }

    /// Stores a freshly computed result for tile `ti`.
    pub(crate) fn store(&mut self, ti: usize, sig: u64, out: TileRasterOut, capsule: Box<dyn Any + Send>) {
        self.entries[ti] = Some(TileCacheEntry { sig, out, capsule });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{ObjectId, ShaderCost};
    use rbcd_geometry::shapes;
    use rbcd_math::{Mat4, Vec3};

    fn draw() -> DrawCommand {
        DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(3))
            .with_model(Mat4::translation(Vec3::new(0.5, 0.0, 0.0)))
    }

    #[test]
    fn draw_hash_is_deterministic_and_content_sensitive() {
        let d = draw();
        assert_eq!(hash_draw(&d), hash_draw(&d.clone()));
        let moved = d.clone().with_model(Mat4::translation(Vec3::new(0.5, 1e-6, 0.0)));
        assert_ne!(hash_draw(&d), hash_draw(&moved));
        let other_id = DrawCommand { collidable: Some(ObjectId::new(4)), ..d.clone() };
        assert_ne!(hash_draw(&d), hash_draw(&other_id));
        let other_shader =
            d.clone().with_shader(ShaderCost { vertex_cycles: 8, fragment_cycles: 15 });
        assert_ne!(hash_draw(&d), hash_draw(&other_shader));
        let other_mesh = DrawCommand { mesh: shapes::cube(1.0 + 1e-6).into(), ..d.clone() };
        assert_ne!(hash_draw(&d), hash_draw(&other_mesh));
    }

    #[test]
    fn hash_sees_bit_patterns_not_float_equality() {
        // The hash folds raw f32 bit patterns, so values that compare
        // equal numerically (+0.0 == -0.0) still produce distinct
        // signatures — the conservative direction for invalidation.
        let mesh = |x: f32| {
            rbcd_geometry::Mesh::new(
                vec![Vec3::new(x, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)],
                vec![[0, 1, 2]],
            )
            .expect("finite single-triangle mesh")
        };
        let pos = DrawCommand::scenery(mesh(0.0));
        let neg = DrawCommand::scenery(mesh(-0.0));
        assert_ne!(hash_draw(&pos), hash_draw(&neg));
    }

    #[test]
    fn frame_seed_tracks_mode_and_config() {
        let cfg = GpuConfig::default();
        let a = frame_seed(&cfg, PipelineMode::Rbcd, 7);
        assert_eq!(a, frame_seed(&cfg, PipelineMode::Rbcd, 7));
        assert_ne!(a, frame_seed(&cfg, PipelineMode::Baseline, 7));
        assert_ne!(a, frame_seed(&cfg, PipelineMode::Rbcd, 8));
        let wider = GpuConfig {
            viewport: rbcd_math::Viewport::new(1024, 480),
            ..GpuConfig::default()
        };
        assert_ne!(a, frame_seed(&wider, PipelineMode::Rbcd, 7));
        let reference = GpuConfig {
            hot_path: crate::config::HotPathMode::Reference,
            ..GpuConfig::default()
        };
        assert_ne!(a, frame_seed(&reference, PipelineMode::Rbcd, 7));
    }

    #[test]
    fn tile_signature_folds_triangles_and_flags() {
        use crate::raster::ScreenTriangle;
        let tri = ScreenTriangle::new(
            Vec3::new(1.0, 1.0, 0.5),
            Vec3::new(9.0, 1.0, 0.5),
            Vec3::new(1.0, 9.0, 0.5),
        );
        let facing = tri.facing().unwrap();
        let prim = BinnedPrim { tri, facing, draw: 0, record: 0, tagged_cull: false };
        let hashes = vec![0xABCD];
        let s = tile_signature(1, &[prim], &hashes);
        assert_eq!(s, tile_signature(1, &[prim], &hashes));
        // Record ids are excluded by design: they shift when earlier
        // draws change, but never feed the cached result.
        let renumbered = BinnedPrim { record: 99, ..prim };
        assert_eq!(s, tile_signature(1, &[renumbered], &hashes));
        let tagged = BinnedPrim { tagged_cull: true, ..prim };
        assert_ne!(s, tile_signature(1, &[tagged], &hashes));
        let other_draw_content = vec![0xABCE];
        assert_ne!(s, tile_signature(1, &[prim], &other_draw_content));
        assert_ne!(s, tile_signature(2, &[prim], &hashes));
        let mut nudged = prim;
        nudged.tri.v[0].z += 1e-7;
        assert_ne!(s, tile_signature(1, &[nudged], &hashes));
    }

    #[test]
    fn check_cost_scales_with_list_length() {
        assert_eq!(signature_check_cycles(0), 4);
        assert_eq!(signature_check_cycles(1), 5);
        assert_eq!(signature_check_cycles(8), 6);
        assert!(signature_check_cycles(100) < 100);
    }

    #[test]
    fn cache_type_guard_rejects_foreign_capsules() {
        let mut cache = TileResultCache::default();
        cache.ensure_tiles(4);
        cache.store(2, 42, TileRasterOut::default(), Box::new(7u32));
        assert!(cache.matches::<u32>(2, 42));
        assert!(!cache.matches::<u64>(2, 42), "capsule type must match the backend");
        assert!(!cache.matches::<u32>(2, 43), "signature mismatch");
        assert!(!cache.matches::<u32>(1, 42), "empty slot");
        cache.ensure_tiles(8);
        assert!(!cache.matches::<u32>(2, 42), "grid change clears the cache");
    }
}
