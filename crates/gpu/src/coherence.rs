//! Temporal tile coherence: signature-based redundant-tile elimination.
//!
//! In animated scenes most 16×16 tiles receive an identical set of
//! covered triangles frame after frame (static geometry, resting
//! objects, a still camera). Following the authors' follow-up work on
//! *Rendering Elimination*, the simulator computes a cheap deterministic
//! signature per tile over that tile's binned polygon list; when it
//! matches the previous frame's signature, rasterization, ZEB build and
//! the Z-overlap scan are skipped entirely and the cached per-tile
//! result is replayed from the [`TileResultCache`], while the cycle
//! model charges only the signature-check cost.
//!
//! Correctness contract: the signature folds *everything* that feeds a
//! tile's result — the per-draw content hash (mesh vertices, indices,
//! model matrix, object id, cull mode, shader cost), the screen-space
//! triangle produced by the geometry pipeline, its facing and
//! tagged-to-be-culled bit, plus a frame seed covering the pipeline
//! mode, the config knobs the raster path reads, and the collision
//! backend's own configuration. A hash is computed over raw `f32` bit
//! patterns, so any numeric change — including one injected by the
//! fault harness — changes the signature and invalidates the tile.
//! Quarantined draws never reach binning and therefore never reach a
//! signature. Signatures are computed on the main thread before the
//! parallel compute phase, so the reuse decision is thread-count
//! invariant by construction (like the deterministic merge order).

use crate::command::{CullMode, DrawCommand, Facing, FrameTrace};
use crate::config::GpuConfig;
use crate::sim::{BinnedPrim, PipelineMode, TileRasterOut};
use rbcd_geometry::Mesh;
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Weak};

/// One splitmix64 avalanche step folding `v` into `h`. Deterministic,
/// dependency-free, and good enough bit diffusion that single-bit input
/// changes flip about half the output bits.
#[inline]
pub(crate) fn mix(h: u64, v: u64) -> u64 {
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn mix_f32(h: u64, v: f32) -> u64 {
    mix(h, v.to_bits() as u64)
}

/// Content hash of one mesh: every vertex position and every index
/// triple, by raw bit pattern. This is the expensive (O(vertices))
/// part of a draw hash, and the part worth memoizing per [`Arc<Mesh>`]
/// — a `Mesh` is immutable after construction, so one content hash is
/// valid for the lifetime of its allocation.
pub(crate) fn hash_mesh(mesh: &Mesh) -> u64 {
    let mut h = 0x00AE_5471_3E5A_5EED_u64;
    for p in mesh.positions() {
        h = mix(h, (p.x.to_bits() as u64) << 32 | p.y.to_bits() as u64);
        h = mix(h, p.z.to_bits() as u64);
    }
    for &[a, b, c] in mesh.indices() {
        h = mix(h, (a as u64) << 42 | (b as u64) << 21 | c as u64);
    }
    h
}

/// Folds the per-draw fields around an already-computed mesh hash: the
/// model matrix, the mesh content, the collidable id, the cull mode,
/// and the shader cost, all by bit pattern.
fn fold_draw(draw: &DrawCommand, mesh_hash: u64) -> u64 {
    let mut h = 0x005E_ED0F_C011_1DE0_u64;
    for c in 0..4 {
        let col = draw.model.col(c);
        h = mix_f32(h, col.x);
        h = mix_f32(h, col.y);
        h = mix_f32(h, col.z);
        h = mix_f32(h, col.w);
    }
    h = mix(h, mesh_hash);
    h = mix(h, match draw.collidable {
        Some(id) => 1 << 16 | id.get() as u64,
        None => 0,
    });
    h = mix(h, match draw.cull {
        CullMode::None => 0,
        CullMode::Back => 1,
        CullMode::Front => 2,
    });
    h = mix(h, (draw.shader.vertex_cycles as u64) << 32 | draw.shader.fragment_cycles as u64);
    h
}

/// Content hash of one draw command: mesh vertex positions and indices,
/// the model matrix, the collidable id, the cull mode, and the shader
/// cost. Everything is hashed by bit pattern — a NaN injected into a
/// vertex hashes differently from the clean value, so fault-touched
/// draws invalidate their tiles.
#[cfg(test)]
pub(crate) fn hash_draw(draw: &DrawCommand) -> u64 {
    fold_draw(draw, hash_mesh(&draw.mesh))
}

/// Hashes every draw of `trace` into `out` (indexed by draw position).
/// Runs once per frame on the main thread; quarantined draws still get
/// a hash (harmless — they are never binned, so no tile folds it).
#[cfg(test)]
pub(crate) fn hash_draws(trace: &FrameTrace, out: &mut Vec<u64>) {
    out.clear();
    out.extend(trace.draws.iter().map(hash_draw));
}

/// [`hash_draws`] with mesh-hash memoization: identical output, but the
/// O(vertices) mesh fold is looked up in `memo` per `Arc<Mesh>`, so
/// static meshes shared across frames are hashed once, not per frame.
pub(crate) fn hash_draws_memo(trace: &FrameTrace, out: &mut Vec<u64>, memo: &mut MeshHashMemo) {
    out.clear();
    out.extend(trace.draws.iter().map(|d| fold_draw(d, memo.hash_for(&d.mesh))));
}

/// Pointer-keyed memo of mesh content hashes. A `Mesh` is immutable
/// after construction, so a hash computed for one `Arc<Mesh>`
/// allocation stays valid as long as that allocation is alive; each
/// entry keeps a [`Weak`] guard and re-checks identity on lookup, so an
/// allocator reusing a freed address can never serve a stale hash.
#[derive(Default)]
pub(crate) struct MeshHashMemo {
    by_ptr: HashMap<usize, (Weak<Mesh>, u64)>,
    /// Table size that triggers the next dead-entry sweep. Fault plans
    /// mint a fresh `Arc<Mesh>` per poisoned draw per frame, so without
    /// sweeping the table would grow without bound on long runs.
    sweep_at: usize,
}

impl std::fmt::Debug for MeshHashMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MeshHashMemo {{ entries: {} }}", self.by_ptr.len())
    }
}

impl MeshHashMemo {
    const MIN_SWEEP: usize = 64;

    /// The content hash of `mesh`, memoized by allocation. Bit-equal to
    /// [`hash_mesh`] in every case: a hit is only served when the cached
    /// weak pointer upgrades to the *same* allocation (immutable, so
    /// the cached hash is its content hash); anything else recomputes.
    pub(crate) fn hash_for(&mut self, mesh: &Arc<Mesh>) -> u64 {
        let key = Arc::as_ptr(mesh) as usize;
        if let Some((weak, h)) = self.by_ptr.get(&key) {
            if let Some(live) = weak.upgrade() {
                if Arc::ptr_eq(&live, mesh) {
                    return *h;
                }
            }
        }
        let h = hash_mesh(mesh);
        self.by_ptr.insert(key, (Arc::downgrade(mesh), h));
        if self.by_ptr.len() >= self.sweep_at.max(Self::MIN_SWEEP) {
            self.by_ptr.retain(|_, (weak, _)| weak.strong_count() > 0);
            self.sweep_at = (self.by_ptr.len() * 2).max(Self::MIN_SWEEP);
        }
        h
    }
}

/// Frame-level seed: anything outside the polygon lists that the raster
/// path or the collision backend reads. Folded into every tile
/// signature, so changing a knob (or the backend's configuration, via
/// `backend_key`) invalidates the whole cache naturally. `broadphase`
/// is the *effective* pruning state for the frame: a cached tile
/// recorded under pruning must never replay into an unpruned frame
/// (its image counters differ), and vice versa.
pub(crate) fn frame_seed(
    cfg: &GpuConfig,
    mode: PipelineMode,
    backend_key: u64,
    broadphase: bool,
) -> u64 {
    let mut h = 0xC0_11_1D_E5_16u64;
    h = mix(h, broadphase as u64);
    h = mix(h, match mode {
        PipelineMode::Baseline => 0,
        PipelineMode::Rbcd => 1,
        PipelineMode::CollisionOnly => 2,
    });
    h = mix(h, (cfg.tile_size as u64) << 32 | cfg.raster_frags_per_cycle as u64);
    h = mix(h, (cfg.fragment_processors as u64) << 32 | cfg.raster_setup_cycles);
    h = mix(h, cfg.tile_overhead_cycles);
    h = mix(h, (cfg.viewport.width as u64) << 32 | cfg.viewport.height as u64);
    h = mix(h, match cfg.hot_path {
        crate::config::HotPathMode::Reference => 0,
        crate::config::HotPathMode::Mask => 1,
    });
    mix(h, backend_key)
}

/// Signature of one tile's binned polygon list: for each primitive in
/// emission order, the owning draw's content hash, the screen-space
/// triangle's nine coordinate bit patterns, the facing, and the
/// tagged-to-be-culled bit. The primitive's global record id is
/// deliberately *excluded*: record ids shift when earlier draws change,
/// but the tile-cache replay always runs against the current frame's
/// records, so they never feed the cached result.
pub(crate) fn tile_signature(seed: u64, prims: &[BinnedPrim], draw_hashes: &[u64]) -> u64 {
    let mut h = mix(seed, prims.len() as u64);
    for prim in prims {
        h = mix(h, draw_hashes[prim.draw as usize]);
        for v in prim.tri.v {
            h = mix(h, (v.x.to_bits() as u64) << 32 | v.y.to_bits() as u64);
            h = mix_f32(h, v.z);
        }
        let flags = match prim.facing {
            Facing::Front => 0u64,
            Facing::Back => 1,
        } | (prim.tagged_cull as u64) << 1;
        h = mix(h, flags);
    }
    h
}

/// Cycles the signature check costs for a tile with `prims` binned
/// primitives: a small fixed compare/lookup cost plus the hash unit
/// digesting the polygon list at four primitives per cycle. This is the
/// *only* cost a reused tile pays on the raster timeline.
pub(crate) fn signature_check_cycles(prims: u64) -> u64 {
    4 + prims.div_ceil(4)
}

/// One cached tile outcome: the signature it is valid for, the raster
/// counters, and the collision backend's per-tile capsule (type-erased
/// so the cache works for any [`crate::ParallelCollision`] backend).
pub(crate) struct TileCacheEntry {
    pub(crate) sig: u64,
    pub(crate) out: TileRasterOut,
    pub(crate) capsule: Box<dyn Any + Send>,
}

/// Per-tile result cache: previous-frame signatures plus the cached
/// results they vouch for. Owned by the simulator so it survives across
/// frames alongside the cache models.
#[derive(Default)]
pub(crate) struct TileResultCache {
    entries: Vec<Option<TileCacheEntry>>,
}

impl std::fmt::Debug for TileResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let live = self.entries.iter().filter(|e| e.is_some()).count();
        write!(f, "TileResultCache {{ tiles: {}, live: {live} }}", self.entries.len())
    }
}

impl TileResultCache {
    /// Ensures capacity for `n_tiles`, clearing everything on a grid
    /// change (a resized viewport invalidates every cached tile).
    pub(crate) fn ensure_tiles(&mut self, n_tiles: usize) {
        if self.entries.len() != n_tiles {
            self.entries.clear();
            self.entries.resize_with(n_tiles, || None);
        }
    }

    /// Drops every cached entry (used when reuse is switched off so a
    /// later re-enable cannot replay stale results).
    pub(crate) fn clear(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
    }

    /// Whether tile `ti` holds a result for `sig` whose capsule is of
    /// type `T` (the current backend's per-tile output). The type check
    /// guards against replaying a capsule cached by a different backend.
    pub(crate) fn matches<T: 'static>(&self, ti: usize, sig: u64) -> bool {
        matches!(
            self.entries.get(ti),
            Some(Some(e)) if e.sig == sig && e.capsule.is::<T>()
        )
    }

    /// The cached entry for tile `ti`, if any.
    pub(crate) fn get(&self, ti: usize) -> Option<&TileCacheEntry> {
        self.entries.get(ti).and_then(|e| e.as_ref())
    }

    /// Stores a freshly computed result for tile `ti`.
    pub(crate) fn store(&mut self, ti: usize, sig: u64, out: TileRasterOut, capsule: Box<dyn Any + Send>) {
        self.entries[ti] = Some(TileCacheEntry { sig, out, capsule });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{ObjectId, ShaderCost};
    use rbcd_geometry::shapes;
    use rbcd_math::{Mat4, Vec3};

    fn draw() -> DrawCommand {
        DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(3))
            .with_model(Mat4::translation(Vec3::new(0.5, 0.0, 0.0)))
    }

    #[test]
    fn draw_hash_is_deterministic_and_content_sensitive() {
        let d = draw();
        assert_eq!(hash_draw(&d), hash_draw(&d.clone()));
        let moved = d.clone().with_model(Mat4::translation(Vec3::new(0.5, 1e-6, 0.0)));
        assert_ne!(hash_draw(&d), hash_draw(&moved));
        let other_id = DrawCommand { collidable: Some(ObjectId::new(4)), ..d.clone() };
        assert_ne!(hash_draw(&d), hash_draw(&other_id));
        let other_shader =
            d.clone().with_shader(ShaderCost { vertex_cycles: 8, fragment_cycles: 15 });
        assert_ne!(hash_draw(&d), hash_draw(&other_shader));
        let other_mesh = DrawCommand { mesh: shapes::cube(1.0 + 1e-6).into(), ..d.clone() };
        assert_ne!(hash_draw(&d), hash_draw(&other_mesh));
    }

    #[test]
    fn hash_sees_bit_patterns_not_float_equality() {
        // The hash folds raw f32 bit patterns, so values that compare
        // equal numerically (+0.0 == -0.0) still produce distinct
        // signatures — the conservative direction for invalidation.
        let mesh = |x: f32| {
            rbcd_geometry::Mesh::new(
                vec![Vec3::new(x, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)],
                vec![[0, 1, 2]],
            )
            .expect("finite single-triangle mesh")
        };
        let pos = DrawCommand::scenery(mesh(0.0));
        let neg = DrawCommand::scenery(mesh(-0.0));
        assert_ne!(hash_draw(&pos), hash_draw(&neg));
    }

    #[test]
    fn memoized_hashes_are_bit_equal_to_unmemoized() {
        use crate::command::Camera;
        let camera = Camera::perspective(Vec3::new(0.0, 1.0, 6.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let shared = Arc::new(shapes::cube(1.0));
        let draws = vec![
            DrawCommand { mesh: shared.clone(), ..draw() },
            DrawCommand::scenery(shapes::ground_quad(8.0, 8.0)),
            DrawCommand { mesh: shared.clone(), ..draw() }
                .with_model(Mat4::translation(Vec3::new(0.0, 2.0, 0.0))),
        ];
        let trace = FrameTrace::new(camera, draws);
        let mut plain = Vec::new();
        let mut memoized = Vec::new();
        let mut memo = MeshHashMemo::default();
        hash_draws(&trace, &mut plain);
        // Two passes: the second is served from the memo and must still
        // match the from-scratch hashes exactly.
        for _ in 0..2 {
            hash_draws_memo(&trace, &mut memoized, &mut memo);
            assert_eq!(plain, memoized);
        }
    }

    #[test]
    fn memo_rechecks_identity_on_pointer_reuse() {
        let mut memo = MeshHashMemo::default();
        let a = Arc::new(shapes::cube(1.0));
        let ha = memo.hash_for(&a);
        assert_eq!(ha, hash_mesh(&a));
        assert_eq!(memo.hash_for(&a), ha, "second lookup is a hit");
        // Drop the first mesh and mint others until the allocator hands
        // back the same address: the dead weak guard must force a
        // recompute, never serve the stale cube hash.
        let old_ptr = Arc::as_ptr(&a) as usize;
        drop(a);
        for i in 0..4096u32 {
            let b = Arc::new(shapes::icosphere(0.5 + i as f32 * 1e-4, 0));
            let hb = memo.hash_for(&b);
            assert_eq!(hb, hash_mesh(&b), "memo must never serve a stale hash");
            if Arc::as_ptr(&b) as usize == old_ptr {
                break;
            }
        }
    }

    #[test]
    fn memo_sweeps_dead_entries() {
        let mut memo = MeshHashMemo::default();
        for _ in 0..(MeshHashMemo::MIN_SWEEP * 4) {
            let m = Arc::new(shapes::cube(1.0));
            memo.hash_for(&m);
            // `m` drops here: every entry is dead by the next insert.
        }
        assert!(
            memo.by_ptr.len() <= MeshHashMemo::MIN_SWEEP,
            "dead entries must be swept, got {}",
            memo.by_ptr.len()
        );
    }

    #[test]
    fn frame_seed_tracks_mode_and_config() {
        let cfg = GpuConfig::default();
        let a = frame_seed(&cfg, PipelineMode::Rbcd, 7, false);
        assert_eq!(a, frame_seed(&cfg, PipelineMode::Rbcd, 7, false));
        assert_ne!(a, frame_seed(&cfg, PipelineMode::Baseline, 7, false));
        assert_ne!(a, frame_seed(&cfg, PipelineMode::Rbcd, 8, false));
        assert_ne!(
            a,
            frame_seed(&cfg, PipelineMode::Rbcd, 7, true),
            "a pruned frame's tiles must never replay into an unpruned one"
        );
        let wider = GpuConfig {
            viewport: rbcd_math::Viewport::new(1024, 480),
            ..GpuConfig::default()
        };
        assert_ne!(a, frame_seed(&wider, PipelineMode::Rbcd, 7, false));
        let reference = GpuConfig {
            hot_path: crate::config::HotPathMode::Reference,
            ..GpuConfig::default()
        };
        assert_ne!(a, frame_seed(&reference, PipelineMode::Rbcd, 7, false));
    }

    #[test]
    fn tile_signature_folds_triangles_and_flags() {
        use crate::raster::ScreenTriangle;
        let tri = ScreenTriangle::new(
            Vec3::new(1.0, 1.0, 0.5),
            Vec3::new(9.0, 1.0, 0.5),
            Vec3::new(1.0, 9.0, 0.5),
        );
        let facing = tri.facing().unwrap();
        let prim = BinnedPrim { tri, facing, draw: 0, record: 0, tagged_cull: false };
        let hashes = vec![0xABCD];
        let s = tile_signature(1, &[prim], &hashes);
        assert_eq!(s, tile_signature(1, &[prim], &hashes));
        // Record ids are excluded by design: they shift when earlier
        // draws change, but never feed the cached result.
        let renumbered = BinnedPrim { record: 99, ..prim };
        assert_eq!(s, tile_signature(1, &[renumbered], &hashes));
        let tagged = BinnedPrim { tagged_cull: true, ..prim };
        assert_ne!(s, tile_signature(1, &[tagged], &hashes));
        let other_draw_content = vec![0xABCE];
        assert_ne!(s, tile_signature(1, &[prim], &other_draw_content));
        assert_ne!(s, tile_signature(2, &[prim], &hashes));
        let mut nudged = prim;
        nudged.tri.v[0].z += 1e-7;
        assert_ne!(s, tile_signature(1, &[nudged], &hashes));
    }

    #[test]
    fn check_cost_scales_with_list_length() {
        assert_eq!(signature_check_cycles(0), 4);
        assert_eq!(signature_check_cycles(1), 5);
        assert_eq!(signature_check_cycles(8), 6);
        assert!(signature_check_cycles(100) < 100);
    }

    #[test]
    fn cache_type_guard_rejects_foreign_capsules() {
        let mut cache = TileResultCache::default();
        cache.ensure_tiles(4);
        cache.store(2, 42, TileRasterOut::default(), Box::new(7u32));
        assert!(cache.matches::<u32>(2, 42));
        assert!(!cache.matches::<u64>(2, 42), "capsule type must match the backend");
        assert!(!cache.matches::<u32>(2, 43), "signature mismatch");
        assert!(!cache.matches::<u32>(1, 42), "empty slot");
        cache.ensure_tiles(8);
        assert!(!cache.matches::<u32>(2, 42), "grid change clears the cache");
    }
}
