//! The attachment point for the RBCD unit (implemented in `rbcd-core`).
//!
//! Mirrors the paper's Figure 3: the Rasterizer forwards every
//! collisionable fragment to the unit, which stores it into the active
//! ZEB; when a tile finishes rasterizing, the unit's Z-overlap scan runs
//! while the Raster Pipeline moves on — if a free ZEB exists. The Tile
//! Scheduler otherwise stalls (§3.5), which is what
//! [`CollisionUnit::next_free`] models.

use crate::command::{Facing, ObjectId};

/// Tile coordinates in the tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileCoord {
    /// Tile column.
    pub x: u32,
    /// Tile row.
    pub y: u32,
}

/// A collisionable fragment as delivered by the rasterizer to the RBCD
/// unit: window position, depth, owning object, and face orientation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionFragment {
    /// Pixel x in window coordinates.
    pub x: u32,
    /// Pixel y in window coordinates.
    pub y: u32,
    /// Window depth in `[0, 1]`.
    pub z: f32,
    /// Owning collisionable object.
    pub object: ObjectId,
    /// Front (entry) or back (exit) face.
    pub facing: Facing,
}

/// Hardware attached to the rasterizer output for collision detection.
///
/// Timing protocol, all in GPU cycles:
///
/// 1. The Tile Scheduler calls [`next_free`](Self::next_free) before
///    dispatching a tile; if the returned cycle is in the future, the
///    Raster Pipeline stalls until then (single-ZEB behaviour, §3.5).
/// 2. [`begin_tile`](Self::begin_tile) claims a ZEB at the (possibly
///    stalled) start cycle.
/// 3. [`insert`](Self::insert) is called once per collisionable fragment
///    during rasterization.
/// 4. [`finish_tile`](Self::finish_tile) marks the end of rasterization;
///    the unit schedules its Z-overlap scan from that cycle and keeps
///    the ZEB busy until the scan completes.
pub trait CollisionUnit {
    /// Earliest cycle at which a ZEB becomes available for a new tile.
    fn next_free(&self) -> u64;

    /// Claims a ZEB for `tile`, starting at `cycle`.
    fn begin_tile(&mut self, tile: TileCoord, cycle: u64);

    /// Stores one collisionable fragment into the active ZEB.
    fn insert(&mut self, frag: CollisionFragment);

    /// Stores a batch of collisionable fragments, in arrival order.
    /// Semantically identical to calling [`insert`](Self::insert) once
    /// per fragment; implementors may override it to amortize the
    /// per-fragment dynamic dispatch of the hot rasterizer → unit edge.
    fn insert_batch(&mut self, frags: &[CollisionFragment]) {
        for &f in frags {
            self.insert(f);
        }
    }

    /// Rasterization for the active tile completed at `cycle`; runs the
    /// Z-overlap scan and releases the ZEB when it finishes.
    fn finish_tile(&mut self, cycle: u64);

    /// Cycle at which all pending work (including the last scan) is done.
    fn idle_at(&self) -> u64;
}

/// The baseline GPU: no collision hardware. All methods are free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullCollisionUnit;

impl CollisionUnit for NullCollisionUnit {
    fn next_free(&self) -> u64 {
        0
    }

    fn begin_tile(&mut self, _tile: TileCoord, _cycle: u64) {}

    fn insert(&mut self, _frag: CollisionFragment) {}

    fn insert_batch(&mut self, _frags: &[CollisionFragment]) {}

    fn finish_tile(&mut self, _cycle: u64) {}

    fn idle_at(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_unit_is_always_free() {
        let mut u = NullCollisionUnit;
        assert_eq!(u.next_free(), 0);
        u.begin_tile(TileCoord { x: 0, y: 0 }, 100);
        u.insert(CollisionFragment {
            x: 0,
            y: 0,
            z: 0.5,
            object: ObjectId::new(1),
            facing: Facing::Front,
        });
        u.finish_tile(200);
        assert_eq!(u.next_free(), 0);
        assert_eq!(u.idle_at(), 0);
    }
}
