//! Draw commands and frame traces — the GPU's input.
//!
//! The paper's §3.2 extends the command stream so that draws belonging to
//! collisionable objects carry an object identifier (proposed as an
//! `EXT_debug_marker`-style annotation). Here that is the
//! [`DrawCommand::collidable`] field: `Some(id)` marks the draw as
//! collisionable geometry to be forwarded to the RBCD unit.

use rbcd_geometry::Mesh;
use rbcd_math::{look_at, perspective, Mat4, Vec3};
use std::fmt;
use std::sync::Arc;

/// Identifier of a collisionable object, carried through the pipeline to
/// the RBCD unit.
///
/// The ZEB packs each element into 32 bits (Table 1): a quantized depth,
/// the front/back bit, and this id — hence the id budget is 13 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(u16);

impl ObjectId {
    /// Largest representable id (13 bits).
    pub const MAX: u16 = (1 << 13) - 1;

    /// Creates an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds [`ObjectId::MAX`]: the hardware element
    /// encoding has no room for it. Use [`ObjectId::try_new`] for ids
    /// from untrusted input.
    pub fn new(id: u16) -> Self {
        assert!(id <= Self::MAX, "ObjectId {id} exceeds the 13-bit hardware budget");
        Self(id)
    }

    /// Creates an id, or `None` if it exceeds the 13-bit budget.
    pub fn try_new(id: u16) -> Option<Self> {
        (id <= Self::MAX).then_some(Self(id))
    }

    /// Creates an id without the 13-bit range check — the escape hatch
    /// fault-injection harnesses use to forge out-of-range ids. The
    /// ingest validation ([`DrawCommand::validate`]) catches such ids
    /// before they reach the hardware element encoding.
    pub fn from_raw_unchecked(id: u16) -> Self {
        Self(id)
    }

    /// `true` when the id fits the 13-bit hardware budget.
    pub fn is_valid(self) -> bool {
        self.0 <= Self::MAX
    }

    /// Raw value.
    pub fn get(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<ObjectId> for u16 {
    fn from(id: ObjectId) -> u16 {
        id.0
    }
}

/// A draw command rejected at ingest validation — the typed errors the
/// pipeline reports (and quarantines on) instead of panicking deep in
/// the rasterizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneError {
    /// The collidable object id exceeds the 13-bit hardware budget.
    ObjectIdOutOfRange {
        /// The forged raw id.
        id: u16,
    },
    /// The model matrix contains NaN or infinity.
    NonFiniteModel,
    /// A mesh vertex position contains NaN or infinity.
    NonFiniteMesh,
}

impl fmt::Display for SceneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ObjectIdOutOfRange { id } => {
                write!(f, "object id {id} exceeds the 13-bit hardware budget")
            }
            Self::NonFiniteModel => write!(f, "model matrix has NaN/inf entries"),
            Self::NonFiniteMesh => write!(f, "mesh has NaN/inf vertex positions"),
        }
    }
}

impl std::error::Error for SceneError {}

/// Orientation of a rasterized face relative to the camera.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Facing {
    /// Counter-clockwise in window space: the surface faces the camera —
    /// an *entry* point of the object along the view ray.
    Front,
    /// Clockwise: the surface faces away — an *exit* point.
    Back,
}

impl Facing {
    /// The opposite orientation.
    pub fn flip(self) -> Self {
        match self {
            Self::Front => Self::Back,
            Self::Back => Self::Front,
        }
    }
}

/// Which faces the fixed-function Face Culling stage removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CullMode {
    /// Cull nothing.
    None,
    /// Cull back faces (the OpenGL default for opaque geometry).
    #[default]
    Back,
    /// Cull front faces.
    Front,
}

impl CullMode {
    /// `true` when a face with the given orientation is culled.
    pub fn culls(self, facing: Facing) -> bool {
        matches!(
            (self, facing),
            (Self::Back, Facing::Back) | (Self::Front, Facing::Front)
        )
    }
}

/// Per-draw programmable-stage cost, standing in for the shader programs
/// a real trace would carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShaderCost {
    /// Vertex processor cycles per vertex.
    pub vertex_cycles: u32,
    /// Fragment processor cycles per shaded fragment (includes the
    /// texture path).
    pub fragment_cycles: u32,
}

impl Default for ShaderCost {
    fn default() -> Self {
        // A multi-textured, lit mobile shader of the Mali-400 era
        // (commercial games of the period spend 10–20 fragment-processor
        // cycles per fragment).
        Self { vertex_cycles: 8, fragment_cycles: 14 }
    }
}

/// One draw command: a mesh instance with its transform and pipeline
/// state.
#[derive(Debug, Clone)]
pub struct DrawCommand {
    /// Geometry, shared so workloads can instance meshes cheaply.
    pub mesh: Arc<Mesh>,
    /// Model (object-to-world) transform.
    pub model: Mat4,
    /// `Some(id)` marks collisionable geometry (paper §3.2).
    pub collidable: Option<ObjectId>,
    /// Face-culling state for this draw.
    pub cull: CullMode,
    /// Programmable-stage cost.
    pub shader: ShaderCost,
}

impl DrawCommand {
    /// Non-collisionable scenery with default state.
    pub fn scenery(mesh: impl Into<Arc<Mesh>>) -> Self {
        Self {
            mesh: mesh.into(),
            model: Mat4::IDENTITY,
            collidable: None,
            cull: CullMode::default(),
            shader: ShaderCost::default(),
        }
    }

    /// Collisionable geometry tagged with `id`.
    pub fn collidable(mesh: impl Into<Arc<Mesh>>, id: ObjectId) -> Self {
        Self { collidable: Some(id), ..Self::scenery(mesh) }
    }

    /// Sets the model transform.
    #[must_use]
    pub fn with_model(mut self, model: Mat4) -> Self {
        self.model = model;
        self
    }

    /// Sets the cull mode.
    #[must_use]
    pub fn with_cull(mut self, cull: CullMode) -> Self {
        self.cull = cull;
        self
    }

    /// Sets the shader cost.
    #[must_use]
    pub fn with_shader(mut self, shader: ShaderCost) -> Self {
        self.shader = shader;
        self
    }

    /// Ingest validation: checks the draw for forged object ids and
    /// non-finite transforms or geometry. The simulator quarantines
    /// (skips and counts) draws that fail, instead of feeding garbage to
    /// the rasterizer.
    ///
    /// # Errors
    ///
    /// Returns the first [`SceneError`] found.
    pub fn validate(&self) -> Result<(), SceneError> {
        if let Some(id) = self.collidable {
            if !id.is_valid() {
                return Err(SceneError::ObjectIdOutOfRange { id: id.get() });
            }
        }
        if !(0..4).all(|c| self.model.col(c).is_finite()) {
            return Err(SceneError::NonFiniteModel);
        }
        if !self.mesh.positions_finite() {
            return Err(SceneError::NonFiniteMesh);
        }
        Ok(())
    }
}

/// View and projection state for a frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// World-to-eye transform.
    pub view: Mat4,
    /// Eye-to-clip transform.
    pub proj: Mat4,
}

impl Camera {
    /// Perspective camera looking from `eye` towards `target` with +Y up.
    ///
    /// # Panics
    ///
    /// Propagates the panics of [`perspective`] and [`look_at`] on
    /// invalid parameters.
    pub fn perspective(eye: Vec3, target: Vec3, fov_y: f32, near: f32, far: f32) -> Self {
        // Aspect is fixed at WVGA; the simulator rescales x by its actual
        // viewport, so only the vertical field of view matters here.
        Self {
            view: look_at(eye, target, Vec3::Y),
            proj: perspective(fov_y, 800.0 / 480.0, near, far),
        }
    }

    /// Combined view-projection matrix.
    pub fn view_proj(&self) -> Mat4 {
        self.proj * self.view
    }
}

/// Everything the GPU needs to render one frame.
#[derive(Debug, Clone)]
pub struct FrameTrace {
    /// Camera state.
    pub camera: Camera,
    /// Draw commands in submission order.
    pub draws: Vec<DrawCommand>,
}

impl FrameTrace {
    /// Creates a frame trace.
    pub fn new(camera: Camera, draws: Vec<DrawCommand>) -> Self {
        Self { camera, draws }
    }

    /// Total triangles across all draws.
    pub fn triangle_count(&self) -> usize {
        self.draws.iter().map(|d| d.mesh.triangle_count()).sum()
    }

    /// Total vertices across all draws.
    pub fn vertex_count(&self) -> usize {
        self.draws.iter().map(|d| d.mesh.vertex_count()).sum()
    }

    /// Draws carrying a collisionable object id.
    pub fn collidable_draws(&self) -> impl Iterator<Item = &DrawCommand> {
        self.draws.iter().filter(|d| d.collidable.is_some())
    }

    /// Runs [`DrawCommand::validate`] over every draw, returning the
    /// index and error of each rejected one. Empty for a clean trace.
    pub fn validate(&self) -> Vec<(usize, SceneError)> {
        self.draws
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.validate().err().map(|e| (i, e)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcd_geometry::shapes;

    #[test]
    fn object_id_bounds() {
        assert_eq!(ObjectId::new(0).get(), 0);
        assert_eq!(ObjectId::new(ObjectId::MAX).get(), 8191);
        assert_eq!(format!("{}", ObjectId::new(7)), "#7");
    }

    #[test]
    #[should_panic(expected = "13-bit")]
    fn object_id_overflow_panics() {
        let _ = ObjectId::new(ObjectId::MAX + 1);
    }

    #[test]
    fn cull_mode_semantics() {
        assert!(CullMode::Back.culls(Facing::Back));
        assert!(!CullMode::Back.culls(Facing::Front));
        assert!(CullMode::Front.culls(Facing::Front));
        assert!(!CullMode::Front.culls(Facing::Back));
        assert!(!CullMode::None.culls(Facing::Front));
        assert!(!CullMode::None.culls(Facing::Back));
    }

    #[test]
    fn facing_flip() {
        assert_eq!(Facing::Front.flip(), Facing::Back);
        assert_eq!(Facing::Back.flip(), Facing::Front);
    }

    #[test]
    fn draw_command_builders() {
        let mesh = shapes::cube(1.0);
        let d = DrawCommand::collidable(mesh.clone(), ObjectId::new(3))
            .with_model(Mat4::translation(Vec3::X))
            .with_cull(CullMode::None)
            .with_shader(ShaderCost { vertex_cycles: 4, fragment_cycles: 6 });
        assert_eq!(d.collidable, Some(ObjectId::new(3)));
        assert_eq!(d.cull, CullMode::None);
        assert_eq!(d.shader.fragment_cycles, 6);
        let s = DrawCommand::scenery(mesh);
        assert_eq!(s.collidable, None);
        assert_eq!(s.cull, CullMode::Back);
    }

    #[test]
    fn object_id_try_new_and_raw() {
        assert_eq!(ObjectId::try_new(5), Some(ObjectId::new(5)));
        assert_eq!(ObjectId::try_new(ObjectId::MAX + 1), None);
        let forged = ObjectId::from_raw_unchecked(ObjectId::MAX + 1);
        assert!(!forged.is_valid());
        assert!(ObjectId::new(ObjectId::MAX).is_valid());
    }

    #[test]
    fn validate_rejects_forged_ids_and_non_finite_input() {
        let mesh = shapes::cube(1.0);
        assert_eq!(DrawCommand::collidable(mesh.clone(), ObjectId::new(1)).validate(), Ok(()));
        let forged = DrawCommand::collidable(mesh.clone(), ObjectId::new(1));
        let forged = DrawCommand {
            collidable: Some(ObjectId::from_raw_unchecked(ObjectId::MAX + 7)),
            ..forged
        };
        assert_eq!(
            forged.validate(),
            Err(SceneError::ObjectIdOutOfRange { id: ObjectId::MAX + 7 })
        );
        let nan_model = DrawCommand::collidable(mesh.clone(), ObjectId::new(1))
            .with_model(Mat4::uniform_scale(f32::NAN));
        assert_eq!(nan_model.validate(), Err(SceneError::NonFiniteModel));
        // Scenery with a bad matrix is caught too.
        let bad_scenery = DrawCommand::scenery(mesh).with_model(Mat4::uniform_scale(f32::NAN));
        assert_eq!(bad_scenery.validate(), Err(SceneError::NonFiniteModel));
    }

    #[test]
    fn frame_trace_validate_reports_indices() {
        let mesh = Arc::new(shapes::cube(1.0));
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let good = DrawCommand::collidable(mesh.clone(), ObjectId::new(1));
        let bad = DrawCommand::collidable(mesh.clone(), ObjectId::new(2))
            .with_model(Mat4::uniform_scale(f32::INFINITY));
        let trace = FrameTrace::new(camera, vec![good, bad]);
        let errs = trace.validate();
        assert_eq!(errs, vec![(1, SceneError::NonFiniteModel)]);
    }

    #[test]
    fn frame_trace_counters() {
        let cube = Arc::new(shapes::cube(1.0));
        let trace = FrameTrace::new(
            Camera::perspective(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0, 0.1, 100.0),
            vec![
                DrawCommand::scenery(cube.clone()),
                DrawCommand::collidable(cube.clone(), ObjectId::new(1)),
            ],
        );
        assert_eq!(trace.triangle_count(), 24);
        assert_eq!(trace.vertex_count(), 16);
        assert_eq!(trace.collidable_draws().count(), 1);
    }
}
