//! GPU configuration: the paper's Table 1, as data.

use crate::cache::CacheConfig;
use rbcd_math::Viewport;

/// Which implementation of the intra-tile hot path the simulator runs.
///
/// Both modes are bit-identical in every simulated output — fragments,
/// depths, pairs, energy, traces, and every counter except the
/// mask-only diagnostics (`raster.rows_empty`, `raster.rows_full`,
/// `tile.scan_skipped`, which read 0 in `Reference`). The knob exists
/// so the old scalar loops stay available for A/B host-time
/// benchmarking and for the exactness property tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HotPathMode {
    /// The original scalar per-pixel loops: edge test every pixel of
    /// the bounding box, Z-overlap-scan every occupied ZEB list.
    Reference,
    /// Coverage-mask span rasterization plus dirty-pixel scan skipping
    /// (the default).
    #[default]
    Mask,
}

/// Per-frame overload-governor settings: the frame-deadline watchdog
/// that keeps the raster/collision timeline inside a simulated-cycle
/// budget by degrading work instead of blowing the deadline.
///
/// The budget governs the *tile merge timeline* — the cycle cursor the
/// deterministic merge advances per tile (raster + ZEB insert + scan
/// serialization). Geometry-pipeline cycles and the end-of-frame DRAM
/// contention drain are outside the governable region: they are charged
/// before tiles are scheduled / after the last tile retires, so no
/// per-tile decision can claw them back.
///
/// All decisions are taken on the main thread from the binned frame
/// alone (never from worker scheduling), so a governed run is
/// bit-identical at any thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Per-frame merge-timeline budget in simulated cycles. `0` means
    /// "no deadline": the ladder's reuse/coarsen/shed rungs stay idle
    /// and only the blocked-object routing (circuit breaker) applies.
    pub frame_budget_cycles: u64,
    /// Minimum binned-primitive count for a tile to be eligible for
    /// scan coarsening (policy rung 2) when the projected frame cost
    /// exceeds the budget.
    pub coarsen_prims: usize,
    /// Capacity boost applied to coarsened tiles: the collision
    /// backend's effective list capacity `M` is left-shifted by this
    /// amount, skipping doomed base-capacity passes under overflow
    /// storms. `0` disables rung 2.
    pub coarsen_shift: u8,
    /// Cycles charged to the merge timeline per shed tile (the Tile
    /// Scheduler's drop-and-log cost). Kept at `0` by default so the
    /// budget guarantee stays exact: used cycles never exceed the
    /// budget by more than one tile's own work.
    pub shed_overhead_cycles: u64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            frame_budget_cycles: 0,
            coarsen_prims: 64,
            coarsen_shift: 2,
            shed_overhead_cycles: 0,
        }
    }
}

/// Configuration of the simulated GPU.
///
/// Defaults reproduce the paper's Table 1 ("CPU/GPU Simulation
/// Parameters", GPU half): a 400 MHz, Mali-400-MP-class tile-based GPU
/// with one vertex processor, four fragment processors, a 4-fragment-per-
/// cycle rasterizer, 16×16-pixel tiles and an 800×480 (WVGA) screen.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Core clock in Hz (Table 1: 400 MHz).
    pub frequency_hz: u64,
    /// Supply voltage in volts (Table 1: 1 V); informational, folded into
    /// the energy constants.
    pub voltage: f32,
    /// Process node in nanometres (Table 1: 32 nm); informational.
    pub technology_nm: u32,
    /// Render target (Table 1: 800×480 WVGA).
    pub viewport: Viewport,
    /// Tile edge in pixels (Table 1: 16×16).
    pub tile_size: u32,

    /// Number of programmable vertex processors (Table 1: 1).
    pub vertex_processors: u32,
    /// Number of programmable fragment processors (Table 1: 4).
    pub fragment_processors: u32,
    /// Rasterizer throughput in fragments per cycle (Table 1: 4).
    pub raster_frags_per_cycle: u32,
    /// Primitive assembly throughput in triangles per cycle (Table 1: 1).
    pub triangles_per_cycle: u32,
    /// Fixed per-primitive rasterizer setup cycles.
    pub raster_setup_cycles: u64,
    /// Fixed per-tile overhead cycles (scheduling + colour buffer flush).
    pub tile_overhead_cycles: u64,

    /// Minimum main-memory latency in cycles (Table 1: 50).
    pub mem_latency_min: u64,
    /// Maximum main-memory latency in cycles (Table 1: 100).
    pub mem_latency_max: u64,
    /// Memory-level parallelism: outstanding misses that overlap; miss
    /// stall cycles are divided by this.
    pub memory_parallelism: u64,
    /// DRAM bandwidth in bytes per GPU cycle (Table 1: 4, dual channel).
    pub dram_bytes_per_cycle: u64,
    /// Fraction of a transfer's bus occupancy that surfaces as pipeline
    /// delay. Prefetching and write buffers hide most latency, but
    /// contention for the shared bus still slows the pipelines — the
    /// Tile-Cache traffic cost the paper's §3.3 calls out.
    pub dram_contention: f64,

    /// Vertex cache (Table 1: 4 KB, 2-way, 64 B lines).
    pub vertex_cache: CacheConfig,
    /// Tile cache in front of the polygon lists (Teapot models this
    /// between the Polygon List Builder / Tile Fetcher and the L2).
    pub tile_cache: CacheConfig,
    /// L2 cache (Table 1: 128 KB, 8-way, 64 B lines).
    pub l2_cache: CacheConfig,

    /// Size in bytes of one binned primitive record in the polygon lists.
    pub prim_record_bytes: u64,
    /// Size in bytes of one vertex record fetched by the vertex fetcher.
    pub vertex_record_bytes: u64,

    /// Queue capacities, for configuration echo (Table 1). The timing
    /// model abstracts queues through the `memory_parallelism` and
    /// per-tile `max()` overlap rules.
    pub vertex_queue_entries: u32,
    /// Triangle queue capacity (Table 1: 16 entries).
    pub triangle_queue_entries: u32,
    /// Fragment queue capacity (Table 1: 64 entries).
    pub fragment_queue_entries: u32,
    /// Tile queue capacity (Table 1: 16 entries).
    pub tile_queue_entries: u32,

    /// Host-side implementation of the rasterizer's inner loop. Never
    /// changes simulated results; see [`HotPathMode`].
    pub hot_path: HotPathMode,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            frequency_hz: 400_000_000,
            voltage: 1.0,
            technology_nm: 32,
            viewport: Viewport::new(800, 480),
            tile_size: 16,
            vertex_processors: 1,
            fragment_processors: 4,
            raster_frags_per_cycle: 4,
            triangles_per_cycle: 1,
            raster_setup_cycles: 1,
            tile_overhead_cycles: 32,
            mem_latency_min: 50,
            mem_latency_max: 100,
            memory_parallelism: 4,
            dram_bytes_per_cycle: 4,
            dram_contention: 0.1,
            vertex_cache: CacheConfig { line_bytes: 64, ways: 2, size_bytes: 4 * 1024 },
            tile_cache: CacheConfig { line_bytes: 64, ways: 2, size_bytes: 16 * 1024 },
            l2_cache: CacheConfig { line_bytes: 64, ways: 8, size_bytes: 128 * 1024 },
            prim_record_bytes: 32,
            vertex_record_bytes: 16,
            vertex_queue_entries: 16,
            triangle_queue_entries: 16,
            fragment_queue_entries: 64,
            tile_queue_entries: 16,
            hot_path: HotPathMode::Mask,
        }
    }
}

impl GpuConfig {
    /// Average main-memory latency in cycles.
    pub fn mem_latency_avg(&self) -> u64 {
        (self.mem_latency_min + self.mem_latency_max) / 2
    }

    /// Number of tile columns for the configured viewport.
    pub fn tiles_x(&self) -> u32 {
        self.viewport.width.div_ceil(self.tile_size)
    }

    /// Number of tile rows for the configured viewport.
    pub fn tiles_y(&self) -> u32 {
        self.viewport.height.div_ceil(self.tile_size)
    }

    /// Total tile count.
    pub fn tile_count(&self) -> u32 {
        self.tiles_x() * self.tiles_y()
    }

    /// Converts a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.frequency_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = GpuConfig::default();
        assert_eq!(c.frequency_hz, 400_000_000);
        assert_eq!(c.viewport.width, 800);
        assert_eq!(c.viewport.height, 480);
        assert_eq!(c.tile_size, 16);
        assert_eq!(c.fragment_processors, 4);
        assert_eq!(c.vertex_processors, 1);
        assert_eq!(c.raster_frags_per_cycle, 4);
        assert_eq!(c.l2_cache.size_bytes, 128 * 1024);
        assert_eq!(c.mem_latency_avg(), 75);
    }

    #[test]
    fn tile_grid_covers_screen() {
        let c = GpuConfig::default();
        assert_eq!(c.tiles_x(), 50);
        assert_eq!(c.tiles_y(), 30);
        assert_eq!(c.tile_count(), 1500);
    }

    #[test]
    fn odd_viewport_rounds_up() {
        let c = GpuConfig {
            viewport: Viewport::new(17, 31),
            ..GpuConfig::default()
        };
        assert_eq!(c.tiles_x(), 2);
        assert_eq!(c.tiles_y(), 2);
    }

    #[test]
    fn cycles_to_seconds_at_400mhz() {
        let c = GpuConfig::default();
        assert!((c.cycles_to_seconds(400_000_000) - 1.0).abs() < 1e-12);
    }
}
