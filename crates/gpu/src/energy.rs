//! Per-event energy accounting, McPAT-style.
//!
//! The paper models the RBCD unit with McPAT components (§4.1): the ZEBs
//! as SRAM, LT-comparators as ALUs, EQ-comparators as XOR arrays,
//! List-Register/FF-Stack/pointers as registers, hit logic as a priority
//! encoder and the shift network as MUXes. This module provides a single
//! table of per-event energies (picojoules, 32 nm-class magnitudes) used
//! by both the GPU pipelines and the RBCD unit, plus leakage models.
//!
//! Absolute joules are representative rather than calibrated silicon
//! figures; every result in EXPERIMENTS.md is a *ratio* between
//! configurations sharing this table, which is the property the paper's
//! conclusions rest on.

use crate::stats::FrameStats;

/// Per-event dynamic energies in picojoules plus leakage parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Vertex processor, per instruction cycle.
    pub vertex_instr_pj: f64,
    /// Fragment processor, per instruction cycle (includes the texture
    /// path of a typical textured draw).
    pub fragment_instr_pj: f64,
    /// Rasterizer, per emitted fragment.
    pub raster_frag_pj: f64,
    /// Primitive assembly + clipping, per triangle.
    pub triangle_pj: f64,
    /// Early-Z test, per tested fragment (on-chip Z-buffer access).
    pub early_z_pj: f64,
    /// Colour-buffer write, per shaded fragment.
    pub color_write_pj: f64,
    /// Texture path per shaded fragment: texture-cache access plus the
    /// amortized DRAM traffic of texture misses.
    pub texture_pj: f64,
    /// Small on-chip SRAM (1–16 KB), per access.
    pub sram_access_pj: f64,
    /// L2 cache, per access.
    pub l2_access_pj: f64,
    /// DRAM, per 64-byte line transferred.
    pub dram_line_pj: f64,

    /// ZEB SRAM, per list read or write (one full `M`-element list).
    pub zeb_list_access_pj: f64,
    /// One less-than comparator evaluation (insertion network).
    pub lt_comparator_pj: f64,
    /// One equality comparator evaluation (FF-stack match, XOR tree).
    pub eq_comparator_pj: f64,
    /// Register file touch (List-Register, FF-Stack, pointers).
    pub register_pj: f64,
    /// MUX shift network, per insertion.
    pub mux_shift_pj: f64,
    /// Hit logic (priority encoder), per back-face analysis.
    pub priority_encoder_pj: f64,
    /// Output-buffer write per reported colliding pair.
    pub pair_emit_pj: f64,

    /// GPU leakage power in watts (whole GPU, all components).
    pub gpu_leakage_w: f64,
    /// GPU clock frequency (to convert leakage to per-cycle energy).
    pub frequency_hz: f64,
    /// RBCD-unit leakage, as a fraction of GPU leakage per KB of ZEB
    /// storage (paper §5.3: the unit stays below 1 % of GPU static power
    /// at M=8 with two ZEBs and below 5 % at M=64).
    pub rbcd_leakage_frac_per_kb: f64,
    /// Fixed leakage fraction for the RBCD control logic.
    pub rbcd_logic_leakage_frac: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            vertex_instr_pj: 25.0,
            fragment_instr_pj: 22.0,
            raster_frag_pj: 8.0,
            triangle_pj: 30.0,
            early_z_pj: 5.0,
            color_write_pj: 8.0,
            texture_pj: 140.0,
            sram_access_pj: 2.5,
            l2_access_pj: 18.0,
            dram_line_pj: 3_000.0,
            zeb_list_access_pj: 4.0,
            lt_comparator_pj: 0.15,
            eq_comparator_pj: 0.08,
            register_pj: 0.1,
            mux_shift_pj: 0.4,
            priority_encoder_pj: 0.2,
            pair_emit_pj: 3.0,
            gpu_leakage_w: 0.120,
            frequency_hz: 400e6,
            rbcd_leakage_frac_per_kb: 0.00035,
            rbcd_logic_leakage_frac: 0.0005,
        }
    }
}

/// Energy totals in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Switching energy.
    pub dynamic_j: f64,
    /// Leakage energy over the counted cycles.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Dynamic + static.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j
    }
}

impl EnergyModel {
    /// Leakage energy per cycle in picojoules.
    pub fn leakage_pj_per_cycle(&self) -> f64 {
        self.gpu_leakage_w / self.frequency_hz * 1e12
    }

    /// GPU rendering energy for the given accumulated statistics,
    /// excluding any attached RBCD unit (which accounts for itself).
    pub fn gpu_energy(&self, stats: &FrameStats) -> EnergyBreakdown {
        let g = &stats.geometry;
        let r = &stats.raster;
        let mut pj = 0.0;
        pj += g.vp_busy_cycles as f64 * self.vertex_instr_pj;
        pj += g.triangles_assembled as f64 * self.triangle_pj;
        pj += g.vertex_cache.accesses() as f64 * self.sram_access_pj;
        pj += g.vertex_cache.misses() as f64 * (self.l2_access_pj + self.dram_line_pj * 0.3);
        pj += g.tile_cache_stores.accesses() as f64 * self.sram_access_pj;
        pj += g.tile_cache_stores.misses() as f64 * (self.l2_access_pj + self.dram_line_pj * 0.5);
        pj += r.tile_cache_loads.accesses() as f64 * self.sram_access_pj;
        pj += r.tile_cache_loads.misses() as f64 * (self.l2_access_pj + self.dram_line_pj * 0.5);
        pj += r.fragments_rasterized as f64 * self.raster_frag_pj;
        pj += r.fragments_to_early_z as f64 * self.early_z_pj;
        pj += r.fp_busy_cycles as f64 * self.fragment_instr_pj;
        pj += r.fragments_shaded as f64 * self.color_write_pj;
        pj += r.fragments_shaded as f64 * self.texture_pj;
        // Final colour-buffer flush to DRAM, once per processed tile.
        pj += r.tiles_processed as f64 * 16.0 * self.dram_line_pj * 0.1;

        let cycles = stats.total_cycles();
        EnergyBreakdown {
            dynamic_j: pj * 1e-12,
            static_j: cycles as f64 * self.leakage_pj_per_cycle() * 1e-12,
        }
    }

    /// RBCD-unit leakage power as a fraction of GPU leakage, for a unit
    /// with `zeb_count` ZEBs of 256 lists × `m` 32-bit elements.
    pub fn rbcd_static_fraction(&self, zeb_count: u32, m: usize) -> f64 {
        let kb = zeb_count as f64 * 256.0 * m as f64 * 4.0 / 1024.0;
        self.rbcd_logic_leakage_frac + kb * self.rbcd_leakage_frac_per_kb
    }

    /// RBCD-unit leakage energy over `cycles`.
    pub fn rbcd_static_j(&self, zeb_count: u32, m: usize, cycles: u64) -> f64 {
        self.rbcd_static_fraction(zeb_count, m)
            * self.leakage_pj_per_cycle()
            * cycles as f64
            * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_per_cycle() {
        let e = EnergyModel::default();
        // 120 mW at 400 MHz = 0.3 nJ / cycle = 300 pJ / cycle.
        assert!((e.leakage_pj_per_cycle() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn rbcd_static_fraction_matches_paper_bands() {
        let e = EnergyModel::default();
        // Two ZEBs, M = 8 → below 1 % of GPU static (paper §5.3).
        let f8 = e.rbcd_static_fraction(2, 8);
        assert!(f8 < 0.01, "fraction {f8}");
        // Lists of 64 entries → below 5 %.
        let f64e = e.rbcd_static_fraction(2, 64);
        assert!(f64e < 0.05, "fraction {f64e}");
        assert!(f64e > f8);
    }

    #[test]
    fn gpu_energy_scales_with_work() {
        let e = EnergyModel::default();
        let mut small = FrameStats::default();
        small.raster.fragments_rasterized = 1_000;
        small.raster.fragments_shaded = 800;
        small.raster.fp_busy_cycles = 800 * 12;
        small.raster.cycles = 10_000;
        let mut big = small;
        big.raster.fragments_rasterized *= 10;
        big.raster.fragments_shaded *= 10;
        big.raster.fp_busy_cycles *= 10;
        big.raster.cycles *= 10;
        let es = e.gpu_energy(&small);
        let eb = e.gpu_energy(&big);
        assert!(eb.dynamic_j > 5.0 * es.dynamic_j);
        assert!((eb.static_j / es.static_j - 10.0).abs() < 1e-9);
        assert!(es.total_j() > 0.0);
    }
}
