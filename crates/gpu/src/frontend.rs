//! The incremental geometry front-end: per-draw transform/clip/bin
//! caching with delta binning.
//!
//! The full-rebuild geometry pipeline re-transforms, re-clips,
//! re-culls, and re-bins every draw of every frame — even when the
//! temporal-coherence layer then discards most of the resulting tiles
//! as unchanged. This module gives [`crate::Simulator`] a second
//! front-end arrangement ([`FrontendMode::Incremental`]): a persistent
//! per-draw geometry cache keyed by the coherence layer's draw content
//! hash plus a viewport/config seed. A draw whose key hits the cache
//! skips vertex shading, near-clipping, and face culling entirely; its
//! post-transform screen triangles and per-tile bin lists are *spliced*
//! back into [`crate::sim::BinnedTiles`] in draw order. Draws that
//! changed are shaded fresh — in parallel on the caller's worker pool —
//! and merged deterministically.
//!
//! ## Exactness contract
//!
//! Bins, pairs, every event counter, energy, and traces are
//! bit-identical to the full-rebuild front-end. Three facts make this
//! hold by construction:
//!
//! 1. **Cache-model sequences are replayed, not skipped.** The vertex
//!    cache and tile cache are access-order-dependent models feeding
//!    the energy estimate, so the splice path re-issues the exact
//!    per-draw read/write sequence (vertex fetch sweep, primitive
//!    record store, bin-entry store) the rebuild path would issue, with
//!    the current frame's draw index and record ids. Only the *host*
//!    arithmetic (transform, clip, cull, bounds) is skipped.
//! 2. **Every frame re-emits every draw in draw order.** Retraction of
//!    a draw's previous-frame records is implicit: bins are laid out
//!    per frame, and cached splices occupy exactly the slots a rebuild
//!    would fill, so record ids and per-tile emission order match.
//! 3. **Shading a missed draw is a pure function** of
//!    (draw, view-projection, config, mode) — no shared mutable state —
//!    so the parallel shading stage is thread-count invariant, and its
//!    ordered merge on the main thread reproduces the sequential
//!    emission order.
//!
//! Only the `geom.*` accounting counters (`reuse_draws`,
//! `shaded_draws`, `bin_splices`) distinguish the two front-ends; they
//! are mask-only diagnostics the energy model never reads, per the
//! `tile.scan_skipped` convention.
//!
//! Faults compose for free: `FaultPlan` mutates the frame trace on the
//! main thread *before* rendering, minting fresh `Arc<Mesh>`
//! allocations and new IEEE bit patterns, so a corrupted draw's content
//! hash — and therefore its cache key — changes and the draw misses the
//! cache by construction.

use crate::broadphase::DrawBounds;
use crate::clip::clip_near;
use crate::coherence::mix;
use crate::command::{DrawCommand, Facing};
use crate::config::GpuConfig;
use crate::raster::ScreenTriangle;
use crate::sim::PipelineMode;
use rbcd_math::{viewport as viewport_map, Mat4, Vec4};
use std::collections::HashMap;
use std::sync::Arc;

/// Which geometry front-end arrangement the simulator runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FrontendMode {
    /// Re-transform, re-clip, and re-bin every draw every frame (the
    /// historical arrangement; the library default).
    #[default]
    Rebuild,
    /// Cache each draw's post-transform geometry by content hash and
    /// splice unchanged draws' bins instead of recomputing them; shade
    /// changed draws in parallel. Bit-identical results (see the
    /// module docs); only host wall-clock and the `geom.*` accounting
    /// counters differ.
    Incremental,
}

/// Default bound on cached draws per simulator. Each entry holds one
/// draw's surviving screen triangles and tile lists — small next to the
/// frame's own binning buffers — so the default is generous; it exists
/// to bound memory on pathological workloads (e.g. a fault storm
/// minting endless unique draws), not to be hit by real scenes.
pub(crate) const DEFAULT_GEOM_CACHE_DRAWS: usize = 4096;

/// One surviving (binned) triangle of a cached draw, in emission order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CachedTri {
    pub(crate) tri: ScreenTriangle,
    pub(crate) facing: Facing,
    pub(crate) tagged_cull: bool,
    /// Exclusive end of this triangle's slice in
    /// [`CachedDrawGeom::tiles`] (the start is the previous entry's
    /// end), so per-triangle tile lists flatten into one allocation.
    pub(crate) tiles_end: u32,
}

/// One draw's cached post-transform geometry: the stat deltas its
/// processing produced and the surviving triangles with their tile
/// lists, exactly as the rebuild front-end would emit them.
#[derive(Debug, Default)]
pub(crate) struct CachedDrawGeom {
    /// Vertices the draw shades (`mesh.positions().len()`); drives the
    /// vertex-cache replay sweep and the `vertices_shaded` /
    /// `vp_busy_cycles` deltas.
    pub(crate) verts: u64,
    /// Index triples assembled (`mesh.indices().len()`).
    pub(crate) tris_in: u64,
    /// Triangles discarded whole by near-plane clipping.
    pub(crate) clipped_out: u64,
    /// Triangles emitted after clipping.
    pub(crate) after_clip: u64,
    /// Zero-area or off-screen triangles dropped before binning.
    pub(crate) degenerate: u64,
    /// Triangles dropped by face culling.
    pub(crate) culled: u64,
    /// Collisionable triangles tagged-to-be-culled instead of dropped.
    pub(crate) tagged: u64,
    /// Surviving triangles in emission order.
    pub(crate) tris: Vec<CachedTri>,
    /// Flattened per-triangle tile indices (see [`CachedTri::tiles_end`]),
    /// in the rebuild path's row-major bbox walk order.
    pub(crate) tiles: Vec<u32>,
    /// Screen-space bounds of the draw's binned triangles (pixel AABB +
    /// window z-interval), folded once at shade time so the broad phase
    /// pays nothing for cached draws.
    pub(crate) bounds: DrawBounds,
}

/// Front-end seed folded with each draw's content hash to form its
/// cache key: everything *outside* the draw that the per-draw geometry
/// computation reads. The draw hash already covers the mesh, model
/// matrix, object id, cull mode, and shader cost; this covers the
/// camera (view-projection matrix bits), the viewport, the tile grid,
/// and the pipeline mode (tagging differs between baseline and RBCD).
pub(crate) fn geom_seed(cfg: &GpuConfig, mode: PipelineMode, view_proj: &Mat4) -> u64 {
    let mut h = 0x16E0_F00D_5EED_u64;
    h = mix(h, match mode {
        PipelineMode::Baseline => 0,
        PipelineMode::Rbcd => 1,
        PipelineMode::CollisionOnly => 2,
    });
    h = mix(h, (cfg.viewport.width as u64) << 32 | cfg.viewport.height as u64);
    h = mix(h, cfg.tile_size as u64);
    for c in 0..4 {
        let col = view_proj.col(c);
        h = mix(h, (col.x.to_bits() as u64) << 32 | col.y.to_bits() as u64);
        h = mix(h, (col.z.to_bits() as u64) << 32 | col.w.to_bits() as u64);
    }
    h
}

/// Shades one draw: transform, near-clip, face cull/tag, pixel bounds,
/// and tile assignment — the exact per-draw computation of the rebuild
/// front-end, minus its cache-model traffic and stat accumulation
/// (both replayed at splice time). Pure with respect to the simulator:
/// reads only its arguments, so missed draws can shade on any thread.
/// `clip_scratch` is caller-owned scratch for the post-transform
/// positions (zero steady-state allocations per worker).
pub(crate) fn shade_draw(
    draw: &DrawCommand,
    view_proj: &Mat4,
    cfg: &GpuConfig,
    mode: PipelineMode,
    clip_scratch: &mut Vec<Vec4>,
) -> CachedDrawGeom {
    let (vw, vh) = (cfg.viewport.width, cfg.viewport.height);
    let tiles_x = cfg.tiles_x();
    let mvp = *view_proj * draw.model;
    clip_scratch.clear();
    clip_scratch.extend(draw.mesh.positions().iter().map(|&p| mvp.transform_vec4(p.extend(1.0))));

    let mut out = CachedDrawGeom {
        verts: clip_scratch.len() as u64,
        tris_in: draw.mesh.indices().len() as u64,
        ..CachedDrawGeom::default()
    };
    for &[ia, ib, ic] in draw.mesh.indices() {
        let (a, b, c) =
            (clip_scratch[ia as usize], clip_scratch[ib as usize], clip_scratch[ic as usize]);
        let clipped = clip_near(a, b, c);
        if clipped.is_empty() {
            out.clipped_out += 1;
            continue;
        }
        for [ca, cb, cc] in clipped {
            out.after_clip += 1;
            let to_window = |v: Vec4| viewport_map(v.project(), cfg.viewport);
            let tri = ScreenTriangle::new(to_window(ca), to_window(cb), to_window(cc));
            let Some(facing) = tri.facing() else {
                out.degenerate += 1;
                continue;
            };
            let culled = draw.cull.culls(facing);
            let mut tagged_cull = false;
            if culled {
                match (mode, draw.collidable) {
                    (PipelineMode::Rbcd | PipelineMode::CollisionOnly, Some(_)) => {
                        tagged_cull = true;
                        out.tagged += 1;
                    }
                    _ => {
                        out.culled += 1;
                        continue;
                    }
                }
            }
            let Some((x0, y0, x1, y1)) = tri.pixel_bounds(vw, vh) else {
                out.degenerate += 1;
                continue;
            };
            out.bounds.add_tri(&tri, (x0, y0, x1, y1));
            let (tx0, tx1) = (x0 / cfg.tile_size, x1 / cfg.tile_size);
            let (ty0, ty1) = (y0 / cfg.tile_size, y1 / cfg.tile_size);
            for ty in ty0..=ty1 {
                for tx in tx0..=tx1 {
                    out.tiles.push(ty * tiles_x + tx);
                }
            }
            out.tris.push(CachedTri { tri, facing, tagged_cull, tiles_end: out.tiles.len() as u32 });
        }
    }
    out
}

/// A cached draw plus its recency stamp.
struct GeomEntry {
    stamp: u64,
    geom: Arc<CachedDrawGeom>,
}

/// Bounded LRU cache of per-draw geometry, keyed by
/// `mix(geom_seed, draw_content_hash)`. Recency is a monotonic stamp
/// (no wall clock), and eviction removes the unique minimum stamp, so
/// the cache's behaviour is fully deterministic despite the hash map's
/// unspecified iteration order. Eviction can never change results —
/// an evicted draw simply misses and is shaded from scratch.
pub(crate) struct GeomCache {
    map: HashMap<u64, GeomEntry>,
    stamp: u64,
    capacity: usize,
}

impl std::fmt::Debug for GeomCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GeomCache {{ draws: {}, capacity: {} }}", self.map.len(), self.capacity)
    }
}

impl GeomCache {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Self { map: HashMap::new(), stamp: 0, capacity: capacity.max(1) }
    }

    /// Number of cached draws.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// The cached geometry for `key`, touching its recency.
    pub(crate) fn get(&mut self, key: u64) -> Option<Arc<CachedDrawGeom>> {
        let entry = self.map.get_mut(&key)?;
        self.stamp += 1;
        entry.stamp = self.stamp;
        Some(entry.geom.clone())
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// draw if the cache is full.
    pub(crate) fn insert(&mut self, key: u64, geom: Arc<CachedDrawGeom>) {
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(&victim) =
                self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k)
            {
                self.map.remove(&victim);
            }
        }
        self.stamp += 1;
        self.map.insert(key, GeomEntry { stamp: self.stamp, geom });
    }

    /// Drops every cached draw.
    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }

    /// Changes the bound, evicting least-recently-used draws down to it.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.map.len() > self.capacity {
            if let Some(&victim) =
                self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k)
            {
                self.map.remove(&victim);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Arc<CachedDrawGeom> {
        Arc::new(CachedDrawGeom::default())
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = GeomCache::with_capacity(2);
        cache.insert(1, geom());
        cache.insert(2, geom());
        assert!(cache.get(1).is_some(), "touch key 1 so key 2 is the LRU");
        cache.insert(3, geom());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none(), "key 2 was least recently used");
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn refreshing_an_existing_key_never_evicts() {
        let mut cache = GeomCache::with_capacity(2);
        cache.insert(1, geom());
        cache.insert(2, geom());
        cache.insert(2, geom());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_some());
    }

    #[test]
    fn shrinking_capacity_evicts_down() {
        let mut cache = GeomCache::with_capacity(8);
        for k in 0..8 {
            cache.insert(k, geom());
        }
        cache.get(5);
        cache.get(0);
        cache.set_capacity(2);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(5).is_some());
        assert!(cache.get(0).is_some());
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut cache = GeomCache::with_capacity(0);
        cache.insert(7, geom());
        assert_eq!(cache.len(), 1);
        cache.set_capacity(0);
        assert!(cache.len() <= 1);
        cache.insert(8, geom());
        assert_eq!(cache.len(), 1, "capacity 0 clamps to 1");
    }

    #[test]
    fn geom_seed_tracks_camera_viewport_and_mode() {
        let cfg = GpuConfig::default();
        let vp = Mat4::IDENTITY;
        let a = geom_seed(&cfg, PipelineMode::Rbcd, &vp);
        assert_eq!(a, geom_seed(&cfg, PipelineMode::Rbcd, &vp));
        assert_ne!(a, geom_seed(&cfg, PipelineMode::Baseline, &vp));
        let moved = Mat4::translation(rbcd_math::Vec3::new(0.0, 1e-6, 0.0));
        assert_ne!(a, geom_seed(&cfg, PipelineMode::Rbcd, &moved));
        let wider = GpuConfig {
            viewport: rbcd_math::Viewport::new(1024, 480),
            ..GpuConfig::default()
        };
        assert_ne!(a, geom_seed(&wider, PipelineMode::Rbcd, &vp));
    }
}
