//! Immediate-Mode Rendering (IMR) — the alternative to TBR (§3.1).
//!
//! IMR processes primitives in submission order against a *full-screen*
//! depth and colour buffer in system memory: there is no binning pass
//! and no on-chip tile buffer, so every fragment's depth test and every
//! colour write travels through the cache hierarchy to DRAM, and pixel
//! overdraw costs off-chip bandwidth instead of on-chip SRAM traffic.
//!
//! The paper leaves an RBCD-for-IMR implementation out of scope but
//! keeps "its implementation and requirements" in mind: the ZEB would
//! have to hold per-pixel lists for the *whole screen* in memory rather
//! than one tile in SRAM. [`ImrSimulator::rbcd_memory_requirements`]
//! quantifies that: the buffer alone is three orders of magnitude larger
//! than the paper's two 8 KB ZEBs, and every insertion becomes a
//! read-modify-write of a memory-resident list — which is exactly why
//! the unit is evaluated on a TBR baseline.

use crate::cache::CacheModel;
use crate::clip::clip_near;
use crate::command::FrameTrace;
use crate::config::GpuConfig;
use crate::raster::{rasterize_triangle_in_tile, Fragment, ScreenTriangle};
use rbcd_math::viewport as viewport_map;

/// Counters and timing of one IMR frame.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ImrStats {
    /// Vertices shaded.
    pub vertices_shaded: u64,
    /// Vertex-processor work cycles.
    pub vp_busy_cycles: u64,
    /// Triangles assembled.
    pub triangles_assembled: u64,
    /// Triangles culled.
    pub triangles_culled: u64,
    /// Fragments rasterized.
    pub fragments_rasterized: u64,
    /// Fragments passing the depth test (shaded).
    pub fragments_shaded: u64,
    /// Fragment-processor work cycles.
    pub fp_busy_cycles: u64,
    /// Overdraw: colour-buffer locations written more than once.
    pub overdraw_writes: u64,
    /// Bytes moved to/from DRAM for the depth and colour buffers.
    pub framebuffer_dram_bytes: u64,
    /// Total frame cycles.
    pub cycles: u64,
}

/// A minimal immediate-mode GPU simulator sharing the TBR simulator's
/// configuration, used to reproduce the TBR-vs-IMR bandwidth argument of
/// §3.1.
#[derive(Debug)]
pub struct ImrSimulator {
    config: GpuConfig,
    /// The L2 stands between the render-output unit and DRAM; the
    /// framebuffer working set (800×480×8 B ≈ 3 MB) far exceeds it.
    l2: CacheModel,
    zbuf: Vec<f32>,
    frag_scratch: Vec<Fragment>,
}

const ZBUF_BASE: u64 = 0x4000_0000;
const CBUF_BASE: u64 = 0x5000_0000;

impl ImrSimulator {
    /// Creates an IMR simulator for the given configuration.
    pub fn new(config: GpuConfig) -> Self {
        let pixels = (config.viewport.width * config.viewport.height) as usize;
        Self {
            l2: CacheModel::new(config.l2_cache),
            zbuf: vec![1.0; pixels],
            frag_scratch: Vec::new(),
            config,
        }
    }

    /// Renders one frame in immediate mode.
    pub fn render_frame(&mut self, trace: &FrameTrace) -> ImrStats {
        let cfg = self.config.clone();
        let (vw, vh) = (cfg.viewport.width, cfg.viewport.height);
        let mut s = ImrStats::default();
        self.l2.reset_stats();
        self.zbuf.fill(1.0);
        let mut written = vec![false; (vw * vh) as usize];

        let view_proj = trace.camera.view_proj();
        for draw in &trace.draws {
            let mvp = view_proj * draw.model;
            let clip_pos: Vec<rbcd_math::Vec4> = draw
                .mesh
                .positions()
                .iter()
                .map(|&p| mvp.transform_vec4(p.extend(1.0)))
                .collect();
            s.vertices_shaded += clip_pos.len() as u64;
            s.vp_busy_cycles += clip_pos.len() as u64 * draw.shader.vertex_cycles as u64;

            for &[ia, ib, ic] in draw.mesh.indices() {
                s.triangles_assembled += 1;
                for [ca, cb, cc] in clip_near(
                    clip_pos[ia as usize],
                    clip_pos[ib as usize],
                    clip_pos[ic as usize],
                ) {
                    let to_window =
                        |v: rbcd_math::Vec4| viewport_map(v.project(), cfg.viewport);
                    let tri = ScreenTriangle::new(to_window(ca), to_window(cb), to_window(cc));
                    let Some(facing) = tri.facing() else { continue };
                    if draw.cull.culls(facing) {
                        s.triangles_culled += 1;
                        continue;
                    }
                    self.frag_scratch.clear();
                    // Immediate mode has no tiles: rasterize against the
                    // whole viewport (modelled as one viewport-sized tile).
                    let n = rasterize_triangle_in_tile(
                        &tri,
                        0,
                        0,
                        vw.max(vh),
                        vw,
                        vh,
                        &mut self.frag_scratch,
                    ) as u64;
                    s.fragments_rasterized += n;
                    for f in &self.frag_scratch {
                        let idx = (f.y * vw + f.x) as usize;
                        // Depth test: read (and on pass, write) the
                        // memory-resident Z-buffer through the L2.
                        self.l2.read(ZBUF_BASE + idx as u64 * 4);
                        if f.z < self.zbuf[idx] {
                            self.zbuf[idx] = f.z;
                            self.l2.write(ZBUF_BASE + idx as u64 * 4);
                            s.fragments_shaded += 1;
                            s.fp_busy_cycles += draw.shader.fragment_cycles as u64;
                            // Colour write to the memory-resident buffer.
                            self.l2.write(CBUF_BASE + idx as u64 * 4);
                            if written[idx] {
                                s.overdraw_writes += 1;
                            }
                            written[idx] = true;
                        }
                    }
                }
            }
        }

        // Every L2 miss is a DRAM line transfer.
        s.framebuffer_dram_bytes = self.l2.stats().misses() * cfg.l2_cache.line_bytes;

        // Timing: the same stage throughputs as the TBR model, but the
        // framebuffer traffic is on the critical path (no on-chip tile
        // buffers to absorb it) subject to the DRAM bandwidth.
        let vp = s.vp_busy_cycles / cfg.vertex_processors as u64;
        let pa = s.triangles_assembled / cfg.triangles_per_cycle as u64;
        let raster = s.fragments_rasterized.div_ceil(cfg.raster_frags_per_cycle as u64);
        let shade = s.fp_busy_cycles / cfg.fragment_processors as u64;
        let dram = s.framebuffer_dram_bytes / cfg.dram_bytes_per_cycle;
        s.cycles = vp.max(pa).max(raster).max(shade).max(dram);
        s
    }

    /// Memory a full-screen RBCD would need in IMR: one `m`-element list
    /// per *screen* pixel (versus one 16×16 tile on-chip in TBR).
    /// Returns `(bytes_imr, bytes_tbr_two_zebs)`.
    pub fn rbcd_memory_requirements(&self, m: usize) -> (u64, u64) {
        let screen_pixels =
            self.config.viewport.width as u64 * self.config.viewport.height as u64;
        let tile_pixels = self.config.tile_size as u64 * self.config.tile_size as u64;
        (screen_pixels * m as u64 * 4, 2 * tile_pixels * m as u64 * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Camera, DrawCommand};
    use crate::sim::{PipelineMode, Simulator};
    use crate::NullCollisionUnit;
    use rbcd_geometry::shapes;
    use rbcd_math::{Mat4, Vec3, Viewport};

    fn overdraw_trace() -> FrameTrace {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 6.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        // Back-to-front layers maximize overdraw.
        let layers = (0..4)
            .map(|i| {
                DrawCommand::scenery(
                    shapes::ground_quad(8.0, 8.0)
                        .transformed(&Mat4::rotation_x(std::f32::consts::FRAC_PI_2)),
                )
                .with_model(Mat4::translation(Vec3::new(0.0, 0.0, -3.0 + i as f32)))
            })
            .collect();
        FrameTrace::new(camera, layers)
    }

    #[test]
    fn imr_counts_overdraw() {
        let cfg = GpuConfig { viewport: Viewport::new(96, 96), ..GpuConfig::default() };
        let mut imr = ImrSimulator::new(cfg);
        let s = imr.render_frame(&overdraw_trace());
        assert!(s.fragments_rasterized > 0);
        // Back-to-front quads: later (nearer) layers overwrite earlier
        // pixels — substantial overdraw.
        assert!(s.overdraw_writes > s.fragments_shaded / 4, "{s:?}");
        assert!(s.framebuffer_dram_bytes > 0);
        assert!(s.cycles > 0);
    }

    #[test]
    fn imr_and_tbr_shade_equivalent_images() {
        let cfg = GpuConfig { viewport: Viewport::new(96, 96), ..GpuConfig::default() };
        let trace = overdraw_trace();
        let mut imr = ImrSimulator::new(cfg.clone());
        let i = imr.render_frame(&trace);
        let mut tbr = Simulator::new(cfg);
        let t = tbr.render_frame(&trace, PipelineMode::Baseline, &mut NullCollisionUnit);
        // Same rasterization: identical fragment and shade counts.
        assert_eq!(i.fragments_rasterized, t.raster.fragments_rasterized);
        assert_eq!(i.fragments_shaded, t.raster.fragments_shaded);
    }

    #[test]
    fn imr_moves_more_framebuffer_dram_than_tbr() {
        // TBR's pixel traffic is one colour flush per tile; IMR's depth
        // tests and overdraw all go through the L2 to DRAM.
        let cfg = GpuConfig { viewport: Viewport::new(160, 160), ..GpuConfig::default() };
        let trace = overdraw_trace();
        let mut imr = ImrSimulator::new(cfg.clone());
        let i = imr.render_frame(&trace);
        let mut tbr = Simulator::new(cfg.clone());
        let t = tbr.render_frame(&trace, PipelineMode::Baseline, &mut NullCollisionUnit);
        let tbr_pixel_bytes =
            t.raster.tiles_processed * (cfg.tile_size as u64 * cfg.tile_size as u64) * 4;
        assert!(
            i.framebuffer_dram_bytes > 2 * tbr_pixel_bytes,
            "IMR {} vs TBR {}",
            i.framebuffer_dram_bytes,
            tbr_pixel_bytes
        );
    }

    #[test]
    fn rbcd_in_imr_needs_screen_sized_buffers() {
        let cfg = GpuConfig::default(); // 800×480
        let imr = ImrSimulator::new(cfg);
        let (imr_bytes, tbr_bytes) = imr.rbcd_memory_requirements(8);
        assert_eq!(tbr_bytes, 2 * 8 * 1024); // two 8 KB ZEBs
        assert_eq!(imr_bytes, 800 * 480 * 8 * 4); // ~12 MB
        assert!(imr_bytes > 700 * tbr_bytes, "three orders of magnitude");
    }
}
