//! A tile-based-rendering (TBR) mobile GPU simulator in the style of the
//! ARM Mali-400 MP (Utgard), the baseline of the RBCD paper (§3.1), with
//! throughput/latency timing and per-event energy accounting.
//!
//! The simulator executes [`FrameTrace`]s — lists of [`DrawCommand`]s plus
//! a camera — through two decoupled pipelines:
//!
//! * the **Geometry Pipeline**: vertex processing, primitive assembly,
//!   near-plane clipping, face culling, and per-tile binning via the
//!   Polygon List Builder into the Tile Cache;
//! * the **Raster Pipeline**: per tile, the Tile Fetcher reads binned
//!   primitives, the Rasterizer scan-converts them at 4 fragments/cycle,
//!   the Early-Z test removes occluded fragments, and four Fragment
//!   Processors shade the survivors into on-chip colour/Z buffers.
//!
//! The RBCD unit itself lives in the `rbcd-core` crate and attaches to the
//! rasterizer through the [`CollisionUnit`] trait, exactly mirroring the
//! paper's integration point (Figure 3): the rasterizer forwards every
//! *collisionable* fragment — including tagged-to-be-culled ones — to the
//! unit, while only non-culled fragments proceed to Early-Z.
//!
//! Timing is throughput/latency-approximate rather than RTL-accurate: per
//! pipeline stage the simulator counts work items against the stage
//! throughputs of the paper's Table 1 and models the ZEB double-buffering
//! stall between the Tile Scheduler and the Z-overlap scan. Energy is
//! `Σ events × per-event energy + leakage × cycles`, with the same
//! component itemisation the paper used with McPAT (§4.1).
//!
//! # Example
//!
//! ```
//! use rbcd_gpu::{Camera, DrawCommand, FrameTrace, GpuConfig, PipelineMode, Simulator};
//! use rbcd_geometry::shapes;
//! use rbcd_math::{Vec3, Viewport};
//!
//! let config = GpuConfig { viewport: Viewport::new(64, 64), ..GpuConfig::default() };
//! let mut sim = Simulator::new(config);
//! let camera = Camera::perspective(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0, 0.1, 100.0);
//! let trace = FrameTrace::new(camera, vec![DrawCommand::scenery(shapes::cube(1.0))]);
//! let stats = sim.render_frame(&trace, PipelineMode::Baseline, &mut rbcd_gpu::NullCollisionUnit);
//! assert!(stats.raster.fragments_rasterized > 0);
//! ```

#![warn(missing_docs)]

mod broadphase;
mod builder;
mod cache;
mod clip;
mod coherence;
mod collision_unit;
mod command;
mod config;
pub mod energy;
mod frontend;
pub mod imr;
mod parallel;
mod policy;
mod raster;
mod service;
mod sim;
mod stats;

pub use broadphase::BroadPhase;
pub use builder::{GpuConfigError, SimulatorBuilder};
pub use cache::{CacheConfig, CacheModel, CacheStats};
pub use clip::clip_near;
pub use collision_unit::{CollisionFragment, CollisionUnit, NullCollisionUnit, TileCoord};
pub use command::{
    Camera, CullMode, DrawCommand, Facing, FrameTrace, ObjectId, SceneError, ShaderCost,
};
pub use config::{GovernorConfig, GpuConfig, HotPathMode};
pub use frontend::FrontendMode;
pub use imr::{ImrSimulator, ImrStats};
pub use parallel::ParallelCollision;
pub use policy::FramePolicy;
pub use raster::{
    rasterize_triangle_in_tile, rasterize_triangle_in_tile_masked,
    rasterize_triangle_in_tile_masked_rows, rasterize_triangle_in_tile_masked_sink, Fragment,
    MaskRasterOut, ScreenTriangle,
};
pub use service::{render_batch, BatchJob, ServiceError};
pub use sim::{GovernorFrameReport, PipelineMode, Simulator};
pub use stats::{
    BroadphaseStats, CoherenceStats, FrameStats, GeometryStats, GovernorStats, RasterStats,
};
