//! Parallel tile-pipeline execution with a deterministic merge.
//!
//! Tiles are the natural work unit of a tile-based GPU: after binning,
//! each tile's rasterization, Early-Z, and collision analysis touch
//! only private state. [`Simulator::render_frame_parallel`] exploits
//! this with a scoped worker pool (`std::thread::scope`; no external
//! dependencies):
//!
//! 1. **Plan phase** (`plan_raster`) — the main thread computes the
//!    temporal-coherence reuse plan and the governor's coarsening plan
//!    from the binned frame alone, so both are thread-count invariant
//!    by construction.
//! 2. **Compute phase** — workers claim tiles from the shared binned
//!    list via an atomic cursor. Each worker owns a private
//!    [`TileWorker`] (z-buffer + fragment scratch) and a private
//!    collision worker ([`ParallelCollision::Worker`], e.g. a software
//!    ZEB + FF-Stack), and produces an *owned* per-tile result. The
//!    per-tile step is exposed through [`TileComputeCtx`], an immutable
//!    `Sync` view of the planned frame, so the service layer
//!    (`crate::service`) can interleave tiles from *many* sessions on
//!    one pool without touching any session's mutable state.
//! 3. **Merge phase** (`merge_raster`) — the main thread walks tiles in
//!    ascending tile index (exactly the sequential processing order),
//!    replays the shared tile-cache accesses, folds per-tile stats, and
//!    replays the timing protocol (ZEB claim, scan-unit serialization)
//!    against the backend.
//!
//! Everything order-dependent — cache hit/miss sequences, the cycle
//! timeline, ZEB double-buffer claims, contact emission order — happens
//! only in the merge phase, in tile-index order. Per-tile work is
//! order-free (each tile starts from a cleared z-buffer and an empty
//! ZEB). Parallel runs are therefore **bit-identical** to sequential
//! runs for any thread count — and, because every phase reads and
//! writes only one simulator's state, a frame rendered through the
//! batch service is bit-identical to the same frame rendered solo.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::broadphase::{self, BroadPhase};
use crate::coherence;
use crate::collision_unit::{CollisionFragment, NullCollisionUnit, TileCoord};
use crate::command::{FrameTrace, ObjectId};
use crate::config::GpuConfig;
use crate::sim::{
    accumulate_reused_tile, accumulate_tile, finalize_raster_timing, replay_tile_cache,
    BinnedTiles, GovernorFrameReport, PipelineMode, Simulator, TileRasterOut, TileWorker,
};
use crate::stats::{BroadphaseStats, CoherenceStats, FrameStats, RasterStats};

/// A collision backend whose per-tile analysis can run on worker
/// threads, with results merged deterministically in tile order.
///
/// This is the parallel counterpart of [`crate::CollisionUnit`]: the
/// sequential trait interleaves `begin_tile` / `insert` / `finish_tile`
/// with rasterization, while this one splits the work into an
/// order-free compute half (`Worker` + [`ParallelCollision::process_tile`])
/// and an order-dependent timing/accumulation half
/// ([`ParallelCollision::merge_tile`], called in tile-index order).
///
/// Implementations must guarantee: driving `process_tile` on any
/// worker and then `merge_tile` in tile order leaves the backend in
/// exactly the state the sequential [`crate::CollisionUnit`] calls
/// would have produced.
pub trait ParallelCollision {
    /// Per-thread collision state (e.g. one software ZEB + FF-Stack).
    type Worker: Send;
    /// Owned per-tile result (e.g. contact points + per-tile stats).
    /// `Clone + 'static` lets the temporal-coherence layer cache it as a
    /// type-erased capsule and replay it on a later frame.
    type TileOut: Send + Clone + 'static;

    /// Creates one worker; called once per thread before the pool runs.
    fn make_worker(&self) -> Self::Worker;

    /// Analyses one tile's collisionable fragments on a worker thread.
    /// `frags` arrive in the exact order the sequential pipeline would
    /// insert them.
    fn process_tile(
        worker: &mut Self::Worker,
        tile: TileCoord,
        frags: &[CollisionFragment],
    ) -> Self::TileOut;

    /// Like [`ParallelCollision::process_tile`], but carrying the
    /// overload governor's capacity boost for a coarsened tile (policy
    /// rung 2): the backend should raise its effective per-list
    /// capacity by `boost` doublings for this tile only. `boost == 0`
    /// must behave exactly like `process_tile`. Backends without a
    /// capacity notion ignore the hint — the default does.
    fn process_boosted_tile(
        worker: &mut Self::Worker,
        tile: TileCoord,
        frags: &[CollisionFragment],
        boost: u8,
    ) -> Self::TileOut {
        let _ = boost;
        Self::process_tile(worker, tile, frags)
    }

    /// Earliest cycle at which a ZEB is free — the merge phase's tile
    /// dispatch gate, identical to [`crate::CollisionUnit::next_free`].
    fn next_free(&self) -> u64;

    /// Folds one tile's result into the backend. Called in ascending
    /// tile-index order with the tile's dispatch (`start`) and raster
    /// completion (`end`) cycles, mirroring the sequential
    /// `begin_tile(start)` … `finish_tile(end)` bracket.
    fn merge_tile(&mut self, tile: TileCoord, out: Self::TileOut, start: u64, end: u64);

    /// Cycle at which all backend activity has drained, identical to
    /// [`crate::CollisionUnit::idle_at`].
    fn idle_at(&self) -> u64;

    /// Folds a *cached* tile result back into the backend when the
    /// temporal-coherence layer replays it. Unlike
    /// [`ParallelCollision::merge_tile`], a replayed tile must not
    /// claim a ZEB or advance the backend's timing state — the skipped
    /// tile performs no insertions or scans — but the result counters,
    /// contacts and per-tile log must accumulate exactly as a fresh
    /// merge would. The default forwards to `merge_tile`, which is
    /// correct only for backends with no timing state.
    fn replay_tile(&mut self, tile: TileCoord, out: Self::TileOut, start: u64, end: u64) {
        self.merge_tile(tile, out, start, end);
    }

    /// A deterministic digest of the backend configuration, folded into
    /// every tile signature so a reconfigured backend (say, a different
    /// forced list capacity) invalidates the whole result cache. The
    /// default `0` suits stateless backends.
    fn coherence_key(&self) -> u64 {
        0
    }
}

/// The null backend: no collision work in either phase.
impl ParallelCollision for NullCollisionUnit {
    type Worker = ();
    type TileOut = ();

    fn make_worker(&self) -> Self::Worker {}

    fn process_tile(_worker: &mut (), _tile: TileCoord, _frags: &[CollisionFragment]) {}

    fn next_free(&self) -> u64 {
        0
    }

    fn merge_tile(&mut self, _tile: TileCoord, _out: (), _start: u64, _end: u64) {}

    fn idle_at(&self) -> u64 {
        0
    }
}

/// An immutable, `Sync` view of one planned frame — everything the
/// order-free compute phase needs to process any tile of that frame on
/// any thread. Built by [`Simulator::compute_ctx`] after
/// [`Simulator::plan_raster`]; the batch service layer holds one per
/// live session and lets a single worker pool drain an interleaved
/// work list across all of them.
pub(crate) struct TileComputeCtx<'a> {
    cfg: &'a GpuConfig,
    bins: &'a BinnedTiles,
    plan: &'a [(u64, bool)],
    boost: &'a [u8],
    blocked: &'a BTreeSet<ObjectId>,
    reuse_on: bool,
    tiles_x: u32,
    trace: &'a FrameTrace,
    mode: PipelineMode,
    /// Broad-phase skip flags per active-list position (empty when the
    /// broad phase is inert).
    bp: &'a [bool],
    bp_active: bool,
}

impl TileComputeCtx<'_> {
    /// Number of active (non-empty) tiles this frame; tile positions
    /// `0..tiles()` are valid `k` arguments to `compute_tile`.
    pub(crate) fn tiles(&self) -> usize {
        self.bins.active().len()
    }

    /// The owning simulator's configuration (for sizing per-thread
    /// [`TileWorker`]s).
    pub(crate) fn config(&self) -> &GpuConfig {
        self.cfg
    }

    /// Processes the tile at active-list position `k`: rasterization
    /// into `tw`'s private scratch, the governor's blocked-object
    /// filter, and the collision backend's per-tile analysis on `cw`.
    /// Returns `None` for tiles the reuse plan marked replayed — no
    /// worker may touch them. Pure per-tile work: identical output for
    /// a given `k` regardless of thread, claim order, or what other
    /// sessions share the pool.
    pub(crate) fn compute_tile<B: ParallelCollision>(
        &self,
        k: usize,
        tw: &mut TileWorker,
        cw: &mut B::Worker,
    ) -> Option<(TileRasterOut, B::TileOut)> {
        if self.reuse_on && self.plan[k].1 {
            return None;
        }
        let ti = self.bins.active()[k];
        let tile = TileCoord { x: ti % self.tiles_x, y: ti / self.tiles_x };
        let bp_skip = self.bp_active && self.bp[k];
        let mut out = tw.process_tile(
            self.cfg,
            self.trace,
            tile,
            self.bins.tile(ti as usize),
            self.mode,
            bp_skip,
        );
        if !self.blocked.is_empty() {
            tw.coll_frags.retain(|f| !self.blocked.contains(&f.object));
            out.coll_frags = tw.coll_frags.len() as u64;
        }
        let boost = self.boost.get(k).copied().unwrap_or(0);
        let cout = B::process_boosted_tile(cw, tile, &tw.coll_frags, boost);
        Some((out, cout))
    }
}

impl Simulator {
    /// Renders one frame using up to `threads` worker threads for the
    /// raster pipeline, producing results **bit-identical** to
    /// [`Simulator::render_frame`] with the corresponding sequential
    /// unit — same frame statistics, same cache stats, same cycle
    /// counts, same contacts in the same order — for any thread count.
    ///
    /// `threads == 1` (or a frame with a single active tile) runs
    /// inline on the calling thread with no pool overhead.
    pub fn render_frame_parallel<B: ParallelCollision>(
        &mut self,
        trace: &FrameTrace,
        mode: PipelineMode,
        backend: &mut B,
        threads: usize,
    ) -> FrameStats {
        let geometry = self.geometry_pipeline_with(trace, mode, threads);
        let co = self.plan_raster(trace, mode, &*backend);
        let slots = self.compute_raster(trace, mode, &*backend, threads.max(1));
        let (raster, coherence) = self.merge_raster(trace, backend, slots, co);
        let governor = self.governor_frame_stats();
        let stats = FrameStats {
            geometry,
            raster,
            coherence,
            governor,
            broadphase: self.broadphase_frame_stats(),
            frames: 1,
        };
        if let Some(t) = self.tracer.as_deref_mut() {
            t.end_frame(stats.total_cycles());
        }
        stats
    }

    /// Plan phase: temporal-coherence reuse decisions and the
    /// governor's coarsening plan, computed on the main thread *before*
    /// the compute phase, so they depend only on the binned frame —
    /// never on worker scheduling — and are thread-count invariant by
    /// construction. The overload governor's policy rung 1 forces the
    /// reuse machinery on, so signature-stable tiles replay cheaply
    /// while the frame is under deadline pressure.
    pub(crate) fn plan_raster<B: ParallelCollision>(
        &mut self,
        trace: &FrameTrace,
        mode: PipelineMode,
        backend: &B,
    ) -> CoherenceStats {
        let mut co = CoherenceStats::default();
        self.tile_cache.reset_stats();
        let gov = self.governor;
        let reuse_on = self.reuse || gov.is_some();

        // Broad-phase plan: a main-thread pass over the binned frame,
        // like the reuse and coarsening plans, so the skip mask is
        // thread-count invariant by construction. Inert in baseline
        // mode (no pairs to preserve) and under a governor (the
        // deadline ladder's shed decisions are cursor-driven and take
        // precedence — see `Simulator::set_broadphase`).
        let bp_active =
            self.broadphase == BroadPhase::On && mode != PipelineMode::Baseline && gov.is_none();
        self.bp_active = bp_active;
        self.bp_plan.clear();
        self.bp_stats = if bp_active {
            broadphase::plan_frame(
                trace,
                &self.bins,
                &self.draw_bounds,
                &mut self.bp_scratch,
                &mut self.bp_plan,
            )
        } else {
            BroadphaseStats::default()
        };

        if reuse_on {
            // The incremental front-end already hashed this frame's
            // draws (its cache key shares the digest); reuse them
            // instead of hashing twice. Host-side memoization only —
            // the simulated per-draw hand-off charge below is the same
            // either way.
            if !self.draw_hashes_ready {
                coherence::hash_draws_memo(trace, &mut self.draw_hashes, &mut self.mesh_memo);
            }
            self.draw_hashes_ready = false;
            co.draw_hashes = self.draw_hashes.len() as u64;
            // The blocked-object filter changes what the backend sees,
            // so the blocked set is folded into the frame seed: cached
            // results are only replayed under the exact routing that
            // produced them.
            let mut key = backend.coherence_key();
            for id in &self.governor_blocked {
                key = (key ^ (0x5EDB_10C7 ^ id.get() as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                key ^= key >> 29;
            }
            let seed = coherence::frame_seed(&self.config, mode, key, bp_active);
            self.result_cache
                .ensure_tiles((self.config.tiles_x() * self.config.tiles_y()) as usize);
            self.reuse_plan.clear();
            for (k, &ti) in self.bins.active().iter().enumerate() {
                let raw =
                    coherence::tile_signature(seed, self.bins.tile(ti as usize), &self.draw_hashes);
                // A tile's skip verdict depends on *other* draws'
                // whole-frame bounds, so it can flip while the bin
                // content (and therefore `raw`) stays equal; folding
                // the verdict in keeps every cached capsule tied to
                // the exact pass that produced it.
                let sig = if bp_active {
                    coherence::mix(raw, 1 + self.bp_plan[k] as u64)
                } else {
                    raw
                };
                let reused = self.result_cache.matches::<B::TileOut>(ti as usize, sig);
                co.tiles_checked += 1;
                co.tiles_reused += reused as u64;
                self.reuse_plan.push((sig, reused));
            }
        }

        // Coarsening plan (policy rung 2): when the projected frame
        // cost exceeds the budget, the heaviest fresh tiles get their
        // collision capacity pre-elevated, skipping base-capacity
        // passes that an overflow storm would doom anyway.
        self.boost_plan.clear();
        if let Some(g) = gov {
            if g.frame_budget_cycles > 0 && g.coarsen_shift > 0 {
                let mut projected = 0u64;
                for (k, &ti) in self.bins.active().iter().enumerate() {
                    let prims = self.bins.tile(ti as usize).len() as u64;
                    projected += if self.reuse_plan[k].1 {
                        coherence::signature_check_cycles(prims)
                    } else {
                        prims + self.config.tile_overhead_cycles
                    };
                }
                if projected > g.frame_budget_cycles {
                    self.boost_plan.resize(self.bins.active().len(), 0);
                    for (k, &ti) in self.bins.active().iter().enumerate() {
                        if !self.reuse_plan[k].1
                            && self.bins.tile(ti as usize).len() >= g.coarsen_prims
                        {
                            self.boost_plan[k] = g.coarsen_shift;
                        }
                    }
                }
            }
        }
        co
    }

    /// Builds the immutable compute-phase view of this (planned) frame.
    /// Only valid between [`Simulator::plan_raster`] and
    /// [`Simulator::merge_raster`] of the same frame.
    pub(crate) fn compute_ctx<'a>(
        &'a self,
        trace: &'a FrameTrace,
        mode: PipelineMode,
    ) -> TileComputeCtx<'a> {
        TileComputeCtx {
            cfg: &self.config,
            bins: &self.bins,
            plan: &self.reuse_plan,
            boost: &self.boost_plan,
            blocked: &self.governor_blocked,
            reuse_on: self.reuse || self.governor.is_some(),
            tiles_x: self.config.tiles_x(),
            trace,
            mode,
            bp: &self.bp_plan,
            bp_active: self.bp_active,
        }
    }

    /// Compute phase for the solo render path: owned per-tile results,
    /// indexed by position in the active list. Tiles the plan marks
    /// reused are skipped — no worker ever touches them.
    fn compute_raster<B: ParallelCollision>(
        &mut self,
        trace: &FrameTrace,
        mode: PipelineMode,
        backend: &B,
        threads: usize,
    ) -> Vec<Option<(TileRasterOut, B::TileOut)>> {
        // Lend out the resident worker (no per-frame allocation on the
        // inline path) while the compute context borrows the rest of
        // the simulator immutably.
        let mut tw = std::mem::replace(&mut self.worker, TileWorker::empty());
        let slots;
        {
            let ctx = self.compute_ctx(trace, mode);
            let n = ctx.tiles();
            if threads <= 1 || n <= 1 {
                let mut inline = Vec::with_capacity(n);
                let mut cw = backend.make_worker();
                for k in 0..n {
                    inline.push(ctx.compute_tile::<B>(k, &mut tw, &mut cw));
                }
                slots = inline;
            } else {
                let mut pooled: Vec<Option<(TileRasterOut, B::TileOut)>> = Vec::new();
                pooled.resize_with(n, || None);
                let next = AtomicUsize::new(0);
                // Workers are created up front on this thread:
                // `make_worker` borrows the backend, which must not be
                // shared with the pool (merge needs it mutably
                // afterwards).
                let col_workers: Vec<B::Worker> =
                    (0..threads).map(|_| backend.make_worker()).collect();
                let ctx = &ctx;
                let results: Vec<Vec<(usize, TileRasterOut, B::TileOut)>> =
                    std::thread::scope(|s| {
                        let handles: Vec<_> = col_workers
                            .into_iter()
                            .map(|mut cw| {
                                let next = &next;
                                s.spawn(move || {
                                    let mut tw = TileWorker::new(ctx.config());
                                    let mut done = Vec::new();
                                    loop {
                                        let k = next.fetch_add(1, Ordering::Relaxed);
                                        if k >= ctx.tiles() {
                                            break;
                                        }
                                        if let Some((out, cout)) =
                                            ctx.compute_tile::<B>(k, &mut tw, &mut cw)
                                        {
                                            done.push((k, out, cout));
                                        }
                                    }
                                    done
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("tile worker panicked"))
                            .collect()
                    });
                for batch in results {
                    for (k, out, cout) in batch {
                        pooled[k] = Some((out, cout));
                    }
                }
                slots = pooled;
            }
        }
        self.worker = tw;
        slots
    }

    /// Merge phase: tile-index order replays the sequential timeline
    /// and the shared tile cache's access sequence exactly. Reused
    /// tiles pull their cached outcome instead of a slot; freshly
    /// computed tiles refresh the cache for the next frame. Under a
    /// governor budget, tiles past the deadline are shed (policy
    /// rung 3): their results — computed or cached — are discarded,
    /// their objects reported for CPU recovery.
    pub(crate) fn merge_raster<B: ParallelCollision>(
        &mut self,
        trace: &FrameTrace,
        backend: &mut B,
        mut slots: Vec<Option<(TileRasterOut, B::TileOut)>>,
        mut co: CoherenceStats,
    ) -> (RasterStats, CoherenceStats) {
        let cfg = self.config.clone();
        let mut r = RasterStats::default();
        let tiles_x = cfg.tiles_x();
        let gov = self.governor;
        let reuse_on = self.reuse || gov.is_some();
        let bp_active = self.bp_active;
        let bp_sweep = self.bp_stats.sweep_cycles;
        let Simulator {
            bins,
            tile_cache,
            tracer,
            reuse_plan,
            result_cache,
            boost_plan,
            governor_report,
            bp_plan,
            ..
        } = self;
        let active = bins.active();
        let coord = |ti: u32| TileCoord { x: ti % tiles_x, y: ti / tiles_x };
        let plan: &[(u64, bool)] = reuse_plan;
        let is_reused = |k: usize| reuse_on && plan[k].1;
        let bp: &[bool] = bp_plan;
        let is_bp_skip = |k: usize| bp_active && bp[k];
        let boost: &[u8] = boost_plan;
        let tile_boost = |k: usize| boost.get(k).copied().unwrap_or(0);

        let budget = gov.map_or(0, |g| g.frame_budget_cycles);
        let shed_overhead = gov.map_or(0, |g| g.shed_overhead_cycles);
        let mut report = gov
            .map(|g| GovernorFrameReport { budget_cycles: g.frame_budget_cycles, ..Default::default() });
        let mut max_tile_cycles = 0u64;
        let mut coarsened = 0u64;
        let mut cursor: u64 = 0;
        if reuse_on {
            // Per-draw content hashing, charged once per frame up front
            // (one digest hand-off cycle per live draw; the hashing
            // itself piggybacks on the geometry stage's vertex stream).
            co.signature_cycles += co.draw_hashes;
            r.fp_idle_cycles += co.draw_hashes;
            cursor += co.draw_hashes;
        }
        if bp_active {
            // The interval sweep runs once per frame before any tile
            // starts; like the draw-hash charge above it occupies the
            // timeline but keeps the fragment pipe idle.
            r.fp_idle_cycles += bp_sweep;
            cursor += bp_sweep;
        }
        for (k, &ti) in active.iter().enumerate() {
            let ti_us = ti as usize;
            let tc = coord(ti);
            if budget > 0 && cursor >= budget {
                let rep = report.as_mut().expect("a budget implies a governed frame");
                rep.shed_tiles.push((tc.x, tc.y));
                for prim in bins.tile(ti_us) {
                    if let Some(id) = trace.draws[prim.draw as usize].collidable {
                        rep.shed_objects.insert(id);
                    }
                }
                if is_reused(k) {
                    // The planned replay never happens.
                    co.tiles_reused -= 1;
                }
                cursor += shed_overhead;
                if let Some(t) = tracer.as_deref_mut() {
                    t.record_tile_shed(tc.x, tc.y, cursor);
                }
                continue;
            }
            // The Tile Fetcher still walks the polygon list either way
            // (the signature check reads it), so the shared tile-cache
            // access sequence — and its counters — stay bit-identical
            // with reuse on or off.
            replay_tile_cache(tile_cache, &cfg, ti_us, bins.tile(ti_us));
            if is_reused(k) {
                let entry = result_cache.get(ti_us).expect("reuse plan vouched for this tile");
                let out = entry.out;
                let cout = entry
                    .capsule
                    .downcast_ref::<B::TileOut>()
                    .expect("capsule type checked by the plan")
                    .clone();
                let sig_cycles = coherence::signature_check_cycles(out.prim_count);
                co.signature_cycles += sig_cycles;
                let start = cursor;
                let end = accumulate_reused_tile(&mut r, &out, cursor, sig_cycles);
                backend.replay_tile(tc, cout, start, end);
                if let Some(t) = tracer.as_deref_mut() {
                    t.record_tile_raster(tc.x, tc.y, start, end, out.frags);
                    t.record_tile_reuse(tc.x, tc.y, start);
                }
                max_tile_cycles = max_tile_cycles.max(end - cursor);
                cursor = end;
            } else if is_bp_skip(k) {
                // Broad phase proved no feasible pair can touch this
                // tile: the worker already skipped the image-side
                // work, so the merge charges only the list walk (plus
                // the signature check when reuse is on — the check
                // still ran and missed). The collision capsule is
                // replayed unchanged: every collisionable fragment
                // reached the unit exactly as it would have without
                // pruning, so pairs and `rbcd.*` stay bit-identical.
                let (out, cout) = slots[k].take().expect("every claimed tile completed");
                let mut replay_cycles = broadphase::skip_replay_cycles(out.prim_count);
                if reuse_on {
                    let sig_cycles = coherence::signature_check_cycles(out.prim_count);
                    co.signature_cycles += sig_cycles;
                    replay_cycles += sig_cycles;
                    result_cache.store(ti_us, plan[k].0, out, Box::new(cout.clone()));
                }
                let start = cursor;
                let end = accumulate_reused_tile(&mut r, &out, cursor, replay_cycles);
                backend.replay_tile(tc, cout, start, end);
                if let Some(t) = tracer.as_deref_mut() {
                    t.record_tile_raster(tc.x, tc.y, start, end, out.frags);
                    t.record_tile_bp_skip(tc.x, tc.y, start);
                }
                max_tile_cycles = max_tile_cycles.max(end - cursor);
                cursor = end;
            } else {
                let (out, cout) = slots[k].take().expect("every claimed tile completed");
                let b = tile_boost(k);
                coarsened += (b > 0) as u64;
                let start = cursor.max(backend.next_free());
                let mut end = accumulate_tile(&mut r, &cfg, &out, cursor, start);
                if reuse_on {
                    // The signature was checked (and missed); charge it
                    // and refresh the cache with the fresh result. A
                    // coarsened tile's result is *not* cached: it was
                    // produced at a boosted capacity the plain
                    // signature does not encode.
                    let sig_cycles = coherence::signature_check_cycles(out.prim_count);
                    co.signature_cycles += sig_cycles;
                    r.fp_idle_cycles += sig_cycles;
                    end += sig_cycles;
                    if b == 0 {
                        result_cache.store(ti_us, plan[k].0, out, Box::new(cout.clone()));
                    }
                }
                backend.merge_tile(tc, cout, start, end);
                if let Some(t) = tracer.as_deref_mut() {
                    t.record_tile_raster(tc.x, tc.y, start, end, out.frags);
                }
                max_tile_cycles = max_tile_cycles.max(end - cursor);
                cursor = end;
            }
        }
        if let Some(rep) = &mut report {
            rep.used_cycles = cursor;
            rep.max_tile_cycles = max_tile_cycles;
            rep.tiles_coarsened = coarsened;
        }
        *governor_report = report;
        cursor = cursor.max(backend.idle_at());
        r.tile_cache_loads = tile_cache.stats();
        finalize_raster_timing(&mut r, &cfg, cursor);
        (r, co)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Camera, DrawCommand, ObjectId};
    use crate::config::{GovernorConfig, GpuConfig};
    use rbcd_geometry::shapes;
    use rbcd_math::{Mat4, Vec3, Viewport};

    fn busy_trace() -> FrameTrace {
        let camera = Camera::perspective(Vec3::new(0.0, 1.0, 7.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let draws = vec![
            DrawCommand::scenery(shapes::ground_quad(16.0, 16.0))
                .with_model(Mat4::translation(Vec3::new(0.0, -1.5, 0.0))),
            DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1)),
            DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(2))
                .with_model(Mat4::translation(Vec3::new(0.7, 0.2, 0.1))),
            DrawCommand::collidable(shapes::icosphere(0.8, 2), ObjectId::new(3))
                .with_model(Mat4::translation(Vec3::new(-1.6, 0.0, 0.5))),
            DrawCommand::scenery(shapes::uv_sphere(1.2, 10, 8))
                .with_model(Mat4::translation(Vec3::new(1.8, 0.5, -1.0))),
        ];
        FrameTrace::new(camera, draws)
    }

    fn cfg() -> GpuConfig {
        GpuConfig { viewport: Viewport::new(128, 96), ..GpuConfig::default() }
    }

    #[test]
    fn parallel_null_matches_sequential() {
        for mode in [PipelineMode::Baseline, PipelineMode::Rbcd, PipelineMode::CollisionOnly] {
            let trace = busy_trace();
            let mut seq_sim = Simulator::new(cfg());
            let seq = seq_sim.render_frame(&trace, mode, &mut NullCollisionUnit);
            for threads in [1, 2, 4, 8] {
                let mut par_sim = Simulator::new(cfg());
                let par =
                    par_sim.render_frame_parallel(&trace, mode, &mut NullCollisionUnit, threads);
                assert_eq!(seq, par, "mode {mode:?}, {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_warm_caches_match_sequential() {
        // Cache stats are order-dependent and persist across frames;
        // the merge-phase replay must keep multi-frame warm-cache runs
        // identical too.
        let trace = busy_trace();
        let mut seq_sim = Simulator::new(cfg());
        let mut par_sim = Simulator::new(cfg());
        for frame in 0..3 {
            let seq = seq_sim.render_frame(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit);
            let par = par_sim.render_frame_parallel(
                &trace,
                PipelineMode::Rbcd,
                &mut NullCollisionUnit,
                4,
            );
            assert_eq!(seq, par, "frame {frame}");
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let trace = busy_trace();
        let mut sim = Simulator::new(cfg());
        let a = sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 0);
        let mut sim = Simulator::new(cfg());
        let b = sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 1);
        assert_eq!(a, b);
    }

    // Deliberately keeps the deprecated `.tracing(true)` setter: the
    // compatibility contract says it must keep behaving identically.
    #[allow(deprecated)]
    #[test]
    fn tracing_never_changes_results_and_is_thread_invariant() {
        let trace = busy_trace();
        let mut plain = Simulator::new(cfg());
        let base =
            plain.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 2);
        let mut events_by_threads = Vec::new();
        for threads in [1, 2, 4] {
            let mut traced = crate::SimulatorBuilder::from_config(cfg())
                .tracing(true)
                .build()
                .unwrap();
            let stats = traced.render_frame_parallel(
                &trace,
                PipelineMode::Rbcd,
                &mut NullCollisionUnit,
                threads,
            );
            assert_eq!(stats, base, "tracing must not perturb results ({threads} threads)");
            let buf = traced.take_trace().expect("tracing was enabled");
            assert!(!buf.events().is_empty());
            events_by_threads.push(buf.events().to_vec());
        }
        // Simulated-cycle timestamps: the trace itself is bit-identical
        // across thread counts.
        assert_eq!(events_by_threads[0], events_by_threads[1]);
        assert_eq!(events_by_threads[0], events_by_threads[2]);
    }

    /// Zeroes the timing-only raster fields, leaving the event counters
    /// (the paper's per-event energy surface) for comparison.
    fn events_only(mut s: FrameStats) -> FrameStats {
        s.raster.cycles = 0;
        s.raster.fp_idle_cycles = 0;
        s.raster.zeb_stall_cycles = 0;
        s.coherence = CoherenceStats::default();
        s
    }

    #[test]
    fn reuse_replays_static_frames_and_only_timing_diverges() {
        let trace = busy_trace();
        let mut off = Simulator::new(cfg());
        let mut on = Simulator::new(cfg());
        on.set_reuse(true);
        assert!(on.reuse_enabled());
        for frame in 0..3 {
            let a = off.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 4);
            let b = on.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 4);
            assert_eq!(events_only(a), events_only(b), "frame {frame}");
            assert_eq!(b.coherence.tiles_checked, a.raster.tiles_processed);
            if frame == 0 {
                assert_eq!(b.coherence.tiles_reused, 0, "cold cache cannot hit");
            } else {
                assert_eq!(
                    b.coherence.tiles_reused, b.coherence.tiles_checked,
                    "a static frame reuses every tile"
                );
                assert!(
                    b.raster.cycles < a.raster.cycles,
                    "replayed tiles must be cheaper: {} vs {}",
                    b.raster.cycles,
                    a.raster.cycles
                );
            }
        }
    }

    #[test]
    fn reuse_results_are_thread_count_invariant() {
        let trace = busy_trace();
        let mut frames_by_threads = Vec::new();
        for threads in [1, 2, 4] {
            let mut sim = Simulator::new(cfg());
            sim.set_reuse(true);
            let frames: Vec<FrameStats> = (0..3)
                .map(|_| {
                    sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, threads)
                })
                .collect();
            assert!(frames[1].coherence.tiles_reused > 0);
            frames_by_threads.push(frames);
        }
        assert_eq!(frames_by_threads[0], frames_by_threads[1]);
        assert_eq!(frames_by_threads[0], frames_by_threads[2]);
    }

    #[test]
    fn disabling_reuse_clears_the_cache() {
        let trace = busy_trace();
        let mut sim = Simulator::new(cfg());
        sim.set_reuse(true);
        sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 2);
        let warm = sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 2);
        assert!(warm.coherence.tiles_reused > 0);
        sim.set_reuse(false);
        let off = sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 2);
        assert_eq!(off.coherence, CoherenceStats::default());
        sim.set_reuse(true);
        let cold = sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 2);
        assert_eq!(cold.coherence.tiles_reused, 0, "re-enable starts from a cold cache");
    }

    #[test]
    fn content_change_invalidates_only_its_tiles() {
        let camera = Camera::perspective(Vec3::new(0.0, 1.0, 7.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let still = DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1))
            .with_model(Mat4::translation(Vec3::new(-1.8, 0.0, 0.0)));
        let mover = |x: f32| {
            DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(2))
                .with_model(Mat4::translation(Vec3::new(1.8 + x, 0.0, 0.0)))
        };
        let mut sim = Simulator::new(cfg());
        sim.set_reuse(true);
        let frame = |sim: &mut Simulator, x: f32| {
            let trace = FrameTrace::new(camera, vec![still.clone(), mover(x)]);
            sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 2)
        };
        frame(&mut sim, 0.0);
        let moved = frame(&mut sim, 0.05);
        assert!(moved.coherence.tiles_reused > 0, "the still cube's tiles stay cached");
        assert!(
            moved.coherence.tiles_reused < moved.coherence.tiles_checked,
            "the moved cube's tiles must recompute"
        );
    }

    /// Zeroes the accounting-only `geom.*` counters — the only fields
    /// allowed to differ between the rebuild and incremental
    /// front-ends.
    fn no_geom_accounting(mut s: FrameStats) -> FrameStats {
        s.geometry.reuse_draws = 0;
        s.geometry.shaded_draws = 0;
        s.geometry.bin_splices = 0;
        s
    }

    #[test]
    fn incremental_frontend_is_bit_identical_to_rebuild() {
        use crate::frontend::FrontendMode;
        for mode in [PipelineMode::Baseline, PipelineMode::Rbcd, PipelineMode::CollisionOnly] {
            for reuse in [false, true] {
                for threads in [1, 2, 4] {
                    let trace = busy_trace();
                    let mut rebuild = Simulator::new(cfg());
                    rebuild.set_reuse(reuse);
                    let mut inc = Simulator::new(cfg());
                    inc.set_reuse(reuse);
                    inc.set_frontend(FrontendMode::Incremental);
                    for frame in 0..3 {
                        let a = rebuild.render_frame_parallel(
                            &trace,
                            mode,
                            &mut NullCollisionUnit,
                            threads,
                        );
                        let b =
                            inc.render_frame_parallel(&trace, mode, &mut NullCollisionUnit, threads);
                        assert_eq!(
                            a,
                            no_geom_accounting(b.clone()),
                            "mode {mode:?}, reuse {reuse}, {threads} threads, frame {frame}"
                        );
                        if mode != PipelineMode::CollisionOnly && frame > 0 {
                            assert!(
                                b.geometry.reuse_draws > 0,
                                "a static frame replays its draws from the geometry cache"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_frontend_traces_match_rebuild_events() {
        use crate::frontend::FrontendMode;
        let trace = busy_trace();
        let events_of = |frontend: FrontendMode| {
            let mut sim = crate::SimulatorBuilder::from_config(cfg())
                .policy(crate::FramePolicy::new().with_tracing(true).with_frontend(frontend))
                .build()
                .unwrap();
            for _ in 0..2 {
                sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 2);
            }
            sim.take_trace().expect("tracing was enabled")
        };
        let rebuild = events_of(FrontendMode::Rebuild);
        let inc = events_of(FrontendMode::Incremental);
        // The timeline is simulated, so splicing must be invisible to
        // the event stream; only the splice heat plane may differ.
        assert_eq!(rebuild.events(), inc.events());
        assert_eq!(inc.heat().total("splice") > 0, true, "warm frame splices bins");
        assert_eq!(rebuild.heat().total("splice"), 0);
    }

    /// Zeroes every counter the broad phase is *allowed* to move —
    /// raster/scan timing, fragment-pipe image-side event counts, the
    /// coherence block, and the mask-only `broadphase.*` stats — so
    /// what remains (pairs via the backend, `fragments_collisionable`,
    /// `primitives_fetched`, `tiles_processed`, geometry, governor) is
    /// the exactness set that must stay bit-identical.
    fn strip_bp(mut s: FrameStats) -> FrameStats {
        s.raster.cycles = 0;
        s.raster.fp_idle_cycles = 0;
        s.raster.zeb_stall_cycles = 0;
        s.raster.fp_busy_cycles = 0;
        s.raster.fragments_rasterized = 0;
        s.raster.fragments_to_early_z = 0;
        s.raster.fragments_shaded = 0;
        s.raster.pixels_covered = 0;
        s.raster.rows_empty = 0;
        s.raster.rows_full = 0;
        s.coherence = CoherenceStats::default();
        s.broadphase = BroadphaseStats::default();
        s
    }

    #[test]
    fn broadphase_preserves_events_and_skips_tiles() {
        let trace = busy_trace();
        for mode in [PipelineMode::Rbcd, PipelineMode::CollisionOnly] {
            for threads in [1, 2, 4] {
                let mut off = Simulator::new(cfg());
                let a = off.render_frame_parallel(&trace, mode, &mut NullCollisionUnit, threads);
                let mut on = Simulator::new(cfg());
                on.set_broadphase(BroadPhase::On);
                let b = on.render_frame_parallel(&trace, mode, &mut NullCollisionUnit, threads);
                let tag = format!("mode {mode:?}, {threads} threads");
                assert_eq!(strip_bp(a.clone()), strip_bp(b.clone()), "{tag}");
                assert!(b.broadphase.tiles_skipped > 0, "{tag}: pair-free tiles must skip");
                assert!(b.broadphase.sweep_cycles > 0, "{tag}");
                if mode == PipelineMode::Rbcd {
                    // CollisionOnly never bins scenery, so only Rbcd has
                    // image-side fragments for the skip to elide.
                    assert!(
                        b.raster.fragments_rasterized < a.raster.fragments_rasterized,
                        "{tag}: skipped tiles' scenery must not rasterize"
                    );
                    assert!(
                        b.raster.fragments_shaded < a.raster.fragments_shaded,
                        "{tag}: skipped tiles never shade"
                    );
                }
                assert_eq!(
                    b.raster.fragments_collisionable, a.raster.fragments_collisionable,
                    "{tag}: every collisionable fragment still reaches the unit"
                );
            }
        }
    }

    #[test]
    fn broadphase_results_are_thread_count_invariant() {
        let trace = busy_trace();
        let mut frames_by_threads = Vec::new();
        for threads in [1, 2, 4] {
            let mut sim = Simulator::new(cfg());
            sim.set_broadphase(BroadPhase::On);
            let frames: Vec<FrameStats> = (0..3)
                .map(|_| {
                    sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, threads)
                })
                .collect();
            assert!(frames[0].broadphase.tiles_skipped > 0);
            frames_by_threads.push(frames);
        }
        assert_eq!(frames_by_threads[0], frames_by_threads[1]);
        assert_eq!(frames_by_threads[0], frames_by_threads[2]);
    }

    #[test]
    fn baseline_and_governed_frames_are_never_pruned() {
        let trace = busy_trace();
        // Baseline measures the full render cost: the knob is inert and
        // the whole FrameStats — timing included — stays bit-identical.
        let mut off = Simulator::new(cfg());
        let a = off.render_frame_parallel(&trace, PipelineMode::Baseline, &mut NullCollisionUnit, 2);
        let mut on = Simulator::new(cfg());
        on.set_broadphase(BroadPhase::On);
        let b = on.render_frame_parallel(&trace, PipelineMode::Baseline, &mut NullCollisionUnit, 2);
        assert_eq!(a, b, "Baseline mode is never pruned");
        assert_eq!(b.broadphase, BroadphaseStats::default());

        // A governed frame sheds by merge cursor; pruning would move the
        // cursor and change which tiles shed, so the governor wins and
        // the knob is inert — exact equality again.
        let gov = GovernorConfig { frame_budget_cycles: 25_000, ..GovernorConfig::default() };
        let mut goff = Simulator::new(cfg());
        goff.set_governor(Some(gov));
        let mut gon = Simulator::new(cfg());
        gon.set_governor(Some(gov));
        gon.set_broadphase(BroadPhase::On);
        for frame in 0..2 {
            let a = goff.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 2);
            let b = gon.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 2);
            assert_eq!(a, b, "governed frame {frame} is never pruned");
            assert_eq!(b.broadphase, BroadphaseStats::default(), "frame {frame}");
        }
    }

    #[test]
    fn broadphase_composes_with_temporal_reuse() {
        let trace = busy_trace();
        let mut reuse_only = Simulator::new(cfg());
        reuse_only.set_reuse(true);
        let mut both = Simulator::new(cfg());
        both.set_reuse(true);
        both.set_broadphase(BroadPhase::On);
        for frame in 0..3 {
            let a = reuse_only.render_frame_parallel(
                &trace,
                PipelineMode::Rbcd,
                &mut NullCollisionUnit,
                4,
            );
            let b = both.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 4);
            assert_eq!(strip_bp(a), strip_bp(b.clone()), "frame {frame}");
            if frame > 0 {
                assert_eq!(
                    b.coherence.tiles_reused, b.coherence.tiles_checked,
                    "a static frame replays every tile, skipped ones included"
                );
            }
        }
    }

    #[test]
    fn toggling_broadphase_invalidates_the_reuse_cache() {
        // A cached tile was produced under one pruning mode; replaying
        // it under another would replay the wrong raster timing. The
        // frame seed folds the mode in, so the toggle cold-starts reuse.
        let trace = busy_trace();
        let mut sim = Simulator::new(cfg());
        sim.set_reuse(true);
        sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 2);
        let warm = sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 2);
        assert!(warm.coherence.tiles_reused > 0);
        sim.set_broadphase(BroadPhase::On);
        let cold = sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 2);
        assert_eq!(cold.coherence.tiles_reused, 0, "toggle must cold-start the cache");
        let rewarm = sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 2);
        assert!(rewarm.coherence.tiles_reused > 0, "and re-warm under the new mode");
    }

    #[test]
    fn empty_frame_parallel_is_safe() {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let trace = FrameTrace::new(camera, vec![]);
        let mut sim = Simulator::new(cfg());
        let stats =
            sim.render_frame_parallel(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit, 8);
        assert_eq!(stats.raster.tiles_processed, 0);
        assert_eq!(stats.raster.fragments_rasterized, 0);
    }
}
