//! [`FramePolicy`] — one typed bundle for every frame-execution knob.
//!
//! PRs 1–7 accreted execution knobs one setter at a time: worker
//! threads on the render call, `reuse` and `governor` on the builder,
//! `hot_path` buried inside [`GpuConfig`](crate::GpuConfig), tracing on
//! its own switch. A caller tuning a run had to know which layer owned
//! which knob. `FramePolicy` collapses them into one value that both
//! [`SimulatorBuilder::policy`](crate::SimulatorBuilder::policy) and
//! the session API (`rbcd_core::sched::SessionSpec`) consume, with
//! defaults chosen so that `FramePolicy::default()` reproduces the
//! pre-policy behaviour exactly — new fields can be added without
//! breaking existing construction sites (semver-friendly: construct via
//! [`FramePolicy::new`] + `with_*`, not struct literals).
//!
//! One knob intentionally lives elsewhere: fault plans
//! (`rbcd_core::faults::FaultPlan`) corrupt the *trace* before it
//! reaches the GPU, so they attach at the session level
//! (`SessionSpec::with_faults`), not to the simulator.

use crate::broadphase::BroadPhase;
use crate::config::{GovernorConfig, HotPathMode};
use crate::frontend::FrontendMode;

/// Every frame-execution knob in one place: worker threads, temporal
/// tile reuse, intra-tile hot path, geometry front-end, tracing, and
/// the overload governor.
///
/// ```
/// use rbcd_gpu::{FramePolicy, FrontendMode, GovernorConfig, HotPathMode, SimulatorBuilder};
///
/// let policy = FramePolicy::new()
///     .with_workers(2)
///     .with_reuse(true)
///     .with_hot_path(HotPathMode::Mask)
///     .with_frontend(FrontendMode::Incremental)
///     .with_governor(Some(GovernorConfig { frame_budget_cycles: 50_000, ..GovernorConfig::default() }));
/// let sim = SimulatorBuilder::new().policy(policy).build().expect("valid configuration");
/// assert!(sim.reuse_enabled());
/// assert!(sim.governor().is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "a FramePolicy does nothing until passed to SimulatorBuilder::policy or a session"]
pub struct FramePolicy {
    /// Worker threads for the parallel render path (and solo session
    /// runs). Simulated results are bit-identical for any value; the
    /// batch scheduler's shared pool overrides this per run. Clamped to
    /// at least 1 at the point of use.
    pub workers: usize,
    /// Temporal tile reuse (signature-based cross-frame replay); see
    /// [`Simulator::set_reuse`](crate::Simulator::set_reuse) for the
    /// exactness contract. Off by default.
    pub reuse: bool,
    /// Intra-tile rasterizer hot path. `None` (the default) keeps
    /// whatever the [`GpuConfig`](crate::GpuConfig) already carries;
    /// `Some(mode)` overrides it at build time. The two modes are
    /// bit-identical in every result — this knob only trades host
    /// wall-clock.
    pub hot_path: Option<HotPathMode>,
    /// Geometry front-end arrangement; see
    /// [`Simulator::set_frontend`](crate::Simulator::set_frontend). The
    /// two modes are bit-identical in every simulated result — the
    /// incremental front-end only trades host wall-clock (plus the
    /// accounting-only `geom.*` counters). Full rebuild by default.
    pub frontend: FrontendMode,
    /// Structured simulated-cycle tracing; see
    /// [`Simulator::set_tracing`](crate::Simulator::set_tracing). Off
    /// by default (the zero-overhead path).
    pub tracing: bool,
    /// Frame-deadline overload governor; see
    /// [`Simulator::set_governor`](crate::Simulator::set_governor).
    /// `None` (the default) renders every output bit-identical to an
    /// ungoverned simulator.
    pub governor: Option<GovernorConfig>,
    /// Screen-space broad phase (pair-feasibility draw/tile pruning);
    /// see [`Simulator::set_broadphase`](crate::Simulator::set_broadphase)
    /// for the exactness contract. Off by default so golden counters
    /// stay pinned.
    pub broadphase: BroadPhase,
}

impl Default for FramePolicy {
    fn default() -> Self {
        Self {
            workers: 1,
            reuse: false,
            hot_path: None,
            frontend: FrontendMode::Rebuild,
            tracing: false,
            governor: None,
            broadphase: BroadPhase::Off,
        }
    }
}

impl FramePolicy {
    /// The default policy: 1 worker, no reuse, config-selected hot
    /// path, no tracing, no governor — exactly the knobs a freshly
    /// built pre-policy simulator had.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count for parallel rendering.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables or disables temporal tile reuse.
    pub fn with_reuse(mut self, reuse: bool) -> Self {
        self.reuse = reuse;
        self
    }

    /// Overrides the intra-tile hot path (both modes are bit-identical
    /// in results; this selects the host-side implementation).
    pub fn with_hot_path(mut self, mode: HotPathMode) -> Self {
        self.hot_path = Some(mode);
        self
    }

    /// Selects the geometry front-end (both modes are bit-identical in
    /// simulated results; the incremental one caches per-draw geometry
    /// to cut host wall-clock).
    pub fn with_frontend(mut self, frontend: FrontendMode) -> Self {
        self.frontend = frontend;
        self
    }

    /// Enables or disables structured tracing.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Installs (or removes) the overload governor.
    pub fn with_governor(mut self, governor: Option<GovernorConfig>) -> Self {
        self.governor = governor;
        self
    }

    /// Selects the screen-space broad phase. `On` prunes pair-infeasible
    /// draws and tiles on the parallel render path while keeping pairs
    /// and `rbcd.*` counters bit-identical; only raster/scan timing,
    /// energy, and the mask-only `broadphase.*` counters move.
    pub fn with_broadphase(mut self, broadphase: BroadPhase) -> Self {
        self.broadphase = broadphase;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_matches_pre_policy_knobs() {
        let p = FramePolicy::default();
        assert_eq!(p.workers, 1);
        assert!(!p.reuse);
        assert!(p.hot_path.is_none());
        assert_eq!(p.frontend, FrontendMode::Rebuild);
        assert!(!p.tracing);
        assert!(p.governor.is_none());
        assert_eq!(p.broadphase, BroadPhase::Off);
        assert_eq!(FramePolicy::new(), p);
    }

    #[test]
    fn fluent_construction_sets_every_knob() {
        let gov = GovernorConfig { frame_budget_cycles: 1234, ..GovernorConfig::default() };
        let p = FramePolicy::new()
            .with_workers(4)
            .with_reuse(true)
            .with_hot_path(HotPathMode::Reference)
            .with_frontend(FrontendMode::Incremental)
            .with_tracing(true)
            .with_governor(Some(gov))
            .with_broadphase(BroadPhase::On);
        assert_eq!(p.workers, 4);
        assert!(p.reuse);
        assert_eq!(p.hot_path, Some(HotPathMode::Reference));
        assert_eq!(p.frontend, FrontendMode::Incremental);
        assert!(p.tracing);
        assert_eq!(p.governor, Some(gov));
        assert_eq!(p.broadphase, BroadPhase::On);
        assert_eq!(p.with_governor(None).governor, None);
    }
}
