//! Software rasterizer: edge-function scan conversion within a tile.
//!
//! This produces the exact fragment sets the timing model counts and the
//! RBCD unit consumes. Sampling is at pixel centres `(x + 0.5, y + 0.5)`
//! with an inclusive edge test (ties produce a fragment on both adjacent
//! triangles — acceptable for collision purposes, where the paper only
//! needs depth coverage, not exact one-sample ownership).

use crate::command::Facing;
use rbcd_math::Vec3;

/// A triangle in window coordinates: `x`/`y` in pixels, `z` in `[0, 1]`
/// window depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenTriangle {
    /// Window-space vertices.
    pub v: [Vec3; 3],
}

impl ScreenTriangle {
    /// Creates a screen triangle.
    pub const fn new(a: Vec3, b: Vec3, c: Vec3) -> Self {
        Self { v: [a, b, c] }
    }

    /// Twice the signed area in window space. Positive means
    /// counter-clockwise in a Y-up window coordinate system — a
    /// front face under the OpenGL `CCW` convention.
    pub fn signed_area2(&self) -> f32 {
        let [a, b, c] = self.v;
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    }

    /// Facing from the window-space winding, or `None` for a degenerate
    /// (zero-area) triangle.
    pub fn facing(&self) -> Option<Facing> {
        let a2 = self.signed_area2();
        if a2 > 0.0 {
            Some(Facing::Front)
        } else if a2 < 0.0 {
            Some(Facing::Back)
        } else {
            None
        }
    }

    /// Pixel-aligned bounding box `(x0, y0, x1, y1)`, inclusive, clamped
    /// to the given bounds; `None` when entirely outside.
    pub fn pixel_bounds(&self, max_x: u32, max_y: u32) -> Option<(u32, u32, u32, u32)> {
        let xs = [self.v[0].x, self.v[1].x, self.v[2].x];
        let ys = [self.v[0].y, self.v[1].y, self.v[2].y];
        let min_x = xs.iter().fold(f32::INFINITY, |m, &v| m.min(v));
        let max_xf = xs.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let min_y = ys.iter().fold(f32::INFINITY, |m, &v| m.min(v));
        let max_yf = ys.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        if max_xf < 0.0 || max_yf < 0.0 || min_x >= max_x as f32 || min_y >= max_y as f32 {
            return None;
        }
        // A pixel (px, py) samples at centre (px+0.5, py+0.5); the
        // triangle can only cover centres in [min-0.5, max-0.5).
        let x0 = (min_x - 0.5).ceil().max(0.0) as u32;
        let y0 = (min_y - 0.5).ceil().max(0.0) as u32;
        let x1 = ((max_xf - 0.5).floor().max(0.0) as u32).min(max_x - 1);
        let y1 = ((max_yf - 0.5).floor().max(0.0) as u32).min(max_y - 1);
        if x0 > x1 || y0 > y1 {
            return None;
        }
        Some((x0, y0, x1, y1))
    }
}

/// One rasterized fragment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fragment {
    /// Pixel x in window coordinates.
    pub x: u32,
    /// Pixel y in window coordinates.
    pub y: u32,
    /// Interpolated window depth in `[0, 1]` (0 = near plane).
    pub z: f32,
}

/// Rasterizes `tri` restricted to the tile with pixel origin
/// `(tile_x0, tile_y0)` and edge `tile_size`, clipped to the viewport
/// `(vp_w, vp_h)`, appending fragments to `out`.
///
/// Returns the number of fragments produced. Depth is interpolated
/// linearly in window space (the standard Z-buffer interpolation).
pub fn rasterize_triangle_in_tile(
    tri: &ScreenTriangle,
    tile_x0: u32,
    tile_y0: u32,
    tile_size: u32,
    vp_w: u32,
    vp_h: u32,
    out: &mut Vec<Fragment>,
) -> usize {
    let area2 = tri.signed_area2();
    if area2 == 0.0 {
        return 0;
    }
    // Normalize to CCW for the inside test; depth weights use the
    // original barycentrics either way.
    let [a, b, c] = tri.v;
    let inv_area2 = 1.0 / area2;

    let Some((bx0, by0, bx1, by1)) = tri.pixel_bounds(vp_w, vp_h) else {
        return 0;
    };
    let tx1 = (tile_x0 + tile_size - 1).min(vp_w - 1);
    let ty1 = (tile_y0 + tile_size - 1).min(vp_h - 1);
    let x0 = bx0.max(tile_x0);
    let x1 = bx1.min(tx1);
    let y0 = by0.max(tile_y0);
    let y1 = by1.min(ty1);
    if x0 > x1 || y0 > y1 {
        return 0;
    }

    // Incremental edge functions: the full form is
    //   edge(cx, cy, p, q) = (q.x - p.x)*(cy - p.y) - (q.y - p.y)*(cx - p.x)
    // whose first product depends only on the row. Evaluate that product
    // once per row and only the x-dependent product per pixel — the
    // per-pixel operand sequence is *identical* to the full evaluation,
    // so the produced fragments (and every golden counter downstream)
    // stay bit-exact while the hot loop drops half its multiplies.
    let (dy0, dy1, dy2) = (c.y - b.y, a.y - c.y, b.y - a.y);
    let mut count = 0;
    for py in y0..=y1 {
        let cy = py as f32 + 0.5;
        let r0 = (c.x - b.x) * (cy - b.y);
        let r1 = (a.x - c.x) * (cy - c.y);
        let r2 = (b.x - a.x) * (cy - a.y);
        for px in x0..=x1 {
            let cx = px as f32 + 0.5;
            // Barycentric weights scaled by 2·area; sign matches area2.
            let w0 = r0 - dy0 * (cx - b.x);
            let w1 = r1 - dy1 * (cx - c.x);
            let w2 = r2 - dy2 * (cx - a.x);
            let inside = if area2 > 0.0 {
                w0 >= 0.0 && w1 >= 0.0 && w2 >= 0.0
            } else {
                w0 <= 0.0 && w1 <= 0.0 && w2 <= 0.0
            };
            if inside {
                let z = (w0 * a.z + w1 * b.z + w2 * c.z) * inv_area2;
                out.push(Fragment { x: px, y: py, z });
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_screen_tri() -> ScreenTriangle {
        // CCW triangle covering the lower-left half of a 16×16 region.
        ScreenTriangle::new(
            Vec3::new(0.0, 0.0, 0.2),
            Vec3::new(16.0, 0.0, 0.2),
            Vec3::new(0.0, 16.0, 0.2),
        )
    }

    fn raster_all(tri: &ScreenTriangle, size: u32) -> Vec<Fragment> {
        let mut out = Vec::new();
        rasterize_triangle_in_tile(tri, 0, 0, size, size, size, &mut out);
        out
    }

    #[test]
    fn facing_from_winding() {
        let t = full_screen_tri();
        assert_eq!(t.facing(), Some(Facing::Front));
        let flipped = ScreenTriangle::new(t.v[0], t.v[2], t.v[1]);
        assert_eq!(flipped.facing(), Some(Facing::Back));
        let degen = ScreenTriangle::new(t.v[0], t.v[0], t.v[1]);
        assert_eq!(degen.facing(), None);
    }

    #[test]
    fn half_square_coverage() {
        // The CCW right triangle with legs 16 covers ~half of 256 pixels.
        let frags = raster_all(&full_screen_tri(), 16);
        assert!(frags.len() >= 110 && frags.len() <= 136, "got {}", frags.len());
    }

    #[test]
    fn back_face_rasterizes_identically() {
        let t = full_screen_tri();
        let flipped = ScreenTriangle::new(t.v[0], t.v[2], t.v[1]);
        let a = raster_all(&t, 16);
        let b = raster_all(&flipped, 16);
        assert_eq!(a.len(), b.len());
        let mut pa: Vec<(u32, u32)> = a.iter().map(|f| (f.x, f.y)).collect();
        let mut pb: Vec<(u32, u32)> = b.iter().map(|f| (f.x, f.y)).collect();
        pa.sort_unstable();
        pb.sort_unstable();
        assert_eq!(pa, pb);
    }

    #[test]
    fn depth_interpolation_is_linear() {
        // z varies from 0 at x=0 to 1 at x=16 across a full-cover quad
        // split into this triangle.
        let t = ScreenTriangle::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(16.0, 0.0, 1.0),
            Vec3::new(0.0, 16.0, 0.0),
        );
        let frags = raster_all(&t, 16);
        for f in &frags {
            let expected = (f.x as f32 + 0.5) / 16.0;
            assert!((f.z - expected).abs() < 1e-4, "pixel {},{}: z={} expected {}", f.x, f.y, f.z, expected);
        }
    }

    #[test]
    fn tile_restriction() {
        let t = full_screen_tri();
        let mut out = Vec::new();
        rasterize_triangle_in_tile(&t, 8, 0, 8, 16, 16, &mut out);
        assert!(out.iter().all(|f| f.x >= 8 && f.x < 16 && f.y < 8));
        assert!(!out.is_empty());
    }

    #[test]
    fn tiles_partition_coverage() {
        // Sum of fragments over a 2×2 tiling equals whole-screen count.
        let t = full_screen_tri();
        let whole = raster_all(&t, 16).len();
        let mut total = 0;
        for ty in [0u32, 8] {
            for tx in [0u32, 8] {
                let mut out = Vec::new();
                rasterize_triangle_in_tile(&t, tx, ty, 8, 16, 16, &mut out);
                total += out.len();
            }
        }
        assert_eq!(total, whole);
    }

    #[test]
    fn offscreen_triangle_produces_nothing() {
        let t = ScreenTriangle::new(
            Vec3::new(-30.0, -30.0, 0.5),
            Vec3::new(-20.0, -30.0, 0.5),
            Vec3::new(-30.0, -20.0, 0.5),
        );
        assert!(raster_all(&t, 16).is_empty());
    }

    #[test]
    fn tiny_triangle_between_samples_is_empty() {
        // Smaller than a pixel and away from any pixel centre.
        let t = ScreenTriangle::new(
            Vec3::new(3.1, 3.1, 0.5),
            Vec3::new(3.3, 3.1, 0.5),
            Vec3::new(3.1, 3.3, 0.5),
        );
        assert!(raster_all(&t, 16).is_empty());
    }

    #[test]
    fn incremental_edges_match_full_reevaluation_bitwise() {
        // The row-hoisted edge functions must reproduce the naive
        // per-pixel evaluation *bit for bit* — same fragments, same
        // depths — or every pinned golden counter downstream drifts.
        let edge = |px: f32, py: f32, p: Vec3, q: Vec3| {
            (q.x - p.x) * (py - p.y) - (q.y - p.y) * (px - p.x)
        };
        let tris = [
            full_screen_tri(),
            ScreenTriangle::new(
                Vec3::new(1.3, 0.7, 0.11),
                Vec3::new(14.9, 2.2, 0.42),
                Vec3::new(6.5, 15.1, 0.93),
            ),
            ScreenTriangle::new(
                Vec3::new(9.8, 1.1, 0.5),
                Vec3::new(2.4, 13.6, 0.2),
                Vec3::new(15.7, 8.3, 0.8),
            ),
        ];
        for tri in &tris {
            let got = raster_all(tri, 16);
            let [a, b, c] = tri.v;
            let area2 = tri.signed_area2();
            let inv_area2 = 1.0 / area2;
            let mut want = Vec::new();
            for py in 0..16u32 {
                let cy = py as f32 + 0.5;
                for px in 0..16u32 {
                    let cx = px as f32 + 0.5;
                    let w0 = edge(cx, cy, b, c);
                    let w1 = edge(cx, cy, c, a);
                    let w2 = edge(cx, cy, a, b);
                    let inside = if area2 > 0.0 {
                        w0 >= 0.0 && w1 >= 0.0 && w2 >= 0.0
                    } else {
                        w0 <= 0.0 && w1 <= 0.0 && w2 <= 0.0
                    };
                    if inside {
                        let z = (w0 * a.z + w1 * b.z + w2 * c.z) * inv_area2;
                        want.push(Fragment { x: px, y: py, z });
                    }
                }
            }
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!((g.x, g.y), (w.x, w.y));
                assert_eq!(g.z.to_bits(), w.z.to_bits(), "depth must be bit-identical");
            }
        }
    }

    #[test]
    fn pixel_bounds_clamped() {
        let t = ScreenTriangle::new(
            Vec3::new(-5.0, -5.0, 0.0),
            Vec3::new(40.0, -5.0, 0.0),
            Vec3::new(-5.0, 40.0, 0.0),
        );
        let (x0, y0, x1, y1) = t.pixel_bounds(16, 16).unwrap();
        assert_eq!((x0, y0, x1, y1), (0, 0, 15, 15));
    }
}
