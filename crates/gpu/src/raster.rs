//! Software rasterizer: edge-function scan conversion within a tile.
//!
//! This produces the exact fragment sets the timing model counts and the
//! RBCD unit consumes. Sampling is at pixel centres `(x + 0.5, y + 0.5)`
//! with an inclusive edge test (ties produce a fragment on both adjacent
//! triangles — acceptable for collision purposes, where the paper only
//! needs depth coverage, not exact one-sample ownership).

use crate::command::Facing;
use rbcd_math::Vec3;

/// A triangle in window coordinates: `x`/`y` in pixels, `z` in `[0, 1]`
/// window depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenTriangle {
    /// Window-space vertices.
    pub v: [Vec3; 3],
}

impl ScreenTriangle {
    /// Creates a screen triangle.
    pub const fn new(a: Vec3, b: Vec3, c: Vec3) -> Self {
        Self { v: [a, b, c] }
    }

    /// Twice the signed area in window space. Positive means
    /// counter-clockwise in a Y-up window coordinate system — a
    /// front face under the OpenGL `CCW` convention.
    pub fn signed_area2(&self) -> f32 {
        let [a, b, c] = self.v;
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    }

    /// Facing from the window-space winding, or `None` for a degenerate
    /// (zero-area) triangle.
    pub fn facing(&self) -> Option<Facing> {
        let a2 = self.signed_area2();
        if a2 > 0.0 {
            Some(Facing::Front)
        } else if a2 < 0.0 {
            Some(Facing::Back)
        } else {
            None
        }
    }

    /// Pixel-aligned bounding box `(x0, y0, x1, y1)`, inclusive, clamped
    /// to the given bounds; `None` when entirely outside.
    pub fn pixel_bounds(&self, max_x: u32, max_y: u32) -> Option<(u32, u32, u32, u32)> {
        let xs = [self.v[0].x, self.v[1].x, self.v[2].x];
        let ys = [self.v[0].y, self.v[1].y, self.v[2].y];
        let min_x = xs.iter().fold(f32::INFINITY, |m, &v| m.min(v));
        let max_xf = xs.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let min_y = ys.iter().fold(f32::INFINITY, |m, &v| m.min(v));
        let max_yf = ys.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        if max_xf < 0.0 || max_yf < 0.0 || min_x >= max_x as f32 || min_y >= max_y as f32 {
            return None;
        }
        // A pixel (px, py) samples at centre (px+0.5, py+0.5); the
        // triangle can only cover centres in [min-0.5, max-0.5).
        let x0 = (min_x - 0.5).ceil().max(0.0) as u32;
        let y0 = (min_y - 0.5).ceil().max(0.0) as u32;
        let x1 = ((max_xf - 0.5).floor().max(0.0) as u32).min(max_x - 1);
        let y1 = ((max_yf - 0.5).floor().max(0.0) as u32).min(max_y - 1);
        if x0 > x1 || y0 > y1 {
            return None;
        }
        Some((x0, y0, x1, y1))
    }
}

/// One rasterized fragment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fragment {
    /// Pixel x in window coordinates.
    pub x: u32,
    /// Pixel y in window coordinates.
    pub y: u32,
    /// Interpolated window depth in `[0, 1]` (0 = near plane).
    pub z: f32,
}

/// Rasterizes `tri` restricted to the tile with pixel origin
/// `(tile_x0, tile_y0)` and edge `tile_size`, clipped to the viewport
/// `(vp_w, vp_h)`, appending fragments to `out`.
///
/// Returns the number of fragments produced. Depth is interpolated
/// linearly in window space (the standard Z-buffer interpolation).
pub fn rasterize_triangle_in_tile(
    tri: &ScreenTriangle,
    tile_x0: u32,
    tile_y0: u32,
    tile_size: u32,
    vp_w: u32,
    vp_h: u32,
    out: &mut Vec<Fragment>,
) -> usize {
    let area2 = tri.signed_area2();
    if area2 == 0.0 {
        return 0;
    }
    // Normalize to CCW for the inside test; depth weights use the
    // original barycentrics either way.
    let [a, b, c] = tri.v;
    let inv_area2 = 1.0 / area2;

    let Some((bx0, by0, bx1, by1)) = tri.pixel_bounds(vp_w, vp_h) else {
        return 0;
    };
    let tx1 = (tile_x0 + tile_size - 1).min(vp_w - 1);
    let ty1 = (tile_y0 + tile_size - 1).min(vp_h - 1);
    let x0 = bx0.max(tile_x0);
    let x1 = bx1.min(tx1);
    let y0 = by0.max(tile_y0);
    let y1 = by1.min(ty1);
    if x0 > x1 || y0 > y1 {
        return 0;
    }

    // Incremental edge functions: the full form is
    //   edge(cx, cy, p, q) = (q.x - p.x)*(cy - p.y) - (q.y - p.y)*(cx - p.x)
    // whose first product depends only on the row. Evaluate that product
    // once per row and only the x-dependent product per pixel — the
    // per-pixel operand sequence is *identical* to the full evaluation,
    // so the produced fragments (and every golden counter downstream)
    // stay bit-exact while the hot loop drops half its multiplies.
    let (dy0, dy1, dy2) = (c.y - b.y, a.y - c.y, b.y - a.y);
    let mut count = 0;
    for py in y0..=y1 {
        let cy = py as f32 + 0.5;
        let r0 = (c.x - b.x) * (cy - b.y);
        let r1 = (a.x - c.x) * (cy - c.y);
        let r2 = (b.x - a.x) * (cy - a.y);
        for px in x0..=x1 {
            let cx = px as f32 + 0.5;
            // Barycentric weights scaled by 2·area; sign matches area2.
            let w0 = r0 - dy0 * (cx - b.x);
            let w1 = r1 - dy1 * (cx - c.x);
            let w2 = r2 - dy2 * (cx - a.x);
            let inside = if area2 > 0.0 {
                w0 >= 0.0 && w1 >= 0.0 && w2 >= 0.0
            } else {
                w0 <= 0.0 && w1 <= 0.0 && w2 <= 0.0
            };
            if inside {
                let z = (w0 * a.z + w1 * b.z + w2 * c.z) * inv_area2;
                out.push(Fragment { x: px, y: py, z });
                count += 1;
            }
        }
    }
    count
}

/// Fragment and per-row coverage summary produced by
/// [`rasterize_triangle_in_tile_masked`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaskRasterOut {
    /// Fragments appended to the output vector (same meaning as the
    /// return value of [`rasterize_triangle_in_tile`]).
    pub fragments: usize,
    /// Rows of the clipped bounding box resolved as empty in O(1) —
    /// pixels the reference path would have edge-tested one by one.
    pub rows_empty: u64,
    /// Rows resolved as fully covered in O(1).
    pub rows_full: u64,
}

/// Coordinate magnitude beyond which the span solver falls back to the
/// reference path: products of larger operands can overflow `f32` to
/// infinity (or involve NaN), which breaks the monotonicity the binary
/// search depends on.
const SPAN_COORD_LIMIT: f32 = 1e18;

/// Coverage-mask rasterization: the same fragments, in the same order,
/// with bit-identical depths as [`rasterize_triangle_in_tile`] — but
/// resolved per row instead of per pixel.
///
/// For a fixed row, each edge function `w(cx) = r - dy·(cx - pₓ)` is a
/// monotone function of the pixel centre `cx` under IEEE
/// round-to-nearest (adding a constant, multiplying by a constant, and
/// subtracting from a constant are each monotone), so each edge's
/// inside set over the row is a contiguous prefix or suffix of pixels.
/// Two evaluations of the *exact* reference predicate at the row ends
/// classify it, and when the ends disagree a binary search on the same
/// predicate finds the exact boundary pixel. Intersecting the three
/// intervals yields the row's coverage span, which is emitted as a
/// bitmask iterated via `trailing_zeros`; fully-covered and empty rows
/// therefore cost O(1) instead of O(row width). Depth for each emitted
/// fragment is recomputed with the identical operand sequence the
/// reference uses, so `f32` bit patterns are unchanged.
///
/// Triangles with non-finite or astronomically large window
/// coordinates (where overflow could break monotonicity) delegate to
/// the reference path, keeping exactness unconditional.
pub fn rasterize_triangle_in_tile_masked(
    tri: &ScreenTriangle,
    tile_x0: u32,
    tile_y0: u32,
    tile_size: u32,
    vp_w: u32,
    vp_h: u32,
    out: &mut Vec<Fragment>,
) -> MaskRasterOut {
    rasterize_triangle_in_tile_masked_sink(tri, tile_x0, tile_y0, tile_size, vp_w, vp_h, &mut |f| {
        out.push(f)
    })
}

/// Like [`rasterize_triangle_in_tile_masked`] but streams each fragment
/// into `sink` instead of appending to a vector, so callers can fuse
/// Early-Z and collision capture into the emission loop without an
/// intermediate buffer. Fragment sequence and depth bit patterns are
/// identical to the buffered form.
pub fn rasterize_triangle_in_tile_masked_sink(
    tri: &ScreenTriangle,
    tile_x0: u32,
    tile_y0: u32,
    tile_size: u32,
    vp_w: u32,
    vp_h: u32,
    sink: &mut impl FnMut(Fragment),
) -> MaskRasterOut {
    rasterize_triangle_in_tile_masked_rows(
        tri,
        tile_x0,
        tile_y0,
        tile_size,
        vp_w,
        vp_h,
        &mut |py, s, zs| {
            // Rebuild the span's mask word and walk its set bits — the
            // canonical per-fragment emission order of the mask path.
            let span = zs.len() as u32;
            let mut mask: u64 =
                if span == 64 { u64::MAX } else { (1u64 << span) - 1 };
            while mask != 0 {
                let k = mask.trailing_zeros();
                mask &= mask - 1;
                sink(Fragment { x: s + k, y: py, z: zs[k as usize] });
            }
        },
    )
}

/// The row-span form of the mask rasterizer: `row_sink` receives
/// `(py, s, zs)` for each covered span — pixels `s..s + zs.len()` of
/// row `py`, with `zs[i]` the bit-exact reference depth of pixel
/// `s + i`. Spans are capped at 64 pixels (one mask word). This is the
/// engine behind [`rasterize_triangle_in_tile_masked_sink`]; the
/// simulator's fused hot path consumes it directly so Early-Z and
/// collision capture can run as contiguous slice loops.
pub fn rasterize_triangle_in_tile_masked_rows(
    tri: &ScreenTriangle,
    tile_x0: u32,
    tile_y0: u32,
    tile_size: u32,
    vp_w: u32,
    vp_h: u32,
    row_sink: &mut impl FnMut(u32, u32, &[f32]),
) -> MaskRasterOut {
    if !tri.v.iter().all(|p| {
        p.x.is_finite() && p.y.is_finite() && p.x.abs() <= SPAN_COORD_LIMIT && p.y.abs() <= SPAN_COORD_LIMIT
    }) {
        // Rare fallback (non-finite coordinates survive only until draw
        // quarantine): buffer through the reference path, then drain.
        let mut tmp = Vec::new();
        let fragments =
            rasterize_triangle_in_tile(tri, tile_x0, tile_y0, tile_size, vp_w, vp_h, &mut tmp);
        let mut i = 0;
        while i < tmp.len() {
            // Group the buffered fragments into maximal contiguous
            // same-row runs so the fallback honours the span contract.
            let mut j = i + 1;
            while j < tmp.len() && tmp[j].y == tmp[i].y && tmp[j].x == tmp[j - 1].x + 1 && j - i < 64
            {
                j += 1;
            }
            let zs: Vec<f32> = tmp[i..j].iter().map(|f| f.z).collect();
            row_sink(tmp[i].y, tmp[i].x, &zs);
            i = j;
        }
        return MaskRasterOut { fragments, rows_empty: 0, rows_full: 0 };
    }
    let mut res = MaskRasterOut::default();
    let area2 = tri.signed_area2();
    if area2 == 0.0 {
        return res;
    }
    let [a, b, c] = tri.v;
    let inv_area2 = 1.0 / area2;

    let Some((bx0, by0, bx1, by1)) = tri.pixel_bounds(vp_w, vp_h) else {
        return res;
    };
    let tx1 = (tile_x0 + tile_size - 1).min(vp_w - 1);
    let ty1 = (tile_y0 + tile_size - 1).min(vp_h - 1);
    let x0 = bx0.max(tile_x0);
    let x1 = bx1.min(tx1);
    let y0 = by0.max(tile_y0);
    let y1 = by1.min(ty1);
    if x0 > x1 || y0 > y1 {
        return res;
    }

    let (dy0, dy1, dy2) = (c.y - b.y, a.y - c.y, b.y - a.y);
    let ccw = area2 > 0.0;
    // The reference predicate for one edge at pixel `px`: identical
    // operand sequence, identical decision.
    #[inline(always)]
    fn inside(r: f32, dy: f32, px_ref: f32, ccw: bool, px: u32) -> bool {
        let w = r - dy * ((px as f32 + 0.5) - px_ref);
        if ccw {
            w >= 0.0
        } else {
            w <= 0.0
        }
    }

    // Per-triangle row-loop invariants, hoisted. Each cached value is
    // produced by the *same* operation on the *same* operands the
    // reference evaluates in its loop — caching cannot change a single
    // bit, it only stops the hot loop recomputing constants:
    //   ex*     the x-extent factors of the r terms,
    //   k{l,h}* the `(cx - pₓ)` offsets at the row's two endpoints.
    let (ex0, ex1, ex2) = (c.x - b.x, a.x - c.x, b.x - a.x);
    let cl = x0 as f32 + 0.5;
    let ch = x1 as f32 + 0.5;
    let (kl0, kl1, kl2) = (cl - b.x, cl - c.x, cl - a.x);
    let (kh0, kh1, kh2) = (ch - b.x, ch - c.x, ch - a.x);
    // Depth staging buffer for one mask word, reused across rows so the
    // hot loop never re-initialises it.
    let mut zrow = [0.0f32; 64];

    // Refine the running span `[lo, hi]` by one edge whose row
    // endpoints disagree. `w(cx)` is IEEE-monotone along the row, so
    // the edge's inside set is a contiguous prefix or suffix with
    // exactly one transition between `x0` and `x1`: bisect for it with
    // the exact predicate. Every probe is the reference test itself —
    // no analytic prediction, no division, and any exact search lands
    // on the same boundary bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn refine(
        r: f32,
        dy: f32,
        px_ref: f32,
        pl: bool,
        ccw: bool,
        x0: u32,
        x1: u32,
        lo: &mut u32,
        hi: &mut u32,
    ) {
        // Invariant: inside(a) == pl, inside(b) == ph != pl. The body
        // is select-only (no data-dependent branch — probe outcomes on
        // a boundary are coin flips the predictor cannot learn), and
        // once `b - a == 1` further iterations probe `a` itself and
        // change nothing, so the loop is idempotent past convergence.
        let mut a = x0;
        let mut b = x1;
        while b - a > 1 {
            let mid = a + (b - a) / 2;
            let below = inside(r, dy, px_ref, ccw, mid) == pl;
            a = if below { mid } else { a };
            b = if below { b } else { mid };
        }
        let l = a;
        // `l` is the last pixel (from `x0`) still matching `pl`; the
        // boundary sits between l and l+1.
        if pl {
            *hi = (*hi).min(l); // prefix-true: keep [x0, last-true]
        } else {
            *lo = (*lo).max(l + 1); // suffix-true: keep [first-true, x1]
        }
    }

    // Windows that fit one 16-lane sweep (always, at the paper's
    // 16×16 tile size) are classified by evaluating the exact edge
    // predicate at all candidate pixels in a fixed-trip, branch-free
    // loop the compiler can pack into SIMD lanes: each lane runs the
    // reference operand sequence `r - dy·(cx - pₓ)`, and the two-sided
    // test is folded to one comparison via `sgn·w ≥ 0` with
    // `sgn = ±1.0` — an exact sign flip, so every lane decides
    // bit-identically to the reference (including ±0 and NaN). Lanes
    // past `x1` are computed harmlessly and masked off. The lane count
    // (4/8/16) is picked once per triangle from the window width —
    // most triangles span only a few pixels per row, and sweeping 16
    // lanes for a 3-pixel window quadruples the predicate work. The
    // analytic endpoint classification below remains for wider windows
    // (tile sizes above 16).
    // The sweep also interpolates depth per lane in the same
    // fixed-trip loop, reusing the lane's `w` values: the reference
    // computes z from identical `w` expressions, so the lane values
    // are bit-equal and the separate per-span depth pass disappears.
    // Lanes outside the emitted span hold garbage depths that are
    // never read.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn lane_sweep<const LANES: usize>(
        x0: u32,
        sgn: f32,
        (r0, r1, r2): (f32, f32, f32),
        (dy0, dy1, dy2): (f32, f32, f32),
        (bx, cx1, ax): (f32, f32, f32),
        (az, bz, cz): (f32, f32, f32),
        inv_area2: f32,
        zs: &mut [f32; 16],
    ) -> u32 {
        let mut hits = [false; LANES];
        for (i, (hit, z)) in hits.iter_mut().zip(zs.iter_mut()).enumerate() {
            let cx = (x0 + i as u32) as f32 + 0.5;
            let w0 = r0 - dy0 * (cx - bx);
            let w1 = r1 - dy1 * (cx - cx1);
            let w2 = r2 - dy2 * (cx - ax);
            *hit = (sgn * w0 >= 0.0) & (sgn * w1 >= 0.0) & (sgn * w2 >= 0.0);
            *z = (w0 * az + w1 * bz + w2 * cz) * inv_area2;
        }
        let mut bits: u32 = 0;
        for (i, &h) in hits.iter().enumerate() {
            bits |= (h as u32) << i;
        }
        bits
    }
    // 0 = no sweep (window wider than 16), else the lane count.
    let lanes: u32 = match x1 - x0 {
        0..=3 => 4,
        4..=7 => 8,
        8..=15 => 16,
        _ => 0,
    };
    let sgn = if ccw { 1.0f32 } else { -1.0f32 };

    for py in y0..=y1 {
        let cy = py as f32 + 0.5;
        let r0 = ex0 * (cy - b.y);
        let r1 = ex1 * (cy - c.y);
        let r2 = ex2 * (cy - a.y);

        let (lo, hi);
        let mut zlane = [0.0f32; 16];
        if lanes != 0 {
            let rs = (r0, r1, r2);
            let dys = (dy0, dy1, dy2);
            let pxs = (b.x, c.x, a.x);
            let pzs = (a.z, b.z, c.z);
            let mut bits = match lanes {
                4 => lane_sweep::<4>(x0, sgn, rs, dys, pxs, pzs, inv_area2, &mut zlane),
                8 => lane_sweep::<8>(x0, sgn, rs, dys, pxs, pzs, inv_area2, &mut zlane),
                _ => lane_sweep::<16>(x0, sgn, rs, dys, pxs, pzs, inv_area2, &mut zlane),
            };
            bits &= (1u32 << (x1 - x0 + 1)) - 1;
            if bits == 0 {
                res.rows_empty += 1;
                continue;
            }
            // Contiguity (the monotone prefix/suffix argument below)
            // makes min/max set bit the exact span bounds.
            lo = x0 + bits.trailing_zeros();
            hi = x0 + (31 - bits.leading_zeros());
        } else {
            // Classify all three edges at both row endpoints: `w` at
            // the endpoint is `r - dy·k` with the hoisted offsets —
            // bit-equal to `inside(..)` at `x0`/`x1`.
            let (pl0, ph0, pl1, ph1, pl2, ph2) = if ccw {
                (
                    r0 - dy0 * kl0 >= 0.0,
                    r0 - dy0 * kh0 >= 0.0,
                    r1 - dy1 * kl1 >= 0.0,
                    r1 - dy1 * kh1 >= 0.0,
                    r2 - dy2 * kl2 >= 0.0,
                    r2 - dy2 * kh2 >= 0.0,
                )
            } else {
                (
                    r0 - dy0 * kl0 <= 0.0,
                    r0 - dy0 * kh0 <= 0.0,
                    r1 - dy1 * kl1 <= 0.0,
                    r1 - dy1 * kh1 <= 0.0,
                    r2 - dy2 * kl2 <= 0.0,
                    r2 - dy2 * kh2 <= 0.0,
                )
            };
            if !(pl0 | ph0) | !(pl1 | ph1) | !(pl2 | ph2) {
                res.rows_empty += 1;
                continue;
            }

            // Intersect the three per-edge half-row intervals. Each
            // edge's inside set over the row is a contiguous prefix or
            // suffix (the monotonicity argument above), so an edge
            // whose endpoints agree (both inside) covers the whole row
            // and constrains nothing; an edge whose endpoints disagree
            // contributes a prefix `[x0, l]` or suffix `[l+1, x1]`
            // found by `refine`.
            let mut l = x0;
            let mut h = x1;
            if pl0 != ph0 {
                refine(r0, dy0, b.x, pl0, ccw, x0, x1, &mut l, &mut h);
            }
            if pl1 != ph1 {
                refine(r1, dy1, c.x, pl1, ccw, x0, x1, &mut l, &mut h);
            }
            if pl2 != ph2 {
                refine(r2, dy2, a.x, pl2, ccw, x0, x1, &mut l, &mut h);
            }
            // Disjoint prefix/suffix constraints leave nothing — the
            // same rows the sequential interval-narrowing would have
            // flagged via a later edge testing outside at both
            // narrowed endpoints.
            if l > h {
                res.rows_empty += 1;
                continue;
            }
            lo = l;
            hi = h;
        }
        if lo == x0 && hi == x1 {
            res.rows_full += 1;
        }

        // Emit the span in mask-word granules (one u64 word per 64
        // pixels); the per-fragment wrapper materialises each granule
        // as a bitmask and walks it via trailing_zeros.
        let mut base = x0;
        while base <= x1 {
            let width = (x1 - base + 1).min(64);
            let s = lo.max(base);
            let e = hi.min(base + width - 1);
            if s > e {
                base += width;
                continue;
            }
            let span = (e - s + 1) as usize;
            let zs: &[f32] = if lanes != 0 {
                // Sweep rows already interpolated depth per lane.
                &zlane[(s - x0) as usize..][..span]
            } else {
                // Depth pre-pass: the interpolation below is
                // elementwise and branch-free, so it vectorizes — and
                // every lane runs the reference's exact operand
                // sequence, which IEEE semantics keep bit-identical
                // whether evaluated scalar or packed.
                for (i, slot) in zrow[..span].iter_mut().enumerate() {
                    let cx = (s + i as u32) as f32 + 0.5;
                    let w0 = r0 - dy0 * (cx - b.x);
                    let w1 = r1 - dy1 * (cx - c.x);
                    let w2 = r2 - dy2 * (cx - a.x);
                    *slot = (w0 * a.z + w1 * b.z + w2 * c.z) * inv_area2;
                }
                &zrow[..span]
            };
            row_sink(py, s, zs);
            res.fragments += span;
            base += width;
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_screen_tri() -> ScreenTriangle {
        // CCW triangle covering the lower-left half of a 16×16 region.
        ScreenTriangle::new(
            Vec3::new(0.0, 0.0, 0.2),
            Vec3::new(16.0, 0.0, 0.2),
            Vec3::new(0.0, 16.0, 0.2),
        )
    }

    fn raster_all(tri: &ScreenTriangle, size: u32) -> Vec<Fragment> {
        let mut out = Vec::new();
        rasterize_triangle_in_tile(tri, 0, 0, size, size, size, &mut out);
        out
    }

    #[test]
    fn facing_from_winding() {
        let t = full_screen_tri();
        assert_eq!(t.facing(), Some(Facing::Front));
        let flipped = ScreenTriangle::new(t.v[0], t.v[2], t.v[1]);
        assert_eq!(flipped.facing(), Some(Facing::Back));
        let degen = ScreenTriangle::new(t.v[0], t.v[0], t.v[1]);
        assert_eq!(degen.facing(), None);
    }

    #[test]
    fn half_square_coverage() {
        // The CCW right triangle with legs 16 covers ~half of 256 pixels.
        let frags = raster_all(&full_screen_tri(), 16);
        assert!(frags.len() >= 110 && frags.len() <= 136, "got {}", frags.len());
    }

    #[test]
    fn back_face_rasterizes_identically() {
        let t = full_screen_tri();
        let flipped = ScreenTriangle::new(t.v[0], t.v[2], t.v[1]);
        let a = raster_all(&t, 16);
        let b = raster_all(&flipped, 16);
        assert_eq!(a.len(), b.len());
        let mut pa: Vec<(u32, u32)> = a.iter().map(|f| (f.x, f.y)).collect();
        let mut pb: Vec<(u32, u32)> = b.iter().map(|f| (f.x, f.y)).collect();
        pa.sort_unstable();
        pb.sort_unstable();
        assert_eq!(pa, pb);
    }

    #[test]
    fn depth_interpolation_is_linear() {
        // z varies from 0 at x=0 to 1 at x=16 across a full-cover quad
        // split into this triangle.
        let t = ScreenTriangle::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(16.0, 0.0, 1.0),
            Vec3::new(0.0, 16.0, 0.0),
        );
        let frags = raster_all(&t, 16);
        for f in &frags {
            let expected = (f.x as f32 + 0.5) / 16.0;
            assert!((f.z - expected).abs() < 1e-4, "pixel {},{}: z={} expected {}", f.x, f.y, f.z, expected);
        }
    }

    #[test]
    fn tile_restriction() {
        let t = full_screen_tri();
        let mut out = Vec::new();
        rasterize_triangle_in_tile(&t, 8, 0, 8, 16, 16, &mut out);
        assert!(out.iter().all(|f| f.x >= 8 && f.x < 16 && f.y < 8));
        assert!(!out.is_empty());
    }

    #[test]
    fn tiles_partition_coverage() {
        // Sum of fragments over a 2×2 tiling equals whole-screen count.
        let t = full_screen_tri();
        let whole = raster_all(&t, 16).len();
        let mut total = 0;
        for ty in [0u32, 8] {
            for tx in [0u32, 8] {
                let mut out = Vec::new();
                rasterize_triangle_in_tile(&t, tx, ty, 8, 16, 16, &mut out);
                total += out.len();
            }
        }
        assert_eq!(total, whole);
    }

    #[test]
    fn offscreen_triangle_produces_nothing() {
        let t = ScreenTriangle::new(
            Vec3::new(-30.0, -30.0, 0.5),
            Vec3::new(-20.0, -30.0, 0.5),
            Vec3::new(-30.0, -20.0, 0.5),
        );
        assert!(raster_all(&t, 16).is_empty());
    }

    #[test]
    fn tiny_triangle_between_samples_is_empty() {
        // Smaller than a pixel and away from any pixel centre.
        let t = ScreenTriangle::new(
            Vec3::new(3.1, 3.1, 0.5),
            Vec3::new(3.3, 3.1, 0.5),
            Vec3::new(3.1, 3.3, 0.5),
        );
        assert!(raster_all(&t, 16).is_empty());
    }

    #[test]
    fn incremental_edges_match_full_reevaluation_bitwise() {
        // The row-hoisted edge functions must reproduce the naive
        // per-pixel evaluation *bit for bit* — same fragments, same
        // depths — or every pinned golden counter downstream drifts.
        let edge = |px: f32, py: f32, p: Vec3, q: Vec3| {
            (q.x - p.x) * (py - p.y) - (q.y - p.y) * (px - p.x)
        };
        let tris = [
            full_screen_tri(),
            ScreenTriangle::new(
                Vec3::new(1.3, 0.7, 0.11),
                Vec3::new(14.9, 2.2, 0.42),
                Vec3::new(6.5, 15.1, 0.93),
            ),
            ScreenTriangle::new(
                Vec3::new(9.8, 1.1, 0.5),
                Vec3::new(2.4, 13.6, 0.2),
                Vec3::new(15.7, 8.3, 0.8),
            ),
        ];
        for tri in &tris {
            let got = raster_all(tri, 16);
            let [a, b, c] = tri.v;
            let area2 = tri.signed_area2();
            let inv_area2 = 1.0 / area2;
            let mut want = Vec::new();
            for py in 0..16u32 {
                let cy = py as f32 + 0.5;
                for px in 0..16u32 {
                    let cx = px as f32 + 0.5;
                    let w0 = edge(cx, cy, b, c);
                    let w1 = edge(cx, cy, c, a);
                    let w2 = edge(cx, cy, a, b);
                    let inside = if area2 > 0.0 {
                        w0 >= 0.0 && w1 >= 0.0 && w2 >= 0.0
                    } else {
                        w0 <= 0.0 && w1 <= 0.0 && w2 <= 0.0
                    };
                    if inside {
                        let z = (w0 * a.z + w1 * b.z + w2 * c.z) * inv_area2;
                        want.push(Fragment { x: px, y: py, z });
                    }
                }
            }
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!((g.x, g.y), (w.x, w.y));
                assert_eq!(g.z.to_bits(), w.z.to_bits(), "depth must be bit-identical");
            }
        }
    }

    #[test]
    fn masked_path_matches_reference_bitwise() {
        // Same fragments, same order, same depth bits — the whole
        // exactness contract of the span solver, on triangles that
        // exercise full rows, partial rows, slivers, and both windings.
        let tris = [
            full_screen_tri(),
            ScreenTriangle::new(
                Vec3::new(1.3, 0.7, 0.11),
                Vec3::new(14.9, 2.2, 0.42),
                Vec3::new(6.5, 15.1, 0.93),
            ),
            ScreenTriangle::new(
                Vec3::new(9.8, 1.1, 0.5),
                Vec3::new(2.4, 13.6, 0.2),
                Vec3::new(15.7, 8.3, 0.8),
            ),
            // On-edge: vertical edge passes exactly through centres.
            ScreenTriangle::new(
                Vec3::new(2.5, 0.5, 0.1),
                Vec3::new(2.5, 15.5, 0.1),
                Vec3::new(12.5, 8.5, 0.9),
            ),
            // Sub-pixel sliver between samples.
            ScreenTriangle::new(
                Vec3::new(3.1, 3.1, 0.5),
                Vec3::new(3.3, 3.1, 0.5),
                Vec3::new(3.1, 3.3, 0.5),
            ),
        ];
        for tri in &tris {
            for flip in [false, true] {
                let t = if flip {
                    ScreenTriangle::new(tri.v[0], tri.v[2], tri.v[1])
                } else {
                    *tri
                };
                let mut want = Vec::new();
                let n = rasterize_triangle_in_tile(&t, 0, 0, 16, 16, 16, &mut want);
                let mut got = Vec::new();
                let m = rasterize_triangle_in_tile_masked(&t, 0, 0, 16, 16, 16, &mut got);
                assert_eq!(n, m.fragments);
                assert_eq!(want.len(), got.len());
                for (w, g) in want.iter().zip(&got) {
                    assert_eq!((w.x, w.y), (g.x, g.y));
                    assert_eq!(w.z.to_bits(), g.z.to_bits(), "depth must be bit-identical");
                }
            }
        }
    }

    #[test]
    fn masked_path_counts_empty_and_full_rows() {
        // A CCW quad-half covering x < 8 exactly: every row of the left
        // half-tile restricted to [0, 7] is full.
        let t = ScreenTriangle::new(
            Vec3::new(0.0, 0.0, 0.2),
            Vec3::new(8.0, 0.0, 0.2),
            Vec3::new(0.0, 16.0, 0.2),
        );
        let mut out = Vec::new();
        let m = rasterize_triangle_in_tile_masked(&t, 0, 0, 16, 16, 16, &mut out);
        assert!(m.fragments > 0);
        assert!(m.rows_full > 0, "expected some O(1) fully-covered rows");
        // Needle: near its apex the triangle narrows to less than a
        // pixel and slips between the centres, so the top bounding-box
        // rows exist but cover nothing.
        let needle = ScreenTriangle::new(
            Vec3::new(0.2, 0.0, 0.5),
            Vec3::new(0.8, 0.0, 0.5),
            Vec3::new(0.45, 15.9, 0.5),
        );
        let mut out = Vec::new();
        let m = rasterize_triangle_in_tile_masked(&needle, 0, 0, 16, 16, 16, &mut out);
        assert!(m.fragments > 0);
        assert!(m.rows_empty > 0, "expected some O(1) empty rows near the apex");
    }

    #[test]
    fn masked_path_falls_back_on_non_finite_coordinates() {
        let t = ScreenTriangle::new(
            Vec3::new(f32::NAN, 0.0, 0.2),
            Vec3::new(16.0, 0.0, 0.2),
            Vec3::new(0.0, 16.0, 0.2),
        );
        let mut want = Vec::new();
        let n = rasterize_triangle_in_tile(&t, 0, 0, 16, 16, 16, &mut want);
        let mut got = Vec::new();
        let m = rasterize_triangle_in_tile_masked(&t, 0, 0, 16, 16, 16, &mut got);
        assert_eq!(n, m.fragments);
        assert_eq!((m.rows_empty, m.rows_full), (0, 0));
        assert_eq!(want.len(), got.len());
    }

    #[test]
    fn pixel_bounds_clamped() {
        let t = ScreenTriangle::new(
            Vec3::new(-5.0, -5.0, 0.0),
            Vec3::new(40.0, -5.0, 0.0),
            Vec3::new(-5.0, 40.0, 0.0),
        );
        let (x0, y0, x1, y1) = t.pixel_bounds(16, 16).unwrap();
        assert_eq!((x0, y0, x1, y1), (0, 0, 15, 15));
    }
}
