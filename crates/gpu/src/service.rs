//! The batch render service: many sessions' frames over one worker pool.
//!
//! [`render_batch`] is the GPU-side half of the multi-session scheduler
//! (`rbcd_core::sched`). It takes one frame from each of N independent
//! sessions — each a [`BatchJob`] wrapping its own [`Simulator`] and
//! collision backend — and drives all of them through the three-phase
//! parallel pipeline of [`crate::render_frame_parallel`]
//! with a *single* scoped thread pool:
//!
//! 1. **Plan** — each session's geometry pipeline and raster plan run
//!    sequentially on the calling thread, in submission order. Plans
//!    depend only on the session's own state, never on the pool.
//! 2. **Compute** — every live session exposes an immutable
//!    [`TileComputeCtx`](crate::parallel); their tiles are interleaved
//!    round-robin by tile position into one work list that workers
//!    drain via an atomic cursor. Per-tile work is order-free and
//!    session-private (each worker keeps one raster scratch and one
//!    collision worker *per session*), so the interleaving affects only
//!    wall-clock, never results.
//! 3. **Merge** — each session's results are folded back on its own
//!    sequential timeline, in submission order, in tile-index order.
//!
//! Because phase 2 is the only concurrent phase and it is pure with
//! respect to every session's mutable state, each session's frame
//! statistics, cache counters, contacts, governor reports, and traces
//! are **bit-identical to rendering that session solo** — at any worker
//! count, under any co-tenant mix. That is the service determinism
//! contract; `rbcd_core::sched` and the `session_isolation` property
//! test enforce it end to end.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::command::FrameTrace;
use crate::parallel::ParallelCollision;
use crate::sim::{PipelineMode, Simulator, TileWorker};
use crate::stats::FrameStats;

/// A failure inside the batch render service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a service error reports lost work and must be handled"]
#[non_exhaustive]
pub enum ServiceError {
    /// A pool worker panicked mid-batch; per-session state may be
    /// mid-frame and the whole batch's results are void.
    WorkerPanicked,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::WorkerPanicked => {
                write!(f, "a batch render worker thread panicked")
            }
        }
    }
}

impl Error for ServiceError {}

/// One session's frame submission: the session-owned simulator and
/// collision backend, plus the frame to render. The service mutates
/// both exactly as a solo [`Simulator::render_frame_parallel`] call
/// would.
#[must_use = "a BatchJob does nothing until passed to render_batch"]
pub struct BatchJob<'a, B: ParallelCollision> {
    /// The session's GPU simulator (coherence caches, governor state,
    /// tracer — all private to this session).
    pub sim: &'a mut Simulator,
    /// The session's collision backend (ZEB timing state, contacts).
    pub backend: &'a mut B,
    /// The frame to render.
    pub trace: &'a FrameTrace,
    /// Pipeline arrangement for this frame.
    pub mode: PipelineMode,
}

/// Renders one frame for every job over a shared pool of `workers`
/// threads, returning per-job frame statistics in submission order.
///
/// Equivalent to calling `render_frame_parallel` on each job in order —
/// bit-identically so, for any `workers` — except that the compute
/// phases overlap: a single tile work list interleaves all jobs' tiles
/// round-robin, so one session's long tail doesn't idle the pool while
/// another session still has tiles to grind.
pub fn render_batch<B: ParallelCollision>(
    jobs: &mut [BatchJob<'_, B>],
    workers: usize,
) -> Result<Vec<FrameStats>, ServiceError> {
    let workers = workers.max(1);

    // Phase 1: plan every session, sequentially, in submission order.
    let mut geoms = Vec::with_capacity(jobs.len());
    let mut cos = Vec::with_capacity(jobs.len());
    for job in jobs.iter_mut() {
        geoms.push(job.sim.geometry_pipeline_with(job.trace, job.mode, workers));
        cos.push(job.sim.plan_raster(job.trace, job.mode, &*job.backend));
    }

    // Phase 2: one interleaved work list across all sessions, drained
    // by the shared pool. Results land in per-session slot vectors.
    let mut slots: Vec<Vec<Option<(_, B::TileOut)>>> = Vec::with_capacity(jobs.len());
    {
        let ctxs: Vec<_> = jobs.iter().map(|j| j.sim.compute_ctx(j.trace, j.mode)).collect();
        for ctx in &ctxs {
            let mut v = Vec::new();
            v.resize_with(ctx.tiles(), || None);
            slots.push(v);
        }
        // Round-robin by tile position: (session, tile) pairs cycle
        // through the sessions so every session makes progress at the
        // same rate regardless of scene size (fairness), and the claim
        // order is deterministic even though completion order is not.
        let max_tiles = ctxs.iter().map(|c| c.tiles()).max().unwrap_or(0);
        let mut items: Vec<(u32, u32)> = Vec::new();
        for pos in 0..max_tiles {
            for (ji, ctx) in ctxs.iter().enumerate() {
                if pos < ctx.tiles() {
                    items.push((ji as u32, pos as u32));
                }
            }
        }

        if workers <= 1 || items.len() <= 1 {
            // Inline on the calling thread: one collision worker per
            // session (created eagerly — cheap), one raster scratch per
            // session (created lazily — a z-buffer allocation).
            let mut cws: Vec<B::Worker> =
                jobs.iter().map(|j| j.backend.make_worker()).collect();
            let mut tws: Vec<Option<TileWorker>> = Vec::new();
            tws.resize_with(jobs.len(), || None);
            for &(ji, k) in &items {
                let (ji, k) = (ji as usize, k as usize);
                let ctx = &ctxs[ji];
                let tw = tws[ji].get_or_insert_with(|| TileWorker::new(ctx.config()));
                slots[ji][k] = ctx.compute_tile::<B>(k, tw, &mut cws[ji]);
            }
        } else {
            // Each pool thread owns one collision worker per session
            // (collision workers are not shareable across sessions: a
            // backend's worker may be sized by its config) plus lazy
            // per-session raster scratches.
            let worker_sets: Vec<Vec<B::Worker>> = (0..workers)
                .map(|_| jobs.iter().map(|j| j.backend.make_worker()).collect())
                .collect();
            let next = AtomicUsize::new(0);
            let ctxs = &ctxs;
            let items: &[(u32, u32)] = &items;
            let batches: Vec<Result<Vec<(usize, usize, _)>, ServiceError>> =
                std::thread::scope(|s| {
                    let handles: Vec<_> = worker_sets
                        .into_iter()
                        .map(|mut cws| {
                            let next = &next;
                            s.spawn(move || {
                                let mut tws: Vec<Option<TileWorker>> = Vec::new();
                                tws.resize_with(cws.len(), || None);
                                let mut done = Vec::new();
                                loop {
                                    let i = next.fetch_add(1, Ordering::Relaxed);
                                    if i >= items.len() {
                                        break;
                                    }
                                    let (ji, k) = (items[i].0 as usize, items[i].1 as usize);
                                    let ctx = &ctxs[ji];
                                    let tw = tws[ji]
                                        .get_or_insert_with(|| TileWorker::new(ctx.config()));
                                    if let Some(out) = ctx.compute_tile::<B>(k, tw, &mut cws[ji]) {
                                        done.push((ji, k, out));
                                    }
                                }
                                done
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().map_err(|_| ServiceError::WorkerPanicked))
                        .collect()
                });
            for batch in batches {
                for (ji, k, out) in batch? {
                    slots[ji][k] = Some(out);
                }
            }
        }
    }

    // Phase 3: merge every session, sequentially, in submission order.
    let mut stats = Vec::with_capacity(jobs.len());
    for (ji, job) in jobs.iter_mut().enumerate() {
        let (raster, coherence) = job.sim.merge_raster(
            job.trace,
            job.backend,
            std::mem::take(&mut slots[ji]),
            std::mem::take(&mut cos[ji]),
        );
        let governor = job.sim.governor_frame_stats();
        let broadphase = job.sim.broadphase_frame_stats();
        let s =
            FrameStats { geometry: geoms[ji], raster, coherence, governor, broadphase, frames: 1 };
        if let Some(t) = job.sim.tracer.as_deref_mut() {
            t.end_frame(s.total_cycles());
        }
        stats.push(s);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision_unit::NullCollisionUnit;
    use crate::command::{Camera, DrawCommand, ObjectId};
    use crate::config::GpuConfig;
    use rbcd_geometry::shapes;
    use rbcd_math::{Mat4, Vec3, Viewport};

    fn scene(shift: f32) -> FrameTrace {
        let camera = Camera::perspective(Vec3::new(0.0, 1.0, 7.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let draws = vec![
            DrawCommand::scenery(shapes::ground_quad(12.0, 12.0))
                .with_model(Mat4::translation(Vec3::new(0.0, -1.5, 0.0))),
            DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1))
                .with_model(Mat4::translation(Vec3::new(shift, 0.2, 0.0))),
            DrawCommand::collidable(shapes::icosphere(0.8, 2), ObjectId::new(2))
                .with_model(Mat4::translation(Vec3::new(-shift, 0.0, 0.5))),
        ];
        FrameTrace::new(camera, draws)
    }

    fn cfg(w: u32) -> GpuConfig {
        GpuConfig { viewport: Viewport::new(w, 96), ..GpuConfig::default() }
    }

    #[test]
    fn batch_of_disparate_sessions_matches_solo_runs() {
        // Three sessions with different viewports and scenes (so tile
        // counts differ and the round-robin interleave is ragged).
        let specs = [(128u32, 0.6f32), (96, 1.4), (160, 0.0)];
        for workers in [1, 2, 4] {
            let mut solo_stats = Vec::new();
            for &(w, shift) in &specs {
                let trace = scene(shift);
                let mut sim = Simulator::new(cfg(w));
                sim.set_reuse(true);
                let mut unit = NullCollisionUnit;
                let mut frames = Vec::new();
                for _ in 0..2 {
                    frames.push(sim.render_frame_parallel(
                        &trace,
                        PipelineMode::Rbcd,
                        &mut unit,
                        workers,
                    ));
                }
                solo_stats.push(frames);
            }

            let traces: Vec<FrameTrace> = specs.iter().map(|&(_, s)| scene(s)).collect();
            let mut sims: Vec<Simulator> = specs
                .iter()
                .map(|&(w, _)| {
                    let mut s = Simulator::new(cfg(w));
                    s.set_reuse(true);
                    s
                })
                .collect();
            let mut units = vec![NullCollisionUnit; specs.len()];
            #[allow(clippy::needless_range_loop)]
            for frame in 0..2 {
                let mut jobs: Vec<BatchJob<'_, NullCollisionUnit>> = sims
                    .iter_mut()
                    .zip(units.iter_mut())
                    .zip(traces.iter())
                    .map(|((sim, backend), trace)| BatchJob {
                        sim,
                        backend,
                        trace,
                        mode: PipelineMode::Rbcd,
                    })
                    .collect();
                let batch = render_batch(&mut jobs, workers).expect("no worker panics");
                for (ji, stats) in batch.iter().enumerate() {
                    assert_eq!(
                        *stats, solo_stats[ji][frame],
                        "session {ji}, frame {frame}, {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut jobs: Vec<BatchJob<'_, NullCollisionUnit>> = Vec::new();
        let stats = render_batch(&mut jobs, 4).expect("empty batch cannot fail");
        assert!(stats.is_empty());
    }
}
