//! The tile-based pipeline simulator.

use crate::broadphase::{BroadPhase, DrawBounds, SweepScratch};
use crate::cache::CacheModel;
use crate::clip::clip_near;
use crate::coherence::{self, MeshHashMemo, TileResultCache};
use crate::collision_unit::{CollisionFragment, CollisionUnit, TileCoord};
use crate::command::{Facing, FrameTrace, ObjectId};
use crate::config::{GovernorConfig, GpuConfig, HotPathMode};
use crate::frontend::{self, CachedDrawGeom, FrontendMode, GeomCache};
use crate::raster::{
    rasterize_triangle_in_tile, rasterize_triangle_in_tile_masked_rows, Fragment, ScreenTriangle,
};
use crate::stats::{
    BroadphaseStats, CoherenceStats, FrameStats, GeometryStats, GovernorStats, RasterStats,
};
use rbcd_math::{viewport as viewport_map, Vec3, Vec4};
use rbcd_trace::{TileZebRecord, TraceBuffer};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Whether the pipeline renders plain (baseline) or with the RBCD
/// extensions enabled (deferred face culling of collisionable geometry,
/// fragment forwarding to the collision unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// Plain rendering; face culling drops primitives early.
    Baseline,
    /// RBCD: collisionable culled primitives are tagged-to-be-culled,
    /// rasterized, forwarded to the collision unit, and filtered before
    /// Early-Z (§3.3).
    Rbcd,
    /// Collision-only pass (§3.6): rasterize *just* the collisionable
    /// objects for the RBCD unit, with no Early-Z and no fragment
    /// processing. Used to run extra physics time steps per rendered
    /// frame, or to test objects outside the view of the colour pass.
    CollisionOnly,
}

/// A primitive binned into a tile's polygon list.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BinnedPrim {
    pub(crate) tri: ScreenTriangle,
    pub(crate) facing: Facing,
    pub(crate) draw: u32,
    /// Global record id (for tile-cache addressing).
    pub(crate) record: u64,
    /// RBCD deferred culling: rasterize, forward to the collision unit,
    /// but never send to Early-Z.
    pub(crate) tagged_cull: bool,
}

/// The frame's binned polygon lists in a reusable flat layout.
///
/// Binning appends `(tile, prim)` pairs to a scratch buffer in emission
/// order; [`BinnedTiles::layout`] then groups them by tile with a stable
/// counting sort. All buffers are retained across frames, so a warm
/// simulator performs no per-frame binning allocations (the seed
/// version rebuilt a `Vec<Vec<BinnedPrim>>` every frame).
#[derive(Debug, Default)]
pub(crate) struct BinnedTiles {
    /// `(tile index, primitive)` in emission order.
    scratch: Vec<(u32, BinnedPrim)>,
    /// Per-tile entry counts during binning; write cursors during layout.
    counters: Vec<u32>,
    /// Prefix-sum offsets into `prims`; length `n_tiles + 1`.
    offsets: Vec<u32>,
    /// Primitives grouped by tile, each tile in emission order.
    prims: Vec<BinnedPrim>,
    /// Indices of non-empty tiles, ascending.
    active: Vec<u32>,
}

impl BinnedTiles {
    pub(crate) fn begin_frame(&mut self, n_tiles: usize) {
        self.scratch.clear();
        self.prims.clear();
        self.active.clear();
        self.counters.clear();
        self.counters.resize(n_tiles, 0);
        self.offsets.clear();
        self.offsets.resize(n_tiles + 1, 0);
    }

    /// Records `prim` for tile `ti` and returns the tile's entry index
    /// (its running count before this push), which addresses the bin
    /// entry in the tile cache.
    pub(crate) fn push(&mut self, ti: usize, prim: BinnedPrim) -> u64 {
        let entry = self.counters[ti];
        self.counters[ti] += 1;
        self.scratch.push((ti as u32, prim));
        entry as u64
    }

    /// Groups the emission-order scratch by tile index — a stable
    /// counting sort, so each tile keeps its primitives in the exact
    /// order the geometry pipeline emitted them.
    pub(crate) fn layout(&mut self) {
        let n_tiles = self.counters.len();
        let mut sum = 0u32;
        for ti in 0..n_tiles {
            self.offsets[ti] = sum;
            let count = self.counters[ti];
            if count > 0 {
                self.active.push(ti as u32);
            }
            // Counters become write cursors for the placement pass.
            self.counters[ti] = sum;
            sum += count;
        }
        self.offsets[n_tiles] = sum;
        let Some(&(_, filler)) = self.scratch.first() else {
            return;
        };
        self.prims.resize(sum as usize, filler);
        for &(ti, prim) in &self.scratch {
            let cursor = &mut self.counters[ti as usize];
            self.prims[*cursor as usize] = prim;
            *cursor += 1;
        }
    }

    /// Indices of non-empty tiles, ascending — the deterministic
    /// processing and merge order.
    pub(crate) fn active(&self) -> &[u32] {
        &self.active
    }

    /// The polygon list of tile `ti`, in emission order.
    pub(crate) fn tile(&self, ti: usize) -> &[BinnedPrim] {
        &self.prims[self.offsets[ti] as usize..self.offsets[ti + 1] as usize]
    }
}

/// Per-tile mutable raster state: one worker per thread, reused across
/// tiles, so the hot loop performs no allocations.
#[derive(Debug)]
pub(crate) struct TileWorker {
    /// Per-tile depth buffer.
    zbuf: Vec<f32>,
    frag_scratch: Vec<Fragment>,
    /// Collisionable fragments of the last processed tile, in the exact
    /// order the sequential pipeline would feed them to the unit.
    pub(crate) coll_frags: Vec<CollisionFragment>,
}

/// Owned per-tile raster results; summed into [`RasterStats`] during
/// the deterministic merge.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TileRasterOut {
    pub(crate) prim_count: u64,
    pub(crate) frags: u64,
    pub(crate) coll_frags: u64,
    pub(crate) fp_work: u64,
    pub(crate) raster_t: u64,
    pub(crate) fp_done: u64,
    pub(crate) to_early_z: u64,
    pub(crate) pixels_covered: u64,
    pub(crate) shaded: u64,
    /// Mask hot path diagnostics (0 under `HotPathMode::Reference`).
    pub(crate) rows_empty: u64,
    pub(crate) rows_full: u64,
}

impl TileWorker {
    pub(crate) fn new(config: &GpuConfig) -> Self {
        let tile_pixels = (config.tile_size * config.tile_size) as usize;
        Self {
            zbuf: vec![1.0; tile_pixels],
            frag_scratch: Vec::with_capacity(tile_pixels),
            coll_frags: Vec::new(),
        }
    }

    /// An allocation-free placeholder, used to lend the simulator's
    /// resident worker out across an immutable borrow of the rest of
    /// the simulator (`std::mem::replace` in the compute phase). Must
    /// never process a tile: its z-buffer is empty.
    pub(crate) fn empty() -> Self {
        Self { zbuf: Vec::new(), frag_scratch: Vec::new(), coll_frags: Vec::new() }
    }

    /// Rasterizes one tile's polygon list: fragment generation, Early-Z
    /// against the private depth buffer, and collisionable-fragment
    /// capture into `self.coll_frags`. Pure per-tile work — no cache or
    /// collision-unit access — so tiles can run on any thread.
    ///
    /// With `bp_skip` set (a broad-phase-pruned tile), image-side work
    /// is elided: scenery primitives are skipped entirely and Early-Z
    /// never runs. Collidable primitives still rasterize in order, so
    /// `coll_frags` — captured before, and independent of, the depth
    /// test — is bit-identical to a full pass.
    pub(crate) fn process_tile(
        &mut self,
        cfg: &GpuConfig,
        trace: &FrameTrace,
        tile: TileCoord,
        prims: &[BinnedPrim],
        mode: PipelineMode,
        bp_skip: bool,
    ) -> TileRasterOut {
        let tile_pixels = (cfg.tile_size * cfg.tile_size) as usize;
        self.zbuf[..tile_pixels].fill(1.0);
        self.coll_frags.clear();
        let tile_x0 = tile.x * cfg.tile_size;
        let tile_y0 = tile.y * cfg.tile_size;

        let mut o = TileRasterOut { prim_count: prims.len() as u64, ..Default::default() };
        let TileWorker { zbuf, frag_scratch, coll_frags } = self;
        // Intra-tile timeline: the rasterizer feeds the fragment
        // processors in primitive order. The processors can only
        // consume fragments that exist, so a burst of
        // tagged-to-be-culled primitives (which produce no shadable
        // fragments) lets their queue run dry — the idle-cycle
        // mechanism of the paper's §5.2.
        for prim in prims {
            let draw = &trace.draws[prim.draw as usize];
            let coll_object =
                if mode != PipelineMode::Baseline { draw.collidable } else { None };
            if bp_skip && coll_object.is_none() {
                continue; // pruned tile: scenery feeds no consumer
            }
            let early_z = !prim.tagged_cull && mode != PipelineMode::CollisionOnly && !bp_skip;
            let (n, prim_fp_work) = match cfg.hot_path {
                HotPathMode::Reference => {
                    frag_scratch.clear();
                    let n = rasterize_triangle_in_tile(
                        &prim.tri,
                        tile_x0,
                        tile_y0,
                        cfg.tile_size,
                        cfg.viewport.width,
                        cfg.viewport.height,
                        frag_scratch,
                    ) as u64;
                    if let Some(object) = coll_object {
                        o.coll_frags += n;
                        for f in frag_scratch.iter() {
                            coll_frags.push(CollisionFragment {
                                x: f.x,
                                y: f.y,
                                z: f.z,
                                object,
                                facing: prim.facing,
                            });
                        }
                    }
                    let mut prim_fp_work: u64 = 0;
                    if early_z {
                        for f in frag_scratch.iter() {
                            o.to_early_z += 1;
                            let px = (f.y - tile_y0) * cfg.tile_size + (f.x - tile_x0);
                            let slot = &mut zbuf[px as usize];
                            if f.z < *slot {
                                if *slot == 1.0 {
                                    o.pixels_covered += 1;
                                }
                                *slot = f.z;
                                o.shaded += 1;
                                prim_fp_work += draw.shader.fragment_cycles as u64;
                            }
                        }
                    }
                    (n, prim_fp_work)
                }
                HotPathMode::Mask => {
                    // Fused emission: Early-Z and collision capture run
                    // against each covered row span the mask solver
                    // hands back, so fragments never round-trip through
                    // an intermediate buffer and both consumers walk
                    // contiguous memory. The per-fragment operation
                    // sequence (and therefore every counter and the
                    // z-buffer evolution) matches the buffered two-pass
                    // form exactly — spans are visited in the same
                    // row-major ascending-x order.
                    let mut prim_fp_work: u64 = 0;
                    let (mut tez, mut covered, mut shaded) = (0u64, 0u64, 0u64);
                    let facing = prim.facing;
                    let frag_cycles = draw.shader.fragment_cycles as u64;
                    let m = rasterize_triangle_in_tile_masked_rows(
                        &prim.tri,
                        tile_x0,
                        tile_y0,
                        cfg.tile_size,
                        cfg.viewport.width,
                        cfg.viewport.height,
                        &mut |py: u32, s: u32, zs: &[f32]| {
                            if let Some(object) = coll_object {
                                coll_frags.extend(zs.iter().enumerate().map(|(i, &z)| {
                                    CollisionFragment { x: s + i as u32, y: py, z, object, facing }
                                }));
                            }
                            if early_z {
                                tez += zs.len() as u64;
                                let row0 =
                                    ((py - tile_y0) * cfg.tile_size + (s - tile_x0)) as usize;
                                for (slot, &z) in zbuf[row0..row0 + zs.len()].iter_mut().zip(zs) {
                                    if z < *slot {
                                        if *slot == 1.0 {
                                            covered += 1;
                                        }
                                        *slot = z;
                                        shaded += 1;
                                        prim_fp_work += frag_cycles;
                                    }
                                }
                            }
                        },
                    );
                    o.rows_empty += m.rows_empty;
                    o.rows_full += m.rows_full;
                    o.to_early_z += tez;
                    o.pixels_covered += covered;
                    o.shaded += shaded;
                    let n = m.fragments as u64;
                    if coll_object.is_some() {
                        o.coll_frags += n;
                    }
                    (n, prim_fp_work)
                }
            };
            o.frags += n;
            o.raster_t += cfg.raster_setup_cycles + n.div_ceil(cfg.raster_frags_per_cycle as u64);
            if prim_fp_work > 0 {
                o.fp_work += prim_fp_work;
                // Fragments become available when the primitive
                // finishes rasterizing.
                o.fp_done = o.fp_done.max(o.raster_t)
                    + prim_fp_work.div_ceil(cfg.fragment_processors as u64);
            }
        }
        o
    }
}

/// What the overload governor did to one rendered frame. Taken with
/// [`Simulator::take_governor_report`] after a governed `render_frame*`
/// call; `None` when no [`GovernorConfig`] is set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GovernorFrameReport {
    /// The merge-timeline budget in force (0 = no deadline).
    pub budget_cycles: u64,
    /// Merge-timeline cycles actually consumed (before the end-of-frame
    /// scan drain and DRAM-contention terms, which are outside the
    /// governable region).
    pub used_cycles: u64,
    /// Largest single-tile contribution to the timeline this frame —
    /// the bound on how far `used_cycles` may legitimately overshoot
    /// `budget_cycles` (the tile that was already dispatched when the
    /// budget ran out finishes).
    pub max_tile_cycles: u64,
    /// Tiles whose scan was coarsened (policy rung 2).
    pub tiles_coarsened: u64,
    /// Tiles shed from the frame (policy rung 3), in merge order.
    pub shed_tiles: Vec<(u32, u32)>,
    /// Distinct collidable objects binned into at least one shed tile —
    /// the set the host must route to the CPU detector to stay sound.
    pub shed_objects: BTreeSet<ObjectId>,
}

/// The GPU simulator. Owns the cache models, which stay warm across
/// frames; statistics are reported per rendered frame.
#[derive(Debug)]
pub struct Simulator {
    pub(crate) config: GpuConfig,
    pub(crate) vertex_cache: CacheModel,
    pub(crate) tile_cache: CacheModel,
    /// The frame's binned polygon lists (reused across frames).
    pub(crate) bins: BinnedTiles,
    /// Resident raster worker for sequential execution.
    pub(crate) worker: TileWorker,
    /// Structured event recorder; `None` (the default) costs nothing on
    /// the hot path. Boxed so the simulator stays small and `Send`.
    pub(crate) tracer: Option<Box<TraceBuffer>>,
    /// Temporal-coherence reuse knob (off by default; see
    /// [`Simulator::set_reuse`]).
    pub(crate) reuse: bool,
    /// Per-draw content hashes of the current frame (scratch, reused).
    pub(crate) draw_hashes: Vec<u64>,
    /// Per-tile reuse decisions of the current frame (scratch, reused):
    /// `(signature, reused)` per *active-list position*.
    pub(crate) reuse_plan: Vec<(u64, bool)>,
    /// Cross-frame per-tile result cache (signature + cached outcome).
    pub(crate) result_cache: TileResultCache,
    /// Overload-governor knob (`None`, the default, keeps every output
    /// bit-identical to an ungoverned simulator).
    pub(crate) governor: Option<GovernorConfig>,
    /// Objects the circuit breaker routes straight to the CPU this
    /// frame: their fragments are filtered out before the collision
    /// backend sees them. Set per frame on the main thread, so the
    /// filtering is thread-count invariant.
    pub(crate) governor_blocked: BTreeSet<ObjectId>,
    /// Per-tile coarsening plan of the current frame (scratch, reused):
    /// capacity boost per *active-list position*, empty when ungoverned.
    pub(crate) boost_plan: Vec<u8>,
    /// The last governed frame's report, taken by the host.
    pub(crate) governor_report: Option<GovernorFrameReport>,
    /// Geometry front-end arrangement (full rebuild by default; see
    /// [`Simulator::set_frontend`]).
    pub(crate) frontend: FrontendMode,
    /// Persistent per-draw geometry cache of the incremental front-end.
    pub(crate) geom_cache: GeomCache,
    /// Pointer-keyed mesh content-hash memo shared by the incremental
    /// front-end and the coherence layer's per-frame draw hashing.
    pub(crate) mesh_memo: MeshHashMemo,
    /// Whether `draw_hashes` already holds this frame's hashes (set by
    /// the incremental front-end so `plan_raster` does not re-hash).
    pub(crate) draw_hashes_ready: bool,
    /// Post-transform clip-space positions of the draw being shaded
    /// (scratch, reused across draws and frames).
    pub(crate) vertex_scratch: Vec<Vec4>,
    /// Screen-space broad-phase knob (off by default; see
    /// [`Simulator::set_broadphase`]).
    pub(crate) broadphase: BroadPhase,
    /// Per-draw screen bounds of the current frame (scratch, reused);
    /// filled by the geometry front-ends only when the broad phase is
    /// on, so the default path pays nothing.
    pub(crate) draw_bounds: Vec<DrawBounds>,
    /// Per-tile broad-phase skip decisions of the current frame
    /// (scratch, reused): one flag per *active-list position*. Empty
    /// when the broad phase is inert.
    pub(crate) bp_plan: Vec<bool>,
    /// Whether the broad phase actually pruned this frame (on, RBCD or
    /// collision-only mode, ungoverned). Set by the raster planner.
    pub(crate) bp_active: bool,
    /// The last planned frame's broad-phase counters.
    pub(crate) bp_stats: BroadphaseStats,
    /// Reusable broad-phase sweep scratch.
    pub(crate) bp_scratch: SweepScratch,
}

const RECORD_BASE: u64 = 1 << 40;
const BIN_BASE: u64 = 2 << 40;

/// One live draw's plan entry in the incremental front-end: its index,
/// cache key, whether the geometry cache hit, and the geometry to
/// splice (filled by the shading stage for misses).
struct DrawPlan {
    draw: u32,
    key: u64,
    hit: bool,
    geom: Option<Arc<CachedDrawGeom>>,
}

/// Replays tile `ti`'s Tile Fetcher accesses (bin entry + shared
/// primitive record per primitive) against the shared tile cache. The
/// cache model's stats are access-order dependent, so the merge phase
/// replays tiles in index order — identical to the sequential walk.
pub(crate) fn replay_tile_cache(
    tile_cache: &mut CacheModel,
    cfg: &GpuConfig,
    ti: usize,
    prims: &[BinnedPrim],
) {
    for prim in prims {
        tile_cache.read_span(BIN_BASE + ((ti as u64) << 24) + prim.record * 8, 8);
        tile_cache.read_span(RECORD_BASE + prim.record * cfg.prim_record_bytes, cfg.prim_record_bytes);
    }
}

/// Folds one tile's results into the frame stats and the rasterizer
/// timeline. `start` is when the tile was dispatched (`cursor` plus any
/// ZEB stall); returns the tile's end cycle.
pub(crate) fn accumulate_tile(
    r: &mut RasterStats,
    cfg: &GpuConfig,
    o: &TileRasterOut,
    cursor: u64,
    start: u64,
) -> u64 {
    r.tiles_processed += 1;
    r.primitives_fetched += o.prim_count;
    r.fragments_rasterized += o.frags;
    r.fragments_collisionable += o.coll_frags;
    r.fragments_to_early_z += o.to_early_z;
    r.pixels_covered += o.pixels_covered;
    r.fragments_shaded += o.shaded;
    r.rows_empty += o.rows_empty;
    r.rows_full += o.rows_full;
    r.fp_busy_cycles += o.fp_work;

    // Per-tile wall time. The Tile Fetcher prefetches the next tile's
    // polygon list while the current tile rasterizes, so its misses
    // stay off the critical path (charged to energy); its
    // one-primitive-per-cycle issue rate can still bind.
    let fetch_cycles = o.prim_count;
    let insert_cycles = o.coll_frags; // ZEB sorted insertion: 1/cycle
    let shade_cycles = o.fp_work.div_ceil(cfg.fragment_processors as u64);
    let work = fetch_cycles
        .max(o.raster_t)
        .max(insert_cycles)
        .max(o.fp_done)
        + cfg.tile_overhead_cycles;
    r.fp_idle_cycles += work - shade_cycles;
    r.zeb_stall_cycles += start - cursor;
    start + work
}

/// Folds a *replayed* tile's results into the frame stats. The
/// workload counters come from the given [`TileRasterOut`] unchanged,
/// so they match the pass that produced them bit for bit; the timeline
/// advances by only the replay cost `sig_cycles` (the fragment
/// processors sit idle for that whole span, and no ZEB is claimed so
/// there is no stall term). Used for both temporal-reuse replays
/// (signature-check cost) and broad-phase-skipped tiles (list-walk
/// cost). Returns the tile's end cycle.
pub(crate) fn accumulate_reused_tile(
    r: &mut RasterStats,
    o: &TileRasterOut,
    cursor: u64,
    sig_cycles: u64,
) -> u64 {
    r.tiles_processed += 1;
    r.primitives_fetched += o.prim_count;
    r.fragments_rasterized += o.frags;
    r.fragments_collisionable += o.coll_frags;
    r.fragments_to_early_z += o.to_early_z;
    r.pixels_covered += o.pixels_covered;
    r.fragments_shaded += o.shaded;
    r.rows_empty += o.rows_empty;
    r.rows_full += o.rows_full;
    r.fp_busy_cycles += o.fp_work;
    r.fp_idle_cycles += sig_cycles;
    cursor + sig_cycles
}

/// Closes out the raster timeline: bus contention from the raster
/// pipeline's DRAM traffic (polygon-list fills plus the per-tile
/// colour-buffer flush). Requires `r.tile_cache_loads` to be set.
pub(crate) fn finalize_raster_timing(r: &mut RasterStats, cfg: &GpuConfig, cursor: u64) {
    let dram_bytes = r.tile_cache_loads.misses() * 64
        + r.tiles_processed * (cfg.tile_size as u64 * cfg.tile_size as u64) * 4;
    let contention = (dram_bytes as f64 / cfg.dram_bytes_per_cycle as f64
        * cfg.dram_contention) as u64;
    r.cycles = cursor + contention;
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    ///
    /// Deprecated in spirit: this constructor performs no validation and
    /// cannot enable tracing. Prefer [`crate::SimulatorBuilder`], which
    /// rejects degenerate configurations with a typed
    /// [`crate::GpuConfigError`] instead of silently mis-simulating.
    pub fn new(config: GpuConfig) -> Self {
        Self {
            vertex_cache: CacheModel::new(config.vertex_cache),
            tile_cache: CacheModel::new(config.tile_cache),
            bins: BinnedTiles::default(),
            worker: TileWorker::new(&config),
            tracer: None,
            reuse: false,
            draw_hashes: Vec::new(),
            reuse_plan: Vec::new(),
            result_cache: TileResultCache::default(),
            governor: None,
            governor_blocked: BTreeSet::new(),
            boost_plan: Vec::new(),
            governor_report: None,
            frontend: FrontendMode::default(),
            geom_cache: GeomCache::with_capacity(frontend::DEFAULT_GEOM_CACHE_DRAWS),
            mesh_memo: MeshHashMemo::default(),
            draw_hashes_ready: false,
            vertex_scratch: Vec::new(),
            broadphase: BroadPhase::default(),
            draw_bounds: Vec::new(),
            bp_plan: Vec::new(),
            bp_active: false,
            bp_stats: BroadphaseStats::default(),
            bp_scratch: SweepScratch::default(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Enables or disables structured tracing. Enabling allocates a
    /// fresh [`TraceBuffer`] sized to the tile grid; disabling drops any
    /// recorded events. With tracing off (the default) the pipelines
    /// take the exact pre-instrumentation paths: events are recorded to
    /// a side buffer only and never feed back into stats or timing.
    pub fn set_tracing(&mut self, enabled: bool) {
        if enabled {
            if self.tracer.is_none() {
                self.tracer = Some(Box::new(TraceBuffer::new(
                    self.config.tiles_x(),
                    self.config.tiles_y(),
                )));
            }
        } else {
            self.tracer = None;
        }
    }

    /// Whether structured tracing is currently enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Enables or disables temporal tile reuse (off by default).
    ///
    /// With reuse on, [`Simulator::render_frame_parallel`] computes a
    /// deterministic signature per active tile; tiles whose signature
    /// matches the previous frame skip rasterization, ZEB build and the
    /// Z-overlap scan, replaying the cached result while the timing
    /// model charges only the signature check. Workload and collision
    /// counters (fragments, pairs, `rbcd.*`) are bit-identical either
    /// way; only the timing counters (`raster.cycles`, idle/stall
    /// cycles) and `coherence.*` reflect the reuse. The sequential
    /// [`Simulator::render_frame`] path ignores this knob: its
    /// `dyn CollisionUnit` protocol has no per-tile result capsule.
    ///
    /// Disabling drops every cached tile, so a later re-enable starts
    /// cold instead of replaying stale results.
    pub fn set_reuse(&mut self, enabled: bool) {
        self.reuse = enabled;
        if !enabled {
            self.result_cache.clear();
        }
    }

    /// Whether temporal tile reuse is currently enabled.
    pub fn reuse_enabled(&self) -> bool {
        self.reuse
    }

    /// Selects the screen-space broad phase ([`BroadPhase::Off`] by
    /// default, which keeps every golden counter pinned).
    ///
    /// With [`BroadPhase::On`], [`Simulator::render_frame_parallel`]
    /// computes per-draw screen AABBs + z-intervals, runs a
    /// deterministic interval sweep for the pair-feasible object set,
    /// and elides the image-side work (scenery raster, Early-Z,
    /// shading, ZEB claim) of tiles where no feasible pair can occur.
    /// Reported pairs, every `rbcd.*` counter, and fault-ladder
    /// behaviour are bit-identical either way — skipped tiles'
    /// collisionable fragments still reach the unit unchanged; only
    /// raster/scan timing, energy, and the mask-only `broadphase.*`
    /// counters move (see `crate::broadphase` for the full contract).
    ///
    /// Pruning is inert in [`PipelineMode::Baseline`] (no pairs to
    /// preserve; the baseline measures the full render) and whenever an
    /// overload governor is installed (the deadline ladder's shed
    /// decisions are merge-cursor driven, and pruning moves the cursor,
    /// so the governor takes precedence — a governed frame is never
    /// pruned and pruned tiles never count toward its budget
    /// projection). The sequential [`Simulator::render_frame`] path
    /// ignores the knob, like temporal reuse: its `dyn CollisionUnit`
    /// protocol has no per-tile replay hook.
    ///
    /// Toggling drops the temporal-reuse result cache: cached capsules
    /// were recorded under the other mode's frame seed and could never
    /// match again.
    pub fn set_broadphase(&mut self, mode: BroadPhase) {
        if self.broadphase != mode {
            self.result_cache.clear();
        }
        self.broadphase = mode;
        if mode == BroadPhase::Off {
            self.bp_active = false;
            self.bp_stats = BroadphaseStats::default();
        }
    }

    /// The active broad-phase mode.
    pub fn broadphase(&self) -> BroadPhase {
        self.broadphase
    }

    /// The last planned frame's broad-phase counters (all zero when the
    /// broad phase was inert).
    pub(crate) fn broadphase_frame_stats(&self) -> BroadphaseStats {
        self.bp_stats
    }

    /// Selects the geometry front-end arrangement
    /// ([`FrontendMode::Rebuild`] by default).
    ///
    /// With [`FrontendMode::Incremental`], draws whose content hash
    /// (plus camera/viewport/mode seed) matches a cached entry skip
    /// vertex shading, near-clipping, and face culling; their screen
    /// triangles and bin records are spliced from the per-draw geometry
    /// cache, and changed draws are shaded in parallel on the caller's
    /// worker pool. Every result — bins, pairs, event counters, energy,
    /// traces — is bit-identical to the rebuild front-end; only host
    /// wall-clock and the `geom.*` accounting counters differ (see
    /// `crate::frontend`).
    ///
    /// Switching back to [`FrontendMode::Rebuild`] drops the cache, so
    /// a later re-enable starts cold.
    pub fn set_frontend(&mut self, mode: FrontendMode) {
        self.frontend = mode;
        if mode == FrontendMode::Rebuild {
            self.geom_cache.clear();
            self.draw_hashes_ready = false;
        }
    }

    /// The active geometry front-end arrangement.
    pub fn frontend(&self) -> FrontendMode {
        self.frontend
    }

    /// Bounds the incremental front-end's per-draw geometry cache to
    /// `draws` entries (least-recently-used draws are evicted first;
    /// a floor of one entry is enforced). Eviction never changes
    /// results — an evicted draw simply misses and is re-shaded — so
    /// this knob trades memory for reuse rate only.
    pub fn set_geom_cache_capacity(&mut self, draws: usize) {
        self.geom_cache.set_capacity(draws);
    }

    /// Entries currently held by the incremental front-end's per-draw
    /// geometry cache (zero under [`FrontendMode::Rebuild`]). Exposed
    /// for tests and capacity tuning.
    pub fn geom_cache_len(&self) -> usize {
        self.geom_cache.len()
    }

    /// Installs (or removes) the overload governor. With `None` (the
    /// default) every output is bit-identical to an ungoverned
    /// simulator. With a configuration installed:
    ///
    /// * [`Simulator::render_frame_parallel`] walks the full policy
    ///   ladder — forced temporal reuse for signature-stable tiles,
    ///   scan coarsening on the heaviest tiles when the projected frame
    ///   cost exceeds the budget, and tile shedding once the merge
    ///   timeline crosses it;
    /// * the sequential [`Simulator::render_frame`] applies only the
    ///   shed rung and the blocked-object routing (its `dyn` unit
    ///   protocol has no reuse capsule or coarsening hook);
    /// * each frame leaves a [`GovernorFrameReport`] for
    ///   [`Simulator::take_governor_report`].
    ///
    /// Every decision is taken on the main thread from the binned frame
    /// alone, so governed runs stay bit-identical at any thread count.
    pub fn set_governor(&mut self, governor: Option<GovernorConfig>) {
        self.governor = governor;
    }

    /// The installed overload-governor configuration, if any.
    pub fn governor(&self) -> Option<&GovernorConfig> {
        self.governor.as_ref()
    }

    /// Replaces the set of objects the circuit breaker routes straight
    /// to the CPU detector: their fragments are filtered out before the
    /// collision backend sees them (the GPU still rasterizes them — the
    /// image is unaffected — but the ZEB never ingests their
    /// fragments). Call once per frame, before `render_frame*`; the set
    /// persists until replaced. An empty set (the default) disables the
    /// filter entirely.
    pub fn set_governor_blocked(&mut self, blocked: BTreeSet<ObjectId>) {
        self.governor_blocked = blocked;
    }

    /// Objects currently routed past the collision backend.
    pub fn governor_blocked(&self) -> &BTreeSet<ObjectId> {
        &self.governor_blocked
    }

    /// Takes the last governed frame's report (`None` when the last
    /// `render_frame*` call ran ungoverned, or the report was already
    /// taken).
    pub fn take_governor_report(&mut self) -> Option<GovernorFrameReport> {
        self.governor_report.take()
    }

    /// Folds the pending frame report into per-frame governor counters.
    /// `breaker_trips` and `stale_pairs` stay zero here: they belong to
    /// the host-side governor, which owns the cross-frame breaker and
    /// the stale-pair carry.
    pub(crate) fn governor_frame_stats(&self) -> GovernorStats {
        match &self.governor_report {
            Some(rep) => GovernorStats {
                breaker_trips: 0,
                budget_cycles: rep.budget_cycles,
                stale_pairs: 0,
                tiles_coarsened: rep.tiles_coarsened,
                tiles_shed: rep.shed_tiles.len() as u64,
            },
            None => GovernorStats::default(),
        }
    }

    /// The recorded trace so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.tracer.as_deref()
    }

    /// Takes the recorded trace out of the simulator (disabling further
    /// recording), for export.
    pub fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.tracer.take().map(|boxed| *boxed)
    }

    /// Folds per-tile RBCD-unit records (drained from the collision
    /// unit after a frame, before the next `render_frame*` call) into
    /// the trace. No-op with tracing disabled.
    pub fn record_collision_tiles(&mut self, records: &[TileZebRecord]) {
        if let Some(t) = self.tracer.as_deref_mut() {
            for rec in records {
                t.record_zeb_tile(rec);
            }
        }
    }

    /// Renders one frame, returning its statistics. In
    /// [`PipelineMode::Rbcd`], collisionable fragments are pushed into
    /// `unit` and ZEB stalls are modelled through its timing protocol;
    /// pass [`crate::NullCollisionUnit`] for baseline runs.
    ///
    /// For multi-threaded tile execution with identical results, see
    /// [`Simulator::render_frame_parallel`].
    pub fn render_frame(
        &mut self,
        trace: &FrameTrace,
        mode: PipelineMode,
        unit: &mut dyn CollisionUnit,
    ) -> FrameStats {
        let geometry = self.geometry_pipeline(trace, mode);
        let raster = self.raster_pipeline(trace, mode, unit);
        let governor = self.governor_frame_stats();
        let stats = FrameStats {
            geometry,
            raster,
            coherence: CoherenceStats::default(),
            governor,
            broadphase: BroadphaseStats::default(),
            frames: 1,
        };
        if let Some(t) = self.tracer.as_deref_mut() {
            t.end_frame(stats.total_cycles());
        }
        stats
    }

    /// Geometry Pipeline: vertex processing, primitive assembly,
    /// clipping, (deferred) face culling, and binning into `self.bins`.
    /// Single-threaded entry point; the parallel render path calls
    /// [`Simulator::geometry_pipeline_with`] so the incremental
    /// front-end can shade changed draws on the worker pool.
    pub(crate) fn geometry_pipeline(
        &mut self,
        trace: &FrameTrace,
        mode: PipelineMode,
    ) -> GeometryStats {
        self.geometry_pipeline_with(trace, mode, 1)
    }

    /// Geometry Pipeline with an explicit worker-thread count for the
    /// incremental front-end's parallel shading stage. Results are
    /// bit-identical at any `threads` (and to the rebuild front-end);
    /// the thread count affects host wall-clock only.
    pub(crate) fn geometry_pipeline_with(
        &mut self,
        trace: &FrameTrace,
        mode: PipelineMode,
        threads: usize,
    ) -> GeometryStats {
        match self.frontend {
            FrontendMode::Rebuild => {
                self.draw_hashes_ready = false;
                self.geometry_rebuild(trace, mode)
            }
            FrontendMode::Incremental => self.geometry_incremental(trace, mode, threads),
        }
    }

    /// The full-rebuild front-end: every draw transformed, clipped,
    /// culled, and binned from scratch.
    fn geometry_rebuild(&mut self, trace: &FrameTrace, mode: PipelineMode) -> GeometryStats {
        let cfg = &self.config;
        let (vw, vh) = (cfg.viewport.width, cfg.viewport.height);
        let (tiles_x, tiles_y) = (cfg.tiles_x(), cfg.tiles_y());
        self.bins.begin_frame((tiles_x * tiles_y) as usize);
        let mut g = GeometryStats::default();
        self.vertex_cache.reset_stats();
        self.tile_cache.reset_stats();
        let bp = self.broadphase == BroadPhase::On;
        self.draw_bounds.clear();
        if bp {
            self.draw_bounds.resize(trace.draws.len(), DrawBounds::default());
        }

        let view_proj = trace.camera.view_proj();
        let mut record_counter: u64 = 0;
        // Draw log for the tracer: (index, vertices, triangles). Filled
        // only when tracing, emitted once the phase's cycle count is
        // known (per-draw timing is not modelled below phase
        // granularity).
        let mut draw_log: Vec<(u64, u64, u64)> = Vec::new();

        for (draw_idx, draw) in trace.draws.iter().enumerate() {
            if mode == PipelineMode::CollisionOnly && draw.collidable.is_none() {
                continue; // only collisionable commands are submitted
            }
            // Ingest validation (always on the sequential geometry path,
            // so quarantine decisions are thread-count independent):
            // forged ids and non-finite input never reach the rasterizer.
            if draw.validate().is_err() {
                g.draws_quarantined += 1;
                continue;
            }
            let mvp = view_proj * draw.model;
            // Vertex fetch + shade: each vertex processed once, into
            // the simulator-owned scratch (no per-draw allocation).
            let base_addr = (draw_idx as u64) << 32;
            self.vertex_scratch.clear();
            for (vi, &p) in draw.mesh.positions().iter().enumerate() {
                self.vertex_cache
                    .read_span(base_addr + vi as u64 * cfg.vertex_record_bytes, cfg.vertex_record_bytes);
                self.vertex_scratch.push(mvp.transform_vec4(p.extend(1.0)));
            }
            let clip_pos = &self.vertex_scratch;
            g.vertices_shaded += clip_pos.len() as u64;
            g.vp_busy_cycles += clip_pos.len() as u64 * draw.shader.vertex_cycles as u64;
            if self.tracer.is_some() {
                draw_log.push((
                    draw_idx as u64,
                    clip_pos.len() as u64,
                    draw.mesh.indices().len() as u64,
                ));
            }

            for &[ia, ib, ic] in draw.mesh.indices() {
                g.triangles_assembled += 1;
                let (a, b, c) = (
                    clip_pos[ia as usize],
                    clip_pos[ib as usize],
                    clip_pos[ic as usize],
                );
                let clipped = clip_near(a, b, c);
                if clipped.is_empty() {
                    g.triangles_clipped_out += 1;
                    continue;
                }
                for [ca, cb, cc] in clipped {
                    g.triangles_after_clip += 1;
                    let to_window = |v: rbcd_math::Vec4| -> Vec3 {
                        viewport_map(v.project(), cfg.viewport)
                    };
                    let tri = ScreenTriangle::new(to_window(ca), to_window(cb), to_window(cc));
                    let Some(facing) = tri.facing() else {
                        g.triangles_degenerate += 1;
                        continue;
                    };
                    let culled = draw.cull.culls(facing);
                    let mut tagged_cull = false;
                    if culled {
                        match (mode, draw.collidable) {
                            (PipelineMode::Rbcd | PipelineMode::CollisionOnly, Some(_)) => {
                                tagged_cull = true;
                                g.triangles_tagged += 1;
                            }
                            _ => {
                                g.triangles_culled += 1;
                                continue;
                            }
                        }
                    }
                    let Some((x0, y0, x1, y1)) = tri.pixel_bounds(vw, vh) else {
                        g.triangles_degenerate += 1;
                        continue;
                    };
                    if bp {
                        self.draw_bounds[draw_idx].add_tri(&tri, (x0, y0, x1, y1));
                    }

                    // Write the primitive record once.
                    let record = record_counter;
                    record_counter += 1;
                    self.tile_cache
                        .write_span(RECORD_BASE + record * cfg.prim_record_bytes, cfg.prim_record_bytes);
                    g.prim_records += 1;

                    // Bin into every overlapped tile (bbox-conservative).
                    let (tx0, tx1) = (x0 / cfg.tile_size, x1 / cfg.tile_size);
                    let (ty0, ty1) = (y0 / cfg.tile_size, y1 / cfg.tile_size);
                    for ty in ty0..=ty1 {
                        for tx in tx0..=tx1 {
                            let ti = (ty * tiles_x + tx) as usize;
                            let entry = self.bins.push(ti, BinnedPrim {
                                tri,
                                facing,
                                draw: draw_idx as u32,
                                record,
                                tagged_cull,
                            });
                            self.tile_cache
                                .write_span(BIN_BASE + ((ti as u64) << 24) + entry * 8, 8);
                            g.bin_entries += 1;
                        }
                    }
                }
            }
        }
        self.seal_geometry(g, &draw_log)
    }

    /// The incremental front-end: classify every draw against the
    /// per-draw geometry cache, shade the misses (in parallel when
    /// `threads > 1`), then merge in draw order — splicing cached
    /// triangles and replaying each draw's exact cache-model access
    /// sequence so every counter matches the rebuild path bit for bit
    /// (see `crate::frontend` for the full contract).
    fn geometry_incremental(
        &mut self,
        trace: &FrameTrace,
        mode: PipelineMode,
        threads: usize,
    ) -> GeometryStats {
        let tiles_x = self.config.tiles_x();
        let tiles_y = self.config.tiles_y();
        self.bins.begin_frame((tiles_x * tiles_y) as usize);
        let mut g = GeometryStats::default();
        self.vertex_cache.reset_stats();
        self.tile_cache.reset_stats();
        let bp = self.broadphase == BroadPhase::On;
        self.draw_bounds.clear();
        if bp {
            self.draw_bounds.resize(trace.draws.len(), DrawBounds::default());
        }
        let view_proj = trace.camera.view_proj();
        let mut record_counter: u64 = 0;
        let mut draw_log: Vec<(u64, u64, u64)> = Vec::new();

        // Per-draw content hashes, memoized per mesh allocation. The
        // coherence layer needs the same hashes this frame, so
        // `plan_raster` picks them up instead of re-hashing.
        coherence::hash_draws_memo(trace, &mut self.draw_hashes, &mut self.mesh_memo);
        self.draw_hashes_ready = true;
        let seed = frontend::geom_seed(&self.config, mode, &view_proj);

        // Classify on the main thread: mode skips, quarantine, and
        // cache lookups happen in draw order (LRU touch order is part
        // of the deterministic state), independent of `threads`.
        let mut plan: Vec<DrawPlan> = Vec::with_capacity(trace.draws.len());
        for (draw_idx, draw) in trace.draws.iter().enumerate() {
            if mode == PipelineMode::CollisionOnly && draw.collidable.is_none() {
                continue; // only collisionable commands are submitted
            }
            if draw.validate().is_err() {
                g.draws_quarantined += 1;
                continue;
            }
            let key = coherence::mix(seed, self.draw_hashes[draw_idx]);
            let geom = self.geom_cache.get(key);
            plan.push(DrawPlan { draw: draw_idx as u32, key, hit: geom.is_some(), geom });
        }

        // Shade the misses. Each is a pure function of (draw,
        // view-projection, config, mode), so the fan-out is free of
        // shared state; results merge back by plan position.
        let missing: Vec<(usize, u32)> =
            plan.iter().enumerate().filter(|(_, p)| !p.hit).map(|(i, p)| (i, p.draw)).collect();
        if !missing.is_empty() {
            let cfg = &self.config;
            if threads <= 1 || missing.len() <= 1 {
                for &(pi, di) in &missing {
                    plan[pi].geom = Some(Arc::new(frontend::shade_draw(
                        &trace.draws[di as usize],
                        &view_proj,
                        cfg,
                        mode,
                        &mut self.vertex_scratch,
                    )));
                }
            } else {
                let next = AtomicUsize::new(0);
                let missing = &missing[..];
                let view_proj = &view_proj;
                let batches: Vec<Vec<(usize, Arc<CachedDrawGeom>)>> = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..threads.min(missing.len()))
                        .map(|_| {
                            let next = &next;
                            s.spawn(move || {
                                let mut scratch: Vec<Vec4> = Vec::new();
                                let mut done = Vec::new();
                                loop {
                                    let i = next.fetch_add(1, Ordering::Relaxed);
                                    if i >= missing.len() {
                                        break;
                                    }
                                    let (pi, di) = missing[i];
                                    let geom = frontend::shade_draw(
                                        &trace.draws[di as usize],
                                        view_proj,
                                        cfg,
                                        mode,
                                        &mut scratch,
                                    );
                                    done.push((pi, Arc::new(geom)));
                                }
                                done
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("geometry shading worker panicked"))
                        .collect()
                });
                for batch in batches {
                    for (pi, geom) in batch {
                        plan[pi].geom = Some(geom);
                    }
                }
            }
        }

        // Ordered merge: draw order, exactly the rebuild path's
        // emission sequence. Cache-model traffic is replayed with the
        // current frame's draw indices and record ids.
        let vrb = self.config.vertex_record_bytes;
        let prb = self.config.prim_record_bytes;
        for p in &plan {
            let draw_idx = p.draw as usize;
            let draw = &trace.draws[draw_idx];
            let geom = p.geom.as_ref().expect("every planned draw was cached or shaded");
            let base_addr = (draw_idx as u64) << 32;
            for vi in 0..geom.verts {
                self.vertex_cache.read_span(base_addr + vi * vrb, vrb);
            }
            g.vertices_shaded += geom.verts;
            g.vp_busy_cycles += geom.verts * draw.shader.vertex_cycles as u64;
            if self.tracer.is_some() {
                draw_log.push((draw_idx as u64, geom.verts, geom.tris_in));
            }
            g.triangles_assembled += geom.tris_in;
            g.triangles_clipped_out += geom.clipped_out;
            g.triangles_after_clip += geom.after_clip;
            g.triangles_degenerate += geom.degenerate;
            g.triangles_culled += geom.culled;
            g.triangles_tagged += geom.tagged;
            if p.hit {
                g.reuse_draws += 1;
            } else {
                g.shaded_draws += 1;
            }
            if bp {
                // Bounds were folded once at shade time and memoized
                // with the draw's geometry: cached draws pay nothing.
                self.draw_bounds[draw_idx] = geom.bounds;
            }

            let mut tile_lo = 0usize;
            for t in &geom.tris {
                let record = record_counter;
                record_counter += 1;
                self.tile_cache.write_span(RECORD_BASE + record * prb, prb);
                g.prim_records += 1;
                for &ti in &geom.tiles[tile_lo..t.tiles_end as usize] {
                    let entry = self.bins.push(
                        ti as usize,
                        BinnedPrim {
                            tri: t.tri,
                            facing: t.facing,
                            draw: p.draw,
                            record,
                            tagged_cull: t.tagged_cull,
                        },
                    );
                    self.tile_cache.write_span(BIN_BASE + ((ti as u64) << 24) + entry * 8, 8);
                    g.bin_entries += 1;
                    if p.hit {
                        g.bin_splices += 1;
                        if let Some(tr) = self.tracer.as_deref_mut() {
                            tr.record_bin_splice(ti % tiles_x, ti / tiles_x);
                        }
                    }
                }
                tile_lo = t.tiles_end as usize;
            }
            if !p.hit {
                self.geom_cache.insert(p.key, geom.clone());
            }
        }
        self.seal_geometry(g, &draw_log)
    }

    /// Shared closing of both front-ends: bin layout, cache-stat
    /// snapshots, stage-timing derivation, and trace emission. One body
    /// so the derived `geometry.cycles` (and the trace) of the
    /// incremental path is the rebuild derivation applied to identical
    /// inputs — identical by construction.
    fn seal_geometry(&mut self, mut g: GeometryStats, draw_log: &[(u64, u64, u64)]) -> GeometryStats {
        self.bins.layout();

        g.tile_cache_stores = self.tile_cache.stats();
        g.vertex_cache = self.vertex_cache.stats();

        // Stage timing: the pipeline runs at the throughput of its
        // slowest stage. Vertex-fetch misses stall the vertex processor
        // (subject to memory-level parallelism); Polygon List Builder
        // stores go through write buffers and do not stall — their
        // traffic is charged to energy, not latency.
        let miss_penalty = |misses: u64| misses * self.config.mem_latency_avg() / self.config.memory_parallelism;
        let vp_cycles = g.vp_busy_cycles / self.config.vertex_processors as u64
            + miss_penalty(g.vertex_cache.misses());
        let pa_cycles = g.triangles_assembled / self.config.triangles_per_cycle as u64;
        let plb_cycles = g.bin_entries + g.prim_records;
        // Bus contention: writes are buffered but still occupy the
        // shared DRAM interface.
        let dram_bytes = (g.tile_cache_stores.misses() + g.vertex_cache.misses()) * 64;
        let contention = (dram_bytes as f64 / self.config.dram_bytes_per_cycle as f64
            * self.config.dram_contention) as u64;
        g.cycles = vp_cycles.max(pa_cycles).max(plb_cycles) + contention;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.begin_frame();
            t.geometry_done(g.cycles);
            let n = draw_log.len() as u64;
            for &(idx, verts, tris) in draw_log {
                // Spread the draw markers proportionally across the
                // geometry span.
                let at = (idx * g.cycles).checked_div(n).unwrap_or(0);
                t.record_draw(idx, verts, tris, at);
            }
        }
        g
    }

    /// Benchmark support: runs only the Geometry Pipeline, leaving the
    /// frame binned inside the simulator so [`Simulator::bench_raster_pass`]
    /// can re-run the intra-tile hot path repeatedly over the same
    /// polygon lists. Pairs with the `repro hotpath` experiment in
    /// `rbcd-bench`, which isolates host wall-clock of the raster/scan
    /// hot path from per-frame geometry work.
    pub fn bench_bin_frame(&mut self, trace: &FrameTrace, mode: PipelineMode) -> GeometryStats {
        self.geometry_pipeline(trace, mode)
    }

    /// Benchmark support: one Raster Pipeline pass over the polygon
    /// lists binned by the last [`Simulator::bench_bin_frame`] call.
    /// The caller is responsible for resetting `unit` between passes
    /// (e.g. `RbcdUnit::new_frame` + draining contacts) so each pass
    /// starts from the same state.
    pub fn bench_raster_pass(
        &mut self,
        trace: &FrameTrace,
        mode: PipelineMode,
        unit: &mut dyn CollisionUnit,
    ) -> RasterStats {
        self.raster_pipeline(trace, mode, unit)
    }

    /// Raster Pipeline: per tile — fetch, rasterize, (RBCD insert),
    /// Early-Z, shade — with the ZEB stall protocol of §3.5.
    fn raster_pipeline(
        &mut self,
        trace: &FrameTrace,
        mode: PipelineMode,
        unit: &mut dyn CollisionUnit,
    ) -> RasterStats {
        let cfg = self.config.clone();
        let mut r = RasterStats::default();
        self.tile_cache.reset_stats();
        let tiles_x = cfg.tiles_x();
        let gov = self.governor;
        let budget = gov.map_or(0, |g| g.frame_budget_cycles);
        let shed_overhead = gov.map_or(0, |g| g.shed_overhead_cycles);
        let Simulator { bins, worker, tile_cache, tracer, governor_blocked, governor_report, .. } =
            self;
        let mut report = gov
            .map(|g| GovernorFrameReport { budget_cycles: g.frame_budget_cycles, ..Default::default() });
        let mut max_tile_cycles = 0u64;

        let mut cursor: u64 = 0; // rasterizer timeline, cycles
        for &ti in bins.active() {
            let ti = ti as usize;
            let prims = bins.tile(ti);
            let tile = TileCoord { x: ti as u32 % tiles_x, y: ti as u32 / tiles_x };

            // Policy rung 3: once the merge timeline crosses the
            // budget, every remaining tile is shed — its collision work
            // dropped and its objects reported for CPU recovery.
            if budget > 0 && cursor >= budget {
                let rep = report.as_mut().expect("a budget implies a governed frame");
                rep.shed_tiles.push((tile.x, tile.y));
                for prim in prims {
                    if let Some(id) = trace.draws[prim.draw as usize].collidable {
                        rep.shed_objects.insert(id);
                    }
                }
                cursor += shed_overhead;
                if let Some(t) = tracer.as_deref_mut() {
                    t.record_tile_shed(tile.x, tile.y, cursor);
                }
                continue;
            }

            let mut out = worker.process_tile(&cfg, trace, tile, prims, mode, false);
            if !governor_blocked.is_empty() {
                // Circuit-breaker routing: blocked objects' fragments
                // never reach the collision backend.
                worker.coll_frags.retain(|f| !governor_blocked.contains(&f.object));
                out.coll_frags = worker.coll_frags.len() as u64;
            }
            replay_tile_cache(tile_cache, &cfg, ti, prims);

            // Wait for a free ZEB (no-op for the null unit / baseline).
            let start = cursor.max(unit.next_free());
            unit.begin_tile(tile, start);
            unit.insert_batch(&worker.coll_frags);
            let end = accumulate_tile(&mut r, &cfg, &out, cursor, start);
            unit.finish_tile(end);
            if let Some(t) = tracer.as_deref_mut() {
                t.record_tile_raster(tile.x, tile.y, start, end, out.frags);
            }
            max_tile_cycles = max_tile_cycles.max(end - cursor);
            cursor = end;
        }
        if let Some(rep) = &mut report {
            rep.used_cycles = cursor;
            rep.max_tile_cycles = max_tile_cycles;
        }
        *governor_report = report;
        // The frame is complete once the last Z-overlap scan drains.
        cursor = cursor.max(unit.idle_at());
        r.tile_cache_loads = tile_cache.stats();
        finalize_raster_timing(&mut r, &cfg, cursor);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Camera, CullMode, DrawCommand, ObjectId};
    use crate::NullCollisionUnit;
    use rbcd_geometry::shapes;
    use rbcd_math::{Vec3, Viewport};
    use std::sync::Arc;

    fn small_config() -> GpuConfig {
        GpuConfig { viewport: Viewport::new(64, 64), ..GpuConfig::default() }
    }

    fn cube_trace() -> FrameTrace {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        FrameTrace::new(camera, vec![DrawCommand::scenery(shapes::cube(1.0))])
    }

    #[test]
    fn renders_a_cube() {
        let mut sim = Simulator::new(small_config());
        let stats = sim.render_frame(&cube_trace(), PipelineMode::Baseline, &mut NullCollisionUnit);
        assert_eq!(stats.geometry.vertices_shaded, 8);
        assert_eq!(stats.geometry.triangles_assembled, 12);
        // Viewed head-on, only the +Z face (2 triangles) is front-facing:
        // the four side faces are back-facing from an eye at x = y = 0.
        assert_eq!(stats.geometry.triangles_culled, 10);
        assert!(stats.raster.fragments_rasterized > 0);
        assert!(stats.raster.fragments_shaded > 0);
        assert!(stats.total_cycles() > 0);
    }

    #[test]
    fn warm_simulator_is_reproducible() {
        // The reusable binning/raster state must not leak between
        // frames: a warm simulator re-rendering the same trace reports
        // identical workload counters (cache-model stats legitimately
        // differ — caches stay warm across frames by design).
        let mut sim = Simulator::new(small_config());
        let first = sim.render_frame(&cube_trace(), PipelineMode::Baseline, &mut NullCollisionUnit);
        let second = sim.render_frame(&cube_trace(), PipelineMode::Baseline, &mut NullCollisionUnit);
        assert_eq!(first.raster.fragments_rasterized, second.raster.fragments_rasterized);
        assert_eq!(first.raster.fragments_shaded, second.raster.fragments_shaded);
        assert_eq!(first.raster.tiles_processed, second.raster.tiles_processed);
        assert_eq!(first.geometry.bin_entries, second.geometry.bin_entries);
    }

    #[test]
    fn baseline_never_tags() {
        let mut sim = Simulator::new(small_config());
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let trace = FrameTrace::new(
            camera,
            vec![DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1))],
        );
        let stats = sim.render_frame(&trace, PipelineMode::Baseline, &mut NullCollisionUnit);
        assert_eq!(stats.geometry.triangles_tagged, 0);
        assert_eq!(stats.raster.fragments_collisionable, 0);
    }

    #[test]
    fn rbcd_tags_collisionable_culled_faces() {
        let mut sim = Simulator::new(small_config());
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let trace = FrameTrace::new(
            camera,
            vec![DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1))],
        );
        let stats = sim.render_frame(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit);
        // All 10 previously-culled back-facing triangles are now tagged.
        assert_eq!(stats.geometry.triangles_tagged, 10);
        assert_eq!(stats.geometry.triangles_culled, 0);
        assert!(stats.raster.fragments_collisionable > 0);
        // Tagged fragments never reach Early-Z: to_early_z < rasterized.
        assert!(stats.raster.fragments_to_early_z < stats.raster.fragments_rasterized);
    }

    #[test]
    fn rbcd_mode_rasterizes_more_but_shades_same() {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let trace = FrameTrace::new(
            camera,
            vec![
                DrawCommand::scenery(shapes::uv_sphere(1.4, 12, 8)),
                DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1)),
            ],
        );
        let mut sim = Simulator::new(small_config());
        let base = sim.render_frame(&trace, PipelineMode::Baseline, &mut NullCollisionUnit);
        let mut sim = Simulator::new(small_config());
        let rbcd = sim.render_frame(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit);
        assert!(rbcd.raster.fragments_rasterized > base.raster.fragments_rasterized);
        // Deferred culling must not change the visible image workload.
        assert_eq!(rbcd.raster.fragments_shaded, base.raster.fragments_shaded);
        assert!(rbcd.total_cycles() >= base.total_cycles());
    }

    #[test]
    fn early_z_removes_occluded_fragments() {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        // Near cube drawn first, far cube second: far fragments behind
        // the near cube fail Early-Z.
        let near = DrawCommand::scenery(shapes::cube(1.0));
        let far = DrawCommand::scenery(shapes::cube(1.0))
            .with_model(rbcd_math::Mat4::translation(Vec3::new(0.0, 0.0, -3.0)));
        let trace = FrameTrace::new(camera, vec![near, far]);
        let mut sim = Simulator::new(small_config());
        let stats = sim.render_frame(&trace, PipelineMode::Baseline, &mut NullCollisionUnit);
        assert!(stats.raster.fragments_shaded < stats.raster.fragments_to_early_z);
    }

    #[test]
    fn cull_none_keeps_both_faces() {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let trace = FrameTrace::new(
            camera,
            vec![DrawCommand::scenery(shapes::cube(1.0)).with_cull(CullMode::None)],
        );
        let mut sim = Simulator::new(small_config());
        let stats = sim.render_frame(&trace, PipelineMode::Baseline, &mut NullCollisionUnit);
        assert_eq!(stats.geometry.triangles_culled, 0);
        assert_eq!(stats.geometry.triangles_after_clip, 12);
    }

    #[test]
    fn offscreen_object_costs_geometry_only() {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let behind = DrawCommand::scenery(shapes::cube(1.0))
            .with_model(rbcd_math::Mat4::translation(Vec3::new(0.0, 0.0, 50.0)));
        let trace = FrameTrace::new(camera, vec![behind]);
        let mut sim = Simulator::new(small_config());
        let stats = sim.render_frame(&trace, PipelineMode::Baseline, &mut NullCollisionUnit);
        assert_eq!(stats.geometry.triangles_clipped_out, 12);
        assert_eq!(stats.raster.fragments_rasterized, 0);
        assert!(stats.geometry.cycles > 0);
    }

    #[test]
    fn shared_mesh_instances() {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 8.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        let mesh = Arc::new(shapes::uv_sphere(0.5, 8, 6));
        let draws: Vec<_> = (0..4)
            .map(|i| {
                DrawCommand::collidable(mesh.clone(), ObjectId::new(i))
                    .with_model(rbcd_math::Mat4::translation(Vec3::new(i as f32 - 1.5, 0.0, 0.0)))
            })
            .collect();
        let trace = FrameTrace::new(camera, draws);
        let mut sim = Simulator::new(small_config());
        let stats = sim.render_frame(&trace, PipelineMode::Rbcd, &mut NullCollisionUnit);
        assert_eq!(stats.geometry.vertices_shaded, 4 * mesh.vertex_count() as u64);
        assert!(stats.raster.fragments_collisionable > 0);
    }
}

#[cfg(test)]
mod collision_only_tests {
    use super::*;
    use crate::command::{Camera, DrawCommand, ObjectId};
    use crate::NullCollisionUnit;
    use rbcd_geometry::shapes;
    use rbcd_math::{Vec3, Viewport};

    fn trace() -> FrameTrace {
        let camera = Camera::perspective(Vec3::new(0.0, 0.0, 6.0), Vec3::ZERO, 1.0, 0.1, 100.0);
        FrameTrace::new(
            camera,
            vec![
                DrawCommand::scenery(shapes::ground_quad(20.0, 20.0))
                    .with_model(rbcd_math::Mat4::translation(Vec3::new(0.0, -2.0, 0.0))),
                DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(1)),
                DrawCommand::collidable(shapes::cube(1.0), ObjectId::new(2))
                    .with_model(rbcd_math::Mat4::translation(Vec3::new(0.8, 0.0, 0.0))),
            ],
        )
    }

    #[test]
    fn collision_only_skips_scenery_and_shading() {
        let cfg = GpuConfig { viewport: Viewport::new(96, 96), ..GpuConfig::default() };
        let mut sim = Simulator::new(cfg.clone());
        let full = sim.render_frame(&trace(), PipelineMode::Rbcd, &mut NullCollisionUnit);
        let mut sim = Simulator::new(cfg);
        let pass = sim.render_frame(&trace(), PipelineMode::CollisionOnly, &mut NullCollisionUnit);
        // No fragment processing at all.
        assert_eq!(pass.raster.fragments_shaded, 0);
        assert_eq!(pass.raster.fragments_to_early_z, 0);
        assert_eq!(pass.raster.fp_busy_cycles, 0);
        // Scenery never enters the pipeline.
        assert!(pass.geometry.vertices_shaded < full.geometry.vertices_shaded);
        // The collision unit still receives every collisionable fragment.
        assert_eq!(
            pass.raster.fragments_collisionable,
            full.raster.fragments_collisionable
        );
        // The pass is much cheaper than a full render.
        assert!(pass.total_cycles() * 2 < full.total_cycles());
    }

    #[test]
    fn collision_only_detects_the_same_pairs() {
        // Checked through the public API: the pass produces identical
        // collisionable fragments, so any attached unit sees the same
        // data; assert via fragment counts per mode above and the
        // geometry tagging here.
        let cfg = GpuConfig { viewport: Viewport::new(96, 96), ..GpuConfig::default() };
        let mut sim = Simulator::new(cfg);
        let pass = sim.render_frame(&trace(), PipelineMode::CollisionOnly, &mut NullCollisionUnit);
        assert!(pass.geometry.triangles_tagged > 0, "culled faces still tagged");
    }
}
