//! Activity counters: the raw material of the paper's Figures 9–11.

use crate::cache::CacheStats;
use rbcd_trace::CounterSet;

/// Geometry Pipeline counters for one or more frames.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GeometryStats {
    /// Vertices run through the vertex processor.
    pub vertices_shaded: u64,
    /// Triangles assembled by Primitive Assembly.
    pub triangles_assembled: u64,
    /// Triangles discarded by near-plane clipping (fully behind).
    pub triangles_clipped_out: u64,
    /// Triangles emitted after clipping (may exceed assembled).
    pub triangles_after_clip: u64,
    /// Triangles dropped by Face Culling.
    pub triangles_culled: u64,
    /// Collisionable triangles tagged-to-be-culled instead of dropped
    /// (RBCD deferred face culling, §3.3). Zero in baseline mode.
    pub triangles_tagged: u64,
    /// Zero-area or off-screen triangles dropped before binning.
    pub triangles_degenerate: u64,
    /// Draw commands rejected by ingest validation (forged object ids,
    /// NaN transforms or vertices) and skipped whole.
    pub draws_quarantined: u64,
    /// (tile, primitive) binning entries written by the Polygon List
    /// Builder.
    pub bin_entries: u64,
    /// Primitive records written (one per surviving triangle).
    pub prim_records: u64,
    /// Tile Cache activity on the store path.
    pub tile_cache_stores: CacheStats,
    /// Vertex cache activity.
    pub vertex_cache: CacheStats,
    /// Total vertex-processor instruction cycles (work, not wall time).
    pub vp_busy_cycles: u64,
    /// Geometry Pipeline cycles.
    pub cycles: u64,
    /// Draws whose post-transform geometry was replayed from the
    /// incremental front-end cache instead of being re-shaded. Zero
    /// under the full-rebuild front-end. Accounting-only, like
    /// `tile.scan_skipped`: the energy model never reads it.
    pub reuse_draws: u64,
    /// Draws shaded/clipped fresh by the incremental front-end (cache
    /// misses). Zero under the full-rebuild front-end. Accounting-only;
    /// excluded from the energy model.
    pub shaded_draws: u64,
    /// Bin entries spliced into `BinnedTiles` from cached draw geometry
    /// rather than recomputed. Zero under the full-rebuild front-end.
    /// Accounting-only; excluded from the energy model.
    pub bin_splices: u64,
}

/// Raster Pipeline counters for one or more frames.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RasterStats {
    /// Tiles with at least one primitive (processed tiles).
    pub tiles_processed: u64,
    /// Primitive records fetched from the Tile Cache (with repetition
    /// across tiles).
    pub primitives_fetched: u64,
    /// Tile Cache activity on the load path.
    pub tile_cache_loads: CacheStats,
    /// Fragments produced by the Rasterizer (all of them, including
    /// tagged-to-be-culled ones).
    pub fragments_rasterized: u64,
    /// Fragments forwarded to the RBCD unit.
    pub fragments_collisionable: u64,
    /// Fragments sent to the Early-Z test (excludes tagged-to-be-culled).
    pub fragments_to_early_z: u64,
    /// Fragments passing Early-Z and shaded by the fragment processors.
    pub fragments_shaded: u64,
    /// Distinct pixels covered by at least one shaded fragment — the
    /// fragment count an ideal deferred renderer (PowerVR TBDR, §3.1)
    /// would shade.
    pub pixels_covered: u64,
    /// Bounding-box rows the span rasterizer resolved as empty in O(1)
    /// (mask hot path only; 0 under `HotPathMode::Reference`).
    pub rows_empty: u64,
    /// Bounding-box rows the span rasterizer resolved as fully covered
    /// in O(1) (mask hot path only; 0 under `HotPathMode::Reference`).
    pub rows_full: u64,
    /// Cycles the fragment processors spent shading.
    pub fp_busy_cycles: u64,
    /// Cycles the fragment processors sat idle while the pipeline ran.
    pub fp_idle_cycles: u64,
    /// Cycles the Tile Scheduler stalled waiting for a free ZEB (§3.5).
    pub zeb_stall_cycles: u64,
    /// Raster Pipeline cycles (including stalls).
    pub cycles: u64,
}

/// Temporal-coherence layer counters for one or more frames. All four
/// stay zero when reuse is disabled, so the counter registry keeps the
/// same shape either way.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoherenceStats {
    /// Per-draw content hashes computed this frame (one per live draw).
    pub draw_hashes: u64,
    /// Cycles charged for draw hashing plus per-tile signature checks —
    /// the only cost a reused tile pays.
    pub signature_cycles: u64,
    /// Active tiles whose signature was compared against the cache.
    pub tiles_checked: u64,
    /// Tiles whose signature matched and whose cached result was
    /// replayed instead of re-rasterizing, re-inserting, and re-scanning.
    pub tiles_reused: u64,
}

/// Overload-governor counters for one or more frames. All five stay
/// zero when the governor is disabled (the default), so the counter
/// registry keeps the same shape either way — the same convention as
/// [`CoherenceStats`].
///
/// Like the mask-only raster diagnostics of PR 5, these are
/// *accounting* counters, not hardware events: the energy model never
/// reads them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GovernorStats {
    /// Circuit-breaker trips observed by the host-side governor.
    /// Filled by the harness that owns the `rbcd_core`-side breaker,
    /// not by the simulator (which has no cross-frame escalation view).
    pub breaker_trips: u64,
    /// The per-frame merge-timeline budget in force (summed across
    /// accumulated frames; zero when no deadline was set).
    pub budget_cycles: u64,
    /// Stale pairs carried forward for shed tiles. Filled by the
    /// host-side governor alongside `breaker_trips`.
    pub stale_pairs: u64,
    /// Tiles whose scan was coarsened (effective `M` raised) by policy
    /// rung 2.
    pub tiles_coarsened: u64,
    /// Tiles shed from the frame by policy rung 3 (their collision work
    /// was dropped and routed to the CPU detector).
    pub tiles_shed: u64,
}

/// Screen-space broad-phase counters for one or more frames. All four
/// stay zero when the broad phase is off (the library default), so the
/// counter registry keeps the same shape either way — the same
/// convention as [`CoherenceStats`] and [`GovernorStats`].
///
/// Like the mask-only raster diagnostics of PR 5, these are
/// *accounting* counters, not hardware events: the energy model never
/// reads them. Enabling the broad phase moves raster timing and these
/// keys, never the pair set or any `rbcd.*` counter.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BroadphaseStats {
    /// Distinct collidable objects whose binned bounds entered the
    /// interval sweep.
    pub objects_swept: u64,
    /// Swept objects with no pair-feasible partner anywhere on screen.
    pub objects_infeasible: u64,
    /// Merge-timeline cycles charged for the per-frame bounds fold and
    /// interval sweep (also folded into `raster.fp_idle_cycles`, like
    /// signature checks).
    pub sweep_cycles: u64,
    /// Active tiles whose image-side work (scenery raster, Early-Z,
    /// shading, ZEB claim) was elided because no feasible pair could
    /// occur there. Their collisionable fragments still reached the
    /// unit bit-identically.
    pub tiles_skipped: u64,
}

/// Combined per-frame (or accumulated) statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrameStats {
    /// Geometry Pipeline counters.
    pub geometry: GeometryStats,
    /// Raster Pipeline counters.
    pub raster: RasterStats,
    /// Temporal-coherence layer counters (all zero when reuse is off).
    pub coherence: CoherenceStats,
    /// Overload-governor counters (all zero when the governor is off).
    pub governor: GovernorStats,
    /// Screen-space broad-phase counters (all zero when the broad phase
    /// is off).
    pub broadphase: BroadphaseStats,
    /// Frames accumulated into this record.
    pub frames: u64,
}

impl FrameStats {
    /// Total GPU cycles: the Raster Pipeline starts when the frame's
    /// geometry has been binned (TBR), so the pipelines serialize within
    /// a frame.
    pub fn total_cycles(&self) -> u64 {
        self.geometry.cycles + self.raster.cycles
    }

    /// Accumulates another frame's counters into `self`.
    pub fn accumulate(&mut self, other: &FrameStats) {
        let g = &mut self.geometry;
        let o = &other.geometry;
        g.vertices_shaded += o.vertices_shaded;
        g.triangles_assembled += o.triangles_assembled;
        g.triangles_clipped_out += o.triangles_clipped_out;
        g.triangles_after_clip += o.triangles_after_clip;
        g.triangles_culled += o.triangles_culled;
        g.triangles_tagged += o.triangles_tagged;
        g.triangles_degenerate += o.triangles_degenerate;
        g.draws_quarantined += o.draws_quarantined;
        g.bin_entries += o.bin_entries;
        g.prim_records += o.prim_records;
        g.tile_cache_stores.add(&o.tile_cache_stores);
        g.vertex_cache.add(&o.vertex_cache);
        g.vp_busy_cycles += o.vp_busy_cycles;
        g.cycles += o.cycles;
        g.reuse_draws += o.reuse_draws;
        g.shaded_draws += o.shaded_draws;
        g.bin_splices += o.bin_splices;

        let r = &mut self.raster;
        let o = &other.raster;
        r.tiles_processed += o.tiles_processed;
        r.primitives_fetched += o.primitives_fetched;
        r.tile_cache_loads.add(&o.tile_cache_loads);
        r.fragments_rasterized += o.fragments_rasterized;
        r.fragments_collisionable += o.fragments_collisionable;
        r.fragments_to_early_z += o.fragments_to_early_z;
        r.fragments_shaded += o.fragments_shaded;
        r.pixels_covered += o.pixels_covered;
        r.rows_empty += o.rows_empty;
        r.rows_full += o.rows_full;
        r.fp_busy_cycles += o.fp_busy_cycles;
        r.fp_idle_cycles += o.fp_idle_cycles;
        r.zeb_stall_cycles += o.zeb_stall_cycles;
        r.cycles += o.cycles;

        let c = &mut self.coherence;
        let o = &other.coherence;
        c.draw_hashes += o.draw_hashes;
        c.signature_cycles += o.signature_cycles;
        c.tiles_checked += o.tiles_checked;
        c.tiles_reused += o.tiles_reused;

        let v = &mut self.governor;
        let o = &other.governor;
        v.breaker_trips += o.breaker_trips;
        v.budget_cycles += o.budget_cycles;
        v.stale_pairs += o.stale_pairs;
        v.tiles_coarsened += o.tiles_coarsened;
        v.tiles_shed += o.tiles_shed;

        let b = &mut self.broadphase;
        let o = &other.broadphase;
        b.objects_swept += o.objects_swept;
        b.objects_infeasible += o.objects_infeasible;
        b.sweep_cycles += o.sweep_cycles;
        b.tiles_skipped += o.tiles_skipped;

        self.frames += other.frames;
    }

    /// Exports every counter into the typed registry under stable
    /// dotted keys (`geometry.*`, `raster.*`, `frames`). This is the
    /// uniform surface consumers read instead of reaching into the
    /// per-pipeline structs; the key set is pinned by the
    /// golden-counter test in `rbcd-bench`.
    pub fn counter_set(&self) -> CounterSet {
        let g = &self.geometry;
        let r = &self.raster;
        let c = &self.coherence;
        let v = &self.governor;
        let b = &self.broadphase;
        [
            ("broadphase.objects_infeasible", b.objects_infeasible),
            ("broadphase.objects_swept", b.objects_swept),
            ("broadphase.sweep_cycles", b.sweep_cycles),
            ("broadphase.tiles_skipped", b.tiles_skipped),
            ("coherence.draw_hashes", c.draw_hashes),
            ("coherence.signature_cycles", c.signature_cycles),
            ("coherence.tiles_checked", c.tiles_checked),
            ("coherence.tiles_reused", c.tiles_reused),
            ("geom.bin_splices", g.bin_splices),
            ("geom.reuse_draws", g.reuse_draws),
            ("geom.shaded_draws", g.shaded_draws),
            ("geometry.vertices_shaded", g.vertices_shaded),
            ("geometry.triangles_assembled", g.triangles_assembled),
            ("geometry.triangles_clipped_out", g.triangles_clipped_out),
            ("geometry.triangles_after_clip", g.triangles_after_clip),
            ("geometry.triangles_culled", g.triangles_culled),
            ("geometry.triangles_tagged", g.triangles_tagged),
            ("geometry.triangles_degenerate", g.triangles_degenerate),
            ("geometry.draws_quarantined", g.draws_quarantined),
            ("geometry.bin_entries", g.bin_entries),
            ("geometry.prim_records", g.prim_records),
            ("geometry.tile_cache_store_accesses", g.tile_cache_stores.accesses()),
            ("geometry.tile_cache_store_misses", g.tile_cache_stores.misses()),
            ("geometry.vertex_cache_accesses", g.vertex_cache.accesses()),
            ("geometry.vertex_cache_misses", g.vertex_cache.misses()),
            ("geometry.vp_busy_cycles", g.vp_busy_cycles),
            ("geometry.cycles", g.cycles),
            ("governor.breaker_trips", v.breaker_trips),
            ("governor.budget_cycles", v.budget_cycles),
            ("governor.stale_pairs", v.stale_pairs),
            ("governor.tiles_coarsened", v.tiles_coarsened),
            ("governor.tiles_shed", v.tiles_shed),
            ("raster.tiles_processed", r.tiles_processed),
            ("raster.primitives_fetched", r.primitives_fetched),
            ("raster.tile_cache_load_accesses", r.tile_cache_loads.accesses()),
            ("raster.tile_cache_load_misses", r.tile_cache_loads.misses()),
            ("raster.fragments_rasterized", r.fragments_rasterized),
            ("raster.fragments_collisionable", r.fragments_collisionable),
            ("raster.fragments_to_early_z", r.fragments_to_early_z),
            ("raster.fragments_shaded", r.fragments_shaded),
            ("raster.pixels_covered", r.pixels_covered),
            ("raster.rows_empty", r.rows_empty),
            ("raster.rows_full", r.rows_full),
            ("raster.fp_busy_cycles", r.fp_busy_cycles),
            ("raster.fp_idle_cycles", r.fp_idle_cycles),
            ("raster.zeb_stall_cycles", r.zeb_stall_cycles),
            ("raster.cycles", r.cycles),
            ("frames", self.frames),
        ]
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_everything() {
        let mut a = FrameStats::default();
        a.geometry.vertices_shaded = 10;
        a.geometry.cycles = 100;
        a.raster.fragments_rasterized = 50;
        a.raster.cycles = 200;
        a.frames = 1;
        let mut total = FrameStats::default();
        total.accumulate(&a);
        total.accumulate(&a);
        assert_eq!(total.geometry.vertices_shaded, 20);
        assert_eq!(total.raster.fragments_rasterized, 100);
        assert_eq!(total.total_cycles(), 600);
        assert_eq!(total.frames, 2);
    }

    #[test]
    fn total_is_geometry_plus_raster() {
        let mut s = FrameStats::default();
        s.geometry.cycles = 7;
        s.raster.cycles = 11;
        assert_eq!(s.total_cycles(), 18);
    }
}
