//! Randomized property tests for the rasterizer and clipper, driven by
//! the workspace's seeded [`Rng`].

use rbcd_gpu::{clip_near, rasterize_triangle_in_tile, Fragment, ScreenTriangle};
use rbcd_math::{Rng, Vec3, Vec4};

const CASES: usize = 128;

fn screen_pt(rng: &mut Rng) -> Vec3 {
    Vec3::new(
        rng.gen_range(0.0f32..64.0),
        rng.gen_range(0.0f32..64.0),
        rng.gen_range(0.0f32..1.0),
    )
}

fn raster_all(tri: &ScreenTriangle) -> Vec<Fragment> {
    let mut out = Vec::new();
    // One 64×64 "tile" covering the whole test viewport.
    rasterize_triangle_in_tile(tri, 0, 0, 64, 64, 64, &mut out);
    out
}

/// Winding flip changes facing but not coverage.
#[test]
fn coverage_is_winding_independent() {
    let mut rng = Rng::seed_from_u64(0x31);
    for _ in 0..CASES {
        let (a, b, c) = (screen_pt(&mut rng), screen_pt(&mut rng), screen_pt(&mut rng));
        let t = ScreenTriangle::new(a, b, c);
        let f = ScreenTriangle::new(a, c, b);
        let mut pa: Vec<(u32, u32)> = raster_all(&t).iter().map(|x| (x.x, x.y)).collect();
        let mut pb: Vec<(u32, u32)> = raster_all(&f).iter().map(|x| (x.x, x.y)).collect();
        pa.sort_unstable();
        pb.sort_unstable();
        assert_eq!(pa, pb);
        if let (Some(fa), Some(fb)) = (t.facing(), f.facing()) {
            assert_eq!(fa, fb.flip());
        }
    }
}

/// Fragment count is bounded by the triangle's pixel bounding box.
#[test]
fn coverage_bounded_by_bbox() {
    let mut rng = Rng::seed_from_u64(0x32);
    for _ in 0..CASES {
        let (a, b, c) = (screen_pt(&mut rng), screen_pt(&mut rng), screen_pt(&mut rng));
        let t = ScreenTriangle::new(a, b, c);
        let frags = raster_all(&t);
        if let Some((x0, y0, x1, y1)) = t.pixel_bounds(64, 64) {
            let cap = ((x1 - x0 + 1) * (y1 - y0 + 1)) as usize;
            assert!(frags.len() <= cap);
            for f in &frags {
                assert!(f.x >= x0 && f.x <= x1 && f.y >= y0 && f.y <= y1);
            }
        } else {
            assert!(frags.is_empty());
        }
    }
}

/// Interpolated depths stay within the vertex depth range.
#[test]
fn depth_within_vertex_range() {
    let mut rng = Rng::seed_from_u64(0x33);
    for _ in 0..CASES {
        let (a, b, c) = (screen_pt(&mut rng), screen_pt(&mut rng), screen_pt(&mut rng));
        let t = ScreenTriangle::new(a, b, c);
        let lo = a.z.min(b.z).min(c.z) - 1e-3;
        let hi = a.z.max(b.z).max(c.z) + 1e-3;
        for f in raster_all(&t) {
            assert!(f.z >= lo && f.z <= hi, "z {} outside [{lo}, {hi}]", f.z);
        }
    }
}

/// Splitting the viewport into tiles partitions the fragment set.
#[test]
fn tiles_partition_fragments() {
    let mut rng = Rng::seed_from_u64(0x34);
    for _ in 0..CASES {
        let (a, b, c) = (screen_pt(&mut rng), screen_pt(&mut rng), screen_pt(&mut rng));
        let t = ScreenTriangle::new(a, b, c);
        let whole = raster_all(&t).len();
        let mut total = 0usize;
        for ty in (0..64).step_by(16) {
            for tx in (0..64).step_by(16) {
                let mut out = Vec::new();
                rasterize_triangle_in_tile(&t, tx, ty, 16, 64, 64, &mut out);
                total += out.len();
            }
        }
        assert_eq!(total, whole);
    }
}

/// Near-plane clipping emits only vertices with `z + w >= 0`, and
/// passes fully-inside triangles through untouched.
#[test]
fn clip_output_is_inside() {
    let mut rng = Rng::seed_from_u64(0x35);
    for _ in 0..CASES {
        let az = rng.gen_range(-2.0f32..2.0);
        let bz = rng.gen_range(-2.0f32..2.0);
        let cz = rng.gen_range(-2.0f32..2.0);
        let a = Vec4::new(0.0, 0.0, az, 1.0);
        let b = Vec4::new(1.0, 0.0, bz, 1.0);
        let c = Vec4::new(0.0, 1.0, cz, 1.0);
        let tris = clip_near(a, b, c);
        for tri in &tris {
            for p in tri {
                assert!(p.z + p.w >= -1e-4);
            }
        }
        let all_inside = az >= -1.0 && bz >= -1.0 && cz >= -1.0;
        if all_inside {
            assert_eq!(tris.len(), 1);
        }
        let all_outside = az < -1.0 && bz < -1.0 && cz < -1.0;
        if all_outside {
            assert!(tris.is_empty());
        }
    }
}
