//! Randomized property tests for the rasterizer and clipper, driven by
//! the workspace's seeded [`Rng`].

use rbcd_gpu::{
    clip_near, rasterize_triangle_in_tile, rasterize_triangle_in_tile_masked, Fragment,
    ScreenTriangle,
};
use rbcd_math::{Rng, Vec3, Vec4};

const CASES: usize = 128;

fn screen_pt(rng: &mut Rng) -> Vec3 {
    Vec3::new(
        rng.gen_range(0.0f32..64.0),
        rng.gen_range(0.0f32..64.0),
        rng.gen_range(0.0f32..1.0),
    )
}

fn raster_all(tri: &ScreenTriangle) -> Vec<Fragment> {
    let mut out = Vec::new();
    // One 64×64 "tile" covering the whole test viewport.
    rasterize_triangle_in_tile(tri, 0, 0, 64, 64, 64, &mut out);
    out
}

/// Winding flip changes facing but not coverage.
#[test]
fn coverage_is_winding_independent() {
    let mut rng = Rng::seed_from_u64(0x31);
    for _ in 0..CASES {
        let (a, b, c) = (screen_pt(&mut rng), screen_pt(&mut rng), screen_pt(&mut rng));
        let t = ScreenTriangle::new(a, b, c);
        let f = ScreenTriangle::new(a, c, b);
        let mut pa: Vec<(u32, u32)> = raster_all(&t).iter().map(|x| (x.x, x.y)).collect();
        let mut pb: Vec<(u32, u32)> = raster_all(&f).iter().map(|x| (x.x, x.y)).collect();
        pa.sort_unstable();
        pb.sort_unstable();
        assert_eq!(pa, pb);
        if let (Some(fa), Some(fb)) = (t.facing(), f.facing()) {
            assert_eq!(fa, fb.flip());
        }
    }
}

/// Fragment count is bounded by the triangle's pixel bounding box.
#[test]
fn coverage_bounded_by_bbox() {
    let mut rng = Rng::seed_from_u64(0x32);
    for _ in 0..CASES {
        let (a, b, c) = (screen_pt(&mut rng), screen_pt(&mut rng), screen_pt(&mut rng));
        let t = ScreenTriangle::new(a, b, c);
        let frags = raster_all(&t);
        if let Some((x0, y0, x1, y1)) = t.pixel_bounds(64, 64) {
            let cap = ((x1 - x0 + 1) * (y1 - y0 + 1)) as usize;
            assert!(frags.len() <= cap);
            for f in &frags {
                assert!(f.x >= x0 && f.x <= x1 && f.y >= y0 && f.y <= y1);
            }
        } else {
            assert!(frags.is_empty());
        }
    }
}

/// Interpolated depths stay within the vertex depth range.
#[test]
fn depth_within_vertex_range() {
    let mut rng = Rng::seed_from_u64(0x33);
    for _ in 0..CASES {
        let (a, b, c) = (screen_pt(&mut rng), screen_pt(&mut rng), screen_pt(&mut rng));
        let t = ScreenTriangle::new(a, b, c);
        let lo = a.z.min(b.z).min(c.z) - 1e-3;
        let hi = a.z.max(b.z).max(c.z) + 1e-3;
        for f in raster_all(&t) {
            assert!(f.z >= lo && f.z <= hi, "z {} outside [{lo}, {hi}]", f.z);
        }
    }
}

/// Splitting the viewport into tiles partitions the fragment set.
#[test]
fn tiles_partition_fragments() {
    let mut rng = Rng::seed_from_u64(0x34);
    for _ in 0..CASES {
        let (a, b, c) = (screen_pt(&mut rng), screen_pt(&mut rng), screen_pt(&mut rng));
        let t = ScreenTriangle::new(a, b, c);
        let whole = raster_all(&t).len();
        let mut total = 0usize;
        for ty in (0..64).step_by(16) {
            for tx in (0..64).step_by(16) {
                let mut out = Vec::new();
                rasterize_triangle_in_tile(&t, tx, ty, 16, 64, 64, &mut out);
                total += out.len();
            }
        }
        assert_eq!(total, whole);
    }
}

/// Near-plane clipping emits only vertices with `z + w >= 0`, and
/// passes fully-inside triangles through untouched.
#[test]
fn clip_output_is_inside() {
    let mut rng = Rng::seed_from_u64(0x35);
    for _ in 0..CASES {
        let az = rng.gen_range(-2.0f32..2.0);
        let bz = rng.gen_range(-2.0f32..2.0);
        let cz = rng.gen_range(-2.0f32..2.0);
        let a = Vec4::new(0.0, 0.0, az, 1.0);
        let b = Vec4::new(1.0, 0.0, bz, 1.0);
        let c = Vec4::new(0.0, 1.0, cz, 1.0);
        let tris = clip_near(a, b, c);
        for tri in &tris {
            for p in tri {
                assert!(p.z + p.w >= -1e-4);
            }
        }
        let all_inside = az >= -1.0 && bz >= -1.0 && cz >= -1.0;
        if all_inside {
            assert_eq!(tris.len(), 1);
        }
        let all_outside = az < -1.0 && bz < -1.0 && cz < -1.0;
        if all_outside {
            assert!(tris.is_empty());
        }
    }
}

/// One triangle for the mask-vs-reference sweep, drawn from a rotating
/// set of stress classes.
fn sweep_tri(rng: &mut Rng, class: usize) -> ScreenTriangle {
    let pt = |rng: &mut Rng, lo: f32, hi: f32| {
        Vec3::new(rng.gen_range(lo..hi), rng.gen_range(lo..hi), rng.gen_range(0.0f32..1.0))
    };
    match class {
        // Sub-pixel: the whole triangle fits inside one pixel, so
        // coverage hinges on whether it straddles a single centre.
        0 => {
            let cx = rng.gen_range(0.0f32..64.0);
            let cy = rng.gen_range(0.0f32..64.0);
            let mut v = [Vec3::ZERO; 3];
            for p in &mut v {
                *p = Vec3::new(
                    cx + rng.gen_range(-0.4f32..0.4),
                    cy + rng.gen_range(-0.4f32..0.4),
                    rng.gen_range(0.0f32..1.0),
                );
            }
            ScreenTriangle::new(v[0], v[1], v[2])
        }
        // On-edge: vertices snapped to half-integer coordinates, so
        // edges pass exactly through pixel centres and every `w == 0.0`
        // tie-break in the predicate is exercised.
        1 => {
            let snap = |rng: &mut Rng| (rng.gen_range(0u32..129) as f32) * 0.5;
            ScreenTriangle::new(
                Vec3::new(snap(rng), snap(rng), rng.gen_range(0.0f32..1.0)),
                Vec3::new(snap(rng), snap(rng), rng.gen_range(0.0f32..1.0)),
                Vec3::new(snap(rng), snap(rng), rng.gen_range(0.0f32..1.0)),
            )
        }
        // Degenerate: collinear vertices or a repeated vertex — zero
        // signed area, which both paths must reject identically.
        2 => {
            let a = pt(rng, 0.0, 64.0);
            if rng.gen_bool(0.5) {
                let d = pt(rng, -8.0, 8.0);
                let t = rng.gen_range(0.0f32..2.0);
                let s = rng.gen_range(0.0f32..2.0);
                ScreenTriangle::new(
                    a,
                    Vec3::new(a.x + t * d.x, a.y + t * d.y, a.z),
                    Vec3::new(a.x + s * d.x, a.y + s * d.y, a.z),
                )
            } else {
                ScreenTriangle::new(a, a, pt(rng, 0.0, 64.0))
            }
        }
        // Sliver: two distant vertices plus one a hair off the segment
        // between them — long rows with zero or one covered pixel.
        3 => {
            let a = pt(rng, 0.0, 64.0);
            let b = pt(rng, 0.0, 64.0);
            let t = rng.gen_range(0.2f32..0.8);
            let off = rng.gen_range(-2e-3f32..2e-3);
            ScreenTriangle::new(
                a,
                b,
                Vec3::new(
                    a.x + t * (b.x - a.x) - off * (b.y - a.y),
                    a.y + t * (b.y - a.y) + off * (b.x - a.x),
                    rng.gen_range(0.0f32..1.0),
                ),
            )
        }
        // Overhanging: vertices beyond the viewport so the bbox clamps.
        4 => ScreenTriangle::new(pt(rng, -32.0, 96.0), pt(rng, -32.0, 96.0), pt(rng, -32.0, 96.0)),
        // General random.
        _ => ScreenTriangle::new(pt(rng, 0.0, 64.0), pt(rng, 0.0, 64.0), pt(rng, 0.0, 64.0)),
    }
}

/// Tentpole exactness sweep: across ≥10k randomized triangles — sub-
/// pixel, on-edge, degenerate, sliver, clamped, and general — the
/// span-mask rasterizer must reproduce the reference fragment stream
/// exactly: same fragments, same order, same `f32` depth bits, on
/// every 16×16 tile of the viewport.
#[test]
fn mask_matches_reference_fragment_stream() {
    let mut rng = Rng::seed_from_u64(0xB1A5);
    let cases = 10_500;
    for case in 0..cases {
        let t = sweep_tri(&mut rng, case % 6);
        for ty in (0..64).step_by(16) {
            for tx in (0..64).step_by(16) {
                let mut want = Vec::new();
                rasterize_triangle_in_tile(&t, tx, ty, 16, 64, 64, &mut want);
                let mut got = Vec::new();
                let out = rasterize_triangle_in_tile_masked(&t, tx, ty, 16, 64, 64, &mut got);
                assert_eq!(out.fragments, got.len());
                assert_eq!(
                    got.len(),
                    want.len(),
                    "fragment count diverged (case {case}, tile {tx},{ty}, tri {:?})",
                    t.v
                );
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(
                        (g.x, g.y),
                        (w.x, w.y),
                        "fragment order diverged (case {case}, tile {tx},{ty}, tri {:?})",
                        t.v
                    );
                    assert_eq!(
                        g.z.to_bits(),
                        w.z.to_bits(),
                        "depth bits diverged (case {case}, tile {tx},{ty}, tri {:?})",
                        t.v
                    );
                }
            }
        }
    }
}
