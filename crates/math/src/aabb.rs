//! Axis-aligned bounding boxes.

use crate::{Mat4, Vec3};

/// An axis-aligned bounding box defined by its minimum and maximum corners.
///
/// The paper's baseline broad phase is "the most simple broad phase, an
/// AABB overlap test" (§5.1); this type is shared by the CPU collision
/// baselines and the GPU simulator's binning logic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any `min` component exceeds the
    /// corresponding `max` component.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb::new: min {min:?} exceeds max {max:?}"
        );
        Self { min, max }
    }

    /// The box containing exactly one point.
    pub fn from_point(p: Vec3) -> Self {
        Self { min: p, max: p }
    }

    /// Smallest box containing all points, or `None` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = Self::from_point(first);
        for p in it {
            bb.expand_point(p);
        }
        Some(bb)
    }

    /// Cube of half-extent `h` centred at `c`.
    pub fn from_center_half_extents(c: Vec3, h: Vec3) -> Self {
        Self::new(c - h, c + h)
    }

    /// Grows the box to contain `p`.
    pub fn expand_point(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Smallest box containing both `self` and `other`.
    pub fn union(&self, other: &Self) -> Self {
        Self {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Centre point.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Half-extents (always non-negative for a valid box).
    pub fn half_extents(&self) -> Vec3 {
        (self.max - self.min) * 0.5
    }

    /// Box expanded by `margin` on every side.
    pub fn inflate(&self, margin: f32) -> Self {
        let m = Vec3::splat(margin);
        Self { min: self.min - m, max: self.max + m }
    }

    /// `true` when the closed boxes share at least one point.
    pub fn intersects(&self, other: &Self) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// `true` when `p` lies inside the closed box.
    pub fn contains_point(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// `true` when `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Self) -> bool {
        self.contains_point(other.min) && self.contains_point(other.max)
    }

    /// Volume of the box.
    pub fn volume(&self) -> f32 {
        let d = self.max - self.min;
        d.x * d.y * d.z
    }

    /// Surface area of the box.
    pub fn surface_area(&self) -> f32 {
        let d = self.max - self.min;
        2.0 * (d.x * d.y + d.y * d.z + d.z * d.x)
    }

    /// The eight corner points.
    pub fn corners(&self) -> [Vec3; 8] {
        let (mn, mx) = (self.min, self.max);
        [
            Vec3::new(mn.x, mn.y, mn.z),
            Vec3::new(mx.x, mn.y, mn.z),
            Vec3::new(mn.x, mx.y, mn.z),
            Vec3::new(mx.x, mx.y, mn.z),
            Vec3::new(mn.x, mn.y, mx.z),
            Vec3::new(mx.x, mn.y, mx.z),
            Vec3::new(mn.x, mx.y, mx.z),
            Vec3::new(mx.x, mx.y, mx.z),
        ]
    }

    /// Axis-aligned box containing this box transformed by `m`.
    ///
    /// Uses the exact corner transform, so the result is the tightest AABB
    /// of the transformed corners (not of the transformed solid, which for
    /// affine maps is the same thing).
    pub fn transformed(&self, m: &Mat4) -> Self {
        Self::from_points(self.corners().into_iter().map(|c| m.transform_point(c)))
            .expect("corners are non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn intersects_is_symmetric_and_touching_counts() {
        let a = unit();
        let b = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        let c = Aabb::new(Vec3::new(1.1, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn disjoint_on_each_axis() {
        let a = unit();
        for axis in 0..3 {
            let mut min = Vec3::ZERO;
            let mut max = Vec3::ONE;
            match axis {
                0 => {
                    min.x += 2.0;
                    max.x += 2.0;
                }
                1 => {
                    min.y += 2.0;
                    max.y += 2.0;
                }
                _ => {
                    min.z += 2.0;
                    max.z += 2.0;
                }
            }
            assert!(!a.intersects(&Aabb::new(min, max)));
        }
    }

    #[test]
    fn from_points_bounds_everything() {
        let pts = [
            Vec3::new(1.0, -2.0, 0.5),
            Vec3::new(-3.0, 4.0, 2.0),
            Vec3::new(0.0, 0.0, -1.0),
        ];
        let bb = Aabb::from_points(pts).unwrap();
        for p in pts {
            assert!(bb.contains_point(p));
        }
        assert_eq!(bb.min, Vec3::new(-3.0, -2.0, -1.0));
        assert_eq!(bb.max, Vec3::new(1.0, 4.0, 2.0));
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn union_contains_both() {
        let a = unit();
        let b = Aabb::new(Vec3::splat(5.0), Vec3::splat(6.0));
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
    }

    #[test]
    fn geometry_quantities() {
        let bb = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(bb.volume(), 24.0);
        assert_eq!(bb.surface_area(), 2.0 * (6.0 + 12.0 + 8.0));
        assert_eq!(bb.center(), Vec3::new(1.0, 1.5, 2.0));
        assert_eq!(bb.half_extents(), Vec3::new(1.0, 1.5, 2.0));
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let bb = unit().inflate(0.5);
        assert_eq!(bb.min, Vec3::splat(-0.5));
        assert_eq!(bb.max, Vec3::splat(1.5));
    }

    #[test]
    fn transformed_by_rotation_still_bounds() {
        let m = Mat4::rotation_z(0.7) * Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        let bb = unit();
        let tbb = bb.transformed(&m);
        for c in bb.corners() {
            assert!(tbb.contains_point(m.transform_point(c)));
        }
    }

    #[test]
    fn corners_are_distinct_for_proper_box() {
        let cs = unit().corners();
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_ne!(cs[i], cs[j]);
            }
        }
    }
}
