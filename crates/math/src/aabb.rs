//! Axis-aligned bounding boxes.

use crate::{Mat4, Vec3};

/// An axis-aligned bounding box defined by its minimum and maximum corners.
///
/// The paper's baseline broad phase is "the most simple broad phase, an
/// AABB overlap test" (§5.1); this type is shared by the CPU collision
/// baselines and the GPU simulator's binning logic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any `min` component exceeds the
    /// corresponding `max` component.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb::new: min {min:?} exceeds max {max:?}"
        );
        Self { min, max }
    }

    /// The box containing exactly one point.
    pub fn from_point(p: Vec3) -> Self {
        Self { min: p, max: p }
    }

    /// Smallest box containing all points, or `None` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = Self::from_point(first);
        for p in it {
            bb.expand_point(p);
        }
        Some(bb)
    }

    /// Cube of half-extent `h` centred at `c`.
    pub fn from_center_half_extents(c: Vec3, h: Vec3) -> Self {
        Self::new(c - h, c + h)
    }

    /// Grows the box to contain `p`.
    pub fn expand_point(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Smallest box containing both `self` and `other`.
    pub fn union(&self, other: &Self) -> Self {
        Self {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Centre point.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Half-extents (always non-negative for a valid box).
    pub fn half_extents(&self) -> Vec3 {
        (self.max - self.min) * 0.5
    }

    /// Box expanded by `margin` on every side.
    pub fn inflate(&self, margin: f32) -> Self {
        let m = Vec3::splat(margin);
        Self { min: self.min - m, max: self.max + m }
    }

    /// `true` when the closed boxes share at least one point.
    pub fn intersects(&self, other: &Self) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// `true` unless the closed boxes are *provably* disjoint — the
    /// fault-tolerant overlap test for pair-feasibility pruning.
    ///
    /// [`Aabb::intersects`] answers "do these boxes overlap?" and treats
    /// any NaN comparison as *no overlap*, which is the wrong direction
    /// for a broad phase: pruning a pair because a fault-injected NaN
    /// poisoned a bound would silently lose real collisions. This test
    /// inverts the question — it proves disjointness with strict
    /// comparisons and reports *feasible* whenever that proof fails, so
    /// every degenerate input falls through to the safe side:
    ///
    /// * any NaN coordinate in either box → feasible: a NaN marks the
    ///   whole fold as corrupted, so no axis of that box — even a
    ///   finite-looking one — is trusted to prove disjointness;
    /// * inverted extents (`min > max` on an axis, e.g. built by folding
    ///   bounds over corrupted geometry) → the axis interval is
    ///   normalized to `[min(lo,hi), max(lo,hi)]` before the comparison,
    ///   so an inverted box that genuinely straddles another can never
    ///   be read as disjoint;
    /// * zero-extent (point/plane) boxes → ordinary closed-box
    ///   semantics: touching counts as feasible.
    ///
    /// For finite well-formed boxes this is exactly
    /// [`Aabb::intersects`].
    pub fn feasibly_overlaps(&self, other: &Self) -> bool {
        fn any_nan(b: &Aabb) -> bool {
            b.min.x.is_nan()
                || b.min.y.is_nan()
                || b.min.z.is_nan()
                || b.max.x.is_nan()
                || b.max.y.is_nan()
                || b.max.z.is_nan()
        }
        if any_nan(self) || any_nan(other) {
            return true;
        }
        fn axis_feasible(a_lo: f32, a_hi: f32, b_lo: f32, b_hi: f32) -> bool {
            let (a_lo, a_hi) = (a_lo.min(a_hi), a_lo.max(a_hi));
            let (b_lo, b_hi) = (b_lo.min(b_hi), b_lo.max(b_hi));
            !(a_hi < b_lo || b_hi < a_lo)
        }
        axis_feasible(self.min.x, self.max.x, other.min.x, other.max.x)
            && axis_feasible(self.min.y, self.max.y, other.min.y, other.max.y)
            && axis_feasible(self.min.z, self.max.z, other.min.z, other.max.z)
    }

    /// `true` when `p` lies inside the closed box.
    pub fn contains_point(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// `true` when `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Self) -> bool {
        self.contains_point(other.min) && self.contains_point(other.max)
    }

    /// Volume of the box.
    pub fn volume(&self) -> f32 {
        let d = self.max - self.min;
        d.x * d.y * d.z
    }

    /// Surface area of the box.
    pub fn surface_area(&self) -> f32 {
        let d = self.max - self.min;
        2.0 * (d.x * d.y + d.y * d.z + d.z * d.x)
    }

    /// The eight corner points.
    pub fn corners(&self) -> [Vec3; 8] {
        let (mn, mx) = (self.min, self.max);
        [
            Vec3::new(mn.x, mn.y, mn.z),
            Vec3::new(mx.x, mn.y, mn.z),
            Vec3::new(mn.x, mx.y, mn.z),
            Vec3::new(mx.x, mx.y, mn.z),
            Vec3::new(mn.x, mn.y, mx.z),
            Vec3::new(mx.x, mn.y, mx.z),
            Vec3::new(mn.x, mx.y, mx.z),
            Vec3::new(mx.x, mx.y, mx.z),
        ]
    }

    /// Axis-aligned box containing this box transformed by `m`.
    ///
    /// Uses the exact corner transform, so the result is the tightest AABB
    /// of the transformed corners (not of the transformed solid, which for
    /// affine maps is the same thing).
    pub fn transformed(&self, m: &Mat4) -> Self {
        Self::from_points(self.corners().into_iter().map(|c| m.transform_point(c)))
            .expect("corners are non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn intersects_is_symmetric_and_touching_counts() {
        let a = unit();
        let b = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        let c = Aabb::new(Vec3::new(1.1, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn disjoint_on_each_axis() {
        let a = unit();
        for axis in 0..3 {
            let mut min = Vec3::ZERO;
            let mut max = Vec3::ONE;
            match axis {
                0 => {
                    min.x += 2.0;
                    max.x += 2.0;
                }
                1 => {
                    min.y += 2.0;
                    max.y += 2.0;
                }
                _ => {
                    min.z += 2.0;
                    max.z += 2.0;
                }
            }
            assert!(!a.intersects(&Aabb::new(min, max)));
        }
    }

    #[test]
    fn feasibly_overlaps_matches_intersects_on_clean_boxes() {
        let a = unit();
        let touching = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        let apart = Aabb::new(Vec3::new(1.1, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(a.feasibly_overlaps(&touching));
        assert!(touching.feasibly_overlaps(&a));
        assert!(!a.feasibly_overlaps(&apart));
        assert!(!apart.feasibly_overlaps(&a));
        assert_eq!(a.intersects(&touching), a.feasibly_overlaps(&touching));
        assert_eq!(a.intersects(&apart), a.feasibly_overlaps(&apart));
    }

    #[test]
    fn nan_in_any_position_reads_feasible() {
        // A NaN bound must always fall through to "feasible" — the
        // broad phase may never prune on fault-poisoned geometry. Every
        // component of either corner is poisoned in turn, against a box
        // that a clean comparison would call disjoint.
        let far = Aabb::new(Vec3::splat(100.0), Vec3::splat(101.0));
        for corner in 0..2 {
            for axis in 0..3 {
                let mut bad = unit();
                let c = if corner == 0 { &mut bad.min } else { &mut bad.max };
                match axis {
                    0 => c.x = f32::NAN,
                    1 => c.y = f32::NAN,
                    _ => c.z = f32::NAN,
                }
                assert!(
                    bad.feasibly_overlaps(&far),
                    "corner {corner} axis {axis}: NaN must read feasible"
                );
                assert!(far.feasibly_overlaps(&bad), "and symmetrically");
                assert!(
                    !bad.intersects(&far),
                    "the plain closed-box test reads NaN as disjoint — the \
                     unsafe direction feasibly_overlaps exists to avoid"
                );
            }
        }
    }

    #[test]
    fn inverted_extents_never_fabricate_disjointness() {
        // min > max on every axis (a fold over corrupted geometry can
        // produce this). The inverted box sits *around* the origin, so
        // it genuinely shares points with the unit box — it must stay
        // feasible even though `intersects` would need min <= max.
        let inverted = Aabb { min: Vec3::splat(0.5), max: Vec3::splat(-0.5) };
        assert!(inverted.feasibly_overlaps(&unit()));
        assert!(unit().feasibly_overlaps(&inverted));
        // A genuinely distant pair still proves disjoint even when one
        // box is inverted: no lost pruning power where the proof holds.
        let far = Aabb::new(Vec3::splat(100.0), Vec3::splat(101.0));
        assert!(!inverted.feasibly_overlaps(&far));
    }

    #[test]
    fn degenerate_extents_use_closed_semantics() {
        // Zero-extent boxes (a point, an axis-aligned plane) touch-count
        // exactly like the closed-box test: touching is feasible.
        let point = Aabb::from_point(Vec3::new(1.0, 0.5, 0.5));
        assert!(unit().feasibly_overlaps(&point), "point on the face touches");
        let plane = Aabb::new(Vec3::new(0.0, 1.0, 0.0), Vec3::new(1.0, 1.0, 1.0));
        assert!(unit().feasibly_overlaps(&plane), "plane on the face touches");
        let off_point = Aabb::from_point(Vec3::new(1.0 + 1e-4, 0.5, 0.5));
        assert!(!unit().feasibly_overlaps(&off_point));
    }

    #[test]
    fn from_points_bounds_everything() {
        let pts = [
            Vec3::new(1.0, -2.0, 0.5),
            Vec3::new(-3.0, 4.0, 2.0),
            Vec3::new(0.0, 0.0, -1.0),
        ];
        let bb = Aabb::from_points(pts).unwrap();
        for p in pts {
            assert!(bb.contains_point(p));
        }
        assert_eq!(bb.min, Vec3::new(-3.0, -2.0, -1.0));
        assert_eq!(bb.max, Vec3::new(1.0, 4.0, 2.0));
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn union_contains_both() {
        let a = unit();
        let b = Aabb::new(Vec3::splat(5.0), Vec3::splat(6.0));
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
    }

    #[test]
    fn geometry_quantities() {
        let bb = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(bb.volume(), 24.0);
        assert_eq!(bb.surface_area(), 2.0 * (6.0 + 12.0 + 8.0));
        assert_eq!(bb.center(), Vec3::new(1.0, 1.5, 2.0));
        assert_eq!(bb.half_extents(), Vec3::new(1.0, 1.5, 2.0));
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let bb = unit().inflate(0.5);
        assert_eq!(bb.min, Vec3::splat(-0.5));
        assert_eq!(bb.max, Vec3::splat(1.5));
    }

    #[test]
    fn transformed_by_rotation_still_bounds() {
        let m = Mat4::rotation_z(0.7) * Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        let bb = unit();
        let tbb = bb.transformed(&m);
        for c in bb.corners() {
            assert!(tbb.contains_point(m.transform_point(c)));
        }
    }

    #[test]
    fn corners_are_distinct_for_proper_box() {
        let cs = unit().corners();
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_ne!(cs[i], cs[j]);
            }
        }
    }
}
