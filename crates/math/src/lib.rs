//! Linear algebra and geometric primitives for the RBCD reproduction.
//!
//! This crate provides the small, dependency-free math substrate used by the
//! rest of the workspace: fixed-size vectors ([`Vec2`], [`Vec3`], [`Vec4`]),
//! a column-major 4×4 matrix ([`Mat4`]), unit quaternions ([`Quat`]),
//! axis-aligned bounding boxes ([`Aabb`]), planes and view frusta, and the
//! camera/projection transforms a tile-based renderer needs.
//!
//! All scalar math is `f32`, matching the precision a mobile GPU of the
//! paper's era (ARM Mali-400 class) operates at.
//!
//! # Example
//!
//! ```
//! use rbcd_math::{Mat4, Vec3, Aabb};
//!
//! let model = Mat4::translation(Vec3::new(0.0, 1.0, -5.0));
//! let p = model.transform_point(Vec3::ZERO);
//! assert_eq!(p, Vec3::new(0.0, 1.0, -5.0));
//!
//! let bb = Aabb::from_points([Vec3::ZERO, p]).unwrap();
//! assert!(bb.contains_point(Vec3::new(0.0, 0.5, -2.5)));
//! ```

#![warn(missing_docs)]

mod aabb;
mod mat4;
mod plane;
mod quat;
mod rng;
mod transforms;
mod vec;

pub use aabb::Aabb;
pub use mat4::Mat4;
pub use plane::{Frustum, Plane};
pub use quat::Quat;
pub use rng::{Rng, SampleRange};
pub use transforms::{look_at, orthographic, perspective, viewport, Viewport};
pub use vec::{Vec2, Vec3, Vec4};

/// Numerical tolerance used by approximate comparisons throughout the
/// workspace.
pub const EPSILON: f32 = 1e-6;

/// Returns `true` when `a` and `b` differ by at most `eps`.
///
/// ```
/// assert!(rbcd_math::approx_eq(1.0, 1.0 + 1e-7, 1e-6));
/// ```
pub fn approx_eq(a: f32, b: f32, eps: f32) -> bool {
    (a - b).abs() <= eps
}

/// Clamps `x` into `[lo, hi]`.
///
/// # Panics
///
/// Panics in debug builds if `lo > hi`.
pub fn clamp(x: f32, lo: f32, hi: f32) -> f32 {
    debug_assert!(lo <= hi, "clamp: lo {lo} > hi {hi}");
    x.max(lo).min(hi)
}

/// Linear interpolation: `a + (b - a) * t`.
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_respects_tolerance() {
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(approx_eq(1.0, 1.5, 0.5));
        assert!(!approx_eq(1.0, 1.51, 0.5));
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 4.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 4.0, 1.0), 4.0);
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
    }
}
